exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the zlib variant:
   a running value starts at 0 and checksums compose by chaining [update].
   Used for frame checksums on the transport and record checksums in the
   durable store — both ends of the wire must agree on this exact variant. *)
module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let update crc s ~off ~len =
    if off < 0 || len < 0 || off + len > String.length s then
      invalid_arg "Iw_wire.Crc32.update";
    let table = Lazy.force table in
    let c = ref (crc lxor 0xffffffff) in
    for i = off to off + len - 1 do
      c :=
        Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
        lxor (!c lsr 8)
    done;
    !c lxor 0xffffffff

  let string s = update 0 s ~off:0 ~len:(String.length s)
end

module Buf = struct
  type t = {
    mutable data : Bytes.t;
    mutable len : int;
  }

  let create ?(capacity = 256) () = { data = Bytes.create (max capacity 16); len = 0 }

  let length b = b.len

  let clear b = b.len <- 0

  let ensure b n =
    let need = b.len + n in
    if need > Bytes.length b.data then begin
      let cap = ref (Bytes.length b.data * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let data = Bytes.create !cap in
      Bytes.blit b.data 0 data 0 b.len;
      b.data <- data
    end

  let contents b = Bytes.sub_string b.data 0 b.len

  let to_bytes b = Bytes.sub b.data 0 b.len

  let u8 b v =
    ensure b 1;
    Bytes.unsafe_set b.data b.len (Char.unsafe_chr (v land 0xff));
    b.len <- b.len + 1

  (* Manual byte stores: these run once per primitive datum translated, and
     the [Int32]/[Int64] conversions of the Bytes setters box. *)
  let u16 b v =
    ensure b 2;
    let d = b.data and p = b.len in
    Bytes.unsafe_set d p (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set d (p + 1) (Char.unsafe_chr (v land 0xff));
    b.len <- p + 2

  let u32 b v =
    ensure b 4;
    let d = b.data and p = b.len in
    Bytes.unsafe_set d p (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set d (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set d (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set d (p + 3) (Char.unsafe_chr (v land 0xff));
    b.len <- p + 4

  let u64 b v =
    ensure b 8;
    let d = b.data and p = b.len in
    (* [asr] sign-extends, so the top byte carries two's complement just as
       [Int64.of_int] would. *)
    for i = 0 to 7 do
      Bytes.unsafe_set d (p + i) (Char.unsafe_chr ((v asr (8 * (7 - i))) land 0xff))
    done;
    b.len <- p + 8

  let f32 b v =
    ensure b 4;
    Bytes.set_int32_be b.data b.len (Int32.bits_of_float v);
    b.len <- b.len + 4

  let f64 b v =
    ensure b 8;
    Bytes.set_int64_be b.data b.len (Int64.bits_of_float v);
    b.len <- b.len + 8

  let raw b src ~off ~len =
    ensure b len;
    Bytes.blit src off b.data b.len len;
    b.len <- b.len + len

  let add_string b s =
    let len = String.length s in
    ensure b len;
    Bytes.blit_string s 0 b.data b.len len;
    b.len <- b.len + len

  let string b s =
    if String.length s > 0xffff then invalid_arg "Iw_wire.Buf.string: too long";
    u16 b (String.length s);
    add_string b s

  let lstring b s =
    u32 b (String.length s);
    add_string b s

  let pad b n =
    ensure b n;
    Bytes.fill b.data b.len n '\000';
    b.len <- b.len + n
end

module Reader = struct
  type t = {
    data : Bytes.t;
    limit : int;
    mutable pos : int;
  }

  let of_bytes data = { data; limit = Bytes.length data; pos = 0 }

  let of_string s = of_bytes (Bytes.unsafe_of_string s)

  let pos r = r.pos

  let remaining r = r.limit - r.pos

  let eof r = r.pos >= r.limit

  let need r n = if r.pos + n > r.limit then malformed "truncated input (need %d bytes)" n

  let u8 r =
    need r 1;
    let v = Char.code (Bytes.unsafe_get r.data r.pos) in
    r.pos <- r.pos + 1;
    v

  let peek_u8 r =
    need r 1;
    Char.code (Bytes.unsafe_get r.data r.pos)

  let u16 r =
    need r 2;
    let d = r.data and p = r.pos in
    let v =
      (Char.code (Bytes.unsafe_get d p) lsl 8) lor Char.code (Bytes.unsafe_get d (p + 1))
    in
    r.pos <- p + 2;
    v

  let u32 r =
    need r 4;
    let d = r.data and p = r.pos in
    let v =
      (Char.code (Bytes.unsafe_get d p) lsl 24)
      lor (Char.code (Bytes.unsafe_get d (p + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get d (p + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get d (p + 3))
    in
    r.pos <- p + 4;
    v

  let u64 r =
    need r 8;
    let d = r.data and p = r.pos in
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code (Bytes.unsafe_get d (p + i))
    done;
    r.pos <- p + 8;
    !v

  let f32 r =
    need r 4;
    let v = Int32.float_of_bits (Bytes.get_int32_be r.data r.pos) in
    r.pos <- r.pos + 4;
    v

  let f64 r =
    need r 8;
    let v = Int64.float_of_bits (Bytes.get_int64_be r.data r.pos) in
    r.pos <- r.pos + 8;
    v

  let take r n =
    need r n;
    let s = Bytes.sub_string r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let blit r dst ~off ~len =
    need r len;
    Bytes.blit r.data r.pos dst off len;
    r.pos <- r.pos + len

  let string r =
    let n = u16 r in
    take r n

  let lstring r =
    let n = u32 r in
    take r n

  let skip r n =
    need r n;
    r.pos <- r.pos + n
end

(* Type descriptor codec. *)

let prim_code : Iw_arch.prim -> int = function
  | Char -> 0
  | Short -> 1
  | Int -> 2
  | Long -> 3
  | Float -> 4
  | Double -> 5
  | Pointer -> 6
  | String _ -> 7

let rec put_desc buf (d : Iw_types.desc) =
  match d with
  | Prim p -> begin
    Buf.u8 buf 0;
    Buf.u8 buf (prim_code p);
    match p with String cap -> Buf.u32 buf cap | _ -> ()
  end
  | Ptr name ->
    Buf.u8 buf 3;
    Buf.string buf name
  | Array (d, n) ->
    Buf.u8 buf 1;
    Buf.u32 buf n;
    put_desc buf d
  | Struct fields ->
    Buf.u8 buf 2;
    Buf.u16 buf (Array.length fields);
    Array.iter
      (fun (f : Iw_types.field) ->
        Buf.string buf f.fname;
        put_desc buf f.ftype)
      fields

let rec get_desc r : Iw_types.desc =
  match Reader.u8 r with
  | 0 -> begin
    match Reader.u8 r with
    | 0 -> Prim Char
    | 1 -> Prim Short
    | 2 -> Prim Int
    | 3 -> Prim Long
    | 4 -> Prim Float
    | 5 -> Prim Double
    | 6 -> Prim Pointer
    | 7 -> Prim (String (Reader.u32 r))
    | c -> malformed "unknown primitive code %d" c
  end
  | 1 ->
    let n = Reader.u32 r in
    Array (get_desc r, n)
  | 2 ->
    let n = Reader.u16 r in
    let fields =
      Array.init n (fun _ ->
          let fname = Reader.string r in
          { Iw_types.fname; ftype = get_desc r })
    in
    Struct fields
  | 3 -> Ptr (Reader.string r)
  | t -> malformed "unknown descriptor tag %d" t

module Diff = struct
  type run = {
    start_pu : int;
    len_pu : int;
    payload : string;
  }

  type block_change =
    | Update of {
        serial : int;
        runs : run list;
      }
    | Create of {
        serial : int;
        name : string option;
        desc_serial : int;
        payload : string;
      }
    | Free of { serial : int }

  type t = {
    from_version : int;
    to_version : int;
    new_descs : (int * Iw_types.desc) list;
    changes : block_change list;
  }

  let payload_bytes t =
    List.fold_left
      (fun acc c ->
        match c with
        | Update { runs; _ } ->
          List.fold_left (fun acc r -> acc + String.length r.payload) acc runs
        | Create { payload; _ } -> acc + String.length payload
        | Free _ -> acc)
      0 t.changes

  let touched_units t =
    List.fold_left
      (fun acc c ->
        match c with
        | Update { runs; _ } -> List.fold_left (fun acc r -> acc + r.len_pu) acc runs
        | Create _ | Free _ -> acc)
      0 t.changes

  let encode buf t =
    Buf.u32 buf t.from_version;
    Buf.u32 buf t.to_version;
    Buf.u16 buf (List.length t.new_descs);
    List.iter
      (fun (serial, d) ->
        Buf.u32 buf serial;
        put_desc buf d)
      t.new_descs;
    Buf.u32 buf (List.length t.changes);
    List.iter
      (fun c ->
        match c with
        | Update { serial; runs } ->
          Buf.u8 buf 0;
          Buf.u32 buf serial;
          Buf.u32 buf (List.length runs);
          List.iter
            (fun r ->
              Buf.u32 buf r.start_pu;
              Buf.u32 buf r.len_pu;
              Buf.lstring buf r.payload)
            runs
        | Create { serial; name; desc_serial; payload } ->
          Buf.u8 buf 1;
          Buf.u32 buf serial;
          Buf.u32 buf desc_serial;
          (match name with
          | None -> Buf.u8 buf 0
          | Some n ->
            Buf.u8 buf 1;
            Buf.string buf n);
          Buf.lstring buf payload
        | Free { serial } ->
          Buf.u8 buf 2;
          Buf.u32 buf serial)
      t.changes

  let decode r =
    let from_version = Reader.u32 r in
    let to_version = Reader.u32 r in
    let ndescs = Reader.u16 r in
    let new_descs =
      List.init ndescs (fun _ ->
          let serial = Reader.u32 r in
          (serial, get_desc r))
    in
    let nchanges = Reader.u32 r in
    let changes =
      List.init nchanges (fun _ ->
          match Reader.u8 r with
          | 0 ->
            let serial = Reader.u32 r in
            let nruns = Reader.u32 r in
            let runs =
              List.init nruns (fun _ ->
                  let start_pu = Reader.u32 r in
                  let len_pu = Reader.u32 r in
                  let payload = Reader.lstring r in
                  { start_pu; len_pu; payload })
            in
            Update { serial; runs }
          | 1 ->
            let serial = Reader.u32 r in
            let desc_serial = Reader.u32 r in
            let name = if Reader.u8 r = 1 then Some (Reader.string r) else None in
            let payload = Reader.lstring r in
            Create { serial; name; desc_serial; payload }
          | 2 -> Free { serial = Reader.u32 r }
          | t -> malformed "unknown block change tag %d" t)
    in
    { from_version; to_version; new_descs; changes }

  let pp ppf t =
    Format.fprintf ppf "diff v%d->v%d (%d descs, %d changes, %d payload bytes)"
      t.from_version t.to_version (List.length t.new_descs) (List.length t.changes)
      (payload_bytes t)
end

(* Primitive translation between local and wire format. *)

(* Translation iterates spans — maximal runs of identical primitives — so
   bulk arrays run a tight per-type loop with the dispatch hoisted out. *)
let collect_prims buf arch lay bytes ~base ~from ~upto ~swizzle =
  Iw_types.fold_spans lay ~from ~upto ~init:()
    ~f:(fun () (s : Iw_types.span) ->
      let off0 = base + s.s_off and stride = s.s_stride and n = s.s_count in
      match s.s_prim with
      | Iw_arch.Char ->
        for i = 0 to n - 1 do
          Buf.u8 buf (Iw_arch.load_uint arch bytes ~off:(off0 + (i * stride)) ~size:1)
        done
      | Short ->
        for i = 0 to n - 1 do
          Buf.u16 buf (Iw_arch.load_uint arch bytes ~off:(off0 + (i * stride)) ~size:2)
        done
      | Int ->
        for i = 0 to n - 1 do
          Buf.u32 buf (Iw_arch.load_uint arch bytes ~off:(off0 + (i * stride)) ~size:4)
        done
      | Long ->
        let size = arch.Iw_arch.long_size in
        for i = 0 to n - 1 do
          Buf.u64 buf (Iw_arch.load_sint arch bytes ~off:(off0 + (i * stride)) ~size)
        done
      | Float ->
        for i = 0 to n - 1 do
          Buf.f32 buf (Iw_arch.load_float arch bytes ~off:(off0 + (i * stride)))
        done
      | Double ->
        for i = 0 to n - 1 do
          Buf.f64 buf (Iw_arch.load_double arch bytes ~off:(off0 + (i * stride)))
        done
      | Pointer ->
        let size = arch.Iw_arch.pointer_size in
        for i = 0 to n - 1 do
          let addr = Iw_arch.load_uint arch bytes ~off:(off0 + (i * stride)) ~size in
          Buf.string buf (if addr = 0 then "" else swizzle addr)
        done
      | String capacity ->
        for i = 0 to n - 1 do
          Buf.string buf (Iw_arch.load_cstring bytes ~off:(off0 + (i * stride)) ~capacity)
        done)

let apply_prims r arch lay bytes ~base ~from ~upto ~unswizzle =
  Iw_types.fold_spans lay ~from ~upto ~init:()
    ~f:(fun () (s : Iw_types.span) ->
      let off0 = base + s.s_off and stride = s.s_stride and n = s.s_count in
      match s.s_prim with
      | Iw_arch.Char ->
        for i = 0 to n - 1 do
          Iw_arch.store_uint arch bytes ~off:(off0 + (i * stride)) ~size:1 (Reader.u8 r)
        done
      | Short ->
        for i = 0 to n - 1 do
          Iw_arch.store_uint arch bytes ~off:(off0 + (i * stride)) ~size:2 (Reader.u16 r)
        done
      | Int ->
        for i = 0 to n - 1 do
          Iw_arch.store_uint arch bytes ~off:(off0 + (i * stride)) ~size:4 (Reader.u32 r)
        done
      | Long ->
        let size = arch.Iw_arch.long_size in
        for i = 0 to n - 1 do
          Iw_arch.store_uint arch bytes ~off:(off0 + (i * stride)) ~size (Reader.u64 r)
        done
      | Float ->
        for i = 0 to n - 1 do
          Iw_arch.store_float arch bytes ~off:(off0 + (i * stride)) (Reader.f32 r)
        done
      | Double ->
        for i = 0 to n - 1 do
          Iw_arch.store_double arch bytes ~off:(off0 + (i * stride)) (Reader.f64 r)
        done
      | Pointer ->
        let size = arch.Iw_arch.pointer_size in
        for i = 0 to n - 1 do
          let mip = Reader.string r in
          let addr = if mip = "" then 0 else unswizzle mip in
          Iw_arch.store_uint arch bytes ~off:(off0 + (i * stride)) ~size addr
        done
      | String capacity ->
        for i = 0 to n - 1 do
          Iw_arch.store_cstring bytes ~off:(off0 + (i * stride)) ~capacity (Reader.string r)
        done)

let wire_size_of_prims lay ~from ~upto ~strings_as =
  Iw_types.fold_prims lay ~from ~upto ~init:0
    ~f:(fun acc (loc : Iw_types.located) ->
      acc
      +
      match loc.l_prim with
      | Iw_arch.Char -> 1
      | Short -> 2
      | Int | Float -> 4
      | Long | Double -> 8
      | Pointer | String _ -> strings_as)
