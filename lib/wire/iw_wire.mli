(** Machine-independent wire format.

    The wire format captures both whole values and diffs of complex data
    structures — including pointers — in a machine- and language-independent
    form (paper, Sections 1 and 3.1).  Integers travel big-endian, floating
    point as IEEE 754 bit patterns, strings length-prefixed, and pointers as
    MIP strings.  A block diff is a block serial number plus run-length
    encoded changes whose offsets and lengths are measured in primitive data
    units (Figure 3). *)

exception Malformed of string
(** Raised by decoders on truncated or corrupt input. *)

(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) in the zlib
    convention: a running value starts at 0, and [update] chains.  Shared by
    the transport's frame checksums and the durable store's log records so
    both sides of the wire agree on the exact variant. *)
module Crc32 : sig
  val string : string -> int
  (** CRC of a whole string. *)

  val update : int -> string -> off:int -> len:int -> int
  (** Extend a running CRC with [len] bytes of [s] at [off]. *)
end

(** Growable write buffer. *)
module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val clear : t -> unit

  val contents : t -> string

  val to_bytes : t -> Bytes.t

  val u8 : t -> int -> unit

  val u16 : t -> int -> unit

  val u32 : t -> int -> unit

  val u64 : t -> int -> unit

  val f32 : t -> float -> unit

  val f64 : t -> float -> unit

  val raw : t -> Bytes.t -> off:int -> len:int -> unit

  val add_string : t -> string -> unit
  (** Append the bytes of [s] with no length prefix. *)

  val string : t -> string -> unit
  (** [u16] length prefix followed by the bytes. *)

  val lstring : t -> string -> unit
  (** [u32] length prefix followed by the bytes. *)

  val pad : t -> int -> unit
  (** Append that many zero bytes. *)
end

(** Cursor-based reader over immutable input. *)
module Reader : sig
  type t

  val of_string : string -> t

  val of_bytes : Bytes.t -> t
  (** The reader aliases the bytes; do not mutate them while reading. *)

  val pos : t -> int

  val remaining : t -> int

  val eof : t -> bool

  val u8 : t -> int

  val peek_u8 : t -> int
  (** The next byte without consuming it — lets a decoder dispatch on a
      discriminator (e.g. the protocol's envelope marker) and hand the rest
      to a sub-decoder that re-reads it. *)

  val u16 : t -> int

  val u32 : t -> int

  val u64 : t -> int

  val f32 : t -> float

  val f64 : t -> float

  val take : t -> int -> string

  val blit : t -> Bytes.t -> off:int -> len:int -> unit
  (** Copy the next [len] bytes into [dst] at [off] without allocating. *)

  val string : t -> string

  val lstring : t -> string

  val skip : t -> int -> unit
end

(** {1 Type descriptor codec}

    Servers are oblivious to client languages and obtain type descriptors in
    wire form from clients (paper, Section 3.2). *)

val put_desc : Buf.t -> Iw_types.desc -> unit

val get_desc : Reader.t -> Iw_types.desc

(** {1 Diffs} *)

module Diff : sig
  (** One run-length-encoded change: [len_pu] primitive units starting at
      primitive offset [start_pu], with their wire-format payload. *)
  type run = {
    start_pu : int;
    len_pu : int;
    payload : string;
  }

  type block_change =
    | Update of {
        serial : int;
        runs : run list;  (** ascending, non-overlapping *)
      }
    | Create of {
        serial : int;
        name : string option;
        desc_serial : int;
        payload : string;  (** full wire-format content *)
      }
    | Free of { serial : int }

  (** A segment diff: everything that changed between two versions. *)
  type t = {
    from_version : int;
    to_version : int;
    new_descs : (int * Iw_types.desc) list;
        (** descriptors first referenced by this diff, with their serials *)
    changes : block_change list;
  }

  val payload_bytes : t -> int
  (** Total run/create payload size: the bandwidth-relevant part of a diff. *)

  val touched_units : t -> int
  (** Total primitive units covered by the diff's runs and creates — what the
      server's Diff-coherence counter accumulates (paper, Section 3.2). *)

  val encode : Buf.t -> t -> unit

  val decode : Reader.t -> t

  val pp : Format.formatter -> t -> unit
end

(** {1 Primitive translation}

    Translate primitive units between a value in local format and the wire
    format.  Pointer units call back into the client for swizzling (paper,
    Section 3.1): [swizzle] turns a local address into a MIP string and
    [unswizzle] the reverse; address 0 and the empty MIP denote null. *)

val collect_prims :
  Buf.t ->
  Iw_arch.t ->
  Iw_types.layout ->
  Bytes.t ->
  base:int ->
  from:int ->
  upto:int ->
  swizzle:(int -> string) ->
  unit
(** Append the wire encoding of primitive units [from, upto) of the value
    whose local image starts at byte [base] of the buffer. *)

val apply_prims :
  Reader.t ->
  Iw_arch.t ->
  Iw_types.layout ->
  Bytes.t ->
  base:int ->
  from:int ->
  upto:int ->
  unswizzle:(string -> int) ->
  unit
(** Inverse of {!collect_prims}: decode units [from, upto) from the reader
    into the local image. *)

val wire_size_of_prims :
  Iw_types.layout -> from:int -> upto:int -> strings_as:int -> int
(** Upper-bound wire payload size of a unit range, counting each pointer or
    string unit as [strings_as] bytes.  Used for buffer pre-sizing and for
    bandwidth accounting. *)
