type addr = int

let page_size = 4096

module Addr_tree = Iw_avl.Make (Int)

type space = {
  sp_arch : Iw_arch.t;
  mutable sp_subsegs : subsegment Addr_tree.t;
  mutable sp_next_base : addr;
  mutable sp_splice_gap : int;  (* words; 0 disables run splicing *)
  (* Observation hook for dynamic checkers (the lockset sanitizer): fired on
     every typed access before the address is resolved, so the observer sees
     accesses to freed or unmapped addresses too.  None costs one branch. *)
  mutable sp_on_access : (store:bool -> addr -> len:int -> unit) option;
}

and subsegment = {
  ss_base : addr;
  ss_bytes : Bytes.t;
  ss_npages : int;
  ss_heap : heap;
  ss_twins : Bytes.t option array;  (* pagemap: twin per page *)
  ss_protected : bool array;
  mutable ss_blocks : block Addr_tree.t;  (* blk_addr_tree *)
}

and heap = {
  h_space : space;
  h_seg : int;
  mutable h_subsegs : subsegment list;  (* allocation order *)
  mutable h_free : (addr * int) list;  (* sorted by addr; ranges never span subsegments *)
}

and block = {
  b_serial : int;
  b_name : string option;
  b_addr : addr;
  b_size : int;
  b_layout : Iw_types.layout;
  b_desc_serial : int;
  b_heap : heap;
  mutable b_freed : bool;
}

let create_space arch =
  {
    sp_arch = arch;
    sp_subsegs = Addr_tree.empty;
    sp_next_base = page_size;
    sp_splice_gap = 2;
    sp_on_access = None;
  }

let set_access_hook sp hook = sp.sp_on_access <- hook

let observe sp ~store a len =
  match sp.sp_on_access with None -> () | Some f -> f ~store a ~len

let set_splice_gap sp words =
  if words < 0 then invalid_arg "Iw_mem.set_splice_gap";
  sp.sp_splice_gap <- words

let splice_gap sp = sp.sp_splice_gap

let arch sp = sp.sp_arch

let create_heap sp ~seg_id =
  { h_space = sp; h_seg = seg_id; h_subsegs = []; h_free = [] }

let heap_space h = h.h_space

let heap_seg_id h = h.h_seg

let heap_bytes h =
  List.fold_left (fun acc ss -> acc + Bytes.length ss.ss_bytes) 0 h.h_subsegs

let heap_blocks h =
  let blocks =
    List.concat_map
      (fun ss -> List.map snd (Addr_tree.to_list ss.ss_blocks))
      h.h_subsegs
  in
  List.sort (fun a b -> compare a.b_addr b.b_addr) blocks

(* Allocation granularity: large enough for any primitive's alignment. *)
let block_align = 8

let min_subseg_pages = 4

let grow_heap h size =
  let sp = h.h_space in
  let npages = max min_subseg_pages ((size + page_size - 1) / page_size) in
  let ss =
    {
      ss_base = sp.sp_next_base;
      ss_bytes = Bytes.make (npages * page_size) '\000';
      ss_npages = npages;
      ss_heap = h;
      ss_twins = Array.make npages None;
      ss_protected = Array.make npages false;
      ss_blocks = Addr_tree.empty;
    }
  in
  sp.sp_next_base <- sp.sp_next_base + (npages * page_size);
  sp.sp_subsegs <- Addr_tree.add ss.ss_base ss sp.sp_subsegs;
  h.h_subsegs <- h.h_subsegs @ [ ss ];
  h.h_free <- h.h_free @ [ (ss.ss_base, npages * page_size) ];
  ss

let subseg_of_addr sp a =
  match Addr_tree.floor a sp.sp_subsegs with
  | Some (_, ss) when a < ss.ss_base + Bytes.length ss.ss_bytes -> Some ss
  | Some _ | None -> None

let subseg_exn sp a =
  match subseg_of_addr sp a with
  | Some ss -> ss
  | None -> invalid_arg (Printf.sprintf "Iw_mem: address %d is not mapped" a)

(* Carve [size] bytes out of the free list, first fit.  Returns an
   8-byte-aligned address whose whole extent lies in one subsegment. *)
let take_free h size =
  let rec go acc = function
    | [] -> None
    | ((start, len) as range) :: rest ->
      let a = (start + block_align - 1) / block_align * block_align in
      let waste = a - start in
      if len - waste >= size then begin
        let before = if waste > 0 then [ (start, waste) ] else [] in
        let after_start = a + size in
        let after_len = start + len - after_start in
        let after = if after_len > 0 then [ (after_start, after_len) ] else [] in
        h.h_free <- List.rev_append acc (before @ after @ rest);
        Some a
      end
      else go (range :: acc) rest
  in
  go [] h.h_free

let alloc h ~serial ?name ~desc_serial layout =
  let size = max block_align (Iw_types.size layout) in
  let a =
    match take_free h size with
    | Some a -> a
    | None ->
      let _ss = grow_heap h size in
      begin
        match take_free h size with
        | Some a -> a
        | None -> assert false (* the fresh subsegment fits [size] by construction *)
      end
  in
  let ss = subseg_exn h.h_space a in
  Bytes.fill ss.ss_bytes (a - ss.ss_base) size '\000';
  let b =
    {
      b_serial = serial;
      b_name = name;
      b_addr = a;
      b_size = size;
      b_layout = layout;
      b_desc_serial = desc_serial;
      b_heap = h;
      b_freed = false;
    }
  in
  ss.ss_blocks <- Addr_tree.add a b ss.ss_blocks;
  b

(* Insert a range into the sorted free list, coalescing neighbours that
   belong to the same subsegment. *)
let release_range h (start, len) =
  let rec insert = function
    | [] -> [ (start, len) ]
    | (s, l) :: rest when s + l = start -> coalesce ((s, l + len) :: rest)
    | (s, l) :: rest when s > start ->
      if start + len = s then (start, len + l) :: rest
      else (start, len) :: (s, l) :: rest
    | range :: rest -> range :: insert rest
  and coalesce = function
    | (s1, l1) :: (s2, l2) :: rest when s1 + l1 = s2 -> (s1, l1 + l2) :: rest
    | l -> l
  in
  (* Never coalesce across subsegment boundaries: bases are page-aligned and
     subsegments of one heap may be non-adjacent in the space, so equality of
     [s + l] and [start] across subsegments cannot occur unless two subsegs
     are adjacent *and* belong to the same heap — in which case merging is
     still unsound for [take_free]'s single-subsegment guarantee. *)
  let ss = subseg_exn h.h_space start in
  let limit = ss.ss_base + Bytes.length ss.ss_bytes in
  let clipped_ok = start >= ss.ss_base && start + len <= limit in
  assert clipped_ok;
  let same_subseg (s, _) = s >= ss.ss_base && s < limit in
  let inside, outside = List.partition same_subseg h.h_free in
  h.h_free <-
    List.sort (fun (a, _) (b, _) -> compare a b) (insert inside @ outside)

let free_block b =
  if b.b_freed then invalid_arg "Iw_mem.free_block: block already freed";
  b.b_freed <- true;
  let ss = subseg_exn b.b_heap.h_space b.b_addr in
  ss.ss_blocks <- Addr_tree.remove b.b_addr ss.ss_blocks;
  release_range b.b_heap (b.b_addr, b.b_size)

let find_block sp a =
  match subseg_of_addr sp a with
  | None -> None
  | Some ss -> begin
    match Addr_tree.floor a ss.ss_blocks with
    | Some (_, b) when (not b.b_freed) && a < b.b_addr + b.b_size ->
      Some (b, a - b.b_addr)
    | Some _ | None -> None
  end

let next_block sp a =
  match subseg_of_addr sp a with
  | None -> None
  | Some ss -> begin
    match Addr_tree.ceiling a ss.ss_blocks with
    | Some (_, b) when not b.b_freed -> Some b
    | Some (addr, _) -> begin
      (* Freed block still in tree cannot happen (removed on free), but a
         ceiling hit on a live block is the common case; fall through via
         successor for safety. *)
      match Addr_tree.succ addr ss.ss_blocks with
      | Some (_, b) when not b.b_freed -> Some b
      | Some _ | None -> None
    end
    | None -> None
  end

let destroy_heap h =
  let sp = h.h_space in
  List.iter
    (fun ss -> sp.sp_subsegs <- Addr_tree.remove ss.ss_base sp.sp_subsegs)
    h.h_subsegs;
  h.h_subsegs <- [];
  h.h_free <- []

(* Modification tracking. *)

let protect h =
  List.iter
    (fun ss ->
      Array.fill ss.ss_protected 0 ss.ss_npages true;
      Array.fill ss.ss_twins 0 ss.ss_npages None)
    h.h_subsegs

let unprotect h =
  List.iter
    (fun ss ->
      Array.fill ss.ss_protected 0 ss.ss_npages false;
      Array.fill ss.ss_twins 0 ss.ss_npages None)
    h.h_subsegs

let twinned_pages h =
  List.fold_left
    (fun acc ss ->
      Array.fold_left (fun acc t -> if t = None then acc else acc + 1) acc ss.ss_twins)
    0 h.h_subsegs

let restore_twins h =
  List.iter
    (fun ss ->
      Array.iteri
        (fun page twin ->
          match twin with
          | Some twin ->
            Bytes.blit twin 0 ss.ss_bytes (page * page_size) page_size;
            ss.ss_protected.(page) <- true;
            ss.ss_twins.(page) <- None
          | None -> ())
        ss.ss_twins)
    h.h_subsegs

(* The emulated page fault: first write to a protected page snapshots it. *)
let fault ss page =
  let off = page * page_size in
  ss.ss_twins.(page) <- Some (Bytes.sub ss.ss_bytes off page_size);
  ss.ss_protected.(page) <- false

let barrier ss off len =
  let first = off / page_size and last = (off + len - 1) / page_size in
  for p = first to last do
    if ss.ss_protected.(p) then fault ss p
  done

let word = Iw_arch.word_size

(* Word-by-word comparison of a twinned page, extended with run splicing:
   gaps of one or two unchanged words between changed words are folded into
   the surrounding run (paper, Sec. 3.3). Returns byte runs relative to the
   subsegment, ascending, given the accumulated reversed list. *)
let diff_page ss page acc =
  match ss.ss_twins.(page) with
  | None -> acc
  | Some twin ->
    let gap = ss.ss_heap.h_space.sp_splice_gap in
    let page_off = page * page_size in
    let base = ss.ss_base + page_off in
    let words = page_size / word in
    let changed w =
      Bytes.get_int32_ne ss.ss_bytes (page_off + (w * word))
      <> Bytes.get_int32_ne twin (w * word)
    in
    (* Collect maximal changed word runs with splicing. *)
    let acc = ref acc in
    let run_start = ref (-1) in
    let last_changed = ref (-3) in
    let flush upto =
      if !run_start >= 0 then begin
        let s = base + (!run_start * word) and e = base + (upto * word) in
        (* Merge with the previous run when contiguous (page-crossing runs
           or splice-adjacent runs). *)
        (match !acc with
        | (ps, pl) :: rest when ps + pl >= s ->
          acc := (ps, max (ps + pl) e - ps) :: rest
        | _ -> acc := (s, e - s) :: !acc);
        run_start := -1
      end
    in
    for w = 0 to words - 1 do
      if changed w then begin
        if !run_start < 0 then run_start := w
        else if w - !last_changed > gap + 1 then begin
          (* Too many unchanged words in between: close the previous run. *)
          flush (!last_changed + 1);
          run_start := w
        end;
        last_changed := w
      end
    done;
    flush (!last_changed + 1);
    !acc

let modified_runs h =
  (* Per-subsegment accumulators so runs never merge across subsegments even
     when two subsegments happen to be address-adjacent. *)
  List.concat_map
    (fun ss ->
      let acc = ref [] in
      for p = 0 to ss.ss_npages - 1 do
        acc := diff_page ss p !acc
      done;
      List.rev !acc)
    h.h_subsegs

(* Typed access. *)

let locate sp a len =
  let ss = subseg_exn sp a in
  if a + len > ss.ss_base + Bytes.length ss.ss_bytes then
    invalid_arg "Iw_mem: access crosses end of subsegment";
  (ss, a - ss.ss_base)

let store_barrier sp a len =
  let ss, off = locate sp a len in
  barrier ss off len;
  (ss, off)

let load_prim sp prim a =
  let arch = sp.sp_arch in
  let size = Iw_arch.prim_size arch prim in
  observe sp ~store:false a size;
  let ss, off = locate sp a size in
  match prim with
  | Iw_arch.Char | Short | Int | Long ->
    Iw_arch.load_sint arch ss.ss_bytes ~off ~size
  | Pointer -> Iw_arch.load_uint arch ss.ss_bytes ~off ~size
  | Float | Double | String _ ->
    invalid_arg "Iw_mem.load_prim: not an integer primitive"

let store_prim sp prim a v =
  let arch = sp.sp_arch in
  let size = Iw_arch.prim_size arch prim in
  observe sp ~store:true a size;
  let ss, off = store_barrier sp a size in
  match prim with
  | Iw_arch.Char | Short | Int | Long | Pointer ->
    Iw_arch.store_uint arch ss.ss_bytes ~off ~size v
  | Float | Double | String _ ->
    invalid_arg "Iw_mem.store_prim: not an integer primitive"

let load_double sp a =
  observe sp ~store:false a 8;
  let ss, off = locate sp a 8 in
  Iw_arch.load_double sp.sp_arch ss.ss_bytes ~off

let store_double sp a v =
  observe sp ~store:true a 8;
  let ss, off = store_barrier sp a 8 in
  Iw_arch.store_double sp.sp_arch ss.ss_bytes ~off v

let load_float sp a =
  observe sp ~store:false a 4;
  let ss, off = locate sp a 4 in
  Iw_arch.load_float sp.sp_arch ss.ss_bytes ~off

let store_float sp a v =
  observe sp ~store:true a 4;
  let ss, off = store_barrier sp a 4 in
  Iw_arch.store_float sp.sp_arch ss.ss_bytes ~off v

let load_string sp ~capacity a =
  observe sp ~store:false a capacity;
  let ss, off = locate sp a capacity in
  Iw_arch.load_cstring ss.ss_bytes ~off ~capacity

let store_string sp ~capacity a s =
  observe sp ~store:true a capacity;
  let ss, off = store_barrier sp a capacity in
  Iw_arch.store_cstring ss.ss_bytes ~off ~capacity s

let with_raw sp a f =
  let ss = subseg_exn sp a in
  f ss.ss_bytes (a - ss.ss_base)

let touch sp a ~len =
  let ss, off = locate sp a len in
  barrier ss off len
