(** Emulated client memory: subsegments, blocks, twins, and word diffing.

    An InterWeave client manages its own heap of page-aligned {e subsegments};
    each cached segment is a collection of subsegments so that any given page
    contains data from only one segment (paper, Section 3.1).  On a real
    machine modification tracking uses [mprotect] and a SIGSEGV handler; here
    every store goes through this module, which checks a per-page protect bit
    and, on the first write to a protected page, snapshots the page into a
    {e twin} recorded in the subsegment's pagemap — the same observable
    algorithm with the accessor playing the MMU.

    Addresses are plain integers in a per-client emulated address space;
    address 0 is the null pointer. *)

type addr = int

val page_size : int
(** 4096 bytes. *)

type space
(** One client's address space: the global [subseg_addr_tree] plus the
    architecture whose layout conventions all data in the space follows. *)

type heap
(** The portion of a space holding one segment's local copy: a list of
    subsegments and a free list (paper, Figure 2). *)

type block = {
  b_serial : int;
  b_name : string option;
  b_addr : addr;
  b_size : int;  (** local size in bytes *)
  b_layout : Iw_types.layout;
  b_desc_serial : int;
  b_heap : heap;
  mutable b_freed : bool;
}

val create_space : Iw_arch.t -> space

val arch : space -> Iw_arch.t

val create_heap : space -> seg_id:int -> heap

val heap_space : heap -> space

val heap_seg_id : heap -> int

val heap_blocks : heap -> block list
(** Live blocks in ascending address order. *)

val heap_bytes : heap -> int
(** Total bytes currently reserved by the heap's subsegments. *)

val alloc :
  heap -> serial:int -> ?name:string -> desc_serial:int -> Iw_types.layout -> block
(** Allocate a zeroed block.  First-fit in the segment's free list, growing
    the heap with a fresh subsegment when no range fits.  Blocks never span
    subsegments. *)

val free_block : block -> unit
(** Return the block's bytes to the free list (coalescing with neighbours)
    and drop it from the metadata trees.
    @raise Invalid_argument if already freed. *)

val find_block : space -> addr -> (block * int) option
(** [find_block sp a] finds the live block spanning address [a] and the byte
    offset of [a] within it — [subseg_addr_tree] then [blk_addr_tree], as in
    the paper's pointer-swizzling path. *)

val next_block : space -> addr -> block option
(** Least live block starting at or after the address, within the subsegment
    containing it.  Lets diff collection jump over free space. *)

val destroy_heap : heap -> unit
(** Remove all of the heap's subsegments from the space. *)

val set_splice_gap : space -> int -> unit
(** Maximum number of unchanged words folded into a surrounding run during
    diffing (default 2, per the paper; 0 disables splicing — used by the
    ablation benchmark). *)

val splice_gap : space -> int

(** {1 Modification tracking} *)

val protect : heap -> unit
(** Write-protect every page of the heap, as done at write-lock acquisition. *)

val unprotect : heap -> unit
(** Drop all protection and twins (after diff collection). *)

val modified_runs : heap -> (addr * int) list
(** Word-by-word comparison of every twinned page against its current
    contents, returning maximal modified byte runs [(addr, len)] in ascending
    address order.  Runs are spliced: a gap of one or two unchanged words
    between two changed words is treated as changed, and runs crossing
    adjacent modified pages are merged (paper, Sections 3.1 and 3.3). *)

val twinned_pages : heap -> int
(** Number of pages with twins (i.e. emulated write faults taken). *)

val restore_twins : heap -> unit
(** Copy every twin back over its page, undoing all stores made since
    {!protect} — the rollback half of transactional write critical sections.
    Protection bits are re-armed, twins kept. *)

(** {1 Typed access}

    Loads and stores of shared data.  Stores run the write barrier.  All
    functions raise [Invalid_argument] on addresses outside the space. *)

val load_prim : space -> Iw_arch.prim -> addr -> int
(** Integer-valued primitives ([Char]/[Short]/[Int]/[Long]/[Pointer]),
    sign-extended except for [Pointer]. *)

val store_prim : space -> Iw_arch.prim -> addr -> int -> unit

val load_double : space -> addr -> float

val store_double : space -> addr -> float -> unit

val load_float : space -> addr -> float

val store_float : space -> addr -> float -> unit

val load_string : space -> capacity:int -> addr -> string

val store_string : space -> capacity:int -> addr -> string -> unit

val with_raw : space -> addr -> (Bytes.t -> int -> 'a) -> 'a
(** [with_raw sp a f] calls [f bytes off] where [bytes.(off)] is the byte at
    address [a], bypassing the write barrier.  Used by diff application (the
    pages are unprotected then) and by diff collection (reads only). *)

val touch : space -> addr -> len:int -> unit
(** Run the write barrier for the byte range without storing — used by
    [apply] paths that write through {!with_raw} while protection is on. *)

(** {1 Access observation}

    Dynamic-checking hook for {!Iw_sanitizer}-style tools.  When set, every
    typed load and store above reports [~store], the address, and the access
    length {e before} the address is resolved (so the observer also sees
    accesses to freed or unmapped addresses).  Internal diff machinery going
    through {!with_raw} is not reported.  When unset ([None], the default)
    the typed-access hot path pays exactly one branch. *)

val set_access_hook : space -> (store:bool -> addr -> len:int -> unit) option -> unit
