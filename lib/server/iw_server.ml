module Serial_tree = Iw_avl.Make (Int)
module Version_tree = Iw_avl.Make (Int)

let subblock_units = 16

type stats = {
  mutable requests : int;
  mutable diffs_applied : int;
  mutable diffs_collected : int;
  mutable diff_cache_hits : int;
  mutable diff_cache_misses : int;
  mutable pred_hits : int;
  mutable pred_misses : int;
}

(* The version list: blocks ordered by the version in which they were last
   modified, separated by markers (paper, Sec. 3.2).  Doubly linked with
   sentinels; modified blocks move to the tail. *)
type vnode = {
  mutable prev : vnode;
  mutable next : vnode;
  kind : vkind;
}

and vkind =
  | Head
  | Tail
  | Marker of int
  | Blk of sblock

and sblock = {
  sb_serial : int;
  sb_name : string option;
  sb_desc_serial : int;
  sb_lay : Iw_types.layout;  (* wire-convention layout *)
  sb_pcount : int;
  sb_data : Bytes.t;  (* packed fixed-size wire slots *)
  sb_vars : (int, string) Hashtbl.t;  (* prim index -> MIP / string payload *)
  sb_created_version : int;
  mutable sb_version : int;
  sb_subvers : int array;
  mutable sb_node : vnode;
}

type seg = {
  s_name : string;
  mutable s_version : int;
  s_registry : Iw_types.Registry.t;
  mutable s_desc_versions : (int * int) list;  (* desc serial, version at registration *)
  mutable s_blocks : sblock Serial_tree.t;  (* svr_blk_number_tree *)
  s_head : vnode;
  s_tail : vnode;
  mutable s_markers : vnode Version_tree.t;  (* marker_version_tree *)
  mutable s_frees : (int * int) list;  (* serial, version freed *)
  mutable s_total_units : int;
  s_counters : (int, int ref) Hashtbl.t;  (* Diff-coherence modification counters *)
  mutable s_writer : int option;
  s_diff_cache : (int * int, Iw_wire.Diff.block_change list) Hashtbl.t;
  s_cache_order : (int * int) Queue.t;
  mutable s_pred : vnode option;  (* last-block prediction cursor *)
  s_subscribers : (int, unit) Hashtbl.t;  (* sessions to notify on change *)
  mutable s_data_bytes : int;  (* packed master-copy bytes across live blocks *)
  s_vtimes : (int, float) Hashtbl.t;  (* version -> commit wall time *)
  s_vtimes_order : int Queue.t;  (* eviction order for s_vtimes *)
  s_busy_since : (int, float) Hashtbl.t;  (* session -> first R_busy time *)
  s_releases : (int, int * int) Hashtbl.t;
      (* session -> (diff from_version, committed version) of its last
         applied Write_release — lets a release retried over a fresh
         connection be recognized as a duplicate instead of refused *)
}

type t = {
  segs : (string, seg) Hashtbl.t;
  mutable next_session : int;
  session_arch : (int, string) Hashtbl.t;
  lease_secs : float option;
      (* with a lease, a disconnect keeps the session's write locks; any
         session quiet for longer than the lease loses them to the next
         contender *)
  session_last : (int, float) Hashtbl.t;  (* session -> last request wall time *)
  lock : Mutex.t;
  t_locked : Iw_locked.t;
      (* instrumented wrapper around [lock]: every request dispatch goes
         through it so wait/hold time, queue depth, and contention events
         are measured at the exact seam ROADMAP item 1 will shard *)
  checkpoint_dir : string option;
  t_store : Iw_store.t option;
      (* write-ahead log of committed diffs; present iff checkpoint_dir is.
         Appended under the server lock inside Write_release, before the
         reply — a crash can only lose updates no client saw acked. *)
  diff_cache_capacity : int;
  t_stats : stats;
  t_metrics : Iw_metrics.t;
  t_flight : Iw_flight.t;
  t_slowlog : Iw_slowlog.t;
  t_phase : Iw_phase.stats;  (* per-(variant, phase) exact histograms *)
  t_ring : Iw_ring.t;  (* windowed metric history, rolled lazily *)
  t_ring_mutex : Mutex.t;
  mutable t_ring_last : (float * Iw_metrics.snapshot) option;
  mutable t_ring_next : float;  (* wall time of the next roll *)
  t_version_advances : Iw_metrics.counter;
  t_locks_reclaimed : Iw_metrics.counter;
  t_sessions_resumed : Iw_metrics.counter;
  mutable prediction : bool;
  t_scratch : Iw_wire.Buf.t;  (* reused payload buffer; handler is serialized *)
  notifiers : (int, Iw_proto.notification -> unit) Hashtbl.t;  (* session -> push *)
  mutable validate_diffs : bool;  (* run Iw_wire_check on incoming diffs *)
}

let stats t = t.t_stats

let store t = t.t_store

let metrics t = t.t_metrics

let flight t = t.t_flight

let slowlog t = t.t_slowlog

let phase_stats t = t.t_phase

let ring t = t.t_ring

let set_prediction t b = t.prediction <- b

let set_validate_diffs t b = t.validate_diffs <- b

(* Version-list primitives. *)

let new_list () =
  let rec head = { prev = head; next = tail; kind = Head }
  and tail = { prev = head; next = tail; kind = Tail } in
  (head, tail)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let append_before tail n =
  n.prev <- tail.prev;
  n.next <- tail;
  tail.prev.next <- n;
  tail.prev <- n

let move_to_tail seg n =
  unlink n;
  append_before seg.s_tail n

(* Variable-size primitives (pointers and strings) use 4-byte handle slots in
   the packed master copy and keep their payloads in [sb_vars]. *)
let is_var : Iw_arch.prim -> bool = function
  | Pointer | String _ -> true
  | Char | Short | Int | Long | Float | Double -> false

(* Encode primitive units [from, upto) of a master copy into run payload
   format — identical to what the client library produces, so the server can
   both forward client diffs verbatim and synthesize its own.  Because the
   master copy is stored packed in wire byte order, spans of fixed-size
   primitives are verbatim byte ranges: no translation, just a copy — the
   reason the paper's server keeps data in wire format (Sec. 3.2). *)
let encode_prims buf sb ~from ~upto =
  Iw_types.fold_spans sb.sb_lay ~from ~upto ~init:()
    ~f:(fun () (s : Iw_types.span) ->
      if is_var s.s_prim then
        for i = 0 to s.s_count - 1 do
          Iw_wire.Buf.string buf
            (match Hashtbl.find_opt sb.sb_vars (s.s_index + i) with
            | Some v -> v
            | None -> "")
        done
      else
        Iw_wire.Buf.raw buf sb.sb_data ~off:s.s_off ~len:(s.s_count * s.s_stride))

let decode_prims r sb ~from ~upto =
  Iw_types.fold_spans sb.sb_lay ~from ~upto ~init:()
    ~f:(fun () (s : Iw_types.span) ->
      if is_var s.s_prim then
        for i = 0 to s.s_count - 1 do
          let v = Iw_wire.Reader.string r in
          if v = "" then Hashtbl.remove sb.sb_vars (s.s_index + i)
          else Hashtbl.replace sb.sb_vars (s.s_index + i) v
        done
      else Iw_wire.Reader.blit r sb.sb_data ~off:s.s_off ~len:(s.s_count * s.s_stride))

let full_payload buf sb =
  Iw_wire.Buf.clear buf;
  encode_prims buf sb ~from:0 ~upto:sb.sb_pcount;
  Iw_wire.Buf.contents buf

let mark_subblocks sb ~from ~upto version =
  let first = from / subblock_units
  and last = (upto - 1) / subblock_units in
  for i = first to last do
    sb.sb_subvers.(i) <- version
  done

(* Server-side diff application (paper, Sec. 3.2): append a marker, move
   modified blocks to the tail of the version list, bump subblock versions. *)

exception Reject of string

let find_block seg serial =
  match Serial_tree.find_opt serial seg.s_blocks with
  | Some sb -> sb
  | None -> raise (Reject (Printf.sprintf "no block with serial %d" serial))

let make_block seg ~serial ~name ~desc_serial ~version =
  let desc =
    match Iw_types.Registry.find seg.s_registry desc_serial with
    | Some d -> d
    | None -> raise (Reject (Printf.sprintf "unregistered descriptor %d" desc_serial))
  in
  let lay = Iw_types.layout Iw_types.wire desc in
  let pcount = Iw_types.layout_prim_count lay in
  let nsub = (pcount + subblock_units - 1) / subblock_units in
  let node = { prev = seg.s_head; next = seg.s_head; kind = Head } in
  let sb =
    {
      sb_serial = serial;
      sb_name = name;
      sb_desc_serial = desc_serial;
      sb_lay = lay;
      sb_pcount = pcount;
      sb_data = Bytes.make (Iw_types.size lay) '\000';
      sb_vars = Hashtbl.create 4;
      sb_created_version = version;
      sb_version = version;
      sb_subvers = Array.make nsub version;
      sb_node = node;
    }
  in
  let node = { prev = node.prev; next = node.next; kind = Blk sb } in
  sb.sb_node <- node;
  sb

(* Per-segment coherence observability.  Series carry a {segment="..."}
   label; registration is idempotent and the registry locks it, so looking
   the instrument up by name at each observation is safe from concurrent
   connection threads — the same pattern as the per-variant dispatch
   histograms.  Every call site is gated on [Iw_metrics.enabled]. *)

let seg_hist_count t seg base help =
  Iw_metrics.histogram_count t.t_metrics ~help
    (Iw_metrics.with_label base "segment" seg.s_name)

let seg_hist_us t seg base help =
  Iw_metrics.histogram_us t.t_metrics ~help
    (Iw_metrics.with_label base "segment" seg.s_name)

let seg_counter t seg base help =
  Iw_metrics.counter t.t_metrics ~help
    (Iw_metrics.with_label base "segment" seg.s_name)

let observe_version_lag t seg ~version =
  Iw_metrics.observe
    (seg_hist_count t seg "iw_seg_version_lag"
       "Server version minus client cached version at lock acquire")
    (float_of_int (max 0 (seg.s_version - version)))

(* Realized staleness: how long ago the client's cached version was
   superseded — i.e. for how long it has been reading data the server had
   already replaced (nonzero in practice only under relaxed coherence).
   Needs the commit wall time of [version + 1], kept in a bounded
   version-time table. *)
let observe_staleness t seg ~version =
  if version > 0 && version < seg.s_version then
    match Hashtbl.find_opt seg.s_vtimes (version + 1) with
    | Some superseded_at ->
      Iw_metrics.observe
        (seg_hist_us t seg "iw_seg_staleness_us"
           "Realized staleness of the client's cached copy at lock acquire")
        (Float.max 0. (Iw_metrics.now_us () -. superseded_at *. 1e6))
    | None -> ()

let observe_wasted_acquire t seg ~version =
  if version > 0 && version = seg.s_version then
    Iw_metrics.incr
      (seg_counter t seg "iw_seg_wasted_acquire_total"
         "Lock acquires that found the client cache already current")

let diff_payload_bytes (diff : Iw_wire.Diff.t) =
  List.fold_left
    (fun acc (c : Iw_wire.Diff.block_change) ->
      match c with
      | Create { payload; _ } -> acc + String.length payload
      | Update { runs; _ } ->
        List.fold_left
          (fun acc (run : Iw_wire.Diff.run) -> acc + String.length run.payload)
          acc runs
      | Free _ -> acc)
    0 diff.changes

(* Bytes a diff saved over shipping the whole segment's master copy — the
   paper's core bandwidth argument, now measurable per segment. *)
let note_diff_saved t seg (diff : Iw_wire.Diff.t) =
  let saved = seg.s_data_bytes - diff_payload_bytes diff in
  if saved > 0 then
    Iw_metrics.incr ~by:saved
      (seg_counter t seg "iw_seg_diff_bytes_saved_total"
         "Bytes saved by diff transfers vs full-segment copies")

let vtimes_capacity = 512

let note_commit_time seg v =
  Hashtbl.replace seg.s_vtimes v (Unix.gettimeofday ());
  Queue.push v seg.s_vtimes_order;
  if Queue.length seg.s_vtimes_order > vtimes_capacity then
    match Queue.take_opt seg.s_vtimes_order with
    | Some old -> Hashtbl.remove seg.s_vtimes old
    | None -> ()

let apply_diff t seg (diff : Iw_wire.Diff.t) =
  if diff.changes = [] && diff.new_descs = [] then seg.s_version
  else begin
    let v = seg.s_version + 1 in
    List.iter (fun (serial, d) -> Iw_types.Registry.adopt seg.s_registry serial d)
      diff.new_descs;
    let marker = { prev = seg.s_head; next = seg.s_head; kind = Marker v } in
    append_before seg.s_tail marker;
    seg.s_markers <- Version_tree.add v marker seg.s_markers;
    List.iter
      (fun (change : Iw_wire.Diff.block_change) ->
        match change with
        | Create { serial; name; desc_serial; payload } ->
          if Serial_tree.mem serial seg.s_blocks then
            raise (Reject (Printf.sprintf "block %d already exists" serial));
          let sb = make_block seg ~serial ~name ~desc_serial ~version:v in
          decode_prims (Iw_wire.Reader.of_string payload) sb ~from:0 ~upto:sb.sb_pcount;
          seg.s_blocks <- Serial_tree.add serial sb seg.s_blocks;
          append_before seg.s_tail sb.sb_node;
          seg.s_total_units <- seg.s_total_units + sb.sb_pcount;
          seg.s_data_bytes <- seg.s_data_bytes + Bytes.length sb.sb_data
        | Update { serial; runs } ->
          (* Last-block prediction: the next modified block is usually the
             next one in the version list (paper, Sec. 3.3). *)
          let sb =
            let predicted =
              if not t.prediction then None
              else
                match seg.s_pred with
                | Some { kind = Blk p; _ } when p.sb_serial = serial -> Some p
                | Some _ | None -> None
            in
            match predicted with
            | Some p ->
              t.t_stats.pred_hits <- t.t_stats.pred_hits + 1;
              p
            | None ->
              t.t_stats.pred_misses <- t.t_stats.pred_misses + 1;
              find_block seg serial
          in
          let rec next_block n =
            match n.next.kind with
            | Blk _ | Tail -> n.next
            | Head | Marker _ -> next_block n.next
          in
          seg.s_pred <- Some (next_block sb.sb_node);
          List.iter
            (fun (run : Iw_wire.Diff.run) ->
              let upto = run.start_pu + run.len_pu in
              if upto > sb.sb_pcount then raise (Reject "run beyond block end");
              decode_prims (Iw_wire.Reader.of_string run.payload) sb ~from:run.start_pu
                ~upto;
              mark_subblocks sb ~from:run.start_pu ~upto v)
            runs;
          sb.sb_version <- v;
          move_to_tail seg sb.sb_node
        | Free { serial } ->
          let sb = find_block seg serial in
          seg.s_blocks <- Serial_tree.remove serial seg.s_blocks;
          unlink sb.sb_node;
          seg.s_frees <- (serial, v) :: seg.s_frees;
          seg.s_total_units <- seg.s_total_units - sb.sb_pcount;
          seg.s_data_bytes <- seg.s_data_bytes - Bytes.length sb.sb_data)
      diff.changes;
    seg.s_version <- v;
    if Iw_metrics.enabled t.t_metrics then note_commit_time seg v;
    t.t_stats.diffs_applied <- t.t_stats.diffs_applied + 1;
    Iw_metrics.incr t.t_version_advances;
    if Iw_metrics.enabled t.t_metrics then
      Iw_metrics.set_gauge
        (Iw_metrics.gauge t.t_metrics ~help:"Current version by segment"
           (Iw_metrics.with_label "iw_server_segment_version" "segment" seg.s_name))
        (float_of_int v);
    if Iw_trace.enabled () then
      Iw_trace.instant
        ~args:[ ("segment", seg.s_name); ("version", string_of_int v) ]
        "server.version_advance";
    (* Account the update against every other session's Diff-coherence
       counter, conservatively assuming independent modifications. *)
    let touched = Iw_wire.Diff.touched_units diff in
    Hashtbl.iter (fun _ c -> c := !c + touched) seg.s_counters;
    (* Cache the writer's diff: subsequent readers one version behind can be
       served without collection (paper, Sec. 3.3, diff caching). *)
    if t.diff_cache_capacity > 0 then begin
      if Hashtbl.length seg.s_diff_cache >= t.diff_cache_capacity then begin
        match Queue.take_opt seg.s_cache_order with
        | Some key -> Hashtbl.remove seg.s_diff_cache key
        | None -> ()
      end;
      Hashtbl.replace seg.s_diff_cache (v - 1, v) diff.changes;
      Queue.push (v - 1, v) seg.s_cache_order
    end;
    v
  end

(* Build the list of changes a client at [since] needs: walk the version list
   from the first marker newer than [since]; every block after it has some
   subblocks newer than [since]. *)
let collect_changes t seg ~since =
  t.t_stats.diffs_collected <- t.t_stats.diffs_collected + 1;
  let start =
    match Version_tree.ceiling (since + 1) seg.s_markers with
    | Some (_, marker) -> marker
    | None -> seg.s_tail
  in
  let changes = ref [] in
  let rec walk n =
    match n.kind with
    | Tail -> ()
    | Head | Marker _ -> walk n.next
    | Blk sb ->
      (if sb.sb_created_version > since then
         changes :=
           Iw_wire.Diff.Create
             {
               serial = sb.sb_serial;
               name = sb.sb_name;
               desc_serial = sb.sb_desc_serial;
               payload = full_payload t.t_scratch sb;
             }
           :: !changes
       else begin
         (* Runs of consecutive subblocks newer than [since]. *)
         let nsub = Array.length sb.sb_subvers in
         let runs = ref [] in
         let i = ref 0 in
         while !i < nsub do
           if sb.sb_subvers.(!i) > since then begin
             let j = ref !i in
             while !j < nsub && sb.sb_subvers.(!j) > since do
               incr j
             done;
             let from = !i * subblock_units
             and upto = min sb.sb_pcount (!j * subblock_units) in
             let buf = t.t_scratch in
             Iw_wire.Buf.clear buf;
             encode_prims buf sb ~from ~upto;
             runs :=
               {
                 Iw_wire.Diff.start_pu = from;
                 len_pu = upto - from;
                 payload = Iw_wire.Buf.contents buf;
               }
               :: !runs;
             i := !j
           end
           else incr i
         done;
         match List.rev !runs with
         | [] -> ()
         | runs -> changes := Iw_wire.Diff.Update { serial = sb.sb_serial; runs } :: !changes
       end);
      walk n.next
  in
  walk start;
  let frees =
    List.filter_map
      (fun (serial, v) -> if v > since then Some (Iw_wire.Diff.Free { serial }) else None)
      seg.s_frees
  in
  frees @ List.rev !changes

(* Diff-cache span merging: if every per-version diff between [since] and the
   current version is cached, the union of their run ranges tells us exactly
   which primitive units the client is missing — at unit granularity, finer
   than the subblock versions collect_changes falls back on.  Payloads are
   encoded fresh from the master copy, so later versions win automatically. *)
let merged_changes t seg ~since =
  let rec gather v acc =
    if v >= seg.s_version then Some (List.rev acc)
    else
      match Hashtbl.find_opt seg.s_diff_cache (v, v + 1) with
      | Some changes -> gather (v + 1) (changes :: acc)
      | None -> None
  in
  match gather since [] with
  | None -> None
  | Some per_version ->
    let created = Hashtbl.create 16 in
    let freed = Hashtbl.create 16 in
    let ranges : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (List.iter (fun (change : Iw_wire.Diff.block_change) ->
           match change with
           | Create { serial; _ } ->
             Hashtbl.replace created serial ();
             order := serial :: !order
           | Update { serial; runs } ->
             if not (Hashtbl.mem created serial) then begin
               let r =
                 match Hashtbl.find_opt ranges serial with
                 | Some r -> r
                 | None ->
                   let r = ref [] in
                   Hashtbl.replace ranges serial r;
                   order := serial :: !order;
                   r
               in
               List.iter
                 (fun (run : Iw_wire.Diff.run) ->
                   r := (run.start_pu, run.start_pu + run.len_pu) :: !r)
                 runs
             end
           | Free { serial } ->
             if Hashtbl.mem created serial then Hashtbl.remove created serial
             else Hashtbl.replace freed serial ();
             Hashtbl.remove ranges serial))
      per_version;
    let normalize l =
      let sorted = List.sort compare l in
      let rec merge = function
        | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 -> merge ((a1, max b1 b2) :: rest)
        | r :: rest -> r :: merge rest
        | [] -> []
      in
      merge sorted
    in
    let frees =
      Hashtbl.fold (fun serial () acc -> Iw_wire.Diff.Free { serial } :: acc) freed []
    in
    let rest =
      List.rev_map
        (fun serial ->
          if Hashtbl.mem created serial then begin
            let sb = find_block seg serial in
            [
              Iw_wire.Diff.Create
                {
                  serial;
                  name = sb.sb_name;
                  desc_serial = sb.sb_desc_serial;
                  payload = full_payload t.t_scratch sb;
                };
            ]
          end
          else
            match Hashtbl.find_opt ranges serial with
            | None -> []
            | Some r ->
              let sb = find_block seg serial in
              let runs =
                List.map
                  (fun (from, upto) ->
                    let upto = min upto sb.sb_pcount in
                    let buf = t.t_scratch in
                    Iw_wire.Buf.clear buf;
                    encode_prims buf sb ~from ~upto;
                    {
                      Iw_wire.Diff.start_pu = from;
                      len_pu = upto - from;
                      payload = Iw_wire.Buf.contents buf;
                    })
                  (normalize !r)
              in
              [ Iw_wire.Diff.Update { serial; runs } ])
        !order
      |> List.concat
    in
    Some (frees @ rest)

let descs_since seg ~since =
  List.filter_map
    (fun (serial, reg_v) ->
      if reg_v >= since then
        match Iw_types.Registry.find seg.s_registry serial with
        | Some d -> Some (serial, d)
        | None -> None
      else None)
    (List.sort compare seg.s_desc_versions)

let update_for t seg ~session ~since =
  let changes =
    match Hashtbl.find_opt seg.s_diff_cache (since, seg.s_version) with
    | Some changes ->
      t.t_stats.diff_cache_hits <- t.t_stats.diff_cache_hits + 1;
      changes
    | None -> begin
      match merged_changes t seg ~since with
      | Some changes ->
        t.t_stats.diff_cache_hits <- t.t_stats.diff_cache_hits + 1;
        changes
      | None ->
        t.t_stats.diff_cache_misses <- t.t_stats.diff_cache_misses + 1;
        let changes = collect_changes t seg ~since in
        if t.diff_cache_capacity > 0 then begin
          Hashtbl.replace seg.s_diff_cache (since, seg.s_version) changes;
          Queue.push (since, seg.s_version) seg.s_cache_order
        end;
        changes
    end
  in
  (match Hashtbl.find_opt seg.s_counters session with
  | Some c -> c := 0
  | None -> Hashtbl.replace seg.s_counters session (ref 0));
  {
    Iw_wire.Diff.from_version = since;
    to_version = seg.s_version;
    new_descs = descs_since seg ~since;
    changes;
  }

let fresh_seg name =
  let head, tail = new_list () in
  {
    s_name = name;
    s_version = 0;
    s_registry = Iw_types.Registry.create ();
    s_desc_versions = [];
    s_blocks = Serial_tree.empty;
    s_head = head;
    s_tail = tail;
    s_markers = Version_tree.empty;
    s_frees = [];
    s_total_units = 0;
    s_counters = Hashtbl.create 8;
    s_writer = None;
    s_diff_cache = Hashtbl.create 16;
    s_cache_order = Queue.create ();
    s_pred = None;
    s_subscribers = Hashtbl.create 8;
    s_data_bytes = 0;
    s_vtimes = Hashtbl.create 64;
    s_vtimes_order = Queue.create ();
    s_busy_since = Hashtbl.create 4;
    s_releases = Hashtbl.create 4;
  }

(* Checkpointing (paper, Sec. 2.2): serialize each segment — metadata,
   version list order, block contents — to a file in the checkpoint
   directory.  Since IWCKPT02 a checkpoint carries a whole-file CRC trailer
   and is written through the store's atomic-replace barrier (write temp,
   fsync file, rename, fsync directory), so a crash mid-checkpoint leaves
   either the old complete file or the new one — and a file that fails
   validation at load is quarantined, with the write-ahead log as the
   fallback, instead of aborting startup.  IWCKPT03 appends the segment's
   release-dedup table, which must survive the log truncation the
   checkpoint performs. *)

let write_checkpoint dir seg =
  let buf = Iw_wire.Buf.create ~capacity:65536 () in
  Iw_wire.Buf.string buf Iw_store.checkpoint_magic;
  Iw_wire.Buf.string buf seg.s_name;
  Iw_wire.Buf.u32 buf seg.s_version;
  let descs = Iw_types.Registry.registered_since seg.s_registry 0 in
  Iw_wire.Buf.u32 buf (List.length descs);
  List.iter
    (fun (serial, d) ->
      Iw_wire.Buf.u32 buf serial;
      Iw_wire.put_desc buf d)
    descs;
  Iw_wire.Buf.u32 buf (List.length seg.s_desc_versions);
  List.iter
    (fun (s, v) ->
      Iw_wire.Buf.u32 buf s;
      Iw_wire.Buf.u32 buf v)
    seg.s_desc_versions;
  Iw_wire.Buf.u32 buf (List.length seg.s_frees);
  List.iter
    (fun (s, v) ->
      Iw_wire.Buf.u32 buf s;
      Iw_wire.Buf.u32 buf v)
    seg.s_frees;
  (* Version list in order: markers and blocks. *)
  let rec count n acc =
    match n.kind with
    | Tail -> acc
    | Head -> count n.next acc
    | Marker _ | Blk _ -> count n.next (acc + 1)
  in
  Iw_wire.Buf.u32 buf (count seg.s_head.next 0);
  let rec walk n =
    (match n.kind with
    | Tail | Head -> ()
    | Marker v ->
      Iw_wire.Buf.u8 buf 0;
      Iw_wire.Buf.u32 buf v
    | Blk sb ->
      Iw_wire.Buf.u8 buf 1;
      Iw_wire.Buf.u32 buf sb.sb_serial;
      (match sb.sb_name with
      | None -> Iw_wire.Buf.u8 buf 0
      | Some nm ->
        Iw_wire.Buf.u8 buf 1;
        Iw_wire.Buf.string buf nm);
      Iw_wire.Buf.u32 buf sb.sb_desc_serial;
      Iw_wire.Buf.u32 buf sb.sb_created_version;
      Iw_wire.Buf.u32 buf sb.sb_version;
      Iw_wire.Buf.u32 buf (Array.length sb.sb_subvers);
      Array.iter (fun v -> Iw_wire.Buf.u32 buf v) sb.sb_subvers;
      Iw_wire.Buf.lstring buf (Bytes.to_string sb.sb_data);
      Iw_wire.Buf.u32 buf (Hashtbl.length sb.sb_vars);
      Hashtbl.iter
        (fun idx s ->
          Iw_wire.Buf.u32 buf idx;
          Iw_wire.Buf.string buf s)
        sb.sb_vars);
    if n.kind <> Tail then walk n.next
  in
  walk seg.s_head.next;
  (* Since IWCKPT03 the release-dedup table rides in the checkpoint.  The
     checkpoint truncates the write-ahead log — whose commit records are the
     only other place the table can be rebuilt from — so without this
     section, commit -> crash -> recover -> checkpoint -> crash -> recover
     refuses a client's retried release and forces a duplicate re-apply
     (Iw_model invariant MDL04; `iw-check --model --crash --model-broken
     no-dedup-rebuild` prints the five-step schedule). *)
  Iw_wire.Buf.u32 buf (Hashtbl.length seg.s_releases);
  Hashtbl.iter
    (fun session (from_v, v) ->
      Iw_wire.Buf.u32 buf session;
      Iw_wire.Buf.u32 buf from_v;
      Iw_wire.Buf.u32 buf v)
    seg.s_releases;
  let path =
    Filename.concat dir
      (Iw_store.escape_name seg.s_name ^ Iw_store.checkpoint_suffix)
  in
  Iw_store.write_atomically path (Iw_store.seal (Iw_wire.Buf.contents buf))

let read_checkpoint path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let body =
    match Iw_store.unseal data with
    | Some body -> body
    | None -> raise (Iw_wire.Malformed "checkpoint CRC trailer mismatch")
  in
  let r = Iw_wire.Reader.of_string body in
  if Iw_wire.Reader.string r <> Iw_store.checkpoint_magic then
    raise (Iw_wire.Malformed "bad checkpoint magic");
  let name = Iw_wire.Reader.string r in
  let seg = fresh_seg name in
  seg.s_version <- Iw_wire.Reader.u32 r;
  let ndescs = Iw_wire.Reader.u32 r in
  for _ = 1 to ndescs do
    let serial = Iw_wire.Reader.u32 r in
    Iw_types.Registry.adopt seg.s_registry serial (Iw_wire.get_desc r)
  done;
  let ndv = Iw_wire.Reader.u32 r in
  seg.s_desc_versions <-
    List.init ndv (fun _ ->
        let s = Iw_wire.Reader.u32 r in
        let v = Iw_wire.Reader.u32 r in
        (s, v));
  let nfrees = Iw_wire.Reader.u32 r in
  seg.s_frees <-
    List.init nfrees (fun _ ->
        let s = Iw_wire.Reader.u32 r in
        let v = Iw_wire.Reader.u32 r in
        (s, v));
  let nnodes = Iw_wire.Reader.u32 r in
  for _ = 1 to nnodes do
    match Iw_wire.Reader.u8 r with
    | 0 ->
      let v = Iw_wire.Reader.u32 r in
      let marker = { prev = seg.s_head; next = seg.s_head; kind = Marker v } in
      append_before seg.s_tail marker;
      seg.s_markers <- Version_tree.add v marker seg.s_markers
    | 1 ->
      let serial = Iw_wire.Reader.u32 r in
      let name = if Iw_wire.Reader.u8 r = 1 then Some (Iw_wire.Reader.string r) else None in
      let desc_serial = Iw_wire.Reader.u32 r in
      let created = Iw_wire.Reader.u32 r in
      let version = Iw_wire.Reader.u32 r in
      let sb = make_block seg ~serial ~name ~desc_serial ~version:created in
      sb.sb_version <- version;
      let nsub = Iw_wire.Reader.u32 r in
      if nsub <> Array.length sb.sb_subvers then
        raise (Iw_wire.Malformed "checkpoint subblock count mismatch");
      for i = 0 to nsub - 1 do
        sb.sb_subvers.(i) <- Iw_wire.Reader.u32 r
      done;
      let data = Iw_wire.Reader.lstring r in
      Bytes.blit_string data 0 sb.sb_data 0 (Bytes.length sb.sb_data);
      let nvars = Iw_wire.Reader.u32 r in
      for _ = 1 to nvars do
        let idx = Iw_wire.Reader.u32 r in
        Hashtbl.replace sb.sb_vars idx (Iw_wire.Reader.string r)
      done;
      seg.s_blocks <- Serial_tree.add serial sb seg.s_blocks;
      append_before seg.s_tail sb.sb_node;
      seg.s_total_units <- seg.s_total_units + sb.sb_pcount;
      seg.s_data_bytes <- seg.s_data_bytes + Bytes.length sb.sb_data
    | t -> raise (Iw_wire.Malformed (Printf.sprintf "bad checkpoint node tag %d" t))
  done;
  let nreleases = Iw_wire.Reader.u32 r in
  for _ = 1 to nreleases do
    let session = Iw_wire.Reader.u32 r in
    let from_v = Iw_wire.Reader.u32 r in
    let v = Iw_wire.Reader.u32 r in
    Hashtbl.replace seg.s_releases session (from_v, v)
  done;
  seg

(* Startup recovery: load every checkpoint that validates (quarantining the
   ones that do not), then replay each segment's write-ahead log past its
   checkpoint version.  Replay applies exactly the prefix of commit records
   that continues the checkpoint — stale records (already covered by the
   checkpoint) are skipped, a version gap or application failure stops the
   segment's replay at the last consistent state — and rebuilds the
   release-dedup table from every commit record so a release retried across
   the restart is still answered with its committed version. *)
let recover_store t store =
  let dir = Iw_store.dir store in
  let files = Sys.readdir dir in
  Array.sort compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f Iw_store.checkpoint_suffix then begin
        let path = Filename.concat dir f in
        match read_checkpoint path with
        | seg -> Hashtbl.replace t.segs seg.s_name seg
        | exception (Iw_wire.Malformed msg | Sys_error msg) ->
          let dst = Iw_store.quarantine path in
          Printf.eprintf
            "iw-server: checkpoint %s: %s; quarantined as %s, falling back \
             to log replay\n\
             %!"
            path msg dst;
          if Iw_flight.enabled t.t_flight then
            Iw_flight.record t.t_flight "ckpt_quarantine"
      end)
    files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f Iw_store.log_suffix then begin
        let t0 = Iw_metrics.now_us () in
        match Iw_store.recover_log store ~file:f with
        | None -> ()
        | Some (name, entries) ->
          let seg =
            match Hashtbl.find_opt t.segs name with
            | Some seg -> seg
            | None ->
              let seg = fresh_seg name in
              Hashtbl.replace t.segs name seg;
              seg
          in
          let base = seg.s_version in
          let replayed = ref 0 in
          let stop = ref false in
          List.iter
            (fun entry ->
              if not !stop then
                match entry with
                | Iw_store.Desc { serial; version; desc } ->
                  if Iw_types.Registry.find seg.s_registry serial = None then begin
                    Iw_types.Registry.adopt seg.s_registry serial desc;
                    seg.s_desc_versions <- (serial, version) :: seg.s_desc_versions
                  end
                | Iw_store.Commit { session; version; diff } ->
                  Hashtbl.replace seg.s_releases session
                    (diff.Iw_wire.Diff.from_version, version);
                  if version <= seg.s_version then ()
                  else if version = seg.s_version + 1 then begin
                    match apply_diff t seg diff with
                    | v when v = version -> incr replayed
                    | v ->
                      Printf.eprintf
                        "iw-server: %s: replaying version %d produced %d; \
                         stopping replay\n\
                         %!"
                        name version v;
                      stop := true
                    | exception Reject msg ->
                      Printf.eprintf
                        "iw-server: %s: log record for version %d rejected \
                         (%s); stopping replay at version %d\n\
                         %!"
                        name version msg seg.s_version;
                      stop := true
                  end
                  else begin
                    Printf.eprintf
                      "iw-server: %s: log jumps from version %d to %d; \
                       stopping replay\n\
                       %!"
                      name seg.s_version version;
                    stop := true
                  end)
            entries;
          Iw_store.note_recovery_us store (Iw_metrics.now_us () -. t0);
          if Iw_flight.enabled t.t_flight then
            Iw_flight.record t.t_flight ~segment:name ~version:seg.s_version
              "store_replay";
          if !replayed > 0 then
            Printf.eprintf
              "iw-server: %s: recovered to version %d (checkpoint %d + %d \
               replayed commit(s))\n\
               %!"
              name seg.s_version base !replayed
      end)
    files

let create ?checkpoint_dir ?(diff_cache_capacity = 64) ?lease_secs ?fsync () =
  (* Server metrics are on by default (IW_METRICS=0 disables): a server is a
     shared, long-lived process, and iw-admin stats should find live data. *)
  let t_metrics =
    Iw_metrics.create ~enabled:(Iw_metrics.env_enabled ~default:true) ()
  in
  let t_stats =
    {
      requests = 0;
      diffs_applied = 0;
      diffs_collected = 0;
      diff_cache_hits = 0;
      diff_cache_misses = 0;
      pred_hits = 0;
      pred_misses = 0;
    }
  in
  let segs = Hashtbl.create 16 in
  (* Re-back the flat stats record onto the registry as collect-time
     probes, mirroring the client. *)
  let i name help read =
    Iw_metrics.probe t_metrics ~help ~kind:`Counter name
      (fun () -> float_of_int (read ()))
  in
  i "iw_server_requests_total" "Requests handled" (fun () -> t_stats.requests);
  i "iw_server_diffs_applied_total" "Write-release diffs applied"
    (fun () -> t_stats.diffs_applied);
  i "iw_server_diffs_collected_total" "Diffs collected from the version list"
    (fun () -> t_stats.diffs_collected);
  i "iw_server_diff_cache_hits_total" "Update requests served from the diff cache"
    (fun () -> t_stats.diff_cache_hits);
  i "iw_server_diff_cache_misses_total" "Update requests requiring collection"
    (fun () -> t_stats.diff_cache_misses);
  i "iw_server_pred_hits_total" "Last-block prediction hits" (fun () -> t_stats.pred_hits);
  i "iw_server_pred_misses_total" "Last-block prediction misses"
    (fun () -> t_stats.pred_misses);
  Iw_metrics.probe t_metrics ~help:"Open segments" ~kind:`Gauge "iw_server_segments"
    (fun () -> float_of_int (Hashtbl.length segs));
  (* The flight recorder stays on even when metrics are off: its hot path is
     a few stores, and it exists for the crashes that happen when nobody was
     watching.  IW_FLIGHT=0 disables it. *)
  let t_flight =
    Iw_flight.create ~enabled:(Iw_flight.env_enabled ~default:true) ()
  in
  (* Slow-request sampling is always armed (IW_SLOWLOG_K=0 disables): it is
     O(K) memory and a comparison per request, and like the flight recorder
     it exists for the slowness nobody was watching for. *)
  let t_slowlog = Iw_slowlog.of_env () in
  (* The one big lock, wrapped so its cost is measured at the seam the
     per-shard split (ROADMAP item 1) will replace. *)
  let lock = Mutex.create () in
  let t_locked =
    Iw_locked.create ~metrics:t_metrics ~prefix:"iw_server_lock" lock
  in
  Iw_metrics.probe t_metrics
    ~help:"Requests inside the dispatch critical section (waiting or holding)"
    ~kind:`Gauge "iw_server_inflight"
    (fun () -> float_of_int (Iw_locked.inflight t_locked));
  Iw_metrics.probe t_metrics
    ~help:"Requests blocked waiting for the server lock" ~kind:`Gauge
    "iw_server_lock_queue_depth"
    (fun () -> float_of_int (Iw_locked.queue_depth t_locked));
  (* A lock acquisition that waited past the contention threshold leaves a
     flight-recorder breadcrumb, so a saturation episode is visible in
     crash dumps, not just in histograms. *)
  Iw_locked.set_on_contention t_locked (fun ~wait_us ~variant ~segment ->
      if Iw_flight.enabled t_flight then
        Iw_flight.record t_flight ~segment ~latency_us:wait_us
          ("lock_contention:" ^ variant));
  let t_store =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
      let fsync =
        match fsync with
        | Some f -> f
        | None -> Iw_store.env_fsync ~default:(Iw_store.Interval 1.0)
      in
      Some (Iw_store.create ~fsync ~metrics:t_metrics ~flight:t_flight dir)
  in
  let t =
    {
      segs;
      next_session = 1;
      session_arch = Hashtbl.create 16;
      lease_secs;
      session_last = Hashtbl.create 16;
      lock;
      t_locked;
      checkpoint_dir;
      t_store;
      diff_cache_capacity;
      t_scratch = Iw_wire.Buf.create ~capacity:65536 ();
      notifiers = Hashtbl.create 16;
      validate_diffs = false;
      t_stats;
      t_metrics;
      t_flight;
      t_slowlog;
      t_phase = Iw_phase.create_stats ();
      t_ring = Iw_ring.of_env ();
      t_ring_mutex = Mutex.create ();
      t_ring_last = None;
      t_ring_next = 0.;
      t_version_advances =
        Iw_metrics.counter t_metrics ~help:"Segment version advances"
          "iw_server_version_advances_total";
      t_locks_reclaimed =
        Iw_metrics.counter t_metrics
          ~help:"Write locks reclaimed from sessions that outlived their lease"
          "iw_server_locks_reclaimed_total";
      t_sessions_resumed =
        Iw_metrics.counter t_metrics
          ~help:"Sessions re-attached by Resume_session after a reconnect"
          "iw_server_sessions_resumed_total";
      prediction = true;
    }
  in
  (match t_store with
  | Some store -> recover_store t store
  | None -> ());
  t

(* One segment checkpoint is also a log barrier: the checkpoint is durably in
   place (atomic replace, fsynced) before the log resets, so a crash between
   the two merely leaves stale records that replay skips. *)
let checkpoint_locked t =
  match t.checkpoint_dir with
  | None -> ()
  | Some dir ->
    Hashtbl.iter
      (fun _ seg ->
        write_checkpoint dir seg;
        match t.t_store with
        (* lck-ok: LCK002 the checkpoint is a log barrier: truncating under
           the lock is what makes "checkpoint then truncate" atomic with
           respect to concurrent commits.  ROADMAP item 1 moves this to a
           per-shard group commit off the hot path. *)
        | Some store -> Iw_store.truncate store ~segment:seg.s_name
        | None -> ())
      t.segs

let checkpoint t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> checkpoint_locked t)

let segment_names t =
  Mutex.lock t.lock;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.segs [] in
  Mutex.unlock t.lock;
  List.sort compare names

let seg_of t name =
  match Hashtbl.find_opt t.segs name with
  | Some seg -> seg
  | None -> raise (Reject (Printf.sprintf "unknown segment %S" name))

(* What Iw_wire_check needs to know about a segment: descriptor serials and
   block extents.  The closures read the live server structures, so callers
   outside [handle] must not race with concurrent request handling. *)
let ctx_of_seg seg =
  {
    Iw_wire_check.cx_desc = (fun serial -> Iw_types.Registry.find seg.s_registry serial);
    cx_block =
      (fun serial ->
        match Serial_tree.find_opt serial seg.s_blocks with
        | Some sb -> Some (sb.sb_desc_serial, sb.sb_pcount)
        | None -> None);
  }

let diff_ctx t name =
  match Hashtbl.find_opt t.segs name with
  | Some seg -> ctx_of_seg seg
  | None -> Iw_wire_check.empty_ctx

(* ---- Metric history ring ----

   Every [IW_RING_WINDOW_S] seconds the request path (lazily — no
   dedicated thread) folds the metric snapshot into one Iw_ring point of
   derived scalars: counter and histogram rates, gauge levels, and
   windowed p50/p99 from bucket deltas.  Only unlabeled server/store
   series plus the per-variant request and per-phase histograms are kept,
   so a point's size is bounded regardless of segment count. *)

let ring_keep name =
  (String.starts_with ~prefix:"iw_server_" name
  || String.starts_with ~prefix:"iw_store_" name)
  && (not (String.contains name '{')
     || String.starts_with ~prefix:"iw_server_request_us{variant=" name
     || String.starts_with ~prefix:"iw_server_phase_us{phase=" name)

(* Bucket-wise histogram delta, clamped at zero so a restarted server (or
   a reset registry) yields an empty window instead of negative counts. *)
let ring_delta_hist (nw : Iw_metrics.hist_view) (old : Iw_metrics.hist_view option)
    =
  match old with
  | Some o when Array.length o.hv_counts = Array.length nw.hv_counts ->
    {
      nw with
      Iw_metrics.hv_counts =
        Array.mapi (fun i c -> max 0 (c - o.hv_counts.(i))) nw.hv_counts;
      hv_count = max 0 (nw.hv_count - o.hv_count);
      hv_sum = Float.max 0. (nw.hv_sum -. o.hv_sum);
    }
  | Some _ | None -> nw

let ring_point ~t0 ~t1 old_snap new_snap =
  let dt = Float.max 1e-9 (t1 -. t0) in
  let values =
    List.concat_map
      (fun (s : Iw_metrics.sample) ->
        if not (ring_keep s.s_name) then []
        else
          match s.s_value with
          | Iw_metrics.V_counter v ->
            let prev =
              match Iw_metrics.find old_snap s.s_name with
              | Some (Iw_metrics.V_counter p) -> p
              | _ -> 0.
            in
            [ (s.s_name ^ ":rate", Float.max 0. ((v -. prev) /. dt)) ]
          | Iw_metrics.V_gauge v -> [ (s.s_name, v) ]
          | Iw_metrics.V_hist hv ->
            let prev =
              match Iw_metrics.find old_snap s.s_name with
              | Some (Iw_metrics.V_hist p) -> Some p
              | _ -> None
            in
            let d = ring_delta_hist hv prev in
            let rate = float_of_int d.Iw_metrics.hv_count /. dt in
            if d.Iw_metrics.hv_count = 0 then [ (s.s_name ^ ":rate", rate) ]
            else
              [
                (s.s_name ^ ":rate", rate);
                (s.s_name ^ ":p50", Iw_metrics.hist_quantile d 0.5);
                (s.s_name ^ ":p99", Iw_metrics.hist_quantile d 0.99);
              ])
      new_snap
  in
  { Iw_ring.p_t = t1; p_dur = t1 -. t0; p_values = values }

(* Roll the ring if a window has elapsed.  Called at the end of request
   dispatch (outside the server lock) and from the Metrics_history handler
   (under it); the ring mutex is a leaf, so both orders are safe.  An idle
   server rolls on its next request — the point's [p_dur] then honestly
   exceeds the window. *)
let maybe_roll t =
  if Iw_metrics.enabled t.t_metrics then begin
    let now = Unix.gettimeofday () in
    if now >= t.t_ring_next then begin
      Mutex.lock t.t_ring_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.t_ring_mutex)
        (fun () ->
          if now >= t.t_ring_next then begin
            t.t_ring_next <- now +. Iw_ring.window_s t.t_ring;
            let snap = Iw_metrics.snapshot t.t_metrics in
            (match t.t_ring_last with
            | Some (t0, old) when now > t0 ->
              Iw_ring.push t.t_ring (ring_point ~t0 ~t1:now old snap)
            | _ -> ());
            t.t_ring_last <- Some (now, snap)
          end)
    end
  end

(* Bracket a write-ahead-log append as the WAL phase: it runs inside the
   service (lock-held) phase, and exclusive attribution means the fsync
   cost shows up as WAL, not service. *)
let wal_phase timer f =
  match timer with
  | None -> f ()
  | Some tm ->
    Iw_phase.enter tm Iw_phase.Wal;
    Fun.protect ~finally:(fun () -> Iw_phase.leave tm Iw_phase.Wal) f

let handle_locked ?timer t (req : Iw_proto.request) : Iw_proto.response =
  t.t_stats.requests <- t.t_stats.requests + 1;
  (* Any request from a session refreshes its inactivity lease. *)
  (match t.lease_secs with
  | None -> ()
  | Some _ -> (
    match Iw_proto.request_session req with
    | Some session -> Hashtbl.replace t.session_last session (Unix.gettimeofday ())
    | None -> ()));
  match req with
  | Hello { arch } ->
    let session = t.next_session in
    t.next_session <- session + 1;
    Hashtbl.replace t.session_arch session arch;
    if t.lease_secs <> None then
      Hashtbl.replace t.session_last session (Unix.gettimeofday ());
    R_hello { session }
  | Resume_session { session; arch } ->
    if Hashtbl.mem t.session_arch session then begin
      Hashtbl.replace t.session_arch session arch;
      let held =
        Hashtbl.fold
          (fun name seg acc ->
            if seg.s_writer = Some session then name :: acc else acc)
          t.segs []
      in
      Iw_metrics.incr t.t_sessions_resumed;
      R_resumed { held = List.sort compare held }
    end
    else R_error (Printf.sprintf "unknown session %d" session)
  | Open_segment { session = _; name; create } -> begin
    match Hashtbl.find_opt t.segs name with
    | Some seg -> R_segment { version = seg.s_version }
    | None ->
      if not create then R_error (Printf.sprintf "unknown segment %S" name)
      else begin
        Hashtbl.replace t.segs name (fresh_seg name);
        R_segment { version = 0 }
      end
  end
  | Segment_meta { session = _; name } ->
    let seg = seg_of t name in
    let blocks =
      Serial_tree.fold
        (fun serial sb acc ->
          {
            Iw_proto.mb_serial = serial;
            mb_name = sb.sb_name;
            mb_desc_serial = sb.sb_desc_serial;
          }
          :: acc)
        seg.s_blocks []
      |> List.rev
    in
    R_meta
      {
        version = seg.s_version;
        descs = Iw_types.Registry.registered_since seg.s_registry 0;
        blocks;
      }
  | Read_lock { session; name; version; coherence } ->
    let seg = seg_of t name in
    let recent_enough =
      version = seg.s_version
      || version > 0
         &&
         match coherence with
         | Full | Temporal _ -> false
         | Delta x -> seg.s_version - version <= x
         | Diff_pct pct ->
           seg.s_total_units > 0
           &&
        let counter =
          match Hashtbl.find_opt seg.s_counters session with
          | Some c -> !c
          | None ->
            (* Unknown session: be conservative, as the paper's server is. *)
            max_int
        in
        float_of_int counter /. float_of_int seg.s_total_units *. 100. <= pct
    in
    if Iw_metrics.enabled t.t_metrics then begin
      observe_version_lag t seg ~version;
      observe_staleness t seg ~version;
      observe_wasted_acquire t seg ~version
    end;
    if recent_enough then R_up_to_date
    else begin
      let diff = update_for t seg ~session ~since:version in
      if Iw_metrics.enabled t.t_metrics then note_diff_saved t seg diff;
      R_update diff
    end
  | Read_release _ -> R_ok
  | Write_lock { session; name; version } ->
    let seg = seg_of t name in
    (* Lazy lease reclamation: a write lock leased to a session that has
       been quiet past its lease is taken from it here, at the moment a
       contender asks — no reaper thread.  The old holder's eventual
       Write_release finds no lock and no duplicate-release record, so the
       loss is surfaced to it (the client maps that to [Lock_lost]). *)
    (match (seg.s_writer, t.lease_secs) with
    | Some s, Some lease when s <> session ->
      let quiet_for =
        match Hashtbl.find_opt t.session_last s with
        | Some last -> Unix.gettimeofday () -. last
        | None -> infinity
      in
      if quiet_for > lease then begin
        seg.s_writer <- None;
        Iw_metrics.incr t.t_locks_reclaimed;
        if Iw_flight.enabled t.t_flight then
          Iw_flight.record t.t_flight ~segment:name ~version:seg.s_version
            "lock_reclaim"
      end
    | _ -> ());
    begin
      match seg.s_writer with
      | Some s when s <> session ->
        if
          Iw_metrics.enabled t.t_metrics
          && not (Hashtbl.mem seg.s_busy_since session)
        then Hashtbl.replace seg.s_busy_since session (Iw_metrics.now_us ());
        R_busy
      | Some _ | None ->
        if Iw_metrics.enabled t.t_metrics then begin
          observe_version_lag t seg ~version;
          observe_wasted_acquire t seg ~version;
          (* Contended waits only: the retry loop's first R_busy started the
             clock, the grant stops it. *)
          match Hashtbl.find_opt seg.s_busy_since session with
          | Some since ->
            Hashtbl.remove seg.s_busy_since session;
            Iw_metrics.observe
              (seg_hist_us t seg "iw_seg_wl_wait_us"
                 "Write-lock wait under contention, first busy to grant")
              (Iw_metrics.now_us () -. since)
          | None -> ()
        end;
        seg.s_writer <- Some session;
        if version = seg.s_version then R_granted None
        else begin
          let diff = update_for t seg ~session ~since:version in
          if Iw_metrics.enabled t.t_metrics then note_diff_saved t seg diff;
          R_granted (Some diff)
        end
    end
  | Write_release { session; name; diff } ->
    let seg = seg_of t name in
    begin
      match seg.s_writer with
      | Some s when s = session ->
        if t.validate_diffs then begin
          match Iw_wire_check.check (ctx_of_seg seg) diff with
          | [] -> ()
          | issues ->
            (* Refuse the whole diff before any of it is applied, and drop
               the write lock so the segment is not wedged. *)
            seg.s_writer <- None;
            raise
              (Reject
                 (Printf.sprintf "invalid diff: %s"
                    (String.concat "; "
                       (List.map
                          (fun i -> Format.asprintf "%a" Iw_wire_check.pp_issue i)
                          issues))))
        end;
        if Iw_metrics.enabled t.t_metrics then note_diff_saved t seg diff;
        let before = seg.s_version in
        let v = apply_diff t seg diff in
        (* Log before acking: once R_version goes out, the commit must
           survive a crash.  An append failure (disk full, EIO) propagates
           and kills the connection — no ack without a durable record. *)
        (match t.t_store with
        | Some store when v > before ->
          wal_phase timer (fun () ->
              (* lck-ok: LCK002 log-before-ack requires the append inside the
                 commit's critical section; Iw_model invariant MDL02 is the
                 spec.  ROADMAP item 1 replaces this with per-shard group
                 commit rather than moving the append outside the lock. *)
              Iw_store.append store ~segment:name
                (Iw_store.Commit { session; version = v; diff }))
        | _ -> ());
        seg.s_writer <- None;
        Hashtbl.replace seg.s_releases session (diff.Iw_wire.Diff.from_version, v);
        if v > before then
          Hashtbl.iter
            (fun subscriber () ->
              if subscriber <> session then begin
                match Hashtbl.find_opt t.notifiers subscriber with
                | Some push -> begin
                  try push { Iw_proto.n_segment = name; n_version = v }
                  with Iw_transport.Closed -> ()
                end
                | None -> ()
              end)
            seg.s_subscribers;
        R_version v
      | Some _ | None -> (
        (* A release resent after a reconnect may duplicate one that was
           applied just before the connection died; recognize it by the
           session and the diff's base version and return the same answer
           instead of refusing. *)
        match Hashtbl.find_opt seg.s_releases session with
        | Some (from, v) when from = diff.Iw_wire.Diff.from_version -> R_version v
        | _ -> R_error "write lock not held")
    end
  | Register_desc { session = _; name; desc } ->
    let seg = seg_of t name in
    let existing = Iw_types.Registry.serial_of seg.s_registry desc in
    let serial = Iw_types.Registry.register seg.s_registry desc in
    if existing = None then begin
      seg.s_desc_versions <- (serial, seg.s_version) :: seg.s_desc_versions;
      (* Descriptors registered since the checkpoint must survive too: a
         replayed Create diff needs its descriptor already adopted. *)
      match t.t_store with
      | Some store ->
        wal_phase timer (fun () ->
            (* lck-ok: LCK002 descriptor registration must be durable before
               R_serial goes out, same log-before-ack discipline as commits
               (ROADMAP item 1 for the group-commit plan). *)
            Iw_store.append store ~segment:name
              (Iw_store.Desc { serial; version = seg.s_version; desc }))
      | None -> ()
    end;
    R_serial serial
  | Get_version { session = _; name } -> R_version (seg_of t name).s_version
  | Checkpoint _ ->
    checkpoint_locked t;
    R_ok
  | Enable_crc _ ->
    (* Acking is the negotiation: the reply still travels unprotected, then
       both sides flip their senders (see serve_conn and the client dial). *)
    R_ok
  | Subscribe { session; name } ->
    Hashtbl.replace (seg_of t name).s_subscribers session ();
    R_ok
  | Unsubscribe { session; name } ->
    Hashtbl.remove (seg_of t name).s_subscribers session;
    R_ok
  | Stat { session = _; name } ->
    let seg = seg_of t name in
    R_stat
      {
        st_version = seg.s_version;
        st_blocks = Serial_tree.cardinal seg.s_blocks;
        st_total_units = seg.s_total_units;
        st_diff_cache_hits = t.t_stats.diff_cache_hits;
        st_diff_cache_misses = t.t_stats.diff_cache_misses;
      }
  | Server_stats _ ->
    (* The server's own registry plus the process-global transport registry:
       one snapshot describes the whole server process. *)
    R_server_stats
      (Iw_metrics.snapshot t.t_metrics
      @ Iw_metrics.snapshot (Iw_transport.metrics ()))
  | Segment_stats { session = _; segment } ->
    (* Just the {segment="..."} series, optionally narrowed to one segment —
       what iw-admin segstats renders.  Per-segment series carry exactly one
       label, so matching the rendered label set is exact. *)
    let keep =
      match segment with
      | Some name ->
        let suffix = Iw_metrics.with_label "" "segment" name in
        fun (s : Iw_metrics.sample) -> String.ends_with ~suffix s.s_name
      | None ->
        fun (s : Iw_metrics.sample) ->
          (match String.index_opt s.s_name '{' with
          | Some i ->
            String.length s.s_name - i > 9
            && String.sub s.s_name (i + 1) 9 = "segment=\""
          | None -> false)
    in
    R_segment_stats (List.filter keep (Iw_metrics.snapshot t.t_metrics))
  | Flight_recorder _ -> R_flight (Iw_flight.dump_string t.t_flight)
  | Slow_log { session = _; limit } ->
    (* limit = 0 means "everything retained". *)
    R_slow_log
      (if limit > 0 then Iw_slowlog.snapshot ~limit t.t_slowlog
       else Iw_slowlog.snapshot t.t_slowlog)
  | Metrics_history { session = _; limit } ->
    (* Roll first so an otherwise idle server still answers with a window
       covering the time since the last roll. *)
    maybe_roll t;
    let pts = Iw_ring.points t.t_ring in
    let n = List.length pts in
    R_metrics_history
      (if limit > 0 && n > limit then
         List.filteri (fun i _ -> i >= n - limit) pts
       else pts)

(* What the flight recorder and span args can say about a request/response
   pair without holding the server lock. *)
let request_segment : Iw_proto.request -> string = function
  | Hello _ | Checkpoint _ | Server_stats _ | Flight_recorder _ | Resume_session _
  | Enable_crc _ | Slow_log _ | Metrics_history _ ->
    ""
  | Segment_stats { segment; _ } -> Option.value segment ~default:""
  | Open_segment { name; _ }
  | Segment_meta { name; _ }
  | Read_lock { name; _ }
  | Read_release { name; _ }
  | Write_lock { name; _ }
  | Write_release { name; _ }
  | Register_desc { name; _ }
  | Get_version { name; _ }
  | Stat { name; _ }
  | Subscribe { name; _ }
  | Unsubscribe { name; _ } -> name

(* Dispatch through the instrumented critical section: the wait and hold
   show up in the lock histograms (and in the request's phase timer as
   Lock_wait/Service) attributed to this variant and segment. *)
let handle_plain ?timer t req =
  Iw_locked.with_lock t.t_locked
    ~variant:(Iw_proto.request_variant req)
    ~segment:(request_segment req) ?timer
    (fun () ->
      try handle_locked ?timer t req with
      | Reject msg -> R_error msg
      | Iw_wire.Malformed msg -> R_error ("malformed: " ^ msg))

let response_version : Iw_proto.response -> int = function
  | R_segment { version } | R_meta { version; _ } | R_version version -> version
  | R_update diff | R_granted (Some diff) -> diff.Iw_wire.Diff.to_version
  | R_stat st -> st.Iw_proto.st_version
  | R_hello _ | R_up_to_date | R_granted None | R_busy | R_serial _ | R_ok
  | R_error _ | R_server_stats _ | R_segment_stats _ | R_flight _ | R_resumed _
  | R_slow_log _ | R_metrics_history _ -> 0

(* Fold one finished request's phase timer into the observability state:
   per-phase registry histograms (exact sums, conservative quantiles — what
   the contention view and the BENCH coverage check read), the exact
   per-(variant, phase) Iw_hist accumulator, the end-to-end total
   histogram, and a lazy ring roll.  Called by serve_conn after the reply
   frame is written (so the reply phase is included) and by [handle] itself
   for direct links, which have no transport phases. *)
let finish_request t ~variant timer =
  if Iw_metrics.enabled t.t_metrics then begin
    let total = Iw_phase.total_us timer in
    Iw_metrics.observe
      (Iw_metrics.histogram_us t.t_metrics
         ~help:"End-to-end request latency, arrival to reply written"
         "iw_server_request_total_us")
      total;
    List.iter
      (fun p ->
        Iw_metrics.observe
          (Iw_metrics.histogram_us t.t_metrics
             ~help:"Exclusive request time by lifecycle phase"
             (Iw_metrics.with_label "iw_server_phase_us" "phase" (Iw_phase.name p)))
          (Iw_phase.elapsed_us timer p))
      Iw_phase.phases;
    Iw_phase.record t.t_phase ~variant ~total_us:total timer;
    maybe_roll t
  end

(* Per-variant dispatch latency, span adoption, and flight recording.  The
   registry's own registration lock makes the histogram lookup safe from
   concurrent connection threads, and registration is idempotent, so there
   is no per-variant cache to race on.  When a request arrives with a trace
   context, the dispatch span joins the client's trace: same trace_id, the
   client's span as parent.

   With [timer] (serve_conn passes one started at frame arrival), phase
   attribution covers the whole connection-side lifecycle and the caller
   finishes the timer after the reply is written; without one, a fresh
   timer brackets just the dispatch and is finished here — the direct-link
   path, where decode/reply phases do not exist. *)
let handle ?ctx ?timer t req =
  let metrics_on = Iw_metrics.enabled t.t_metrics in
  let trace_on = Iw_trace.enabled () in
  let flight_on = Iw_flight.enabled t.t_flight in
  if not (metrics_on || trace_on || flight_on) then handle_plain ?timer t req
  else begin
    let owns_timer = timer = None && metrics_on in
    let timer = if owns_timer then Some (Iw_phase.start ()) else timer in
    let variant = Iw_proto.request_variant req in
    let seq = match ctx with Some c -> c.Iw_proto.tc_seq | None -> 0 in
    if trace_on then begin
      let args = [ ("variant", variant) ] in
      let args =
        match ctx with
        | None -> args
        | Some c ->
          ("trace_id", Iw_trace.pp_id c.Iw_proto.tc_trace_id)
          :: ("parent_span_id", Iw_trace.pp_id c.Iw_proto.tc_span_id)
          :: ("span_id", Iw_trace.pp_id (Iw_trace.next_id ()))
          :: ("seq", string_of_int seq)
          :: args
      in
      Iw_trace.span_begin ~args "server.handle"
    end;
    let t0 = Iw_metrics.now_us () in
    let resp =
      try handle_plain ?timer t req
      with e ->
        (* handle_plain converts Reject/Malformed to R_error, so anything
           escaping it is the unexplained kind of failure the flight
           recorder exists for. *)
        if flight_on then begin
          Iw_flight.record t.t_flight ~seq ~segment:(request_segment req)
            ~latency_us:(Iw_metrics.now_us () -. t0)
            (variant ^ "!" ^ Printexc.to_string e);
          Iw_flight.dump ~reason:("uncaught in " ^ variant) t.t_flight
        end;
        if trace_on then Iw_trace.span_end "server.handle";
        raise e
    in
    let dt = Iw_metrics.now_us () -. t0 in
    if metrics_on then
      Iw_metrics.observe
        (Iw_metrics.histogram_us t.t_metrics
           ~help:"Request dispatch latency by request variant"
           (Iw_metrics.with_label "iw_server_request_us" "variant" variant))
        dt;
    (* The slow log takes its own short mutex, never the server lock — the
       dispatch is already over.  Trace ids come straight from the envelope,
       so a slow entry can be found in the matching Perfetto trace. *)
    let phase_us p =
      match timer with Some tm -> Iw_phase.elapsed_us tm p | None -> 0.
    in
    (match req with
    | Iw_proto.Slow_log _ -> () (* reading the log must not pollute it *)
    | _ ->
      let trace_id, span_id =
        match ctx with
        | Some c -> (c.Iw_proto.tc_trace_id, c.Iw_proto.tc_span_id)
        | None -> (0, 0)
      in
      Iw_slowlog.observe t.t_slowlog ~variant ~segment:(request_segment req)
        ~session:(Option.value (Iw_proto.request_session req) ~default:0)
        ~seq ~trace_id ~span_id
        ~wait_us:(phase_us Iw_phase.Lock_wait)
        ~service_us:(phase_us Iw_phase.Service)
        ~wal_us:(phase_us Iw_phase.Wal) dt);
    if flight_on then
      Iw_flight.record t.t_flight ~seq ~segment:(request_segment req)
        ~version:(response_version resp) ~latency_us:dt variant;
    (* The phase breakdown lands on the timeline as an instant next to the
       dispatch span (span_end carries no args). *)
    if trace_on && timer <> None then
      Iw_trace.instant
        ~args:
          (("variant", variant)
          :: List.map
               (fun p ->
                 (Iw_phase.name p ^ "_us", Printf.sprintf "%.0f" (phase_us p)))
               Iw_phase.phases)
        "server.phases";
    if trace_on then Iw_trace.span_end "server.handle";
    (if owns_timer then
       match timer with
       | Some tm -> finish_request t ~variant tm
       | None -> ());
    resp
  end

let direct_link t =
  {
    Iw_proto.call = (fun ?ctx req -> handle ?ctx t req);
    close = (fun () -> ());
    description = "direct";
  }

let register_notifier t ~session ~push =
  Mutex.lock t.lock;
  Hashtbl.replace t.notifiers session push;
  Mutex.unlock t.lock

let unregister_session ?only_if t session =
  Mutex.lock t.lock;
  (* [only_if] guards against a stale connection's cleanup racing a
     resumed session: if another connection has re-registered its own
     notifier for this session, the old connection owns nothing here and
     must not tear down the new registration or its subscriptions. *)
  let owns =
    match (only_if, Hashtbl.find_opt t.notifiers session) with
    | None, _ -> true
    | Some p, Some q -> p == q
    | Some _, None -> false
  in
  if owns then begin
    Hashtbl.remove t.notifiers session;
    Hashtbl.iter (fun _ seg -> Hashtbl.remove seg.s_subscribers session) t.segs
  end;
  Mutex.unlock t.lock

let release_session_locks t session =
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun _ seg -> if seg.s_writer = Some session then seg.s_writer <- None)
    t.segs;
  Mutex.unlock t.lock

(* Serve a tagged-frame connection: responses go out as tag-0 frames and
   change notifications for this connection's sessions as tag-1 frames (the
   client side is [Iw_proto.demux_link]). *)
let serve_conn t conn =
  (* Accept CRC-protected frames from the first one onward; start protecting
     our own frames once an Enable_crc request has been acked.  The wrapper
     sits above whatever the caller hands us (including a fault-injecting
     one), so injected garbling lands on protected bytes and is caught. *)
  let conn, crc = Iw_transport.crc_conn conn in
  let sessions = ref [] in
  (try
     let rec loop () =
       let frame = conn.Iw_transport.recv () in
       (* The phase timer starts at frame arrival: decode, lock-wait,
          service, WAL, and reply-write below account every microsecond of
          this request's server-side life, exclusively. *)
       let timer = Iw_phase.start () in
       Iw_phase.enter timer Iw_phase.Decode;
       let r = Iw_wire.Reader.of_string frame in
       (* Two-phase decode: the envelope survives a malformed body, so the
          error reply and flight-recorder entry keep the request's seq —
          exactly the breadcrumb a post-mortem needs. *)
       let ctx, req_result =
         match Iw_proto.decode_envelope r with
         | exception Iw_wire.Malformed msg -> (None, Error msg)
         | ctx -> (
           ctx,
           match Iw_proto.decode_request r with
           | req -> Ok req
           | exception Iw_wire.Malformed msg -> Error msg)
       in
       Iw_phase.leave timer Iw_phase.Decode;
       let seq = Option.map (fun c -> c.Iw_proto.tc_seq) ctx in
       (match req_result with
       | Ok req ->
         let resp = handle ?ctx ~timer t req in
         (* Notifications share the connection; conn.send is thread-safe
            and registration must take the server lock, because handlers
            iterate the notifier table while holding it. *)
         let attach session =
           let push n = conn.Iw_transport.send (Iw_proto.notification_frame n) in
           sessions := (session, push) :: !sessions;
           register_notifier t ~session ~push
         in
         (match resp with
         | Iw_proto.R_hello { session } -> attach session
         | Iw_proto.R_resumed _ -> (
           match req with
           | Iw_proto.Resume_session { session; _ } -> attach session
           | _ -> ())
         | _ -> ());
         Iw_phase.enter timer Iw_phase.Reply;
         conn.Iw_transport.send (Iw_proto.response_frame ?seq resp);
         Iw_phase.leave timer Iw_phase.Reply;
         (match (req, resp) with
         | Iw_proto.Enable_crc _, Iw_proto.R_ok -> Iw_transport.enable_send crc
         | _ -> ());
         finish_request t ~variant:(Iw_proto.request_variant req) timer
       | Error msg ->
         if Iw_flight.enabled t.t_flight then begin
           Iw_flight.record t.t_flight ?seq "decode_error";
           Iw_flight.dump ~reason:("request decode failure: " ^ msg) t.t_flight
         end;
         conn.Iw_transport.send
           (Iw_proto.response_frame ?seq (Iw_proto.R_error ("malformed: " ^ msg))));
       loop ()
     in
     loop ()
   with
  | Iw_transport.Closed | End_of_file -> ()
  | Iw_transport.Corrupt msg ->
    (* A failed frame checksum: drop the connection (the client re-dials)
       and leave a breadcrumb, but no post-mortem dump — under fault
       injection this is routine, not a crash. *)
    if Iw_flight.enabled t.t_flight then
      Iw_flight.record t.t_flight ("frame_corrupt:" ^ msg)
  | e ->
    (* A connection thread dying of anything else is the crash the ring
       buffer was recording for. *)
    Iw_flight.dump ~reason:("serve_conn: " ^ Printexc.to_string e) t.t_flight);
  (* Without a lease, a dead connection means dead sessions: drop their
     locks immediately (the pre-lease behavior).  With one, locks survive
     the disconnect so the client can resume; a session that never comes
     back loses them to lazy reclamation in Write_lock. *)
  if t.lease_secs = None then
    List.iter (fun (session, _) -> release_session_locks t session) !sessions;
  List.iter (fun (session, push) -> unregister_session ~only_if:push t session)
    !sessions;
  conn.Iw_transport.close ()
