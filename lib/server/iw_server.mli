(** The InterWeave server.

    A server manages an arbitrary number of segments, maintaining an
    up-to-date master copy of each in machine-independent wire format so that
    no translation is needed when forwarding data (paper, Section 3.2).  Per
    segment it keeps the blocks in a balanced tree sorted by serial number, a
    version list separated by markers (blocks move to the tail when
    modified), a marker tree sorted by version, and per-subblock version
    numbers at 16-primitive-unit granularity so that fine-grain changes can
    be forwarded without resending whole blocks.

    The server is oblivious to client languages and architectures: everything
    it stores arrived in wire format, and pointers (MIPs) are never
    swizzled here. *)

type t

val create :
  ?checkpoint_dir:string ->
  ?diff_cache_capacity:int ->
  ?lease_secs:float ->
  ?fsync:Iw_store.fsync ->
  unit ->
  t
(** A fresh server.  When [checkpoint_dir] is given the directory becomes the
    server's durability directory: every committed [Write_release] diff is
    appended to a per-segment write-ahead log ({!Iw_store}) {e before} the
    release is acknowledged, checkpoints (periodic, or via
    {!Iw_proto.Checkpoint}) are written crash-consistently and reset the
    log, and startup recovers each segment by loading its newest valid
    checkpoint and replaying the log past it — so a crashed server restarted
    on the same directory resumes at the exact last-acknowledged version.
    Checkpoints or logs that fail validation at startup are quarantined as
    [<file>.corrupt] with a logged warning, never a startup failure.

    [fsync] picks the log's fsync policy (default: the [IW_FSYNC]
    environment policy, falling back to [Interval 1.0]).  The policy bounds
    what a {e power loss} can lose; a plain process crash loses nothing
    acknowledged regardless, because appends always reach the kernel before
    the ack.

    [lease_secs] enables per-session inactivity leases: write locks survive
    a dropped connection (so a client can reconnect and
    {!Iw_proto.Resume_session} back into them), and a session quiet for
    longer than the lease loses its locks to the next {!Iw_proto.Write_lock}
    contender — lazy reclamation, no reaper thread, counted in
    [iw_server_locks_reclaimed_total].  Without it (the default), a dropped
    connection releases its sessions' locks immediately, as before. *)

val store : t -> Iw_store.t option
(** The durability store backing [checkpoint_dir], when one is configured:
    its [iw_store_*] instruments land in {!metrics}. *)

val handle :
  ?ctx:Iw_proto.trace_ctx ->
  ?timer:Iw_phase.timer ->
  t ->
  Iw_proto.request ->
  Iw_proto.response
(** Process one request.  Thread-safe: requests are serialized by an internal
    lock.  When [ctx] is given (a request arrived with a trace-context
    envelope), the dispatch span adopts it — same [trace_id], the client's
    span as [parent_span_id] — so client and server spans stitch into one
    Perfetto timeline, and the request's seq lands in the flight
    recorder.

    When [timer] is given (a phase timer started at frame arrival —
    {!serve_conn} does this), the dispatch brackets its lock wait, service,
    and WAL time into it and leaves finishing to the caller; without one, a
    fresh timer covers just the dispatch and is folded into {!phase_stats}
    here — the direct-link path, which has no decode or reply phases. *)

val direct_link : t -> Iw_proto.link
(** An in-process link whose [call] is {!handle}.  No serialization overhead;
    used by single-process deployments and benchmarks that isolate
    translation costs from transport costs. *)

val serve_conn : t -> Iw_transport.conn -> unit
(** Serve one framed connection until it closes.  Write locks held by
    sessions that spoke only through this connection are released when it
    drops — unless the server runs with [lease_secs], in which case they
    are kept for a possible {!Iw_proto.Resume_session}.  A request that
    fails to decode draws an [R_error] reply (echoing the envelope seq when
    one was readable) and a flight-recorder dump instead of killing the
    connection. *)

val checkpoint : t -> unit
(** Persist every segment to the checkpoint directory (no-op without one).
    Each segment's checkpoint is written atomically (temp + fsync + rename +
    directory fsync) with a CRC trailer, and doubles as a write-ahead-log
    barrier: the segment's log is reset once its checkpoint is durable, so
    recovery cost stays bounded by the checkpoint interval.  Also triggered
    by the {!Iw_proto.Checkpoint} request. *)

val segment_names : t -> string list

(** {1 Notifications}

    Sessions that {!Iw_proto.Subscribe} to a segment are told when its
    version changes (paper, Section 2.2).  Pushes for TCP/loopback sessions
    are installed automatically by {!serve_conn}; in-process direct clients
    register theirs here. *)

val register_notifier :
  t -> session:int -> push:(Iw_proto.notification -> unit) -> unit
(** [push] is called with the server lock held and must be cheap and must
    not call back into the server. *)

val unregister_session :
  ?only_if:(Iw_proto.notification -> unit) -> t -> int -> unit
(** Drop a session's notifier and all of its subscriptions.  With
    [only_if], a no-op unless the registered notifier is physically that
    closure — how a dying connection avoids tearing down a session that
    already resumed on a newer connection. *)

val subblock_units : int
(** Subblock granularity: 16 primitive data units, matching the paper. *)

(** Observability counters for tests and ablation benchmarks. *)
type stats = {
  mutable requests : int;
  mutable diffs_applied : int;
  mutable diffs_collected : int;
  mutable diff_cache_hits : int;
  mutable diff_cache_misses : int;
  mutable pred_hits : int;
  mutable pred_misses : int;
}

val stats : t -> stats

val metrics : t -> Iw_metrics.t
(** This server's metric registry: per-request-variant latency histograms
    ([iw_server_request_us{variant="..."}]), per-segment version gauges,
    version-advance and diff-cache counters, plus collect-time probes
    mirroring {!stats}.  Enabled by default — [IW_METRICS=0] disables — so a
    live server always has data for [iw-admin stats].  The [Server_stats]
    request returns this snapshot concatenated with the transport registry's
    ({!Iw_transport.metrics}). *)

val flight : t -> Iw_flight.t
(** This server's flight recorder: one entry per handled request (seq,
    variant, segment, version, latency).  On by default even when metrics
    are off — [IW_FLIGHT=0] disables — and dumped on decode failures,
    uncaught handler exceptions, [SIGUSR1] (installed by [iw-server]), or
    the [Flight_recorder] request. *)

val slowlog : t -> Iw_slowlog.t
(** This server's sampled slow-request log: the K slowest requests per
    window, with segment, session, and the trace/span ids from the request
    envelope when one was present.  Armed by default
    ([IW_SLOWLOG_K]/[IW_SLOWLOG_WINDOW_S]/[IW_SLOWLOG_MIN_US] tune it,
    [IW_SLOWLOG_K=0] disables); served remotely by the
    {!Iw_proto.Slow_log} request and rendered by [iw-admin slowlog]. *)

val phase_stats : t -> Iw_phase.stats
(** This server's request-lifecycle phase accumulator: exact per-phase and
    per-(variant, phase) {!Iw_hist} histograms of exclusive time in decode,
    lock-wait, service, WAL, and reply-write, plus the end-to-end total —
    what the ycsb bench's [phase] BENCH section reads on embedded runs.
    The same decomposition is exported through the registry as
    [iw_server_phase_us{phase="..."}] and [iw_server_request_total_us]
    (exact sums, bucketed quantiles), served by [Server_stats], and its
    lock-cost companions as [iw_server_lock_wait_us]/[iw_server_lock_hold_us]
    with [iw_server_inflight] and [iw_server_lock_queue_depth] gauges. *)

val ring : t -> Iw_ring.t
(** This server's metric history ring: one point of derived scalar series
    (rates, gauge levels, windowed p50/p99) per [IW_RING_WINDOW_S] window,
    last [IW_RING_N] windows retained, rolled lazily from the request
    path.  Served remotely by {!Iw_proto.Metrics_history}; powers the
    sparkline columns of [iw-admin top] and [iw-admin contention]. *)

val set_prediction : t -> bool -> unit
(** Enable/disable last-block prediction (ablation; default on). *)

(** {1 Diff validation (debug mode)} *)

val set_validate_diffs : t -> bool -> unit
(** When enabled (default off), every incoming [Write_release] diff is run
    through {!Iw_wire_check.check} against the segment before being applied;
    a diff with any issue is rejected whole with an [R_error] naming the
    issues, and the write lock is released so the segment is not wedged. *)

val diff_ctx : t -> string -> Iw_wire_check.ctx
(** The named segment's validation context — descriptor serials and block
    extents — for checking diffs outside the server (fuzz harnesses validate
    both directions of traffic with it).  An unknown segment yields
    {!Iw_wire_check.empty_ctx}.  The context reads live server state: do not
    use it concurrently with request handling. *)
