type plan = {
  p_seed : int;
  p_drop : float;
  p_delay : float;
  p_garble : float;
  p_close_req : int option;
}

let default_plan =
  { p_seed = 1; p_drop = 0.0; p_delay = 0.0; p_garble = 0.0; p_close_req = None }

let parse_duration directive s =
  (* A duration needs an explicit unit — a bare "delay:5" is ambiguous
     between seconds and milliseconds, and silently guessing wrong turns a
     smoke test into a multi-minute hang. *)
  let num_with suffix =
    if String.length s > String.length suffix
       && Filename.check_suffix s suffix then
      float_of_string_opt (String.sub s 0 (String.length s - String.length suffix))
    else None
  in
  let value =
    match num_with "us" with
    | Some v -> Some (v *. 1e-6)
    | None -> (
      match num_with "ms" with
      | Some v -> Some (v *. 1e-3)
      | None -> ( match num_with "s" with Some v -> Some v | None -> None))
  in
  match value with
  | Some v when v >= 0.0 -> Ok v
  | Some _ -> Error (Printf.sprintf "%S: duration must be >= 0" directive)
  | None ->
    Error (Printf.sprintf "%S: expected a duration with a unit (us/ms/s)" directive)

let parse_prob directive s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | Some _ -> Error (Printf.sprintf "%S: probability must be in [0, 1]" directive)
  | None -> Error (Printf.sprintf "%S: expected a probability" directive)

let parse s =
  let directives =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun d -> d <> "")
  in
  let rec go plan = function
    | [] -> Ok plan
    | d :: rest -> (
      let with_value key f =
        let prefix = key ^ ":" in
        if String.length d > String.length prefix
           && String.sub d 0 (String.length prefix) = prefix then
          Some (f (String.sub d (String.length prefix) (String.length d - String.length prefix)))
        else None
      in
      let result =
        match with_value "seed" (fun v ->
            match int_of_string_opt v with
            | Some n -> Ok { plan with p_seed = n }
            | None -> Error (Printf.sprintf "%S: expected an integer seed" d))
        with
        | Some r -> r
        | None -> (
          match with_value "drop" (fun v ->
              Result.map (fun p -> { plan with p_drop = p }) (parse_prob d v))
          with
          | Some r -> r
          | None -> (
            match with_value "garble" (fun v ->
                Result.map (fun p -> { plan with p_garble = p }) (parse_prob d v))
            with
            | Some r -> r
            | None -> (
              match with_value "delay" (fun v ->
                  Result.map (fun t -> { plan with p_delay = t }) (parse_duration d v))
              with
              | Some r -> r
              | None -> (
                match with_value "close@req" (fun _ -> Ok plan) with
                | Some _ ->
                  Error (Printf.sprintf "%S: close takes '=', as in close@req=17" d)
                | None ->
                  let close_prefix = "close@req=" in
                  if String.length d > String.length close_prefix
                     && String.sub d 0 (String.length close_prefix) = close_prefix
                  then
                    let v =
                      String.sub d (String.length close_prefix)
                        (String.length d - String.length close_prefix)
                    in
                    match int_of_string_opt v with
                    | Some n when n >= 1 -> Ok { plan with p_close_req = Some n }
                    | Some _ -> Error (Printf.sprintf "%S: frame number must be >= 1" d)
                    | None -> Error (Printf.sprintf "%S: expected a frame number" d)
                  else
                    Error
                      (Printf.sprintf
                         "%S: unknown directive (expected seed:N, drop:P, delay:D, \
                          garble:P, or close@req=N)"
                         d)))))
      in
      match result with
      | Ok plan -> go plan rest
      | Error _ as e -> e)
  in
  go default_plan directives

let parse_exn s =
  match parse s with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "Iw_fault.parse: %s" msg)

let pp ppf p =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  add "seed:%d" p.p_seed;
  if p.p_drop > 0.0 then add "drop:%g" p.p_drop;
  if p.p_delay > 0.0 then add "delay:%gus" (p.p_delay *. 1e6);
  if p.p_garble > 0.0 then add "garble:%g" p.p_garble;
  (match p.p_close_req with Some n -> add "close@req=%d" n | None -> ());
  Format.pp_print_string ppf (String.concat "," (List.rev !parts))

let env_plan () =
  match Sys.getenv_opt "IW_FAULT" with
  | None | Some "" -> None
  | Some s -> (
    match parse s with
    | Ok p -> Some p
    | Error msg -> invalid_arg (Printf.sprintf "IW_FAULT: %s" msg))

type kind =
  | Drop
  | Delay
  | Garble
  | Close

let kind_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Garble -> "garble"
  | Close -> "close"

(* A small xorshift PRNG.  [Random] would do, but a private deterministic
   stream guarantees that injection decisions depend only on the plan and
   the frame index — no other code in the process can perturb them. *)
type rng = { mutable state : int }

let mk_rng seed =
  (* Spread the (possibly tiny) seed before first use. *)
  let s = (seed * 0x9E3779B9 + 0x7F4A7C15) land max_int in
  { state = (if s = 0 then 0x2545F491 else s) }

let rng_next r =
  let x = r.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  let x = if x = 0 then 0x2545F491 else x in
  r.state <- x;
  x

let rng_float r = float_of_int (rng_next r land 0xFFFFFF) /. 16777216.0

type t = {
  t_plan : plan;
  t_send_rng : rng;
  t_recv_rng : rng;
  mutable t_sends : int;
  mutable t_closed : bool;
}

let arm plan =
  {
    t_plan = plan;
    t_send_rng = mk_rng plan.p_seed;
    t_recv_rng = mk_rng (plan.p_seed lxor 0x5DEECE6D);
    t_sends = 0;
    t_closed = false;
  }

type instruments = { i_injected : kind -> Iw_metrics.counter }

let instruments =
  lazy
    (let t = Iw_transport.metrics () in
     let by_kind =
       List.map
         (fun k ->
           ( k,
             Iw_metrics.counter t ~help:"Faults injected by Iw_fault, by kind"
               (Iw_metrics.with_label "iw_fault_injected_total" "kind" (kind_name k)) ))
         [ Drop; Delay; Garble; Close ]
     in
     { i_injected = (fun k -> List.assq k by_kind) })

let garble_payload rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let pos = rng_next rng mod Bytes.length b in
    let bit = 1 lsl (rng_next rng land 7) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor bit));
    Bytes.unsafe_to_string b
  end

let wrap ?flight ?on_inject t conn =
  let i = Lazy.force instruments in
  let inject kind =
    Iw_metrics.incr (i.i_injected kind);
    (match flight with
     | Some f -> Iw_flight.record f ("fault!" ^ kind_name kind)
     | None -> ());
    match on_inject with Some f -> f kind | None -> ()
  in
  let plan = t.t_plan in
  let faulted rng s =
    (* Per-frame decision order is fixed (delay, drop, garble) so a given
       frame index always consumes the same number of PRNG draws. *)
    if plan.p_delay > 0.0 then begin
      inject Delay;
      Thread.delay plan.p_delay
    end;
    if plan.p_drop > 0.0 && rng_float rng < plan.p_drop then begin
      inject Drop;
      None
    end
    else if plan.p_garble > 0.0 && rng_float rng < plan.p_garble then begin
      inject Garble;
      Some (garble_payload rng s)
    end
    else Some s
  in
  let send s =
    t.t_sends <- t.t_sends + 1;
    (match plan.p_close_req with
     | Some n when t.t_sends >= n && not t.t_closed ->
       t.t_closed <- true;
       inject Close;
       conn.Iw_transport.shutdown ();
       raise Iw_transport.Closed
     | _ -> ());
    match faulted t.t_send_rng s with
    | Some s -> conn.Iw_transport.send s
    | None -> ()
  in
  let rec recv () =
    let s = conn.Iw_transport.recv () in
    match faulted t.t_recv_rng s with
    | Some s -> s
    | None -> recv ()
  in
  { conn with Iw_transport.send; recv }
