(** Deterministic fault injection for framed transports.

    A {!plan} describes which faults to inject and at what rate; {!arm}
    seeds a deterministic pseudo-random stream from it, and {!wrap} applies
    the armed injector to one {!Iw_transport.conn}.  Because the wrapper
    sits {e above} the connection's framing, a dropped frame is a cleanly
    lost message and a garbled frame is a delivered-but-corrupt payload —
    exactly the two failure shapes the retry and reconnect machinery must
    absorb — while the length-prefixed stream itself stays parseable.

    The plan syntax (also accepted from the [IW_FAULT] environment
    variable) is a comma-separated list of directives:

    {v
    seed:42             PRNG seed (default 1)
    drop:0.01           drop each frame with probability 0.01
    delay:5ms           delay every frame by 5ms (us/ms/s suffixes)
    garble:0.001        flip one byte of each frame with probability 0.001
    close@req=17        shut the connection down at the 17th sent frame
    v}

    Determinism: each direction of a wrapped connection consumes its own
    PRNG stream, so the fault decision for the [n]-th frame sent (or
    received) depends only on the plan, the seed, and [n] — the same seed
    always yields the same injected fault sequence per direction, even
    when sender and receiver run on different threads.

    Every injected fault increments
    [iw_fault_injected_total{kind="drop"|"delay"|"garble"|"close"}] in the
    process-global transport registry ({!Iw_transport.metrics}) and, when a
    flight recorder is supplied to {!wrap}, records a [fault!<kind>]
    event in it. *)

type plan = {
  p_seed : int;  (** PRNG seed; [seed:N] (default 1) *)
  p_drop : float;  (** per-frame drop probability; [drop:P] *)
  p_delay : float;  (** per-frame delay in seconds; [delay:D] *)
  p_garble : float;  (** per-frame byte-corruption probability; [garble:P] *)
  p_close_req : int option;
      (** shut down at the [n]-th sent frame (1-based); [close@req=N] *)
}

val parse : string -> (plan, string) result
(** Parse a plan string.  Rejects unknown directives, probabilities outside
    [0..1], negative durations, durations without a unit, and [close@req=0]
    — the error message names the offending directive. *)

val parse_exn : string -> plan
(** {!parse}, raising [Invalid_argument] on error. *)

val pp : Format.formatter -> plan -> unit
(** Render a plan in its own input syntax. *)

val env_plan : unit -> plan option
(** The plan in [IW_FAULT], read at call time ([None] when unset or
    empty).  Raises [Invalid_argument] on a syntactically invalid value —
    a typo in a fault plan must fail loudly, not silently disable
    injection. *)

type kind =
  | Drop
  | Delay
  | Garble
  | Close

val kind_name : kind -> string

type t
(** An armed injector: the plan plus its PRNG state and frame counters.
    One armed injector may wrap several successive connections (e.g. each
    re-dial of a reconnecting client); counters continue across them, so a
    [close@req=N] plan fires once per armed injector, not once per
    connection. *)

val arm : plan -> t

val wrap :
  ?flight:Iw_flight.t -> ?on_inject:(kind -> unit) -> t -> Iw_transport.conn -> Iw_transport.conn
(** Wrap a connection with the armed injector.  Send-side faults: drop,
    delay, garble, close-at-frame.  Receive-side faults: drop (the frame is
    discarded and the next one returned), delay, garble.  [on_inject] runs
    synchronously at each injection (tests use it to capture the fault
    sequence); [flight] additionally records each injection. *)
