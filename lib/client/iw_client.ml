module Serial_tree = Iw_avl.Make (Int)
module Name_tree = Iw_avl.Make (String)

type addr = Iw_mem.addr

exception Busy

exception Error of string

exception Lock_lost of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Retry policy for clients with a reconnect path (see [set_reconnect]). *)
type retry = {
  r_attempts : int;  (* re-dial attempts before giving up on the server *)
  r_base_delay : float;  (* first backoff sleep, seconds *)
  r_max_delay : float;  (* backoff cap, seconds *)
  r_call_retries : int;  (* resends of one request across recoveries *)
}

let default_retry =
  { r_attempts = 8; r_base_delay = 0.02; r_max_delay = 1.0; r_call_retries = 4 }

(* How to reach the server again after the link dies.  [rc_dial] must build a
   fresh link end-to-end (socket, demux receiver, fault wrapper). *)
type reconnect = {
  rc_dial : unit -> Iw_proto.link;
  rc_retry : retry;
}

type stats = {
  mutable calls : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable diffs_sent : int;
  mutable diffs_received : int;
  mutable updates_skipped : int;
  mutable notifications : int;
  mutable twin_pages : int;
  mutable pred_hits : int;
  mutable pred_misses : int;
  mutable word_diff_seconds : float;
  mutable translate_seconds : float;
  mutable apply_seconds : float;
}

type options = {
  mutable auto_no_diff : bool;
  mutable prediction : bool;
  mutable isomorphic : bool;
  mutable block_no_diff_threshold : float;
  mutable auto_subscribe : bool;
}

(* Latency and size distributions around the client's hot operations.  The
   flat [stats] record above stays the live store (benchmarks read its fields
   directly); these add distributions the flat counters cannot express.  All
   updates are behind the registry's enabled flag — one branch each when
   metrics are off (the default for clients; IW_METRICS=1 turns them on). *)
type instruments = {
  i_rl_us : Iw_metrics.histogram;
  i_wl_us : Iw_metrics.histogram;
  i_release_us : Iw_metrics.histogram;
  i_collect_us : Iw_metrics.histogram;
  i_apply_us : Iw_metrics.histogram;
  i_diff_sent_bytes : Iw_metrics.histogram;
  i_diff_recv_bytes : Iw_metrics.histogram;
  i_swizzles : Iw_metrics.counter;
  i_unswizzles : Iw_metrics.counter;
  i_reconnects : Iw_metrics.counter;
  i_retries : Iw_metrics.counter;
  i_timeouts : Iw_metrics.counter;
  i_locks_lost : Iw_metrics.counter;
}

type lock_state =
  | Unlocked
  | Read_locked of int
  | Write_locked of int

type lock_op =
  | Op_rl_acquire
  | Op_rl_release
  | Op_wl_acquire
  | Op_wl_release
  | Op_wl_abort

type mode =
  | Diffing
  | No_diff of int  (* write releases left before re-probing with diffs *)

type seg = {
  g_name : string;
  g_id : int;
  g_client : t;
  g_heap : Iw_mem.heap;
  mutable g_version : int;
  mutable g_valid : bool;  (* false: space reserved, data never fetched *)
  mutable g_blocks : Iw_mem.block Serial_tree.t;  (* blk_number_tree *)
  mutable g_by_name : Iw_mem.block Name_tree.t;  (* blk_name_tree *)
  g_registry : Iw_types.Registry.t;
  g_desc_serials : (Iw_types.desc, int) Hashtbl.t;
  mutable g_next_serial : int;
  mutable g_total_units : int;
  mutable g_lock : lock_state;
  mutable g_coherence : Iw_proto.coherence;
  mutable g_synced_at : float;  (* for Temporal coherence *)
  mutable g_mode : mode;
  mutable g_mode_forced : bool;
  mutable g_full_streak : int;
  g_created : (int, Iw_mem.block) Hashtbl.t;
  (* Blocks freed this critical section.  Their memory is only released at
     commit, so an abort can resurrect them. *)
  g_pending_frees : (int, Iw_mem.block) Hashtbl.t;
  mutable g_pred : Iw_mem.block option;  (* apply-side last-block prediction *)
  mutable g_subscribed : bool;
  mutable g_uptodate_streak : int;  (* consecutive wasted polls; drives auto-subscribe *)
  (* The write lock did not survive a reconnect (lease reclaim or fresh
     session): the next wl_release/wl_abort raises [Lock_lost]. *)
  mutable g_lost : bool;
}

and monitor = {
  mon_lock : seg -> lock_op -> unit;
  mon_malloc : seg -> unit;
  mon_alloc : seg -> Iw_mem.addr -> len:int -> unit;
  mon_free : Iw_mem.addr -> unit;
  mon_read_ptr : Iw_mem.addr -> Iw_mem.addr -> unit;
  mon_swizzled : Iw_mem.addr -> unit;
}

and t = {
  c_space : Iw_mem.space;
  (* Both mutable so a reconnect can swap in a fresh link (and, when the old
     session is gone, a fresh session) without invalidating the client. *)
  mutable c_link : Iw_proto.link;
  mutable c_session : int;
  mutable c_reconnect : reconnect option;
  c_segs : (string, seg) Hashtbl.t;
  c_by_id : (int, seg) Hashtbl.t;
  mutable c_next_seg_id : int;
  c_busy_wait : float option;
  c_stats : stats;
  c_metrics : Iw_metrics.t;
  c_instr : instruments;
  (* When true, bytes_sent/bytes_received are fed actual framed bytes by the
     link's I/O callback, so the payload-based accounting below stands down
     rather than double count. *)
  mutable c_framed_bytes : bool;
  c_options : options;
  c_scratch : Iw_wire.Buf.t;
      (* reused payload-encoding buffer: collection runs are sequential, and
         reusing the buffer avoids re-zeroing megabytes per release *)
  (* Staleness flags set by the notification receiver thread; guarded by a
     mutex because that thread races with the application thread. *)
  c_stale : (string, unit) Hashtbl.t;
  c_stale_mutex : Mutex.t;
  mutable c_notifications_enabled : bool;
  (* Observation hooks for dynamic checkers; one branch per event when
     disabled (the default). *)
  mutable c_monitor : monitor option;
  (* Distributed tracing: the client span currently open (if any) — requests
     issued inside it inherit its trace and name it as parent — and the
     per-link request seq stamped into each outgoing envelope. *)
  mutable c_ctx : Iw_proto.trace_ctx option;
  mutable c_seq : int;
}

let notify_lock g op =
  match g.g_client.c_monitor with None -> () | Some m -> m.mon_lock g op

let now () = Unix.gettimeofday ()

let fresh_stats () =
  {
    calls = 0;
    bytes_sent = 0;
    bytes_received = 0;
    diffs_sent = 0;
    diffs_received = 0;
    updates_skipped = 0;
    notifications = 0;
    twin_pages = 0;
    pred_hits = 0;
    pred_misses = 0;
    word_diff_seconds = 0.;
    translate_seconds = 0.;
    apply_seconds = 0.;
  }

let stats c = c.c_stats

let make_instruments t =
  let h = Iw_metrics.histogram_us t and hb = Iw_metrics.histogram_bytes t in
  {
    i_rl_us = h ~help:"Read-lock acquisition latency" "iw_client_rl_acquire_us";
    i_wl_us = h ~help:"Write-lock acquisition latency" "iw_client_wl_acquire_us";
    i_release_us = h ~help:"Write-lock release (or abort) latency" "iw_client_wl_release_us";
    i_collect_us = h ~help:"Diff collection (word-diff + translate)" "iw_client_collect_us";
    i_apply_us = h ~help:"Diff application (translate + swizzle)" "iw_client_apply_us";
    i_diff_sent_bytes = hb ~help:"Outgoing diff payload size" "iw_client_diff_sent_bytes";
    i_diff_recv_bytes = hb ~help:"Incoming diff payload size" "iw_client_diff_received_bytes";
    i_swizzles =
      Iw_metrics.counter t ~help:"Pointers translated to MIPs" "iw_client_swizzle_total";
    i_unswizzles =
      Iw_metrics.counter t ~help:"MIPs translated to pointers" "iw_client_unswizzle_total";
    i_reconnects =
      Iw_metrics.counter t ~help:"Connections re-established after a failure"
        "iw_client_reconnects_total";
    i_retries =
      Iw_metrics.counter t ~help:"Requests resent after a transport failure"
        "iw_client_request_retries_total";
    i_timeouts =
      Iw_metrics.counter t ~help:"Calls abandoned on their deadline"
        "iw_client_call_timeouts_total";
    i_locks_lost =
      Iw_metrics.counter t ~help:"Write locks lost to lease reclaim or session loss"
        "iw_client_locks_lost_total";
  }

(* Re-back the flat stats record onto the registry as collect-time probes:
   the record stays the store, the snapshot reads it for free. *)
let register_stat_probes t (s : stats) =
  let p name help read = Iw_metrics.probe t ~help ~kind:`Counter name read in
  let i name help read = p name help (fun () -> float_of_int (read ())) in
  i "iw_client_calls_total" "Protocol calls issued" (fun () -> s.calls);
  i "iw_client_bytes_sent_total" "Bytes sent" (fun () -> s.bytes_sent);
  i "iw_client_bytes_received_total" "Bytes received" (fun () -> s.bytes_received);
  i "iw_client_diffs_sent_total" "Diffs sent" (fun () -> s.diffs_sent);
  i "iw_client_diffs_received_total" "Diffs received" (fun () -> s.diffs_received);
  i "iw_client_updates_skipped_total" "Lock acquisitions with no fetch"
    (fun () -> s.updates_skipped);
  i "iw_client_notifications_total" "Change notifications received"
    (fun () -> s.notifications);
  i "iw_client_twin_pages_total" "Pages twinned for diffing" (fun () -> s.twin_pages);
  i "iw_client_pred_hits_total" "Last-block prediction hits" (fun () -> s.pred_hits);
  i "iw_client_pred_misses_total" "Last-block prediction misses" (fun () -> s.pred_misses);
  p "iw_client_word_diff_seconds_total" "Time word-diffing twinned pages"
    (fun () -> s.word_diff_seconds);
  p "iw_client_translate_seconds_total" "Time translating to wire format"
    (fun () -> s.translate_seconds);
  p "iw_client_apply_seconds_total" "Time applying incoming diffs"
    (fun () -> s.apply_seconds)

let metrics c = c.c_metrics

let set_framed_byte_accounting c b = c.c_framed_bytes <- b

let reset_stats c =
  let s = c.c_stats in
  s.calls <- 0;
  s.bytes_sent <- 0;
  s.bytes_received <- 0;
  s.diffs_sent <- 0;
  s.diffs_received <- 0;
  s.updates_skipped <- 0;
  s.notifications <- 0;
  s.twin_pages <- 0;
  s.pred_hits <- 0;
  s.pred_misses <- 0;
  s.word_diff_seconds <- 0.;
  s.translate_seconds <- 0.;
  s.apply_seconds <- 0.

let options c = c.c_options

let register_block g b =
  g.g_blocks <- Serial_tree.add b.Iw_mem.b_serial b g.g_blocks;
  (match b.Iw_mem.b_name with
  | Some n -> g.g_by_name <- Name_tree.add n b g.g_by_name
  | None -> ());
  if b.Iw_mem.b_serial >= g.g_next_serial then g.g_next_serial <- b.Iw_mem.b_serial + 1;
  g.g_total_units <- g.g_total_units + Iw_types.layout_prim_count b.Iw_mem.b_layout

let forget_block g b =
  g.g_blocks <- Serial_tree.remove b.Iw_mem.b_serial g.g_blocks;
  (match b.Iw_mem.b_name with
  | Some n -> g.g_by_name <- Name_tree.remove n g.g_by_name
  | None -> ());
  g.g_total_units <- g.g_total_units - Iw_types.layout_prim_count b.Iw_mem.b_layout

(* Failure recovery.  A dead link is detected by the exceptions below; with a
   reconnect configured (see [set_reconnect]) the client re-dials, resumes or
   re-creates its session, and resends the interrupted request. *)

let transient = function
  | Iw_transport.Closed | Iw_transport.Timeout | Iw_transport.Connect_failed _
  | Iw_transport.Corrupt _ | Unix.Unix_error _ | End_of_file | Sys_error _ ->
    true
  | _ -> false

let backoff_sleep retry k =
  let d = Float.min (retry.r_base_delay *. (2. ** float_of_int k)) retry.r_max_delay in
  (* Jitter so a herd of clients that died together does not re-dial in
     lockstep. *)
  Unix.sleepf (d *. (0.75 +. Random.float 0.5))

(* Roll a segment whose critical section was interrupted back to a coherent
   unlocked state.  Blocks created in the lost section never reached the
   server; blocks freed in it are still live there.  Uncommitted stores may
   linger in the local bytes, so the cached copy is invalidated — the next
   acquisition refetches from scratch. *)
let drop_critical_section g =
  Hashtbl.iter
    (fun _ b ->
      forget_block g b;
      Iw_mem.free_block b)
    g.g_created;
  Hashtbl.reset g.g_created;
  Hashtbl.iter (fun _ b -> register_block g b) g.g_pending_frees;
  Hashtbl.reset g.g_pending_frees;
  g.g_pred <- None;
  g.g_valid <- false;
  g.g_version <- 0;
  g.g_lock <- Unlocked

let lose_lock g =
  Iw_metrics.incr g.g_client.c_instr.i_locks_lost;
  (match g.g_mode with
  | Diffing -> Iw_mem.unprotect g.g_heap
  | No_diff _ -> ());
  drop_critical_section g;
  g.g_lost <- true

(* Re-dial with capped exponential backoff, then [Resume_session] back into
   the old session; a server that no longer knows it (restart, or no lease)
   answers [R_error] and we fall back to a fresh [Hello] — every write lock
   is gone then.  [keep] names a segment whose loss is NOT handled here: a
   retried [Write_release] resolves against the server's release-dedup table
   instead, so its caller learns the precise outcome. *)
let recover c rc ~keep =
  (try c.c_link.Iw_proto.close () with _ -> ());
  let retry = rc.rc_retry in
  let arch_name = (Iw_mem.arch c.c_space).Iw_arch.name in
  let try_once () =
    let link = rc.rc_dial () in
    try
      match
        link.Iw_proto.call
          (Iw_proto.Resume_session { session = c.c_session; arch = arch_name })
      with
      | Iw_proto.R_resumed { held } -> (link, `Resumed held)
      | Iw_proto.R_error _ -> (
        match link.Iw_proto.call (Iw_proto.Hello { arch = arch_name }) with
        | Iw_proto.R_hello { session } -> (link, `Fresh session)
        | _ -> error "reconnect: handshake failed")
      | _ -> error "reconnect: unexpected response to Resume_session"
    with e ->
      (try link.Iw_proto.close () with _ -> ());
      raise e
  in
  let rec dial k =
    if k >= retry.r_attempts then
      error "reconnect: server unreachable after %d attempts" retry.r_attempts;
    if k > 0 then backoff_sleep retry (k - 1);
    match try_once () with
    | result -> result
    | exception e when transient e -> dial (k + 1)
  in
  let link, outcome = dial 0 in
  c.c_link <- link;
  c.c_seq <- 0;
  Iw_metrics.incr c.c_instr.i_reconnects;
  let held = match outcome with
    | `Resumed held -> held
    | `Fresh session ->
      c.c_session <- session;
      []
  in
  (* Anything could have happened while we were gone: every cached copy must
     re-validate on its next acquisition. *)
  Mutex.lock c.c_stale_mutex;
  Hashtbl.iter (fun name _ -> Hashtbl.replace c.c_stale name ()) c.c_segs;
  Mutex.unlock c.c_stale_mutex;
  Hashtbl.iter
    (fun name g ->
      match g.g_lock with
      | Write_locked _ when (not (List.mem name held)) && keep <> Some name ->
        lose_lock g
      | _ -> ())
    c.c_segs;
  (* Server-side subscriptions died with the old connection's session
     cleanup; re-establish them on the raw link (not [call]: recursion). *)
  Hashtbl.iter
    (fun _ g ->
      if g.g_subscribed then
        match
          c.c_link.Iw_proto.call
            (Iw_proto.Subscribe { session = c.c_session; name = g.g_name })
        with
        | _ -> ()
        | exception _ -> g.g_subscribed <- false)
    c.c_segs

(* A garbled request never reached the dispatcher, so resending it is always
   safe. *)
let malformed_reply msg =
  String.length msg >= 10 && String.sub msg 0 10 = "malformed:"

let call c req =
  (* Requests carry a trace-context envelope only while tracing is on, so a
     non-tracing client stays byte-identical to the old wire format. *)
  let mk_ctx () =
    if Iw_trace.enabled () then begin
      c.c_seq <- c.c_seq + 1;
      match c.c_ctx with
      | Some span -> Some { span with Iw_proto.tc_seq = c.c_seq }
      | None ->
        (* No client span open (an uninstrumented call): still give the
           request a trace of its own so the server span is findable. *)
        Some
          {
            Iw_proto.tc_trace_id = Iw_trace.next_id ();
            tc_span_id = Iw_trace.next_id ();
            tc_seq = c.c_seq;
          }
    end
    else None
  in
  let rec attempt n =
    c.c_stats.calls <- c.c_stats.calls + 1;
    let reply =
      match c.c_link.Iw_proto.call ?ctx:(mk_ctx ()) req with
      | r -> Ok r
      | exception e when transient e -> Error e
    in
    match (reply, c.c_reconnect) with
    | Ok (Iw_proto.R_error msg), Some rc
      when malformed_reply msg && n < rc.rc_retry.r_call_retries ->
      (* The request was garbled in flight and never applied: resend it. *)
      Iw_metrics.incr c.c_instr.i_retries;
      attempt (n + 1)
    | Ok (Iw_proto.R_error msg), _ -> error "server: %s" msg
    | Ok resp, _ -> resp
    | Error e, None -> raise e
    | Error e, Some rc ->
      if e = Iw_transport.Timeout then Iw_metrics.incr c.c_instr.i_timeouts;
      if n >= rc.rc_retry.r_call_retries then raise e;
      (* All requests are safe to resend after recovery: reads and lock
         traffic are idempotent, and a repeated Write_release is absorbed by
         the server's per-session release-dedup table. *)
      let keep =
        match req with
        | Iw_proto.Write_release { name; _ } -> Some name
        | _ -> None
      in
      recover c rc ~keep;
      Iw_metrics.incr c.c_instr.i_retries;
      attempt (n + 1)
  in
  attempt 0

let set_reconnect ?(retry = default_retry) c ~dial =
  c.c_reconnect <- Some { rc_dial = dial; rc_retry = retry }

let connect ?(arch = Iw_arch.x86_32) ?(busy_wait = None) link =
  let session =
    match link.Iw_proto.call (Iw_proto.Hello { arch = arch.Iw_arch.name }) with
    | Iw_proto.R_hello { session } -> session
    | _ -> raise (Error "handshake failed")
  in
  let c_stats = fresh_stats () in
  let c_metrics =
    Iw_metrics.create ~enabled:(Iw_metrics.env_enabled ~default:false) ()
  in
  register_stat_probes c_metrics c_stats;
  {
    c_space = Iw_mem.create_space arch;
    c_link = link;
    c_session = session;
    c_reconnect = None;
    c_segs = Hashtbl.create 8;
    c_by_id = Hashtbl.create 8;
    c_next_seg_id = 1;
    c_busy_wait = busy_wait;
    c_stats;
    c_metrics;
    c_instr = make_instruments c_metrics;
    c_framed_bytes = false;
    c_options =
      {
        auto_no_diff = true;
        prediction = true;
        isomorphic = true;
        block_no_diff_threshold = 0.9;
        auto_subscribe = true;
      };
    c_scratch = Iw_wire.Buf.create ~capacity:65536 ();
    c_stale = Hashtbl.create 8;
    c_stale_mutex = Mutex.create ();
    c_notifications_enabled = false;
    c_monitor = None;
    c_ctx = None;
    c_seq = 0;
  }

let set_monitor c m = c.c_monitor <- m

let disconnect c = c.c_link.Iw_proto.close ()

let space c = c.c_space

let arch c = Iw_mem.arch c.c_space

let segment_name g = g.g_name

let segment_version g = g.g_version

let coherence g = g.g_coherence

let set_coherence g m = g.g_coherence <- m

let locked g = g.g_lock <> Unlocked

let lock_state g =
  match g.g_lock with
  | Unlocked -> `Unlocked
  | Read_locked n -> `Read n
  | Write_locked n -> `Write n

let no_diff_mode g = match g.g_mode with No_diff _ -> true | Diffing -> false

let find_segment c name = Hashtbl.find_opt c.c_segs name

let segment_of_addr c a =
  match Iw_mem.find_block c.c_space a with
  | Some (b, _) -> Hashtbl.find_opt c.c_by_id (Iw_mem.heap_seg_id b.Iw_mem.b_heap)
  | None -> None

let block_of_addr c a = Iw_mem.find_block c.c_space a

let find_block g ~serial = Serial_tree.find_opt serial g.g_blocks

let find_named_block g name = Name_tree.find_opt name g.g_by_name

let blocks g =
  Serial_tree.fold (fun _ b acc -> b :: acc) g.g_blocks [] |> List.rev

(* Descriptor registration: segment-scoped serials assigned by the server
   (paper, Sec. 3.1).  The isomorphic optimization is applied before
   registration so that both sides translate with the cheaper descriptor. *)
let desc_serial g desc =
  match Hashtbl.find_opt g.g_desc_serials desc with
  | Some s -> s
  | None ->
    let serial =
      match
        call g.g_client
          (Iw_proto.Register_desc { session = g.g_client.c_session; name = g.g_name; desc })
      with
      | Iw_proto.R_serial s -> s
      | _ -> error "unexpected response to Register_desc"
    in
    Iw_types.Registry.adopt g.g_registry serial desc;
    Hashtbl.replace g.g_desc_serials desc serial;
    serial

(* Reserve local space for a block known only from server metadata. *)
let reserve_block g ~serial ~name ~desc_serial =
  let desc =
    match Iw_types.Registry.find g.g_registry desc_serial with
    | Some d -> d
    | None -> error "segment %s: unknown descriptor %d" g.g_name desc_serial
  in
  let lay = Iw_types.layout (Iw_types.local (arch g.g_client)) desc in
  let b = Iw_mem.alloc g.g_heap ~serial ?name ~desc_serial lay in
  register_block g b;
  b

let refresh_meta g =
  match
    call g.g_client (Iw_proto.Segment_meta { session = g.g_client.c_session; name = g.g_name })
  with
  | Iw_proto.R_meta { version = _; descs; blocks } ->
    List.iter
      (fun (serial, d) ->
        Iw_types.Registry.adopt g.g_registry serial d;
        Hashtbl.replace g.g_desc_serials d serial)
      descs;
    List.iter
      (fun (mb : Iw_proto.meta_block) ->
        if not (Serial_tree.mem mb.mb_serial g.g_blocks) then
          ignore
            (reserve_block g ~serial:mb.mb_serial ~name:mb.mb_name
               ~desc_serial:mb.mb_desc_serial
              : Iw_mem.block))
      blocks
  | _ -> error "unexpected response to Segment_meta"

let open_segment ?(create = true) c name =
  if String.contains name '#' then error "segment name %S contains '#'" name;
  match Hashtbl.find_opt c.c_segs name with
  | Some g -> g
  | None ->
    (match call c (Iw_proto.Open_segment { session = c.c_session; name; create }) with
    | Iw_proto.R_segment _ -> ()
    | _ -> error "unexpected response to Open_segment");
    let g_id = c.c_next_seg_id in
    c.c_next_seg_id <- g_id + 1;
    let g =
      {
        g_name = name;
        g_id;
        g_client = c;
        g_heap = Iw_mem.create_heap c.c_space ~seg_id:g_id;
        g_version = 0;
        g_valid = false;
        g_blocks = Serial_tree.empty;
        g_by_name = Name_tree.empty;
        g_registry = Iw_types.Registry.create ();
        g_desc_serials = Hashtbl.create 16;
        g_next_serial = 1;
        g_total_units = 0;
        g_lock = Unlocked;
        g_coherence = Iw_proto.Full;
        g_synced_at = 0.;
        g_mode = Diffing;
        g_mode_forced = false;
        g_full_streak = 0;
        g_created = Hashtbl.create 8;
        g_pending_frees = Hashtbl.create 8;
        g_pred = None;
        g_subscribed = false;
        g_uptodate_streak = 0;
        g_lost = false;
      }
    in
    Hashtbl.replace c.c_segs name g;
    Hashtbl.replace c.c_by_id g_id g;
    (* Reserve space for existing blocks so cross-segment pointers into this
       segment can be swizzled before it is ever locked. *)
    refresh_meta g;
    g

(* MIP handling: "segment#block#offset", offsets in primitive data units and
   omitted when zero; the block part is a serial number or a symbolic name
   (paper, Sec. 2.1). *)

let seg_of_heap c heap =
  match Hashtbl.find_opt c.c_by_id (Iw_mem.heap_seg_id heap) with
  | Some g -> g
  | None -> error "address belongs to no open segment"

let ptr_to_mip c a =
  Iw_metrics.incr c.c_instr.i_swizzles;
  match Iw_mem.find_block c.c_space a with
  | None -> error "ptr_to_mip: address %d is not in a live block" a
  | Some (b, byte_off) ->
    let g = seg_of_heap c b.Iw_mem.b_heap in
    let pu =
      if byte_off = 0 then 0
      else begin
        match Iw_types.locate_byte b.Iw_mem.b_layout byte_off with
        | Some loc -> loc.Iw_types.l_index
        | None -> error "ptr_to_mip: address %d falls on alignment padding" a
      end
    in
    (* Hot path (one call per live pointer translated): plain concatenation
       rather than Printf. *)
    if pu = 0 then String.concat "#" [ g.g_name; string_of_int b.Iw_mem.b_serial ]
    else
      String.concat "#"
        [ g.g_name; string_of_int b.Iw_mem.b_serial; string_of_int pu ]

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let mip_to_ptr c mip =
  Iw_metrics.incr c.c_instr.i_unswizzles;
  let seg_name, blk, pu =
    match String.split_on_char '#' mip with
    | [ s; b ] -> (s, b, 0)
    | [ s; b; o ] when is_digits o -> (s, b, int_of_string o)
    | _ -> error "malformed MIP %S" mip
  in
  let g =
    match Hashtbl.find_opt c.c_segs seg_name with
    | Some g -> g
    | None -> open_segment ~create:false c seg_name
  in
  let b =
    let lookup () =
      if is_digits blk then Serial_tree.find_opt (int_of_string blk) g.g_blocks
      else Name_tree.find_opt blk g.g_by_name
    in
    match lookup () with
    | Some b -> Some b
    | None ->
      (* The block may be newer than our metadata; refresh and retry. *)
      refresh_meta g;
      lookup ()
  in
  match b with
  | None -> error "MIP %S: no such block" mip
  | Some b ->
    let a =
      if pu = 0 then b.Iw_mem.b_addr
      else begin
        let loc = Iw_types.locate_prim b.Iw_mem.b_layout pu in
        b.Iw_mem.b_addr + loc.Iw_types.l_off
      end
    in
    (match c.c_monitor with None -> () | Some m -> m.mon_swizzled a);
    a

(* Pointer-rich data keeps referencing the same objects, so swizzling is
   memoized per diff operation: the first occurrence of an address (or MIP)
   pays the metadata-tree search, repeats are a hash probe. *)
let memoized_swizzle c =
  let memo : (int, string) Hashtbl.t = Hashtbl.create 64 in
  fun a ->
    match Hashtbl.find_opt memo a with
    | Some mip -> mip
    | None ->
      let mip = ptr_to_mip c a in
      Hashtbl.add memo a mip;
      mip

(* Open a span that joins the client's active trace — inheriting its
   trace_id and naming it as parent, or minting a fresh trace at top level —
   and becomes the trace context inherited by requests issued inside it.
   The previous context is restored on the way out, so nesting (e.g. a
   refresh_meta call during apply_diff inside wl_acquire) chains
   correctly. *)
let traced_span c args span f =
  if Iw_trace.enabled () then begin
    let saved = c.c_ctx in
    let span_id = Iw_trace.next_id () in
    let trace_id =
      match saved with
      | Some parent -> parent.Iw_proto.tc_trace_id
      | None -> Iw_trace.next_id ()
    in
    c.c_ctx <-
      Some { Iw_proto.tc_trace_id = trace_id; tc_span_id = span_id; tc_seq = c.c_seq };
    let args =
      ("trace_id", Iw_trace.pp_id trace_id)
      :: ("span_id", Iw_trace.pp_id span_id)
      :: args
    in
    let args =
      match saved with
      | Some parent -> ("parent_span_id", Iw_trace.pp_id parent.Iw_proto.tc_span_id) :: args
      | None -> args
    in
    Iw_trace.span_begin ~args span;
    Fun.protect
      ~finally:(fun () ->
        Iw_trace.span_end span;
        c.c_ctx <- saved)
      f
  end
  else f ()

(* Per-segment coherence series, labeled {segment="..."} like the server's;
   registration is idempotent so the by-name lookup per observation is fine.
   Call sites gate on [Iw_metrics.enabled]. *)

let seg_observe_lag c g diff =
  Iw_metrics.observe
    (Iw_metrics.histogram_count c.c_metrics
       ~help:"Versions behind the server at lock acquire"
       (Iw_metrics.with_label "iw_client_version_lag" "segment" g.g_name))
    (float_of_int
       (max 0 (diff.Iw_wire.Diff.to_version - diff.Iw_wire.Diff.from_version)))

let seg_observe_staleness c g =
  Iw_metrics.observe
    (Iw_metrics.histogram_us c.c_metrics
       ~help:"Age of the cached copy when served locally under Temporal coherence"
       (Iw_metrics.with_label "iw_client_staleness_us" "segment" g.g_name))
    ((now () -. g.g_synced_at) *. 1e6)

let seg_count_wasted c g =
  Iw_metrics.incr
    (Iw_metrics.counter c.c_metrics
       ~help:"Acquires that round-tripped to the server for nothing new"
       (Iw_metrics.with_label "iw_client_wasted_acquire_total" "segment" g.g_name))

let seg_observe_wl_wait c g us =
  Iw_metrics.observe
    (Iw_metrics.histogram_us c.c_metrics
       ~help:"Write-lock wait under contention, first busy to grant"
       (Iw_metrics.with_label "iw_client_wl_wait_us" "segment" g.g_name))
    us

(* Applying an incoming diff (paper, Sec. 3.1, diff application). *)

let apply_create g ~unswizzle (serial, name, desc_serial, payload) =
  let c = g.g_client in
  let b =
    match Serial_tree.find_opt serial g.g_blocks with
    | Some b ->
      (* Space was reserved from metadata; fill it. *)
      if b.Iw_mem.b_desc_serial <> desc_serial then
        error "segment %s: block %d descriptor mismatch" g.g_name serial;
      b
    | None -> reserve_block g ~serial ~name ~desc_serial
  in
  let lay = b.Iw_mem.b_layout in
  let pcount = Iw_types.layout_prim_count lay in
  let r = Iw_wire.Reader.of_string payload in
  Iw_mem.with_raw c.c_space b.Iw_mem.b_addr (fun bytes base ->
      Iw_wire.apply_prims r (arch c) lay bytes ~base ~from:0 ~upto:pcount ~unswizzle);
  b

let apply_update g ~unswizzle (serial, runs) =
  let c = g.g_client in
  let b =
    let predicted =
      if not c.c_options.prediction then None
      else
        match g.g_pred with
        | Some p when p.Iw_mem.b_serial = serial && not p.Iw_mem.b_freed -> Some p
        | Some _ | None -> None
    in
    match predicted with
    | Some p ->
      c.c_stats.pred_hits <- c.c_stats.pred_hits + 1;
      p
    | None -> begin
      c.c_stats.pred_misses <- c.c_stats.pred_misses + 1;
      match Serial_tree.find_opt serial g.g_blocks with
      | Some b -> b
      | None -> error "segment %s: update for unknown block %d" g.g_name serial
    end
  in
  (* Predict the next updated block: the next block in memory order, which
     matches the server's version-list order for first-cached layouts
     (paper, Sec. 3.3). *)
  g.g_pred <-
    (match Serial_tree.succ serial g.g_blocks with
    | Some (_, nb) -> Some nb
    | None -> None);
  let lay = b.Iw_mem.b_layout in
  List.iter
    (fun (run : Iw_wire.Diff.run) ->
      let upto = run.start_pu + run.len_pu in
      if upto > Iw_types.layout_prim_count lay then
        error "segment %s: run beyond end of block %d" g.g_name serial;
      let r = Iw_wire.Reader.of_string run.payload in
      Iw_mem.with_raw c.c_space b.Iw_mem.b_addr (fun bytes base ->
          Iw_wire.apply_prims r (arch c) lay bytes ~base ~from:run.start_pu ~upto
            ~unswizzle))
    runs

let apply_diff_plain g (diff : Iw_wire.Diff.t) =
  let c = g.g_client in
  let t0 = now () in
  c.c_stats.diffs_received <- c.c_stats.diffs_received + 1;
  if not c.c_framed_bytes then
    c.c_stats.bytes_received <- c.c_stats.bytes_received + Iw_wire.Diff.payload_bytes diff;
  List.iter
    (fun (serial, d) ->
      Iw_types.Registry.adopt g.g_registry serial d;
      Hashtbl.replace g.g_desc_serials d serial)
    diff.new_descs;
  let unswizzle =
    let memo : (string, int) Hashtbl.t = Hashtbl.create 64 in
    fun mip ->
      match Hashtbl.find_opt memo mip with
      | Some a -> a
      | None ->
        let a = mip_to_ptr c mip in
        Hashtbl.add memo mip a;
        a
  in
  List.iter
    (fun (change : Iw_wire.Diff.block_change) ->
      match change with
      | Create { serial; name; desc_serial; payload } ->
        ignore (apply_create g ~unswizzle (serial, name, desc_serial, payload) : Iw_mem.block)
      | Update { serial; runs } -> apply_update g ~unswizzle (serial, runs)
      | Free { serial } -> begin
        match Serial_tree.find_opt serial g.g_blocks with
        | Some b ->
          forget_block g b;
          Iw_mem.free_block b
        | None -> () (* freed before we ever cached it *)
      end)
    diff.changes;
  g.g_version <- diff.to_version;
  g.g_valid <- true;
  c.c_stats.apply_seconds <- c.c_stats.apply_seconds +. (now () -. t0)

let apply_diff g (diff : Iw_wire.Diff.t) =
  let c = g.g_client in
  if Iw_metrics.enabled c.c_metrics || Iw_trace.enabled () then begin
    if Iw_metrics.enabled c.c_metrics then seg_observe_lag c g diff;
    let t0 = Iw_metrics.now_us () in
    traced_span c
      [
        ("segment", g.g_name);
        ("to_version", string_of_int diff.Iw_wire.Diff.to_version);
      ]
      "client.apply_diff"
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Iw_metrics.observe c.c_instr.i_apply_us (Iw_metrics.now_us () -. t0);
            Iw_metrics.observe c.c_instr.i_diff_recv_bytes
              (float_of_int (Iw_wire.Diff.payload_bytes diff)))
          (fun () -> apply_diff_plain g diff))
  end
  else apply_diff_plain g diff

(* Notifications (paper, Sec. 2.2): the receiver thread flags segments as
   possibly stale; read-lock acquisition on a subscribed, unflagged segment
   skips server communication entirely. *)

let session c = c.c_session

let handle_notification c (n : Iw_proto.notification) =
  Mutex.lock c.c_stale_mutex;
  Hashtbl.replace c.c_stale n.Iw_proto.n_segment ();
  c.c_stats.notifications <- c.c_stats.notifications + 1;
  Mutex.unlock c.c_stale_mutex

let enable_notifications c = c.c_notifications_enabled <- true

let notifications_enabled c = c.c_notifications_enabled

let flagged_stale c name =
  Mutex.lock c.c_stale_mutex;
  let v = Hashtbl.mem c.c_stale name in
  Mutex.unlock c.c_stale_mutex;
  v

(* Cleared BEFORE asking the server, so a change racing with the response
   leaves the flag set for the next acquisition. *)
let clear_stale c name =
  Mutex.lock c.c_stale_mutex;
  Hashtbl.remove c.c_stale name;
  Mutex.unlock c.c_stale_mutex

let subscribe g =
  let c = g.g_client in
  if not c.c_notifications_enabled then
    error "segment %s: this client has no notification channel" g.g_name;
  if not g.g_subscribed then begin
    match call c (Iw_proto.Subscribe { session = c.c_session; name = g.g_name }) with
    | Iw_proto.R_ok -> g.g_subscribed <- true
    | _ -> error "unexpected response to Subscribe"
  end

let unsubscribe g =
  let c = g.g_client in
  if g.g_subscribed then begin
    match call c (Iw_proto.Unsubscribe { session = c.c_session; name = g.g_name }) with
    | Iw_proto.R_ok -> g.g_subscribed <- false
    | _ -> error "unexpected response to Unsubscribe"
  end

let subscribed g = g.g_subscribed

(* Locks. *)

let cached_version g = if g.g_valid then g.g_version else 0

(* Wrap an operation in a latency histogram and a trace span.  Off is the
   default: one branch and a tail call. *)
let instrumented g pick span f =
  let c = g.g_client in
  if Iw_metrics.enabled c.c_metrics || Iw_trace.enabled () then begin
    let t0 = Iw_metrics.now_us () in
    traced_span c
      [ ("segment", g.g_name) ]
      span
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Iw_metrics.observe (pick c.c_instr) (Iw_metrics.now_us () -. t0))
          f)
  end
  else f ()

let rl_acquire_plain g =
  notify_lock g Op_rl_acquire;
  match g.g_lock with
  | Read_locked n -> g.g_lock <- Read_locked (n + 1)
  | Write_locked _ -> error "segment %s: read lock inside write lock" g.g_name
  | Unlocked ->
    let c = g.g_client in
    (* A subscribed segment with no pending change notification is known
       current; a temporal bound is enforced with a client-side timestamp.
       Both avoid server communication entirely (paper, Sec. 2.2). *)
    let subscribed_fresh = g.g_subscribed && g.g_valid && not (flagged_stale c g.g_name) in
    let temporal_fresh =
      match g.g_coherence with
      | Iw_proto.Temporal secs -> g.g_valid && now () -. g.g_synced_at <= secs
      | Full | Delta _ | Diff_pct _ -> false
    in
    if subscribed_fresh || temporal_fresh then begin
      c.c_stats.updates_skipped <- c.c_stats.updates_skipped + 1;
      (* Temporal coherence is the one case where the copy being served is
         knowingly old: its age right now is the realized staleness. *)
      if
        temporal_fresh && (not subscribed_fresh)
        && Iw_metrics.enabled c.c_metrics
      then seg_observe_staleness c g
    end
    else begin
      clear_stale c g.g_name;
      match
        call c
          (Iw_proto.Read_lock
             {
               session = c.c_session;
               name = g.g_name;
               version = cached_version g;
               coherence = g.g_coherence;
             })
      with
      | Iw_proto.R_up_to_date ->
        c.c_stats.updates_skipped <- c.c_stats.updates_skipped + 1;
        if Iw_metrics.enabled c.c_metrics then seg_count_wasted c g;
        g.g_valid <- true;
        g.g_synced_at <- now ();
        (* Adaptive switch from polling to notification: repeated wasted
           polls mean updates are rarer than reads. *)
        g.g_uptodate_streak <- g.g_uptodate_streak + 1;
        if
          c.c_options.auto_subscribe && c.c_notifications_enabled
          && (not g.g_subscribed)
          && g.g_uptodate_streak >= 4
        then subscribe g
      | Iw_proto.R_update diff ->
        apply_diff g diff;
        g.g_synced_at <- now ();
        g.g_uptodate_streak <- 0
      | _ -> error "unexpected response to Read_lock"
    end;
    g.g_lock <- Read_locked 1

let rl_acquire g =
  instrumented g (fun i -> i.i_rl_us) "client.rl_acquire" (fun () -> rl_acquire_plain g)

let rl_release g =
  notify_lock g Op_rl_release;
  match g.g_lock with
  | Read_locked 1 -> g.g_lock <- Unlocked
  | Read_locked n -> g.g_lock <- Read_locked (n - 1)
  | Write_locked _ | Unlocked -> error "segment %s: read lock not held" g.g_name

let wl_acquire_plain g =
  notify_lock g Op_wl_acquire;
  match g.g_lock with
  | Write_locked n -> g.g_lock <- Write_locked (n + 1)
  | Read_locked _ -> error "segment %s: cannot upgrade read lock" g.g_name
  | Unlocked ->
    let c = g.g_client in
    let busy_since = ref None in
    let busy_k = ref 0 in
    let rec acquire () =
      match
        call c
          (Iw_proto.Write_lock
             { session = c.c_session; name = g.g_name; version = cached_version g })
      with
      | Iw_proto.R_busy -> begin
        if !busy_since = None then busy_since := Some (Iw_metrics.now_us ());
        match c.c_busy_wait with
        | Some d ->
          (* Exponential backoff from the configured base, jittered so that
             contending clients interleave instead of colliding each round;
             capped at the retry policy's ceiling (32x the base without
             one). *)
          let cap =
            match c.c_reconnect with
            | Some rc -> Float.max d rc.rc_retry.r_max_delay
            | None -> d *. 32.
          in
          let delay = Float.min cap (d *. (2. ** float_of_int !busy_k)) in
          incr busy_k;
          Unix.sleepf (delay *. (0.75 +. Random.float 0.5));
          acquire ()
        | None -> raise Busy
      end
      | Iw_proto.R_granted upd ->
        (match !busy_since with
        | Some since when Iw_metrics.enabled c.c_metrics ->
          seg_observe_wl_wait c g (Iw_metrics.now_us () -. since)
        | Some _ | None -> ());
        upd
      | _ -> error "unexpected response to Write_lock"
    in
    (match acquire () with
    | Some diff -> apply_diff g diff
    | None -> g.g_valid <- true);
    g.g_lost <- false;
    g.g_synced_at <- now ();
    Hashtbl.reset g.g_created;
    Hashtbl.reset g.g_pending_frees;
    (match g.g_mode with
    | Diffing ->
      (* the paper's mprotect of all subsegment pages *)
      if Iw_trace.enabled () then
        Iw_trace.with_span ~args:[ ("segment", g.g_name) ] "client.twin_protect"
          (fun () -> Iw_mem.protect g.g_heap)
      else Iw_mem.protect g.g_heap
    | No_diff _ -> ());
    g.g_lock <- Write_locked 1

let wl_acquire g =
  instrumented g (fun i -> i.i_wl_us) "client.wl_acquire" (fun () -> wl_acquire_plain g)

(* Allocation. *)

let require_write_lock g op =
  match g.g_lock with
  | Write_locked _ -> ()
  | Read_locked _ | Unlocked -> error "segment %s: %s requires the write lock" g.g_name op

let malloc ?name g desc =
  (match g.g_client.c_monitor with None -> () | Some m -> m.mon_malloc g);
  require_write_lock g "malloc";
  (match Iw_types.validate desc with
  | Ok () -> ()
  | Error msg -> error "invalid descriptor: %s" msg);
  (match name with
  | Some n ->
    if String.contains n '#' then error "block name %S contains '#'" n;
    if is_digits n then error "block name %S is all digits" n;
    if Name_tree.mem n g.g_by_name then
      error "segment %s: block name %S already in use" g.g_name n
  | None -> ());
  let c = g.g_client in
  let desc = if c.c_options.isomorphic then Iw_types.optimize desc else desc in
  let serial_d = desc_serial g desc in
  let lay = Iw_types.layout (Iw_types.local (arch c)) desc in
  let serial = g.g_next_serial in
  let b = Iw_mem.alloc g.g_heap ~serial ?name ~desc_serial:serial_d lay in
  register_block g b;
  Hashtbl.replace g.g_created serial b;
  (match c.c_monitor with
  | None -> ()
  | Some m -> m.mon_alloc g b.Iw_mem.b_addr ~len:b.Iw_mem.b_size);
  b.Iw_mem.b_addr

let free c a =
  (match c.c_monitor with None -> () | Some m -> m.mon_free a);
  match Iw_mem.find_block c.c_space a with
  | None -> error "free: address %d is not in a live block" a
  | Some (b, _) ->
    let g = seg_of_heap c b.Iw_mem.b_heap in
    require_write_lock g "free";
    let serial = b.Iw_mem.b_serial in
    if Hashtbl.mem g.g_pending_frees serial then
      error "free: block %d already freed in this critical section" serial;
    forget_block g b;
    if Hashtbl.mem g.g_created serial then begin
      (* Created and freed in the same critical section: it never existed as
         far as the server is concerned, so reclaim at once. *)
      Hashtbl.remove g.g_created serial;
      Iw_mem.free_block b
    end
    else Hashtbl.replace g.g_pending_frees serial b

(* Diff collection (paper, Sec. 3.1): word-diff twinned pages, map byte runs
   to blocks and primitive-unit ranges, translate to wire format. *)

(* Primitive containing [off], or the first one after it (skipping alignment
   padding).  [None] when only trailing padding remains. *)
let locate_round_up lay off =
  let size = Iw_types.size lay in
  let rec go off =
    if off >= size then None
    else
      match Iw_types.locate_byte lay off with
      | Some loc -> Some loc
      | None -> go (off + 1)
  in
  go off

(* Primitive containing [off], or the last one before it. *)
let locate_round_down lay off =
  let rec go off =
    if off < 0 then None
    else
      match Iw_types.locate_byte lay off with
      | Some loc -> Some loc
      | None -> go (off - 1)
  in
  go off

(* Accumulate per-block primitive ranges for one modified byte run. *)
let ranges_of_run c per_block (run_addr, run_len) =
  let run_end = run_addr + run_len in
  let rec walk a =
    if a < run_end then begin
      match Iw_mem.find_block c.c_space a with
      | Some (b, off) ->
        let g = seg_of_heap c b.Iw_mem.b_heap in
        let block_end = b.Iw_mem.b_addr + b.Iw_mem.b_size in
        let span_end = min run_end block_end in
        let skip =
          (* Created blocks travel whole in a Create change; blocks freed in
             this critical section are not transmitted at all. *)
          Hashtbl.mem g.g_created b.Iw_mem.b_serial
          || Hashtbl.mem g.g_pending_frees b.Iw_mem.b_serial
        in
        if not skip then begin
          let lay = b.Iw_mem.b_layout in
          let lo = locate_round_up lay off in
          let hi = locate_round_down lay (span_end - 1 - b.Iw_mem.b_addr) in
          match (lo, hi) with
          | Some lo, Some hi when lo.Iw_types.l_index <= hi.Iw_types.l_index ->
            let range = (lo.Iw_types.l_index, hi.Iw_types.l_index + 1) in
            (match Hashtbl.find_opt per_block b.Iw_mem.b_serial with
            | Some (_, ranges) -> ranges := range :: !ranges
            | None -> Hashtbl.replace per_block b.Iw_mem.b_serial (b, ref [ range ]))
          | _ -> ()
        end;
        walk span_end
      | None -> begin
        (* Free space (e.g. a block freed during this critical section):
           jump to the next live block. *)
        match Iw_mem.next_block c.c_space a with
        | Some b when b.Iw_mem.b_addr < run_end -> walk b.Iw_mem.b_addr
        | Some _ | None -> ()
      end
    end
  in
  walk run_addr

(* Sort, merge overlapping/adjacent ranges. *)
let normalize_ranges ranges =
  let sorted = List.sort compare ranges in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 -> merge ((a1, max b1 b2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

let encode_block_runs c ~swizzle b ranges =
  let lay = b.Iw_mem.b_layout in
  let pcount = Iw_types.layout_prim_count lay in
  let covered = List.fold_left (fun acc (a, e) -> acc + e - a) 0 ranges in
  let ranges =
    (* Block-level no-diff: translating a whole block is cheaper than
       fragmenting it into many runs (paper, Sec. 3.3). *)
    if float_of_int covered >= c.c_options.block_no_diff_threshold *. float_of_int pcount
    then [ (0, pcount) ]
    else ranges
  in
  List.map
    (fun (from, upto) ->
      let buf = c.c_scratch in
      Iw_wire.Buf.clear buf;
      Iw_mem.with_raw c.c_space b.Iw_mem.b_addr (fun bytes base ->
          Iw_wire.collect_prims buf (arch c) lay bytes ~base ~from ~upto ~swizzle);
      { Iw_wire.Diff.start_pu = from; len_pu = upto - from; payload = Iw_wire.Buf.contents buf })
    (normalize_ranges ranges),
  covered

let collect_diff_plain g =
  let c = g.g_client in
  let swizzle = memoized_swizzle c in
  let t0 = now () in
  let byte_runs =
    match g.g_mode with
    | Diffing -> Iw_mem.modified_runs g.g_heap
    | No_diff _ -> []
  in
  c.c_stats.word_diff_seconds <- c.c_stats.word_diff_seconds +. (now () -. t0);
  c.c_stats.twin_pages <- c.c_stats.twin_pages + Iw_mem.twinned_pages g.g_heap;
  let t1 = now () in
  let changes = ref [] in
  let touched = ref 0 in
  (match g.g_mode with
  | No_diff _ ->
    (* Transmit every live block whole; no twins, no diffing. *)
    Serial_tree.iter
      (fun serial b ->
        if not (Hashtbl.mem g.g_created serial) then begin
          let lay = b.Iw_mem.b_layout in
          let pcount = Iw_types.layout_prim_count lay in
          let buf = c.c_scratch in
          Iw_wire.Buf.clear buf;
          Iw_mem.with_raw c.c_space b.Iw_mem.b_addr (fun bytes base ->
              Iw_wire.collect_prims buf (arch c) lay bytes ~base ~from:0 ~upto:pcount
                ~swizzle);
          touched := !touched + pcount;
          changes :=
            Iw_wire.Diff.Update
              {
                serial;
                runs =
                  [
                    {
                      Iw_wire.Diff.start_pu = 0;
                      len_pu = pcount;
                      payload = Iw_wire.Buf.contents buf;
                    };
                  ];
              }
            :: !changes
        end)
      g.g_blocks
  | Diffing ->
    let per_block = Hashtbl.create 16 in
    List.iter (ranges_of_run c per_block) byte_runs;
    (* Emit updates in ascending serial order (address order for segments
       laid out at first caching), which is what the server's version-list
       prediction expects. *)
    let entries =
      Hashtbl.fold (fun serial (b, ranges) acc -> (serial, b, !ranges) :: acc) per_block []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    in
    List.iter
      (fun (serial, b, ranges) ->
        let runs, covered = encode_block_runs c ~swizzle b ranges in
        touched := !touched + covered;
        changes := Iw_wire.Diff.Update { serial; runs } :: !changes)
      entries);
  let creates =
    Hashtbl.fold (fun serial b acc -> (serial, b) :: acc) g.g_created []
    |> List.sort compare
    |> List.map (fun (serial, b) ->
           let lay = b.Iw_mem.b_layout in
           let pcount = Iw_types.layout_prim_count lay in
           let buf = c.c_scratch in
           Iw_wire.Buf.clear buf;
           Iw_mem.with_raw c.c_space b.Iw_mem.b_addr (fun bytes base ->
               Iw_wire.collect_prims buf (arch c) lay bytes ~base ~from:0 ~upto:pcount
                 ~swizzle);
           touched := !touched + pcount;
           Iw_wire.Diff.Create
             {
               serial;
               name = b.Iw_mem.b_name;
               desc_serial = b.Iw_mem.b_desc_serial;
               payload = Iw_wire.Buf.contents buf;
             })
  in
  let frees =
    Hashtbl.fold (fun serial _ acc -> Iw_wire.Diff.Free { serial } :: acc) g.g_pending_frees []
  in
  let diff =
    {
      Iw_wire.Diff.from_version = g.g_version;
      to_version = g.g_version + 1;
      new_descs = [];
      changes = frees @ creates @ List.rev !changes;
    }
  in
  c.c_stats.translate_seconds <- c.c_stats.translate_seconds +. (now () -. t1);
  (diff, !touched)

let collect_diff g =
  instrumented g (fun i -> i.i_collect_us) "client.collect_diff"
    (fun () -> collect_diff_plain g)

(* Automatic no-diff switching (paper, Sec. 3.3): a client that repeatedly
   modifies most of a segment stops diffing; it periodically switches back to
   capture behaviour changes. *)
let full_modification_fraction = 0.8

let no_diff_streak = 3

let no_diff_period = 8

let update_mode g touched =
  if g.g_mode_forced || not g.g_client.c_options.auto_no_diff then ()
  else
    match g.g_mode with
    | No_diff 1 -> g.g_mode <- Diffing (* re-probe with diffing *)
    | No_diff k -> g.g_mode <- No_diff (k - 1)
    | Diffing ->
      let fraction =
        if g.g_total_units = 0 then 0.
        else float_of_int touched /. float_of_int g.g_total_units
      in
      if fraction >= full_modification_fraction then begin
        g.g_full_streak <- g.g_full_streak + 1;
        if g.g_full_streak >= no_diff_streak then begin
          g.g_mode <- No_diff no_diff_period;
          g.g_full_streak <- 0
        end
      end
      else g.g_full_streak <- 0

let set_no_diff g on =
  g.g_mode_forced <- true;
  g.g_mode <- (if on then No_diff max_int else Diffing)

(* The server answered "write lock not held" to our release: the lock was
   reclaimed (inactivity lease) or belonged to a session the server forgot.
   The critical section is gone; tell the application with a typed error. *)
let release_lost g =
  Iw_metrics.incr g.g_client.c_instr.i_locks_lost;
  drop_critical_section g;
  raise (Lock_lost g.g_name)

let lock_not_held_reply = "server: write lock not held"

let wl_release_plain g =
  notify_lock g Op_wl_release;
  match g.g_lock with
  | Write_locked n when n > 1 -> g.g_lock <- Write_locked (n - 1)
  | Write_locked _ ->
    let c = g.g_client in
    let diff, touched = collect_diff g in
    Iw_mem.unprotect g.g_heap;
    if diff.changes <> [] then begin
      c.c_stats.diffs_sent <- c.c_stats.diffs_sent + 1;
      if not c.c_framed_bytes then
        c.c_stats.bytes_sent <- c.c_stats.bytes_sent + Iw_wire.Diff.payload_bytes diff;
      Iw_metrics.observe c.c_instr.i_diff_sent_bytes
        (float_of_int (Iw_wire.Diff.payload_bytes diff));
      match
        call c (Iw_proto.Write_release { session = c.c_session; name = g.g_name; diff })
      with
      | Iw_proto.R_version v ->
        g.g_version <- v;
        g.g_synced_at <- now ()
      | exception Error msg when msg = lock_not_held_reply -> release_lost g
      | _ -> error "unexpected response to Write_release"
    end
    else begin
      match
        call c
          (Iw_proto.Write_release
             { session = c.c_session; name = g.g_name; diff })
      with
      | Iw_proto.R_version v -> g.g_version <- v
      | exception Error msg when msg = lock_not_held_reply -> release_lost g
      | _ -> error "unexpected response to Write_release"
    end;
    Hashtbl.iter (fun _ b -> Iw_mem.free_block b) g.g_pending_frees;
    Hashtbl.reset g.g_pending_frees;
    Hashtbl.reset g.g_created;
    update_mode g touched;
    g.g_lock <- Unlocked
  | Read_locked _ | Unlocked ->
    if g.g_lost then begin
      g.g_lost <- false;
      raise (Lock_lost g.g_name)
    end
    else error "segment %s: write lock not held" g.g_name

let wl_release g =
  instrumented g (fun i -> i.i_release_us) "client.wl_release"
    (fun () -> wl_release_plain g)

(* Transactional abort (the paper's Section 6 direction): the twins that
   exist for diffing double as an undo log.  Every store since wl_acquire is
   rolled back, created blocks vanish, freed blocks are resurrected, and the
   server lock is released without publishing a version. *)
let wl_abort_plain g =
  notify_lock g Op_wl_abort;
  match g.g_lock with
  | Read_locked _ | Unlocked ->
    if g.g_lost then begin
      g.g_lost <- false;
      raise (Lock_lost g.g_name)
    end
    else error "segment %s: write lock not held" g.g_name
  | Write_locked _ ->
    let c = g.g_client in
    (match g.g_mode with
    | No_diff _ ->
      error "segment %s: cannot abort in no-diff mode (no twins to roll back)" g.g_name
    | Diffing -> ());
    (* Undo stores. *)
    Iw_mem.restore_twins g.g_heap;
    Iw_mem.unprotect g.g_heap;
    (* Vanish blocks created in this critical section. *)
    Hashtbl.iter
      (fun _ b ->
        forget_block g b;
        Iw_mem.free_block b)
      g.g_created;
    Hashtbl.reset g.g_created;
    (* Resurrect blocks freed in this critical section. *)
    Hashtbl.iter (fun _ b -> register_block g b) g.g_pending_frees;
    Hashtbl.reset g.g_pending_frees;
    (* Release the server-side lock without changes. *)
    (match
       call c
         (Iw_proto.Write_release
            {
              session = c.c_session;
              name = g.g_name;
              diff =
                {
                  Iw_wire.Diff.from_version = g.g_version;
                  to_version = g.g_version;
                  new_descs = [];
                  changes = [];
                };
            })
     with
    | Iw_proto.R_version _ -> ()
    | exception Error msg when msg = lock_not_held_reply ->
      (* The rollback above already ran, so local state is coherent; the
         abort still failed as a lock operation, which the caller should
         know. *)
      Iw_metrics.incr c.c_instr.i_locks_lost;
      g.g_valid <- false;
      g.g_version <- 0;
      g.g_lock <- Unlocked;
      raise (Lock_lost g.g_name)
    | _ -> error "unexpected response to Write_release");
    g.g_lock <- Unlocked

let wl_abort g =
  instrumented g (fun i -> i.i_release_us) "client.wl_abort"
    (fun () -> wl_abort_plain g)

(* Typed accessors. *)

let read_int c a = Iw_mem.load_prim c.c_space Iw_arch.Int a

let write_int c a v = Iw_mem.store_prim c.c_space Iw_arch.Int a v

let read_long c a = Iw_mem.load_prim c.c_space Iw_arch.Long a

let write_long c a v = Iw_mem.store_prim c.c_space Iw_arch.Long a v

let read_char c a = Char.chr (Iw_mem.load_prim c.c_space Iw_arch.Char a land 0xff)

let write_char c a v = Iw_mem.store_prim c.c_space Iw_arch.Char a (Char.code v)

let read_short c a = Iw_mem.load_prim c.c_space Iw_arch.Short a

let write_short c a v = Iw_mem.store_prim c.c_space Iw_arch.Short a v

let read_double c a = Iw_mem.load_double c.c_space a

let write_double c a v = Iw_mem.store_double c.c_space a v

let read_float c a = Iw_mem.load_float c.c_space a

let write_float c a v = Iw_mem.store_float c.c_space a v

let read_ptr c a =
  let v = Iw_mem.load_prim c.c_space Iw_arch.Pointer a in
  (match c.c_monitor with None -> () | Some m -> m.mon_read_ptr a v);
  v

let write_ptr c a v = Iw_mem.store_prim c.c_space Iw_arch.Pointer a v

let read_string c ~capacity a = Iw_mem.load_string c.c_space ~capacity a

let write_string c ~capacity a s = Iw_mem.store_string c.c_space ~capacity a s
