(** The InterWeave client library.

    A client maps cached copies of segments into its (emulated) address space
    and keeps them coherent with the segment servers: write locks trigger
    page-level modification tracking; releasing a write lock collects local
    changes into a machine-independent wire-format diff; read-lock
    acquisitions check whether the cached copy is "recent enough" under the
    segment's coherence model and apply server diffs when it is not (paper,
    Sections 2 and 3.1).  Pointers in shared memory are swizzled between
    local addresses and machine-independent pointers (MIPs) of the form
    ["segment#block#offset"], offsets measured in primitive data units. *)

type t
(** A client: one emulated address space, one link to a server. *)

type seg
(** A locally cached segment (an entry in the client's segment table). *)

type addr = Iw_mem.addr

exception Busy
(** Raised by {!wl_acquire} when the write lock cannot be obtained. *)

exception Error of string
(** Server-reported or protocol error. *)

exception Lock_lost of string
(** The named segment's write lock did not survive a failure: the server
    reclaimed it after an inactivity lease, or the session itself was lost
    across a reconnect.  Raised by {!wl_release} or {!wl_abort}; the critical
    section's effects were NOT published, the segment is left unlocked with
    its cache invalidated, and the application decides whether to redo the
    work under a fresh {!wl_acquire}. *)

(** {1 Connection and segments} *)

val connect :
  ?arch:Iw_arch.t -> ?busy_wait:float option -> Iw_proto.link -> t
(** Attach to a server.  [arch] (default {!Iw_arch.x86_32}) fixes the local
    data layout.  [busy_wait] controls {!wl_acquire} contention: [Some d]
    retries with capped exponential backoff and jitter starting at [d]
    seconds, [None] (default) raises {!Busy} at once. *)

val disconnect : t -> unit

(** {2 Failure recovery}

    Without a reconnect policy (the default), a dead link surfaces as
    {!Iw_transport.Closed} or {!Iw_transport.Timeout} from whatever operation
    hit it — the pre-fault behaviour.  With one, the client re-dials,
    re-establishes its session, and resends the interrupted request. *)

type retry = {
  r_attempts : int;  (** re-dial attempts before giving up on the server *)
  r_base_delay : float;  (** first backoff sleep, seconds *)
  r_max_delay : float;  (** backoff cap, seconds *)
  r_call_retries : int;  (** resends of one request across recoveries *)
}

val default_retry : retry
(** 8 dial attempts, 20 ms doubling to a 1 s cap (jittered), 4 resends. *)

val set_reconnect :
  ?retry:retry -> t -> dial:(unit -> Iw_proto.link) -> unit
(** Arm reconnect-with-recovery.  On a dead link the client closes it, dials
    a fresh one with capped exponential backoff, and sends
    {!Iw_proto.Resume_session}: a server that still knows the session (it
    runs with an inactivity lease) answers with the write locks that
    survived; otherwise the client falls back to a fresh [Hello] and a new
    session.  Either way every cached segment is flagged stale, server-side
    subscriptions are re-established, write locks that did not survive are
    rolled back locally (their next {!wl_release}/{!wl_abort} raises
    {!Lock_lost}), and the interrupted request is resent — safe even for
    [Write_release], which the server deduplicates per session.
    [Interweave.loopback_client] and [Interweave.tcp_client] call this
    automatically. *)

val space : t -> Iw_mem.space

val arch : t -> Iw_arch.t

val open_segment : ?create:bool -> t -> string -> seg
(** Open (default: or create) the named segment.  Space is reserved locally;
    data is not fetched until the segment is locked.  Segment names must not
    contain ['#']. *)

val segment_name : seg -> string

val segment_version : seg -> int

val segment_of_addr : t -> addr -> seg option

val find_segment : t -> string -> seg option

(** {1 Locks and coherence} *)

val set_coherence : seg -> Iw_proto.coherence -> unit
(** Coherence model used by subsequent read-lock acquisitions (default
    [Full]).  Can be changed dynamically, as in the paper. *)

val coherence : seg -> Iw_proto.coherence

(** {2 Notifications}

    The adaptive polling/notification protocol (paper, Section 2.2): a
    subscribed segment whose change flag is clear is known current, so
    read-lock acquisition skips the server round trip entirely.  Deployment
    helpers ({!Interweave.direct_client} etc.) install the notification
    channel; by default clients also {e adaptively} subscribe to segments
    they repeatedly poll without finding updates
    (see {!type-options}[.auto_subscribe]). *)

val session : t -> int

val handle_notification : t -> Iw_proto.notification -> unit
(** Entry point for the notification channel (thread-safe; only flags). *)

val enable_notifications : t -> unit
(** Declare that a notification channel feeds {!handle_notification}. *)

val notifications_enabled : t -> bool

val subscribe : seg -> unit
(** Ask the server for change notifications on this segment.
    @raise Error if the client has no notification channel. *)

val unsubscribe : seg -> unit

val subscribed : seg -> bool

val rl_acquire : seg -> unit
(** Take a read lock: checks recent-enough per the coherence model, fetching
    and applying a diff from the server when needed.  Nestable. *)

val rl_release : seg -> unit

val wl_acquire : seg -> unit
(** Take the segment's write lock (server-serialized), bring the local copy
    fully up to date, and enable modification tracking.  Nestable. *)

val wl_release : seg -> unit
(** Collect local modifications into a wire-format diff, send it to the
    server, and disable modification tracking.
    @raise Lock_lost when the server no longer recognises this client's
    write lock (see {!set_reconnect}); the diff was not applied. *)

val wl_abort : seg -> unit
(** Abandon the current write critical section: every store since
    {!wl_acquire} is rolled back from the twins, blocks created in it vanish,
    blocks freed in it are resurrected, and the server lock is released with
    no new version — transactional semantics in the direction of the paper's
    Section 6.  Aborts the whole critical section even when nested.
    @raise Error when the write lock is not held or the segment is in
    no-diff mode (no twins to roll back from). *)

val locked : seg -> bool

val lock_state : seg -> [ `Unlocked | `Read of int | `Write of int ]
(** Current lock mode and nesting depth of the segment's lock. *)

(** {1 Allocation}

    Must be called under the segment's write lock. *)

val malloc : ?name:string -> seg -> Iw_types.desc -> addr
(** Allocate a block of the given type inside the segment and return its
    address.  The descriptor is registered with the server on first use.
    Block names must be unique within the segment and must not contain
    ['#']. *)

val free : t -> addr -> unit
(** Free the block containing the address. *)

val block_of_addr : t -> addr -> (Iw_mem.block * int) option

val find_block : seg -> serial:int -> Iw_mem.block option

val find_named_block : seg -> string -> Iw_mem.block option

val blocks : seg -> Iw_mem.block list

(** {1 Machine-independent pointers} *)

val ptr_to_mip : t -> addr -> string
(** Swizzle a local pointer into a MIP.
    @raise Error if the address is not inside a live block. *)

val mip_to_ptr : t -> string -> addr
(** Swizzle a MIP into a local address, reserving space for its segment if it
    is not already cached (data arrives at the first lock). *)

(** {1 Typed access}

    Convenience wrappers over {!Iw_mem} using this client's space. *)

val read_int : t -> addr -> int

val write_int : t -> addr -> int -> unit

val read_long : t -> addr -> int

val write_long : t -> addr -> int -> unit

val read_char : t -> addr -> char

val write_char : t -> addr -> char -> unit

val read_short : t -> addr -> int

val write_short : t -> addr -> int -> unit

val read_double : t -> addr -> float

val write_double : t -> addr -> float -> unit

val read_float : t -> addr -> float

val write_float : t -> addr -> float -> unit

val read_ptr : t -> addr -> addr
(** Returns 0 for null. *)

val write_ptr : t -> addr -> addr -> unit

val read_string : t -> capacity:int -> addr -> string

val write_string : t -> capacity:int -> addr -> string -> unit

(** {1 Modes and tuning} *)

val set_no_diff : seg -> bool -> unit
(** Force no-diff mode on or off (paper, Section 3.3).  In no-diff mode write
    locks skip page protection and releases transmit every block whole.
    Normally the mode switches automatically; forcing it also disables the
    automatic switching. *)

val no_diff_mode : seg -> bool

type options = {
  mutable auto_no_diff : bool;  (** automatic no-diff switching (default on) *)
  mutable prediction : bool;  (** last-block prediction (default on) *)
  mutable isomorphic : bool;
      (** isomorphic descriptor optimization before registration (default on) *)
  mutable block_no_diff_threshold : float;
      (** fraction of a block's units above which the whole block is sent
          (default 0.9; > 1.0 disables) *)
  mutable auto_subscribe : bool;
      (** adaptively subscribe after repeated wasted polls (default on;
          effective only once notifications are enabled) *)
}

val options : t -> options

(** {1 Observation hooks}

    Event stream for dynamic checkers ({!Iw_sanitizer} in
    [interweave.analysis]).  Each hook fires at the {e entry} of the
    corresponding operation — before argument validation, state changes, or
    errors — so an observer sees misuses the client itself rejects.  With no
    monitor installed (the default) every instrumented path pays exactly one
    branch. *)

type lock_op =
  | Op_rl_acquire
  | Op_rl_release
  | Op_wl_acquire
  | Op_wl_release
  | Op_wl_abort

type monitor = {
  mon_lock : seg -> lock_op -> unit;  (** entry of every lock operation *)
  mon_malloc : seg -> unit;  (** entry of {!malloc} *)
  mon_alloc : seg -> addr -> len:int -> unit;  (** successful allocation *)
  mon_free : addr -> unit;  (** entry of {!free} *)
  mon_read_ptr : addr -> addr -> unit;  (** location, value just loaded *)
  mon_swizzled : addr -> unit;  (** address produced by {!mip_to_ptr} *)
}

val set_monitor : t -> monitor option -> unit

(** {1 Statistics} *)

type stats = {
  mutable calls : int;  (** protocol round trips *)
  mutable bytes_sent : int;
  mutable bytes_received : int;
      (** diff payload bytes by default; actual framed protocol bytes when
          the link feeds them in (see {!set_framed_byte_accounting}) *)
  mutable diffs_sent : int;
  mutable diffs_received : int;
  mutable updates_skipped : int;  (** lock acquisitions served from cache *)
  mutable notifications : int;  (** change notifications received *)
  mutable twin_pages : int;
  mutable pred_hits : int;
  mutable pred_misses : int;
  mutable word_diff_seconds : float;  (** time comparing pages to twins *)
  mutable translate_seconds : float;  (** time converting diffs to wire *)
  mutable apply_seconds : float;  (** time applying incoming diffs *)
}

val stats : t -> stats

val reset_stats : t -> unit

val set_framed_byte_accounting : t -> bool -> unit
(** Tell the client that its link reports actual framed bytes into
    [bytes_sent]/[bytes_received] (via a transport-level I/O callback), so
    the client must not also add diff payload sizes.  [Interweave.demux_client]
    turns this on; direct links keep the payload-based accounting. *)

val metrics : t -> Iw_metrics.t
(** This client's metric registry: latency histograms around lock
    operations and diff collect/apply, diff size histograms, swizzle
    counters, plus collect-time probes mirroring {!stats}.  Disabled by
    default — set [IW_METRICS=1] or call {!Iw_metrics.set_enabled}; when
    disabled each instrumented site costs one branch. *)
