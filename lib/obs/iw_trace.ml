type ev = {
  e_ph : char;
  e_name : string;
  e_cat : string;
  e_ts : float;  (* microseconds since trace start *)
  e_tid : int;
  e_args : (string * string) list;
}

let on = ref false

let mutex = Mutex.create ()

let events : ev list ref = ref []

let out_path : string option ref = ref None

let t0 = ref 0.

let at_exit_installed = ref false

let enabled () = !on

let record ph ?(cat = "iw") ?(args = []) name =
  if !on then begin
    let ts = (Unix.gettimeofday () -. !t0) *. 1e6 in
    let e =
      { e_ph = ph; e_name = name; e_cat = cat; e_ts = ts;
        e_tid = Thread.id (Thread.self ()); e_args = args }
    in
    Mutex.lock mutex;
    events := e :: !events;
    Mutex.unlock mutex
  end

let span_begin ?cat ?args name = record 'B' ?cat ?args name

let span_end name = record 'E' name

let instant ?cat ?args name = record 'i' ?cat ?args name

let with_span ?cat ?args name f =
  if not !on then f ()
  else begin
    span_begin ?cat ?args name;
    Fun.protect ~finally:(fun () -> span_end name) f
  end

let write_file path evs =
  let buf = Buffer.create (256 * (1 + List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let pid = Unix.getpid () in
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      Iw_obs_json.escape buf e.e_name;
      Buffer.add_string buf ",\"cat\":";
      Iw_obs_json.escape buf e.e_cat;
      Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%c\"" e.e_ph);
      (* Instant events need an explicit scope or some viewers drop them. *)
      if e.e_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d" e.e_ts pid e.e_tid);
      (match e.e_args with
      | [] -> ()
      | args ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Iw_obs_json.escape buf k;
            Buffer.add_char buf ':';
            Iw_obs_json.escape buf v)
          args;
        Buffer.add_char buf '}');
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let stop () =
  Mutex.lock mutex;
  let evs = List.rev !events in
  let path = !out_path in
  on := false;
  events := [];
  out_path := None;
  Mutex.unlock mutex;
  match path with None -> () | Some p -> write_file p evs

let start ~path =
  Mutex.lock mutex;
  out_path := Some path;
  if !t0 = 0. then t0 := Unix.gettimeofday ();
  on := true;
  let install = not !at_exit_installed in
  at_exit_installed := true;
  Mutex.unlock mutex;
  if install then at_exit stop

(* IW_TRACE=<path> attaches tracing for the whole process with no code
   changes, mirroring IW_SANITIZE. *)
let () =
  match Sys.getenv_opt "IW_TRACE" with
  | None | Some "" -> ()
  | Some path -> start ~path
