type ev = {
  e_ph : char;
  e_name : string;
  e_cat : string;
  e_ts : float;  (* microseconds since trace start *)
  e_tid : int;
  e_args : (string * string) list;
}

type mode =
  | Overwrite
  | Append
  | Unique

let on = ref false

let mutex = Mutex.create ()

let events : ev list ref = ref []

let out_path : string option ref = ref None

let out_mode : mode ref = ref Overwrite

let t0 = ref 0.

let at_exit_installed = ref false

let enabled () = !on

(* Span/trace identifiers: unique within a process and very unlikely to
   collide across the processes of one run (the pid and start time are mixed
   in), so a client-generated trace id can travel to the server and land in a
   merged Perfetto timeline without clashing. *)
let id_counter = ref 0

let id_salt =
  lazy
    (let t = int_of_float (Unix.gettimeofday () *. 1e6) in
     ((Unix.getpid () land 0xffff) lsl 40) lxor (t land 0xff_ffff_ffff))

let next_id () =
  Stdlib.incr id_counter;
  (* Stay positive and below 2^62 so the id survives u64 wire round trips on
     63-bit OCaml ints. *)
  (Lazy.force id_salt lxor (!id_counter lsl 20) lor !id_counter) land max_int

let pp_id id = Printf.sprintf "%x" id

let record ph ?(cat = "iw") ?(args = []) name =
  if !on then begin
    let ts = (Unix.gettimeofday () -. !t0) *. 1e6 in
    let e =
      { e_ph = ph; e_name = name; e_cat = cat; e_ts = ts;
        e_tid = Thread.id (Thread.self ()); e_args = args }
    in
    Mutex.lock mutex;
    events := e :: !events;
    Mutex.unlock mutex
  end

let span_begin ?cat ?args name = record 'B' ?cat ?args name

let span_end name = record 'E' name

let instant ?cat ?args name = record 'i' ?cat ?args name

let with_span ?cat ?args name f =
  if not !on then f ()
  else begin
    span_begin ?cat ?args name;
    Fun.protect ~finally:(fun () -> span_end name) f
  end

let render_event buf pid e =
  Buffer.add_string buf "{\"name\":";
  Iw_obs_json.escape buf e.e_name;
  Buffer.add_string buf ",\"cat\":";
  Iw_obs_json.escape buf e.e_cat;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%c\"" e.e_ph);
  (* Instant events need an explicit scope or some viewers drop them. *)
  if e.e_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d" e.e_ts pid e.e_tid);
  (match e.e_args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun j (k, v) ->
        if j > 0 then Buffer.add_char buf ',';
        Iw_obs_json.escape buf k;
        Buffer.add_char buf ':';
        Iw_obs_json.escape buf v)
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

(* In append mode the existing file's events are carried over verbatim, so
   two processes (or two runs) writing the same path produce one valid
   Chrome-trace document instead of the second clobbering the first. *)
let existing_events path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Iw_obs_json.parse data with
    | Error _ -> []
    | Ok doc ->
      (match Option.bind (Iw_obs_json.member "traceEvents" doc) Iw_obs_json.to_list with
      | Some evs -> List.map Iw_obs_json.to_string evs
      | None -> [])
  end

let write_file ~mode path evs =
  let old = match mode with Append -> existing_events path | Overwrite | Unique -> [] in
  let buf = Buffer.create (256 * (1 + List.length evs + List.length old)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let pid = Unix.getpid () in
  List.iteri
    (fun i raw ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf raw)
    old;
  List.iteri
    (fun i e ->
      if i > 0 || old <> [] then Buffer.add_char buf ',';
      render_event buf pid e)
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let stop () =
  Mutex.lock mutex;
  let evs = List.rev !events in
  let path = !out_path in
  let mode = !out_mode in
  on := false;
  events := [];
  out_path := None;
  Mutex.unlock mutex;
  match path with None -> () | Some p -> write_file ~mode p evs

(* "trace.json" -> "trace.pid1234.json"; no extension appends the suffix. *)
let unique_path path =
  let suffix = Printf.sprintf "pid%d" (Unix.getpid ()) in
  match String.rindex_opt path '.' with
  | Some i when not (String.contains (String.sub path i (String.length path - i)) '/') ->
    Printf.sprintf "%s.%s%s" (String.sub path 0 i) suffix
      (String.sub path i (String.length path - i))
  | _ -> Printf.sprintf "%s.%s" path suffix

let start ?(mode = Overwrite) ~path () =
  let path = match mode with Unique -> unique_path path | Overwrite | Append -> path in
  Mutex.lock mutex;
  out_path := Some path;
  out_mode := mode;
  if !t0 = 0. then t0 := Unix.gettimeofday ();
  on := true;
  let install = not !at_exit_installed in
  at_exit_installed := true;
  Mutex.unlock mutex;
  if install then at_exit stop

(* IW_TRACE=<path> attaches tracing for the whole process with no code
   changes, mirroring IW_SANITIZE; IW_TRACE_MODE=append|unique lets the
   client and server of one run share a path without clobbering. *)
let env_mode () =
  match Sys.getenv_opt "IW_TRACE_MODE" with
  | Some "append" -> Append
  | Some "unique" -> Unique
  | None | Some _ -> Overwrite

let () =
  match Sys.getenv_opt "IW_TRACE" with
  | None | Some "" -> ()
  | Some path -> start ~mode:(env_mode ()) ~path ()
