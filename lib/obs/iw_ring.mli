(** Fixed-size metric history ring: the last N windowed snapshots of a set
    of scalar series, O(N) memory however long the server runs.

    Live gauges answer "what is happening now"; the ring answers "what has
    been happening lately" without a Prometheus server in the loop.  Every
    [window_s] seconds the owner (the server's request path, lazily — no
    dedicated thread) folds its metric snapshot into one {!point}: a
    timestamp, the window's actual duration, and a flat [series -> value]
    list (counter {e rates}, gauge levels, histogram rate/percentile
    derivations — the owner chooses).  The ring keeps the newest
    [capacity] points and is served remotely by the [Metrics_history]
    protocol request, powering [iw-admin top]'s sparkline trend columns.

    Windows are {b merge-friendly}: {!merge_adjacent} combines consecutive
    points duration-weighted, so a 64-point ring renders honestly in a
    16-column sparkline — each merged cell is the time-weighted mean of
    what it covers, and rates stay rates.

    Thread-safe ([push]/[points] take an internal mutex). *)

type point = {
  p_t : float;  (** window end, seconds since epoch *)
  p_dur : float;  (** window length actually covered, seconds *)
  p_values : (string * float) list;  (** series name -> value *)
}

type t

val create : ?capacity:int -> ?window_s:float -> unit -> t
(** [capacity] points retained (default [64], min 1); [window_s] the
    owner's target roll interval (default [5.]) — advisory, stored here so
    owner and readers agree. *)

val of_env : unit -> t
(** {!create} with [IW_RING_N] and [IW_RING_WINDOW_S] overriding the
    defaults. *)

val capacity : t -> int

val window_s : t -> float

val push : t -> point -> unit
(** Append one window, evicting the oldest beyond [capacity]. *)

val points : t -> point list
(** Oldest first; at most [capacity]. *)

val clear : t -> unit

val merge_adjacent : target:int -> point list -> point list
(** Reduce to at most [target] points (min 1) by merging runs of
    consecutive points: merged [p_t] is the run's last timestamp, [p_dur]
    the summed durations, each value the duration-weighted mean of the
    run's values for that series (series absent from a point simply do not
    contribute).  Order is preserved. *)
