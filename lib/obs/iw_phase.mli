(** Request-lifecycle phase timing.

    A request entering the server passes through a fixed pipeline of
    phases — decode the frame, wait for the (today: global) server lock,
    service the request with the lock held, append to the write-ahead log,
    write the reply — and a slow request is only diagnosable when the time
    can be attributed to one of them.  A {!timer} is started at arrival and
    carried through the pipeline; each phase brackets itself with
    {!enter}/{!leave} and the timer accumulates {e exclusive} time per
    phase: entering a nested phase (the WAL append happens inside the
    service phase) suspends the enclosing one, so the per-phase times sum
    to the bracketed wall time with nothing counted twice.

    Timers are single-threaded values owned by the connection thread —
    cheap (a float array, no allocation per transition) and not
    thread-safe.  Finished timers are folded into a {!stats} accumulator
    (internally locked) holding per-phase and per-(variant, phase)
    {!Iw_hist} histograms, which is what the ycsb bench's [phase] section
    and the acceptance check ("phases sum to within 10% of total") read. *)

type phase =
  | Decode  (** envelope + request body parsing *)
  | Lock_wait  (** blocked acquiring the server lock *)
  | Service  (** request dispatch with the lock held *)
  | Wal  (** write-ahead-log append (+ any synchronous fsync) *)
  | Reply  (** response encode + frame write *)

val phases : phase list
(** Pipeline order; also the canonical iteration order for reports. *)

val name : phase -> string
(** Stable lowercase label ([decode], [lock_wait], [service], [wal],
    [reply]) used for metric labels, BENCH JSON series, and admin views. *)

type timer

val start : ?clock:(unit -> float) -> unit -> timer
(** A timer whose arrival instant is now.  [clock] (seconds, monotonic
    enough) defaults to [Unix.gettimeofday]; tests inject a fake. *)

val enter : timer -> phase -> unit
(** Begin attributing elapsed time to [phase].  If another phase is open it
    is suspended (its exclusive time keeps everything up to this instant)
    until the nested phase {!leave}s. *)

val leave : timer -> phase -> unit
(** Stop attributing to [phase] and resume the enclosing phase, if any.
    Leaving a phase that is not the innermost open one is forgiving: inner
    phases still open are closed first, so a handler that raises between
    [enter] and [leave] cannot corrupt attribution. *)

val elapsed_us : timer -> phase -> float
(** Exclusive microseconds accumulated so far for [phase]. *)

val total_us : timer -> float
(** Microseconds since {!start} — the request's wall time so far. *)

type stats

val create_stats : ?error:float -> unit -> stats
(** An accumulator of finished timers.  [error] is the {!Iw_hist} relative
    error bound (default [0.01]).  Thread-safe. *)

val record : stats -> variant:string -> total_us:float -> timer -> unit
(** Fold one finished request in: each phase's exclusive time lands in the
    per-phase and per-(variant, phase) histograms, [total_us] in the total
    histogram.  Phases with zero accumulated time are recorded too — their
    zeros keep per-phase counts comparable to the total count. *)

val phase_summary : stats -> phase -> Iw_hist.summary
(** All variants merged. *)

val total_summary : stats -> Iw_hist.summary

val phase_sum_us : stats -> phase -> float
(** Exact accumulated exclusive microseconds for [phase] (all variants). *)

val total_sum_us : stats -> float

val variant_summary : stats -> string -> phase -> Iw_hist.summary option
(** Per-variant breakdown; [None] if the variant was never recorded. *)

val variants : stats -> string list
