(* Log-linear bucketing, the HdrHistogram layout: [n_sub] equal-width
   sub-buckets inside each power-of-two range.  For a value v in
   [2^(e-1), 2^e) the sub-bucket width is 2^(e-1) / n_sub <= v / n_sub, so
   the bucket midpoint is within v / (2 * n_sub) of v — bounded relative
   error at every magnitude, unlike plain log2 buckets whose error doubles
   with each octave.

   Indexing is one [frexp]: v = m * 2^e with m in [0.5, 1), and the
   sub-bucket is the linear position of m inside [0.5, 1).  No branches on
   magnitude, no search. *)

type t = {
  n_sub : int;  (* power of two *)
  buckets : int array;  (* 1 underflow bucket + max_exp * n_sub *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

(* 2^40 microseconds is ~12.7 days; anything beyond clamps into the top
   bucket (its count and the exact max survive). *)
let max_exp = 40

let create ?(error = 0.01) () =
  if not (error > 0. && error <= 1.) then
    invalid_arg "Iw_hist.create: error must be in (0, 1]";
  let n_sub =
    let n = ref 1 in
    while float_of_int !n *. error < 1. && !n < 1 lsl 20 do
      n := !n * 2
    done;
    !n
  in
  {
    n_sub;
    buckets = Array.make (1 + (max_exp * n_sub)) 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let error t = 1. /. float_of_int t.n_sub

let index t v =
  if not (v >= 1.) then 0 (* negative, sub-unit, and NaN all land here *)
  else begin
    let m, e = Float.frexp v in
    if e > max_exp then Array.length t.buckets - 1
    else begin
      let sub = int_of_float ((m -. 0.5) *. 2. *. float_of_int t.n_sub) in
      let sub = if sub >= t.n_sub then t.n_sub - 1 else sub in
      1 + ((e - 1) * t.n_sub) + sub
    end
  end

(* Midpoint of the bucket's value range; bucket 0 covers [0, 1). *)
let representative t idx =
  if idx = 0 then 0.5
  else begin
    let b = idx - 1 in
    let e = (b / t.n_sub) + 1 in
    let sub = b mod t.n_sub in
    let n = float_of_int t.n_sub in
    let lo = Float.ldexp (0.5 +. (float_of_int sub /. (2. *. n))) e in
    let width = Float.ldexp (1. /. n) (e - 1) in
    lo +. (width /. 2.)
  end

let record_n t v n =
  if n > 0 then begin
    let i = index t v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v 1

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let min_value t = if t.count = 0 then Float.nan else t.min_v

let max_value t = if t.count = 0 then Float.nan else t.max_v

let quantile t q =
  if t.count = 0 then Float.nan
  else if q >= 1. then t.max_v
  else begin
    let target =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let n = Array.length t.buckets in
    let rec go i cum =
      if i >= n then t.max_v
      else begin
        let cum = cum + t.buckets.(i) in
        if cum >= target then begin
          (* The exact extremes bound the bucket midpoint: a quantile can
             never be reported outside the recorded range. *)
          let v = representative t i in
          Float.min t.max_v (Float.max t.min_v v)
        end
        else go (i + 1) cum
      end
    in
    go 0 0
  end

let merge ~into src =
  if into.n_sub <> src.n_sub then
    invalid_arg "Iw_hist.merge: histograms have different error bounds";
  Array.iteri
    (fun i c -> if c <> 0 then into.buckets.(i) <- into.buckets.(i) + c)
    src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t = { t with buckets = Array.copy t.buckets }

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

type summary = {
  sm_count : int;
  sm_mean : float;
  sm_p50 : float;
  sm_p90 : float;
  sm_p99 : float;
  sm_p999 : float;
  sm_max : float;
}

let summary t =
  {
    sm_count = t.count;
    sm_mean = mean t;
    sm_p50 = quantile t 0.5;
    sm_p90 = quantile t 0.9;
    sm_p99 = quantile t 0.99;
    sm_p999 = quantile t 0.999;
    sm_max = max_value t;
  }
