type entry = {
  e_t : float;
  e_variant : string;
  e_segment : string;
  e_session : int;
  e_seq : int;
  e_trace_id : int;
  e_span_id : int;
  e_latency_us : float;
  e_wait_us : float;
  e_service_us : float;
  e_wal_us : float;
}

(* The current window's entries are a sorted-ascending list of length <= k:
   admission is "is it slower than the current fastest survivor", insertion
   keeps the order.  K is small (tens), so list surgery beats a heap on
   simplicity and is just as fast. *)
type t = {
  mutex : Mutex.t;
  k : int;
  window_s : float;
  min_us : float;
  mutable cur_start : float;
  mutable cur : entry list;  (* ascending by latency, length <= k *)
  mutable prev : entry list;
}

let create ?(k = 32) ?(window_s = 10.) ?(min_us = 0.) () =
  {
    mutex = Mutex.create ();
    k = max 0 k;
    window_s = (if window_s > 0. then window_s else 10.);
    min_us = max 0. min_us;
    cur_start = Unix.gettimeofday ();
    cur = [];
    prev = [];
  }

let of_env () =
  let int_env name d =
    match Sys.getenv_opt name with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> d)
    | None -> d
  in
  let float_env name d =
    match Sys.getenv_opt name with
    | Some s -> (
      match float_of_string_opt (String.trim s) with Some v -> v | None -> d)
    | None -> d
  in
  create ~k:(int_env "IW_SLOWLOG_K" 32)
    ~window_s:(float_env "IW_SLOWLOG_WINDOW_S" 10.)
    ~min_us:(float_env "IW_SLOWLOG_MIN_US" 0.) ()

(* Call with the mutex held. *)
let roll_locked t now =
  if now -. t.cur_start >= t.window_s then begin
    (* More than two whole windows of silence means even the previous
       window is stale — drop both rather than promoting ancient entries. *)
    if now -. t.cur_start >= 2. *. t.window_s then t.prev <- []
    else t.prev <- t.cur;
    t.cur <- [];
    t.cur_start <- now
  end

let rec insert_sorted e = function
  | [] -> [ e ]
  | x :: rest when x.e_latency_us <= e.e_latency_us -> x :: insert_sorted e rest
  | l -> e :: l

let observe t ~variant ~segment ~session ~seq ~trace_id ~span_id
    ?(wait_us = 0.) ?(service_us = 0.) ?(wal_us = 0.) latency_us =
  if t.k > 0 && latency_us >= t.min_us then begin
    let now = Unix.gettimeofday () in
    let entry =
      {
        e_t = now;
        e_variant = variant;
        e_segment = segment;
        e_session = session;
        e_seq = seq;
        e_trace_id = trace_id;
        e_span_id = span_id;
        e_latency_us = latency_us;
        e_wait_us = wait_us;
        e_service_us = service_us;
        e_wal_us = wal_us;
      }
    in
    Mutex.lock t.mutex;
    roll_locked t now;
    (match t.cur with
    | fastest :: rest when List.length t.cur >= t.k ->
      if latency_us > fastest.e_latency_us then
        t.cur <- insert_sorted entry rest
    | _ -> t.cur <- insert_sorted entry t.cur);
    Mutex.unlock t.mutex
  end

let snapshot ?limit t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  roll_locked t now;
  let cur = t.cur and prev = t.prev in
  Mutex.unlock t.mutex;
  let all =
    List.sort
      (fun a b -> compare b.e_latency_us a.e_latency_us)
      (List.rev_append cur prev)
  in
  match limit with
  | Some n when n >= 0 ->
    List.filteri (fun i _ -> i < n) all
  | _ -> all
