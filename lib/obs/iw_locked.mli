(** An instrumented critical section — a [Mutex.t] wrapper that measures
    the cost of the lock it guards.

    Today's server serializes every request behind one global mutex
    ([lib/server/iw_server.ml]); the first step toward sharding it is
    knowing what it costs.  [with_lock] brackets [Mutex.lock]/[Mutex.unlock]
    and per acquisition records

    - {b wait time} (blocked in [Mutex.lock]) and {b hold time} (lock owned)
      into [<prefix>_wait_us]/[<prefix>_hold_us] histograms, attributed per
      request variant and per segment when the caller labels the section;
    - live {b queue depth} (threads blocked waiting) and {b inflight}
      (threads waiting or holding) gauges, read by {!queue_depth} /
      {!inflight} — the server exposes them as collect-time probes;
    - a {b contention event} through {!set_on_contention} when the wait
      exceeds a threshold ([IW_LOCK_CONTENTION_US], default 10 ms) — the
      server wires this to its flight recorder, so "who was stuck behind
      whom" survives into crash dumps.

    The wrapper is deliberately the exact seam a per-shard lock split will
    replace: callers name the section they want, not the mutex they got,
    so the instrumentation survives the refactor.

    Thread-safe by construction; the depth counters are atomics, the
    histogram updates happen while the wrapped mutex is held (so they are
    serialized by it, not by extra locking). *)

type t

val create :
  ?metrics:Iw_metrics.t ->
  ?prefix:string ->
  ?contention_us:float ->
  Mutex.t ->
  t
(** Wrap [mutex].  With [metrics], wait/hold histograms are registered
    under [<prefix>_wait_us] / [<prefix>_hold_us] (default prefix
    [iw_lock]) with [variant]/[segment] labels as sections announce them.
    [contention_us] is the wait threshold for {!set_on_contention} events;
    default from [IW_LOCK_CONTENTION_US], else [10_000.]. *)

val mutex : t -> Mutex.t
(** The wrapped mutex, for the few callers that need a bare
    [Mutex.lock]/[Mutex.unlock] pair (uninstrumented, but the same lock). *)

val with_lock :
  t ->
  ?variant:string ->
  ?segment:string ->
  ?timer:Iw_phase.timer ->
  (unit -> 'a) ->
  'a
(** Run [f] with the lock held.  [variant]/[segment] label the recorded
    wait/hold samples ([""] = unlabeled, aggregate series only).  With
    [timer], the wait is bracketed as {!Iw_phase.Lock_wait} and the held
    section as {!Iw_phase.Service}.  Exception-safe: the lock is released
    and the hold time recorded whatever [f] does. *)

val queue_depth : t -> int
(** Threads currently blocked in [Mutex.lock] under {!with_lock}. *)

val inflight : t -> int
(** Threads currently inside {!with_lock} — waiting or holding. *)

val contention_us : t -> float

val set_on_contention :
  t -> (wait_us:float -> variant:string -> segment:string -> unit) -> unit
(** Called (with the lock held, so keep it cheap and reentrancy-free) after
    any acquisition that waited at least {!contention_us}. *)
