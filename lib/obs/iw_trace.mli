(** Structured tracing: begin/end spans and instant events with monotonic
    timestamps and string attributes, written as Chrome [trace_event] JSON —
    loadable in [chrome://tracing] or Perfetto.

    Tracing is process-global and off by default; every instrumented site
    guards on {!enabled}, so a disabled tracer costs one branch per event
    (the sanitizer-hook discipline).  Setting [IW_TRACE=<path>] in the
    environment enables tracing at program start and writes the file at
    process exit ([IW_TRACE_MODE=append|unique] selects the output mode);
    {!start}/{!stop} do the same programmatically.

    Events are buffered in memory and flushed as one JSON document by
    {!stop} (or the [at_exit] hook), so trace files are complete, parseable
    arrays — not truncated streams. *)

val enabled : unit -> bool

type mode =
  | Overwrite  (** replace [path] (the pre-existing behavior) *)
  | Append
      (** merge with the [traceEvents] already in [path], so the client and
          server of one run can share a file: whichever process exits last
          folds the other's events into a single Perfetto-valid document *)
  | Unique
      (** write to [path] with a [.pid<pid>] suffix spliced in before the
          extension; merge the per-process files later (see README) *)

val unique_path : string -> string
(** The path {!Unique} mode would write: ["trace.json"] becomes
    ["trace.pid1234.json"] (suffix appended when there is no extension). *)

val start : ?mode:mode -> path:string -> unit -> unit
(** Begin recording; the trace is written to [path] by {!stop} or at process
    exit.  [mode] defaults to {!Overwrite}.  Restarting with a new path
    redirects the (single) trace. *)

val stop : unit -> unit
(** Write the buffered events and disable tracing.  Idempotent. *)

val next_id : unit -> int
(** A fresh positive identifier for a span or trace, unique within this
    process and salted with the pid and start time so ids minted by the
    client and server of one run do not collide.  Fits in a u64 wire
    field. *)

val pp_id : int -> string
(** Identifier rendered as lowercase hex, the form used in span args. *)

val span_begin : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Open a span (phase ["B"]) on the calling thread.  [cat] defaults to
    ["iw"].  Callers must close it with {!span_end} of the same name on the
    same thread; prefer {!with_span} unless control flow makes the pair
    clearer. *)

val span_end : string -> unit
(** Close a span (phase ["E"]). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A point event (phase ["i"]). *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the end event is emitted even on
    exceptions, keeping B/E balanced.  When tracing is disabled this is just
    one branch and a call. *)
