type phase = Decode | Lock_wait | Service | Wal | Reply

let phases = [ Decode; Lock_wait; Service; Wal; Reply ]

let n_phases = 5

let index = function
  | Decode -> 0
  | Lock_wait -> 1
  | Service -> 2
  | Wal -> 3
  | Reply -> 4

let name = function
  | Decode -> "decode"
  | Lock_wait -> "lock_wait"
  | Service -> "service"
  | Wal -> "wal"
  | Reply -> "reply"

(* Exclusive attribution: [stack] holds the open phases, innermost first;
   [last] is the instant attribution last changed hands.  Every transition
   charges [now - last] to the phase that owned the interval. *)
type timer = {
  clock : unit -> float;
  t_start : float;
  mutable stack : phase list;
  mutable last : float;
  acc : float array;  (* exclusive seconds per phase *)
}

let start ?(clock = Unix.gettimeofday) () =
  let now = clock () in
  { clock; t_start = now; stack = []; last = now; acc = Array.make n_phases 0. }

let charge_open t now =
  match t.stack with
  | [] -> ()
  | p :: _ -> t.acc.(index p) <- t.acc.(index p) +. (now -. t.last)

let enter t p =
  let now = t.clock () in
  charge_open t now;
  t.stack <- p :: t.stack;
  t.last <- now

let rec leave t p =
  match t.stack with
  | [] -> ()
  | top :: rest ->
    let now = t.clock () in
    t.acc.(index top) <- t.acc.(index top) +. (now -. t.last);
    t.stack <- rest;
    t.last <- now;
    (* Close abandoned inner phases (a handler raised between enter and
       leave) until the named one has been closed. *)
    if top <> p then leave t p

let elapsed_us t p =
  let base = t.acc.(index p) *. 1e6 in
  match t.stack with
  | top :: _ when top = p -> base +. ((t.clock () -. t.last) *. 1e6)
  | _ -> base

let total_us t = (t.clock () -. t.t_start) *. 1e6

type stats = {
  mutex : Mutex.t;
  error : float;
  by_phase : Iw_hist.t array;  (* all variants merged *)
  total : Iw_hist.t;
  by_variant : (string, Iw_hist.t array) Hashtbl.t;
  mutable sums : float array;  (* exact exclusive us per phase *)
  mutable total_sum : float;
}

let create_stats ?(error = 0.01) () =
  {
    mutex = Mutex.create ();
    error;
    by_phase = Array.init n_phases (fun _ -> Iw_hist.create ~error ());
    total = Iw_hist.create ~error ();
    by_variant = Hashtbl.create 16;
    sums = Array.make n_phases 0.;
    total_sum = 0.;
  }

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let record s ~variant ~total_us t =
  locked s (fun () ->
      let per_var =
        match Hashtbl.find_opt s.by_variant variant with
        | Some a -> a
        | None ->
          let a = Array.init n_phases (fun _ -> Iw_hist.create ~error:s.error ()) in
          Hashtbl.add s.by_variant variant a;
          a
      in
      List.iter
        (fun p ->
          let i = index p in
          let us = t.acc.(i) *. 1e6 in
          Iw_hist.record s.by_phase.(i) us;
          Iw_hist.record per_var.(i) us;
          s.sums.(i) <- s.sums.(i) +. us)
        phases;
      Iw_hist.record s.total total_us;
      s.total_sum <- s.total_sum +. total_us)

let phase_summary s p = locked s (fun () -> Iw_hist.summary s.by_phase.(index p))

let total_summary s = locked s (fun () -> Iw_hist.summary s.total)

let phase_sum_us s p = locked s (fun () -> s.sums.(index p))

let total_sum_us s = locked s (fun () -> s.total_sum)

let variant_summary s variant p =
  locked s (fun () ->
      match Hashtbl.find_opt s.by_variant variant with
      | None -> None
      | Some a -> Some (Iw_hist.summary a.(index p)))

let variants s =
  locked s (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) s.by_variant []
      |> List.sort compare)
