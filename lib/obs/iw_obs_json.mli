(** Minimal JSON: enough to render metric snapshots and bench results, and to
    parse them back (tests validate trace files and bench output with this).
    No external dependencies; numbers are floats, as in JSON itself. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_int : int -> t

val to_string : t -> string
(** Compact rendering.  Integral numbers print without a decimal point. *)

val escape : Buffer.t -> string -> unit
(** Append the JSON string literal for [s] (including the quotes). *)

val parse : string -> (t, string) result
(** Strict parser for the subset above.  Escapes [\uXXXX] decode to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_float : t -> float option

val to_list : t -> t list option
