type point = {
  p_t : float;
  p_dur : float;
  p_values : (string * float) list;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  window_s : float;
  buf : point option array;
  mutable next : int;  (* slot the next push lands in *)
  mutable len : int;
}

let create ?(capacity = 64) ?(window_s = 5.) () =
  let capacity = max 1 capacity in
  {
    mutex = Mutex.create ();
    capacity;
    window_s = (if window_s > 0. then window_s else 5.);
    buf = Array.make capacity None;
    next = 0;
    len = 0;
  }

let of_env () =
  let int_env name d =
    match Sys.getenv_opt name with
    | Some s -> (
      match int_of_string_opt (String.trim s) with Some v -> v | None -> d)
    | None -> d
  in
  let float_env name d =
    match Sys.getenv_opt name with
    | Some s -> (
      match float_of_string_opt (String.trim s) with Some v -> v | None -> d)
    | None -> d
  in
  create
    ~capacity:(int_env "IW_RING_N" 64)
    ~window_s:(float_env "IW_RING_WINDOW_S" 5.)
    ()

let capacity t = t.capacity

let window_s t = t.window_s

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t p =
  locked t (fun () ->
      t.buf.(t.next) <- Some p;
      t.next <- (t.next + 1) mod t.capacity;
      if t.len < t.capacity then t.len <- t.len + 1)

let points t =
  locked t (fun () ->
      let first = (t.next - t.len + t.capacity) mod t.capacity in
      List.init t.len (fun i ->
          match t.buf.((first + i) mod t.capacity) with
          | Some p -> p
          | None -> assert false))

let clear t =
  locked t (fun () ->
      Array.fill t.buf 0 t.capacity None;
      t.next <- 0;
      t.len <- 0)

let merge_run = function
  | [] -> invalid_arg "Iw_ring.merge_run: empty"
  | run ->
    let last = List.nth run (List.length run - 1) in
    let dur = List.fold_left (fun a p -> a +. p.p_dur) 0. run in
    (* weight * value and weight sums per series; a point with zero
       duration still counts with a tiny weight so lone values survive *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let w = if p.p_dur > 0. then p.p_dur else 1e-9 in
        List.iter
          (fun (k, v) ->
            let wv, ws =
              match Hashtbl.find_opt tbl k with
              | Some (wv, ws) -> (wv, ws)
              | None -> (0., 0.)
            in
            Hashtbl.replace tbl k (wv +. (w *. v), ws +. w))
          p.p_values)
      run;
    let values =
      Hashtbl.fold (fun k (wv, ws) acc -> (k, wv /. ws) :: acc) tbl []
      |> List.sort compare
    in
    { p_t = last.p_t; p_dur = dur; p_values = values }

let merge_adjacent ~target pts =
  let target = max 1 target in
  let n = List.length pts in
  if n <= target then pts
  else begin
    let per = (n + target - 1) / target in
    let rec take k acc = function
      | [] -> (List.rev acc, [])
      | l when k = 0 -> (List.rev acc, l)
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let rec go l acc =
      match l with
      | [] -> List.rev acc
      | _ ->
        let run, rest = take per [] l in
        go rest (merge_run run :: acc)
    in
    go pts []
  end
