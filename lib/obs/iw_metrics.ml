(* Counters and gauges are bare mutable fields; histograms are fixed arrays
   indexed by a short scan over power-of-two bounds.  Every mutation is
   guarded by one load-and-branch on the registry's enabled flag (shared into
   each instrument as a bool ref), so a disabled registry costs a single
   branch per instrumented event.  Updates are not atomic: like the client
   and server stat records, instruments tolerate the benign races of
   systhread interleaving rather than taking a lock per event. *)

type counter = {
  c_on : bool ref;
  mutable c_value : int;
}

type gauge = {
  g_on : bool ref;
  mutable g_value : float;
}

type histogram = {
  h_on : bool ref;
  h_unit : string;
  h_bounds : float array;
  h_counts : int array;  (* length (Array.length h_bounds) + 1: last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type probe_fn = {
  p_kind : [ `Counter | `Gauge ];
  p_read : unit -> float;
}

type item =
  | I_counter of counter
  | I_gauge of gauge
  | I_hist of histogram
  | I_probe of probe_fn

type t = {
  r_on : bool ref;
  r_mutex : Mutex.t;  (* guards registration and snapshot, not updates *)
  r_items : (string, string * item) Hashtbl.t;  (* name -> help, instrument *)
}

let create ?(enabled = true) () =
  { r_on = ref enabled; r_mutex = Mutex.create (); r_items = Hashtbl.create 32 }

let enabled t = !(t.r_on)

let set_enabled t b = t.r_on := b

(* Forget every instrument.  Existing instrument handles keep working (their
   enabled ref is shared) but no longer appear in snapshots; tests use this
   to keep registries from leaking series into each other. *)
let reset t =
  Mutex.lock t.r_mutex;
  Hashtbl.reset t.r_items;
  Mutex.unlock t.r_mutex

let env_enabled ~default =
  match Sys.getenv_opt "IW_METRICS" with
  | None -> default
  | Some ("" | "0") -> false
  | Some _ -> true

let with_label name k v =
  let buf = Buffer.create (String.length name + String.length k + String.length v + 8) in
  let add_label () =
    Buffer.add_string buf k;
    Buffer.add_string buf "=\"";
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.add_char buf '"'
  in
  if String.length name > 0 && name.[String.length name - 1] = '}' then begin
    Buffer.add_string buf (String.sub name 0 (String.length name - 1));
    Buffer.add_char buf ',';
    add_label ();
    Buffer.add_char buf '}'
  end
  else begin
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    add_label ();
    Buffer.add_char buf '}'
  end;
  Buffer.contents buf

let register t name help mk match_existing =
  Mutex.lock t.r_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.r_mutex)
    (fun () ->
      match Hashtbl.find_opt t.r_items name with
      | Some (_, item) -> begin
        match match_existing item with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Iw_metrics: %S already registered as another kind" name)
      end
      | None ->
        let v, item = mk () in
        Hashtbl.replace t.r_items name (help, item);
        v)

let counter t ?(help = "") name =
  register t name help
    (fun () ->
      let c = { c_on = t.r_on; c_value = 0 } in
      (c, I_counter c))
    (function I_counter c -> Some c | _ -> None)

let incr ?(by = 1) c = if !(c.c_on) then c.c_value <- c.c_value + by

let gauge t ?(help = "") name =
  register t name help
    (fun () ->
      let g = { g_on = t.r_on; g_value = 0. } in
      (g, I_gauge g))
    (function I_gauge g -> Some g | _ -> None)

let set_gauge g v = if !(g.g_on) then g.g_value <- v

(* Power-of-two upper bounds: 2^0 .. 2^(n-1), plus an implicit overflow
   bucket.  26 bounds of microseconds reach ~67 s; 31 bounds of bytes reach
   1 GiB. *)
let log2_bounds n = Array.init n (fun i -> float_of_int (1 lsl i))

let us_bounds = log2_bounds 27

let byte_bounds = log2_bounds 31

let make_hist t name help unit_ bounds =
  register t name help
    (fun () ->
      let h =
        {
          h_on = t.r_on;
          h_unit = unit_;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_count = 0;
          h_sum = 0.;
        }
      in
      (h, I_hist h))
    (function I_hist h -> Some h | _ -> None)

let histogram_us t ?(help = "") name = make_hist t name help "us" us_bounds

let histogram_bytes t ?(help = "") name = make_hist t name help "bytes" byte_bounds

(* 16 bounds of counts reach 32768 — plenty for version lags and similar
   small-cardinality distributions. *)
let count_bounds = log2_bounds 16

let histogram_count t ?(help = "") name = make_hist t name help "count" count_bounds

let observe h v =
  if !(h.h_on) then begin
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      i := !i + 1
    done;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v
  end

let now_us () = Unix.gettimeofday () *. 1e6

let probe t ?(help = "") ?(kind = `Counter) name read =
  register t name help
    (fun () -> ((), I_probe { p_kind = kind; p_read = read }))
    (function I_probe _ -> Some () | _ -> None)

(* Snapshots. *)

type hist_view = {
  hv_unit : string;
  hv_bounds : float array;
  hv_counts : int array;
  hv_count : int;
  hv_sum : float;
}

type value =
  | V_counter of float
  | V_gauge of float
  | V_hist of hist_view

type sample = {
  s_name : string;
  s_help : string;
  s_value : value;
}

type snapshot = sample list

let snapshot t =
  Mutex.lock t.r_mutex;
  let samples =
    Hashtbl.fold
      (fun name (help, item) acc ->
        let value =
          match item with
          | I_counter c -> V_counter (float_of_int c.c_value)
          | I_gauge g -> V_gauge g.g_value
          | I_probe p -> begin
            match p.p_kind with
            | `Counter -> V_counter (p.p_read ())
            | `Gauge -> V_gauge (p.p_read ())
          end
          | I_hist h ->
            V_hist
              {
                hv_unit = h.h_unit;
                hv_bounds = h.h_bounds;
                hv_counts = Array.copy h.h_counts;
                hv_count = h.h_count;
                hv_sum = h.h_sum;
              }
        in
        { s_name = name; s_help = help; s_value = value } :: acc)
      t.r_items []
  in
  Mutex.unlock t.r_mutex;
  List.sort (fun a b -> compare a.s_name b.s_name) samples

let find snap name =
  List.find_map (fun s -> if s.s_name = name then Some s.s_value else None) snap

let hist_quantile hv q =
  if hv.hv_count = 0 then Float.nan
  else begin
    let target = q *. float_of_int hv.hv_count in
    let rec go i acc =
      if i >= Array.length hv.hv_counts then infinity
      else begin
        let acc = acc + hv.hv_counts.(i) in
        if float_of_int acc >= target then
          if i < Array.length hv.hv_bounds then hv.hv_bounds.(i) else infinity
        else go (i + 1) acc
      end
    in
    go 0 0
  end

(* "name{a="b"}" -> base and label body (without braces). *)
let split_labels name =
  match String.index_opt name '{' with
  | Some i when name.[String.length name - 1] = '}' ->
    (String.sub name 0 i, Some (String.sub name (i + 1) (String.length name - i - 2)))
  | _ -> (name, None)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* The exposition format escapes backslash and newline in HELP text (label
   values additionally escape double quotes, handled in [with_label] at
   registration time — segment names are URLs and can contain anything). *)
let escape_help help =
  let buf = Buffer.create (String.length help) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    help;
  Buffer.contents buf

let render_prometheus snap =
  let buf = Buffer.create 1024 in
  let described = Hashtbl.create 16 in
  let describe base help typ =
    if not (Hashtbl.mem described base) then begin
      Hashtbl.replace described base ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base typ)
    end
  in
  let series base labels value =
    (match labels with
    | None -> Buffer.add_string buf base
    | Some body -> Buffer.add_string buf (Printf.sprintf "%s{%s}" base body));
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fmt_float value);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun s ->
      let base, labels = split_labels s.s_name in
      match s.s_value with
      | V_counter v ->
        describe base s.s_help "counter";
        series base labels v
      | V_gauge v ->
        describe base s.s_help "gauge";
        series base labels v
      | V_hist hv ->
        describe base s.s_help "histogram";
        let with_le le =
          match labels with
          | None -> Some (Printf.sprintf "le=\"%s\"" le)
          | Some body -> Some (Printf.sprintf "%s,le=\"%s\"" body le)
        in
        let cum = ref 0 in
        Array.iteri
          (fun i count ->
            cum := !cum + count;
            let le =
              if i < Array.length hv.hv_bounds then fmt_float hv.hv_bounds.(i)
              else "+Inf"
            in
            series (base ^ "_bucket") (with_le le) (float_of_int !cum))
          hv.hv_counts;
        series (base ^ "_sum") labels hv.hv_sum;
        series (base ^ "_count") labels (float_of_int hv.hv_count))
    snap;
  Buffer.contents buf

let render_json snap =
  let open Iw_obs_json in
  Obj
    (List.map
       (fun s ->
         let v =
           match s.s_value with
           | V_counter v -> Obj [ ("type", Str "counter"); ("value", Num v) ]
           | V_gauge v -> Obj [ ("type", Str "gauge"); ("value", Num v) ]
           | V_hist hv ->
             Obj
               [
                 ("type", Str "histogram");
                 ("unit", Str hv.hv_unit);
                 ("bounds", Arr (Array.to_list (Array.map (fun b -> Num b) hv.hv_bounds)));
                 ("counts", Arr (Array.to_list (Array.map num_int hv.hv_counts)));
                 ("count", num_int hv.hv_count);
                 ("sum", Num hv.hv_sum);
               ]
         in
         (s.s_name, v))
       snap)

let pp_text ppf snap =
  let q hv p =
    let v = hist_quantile hv p in
    if Float.is_nan v then "-"
    else if v = infinity then Printf.sprintf ">%s" (fmt_float hv.hv_bounds.(Array.length hv.hv_bounds - 1))
    else "<=" ^ fmt_float v
  in
  List.iter
    (fun s ->
      match s.s_value with
      | V_counter v | V_gauge v -> Format.fprintf ppf "%-56s %s@." s.s_name (fmt_float v)
      | V_hist hv ->
        let mean =
          if hv.hv_count = 0 then "-"
          else fmt_float (hv.hv_sum /. float_of_int hv.hv_count)
        in
        Format.fprintf ppf "%-56s count=%d sum=%s mean=%s %s  p50%s p90%s p99%s@."
          s.s_name hv.hv_count (fmt_float hv.hv_sum) mean hv.hv_unit (q hv 0.5)
          (q hv 0.9) (q hv 0.99))
    snap
