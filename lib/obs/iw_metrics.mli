(** Metrics registry: named counters, gauges, and fixed-bucket log2
    histograms (microseconds and bytes), with snapshot, Prometheus-style text
    exposition, and JSON rendering.

    Each subsystem owns a registry ({!Iw_client.metrics},
    {!Iw_server.metrics}, {!Iw_transport.metrics}); instruments are
    registered once and updated on hot paths behind a single enabled-flag
    branch, so a disabled registry costs one branch per instrumented event —
    the same discipline as the sanitizer observation hooks.

    Metric names follow Prometheus conventions and may carry a literal label
    set: ["iw_server_request_us{variant=\"read_lock\"}"].  Exposition splices
    histogram [le] labels into an existing set. *)

type t

val create : ?enabled:bool -> unit -> t
(** A fresh registry.  [enabled] defaults to [true]; recording on a disabled
    registry is a no-op. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Forget every registered instrument.  Handles held by callers keep
    accepting updates (sharing the registry's enabled flag) but no longer
    appear in snapshots.  Intended for tests that must not leak series
    between cases. *)

val env_enabled : default:bool -> bool
(** The [IW_METRICS] environment policy: unset means [default]; [""] or
    ["0"] means disabled; anything else means enabled. *)

val with_label : string -> string -> string -> string
(** [with_label name k v] is [name{k="v"}], extending an existing label set
    when [name] already carries one. *)

(** {1 Instruments}

    Registration is idempotent: asking for an existing name returns the
    existing instrument.  A name registered as one kind cannot be re-used as
    another ([Invalid_argument]). *)

type counter

val counter : t -> ?help:string -> string -> counter

val incr : ?by:int -> counter -> unit

type gauge

val gauge : t -> ?help:string -> string -> gauge

val set_gauge : gauge -> float -> unit

type histogram

val histogram_us : t -> ?help:string -> string -> histogram
(** Latency histogram: log2 buckets from 1 µs to ~67 s, plus overflow. *)

val histogram_bytes : t -> ?help:string -> string -> histogram
(** Size histogram: log2 buckets from 1 byte to 1 GiB, plus overflow. *)

val histogram_count : t -> ?help:string -> string -> histogram
(** Small-cardinality histogram (version lags, queue depths): log2 buckets
    from 1 to 32768, plus overflow. *)

val observe : histogram -> float -> unit

val now_us : unit -> float
(** Monotonic-enough wall clock in microseconds, for use with
    {!histogram_us}. *)

val probe :
  t -> ?help:string -> ?kind:[ `Counter | `Gauge ] -> string -> (unit -> float) -> unit
(** Register a collect-time callback: its value is read at {!snapshot} time.
    This is how pre-existing flat stat records ({!Iw_client.stats},
    {!Iw_server.stats}) are re-backed onto the registry without adding any
    cost to the paths that maintain them.  [kind] defaults to [`Counter]. *)

(** {1 Snapshots} *)

type hist_view = {
  hv_unit : string;  (** ["us"] or ["bytes"] *)
  hv_bounds : float array;  (** inclusive upper bounds; overflow is implicit *)
  hv_counts : int array;  (** length [Array.length hv_bounds + 1] *)
  hv_count : int;
  hv_sum : float;
}

type value =
  | V_counter of float
  | V_gauge of float
  | V_hist of hist_view

type sample = {
  s_name : string;
  s_help : string;
  s_value : value;
}

type snapshot = sample list
(** Sorted by name; safe to concatenate across registries. *)

val snapshot : t -> snapshot

val find : snapshot -> string -> value option

val hist_quantile : hist_view -> float -> float
(** Upper bound of the bucket containing the q-quantile observation
    (conservative); [infinity] when it falls in the overflow bucket, [nan]
    when the histogram is empty. *)

val render_prometheus : snapshot -> string
(** Prometheus text exposition format (HELP/TYPE lines, cumulative
    [_bucket{le=...}] series, [_sum] and [_count]). *)

val render_json : snapshot -> Iw_obs_json.t
(** Object keyed by metric name; histograms carry bounds, counts, sum,
    count, and unit. *)

val pp_text : Format.formatter -> snapshot -> unit
(** Human-readable dump: aligned counters and gauges, histograms with count,
    mean, and conservative p50/p90/p99. *)
