type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_int i = Num (float_of_int i)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else if Float.is_nan v || Float.abs v = Float.infinity then
    (* JSON has no NaN/Inf; null is the conventional stand-in. *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.12g" v)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> add_num buf v
    | Str s -> escape buf s
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        l;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go v)
        l;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at %d, got %c" c !pos c'
    | None -> fail "expected %c at %d, got end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at %d" !pos
  in
  (* UTF-8 encode one scalar value (surrogate pairs already combined). *)
  let utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape at %d" !pos;
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' ->
          Buffer.add_char buf '"';
          advance ()
        | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ()
        | Some '/' ->
          Buffer.add_char buf '/';
          advance ()
        | Some 'n' ->
          Buffer.add_char buf '\n';
          advance ()
        | Some 't' ->
          Buffer.add_char buf '\t';
          advance ()
        | Some 'r' ->
          Buffer.add_char buf '\r';
          advance ()
        | Some 'b' ->
          Buffer.add_char buf '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char buf '\012';
          advance ()
        | Some 'u' ->
          advance ();
          let u = hex4 () in
          let u =
            if u >= 0xd800 && u <= 0xdbff && !pos + 6 <= n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + (((u - 0xd800) lsl 10) lor (lo - 0xdc00))
            end
            else u
          in
          utf8 buf u
        | _ -> fail "bad escape at %d" !pos);
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number at %d" start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (string_body ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] at %d" !pos
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected , or } at %d" !pos
        in
        Obj (fields [])
      end
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_list = function Arr l -> Some l | _ -> None
