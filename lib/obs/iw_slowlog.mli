(** Sampled slow-request log: the K slowest requests per time window.

    The flight recorder answers "what happened just before the crash"; the
    slow log answers "what is slow right now".  The server records every
    dispatched request's latency here; only the K slowest of the current
    window survive, so memory is O(K) no matter the request rate.  Two
    windows (current + previous) are kept so a snapshot taken right after a
    window rolls still shows the recent tail instead of an empty table.

    Entries carry the request's trace id and span id when the client sent a
    trace-context envelope, so a slow entry can be looked up directly in
    the matching Perfetto trace.

    Thread-safe: [observe] and [snapshot] take an internal mutex (never the
    server lock — observation happens after dispatch, outside it). *)

type entry = {
  e_t : float;  (** completion wall-clock time, seconds since epoch *)
  e_variant : string;
  e_segment : string;  (** [""] when the request names no segment *)
  e_session : int;
  e_seq : int;  (** envelope seq; [0] without an envelope *)
  e_trace_id : int;  (** [0] without a trace-context envelope *)
  e_span_id : int;
  e_latency_us : float;
  e_wait_us : float;  (** lock-wait share of the latency; [0.] if unknown *)
  e_service_us : float;  (** lock-held share (WAL time excluded) *)
  e_wal_us : float;  (** write-ahead-log append (+fsync) share *)
}

type t

val create : ?k:int -> ?window_s:float -> ?min_us:float -> unit -> t
(** [k] slowest entries kept per window (default [32]); [window_s] window
    length in seconds (default [10.]); requests faster than [min_us]
    (default [0.]) are not considered at all — a cheap pre-filter for very
    hot servers. *)

val of_env : unit -> t
(** {!create} with [IW_SLOWLOG_K], [IW_SLOWLOG_WINDOW_S], and
    [IW_SLOWLOG_MIN_US] overriding the defaults; [IW_SLOWLOG_K=0] keeps
    nothing (the observe hook stays, snapshots are empty). *)

val observe :
  t ->
  variant:string ->
  segment:string ->
  session:int ->
  seq:int ->
  trace_id:int ->
  span_id:int ->
  ?wait_us:float ->
  ?service_us:float ->
  ?wal_us:float ->
  float ->
  unit
(** Consider one completed request (latency in microseconds) for the
    current window's top K.  The optional phase shares (see {!Iw_phase})
    let [iw-admin slowlog] explain an outlier without a trace file; they
    default to [0.] for callers without a phase timer. *)

val snapshot : ?limit:int -> t -> entry list
(** Slowest first, previous and current window merged; at most [limit]
    entries (default: everything retained, at most [2 * k]). *)
