type hists = {
  mutable wait_all : Iw_metrics.histogram option;
  mutable hold_all : Iw_metrics.histogram option;
  by_variant : (string, Iw_metrics.histogram * Iw_metrics.histogram) Hashtbl.t;
  by_segment : (string, Iw_metrics.histogram * Iw_metrics.histogram) Hashtbl.t;
}

type t = {
  l_mutex : Mutex.t;
  l_metrics : Iw_metrics.t option;
  l_prefix : string;
  l_contention_us : float;
  l_queue : int Atomic.t;
  l_inflight : int Atomic.t;
  l_hists : hists;
  mutable l_on_contention :
    (wait_us:float -> variant:string -> segment:string -> unit) option;
}

let default_contention_us () =
  match Sys.getenv_opt "IW_LOCK_CONTENTION_US" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v when v >= 0. -> v
    | _ -> 10_000.)
  | None -> 10_000.

let create ?metrics ?(prefix = "iw_lock") ?contention_us mutex =
  let contention_us =
    match contention_us with Some v -> v | None -> default_contention_us ()
  in
  {
    l_mutex = mutex;
    l_metrics = metrics;
    l_prefix = prefix;
    l_contention_us = contention_us;
    l_queue = Atomic.make 0;
    l_inflight = Atomic.make 0;
    l_hists =
      {
        wait_all = None;
        hold_all = None;
        by_variant = Hashtbl.create 16;
        by_segment = Hashtbl.create 16;
      };
    l_on_contention = None;
  }

let mutex t = t.l_mutex

let queue_depth t = Atomic.get t.l_queue

let inflight t = Atomic.get t.l_inflight

let contention_us t = t.l_contention_us

let set_on_contention t cb = t.l_on_contention <- Some cb

(* Handle caches are only touched while the wrapped mutex is held, so the
   mutex itself serializes them — no extra lock. *)
let pair m prefix label_k label_v =
  let lbl n =
    if label_v = "" then n else Iw_metrics.with_label n label_k label_v
  in
  ( Iw_metrics.histogram_us m ~help:"time blocked acquiring the section lock"
      (lbl (prefix ^ "_wait_us")),
    Iw_metrics.histogram_us m ~help:"time the section lock was held"
      (lbl (prefix ^ "_hold_us")) )

let labeled_pair m prefix tbl label_k label_v =
  match Hashtbl.find_opt tbl label_v with
  | Some p -> p
  | None ->
    let p = pair m prefix label_k label_v in
    Hashtbl.add tbl label_v p;
    p

let record_locked t ~variant ~segment ~wait_us ~hold_us =
  match t.l_metrics with
  | None -> ()
  | Some m when not (Iw_metrics.enabled m) -> ()
  | Some m ->
    let h = t.l_hists in
    let wait_all, hold_all =
      match (h.wait_all, h.hold_all) with
      | Some w, Some ho -> (w, ho)
      | _ ->
        let w, ho = pair m t.l_prefix "" "" in
        h.wait_all <- Some w;
        h.hold_all <- Some ho;
        (w, ho)
    in
    Iw_metrics.observe wait_all wait_us;
    Iw_metrics.observe hold_all hold_us;
    if variant <> "" then begin
      let w, ho = labeled_pair m t.l_prefix h.by_variant "variant" variant in
      Iw_metrics.observe w wait_us;
      Iw_metrics.observe ho hold_us
    end;
    if segment <> "" then begin
      let w, ho = labeled_pair m t.l_prefix h.by_segment "segment" segment in
      Iw_metrics.observe w wait_us;
      Iw_metrics.observe ho hold_us
    end

let with_lock t ?(variant = "") ?(segment = "") ?timer f =
  Atomic.incr t.l_inflight;
  Atomic.incr t.l_queue;
  (match timer with
  | Some tm -> Iw_phase.enter tm Iw_phase.Lock_wait
  | None -> ());
  let t0 = Iw_metrics.now_us () in
  Mutex.lock t.l_mutex;
  let t1 = Iw_metrics.now_us () in
  Atomic.decr t.l_queue;
  (match timer with
  | Some tm ->
    Iw_phase.leave tm Iw_phase.Lock_wait;
    Iw_phase.enter tm Iw_phase.Service
  | None -> ());
  let wait_us = t1 -. t0 in
  (if wait_us >= t.l_contention_us then
     match t.l_on_contention with
     | Some cb -> cb ~wait_us ~variant ~segment
     | None -> ());
  Fun.protect
    ~finally:(fun () ->
      let hold_us = Iw_metrics.now_us () -. t1 in
      record_locked t ~variant ~segment ~wait_us ~hold_us;
      (match timer with
      | Some tm -> Iw_phase.leave tm Iw_phase.Service
      | None -> ());
      Atomic.decr t.l_inflight;
      Mutex.unlock t.l_mutex)
    f
