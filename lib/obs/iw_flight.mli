(** Crash flight recorder: a fixed-size lock-free ring of the most recent
    request-level events (seq, variant, segment, version, latency), kept hot
    at ~zero cost — recording is one branch when disabled and a few stores
    when enabled, with no locks and no allocation — and dumped as JSON when
    something the metrics snapshot can't explain goes wrong: an uncaught
    server exception, a wire decode failure, [SIGUSR1], or an admin
    [Flight_recorder] request.

    Concurrent writers may interleave on a ring slot; a torn entry in a
    post-mortem dump is the accepted cost of a lock-free hot path. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] defaults to {!default_capacity}; [enabled] to [true]. *)

val default_capacity : int
(** 256 events. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val env_enabled : default:bool -> bool
(** The [IW_FLIGHT] environment policy: unset means [default]; [""] or ["0"]
    means disabled; anything else means enabled. *)

val record :
  t ->
  ?seq:int ->
  ?segment:string ->
  ?version:int ->
  ?latency_us:float ->
  string ->
  unit
(** [record t ~seq ~segment ~version ~latency_us variant] appends one event,
    overwriting the oldest once the ring is full.  One branch when
    disabled. *)

type view = {
  v_t : float;  (** wall-clock seconds *)
  v_seq : int;  (** request seq from the trace envelope; 0 = none *)
  v_variant : string;
  v_segment : string;
  v_version : int;
  v_latency_us : float;
}

val events : t -> view list
(** The retained events, oldest first. *)

val render_json : t -> Iw_obs_json.t
(** [{capacity; recorded; events: [{t; seq; variant; segment; version;
    latency_us}]}] — the dump format, also returned by the server's
    [Flight_recorder] request. *)

val dump_string : t -> string

val dump : ?reason:string -> t -> unit
(** Write the JSON dump to the file named by [IW_FLIGHT_DUMP] (read at dump
    time), or to stderr when unset; [reason] tags the log line. *)
