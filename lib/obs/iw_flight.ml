(* A crash flight recorder: the last [capacity] request-level events in a
   preallocated ring, recorded with no allocation beyond the argument strings
   the caller already holds and no locking.  The write cursor is a plain int
   advanced non-atomically — concurrent systhread writers can interleave on a
   slot, which at worst garbles that one entry; the recorder trades that
   benign race for a hot path that is one branch when disabled and a handful
   of stores when enabled.  Dumps happen on uncaught server exceptions,
   decode failures, SIGUSR1, or an admin request — the cases where the
   aggregate metrics snapshot can't say which request hurt. *)

type event = {
  mutable fe_t : float;  (* wall clock, seconds *)
  mutable fe_seq : int;  (* request seq from the trace envelope; 0 = none *)
  mutable fe_variant : string;
  mutable fe_segment : string;
  mutable fe_version : int;
  mutable fe_latency_us : float;
}

type t = {
  f_on : bool ref;
  f_ring : event array;
  mutable f_next : int;  (* monotonically increasing; slot = f_next mod cap *)
}

let default_capacity = 256

let empty_event () =
  { fe_t = 0.; fe_seq = 0; fe_variant = ""; fe_segment = ""; fe_version = 0;
    fe_latency_us = 0. }

let create ?(capacity = default_capacity) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Iw_flight.create: capacity must be positive";
  { f_on = ref enabled;
    f_ring = Array.init capacity (fun _ -> empty_event ());
    f_next = 0 }

let enabled t = !(t.f_on)

let set_enabled t b = t.f_on := b

(* IW_FLIGHT mirrors the IW_METRICS policy: unset means [default], "" or "0"
   disables, anything else enables. *)
let env_enabled ~default =
  match Sys.getenv_opt "IW_FLIGHT" with
  | None -> default
  | Some ("" | "0") -> false
  | Some _ -> true

let record t ?(seq = 0) ?(segment = "") ?(version = 0) ?(latency_us = 0.) variant =
  if !(t.f_on) then begin
    let slot = t.f_ring.(t.f_next mod Array.length t.f_ring) in
    t.f_next <- t.f_next + 1;
    slot.fe_t <- Unix.gettimeofday ();
    slot.fe_seq <- seq;
    slot.fe_variant <- variant;
    slot.fe_segment <- segment;
    slot.fe_version <- version;
    slot.fe_latency_us <- latency_us
  end

type view = {
  v_t : float;
  v_seq : int;
  v_variant : string;
  v_segment : string;
  v_version : int;
  v_latency_us : float;
}

(* Oldest first.  Copies out under no lock; an entry being overwritten
   concurrently may read torn, which is acceptable for a post-mortem aid. *)
let events t =
  let cap = Array.length t.f_ring in
  let next = t.f_next in
  let count = min next cap in
  List.init count (fun i ->
      let e = t.f_ring.((next - count + i) mod cap) in
      { v_t = e.fe_t; v_seq = e.fe_seq; v_variant = e.fe_variant;
        v_segment = e.fe_segment; v_version = e.fe_version;
        v_latency_us = e.fe_latency_us })

let render_json t =
  let open Iw_obs_json in
  Obj
    [
      ("capacity", num_int (Array.length t.f_ring));
      ("recorded", num_int t.f_next);
      ( "events",
        Arr
          (List.map
             (fun v ->
               Obj
                 [
                   ("t", Num v.v_t);
                   ("seq", num_int v.v_seq);
                   ("variant", Str v.v_variant);
                   ("segment", Str v.v_segment);
                   ("version", num_int v.v_version);
                   ("latency_us", Num v.v_latency_us);
                 ])
             (events t)) );
    ]

let dump_string t = Iw_obs_json.to_string (render_json t)

(* IW_FLIGHT_DUMP names the dump file, read at dump time so a long-lived
   server picks up the current environment; default is stderr. *)
let dump ?reason t =
  let body = dump_string t in
  let header =
    match reason with
    | None -> "iw-flight dump"
    | Some r -> Printf.sprintf "iw-flight dump (%s)" r
  in
  match Sys.getenv_opt "IW_FLIGHT_DUMP" with
  | Some path when path <> "" ->
    let oc = open_out path in
    output_string oc body;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "%s: written to %s\n%!" header path
  | _ -> Printf.eprintf "%s: %s\n%!" header body
