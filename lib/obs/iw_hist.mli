(** HDR-style histogram with bounded relative error.

    The fixed log2 buckets in {!Iw_metrics} are fine for dashboards but far
    too coarse for tail latency: between 32 ms and 67 s they have a handful
    of buckets, so a reported p999 can be off by 2x.  This histogram keeps
    [n_sub] linear sub-buckets inside every power of two (log-linear, the
    HdrHistogram layout), which bounds the relative error of any reported
    quantile by the [error] the histogram was created with, at any
    magnitude.

    Values are non-negative floats — microseconds by convention, but the
    structure is unit-agnostic.  Recording is two array reads, a [frexp],
    and an increment; no allocation, no locking.  Instances are {e not}
    thread-safe: give each worker thread its own and {!merge} them at the
    end, which is both faster and exact. *)

type t

val create : ?error:float -> unit -> t
(** A fresh histogram.  [error] (default [0.01]) bounds the relative error
    of every reported quantile: the sub-bucket count per power of two is the
    smallest power of two [>= 1. /. error].  Memory is proportional to
    [1 /. error] (about 41 KiB of counters at the default). *)

val error : t -> float
(** The relative-error bound actually in force (from the rounded-up
    sub-bucket count, so [<=] the requested [error]). *)

val record : t -> float -> unit
(** Record one value.  Negative and sub-unit values land in the first
    bucket; values beyond ~2^40 clamp into the top bucket (count and max
    stay exact either way). *)

val record_n : t -> float -> int -> unit
(** Record the same value [n] times (one bucket increment). *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** Exact mean of everything recorded ([nan] when empty). *)

val min_value : t -> float
(** Exact minimum recorded value ([nan] when empty). *)

val max_value : t -> float
(** Exact maximum recorded value ([nan] when empty). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: a value within the error bound of
    the true q-quantile of everything recorded.  [q = 1.] returns the exact
    maximum; empty histograms return [nan]. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every recorded value of [src] into [into].
    Exact (bucket counts add), associative, and commutative.  Both
    histograms must have been created with the same [error];
    [Invalid_argument] otherwise. *)

val copy : t -> t

val clear : t -> unit

type summary = {
  sm_count : int;
  sm_mean : float;
  sm_p50 : float;
  sm_p90 : float;
  sm_p99 : float;
  sm_p999 : float;
  sm_max : float;
}

val summary : t -> summary
(** The standard percentile ladder in one call (each field [nan] when
    empty). *)
