(** Bounded depth-first explorer for {!Iw_model} with sleep-set partial-order
    reduction.

    The explorer enumerates every reachable state of the bounded protocol
    model, running {!Iw_model.check} on each state at first visit and
    collecting the transition-level violations {!Iw_model.step} reports.
    Sleep sets prune commuting {e transitions} (per {!Iw_model.independent})
    without pruning {e states}, so state-level invariants still see the full
    reachable set; a visited entry stores the sleep sets it was explored
    with and is only skipped when a stored set is contained in the current
    one.

    A violation is reported as a replayable schedule, shrunk to
    1-minimality: no single action can be removed and still reproduce a
    violation with the same code.  Replays are deterministic, so a printed
    schedule is a complete bug report. *)

type counterexample = {
  cx_code : string;  (** e.g. ["MDL04"] *)
  cx_message : string;
  cx_schedule : Iw_model.action list;  (** minimized, replayable *)
  cx_shrunk_from : int;  (** length of the schedule before shrinking *)
}

type result = {
  r_states : int;  (** distinct states visited *)
  r_transitions : int;  (** transitions executed *)
  r_depth : int;  (** deepest path reached *)
  r_truncated : bool;  (** a state or depth bound cut the search short *)
  r_violation : counterexample option;
}

val explore :
  ?seed:int -> ?max_states:int -> ?max_depth:int -> Iw_model.config -> result
(** Bounded DFS from {!Iw_model.initial}.  [seed] shuffles the per-state
    action order deterministically (different seeds walk the space in a
    different order but cover the same states); without it the fixed
    {!Iw_model.enabled} order is used.  Defaults: [max_states = 200_000],
    [max_depth = 256].  The search stops at the first violation. *)

val replay :
  Iw_model.config ->
  Iw_model.action list ->
  (Iw_model.violation option, string) Stdlib.result
(** Run a schedule from the initial state, checking invariants after every
    step; stops at (and returns) the first violation.  [Error] when an
    action is not enabled at its position — the schedule does not replay. *)

val shrink : Iw_model.config -> string -> Iw_model.action list -> Iw_model.action list
(** [shrink cfg code schedule] greedily removes actions while a replay still
    produces a violation with code [code], to 1-minimality.  Returns the
    input unchanged if it does not reproduce. *)

val schedule_to_string : Iw_model.action list -> string
(** Space-joined {!Iw_model.action_to_string}. *)

val schedule_of_string : string -> (Iw_model.action list, string) Stdlib.result
