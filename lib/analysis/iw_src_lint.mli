(** Source-level lock-discipline lint over the OCaml tree.

    A token-level scan (comments and string literals stripped, positions
    kept) of [.ml] files for the mutex-handling hazards that make the
    one-big-lock server dangerous to shard — the static companion to the
    runtime sanitizer (SAN01–09) and the protocol model ({!Iw_model}).  It
    is a lint, not a type system: heuristic by design, tuned to this
    repository's idioms.

    Codes:
    - [LCK001] {e error} — [Mutex.lock] without a [Fun.protect ~finally]
      unlock on all paths: the lock region (up to the first matching
      [Mutex.unlock]) contains a construct that can raise — [raise],
      [failwith], [assert], a partial accessor such as [Option.get] /
      [List.hd] / [Hashtbl.find], channel opens, or a [try] — or the
      definition never unlocks at all.  An exception there leaves the mutex
      held forever.
    - [LCK002] {e warning} — blocking call while holding a lock: file or
      socket I/O, [fsync], sleeps, or a durability-layer append/truncate
      inside a lock region.  Under the global server lock this serializes
      every client behind the disk (ROADMAP item 1); flag it now so the
      sharded server never inherits it silently.  [Condition.wait] is
      exempt (it releases the mutex).
    - [LCK003] {e error} — nested acquisition violating the canonical lock
      order: taking mutex [B] while holding [A] when the normalized
      expression texts order [B < A] (or re-acquiring the same mutex).
      Keeping every nesting in one lexicographic order makes deadlock
      impossible by construction.
    - [LCK004] {e warning} — shared-table mutation outside any lock region
      in a definition that also uses the table under a lock elsewhere:
      a [Hashtbl]/[Queue] mutation reachable without the mutex the rest of
      the definition relies on.

    Conventions the lint understands:
    - A definition whose name ends in [_locked] is treated as executing
      entirely under its caller's lock: its body is scanned for LCK002/003
      and its mutations count as locked, and it is exempt from LCK001.
    - An [(* lck-ok: LCK002 reason *)] comment on the same or the preceding
      line suppresses that code there; the reason is mandatory by
      convention and reviewed like any other code. *)

type severity = Iw_lint.severity

type diagnostic = {
  l_code : string;  (** stable, e.g. ["LCK002"] *)
  l_severity : severity;
  l_file : string;
  l_line : int;
  l_col : int;
  l_def : string;  (** enclosing toplevel definition *)
  l_message : string;
}

val lint_string : file:string -> string -> diagnostic list
(** Lint one compilation unit's source text.  Diagnostics in source order. *)

val lint_files : string list -> (diagnostic list, string) result
(** Lint every [.ml] file under the given files/directories (recursive,
    [_build] and dot-directories skipped), in path order.  [Error] when a
    path does not exist or reading fails. *)

val worst : diagnostic list -> severity option

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [file:line:col: code severity (def): message]. *)
