(** Static lint over IDL declarations.

    Cross-checks every declaration against all built-in architecture
    descriptors, so a type that happens to look fine on the machine its
    author tested is still diagnosed when its layout misbehaves on another
    (paper, Sections 2–3).  Each diagnostic carries a stable code, a
    severity, and the source position recorded by the parser.

    Codes:
    - [IDL001] {e warning} — pointer cycle that breaks XDR deep copy: a
      cycle through typed pointers across two or more structs, or a struct
      with two or more pointers back into its own cycle (the doubly-linked
      idiom).  Instances of such types are cyclic by construction and
      {!Iw_xdr.marshal} cannot deep-copy them.  A single self-referential
      pointer (the ordinary list idiom) is not flagged.
    - [IDL002] {e error} — unresolvable pointer target: a [Ptr] naming a
      struct not present in the declaration list (possible when linting
      hand-built descriptors; the parser rejects this in source).
    - [IDL003] {e note} — unused struct: in a multi-struct file, a
      declaration other than the final one that no other declaration embeds
      or points to.
    - [IDL004] {e warning} — [void*] field: an untyped pointer travels as a
      presence flag only and defeats swizzling; readers on other machines
      cannot follow it.
    - [IDL005] {e warning} — inline-string capacity confusion: [char[N]]
      with [N < 4] holds at most [N-1] usable bytes; a byte array was
      probably intended ([byte[N]]).
    - [IDL006] {e note} — padding waste: on some architecture at least 25%
      (and at least 8 bytes) of the struct's local layout is alignment
      padding; reordering fields would shrink every cached copy and diff.
    - [IDL007] {e warning} — [long] field: 4 bytes on the 32-bit
      architectures but 8 on [alpha64]; values wider than 32 bits silently
      truncate on 32-bit clients.
    - [IDL008] {e note} — alignment-driven layout divergence: a field whose
      byte offset (or the struct whose size) differs between [x86_32] and
      [sparc32] — same primitive sizes, different [double] alignment — so
      word-granular modification runs cover different unit ranges per
      machine and wire diffs silently bloat.
    - [IDL009] {e warning} — block layout larger than {!Iw_mem.page_size}
      on some architecture: every such block spans pages, degrading
      twin/diff granularity. *)

type severity =
  | Error
  | Warning
  | Note

type diagnostic = {
  code : string;  (** stable, e.g. ["IDL004"] *)
  severity : severity;
  decl : string;  (** struct name *)
  field : string option;
  line : int;
  col : int;
  message : string;
}

val lint : ?arches:Iw_arch.t list -> Iw_idl.decl list -> diagnostic list
(** Run every check over the declarations.  [arches] defaults to
    {!Iw_arch.all}.  Diagnostics come back in source order. *)

val severity_name : severity -> string
(** ["error"], ["warning"], or ["note"]. *)

val worst : diagnostic list -> severity option
(** Most severe level present, [None] for an empty report. *)

val pp_diagnostic : ?file:string -> Format.formatter -> diagnostic -> unit
(** [file:line:col: severity code: struct 's' field 'f': message]. *)

val to_json : diagnostic list -> string
(** A JSON array of diagnostic objects with keys [code], [severity],
    [struct], [field], [line], [col], [message]. *)
