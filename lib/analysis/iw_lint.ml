(* Static lint over IDL declarations.  See the interface for the catalogue
   of codes.  Layout-sensitive checks run the real layout engine over every
   architecture descriptor rather than re-deriving sizes, so they stay
   correct if conventions change. *)

type severity =
  | Error
  | Warning
  | Note

type diagnostic = {
  code : string;
  severity : severity;
  decl : string;
  field : string option;
  line : int;
  col : int;
  message : string;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let severity_rank = function Error -> 2 | Warning -> 1 | Note -> 0

let worst = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
           Note ds)

(* {2 Descriptor walks} *)

let rec iter_desc f (d : Iw_types.desc) =
  f d;
  match d with
  | Iw_types.Prim _ | Iw_types.Ptr _ -> ()
  | Iw_types.Array (e, _) -> iter_desc f e
  | Iw_types.Struct fs -> Array.iter (fun fl -> iter_desc f fl.Iw_types.ftype) fs

let ptr_targets d =
  let acc = ref [] in
  iter_desc (function Iw_types.Ptr n -> acc := n :: !acc | _ -> ()) d;
  List.rev !acc

let contains_ptr_to name d = List.mem name (ptr_targets d)

(* The primitive a field stores, looking through arrays: [int x[10]] is an
   int field for lint purposes. *)
let rec field_base = function
  | Iw_types.Array (e, _) -> field_base e
  | d -> d

let top_fields (d : Iw_idl.decl) =
  match d.Iw_idl.d_desc with
  | Iw_types.Struct fs -> Array.to_list fs
  | _ -> []

let diag ~code ~severity ~(d : Iw_idl.decl) ?field message =
  let loc =
    match field with
    | None -> d.Iw_idl.d_loc
    | Some f -> Iw_idl.field_loc d f
  in
  {
    code;
    severity;
    decl = d.Iw_idl.d_name;
    field;
    line = loc.Iw_idl.l_line;
    col = loc.Iw_idl.l_col;
    message;
  }

(* {2 IDL001: pointer cycles}

   Strongly connected components of the points-to graph via Tarjan.  A
   multi-struct SCC is always diagnosed; a self-loop is diagnosed only when
   the struct carries two or more pointers back to itself (the doubly-linked
   idiom), because a single self-pointer is the ordinary acyclic list and
   the reason [Ptr] names its target at all (paper, Section 2.1). *)

let sccs (nodes : string list) (succ : string -> string list) =
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  !out

let check_cycles (decls : Iw_idl.decl list) =
  let names = List.map (fun d -> d.Iw_idl.d_name) decls in
  let known n = List.mem n names in
  let by_name n = List.find (fun d -> d.Iw_idl.d_name = n) decls in
  let succ n = List.filter known (ptr_targets (by_name n).Iw_idl.d_desc) in
  let components = sccs names succ in
  List.concat_map
    (fun comp ->
      let cyclic =
        match comp with
        | [ n ] ->
            (* self-loop: flag only >= 2 pointers back to self *)
            List.length (List.filter (( = ) n) (succ n)) >= 2
        | _ :: _ :: _ -> true
        | [] -> false
      in
      if not cyclic then []
      else
        let ring = String.concat " -> " (comp @ [ List.hd comp ]) in
        List.filter_map
          (fun n ->
            let d = by_name n in
            let fld =
              List.find_opt
                (fun fl ->
                  List.exists (fun t -> List.mem t comp) (ptr_targets fl.Iw_types.ftype))
                (top_fields d)
            in
            match fld with
            | None -> None
            | Some fl ->
                Some
                  (diag ~code:"IDL001" ~severity:Warning ~d ~field:fl.Iw_types.fname
                     (Printf.sprintf
                        "pointer cycle %s: instances form cyclic graphs that XDR deep copy \
                         (Iw_xdr.marshal) rejects"
                        ring)))
          comp)
    components

(* {2 IDL002 / IDL003: reference checks} *)

let check_unresolved (decls : Iw_idl.decl list) =
  let names = List.map (fun d -> d.Iw_idl.d_name) decls in
  List.concat_map
    (fun d ->
      List.filter_map
        (fun fl ->
          match
            List.find_opt (fun t -> not (List.mem t names)) (ptr_targets fl.Iw_types.ftype)
          with
          | None -> None
          | Some t ->
              Some
                (diag ~code:"IDL002" ~severity:Error ~d ~field:fl.Iw_types.fname
                   (Printf.sprintf
                      "pointer to undeclared struct '%s': the descriptor cannot be registered"
                      t)))
        (top_fields d))
    decls

let check_unused (decls : Iw_idl.decl list) =
  match decls with
  | [] | [ _ ] -> []
  | _ ->
      let last = List.nth decls (List.length decls - 1) in
      let referenced (d : Iw_idl.decl) =
        List.exists
          (fun (e : Iw_idl.decl) ->
            e.Iw_idl.d_name <> d.Iw_idl.d_name
            && (contains_ptr_to d.Iw_idl.d_name e.Iw_idl.d_desc
               ||
               (* by-value embedding inlines the descriptor, so detect it
                  structurally *)
               let hit = ref false in
               iter_desc
                 (fun sub ->
                   if sub != e.Iw_idl.d_desc && Iw_types.equal sub d.Iw_idl.d_desc then
                     hit := true)
                 e.Iw_idl.d_desc;
               !hit))
          decls
      in
      List.filter_map
        (fun d ->
          if d.Iw_idl.d_name = last.Iw_idl.d_name || referenced d then None
          else
            Some
              (diag ~code:"IDL003" ~severity:Note ~d
                 (Printf.sprintf
                    "struct '%s' is never embedded or pointed to by another declaration"
                    d.Iw_idl.d_name)))
        decls

(* {2 IDL004 / IDL005 / IDL007: per-field primitive checks} *)

let check_fields (decls : Iw_idl.decl list) =
  List.concat_map
    (fun d ->
      List.filter_map
        (fun fl ->
          let f = fl.Iw_types.fname in
          match field_base fl.Iw_types.ftype with
          | Iw_types.Prim Iw_arch.Pointer ->
              Some
                (diag ~code:"IDL004" ~severity:Warning ~d ~field:f
                   "untyped pointer (void *) cannot be swizzled; remote readers see only \
                    a presence flag")
          | Iw_types.Prim (Iw_arch.String n) when n < 4 ->
              Some
                (diag ~code:"IDL005" ~severity:Warning ~d ~field:f
                   (Printf.sprintf
                      "inline string char[%d] holds at most %d usable byte%s before the \
                       NUL terminator; did you mean a byte array?"
                      n (n - 1)
                      (if n - 1 = 1 then "" else "s")))
          | Iw_types.Prim Iw_arch.Long ->
              Some
                (diag ~code:"IDL007" ~severity:Warning ~d ~field:f
                   "'long' is 4 bytes on 32-bit architectures and 8 on alpha64; values \
                    wider than 32 bits silently truncate on 32-bit clients (use int for \
                    portable 4-byte data)")
          | _ -> None)
        (top_fields d))
    decls

(* {2 IDL006 / IDL008 / IDL009: layout checks} *)

let field_offsets conv (d : Iw_idl.decl) =
  let off = ref 0 in
  List.map
    (fun fl ->
      let lay = Iw_types.layout conv fl.Iw_types.ftype in
      off := Iw_arch.align_up !off (Iw_types.align lay);
      let here = !off in
      off := !off + Iw_types.size lay;
      (fl.Iw_types.fname, here))
    (top_fields d)

let check_layouts ~arches (decls : Iw_idl.decl list) =
  List.concat_map
    (fun d ->
      let layouts =
        List.map
          (fun a -> (a, Iw_types.layout (Iw_types.local a) d.Iw_idl.d_desc))
          arches
      in
      (* IDL009: block larger than a page on some architecture *)
      let oversized =
        let worst =
          List.fold_left
            (fun acc (a, lay) ->
              let sz = Iw_types.size lay in
              match acc with Some (_, w) when w >= sz -> acc | _ -> Some (a, sz))
            None layouts
        in
        match worst with
        | Some (a, sz) when sz > Iw_mem.page_size ->
            [
              diag ~code:"IDL009" ~severity:Warning ~d
                (Printf.sprintf
                   "layout is %d bytes on %s, larger than the %d-byte page: every block \
                    spans pages and degrades twin/diff granularity"
                   sz a.Iw_arch.name Iw_mem.page_size);
            ]
        | _ -> []
      in
      (* IDL006: alignment padding waste *)
      let padding =
        let worst =
          List.fold_left
            (fun acc (a, lay) ->
              let sz = Iw_types.size lay in
              let payload =
                Iw_types.fold_prims lay ~from:0
                  ~upto:(Iw_types.layout_prim_count lay) ~init:0
                  ~f:(fun acc l -> acc + Iw_arch.prim_size a l.Iw_types.l_prim)
              in
              let waste = sz - payload in
              match acc with
              | Some (_, _, _, w) when w >= waste -> acc
              | _ -> Some (a, sz, payload, waste))
            None layouts
        in
        match worst with
        | Some (a, sz, _, waste) when waste >= 8 && waste * 4 >= sz ->
            [
              diag ~code:"IDL006" ~severity:Note ~d
                (Printf.sprintf
                   "%d of %d bytes on %s are alignment padding; reordering fields \
                    (widest first) would shrink every cached copy"
                   waste sz a.Iw_arch.name);
            ]
        | _ -> []
      in
      (* IDL008: x86_32 and sparc32 share every primitive size and differ
         only in double alignment, so any offset divergence between them is
         purely alignment-driven. *)
      let divergence =
        let a1 = Iw_arch.x86_32 and a2 = Iw_arch.sparc32 in
        if List.exists (fun a -> a.Iw_arch.name = a1.Iw_arch.name) arches
           && List.exists (fun a -> a.Iw_arch.name = a2.Iw_arch.name) arches
        then begin
          let off1 = field_offsets (Iw_types.local a1) d
          and off2 = field_offsets (Iw_types.local a2) d in
          match
            List.find_opt
              (fun ((_, o1), (_, o2)) -> o1 <> o2)
              (List.combine off1 off2)
          with
          | Some ((f, o1), (_, o2)) ->
              [
                diag ~code:"IDL008" ~severity:Note ~d ~field:f
                  (Printf.sprintf
                     "field offset differs between x86_32 (%d) and sparc32 (%d) from \
                      double alignment alone; word-granular diff runs will not line up \
                      across machines"
                     o1 o2);
              ]
          | None ->
              let s1 = Iw_types.size (Iw_types.layout (Iw_types.local a1) d.Iw_idl.d_desc)
              and s2 = Iw_types.size (Iw_types.layout (Iw_types.local a2) d.Iw_idl.d_desc) in
              if s1 <> s2 then
                [
                  diag ~code:"IDL008" ~severity:Note ~d
                    (Printf.sprintf
                       "struct size differs between x86_32 (%d) and sparc32 (%d) from \
                        double alignment alone (trailing padding)"
                       s1 s2);
                ]
              else []
        end
        else []
      in
      oversized @ padding @ divergence)
    decls

(* {2 Driver} *)

let lint ?(arches = Iw_arch.all) (decls : Iw_idl.decl list) =
  let ds =
    check_unresolved decls @ check_cycles decls @ check_unused decls
    @ check_fields decls @ check_layouts ~arches decls
  in
  List.stable_sort
    (fun a b ->
      match compare (a.line, a.col) (b.line, b.col) with
      | 0 -> compare a.code b.code
      | c -> c)
    ds

(* {2 Rendering} *)

let pp_diagnostic ?file ppf d =
  let where =
    match file with
    | None -> Printf.sprintf "%d:%d" d.line d.col
    | Some f -> Printf.sprintf "%s:%d:%d" f d.line d.col
  in
  let subject =
    match d.field with
    | None -> Printf.sprintf "struct '%s'" d.decl
    | Some f -> Printf.sprintf "struct '%s' field '%s'" d.decl f
  in
  Format.fprintf ppf "%s: %s %s: %s: %s" where (severity_name d.severity) d.code subject
    d.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ds =
  let one d =
    Printf.sprintf
      "{\"code\":\"%s\",\"severity\":\"%s\",\"struct\":\"%s\",\"field\":%s,\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      d.code (severity_name d.severity) (json_escape d.decl)
      (match d.field with
      | None -> "null"
      | Some f -> Printf.sprintf "\"%s\"" (json_escape f))
      d.line d.col (json_escape d.message)
  in
  "[" ^ String.concat "," (List.map one ds) ^ "]"
