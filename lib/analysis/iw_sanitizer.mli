(** Dynamic lockset and lifetime sanitizer for client shared-memory access.

    InterWeave's API contract (paper, Section 2.2) requires every access to
    shared data to happen inside a reader–writer lock critical section: reads
    under at least a read lock, writes and allocation under the write lock.
    Outside a critical section the local copy may be concurrently overwritten
    by an incoming diff, and writes would escape modification tracking.  The
    emulation cannot segfault on such misuse — {!Iw_mem} happily reads freed
    blocks whose pages are still mapped — so this checker makes the contract
    observable: it attaches to a client's observation hooks
    ({!Iw_client.set_monitor}, {!Iw_mem.set_access_hook}) and reports every
    violation with a stable code.

    Codes:
    - [SAN01] — load of shared data outside any critical section.
    - [SAN02] — store outside a write critical section (includes stores
      under a read lock).
    - [SAN03] — allocation without the segment's write lock.
    - [SAN04] — free without the segment's write lock.
    - [SAN05] — access to a freed block (use-after-free).
    - [SAN06] — access to a block created in an aborted critical section.
    - [SAN07] — lock imbalance: a release or abort that does not match the
      lock actually held.
    - [SAN08] — lock-order inversion: two segments locked in opposite orders
      at different times (deadlock potential on a real multi-client run).
      The message names both segments and both witnesses: the numbered
      acquisition that performed the inversion and the earlier numbered
      acquisition that established the opposite order.
    - [SAN09] — dereference of an unswizzled pointer: a pointer value loaded
      from shared memory that designates no live block and never came from
      {!Iw_client.mip_to_ptr}.

    The sanitizer is entirely opt-in: with no checker attached the client's
    hot paths pay one branch per operation. *)

type policy =
  | Collect  (** record reports; execution continues *)
  | Raise  (** raise {!Violation} at the first report *)

type report = {
  r_code : string;  (** stable, e.g. ["SAN02"] *)
  r_segment : string option;
  r_addr : Iw_mem.addr option;
  r_message : string;
}

exception Violation of report

type t

val attach : ?policy:policy -> ?strict_reads:bool -> Iw_client.t -> t
(** Install the sanitizer on a client.  [policy] defaults to [Collect].
    [strict_reads] (default [true]) controls [SAN01]: when [false], loads
    outside critical sections are tolerated — useful over test harnesses
    that verify results after releasing their locks.  Only one sanitizer
    can be attached to a client at a time; attaching replaces any previous
    observer. *)

val detach : t -> unit
(** Remove the sanitizer's hooks from the client. *)

val reports : t -> report list
(** Everything recorded since {!attach} or {!clear}, in program order. *)

val clear : t -> unit

val pp_report : Format.formatter -> report -> unit
