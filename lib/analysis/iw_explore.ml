module M = Iw_model

type counterexample = {
  cx_code : string;
  cx_message : string;
  cx_schedule : M.action list;
  cx_shrunk_from : int;
}

type result = {
  r_states : int;
  r_transitions : int;
  r_depth : int;
  r_truncated : bool;
  r_violation : counterexample option;
}

let schedule_to_string sched = String.concat " " (List.map M.action_to_string sched)

let schedule_of_string s =
  let parts =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match M.action_of_string p with
      | Ok a -> go (a :: acc) rest
      | Error e -> Error e)
  in
  go [] parts

(* {2 Replay} *)

let replay cfg schedule =
  let rec go s i = function
    | [] -> Ok None
    | a :: rest -> (
      match M.step cfg s a with
      | None ->
        Error
          (Printf.sprintf "schedule does not replay: step %d (%s) is not enabled" i
             (M.action_to_string a))
      | Some (s', transition_violations) -> (
        match transition_violations @ M.check cfg s' with
        | viol :: _ -> Ok (Some viol)
        | [] -> go s' (i + 1) rest))
  in
  let s0 = M.initial cfg in
  match M.check cfg s0 with
  | viol :: _ -> Ok (Some viol)
  | [] -> go s0 0 schedule

(* {2 Shrinking} *)

let reproduces cfg code sched =
  match replay cfg sched with
  | Ok (Some viol) -> viol.M.v_code = code
  | Ok None | Error _ -> false

let shrink cfg code sched =
  if not (reproduces cfg code sched) then sched
  else
    (* Greedy delta: drop one action at a time until 1-minimal.  Schedules
       are depth-bounded, so the quadratic pass is cheap. *)
    let rec pass sched =
      let n = List.length sched in
      let rec try_remove i =
        if i >= n then None
        else
          let cand = List.filteri (fun j _ -> j <> i) sched in
          if reproduces cfg code cand then Some cand else try_remove (i + 1)
      in
      match try_remove 0 with
      | Some cand -> pass cand
      | None -> sched
    in
    pass sched

(* {2 Exploration} *)

exception Limit
exception Found of string * string * M.action list

(* Deterministic per-seed shuffle (splitmix-style), so a seed names one
   exploration order reproducibly. *)
let rng_next st =
  st := Int64.add (Int64.mul !st 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical !st 33) land max_int

let shuffle rng lst =
  let a = Array.of_list lst in
  for i = Array.length a - 1 downto 1 do
    let j = rng_next rng mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* One DFS pass.  Counts into the caller's refs (so a pass cut short by
   [Found] still reports how much it searched) and raises [Found] on the
   first violation. *)
let search ?seed ~max_states ~max_depth ~states ~transitions ~deepest ~truncated cfg =
  (* Visited table: state -> (depth, sleep set) pairs it was explored with.
     A re-visit is skipped only when some stored entry was at least as deep
     in remaining budget (stored depth <= current) AND its sleep set is a
     subset of the current one — the stored exploration already covered at
     least as many transitions to at least the same depth. *)
  let visited : (M.state, (int * M.action list) list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let rng = Option.map (fun s -> ref (Int64.of_int s)) seed in
  let order acts = match rng with None -> acts | Some r -> shuffle r acts in
  let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
  let rec go s sleep path depth =
    let stored = Option.value (Hashtbl.find_opt visited s) ~default:[] in
    if List.exists (fun (d, sl) -> d <= depth && subset sl sleep) stored then ()
    else begin
      if stored = [] then begin
        incr states;
        if !states > max_states then begin
          truncated := true;
          raise Limit
        end;
        match M.check cfg s with
        | viol :: _ -> raise (Found (viol.M.v_code, viol.M.v_message, List.rev path))
        | [] -> ()
      end;
      Hashtbl.replace visited s ((depth, sleep) :: stored);
      if depth > !deepest then deepest := depth;
      if depth >= max_depth then truncated := true
      else begin
        let acts =
          order (List.filter (fun a -> not (List.mem a sleep)) (M.enabled cfg s))
        in
        let taken = ref [] in
        List.iter
          (fun a ->
            (match M.step cfg s a with
            | None -> ()
            | Some (s', violations) ->
              incr transitions;
              (match violations with
              | viol :: _ ->
                raise (Found (viol.M.v_code, viol.M.v_message, List.rev (a :: path)))
              | [] -> ());
              let sleep' = List.filter (M.independent a) (sleep @ !taken) in
              go s' sleep' (a :: path) (depth + 1));
            taken := a :: !taken)
          acts
      end
    end
  in
  go (M.initial cfg) [] [] 0

let explore ?seed ?(max_states = 200_000) ?(max_depth = 256) cfg =
  let states = ref 0 and transitions = ref 0 and deepest = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  (try search ?seed ~max_states ~max_depth ~states ~transitions ~deepest ~truncated cfg
   with
  | Limit -> ()
  | Found (code, message, schedule) ->
    (* Minimize: greedy single-action removal, then iterative deepening —
       re-search with the depth bound just below the current witness length
       and keep any shorter same-code witness.  Ends at a schedule that is
       both 1-minimal and shortest the bounded search can reach. *)
    let scratch () = (ref 0, ref 0, ref 0, ref false) in
    let rec refine sched =
      let sched = shrink cfg code sched in
      let len = List.length sched in
      if len <= 1 then sched
      else
        let states, transitions, deepest, truncated = scratch () in
        match
          search ?seed ~max_states ~max_depth:(len - 1) ~states ~transitions ~deepest
            ~truncated cfg
        with
        | () -> sched
        | exception Limit -> sched
        | exception Found (code', _, sched') when code' = code -> refine sched'
        | exception Found _ -> sched
    in
    let shrunk = refine schedule in
    let message =
      (* Prefer the message of the minimized replay — it names the final,
         simplest witness rather than the first one the DFS stumbled on. *)
      match replay cfg shrunk with
      | Ok (Some viol) when viol.M.v_code = code -> viol.M.v_message
      | _ -> message
    in
    violation :=
      Some
        {
          cx_code = code;
          cx_message = message;
          cx_schedule = shrunk;
          cx_shrunk_from = List.length schedule;
        });
  {
    r_states = !states;
    r_transitions = !transitions;
    r_depth = !deepest;
    r_truncated = !truncated;
    r_violation = !violation;
  }
