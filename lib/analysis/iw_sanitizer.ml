(* Dynamic lockset/lifetime checker.  All state is driven by the client's
   observation hooks; the client itself is never consulted ahead of time, so
   attaching the sanitizer cannot change program behaviour (under [Collect]).

   Hooks fire at operation entry, before the client validates or mutates
   anything, so lock states observed here are the pre-operation states. *)

type policy =
  | Collect
  | Raise

type report = {
  r_code : string;
  r_segment : string option;
  r_addr : Iw_mem.addr option;
  r_message : string;
}

exception Violation of report

(* A byte range remembered for lifetime checks, tagged with its segment. *)
type range = {
  rg_lo : int;
  rg_len : int;
  rg_seg : string;
}

type t = {
  sz_client : Iw_client.t;
  sz_policy : policy;
  sz_strict_reads : bool;
  mutable sz_reports : report list;  (* newest first *)
  mutable sz_freed : range list;  (* frees committed by a write-lock release *)
  mutable sz_pending_free : range list;  (* freed in the current critical section *)
  mutable sz_aborted : range list;  (* blocks created in aborted critical sections *)
  mutable sz_cs_allocs : range list;  (* allocated in the current critical section *)
  sz_tainted : (int, unit) Hashtbl.t;  (* suspect pointer values *)
  sz_blessed : (int, unit) Hashtbl.t;  (* addresses produced by mip_to_ptr *)
  mutable sz_held : string list;  (* segment lock order, innermost first *)
  mutable sz_acqs : int;  (* acquisitions seen, for naming witness sites *)
  sz_order : (string * string, string) Hashtbl.t;
      (* observed locked-before edges, each carrying a description of the
         acquisition that first established it — the witness SAN08 cites *)
  mutable sz_active : bool;
}

let record t ?segment ?addr code fmt =
  Printf.ksprintf
    (fun msg ->
      let r = { r_code = code; r_segment = segment; r_addr = addr; r_message = msg } in
      t.sz_reports <- r :: t.sz_reports;
      match t.sz_policy with Collect -> () | Raise -> raise (Violation r))
    fmt

let in_range a r = a >= r.rg_lo && a < r.rg_lo + r.rg_len

let overlaps lo len r = lo < r.rg_lo + r.rg_len && r.rg_lo < lo + len

let state_name = function
  | `Unlocked -> "unlocked"
  | `Read n -> Printf.sprintf "read-locked (depth %d)" n
  | `Write n -> Printf.sprintf "write-locked (depth %d)" n

(* {2 Memory accesses} *)

let lock_check t ~store a =
  match Iw_client.segment_of_addr t.sz_client a with
  | None -> ()
  | Some g -> (
      let segment = Iw_client.segment_name g in
      match Iw_client.lock_state g with
      | `Write _ -> ()
      | `Read _ ->
          if store then
            record t ~segment ~addr:a "SAN02"
              "store to segment '%s' under a read lock; writes need the write lock" segment
      | `Unlocked ->
          if store then
            record t ~segment ~addr:a "SAN02"
              "store to segment '%s' outside any critical section" segment
          else if t.sz_strict_reads then
            record t ~segment ~addr:a "SAN01"
              "load from segment '%s' outside any critical section" segment)

let on_access t ~store a ~len:_ =
  if t.sz_active then begin
    let live = Iw_client.block_of_addr t.sz_client a <> None in
    if Hashtbl.mem t.sz_tainted a then begin
      (* a suspect pointer value designating live data is retroactively fine *)
      Hashtbl.remove t.sz_tainted a;
      if not live then
        record t ~addr:a "SAN09"
          "dereference of unswizzled pointer value %d: not a live block and never \
           produced by mip_to_ptr"
          a
    end;
    (* Lifetime checks run before the liveness shortcut: a block freed in the
       current critical section is still live at the memory layer (the real
       free happens at commit so aborts can resurrect it).  Stale ranges are
       purged whenever an allocation reuses their addresses, so any hit is a
       genuine stale access. *)
    match List.find_opt (in_range a) (t.sz_pending_free @ t.sz_freed) with
    | Some r ->
        record t ~segment:r.rg_seg ~addr:a "SAN05"
          "use-after-free: address %d is inside a freed block of segment '%s'" a r.rg_seg
    | None -> (
        match List.find_opt (in_range a) t.sz_aborted with
        | Some r ->
            record t ~segment:r.rg_seg ~addr:a "SAN06"
              "access to a block created in an aborted critical section of segment '%s'"
              r.rg_seg
        | None -> lock_check t ~store a)
  end

(* {2 Lock operations} *)

let drop_seg t name = t.sz_held <- List.filter (( <> ) name) t.sz_held

let on_lock t g op =
  if t.sz_active then begin
    let segment = Iw_client.segment_name g in
    let st = Iw_client.lock_state g in
    match (op : Iw_client.lock_op) with
    | Op_rl_acquire | Op_wl_acquire -> (
        match st with
        | `Unlocked ->
            t.sz_acqs <- t.sz_acqs + 1;
            let opname =
              match op with Op_rl_acquire -> "read_lock" | _ -> "write_lock"
            in
            List.iter
              (fun held ->
                let site =
                  Printf.sprintf "acquisition #%d (%s '%s' while holding '%s')"
                    t.sz_acqs opname segment held
                in
                (match Hashtbl.find_opt t.sz_order (segment, held) with
                | Some earlier ->
                    record t ~segment "SAN08"
                      "lock-order inversion between '%s' and '%s': %s contradicts the \
                       earlier %s"
                      segment held site earlier
                | None -> ());
                (* keep the FIRST acquisition that established the edge — the
                   witness a later inversion will cite *)
                if not (Hashtbl.mem t.sz_order (held, segment)) then
                  Hashtbl.replace t.sz_order (held, segment) site)
              t.sz_held;
            t.sz_held <- segment :: t.sz_held
        | `Read _ | `Write _ -> ())
    | Op_rl_release -> (
        match st with
        | `Read 1 -> drop_seg t segment
        | `Read _ -> ()
        | (`Unlocked | `Write _) as st ->
            record t ~segment "SAN07"
              "read-lock release on segment '%s' which is %s" segment (state_name st))
    | Op_wl_release -> (
        match st with
        | `Write 1 ->
            (* outermost release: the critical section commits *)
            let mine r = r.rg_seg = segment in
            t.sz_freed <- List.filter mine t.sz_pending_free @ t.sz_freed;
            t.sz_pending_free <- List.filter (fun r -> not (mine r)) t.sz_pending_free;
            t.sz_cs_allocs <- List.filter (fun r -> not (mine r)) t.sz_cs_allocs;
            drop_seg t segment
        | `Write _ -> ()
        | (`Unlocked | `Read _) as st ->
            record t ~segment "SAN07"
              "write-lock release on segment '%s' which is %s" segment (state_name st))
    | Op_wl_abort -> (
        match st with
        | `Write _ ->
            (* blocks created in the aborted section vanish; frees roll back *)
            let mine r = r.rg_seg = segment in
            t.sz_aborted <- List.filter mine t.sz_cs_allocs @ t.sz_aborted;
            t.sz_cs_allocs <- List.filter (fun r -> not (mine r)) t.sz_cs_allocs;
            t.sz_pending_free <- List.filter (fun r -> not (mine r)) t.sz_pending_free;
            drop_seg t segment
        | (`Unlocked | `Read _) as st ->
            record t ~segment "SAN07" "abort on segment '%s' which is %s" segment
              (state_name st))
  end

(* {2 Allocation lifecycle} *)

let on_malloc t g =
  if t.sz_active then
    let segment = Iw_client.segment_name g in
    match Iw_client.lock_state g with
    | `Write _ -> ()
    | st ->
        record t ~segment "SAN03"
          "allocation in segment '%s' which is %s; malloc needs the write lock" segment
          (state_name st)

let on_alloc t g a ~len =
  if t.sz_active then begin
    let segment = Iw_client.segment_name g in
    (* the address range is being reused: stale lifetime records die *)
    let fresh rs = List.filter (fun r -> not (overlaps a len r)) rs in
    t.sz_freed <- fresh t.sz_freed;
    t.sz_pending_free <- fresh t.sz_pending_free;
    t.sz_aborted <- fresh t.sz_aborted;
    t.sz_cs_allocs <- { rg_lo = a; rg_len = len; rg_seg = segment } :: t.sz_cs_allocs
  end

let on_free t a =
  if t.sz_active then
    match Iw_client.block_of_addr t.sz_client a with
    | Some (b, _) -> (
        let g = Iw_client.segment_of_addr t.sz_client a in
        let segment = Option.map Iw_client.segment_name g in
        let write_locked =
          match g with
          | Some g -> ( match Iw_client.lock_state g with `Write _ -> true | _ -> false)
          | None -> false
        in
        if not write_locked then
          record t ?segment ~addr:a "SAN04"
            "free in a segment which is %s; free needs the write lock"
            (match g with
            | Some g -> state_name (Iw_client.lock_state g)
            | None -> "not a segment")
        else
          (* only a free the client will actually perform creates a freed
             range *)
          t.sz_pending_free <-
            {
              rg_lo = b.Iw_mem.b_addr;
              rg_len = b.Iw_mem.b_size;
              rg_seg = (match segment with Some s -> s | None -> "?");
            }
            :: t.sz_pending_free)
    | None -> (
        match List.find_opt (in_range a) (t.sz_pending_free @ t.sz_freed) with
        | Some r ->
            record t ~segment:r.rg_seg ~addr:a "SAN05"
              "double free: address %d is inside an already-freed block" a
        | None -> () (* the client reports garbage frees itself *))

(* {2 Pointer provenance} *)

let on_read_ptr t _loc v =
  if t.sz_active && v <> 0 then
    if Iw_client.block_of_addr t.sz_client v = None && not (Hashtbl.mem t.sz_blessed v)
    then Hashtbl.replace t.sz_tainted v ()

let on_swizzled t a =
  if t.sz_active then begin
    Hashtbl.replace t.sz_blessed a ();
    Hashtbl.remove t.sz_tainted a
  end

(* {2 Lifecycle} *)

let attach ?(policy = Collect) ?(strict_reads = true) client =
  let t =
    {
      sz_client = client;
      sz_policy = policy;
      sz_strict_reads = strict_reads;
      sz_reports = [];
      sz_freed = [];
      sz_pending_free = [];
      sz_aborted = [];
      sz_cs_allocs = [];
      sz_tainted = Hashtbl.create 16;
      sz_blessed = Hashtbl.create 16;
      sz_held = [];
      sz_acqs = 0;
      sz_order = Hashtbl.create 16;
      sz_active = true;
    }
  in
  let monitor =
    {
      Iw_client.mon_lock = on_lock t;
      mon_malloc = on_malloc t;
      mon_alloc = on_alloc t;
      mon_free = on_free t;
      mon_read_ptr = on_read_ptr t;
      mon_swizzled = on_swizzled t;
    }
  in
  Iw_client.set_monitor client (Some monitor);
  Iw_mem.set_access_hook (Iw_client.space client)
    (Some (fun ~store a ~len -> on_access t ~store a ~len));
  t

let detach t =
  t.sz_active <- false;
  Iw_client.set_monitor t.sz_client None;
  Iw_mem.set_access_hook (Iw_client.space t.sz_client) None

let reports t = List.rev t.sz_reports

let clear t = t.sz_reports <- []

let pp_report ppf r =
  Format.fprintf ppf "%s:%s%s %s" r.r_code
    (match r.r_segment with None -> "" | Some s -> Printf.sprintf " [%s]" s)
    (match r.r_addr with None -> "" | Some a -> Printf.sprintf " @%d" a)
    r.r_message
