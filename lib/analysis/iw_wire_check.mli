(** Well-formedness validator for wire-format diffs.

    A diff arriving over the protocol is untrusted input: a buggy or hostile
    client can send runs past the end of a block, overlapping runs, payloads
    whose length disagrees with the primitive units they claim to cover, or
    pointers that are not syntactically valid MIPs.  This module checks a
    decoded {!Iw_wire.Diff.t} against what the receiver knows about the
    segment — which blocks exist and what types they have — and reports every
    problem found.  The server runs it on incoming [Write_release] diffs when
    validation is enabled ({!Iw_server.set_validate_diffs}); the fuzz suite
    runs it on every diff crossing a link in either direction.

    Codes:
    - [WIRE01] — run exceeds the block's primitive-unit bounds.
    - [WIRE02] — runs out of ascending order or overlapping.
    - [WIRE03] — update or free of a block serial the receiver does not know
      (or one freed earlier in the same diff).
    - [WIRE04] — reference to an unknown type-descriptor serial.
    - [WIRE05] — pointer payload is not a syntactically valid MIP.
    - [WIRE06] — payload length disagrees with the covered units (truncated,
      trailing bytes, or an inline string exceeding its capacity).
    - [WIRE07] — version regression: [to_version < from_version], or a
      non-empty diff with [to_version = from_version] (an {e empty} diff at
      the same version is a legitimate no-change write-lock release).
    - [WIRE08] — create of a block serial that already exists (or appears
      twice in the diff).
    - [WIRE09] — run with non-positive length or negative start offset.
    - [WIRE10] — new descriptor conflicts with an existing serial binding,
      appears twice, or fails {!Iw_types.validate}. *)

type issue = {
  i_code : string;  (** stable, e.g. ["WIRE01"] *)
  i_serial : int option;  (** block serial involved, when applicable *)
  i_message : string;
}

(** What the receiver knows about the segment the diff applies to. *)
type ctx = {
  cx_desc : int -> Iw_types.desc option;  (** descriptor by serial *)
  cx_block : int -> (int * int) option;
      (** block serial to (descriptor serial, primitive-unit count) *)
}

val empty_ctx : ctx
(** Knows no blocks and no descriptors — suitable for checking the initial
    create-only diff of a fresh segment. *)

val valid_mip : string -> bool
(** MIP syntax: [""] (null) or [segment#block] or [segment#block#offset]
    with non-empty segment and block parts and a decimal offset. *)

val check : ctx -> Iw_wire.Diff.t -> issue list
(** All problems found, in diff order.  An empty list means the diff is
    well-formed with respect to the context. *)

val pp_issue : Format.formatter -> issue -> unit
