(** Executable small-step model of the InterWeave coherence protocol.

    The model abstracts the client/server protocol that {!Iw_server} and
    {!Iw_client} implement — N model clients running bounded write and read
    transactions against one server with write locks, session leases,
    per-session release dedup, a write-ahead log with checkpoint barriers,
    and injectable crash points — into a finite transition system that
    {!Iw_explore} can search exhaustively.  Data is opaque: a transaction is
    identified only by its base version, so the state space is bounded by
    the per-client operation budgets in {!config}.

    Each client follows the paper's access discipline (Section 2.2): acquire
    the segment's write lock, stage a diff against the version the grant
    carried, release (the server applies the diff, appends a WAL commit
    record, and only then acks), and read under one of the four coherence
    models (Full, Delta, Temporal, Diff).  Crash actions model the failure
    points the durability layer (lib/store) is built around: the server can
    crash at any interleaving point, losing volatile state (the lock table,
    in-flight acks, the dedup table) but not the WAL or checkpoints;
    recovery rebuilds from checkpoint + log replay exactly as
    [Iw_server.recover_store] does.

    Invariants, checked on every reachable state and transition:

    - [MDL01] — write-lock exclusivity: a release commits only when the
      server's lock table names the releasing session; a session whose lease
      was reclaimed must never advance the version.
    - [MDL02] — durability: no version observed by any client (write ack or
      read reply) may exceed the durable frontier (checkpoint version or
      highest WAL commit) — the log-before-ack discipline.  A crash can
      therefore never lose an acked version.
    - [MDL03] — coherence staleness bounds: an "up to date" reply must
      satisfy the client's model — equality under Full, version lag ≤ x
      under Delta x, an unexpired copy under Temporal, a modification
      counter within bound under Diff (paper §2.2).
    - [MDL04] — release-dedup idempotence: a release retried after a lost
      ack must be answered with its committed version whenever the durable
      history contains the commit, never refused (refusal makes the client
      roll back and re-apply — a duplicate commit).
    - [MDL05] — lease reclamation never strands a lock: a lock held by a
      crashed session with a live contender waiting must be reclaimable.
    - [MDL06] — monotonicity: the server version never regresses (including
      across crash + recovery), and no client's validated version can be
      ahead of the server it talks to.

    [broken] variants re-introduce protocol bugs on purpose so the explorer
    (and the test suite) can demonstrate that the invariants actually catch
    them. *)

type coherence =
  | Full
  | Delta of int  (** version lag bound *)
  | Temporal  (** expiry is a nondeterministic {!action.Expire} *)
  | Diff_bound of int  (** modification counter bound *)

type broken =
  | No_dedup_rebuild
      (** recovery forgets the release-dedup table: a release retried across
          a crash is refused even though its commit is in the log (the bug
          class behind MDL04) *)
  | Ack_before_log
      (** commits are acked without a WAL record: a crash loses acked
          versions (MDL02) *)
  | No_lock_check
      (** releases apply without checking the lock table: a session whose
          lease was reclaimed can still commit (MDL01) *)
  | No_reclaim
      (** leases exist but reclamation never runs: a crashed holder strands
          the lock for every live contender (MDL05) *)
  | Stale_full_reads
      (** Full-coherence reads tolerate a version of lag, violating the
          staleness bound (MDL03) *)

type config = {
  n_clients : int;
  writes_per_client : int;  (** write-transaction budget per client *)
  reads_per_client : int;  (** read-acquire budget per client *)
  coherences : coherence array;
      (** per-client model; cycled when shorter than [n_clients] *)
  lease : bool;  (** enable lease reclamation ({!action.Reclaim}) *)
  crash : bool;  (** enable Crash / Recover / Checkpoint / Client_crash *)
  broken : broken option;
}

val default_config : config
(** 2 clients, 2 writes and 1 read each, [Full] and [Delta 1], leases on,
    crash off, nothing broken. *)

val coherence_of_string : string -> (coherence, string) result
(** ["full"], ["delta:N"], ["temporal"], ["diff:N"]. *)

val broken_of_string : string -> (broken, string) result
(** Hyphenated variant names, e.g. ["no-dedup-rebuild"]. *)

(** One atomic protocol step.  Client-indexed actions name the session. *)
type action =
  | Lock of int  (** write-lock request, granted (lock free) *)
  | Reclaim of int  (** write-lock grant via lease reclamation from holder *)
  | Release of int  (** diff reaches the server: apply + WAL append *)
  | Ack of int  (** the release's ack reaches the client *)
  | Retry of int  (** release resent after a crash ate the ack *)
  | Read of int  (** read-lock round trip under the client's coherence *)
  | Expire of int  (** the Temporal client's copy passes its time bound *)
  | Client_crash of int  (** client dies silently (lease fodder) *)
  | Crash  (** server dies: volatile state lost, WAL + checkpoints survive *)
  | Recover  (** restart: checkpoint load + WAL replay + dedup rebuild *)
  | Checkpoint  (** checkpoint barrier: WAL truncated behind it *)

val action_to_string : action -> string
(** Compact, e.g. ["lock:0"], ["crash"].  Inverse of
    {!action_of_string}; a whole schedule prints as these joined with
    spaces. *)

val action_of_string : string -> (action, string) result

type state

val initial : config -> state

val enabled : config -> state -> action list
(** Actions whose preconditions hold in [state], in a fixed order. *)

type violation = {
  v_code : string;  (** stable, e.g. ["MDL04"] *)
  v_message : string;
}

val step : config -> state -> action -> (state * violation list) option
(** Deterministically apply one action.  [None] when the action is not
    enabled.  The violation list carries transition-level invariant
    failures (MDL01, MDL03, MDL04 fire at the offending transition). *)

val check : config -> state -> violation list
(** State-level invariants (MDL02, MDL05, MDL06) of one reachable state. *)

val independent : action -> action -> bool
(** Conservative commutativity for partial-order reduction: [true] only
    when executing the two actions in either order from any state reaches
    the same state.  Actions of the same client, lock-table writers among
    each other, version writers against readers, and the global
    crash/recover/checkpoint actions are all dependent. *)

val fingerprint : state -> int
(** Structural hash, for the explorer's visited table. *)

val pp_state : Format.formatter -> state -> unit
(** One-line rendering, for counterexample traces. *)
