type severity = Iw_lint.severity

type diagnostic = {
  l_code : string;
  l_severity : severity;
  l_file : string;
  l_line : int;
  l_col : int;
  l_def : string;
  l_message : string;
}

(* {2 Tokenizer}

   Comments and literals are stripped but positions are preserved, so a
   diagnostic points at the real source line.  Dotted access chains come out
   as one token ([Mutex.lock], [t.lock], [Iw_store.append]) — that is the
   granularity every check works at. *)

type tok = {
  t_text : string;
  t_line : int;
  t_col : int;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

(* Tokens plus the suppression table: (code, line) pairs licensed by
   [(* lck-ok: LCKnnn reason *)] comments — both the comment's first and
   last line are licensed, and suppression also looks one line down. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] and allows = Hashtbl.create 8 in
  let pos = ref 0 and line = ref 1 and col = ref 0 in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 0
     end
     else incr col);
    incr pos
  in
  let record_allow comment first_line last_line =
    match String.index_opt comment 'l' with
    | _ when not (String.length comment > 0) -> ()
    | _ ->
      let has_marker =
        let marker = "lck-ok" in
        let lm = String.length marker in
        let rec find i =
          i + lm <= String.length comment
          && (String.sub comment i lm = marker || find (i + 1))
        in
        find 0
      in
      if has_marker then begin
        (* every LCKnnn mentioned is licensed on the comment's lines *)
        let cl = String.length comment in
        for i = 0 to cl - 6 do
          if
            String.sub comment i 3 = "LCK"
            && (let d c = c >= '0' && c <= '9' in
                d comment.[i + 3] && d comment.[i + 4] && d comment.[i + 5])
          then begin
            let code = String.sub comment i 6 in
            Hashtbl.replace allows (code, first_line) ();
            Hashtbl.replace allows (code, last_line) ()
          end
        done
      end
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '(' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      (* nested comment *)
      let first_line = !line in
      let buf = Buffer.create 32 in
      let depth = ref 0 in
      let continue = ref true in
      while !continue && !pos < n do
        if !pos + 1 < n && src.[!pos] = '(' && src.[!pos + 1] = '*' then begin
          incr depth;
          advance ();
          advance ()
        end
        else if !pos + 1 < n && src.[!pos] = '*' && src.[!pos + 1] = ')' then begin
          decr depth;
          advance ();
          advance ();
          if !depth = 0 then continue := false
        end
        else begin
          Buffer.add_char buf src.[!pos];
          advance ()
        end
      done;
      record_allow (Buffer.contents buf) first_line !line
    end
    else if c = '"' then begin
      advance ();
      let continue = ref true in
      while !continue && !pos < n do
        if src.[!pos] = '\\' && !pos + 1 < n then begin
          advance ();
          advance ()
        end
        else if src.[!pos] = '"' then begin
          advance ();
          continue := false
        end
        else advance ()
      done
    end
    else if
      c = '{'
      &&
      (* quoted string {|...|} or {tag|...|tag} *)
      let j = ref (!pos + 1) in
      while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do
        incr j
      done;
      !j < n && src.[!j] = '|'
    then begin
      let j = ref (!pos + 1) in
      while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do
        incr j
      done;
      let tag = String.sub src (!pos + 1) (!j - !pos - 1) in
      let closing = "|" ^ tag ^ "}" in
      let cl = String.length closing in
      (* skip opening *)
      while !pos <= !j do
        advance ()
      done;
      let continue = ref true in
      while !continue && !pos < n do
        if !pos + cl <= n && String.sub src !pos cl = closing then begin
          for _ = 1 to cl do
            advance ()
          done;
          continue := false
        end
        else advance ()
      done
    end
    else if c = '\'' then begin
      (* char literal vs type-variable quote *)
      if !pos + 1 < n && src.[!pos + 1] = '\\' then begin
        advance ();
        advance ();
        advance ();
        (* escape body, e.g. '\n' '\123' '\x41' *)
        while !pos < n && src.[!pos] <> '\'' do
          advance ()
        done;
        if !pos < n then advance ()
      end
      else if !pos + 2 < n && src.[!pos + 2] = '\'' then begin
        advance ();
        advance ();
        advance ()
      end
      else advance ()
    end
    else if is_ident_start c then begin
      let l = !line and cstart = !col in
      let buf = Buffer.create 16 in
      let rec part () =
        while !pos < n && is_ident_char src.[!pos] do
          Buffer.add_char buf src.[!pos];
          advance ()
        done;
        if
          !pos + 1 < n
          && src.[!pos] = '.'
          && is_ident_start src.[!pos + 1]
        then begin
          Buffer.add_char buf '.';
          advance ();
          part ()
        end
      in
      part ();
      toks := { t_text = Buffer.contents buf; t_line = l; t_col = cstart } :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      while
        !pos < n
        &&
        let d = src.[!pos] in
        is_ident_char d || d = '.'
      do
        advance ()
      done
    end
    else advance ()
  done;
  (Array.of_list (List.rev !toks), allows)

(* {2 Vocabulary} *)

let raising_tokens =
  [
    "raise"; "failwith"; "invalid_arg"; "assert"; "Option.get"; "List.hd"; "List.tl";
    "List.find"; "Hashtbl.find"; "open_in"; "open_out"; "open_in_bin"; "open_out_bin";
    "int_of_string"; "Sys.getenv"; "try";
  ]

let blocking_tokens =
  [
    "Unix.fsync"; "Unix.write"; "Unix.read"; "Unix.single_write"; "Unix.select";
    "Unix.connect"; "Unix.accept"; "Unix.sleep"; "Unix.sleepf"; "Thread.delay";
    "output_string"; "output_bytes"; "output_char"; "flush"; "input_line";
    "really_input"; "really_input_string"; "open_in"; "open_out"; "open_in_bin";
    "open_out_bin"; "Iw_store.append"; "Iw_store.truncate"; "Iw_store.write_atomically";
  ]

let mutation_tokens =
  [
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.clear";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer";
  ]

(* {2 Per-definition analysis} *)

type region = {
  rg_start : int;  (** token index of the [Mutex.lock] (or 0 for [_locked]) *)
  rg_end : int;  (** inclusive token index *)
  rg_expr : string option;  (** lock expression; [None] for [_locked] bodies *)
}

let ends_with suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let lock_expr toks i =
  if i + 1 < Array.length toks && is_ident_start toks.(i + 1).t_text.[0] then
    Some toks.(i + 1).t_text
  else None

let analyze_def ~file ~allows ~name (toks : tok array) =
  let out = ref [] in
  let emit code sev t fmt =
    Printf.ksprintf
      (fun message ->
        if
          not
            (Hashtbl.mem allows (code, t.t_line)
            || Hashtbl.mem allows (code, t.t_line - 1))
        then
          out :=
            {
              l_code = code;
              l_severity = sev;
              l_file = file;
              l_line = t.t_line;
              l_col = t.t_col;
              l_def = name;
              l_message = message;
            }
            :: !out)
      fmt
  in
  let n = Array.length toks in
  let find_from i pred =
    let rec go i = if i >= n then None else if pred i then Some i else go (i + 1) in
    go i
  in
  let is_unlock_of expr i =
    toks.(i).t_text = "Mutex.unlock"
    && match (expr, lock_expr toks i) with
       | Some e, Some e' -> e = e'
       | _, _ -> true
  in
  let regions = ref [] in
  if ends_with "_locked" name then
    regions := { rg_start = 0; rg_end = n - 1; rg_expr = None } :: !regions;
  (* LCK001 + region construction per Mutex.lock site *)
  Array.iteri
    (fun i t ->
      if t.t_text = "Mutex.lock" then begin
        let expr = lock_expr toks i in
        let expr_s = Option.value expr ~default:"<computed>" in
        let protect = find_from (i + 1) (fun j -> toks.(j).t_text = "Fun.protect") in
        let unlock = find_from (i + 2) (fun j -> is_unlock_of expr j) in
        match (protect, unlock) with
        | Some fp, u when u = None || fp < Option.get u ->
          (* Fun.protect style: the lock is held for the rest of the
             definition as far as this lint can see. *)
          if u = None then
            emit "LCK001" Iw_lint.Error t
              "Mutex.lock %s followed by Fun.protect, but no Mutex.unlock %s appears in \
               this definition — the ~finally must release the lock"
              expr_s expr_s;
          regions := { rg_start = i; rg_end = n - 1; rg_expr = expr } :: !regions
        | _, None ->
          emit "LCK001" Iw_lint.Error t
            "Mutex.lock %s is never unlocked in this definition and no Fun.protect \
             guards it — any exception (or fall-through) leaves the mutex held"
            expr_s;
          regions := { rg_start = i; rg_end = n - 1; rg_expr = expr } :: !regions
        | _, Some ju ->
          (* plain lock/unlock region: safe only if nothing in between can
             raise *)
          (let rec scan j =
             if j < ju then
               let x = toks.(j).t_text in
               if List.mem x raising_tokens then
                 emit "LCK001" Iw_lint.Error toks.(j)
                   "'%s' can raise while %s is held; unlock at line %d is skipped — use \
                    Fun.protect ~finally:(fun () -> Mutex.unlock %s)"
                   x expr_s toks.(ju).t_line expr_s
               else scan (j + 1)
           in
           scan (i + 2));
          regions := { rg_start = i; rg_end = ju; rg_expr = expr } :: !regions
      end)
    toks;
  let regions = !regions in
  (* For LCK004 the region of a lock site extends to the LAST matching
     unlock: an early unlock-then-raise branch must not make the straight
     path's mutations look unlocked.  (Over-approximating the locked span
     only weakens LCK004, never misfires it.) *)
  let in_wide_region j =
    List.exists
      (fun r ->
        j >= r.rg_start
        &&
        let last =
          let rec go k best =
            if k >= n then best
            else go (k + 1) (if is_unlock_of r.rg_expr k then k else best)
          in
          go r.rg_end r.rg_end
        in
        j <= last)
      regions
  in
  (* LCK002: blocking calls inside any region *)
  List.iter
    (fun r ->
      for j = r.rg_start + 1 to r.rg_end - 1 do
        let x = toks.(j).t_text in
        if List.mem x blocking_tokens then
          emit "LCK002" Iw_lint.Warning toks.(j)
            "blocking call '%s' while holding %s — every other thread contending for \
             the lock stalls behind it"
            x
            (match r.rg_expr with
            | Some e -> Printf.sprintf "'%s'" e
            | None -> "the caller's lock (definition is *_locked)")
      done)
    regions;
  (* LCK003: nested acquisition out of canonical order *)
  List.iter
    (fun r ->
      match r.rg_expr with
      | None -> ()
      | Some outer ->
        for j = r.rg_start + 1 to min (r.rg_end - 1) (n - 1) do
          if toks.(j).t_text = "Mutex.lock" then
            match lock_expr toks j with
            | Some inner when inner = outer ->
              emit "LCK003" Iw_lint.Error toks.(j)
                "re-acquisition of '%s' while already holding it — self-deadlock" outer
            | Some inner when String.compare inner outer < 0 ->
              emit "LCK003" Iw_lint.Error toks.(j)
                "nested acquisition of '%s' while holding '%s' violates the canonical \
                 (lexicographic) lock order — the opposite nesting elsewhere deadlocks"
                inner outer
            | _ -> ()
        done)
    regions;
  (* LCK004: shared-table mutation outside every lock region, in a
     definition that uses locks *)
  if regions <> [] && not (ends_with "_locked" name) then
    Array.iteri
      (fun j t ->
        if List.mem t.t_text mutation_tokens && not (in_wide_region j) then
          emit "LCK004" Iw_lint.Warning t
            "'%s' mutates a shared table outside the lock region this definition uses \
             elsewhere — readers under the lock can observe the mutation mid-flight"
            t.t_text)
      toks;
  List.rev !out

(* {2 Driver} *)

let split_defs (toks : tok array) =
  (* a toplevel [let]/[and] is one at column 0; everything before the first
     is scanned as a definition of its own ("<toplevel>") *)
  let n = Array.length toks in
  let boundaries = ref [] in
  Array.iteri
    (fun i t -> if t.t_col = 0 && (t.t_text = "let" || t.t_text = "and") then
        boundaries := i :: !boundaries)
    toks;
  let boundaries = List.rev !boundaries in
  let name_at i =
    (* let [rec] <name> ... *)
    let j = if i + 1 < n && toks.(i + 1).t_text = "rec" then i + 2 else i + 1 in
    if j < n && is_ident_start toks.(j).t_text.[0] then toks.(j).t_text else "_"
  in
  let rec go acc = function
    | [] -> List.rev acc
    | [ b ] -> List.rev (((name_at b, b, n - 1)) :: acc)
    | b :: (b' :: _ as rest) -> go ((name_at b, b, b' - 1) :: acc) rest
  in
  let defs = go [] boundaries in
  match boundaries with
  | [] when n > 0 -> [ ("<toplevel>", 0, n - 1) ]
  | 0 :: _ | [] -> defs
  | b :: _ -> ("<toplevel>", 0, b - 1) :: defs

let lint_string ~file src =
  let toks, allows = tokenize src in
  split_defs toks
  |> List.concat_map (fun (name, s, e) ->
         analyze_def ~file ~allows ~name (Array.sub toks s (e - s + 1)))

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun e ->
           e <> "_build" && String.length e > 0 && e.[0] <> '.')
    |> List.concat_map (fun e -> ml_files (Filename.concat path e))
  else if ends_with ".ml" path then [ path ]
  else []

let lint_files paths =
  try
    let files =
      List.concat_map
        (fun p ->
          if not (Sys.file_exists p) then
            failwith (Printf.sprintf "%s: no such file or directory" p)
          else ml_files p)
        paths
    in
    Ok
      (List.concat_map
         (fun f ->
           let ic = open_in_bin f in
           let src =
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> really_input_string ic (in_channel_length ic))
           in
           lint_string ~file:f src)
         files)
  with
  | Failure m -> Error m
  | Sys_error m -> Error m

let rank = function Iw_lint.Error -> 2 | Iw_lint.Warning -> 1 | Iw_lint.Note -> 0

let worst ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when rank s >= rank d.l_severity -> acc
      | _ -> Some d.l_severity)
    None ds

let severity_name = function
  | Iw_lint.Error -> "error"
  | Iw_lint.Warning -> "warning"
  | Iw_lint.Note -> "note"

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: %s %s (%s): %s" d.l_file d.l_line d.l_col d.l_code
    (severity_name d.l_severity) d.l_def d.l_message
