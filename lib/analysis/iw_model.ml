(* Small-step model of the coherence protocol.  Everything here is immutable
   and structurally comparable: states go straight into the explorer's
   visited table, and [step] is deterministic so a recorded schedule replays
   exactly (the counterexample-shrinking contract).

   Fidelity notes, tied to the real implementation:
   - [Release] applies the diff and appends the WAL commit record as one
     atomic step.  The real server applies, then appends, then acks; a crash
     between apply and append loses the volatile apply and leaves no record,
     which is indistinguishable from crashing before the release arrived —
     so the atomic model covers the same reachable histories.
   - The ack is a separate [Ack] step, and [Crash] drops in-flight acks:
     that window (commit durable, ack lost) is exactly where release dedup
     and WAL-rebuild must cooperate, and where MDL04's counterexamples live.
   - [Checkpoint] is a log barrier (truncate after durable checkpoint), and
     the checkpoint snapshots the dedup table — the IWCKPT03 format change
     this model motivated: with only WAL rebuild, the schedule
     lock:0 rel:0 crash recover ckpt crash recover retry:0
     refuses a committed release. *)

type coherence =
  | Full
  | Delta of int
  | Temporal
  | Diff_bound of int

type broken =
  | No_dedup_rebuild
  | Ack_before_log
  | No_lock_check
  | No_reclaim
  | Stale_full_reads

type config = {
  n_clients : int;
  writes_per_client : int;
  reads_per_client : int;
  coherences : coherence array;
  lease : bool;
  crash : bool;
  broken : broken option;
}

let default_config =
  {
    n_clients = 2;
    writes_per_client = 2;
    reads_per_client = 1;
    coherences = [| Full; Delta 1 |];
    lease = true;
    crash = false;
    broken = None;
  }

let coherence_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "full" ] -> Ok Full
  | [ "temporal" ] -> Ok Temporal
  | [ "delta"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (Delta n)
    | _ -> Error (Printf.sprintf "bad delta bound %S" n))
  | [ "diff"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (Diff_bound n)
    | _ -> Error (Printf.sprintf "bad diff bound %S" n))
  | _ -> Error (Printf.sprintf "unknown coherence %S (full, delta:N, temporal, diff:N)" s)

let broken_of_string = function
  | "no-dedup-rebuild" -> Ok No_dedup_rebuild
  | "ack-before-log" -> Ok Ack_before_log
  | "no-lock-check" -> Ok No_lock_check
  | "no-reclaim" -> Ok No_reclaim
  | "stale-full-reads" -> Ok Stale_full_reads
  | s ->
    Error
      (Printf.sprintf
         "unknown broken variant %S (no-dedup-rebuild, ack-before-log, no-lock-check, \
          no-reclaim, stale-full-reads)"
         s)

type action =
  | Lock of int
  | Reclaim of int
  | Release of int
  | Ack of int
  | Retry of int
  | Read of int
  | Expire of int
  | Client_crash of int
  | Crash
  | Recover
  | Checkpoint

let action_to_string = function
  | Lock i -> Printf.sprintf "lock:%d" i
  | Reclaim i -> Printf.sprintf "reclaim:%d" i
  | Release i -> Printf.sprintf "rel:%d" i
  | Ack i -> Printf.sprintf "ack:%d" i
  | Retry i -> Printf.sprintf "retry:%d" i
  | Read i -> Printf.sprintf "read:%d" i
  | Expire i -> Printf.sprintf "expire:%d" i
  | Client_crash i -> Printf.sprintf "die:%d" i
  | Crash -> "crash"
  | Recover -> "recover"
  | Checkpoint -> "ckpt"

let action_of_string s =
  let indexed mk rest =
    match int_of_string_opt rest with
    | Some i when i >= 0 -> Ok (mk i)
    | _ -> Error (Printf.sprintf "bad client index in %S" s)
  in
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "crash" -> Ok Crash
    | "recover" -> Ok Recover
    | "ckpt" -> Ok Checkpoint
    | _ -> Error (Printf.sprintf "unknown action %S" s))
  | Some i -> (
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "lock" -> indexed (fun i -> Lock i) rest
    | "reclaim" -> indexed (fun i -> Reclaim i) rest
    | "rel" -> indexed (fun i -> Release i) rest
    | "ack" -> indexed (fun i -> Ack i) rest
    | "retry" -> indexed (fun i -> Retry i) rest
    | "read" -> indexed (fun i -> Read i) rest
    | "expire" -> indexed (fun i -> Expire i) rest
    | "die" -> indexed (fun i -> Client_crash i) rest
    | _ -> Error (Printf.sprintf "unknown action %S" s))

(* {2 State} *)

type phase =
  | Idle
  | Holding  (* believes it holds the write lock; diff staged from c_base *)
  | Awaiting  (* release sent and applied; ack outstanding *)

type client = {
  c_coh : coherence;
  c_phase : phase;
  c_version : int;  (* validated cached version *)
  c_base : int;  (* from_version of the current/last write transaction *)
  c_inflight : int option;  (* committed version whose ack is in flight *)
  c_mods : int;  (* commits by others since validation (Diff), saturating *)
  c_expired : bool;  (* Temporal: the copy's time bound has passed *)
  c_crashed : bool;
  c_writes : int;  (* remaining write-transaction budget *)
  c_reads : int;  (* remaining read budget *)
}

type state = {
  sv_up : bool;
  sv_version : int;
  sv_writer : int option;  (* volatile lock table *)
  sv_releases : (int * (int * int)) list;  (* volatile dedup: session -> base, version *)
  sv_wal : (int * int * int) list;  (* durable commits past the ckpt, newest first *)
  sv_ckpt : int;  (* checkpoint version *)
  sv_ckpt_releases : (int * (int * int)) list;  (* dedup snapshot in the checkpoint *)
  st_observed : int;  (* ghost: highest version any client saw in any reply *)
  st_ground : (int * int * int) list;  (* ghost: full commit history, never truncated *)
  clients : client array;
}

let mods_cap = 3

let coh_of cfg i = cfg.coherences.(i mod Array.length cfg.coherences)

let initial cfg =
  {
    sv_up = true;
    sv_version = 0;
    sv_writer = None;
    sv_releases = [];
    sv_wal = [];
    sv_ckpt = 0;
    sv_ckpt_releases = [];
    st_observed = 0;
    st_ground = [];
    clients =
      Array.init cfg.n_clients (fun i ->
          {
            c_coh = coh_of cfg i;
            c_phase = Idle;
            c_version = 0;
            c_base = 0;
            c_inflight = None;
            c_mods = 0;
            c_expired = false;
            c_crashed = false;
            c_writes = cfg.writes_per_client;
            c_reads = cfg.reads_per_client;
          })
      ;
  }

let fingerprint (s : state) = Hashtbl.hash s

let durable_frontier s =
  List.fold_left (fun acc (_, _, v) -> max acc v) s.sv_ckpt s.sv_wal

let set_client s i c =
  let clients = Array.copy s.clients in
  clients.(i) <- c;
  { s with clients }

let dedup_assoc session base releases =
  match List.assoc_opt session releases with
  | Some (b, v) when b = base -> Some v
  | _ -> None

let dedup_replace session entry releases =
  (session, entry) :: List.remove_assoc session releases

(* A committed version reached a client (write ack, dup-release answer, or
   read/lock refresh): record it against the durability ghost. *)
let observe s v = { s with st_observed = max s.st_observed v }

(* {2 Enabledness} *)

let live c = not c.c_crashed

let wants_lock c = live c && c.c_phase = Idle && c.c_writes > 0

let enabled_one cfg s a =
  let n = Array.length s.clients in
  let cl i = s.clients.(i) in
  let in_range i = i >= 0 && i < n in
  match a with
  | Lock i -> s.sv_up && in_range i && wants_lock (cl i) && s.sv_writer = None
  | Reclaim i ->
    s.sv_up && cfg.lease
    && cfg.broken <> Some No_reclaim
    && in_range i
    && wants_lock (cl i)
    && (match s.sv_writer with Some j -> j <> i | None -> false)
  | Release i -> s.sv_up && in_range i && live (cl i) && (cl i).c_phase = Holding
  | Ack i -> in_range i && live (cl i) && (cl i).c_phase = Awaiting && (cl i).c_inflight <> None
  | Retry i ->
    s.sv_up && in_range i && live (cl i) && (cl i).c_phase = Awaiting
    && (cl i).c_inflight = None
  | Read i -> s.sv_up && in_range i && live (cl i) && (cl i).c_phase = Idle && (cl i).c_reads > 0
  | Expire i ->
    in_range i && live (cl i) && (cl i).c_coh = Temporal && (cl i).c_version > 0
    && not (cl i).c_expired
  | Client_crash i ->
    cfg.crash && in_range i && live (cl i) && (cl i).c_phase = Holding
  | Crash -> cfg.crash && s.sv_up
  | Recover -> not s.sv_up
  | Checkpoint -> cfg.crash && s.sv_up

let enabled cfg s =
  let n = Array.length s.clients in
  let per_client = [ (fun i -> Lock i); (fun i -> Reclaim i); (fun i -> Release i);
                     (fun i -> Ack i); (fun i -> Retry i); (fun i -> Read i);
                     (fun i -> Expire i); (fun i -> Client_crash i) ]
  in
  let acc =
    List.concat_map (fun mk -> List.init n mk) per_client @ [ Checkpoint; Crash; Recover ]
  in
  List.filter (enabled_one cfg s) acc

(* {2 Invariants} *)

type violation = {
  v_code : string;
  v_message : string;
}

let v code fmt = Printf.ksprintf (fun m -> { v_code = code; v_message = m }) fmt

let check _cfg s =
  let out = ref [] in
  let add x = out := x :: !out in
  let frontier = durable_frontier s in
  if s.st_observed > frontier then
    add
      (v "MDL02"
         "durability: version %d was acked to a client but the durable frontier \
          (checkpoint %d, WAL max %d) is %d — a crash here loses an acked version"
         s.st_observed s.sv_ckpt
         (List.fold_left (fun a (_, _, vv) -> max a vv) 0 s.sv_wal)
         frontier);
  if s.sv_up && s.sv_version < frontier then
    add
      (v "MDL06" "monotonicity: server is at version %d but the durable frontier is %d"
         s.sv_version frontier);
  Array.iteri
    (fun i c ->
      if c.c_version > s.st_observed then
        add
          (v "MDL06" "monotonicity: client %d validated version %d beyond anything acked (%d)"
             i c.c_version s.st_observed))
    s.clients;
  (* Strand check: a lock held by a crashed session, with a live contender
     waiting, must be reclaimable — i.e. some Reclaim is enabled.  Without
     leases the connection-death cleanup already freed it. *)
  (match s.sv_writer with
  | Some holder when s.sv_up && s.clients.(holder).c_crashed ->
    let contender = Array.exists wants_lock s.clients in
    let reclaimable =
      Array.to_list s.clients
      |> List.mapi (fun i _ -> i)
      |> List.exists (fun i -> enabled_one _cfg s (Reclaim i))
    in
    if contender && not reclaimable then
      add
        (v "MDL05"
           "stranded lock: session %d crashed holding the write lock and a live \
            contender is waiting, but no reclamation path is enabled"
           holder)
  | _ -> ());
  List.rev !out

(* {2 Transition function} *)

(* Every commit bumps the Diff-coherence modification counter of every other
   client, the same conservative accounting as the server's s_counters. *)
let bump_mods except clients =
  Array.mapi
    (fun j c -> if j = except then c else { c with c_mods = min mods_cap (c.c_mods + 1) })
    clients

(* A refresh delivered to client [i] (write-lock grant or read update). *)
let refreshed s c = { c with c_version = s.sv_version; c_mods = 0; c_expired = false }

let grant s i =
  let c = refreshed s s.clients.(i) in
  let c = { c with c_phase = Holding; c_base = s.sv_version; c_writes = c.c_writes - 1 } in
  let s = set_client s i c in
  observe { s with sv_writer = Some i } s.sv_version

let up_to_date cfg s c =
  c.c_version = s.sv_version
  || c.c_version > 0
     &&
     match c.c_coh with
     | Full -> cfg.broken = Some Stale_full_reads && s.sv_version - c.c_version <= 1
     | Delta x -> s.sv_version - c.c_version <= x
     | Temporal -> not c.c_expired
     | Diff_bound d -> c.c_mods <= d

(* The staleness bound an "up to date" answer must satisfy — deliberately
   re-derived from the model definition rather than shared with the
   server-side decision above, so a lax decision rule is caught. *)
let staleness_violation i c ~server_version =
  let lag = server_version - c.c_version in
  if lag = 0 then None
  else if c.c_version = 0 then
    Some (v "MDL03" "client %d served 'up to date' with no validated copy" i)
  else
    match c.c_coh with
    | Full ->
      Some
        (v "MDL03"
           "Full coherence: client %d served 'up to date' at version %d while the server \
            is at %d"
           i c.c_version (c.c_version + lag))
    | Delta x when lag > x ->
      Some
        (v "MDL03" "Delta %d: client %d served 'up to date' with version lag %d" x i lag)
    | Temporal when c.c_expired ->
      Some
        (v "MDL03"
           "Temporal: client %d served 'up to date' on an expired copy (version lag %d)" i
           lag)
    | Diff_bound d when c.c_mods > d ->
      Some
        (v "MDL03"
           "Diff %d: client %d served 'up to date' with %d modifications outstanding" d i
           c.c_mods)
    | Delta _ | Temporal | Diff_bound _ -> None

let step cfg s a =
  if not (enabled_one cfg s a) then None
  else
    let cl i = s.clients.(i) in
    Some
      (match a with
      | Lock i -> (grant s i, [])
      | Reclaim i ->
        (* Lease reclamation: the holder has outlived its lease (quiet or
           crashed); the contender's Write_lock takes the lock over.  The
           old holder, if alive, still believes it holds it — its eventual
           release must be refused (MDL01 checks that at Release). *)
        (grant s i, [])
      | Release i -> (
        let c = cl i in
        let holds = s.sv_writer = Some i in
        let apply =
          holds || (cfg.broken = Some No_lock_check && s.sv_up)
        in
        if apply then begin
          let v' = s.sv_version + 1 in
          let wal =
            if cfg.broken = Some Ack_before_log then s.sv_wal
            else (i, c.c_base, v') :: s.sv_wal
          in
          let s' =
            {
              s with
              sv_version = v';
              sv_writer = None;
              sv_wal = wal;
              sv_releases = dedup_replace i (c.c_base, v') s.sv_releases;
              st_ground = (i, c.c_base, v') :: s.st_ground;
              clients = bump_mods i s.clients;
            }
          in
          let s' = set_client s' i { c with c_phase = Awaiting; c_inflight = Some v' } in
          let violations =
            if holds then []
            else
              [
                v "MDL01"
                  "exclusivity: session %d committed version %d without holding the \
                   write lock (writer is %s)"
                  i v'
                  (match s.sv_writer with
                  | Some j -> string_of_int j
                  | None -> "free");
              ]
          in
          (s', violations)
        end
        else
          (* Refused: the lock was reclaimed (or lost to a crash) under the
             client.  The client rolls the transaction back — Lock_lost. *)
          let s' = set_client s i { c with c_phase = Idle; c_inflight = None } in
          (s', []))
      | Ack i ->
        let c = cl i in
        let ver = Option.get c.c_inflight in
        let c =
          { c with c_phase = Idle; c_inflight = None; c_version = ver; c_mods = 0;
            c_expired = false }
        in
        (observe (set_client s i c) ver, [])
      | Retry i -> (
        let c = cl i in
        match dedup_assoc i c.c_base s.sv_releases with
        | Some ver ->
          (* Duplicate recognized: answered with the committed version. *)
          let c =
            { c with c_phase = Idle; c_version = ver; c_mods = 0; c_expired = false }
          in
          (observe (set_client s i c) ver, [])
        | None ->
          (* Refused.  If the durable history proves the commit happened,
             idempotence is broken: the client will roll back and re-apply
             an already-committed transaction. *)
          let violations =
            match
              List.find_opt (fun (j, b, _) -> j = i && b = c.c_base) s.st_ground
            with
            | Some (_, _, ver) ->
              [
                v "MDL04"
                  "dedup idempotence: session %d's release from base %d was committed \
                   as version %d, but the retried release was refused — the client \
                   will re-apply a committed transaction"
                  i c.c_base ver;
              ]
            | None -> []
          in
          (set_client s i { c with c_phase = Idle }, violations))
      | Read i ->
        let c = cl i in
        if up_to_date cfg s c then
          let violations =
            match staleness_violation i c ~server_version:s.sv_version with
            | Some x -> [ x ]
            | None -> []
          in
          let c = { c with c_reads = c.c_reads - 1; c_expired = false } in
          (set_client s i c, violations)
        else
          let c = { (refreshed s c) with c_reads = c.c_reads - 1 } in
          (observe (set_client s i c) s.sv_version, [])
      | Expire i -> (set_client s i { (cl i) with c_expired = true }, [])
      | Client_crash i ->
        let s = set_client s i { (cl i) with c_crashed = true; c_inflight = None } in
        (* Without a lease, connection death drops the session's locks at
           once (the pre-lease serve_conn behavior); with one they survive
           for Resume_session and are reclaimed lazily. *)
        let s =
          if (not cfg.lease) && s.sv_writer = Some i then { s with sv_writer = None }
          else s
        in
        (s, [])
      | Crash ->
        (* Volatile state dies; WAL, checkpoint, and ghosts survive.  Every
           connection dies with the server, so in-flight acks are lost. *)
        let clients = Array.map (fun c -> { c with c_inflight = None }) s.clients in
        ({ s with sv_up = false; sv_writer = None; sv_releases = []; clients }, [])
      | Recover ->
        let wal_rebuild =
          List.fold_left
            (fun acc (i, b, ver) ->
              match List.assoc_opt i acc with
              | Some (_, old) when old >= ver -> acc
              | _ -> dedup_replace i (b, ver) acc)
            []
            (List.rev s.sv_wal)
        in
        let releases =
          if cfg.broken = Some No_dedup_rebuild then []
          else
            (* checkpoint snapshot first, WAL records override *)
            List.fold_left
              (fun acc (i, e) -> if List.mem_assoc i acc then acc else (i, e) :: acc)
              wal_rebuild s.sv_ckpt_releases
        in
        ({ s with sv_up = true; sv_version = durable_frontier s; sv_releases = releases }, [])
      | Checkpoint ->
        ( {
            s with
            sv_ckpt = s.sv_version;
            sv_ckpt_releases = s.sv_releases;
            sv_wal = [];
          },
          [] ))

(* {2 Independence} *)

(* Which shared server structures an action reads or writes; two actions are
   independent when they are actions of different clients and neither writes
   a structure the other touches.  Global actions conflict with everything. *)

let client_of = function
  | Lock i | Reclaim i | Release i | Ack i | Retry i | Read i | Expire i | Client_crash i ->
    Some i
  | Crash | Recover | Checkpoint -> None

let global a = client_of a = None

(* (reads, writes) over the shared footprint: `L lock table, `V version,
   `D dedup table.  Ghost fields are monotone max/append and commute. *)
let footprint = function
  | Lock _ | Reclaim _ -> ([ `V ], [ `L ])
  | Release _ -> ([ `L ], [ `L; `V; `D ])
  | Ack _ | Expire _ -> ([], [])
  | Retry _ -> ([ `D ], [])
  | Read _ -> ([ `V ], [])
  | Client_crash _ -> ([ `L ], [ `L ])
  | Crash | Recover | Checkpoint -> ([ `L; `V; `D ], [ `L; `V; `D ])

let independent a b =
  if global a || global b then false
  else if client_of a = client_of b then false
  else
    let ra, wa = footprint a and rb, wb = footprint b in
    let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs) in
    disjoint wa wb && disjoint wa rb && disjoint wb ra

(* {2 Printing} *)

let pp_phase ppf = function
  | Idle -> Format.fprintf ppf "idle"
  | Holding -> Format.fprintf ppf "holding"
  | Awaiting -> Format.fprintf ppf "awaiting-ack"

let pp_state ppf s =
  Format.fprintf ppf "server %s v%d writer=%s ckpt=%d wal=[%s]"
    (if s.sv_up then "up" else "DOWN")
    s.sv_version
    (match s.sv_writer with Some i -> string_of_int i | None -> "-")
    s.sv_ckpt
    (String.concat ","
       (List.rev_map (fun (i, b, vv) -> Printf.sprintf "%d:%d->%d" i b vv) s.sv_wal));
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "; c%d %a v%d%s%s" i pp_phase c.c_phase c.c_version
        (match c.c_inflight with Some vv -> Printf.sprintf " inflight=%d" vv | None -> "")
        (if c.c_crashed then " dead" else ""))
    s.clients
