(* Well-formedness checks on decoded wire diffs.  The payload walk drives
   the same packed-layout span iteration that [Iw_wire.collect_prims] uses
   to produce payloads, so the two cannot drift apart. *)

type issue = {
  i_code : string;
  i_serial : int option;
  i_message : string;
}

type ctx = {
  cx_desc : int -> Iw_types.desc option;
  cx_block : int -> (int * int) option;
}

let empty_ctx = { cx_desc = (fun _ -> None); cx_block = (fun _ -> None) }

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let valid_mip s =
  s = ""
  ||
  match String.split_on_char '#' s with
  | [ seg; blk ] -> seg <> "" && blk <> ""
  | [ seg; blk; off ] -> seg <> "" && blk <> "" && is_digits off
  | _ -> false

let wire_fixed_size = function
  | Iw_arch.Char -> 1
  | Iw_arch.Short -> 2
  | Iw_arch.Int | Iw_arch.Float -> 4
  | Iw_arch.Long | Iw_arch.Double -> 8
  | Iw_arch.Pointer | Iw_arch.String _ -> assert false

(* Walk the payload claimed to cover primitive units [from, upto) of a value
   of the given descriptor, in wire layout.  Returns issues (without serial
   attached; the caller adds it). *)
let walk_payload desc ~from ~upto payload =
  let lay = Iw_types.layout Iw_types.wire desc in
  let r = Iw_wire.Reader.of_string payload in
  let issues = ref [] in
  let add code msg = issues := { i_code = code; i_serial = None; i_message = msg } :: !issues in
  (try
     Iw_types.fold_spans lay ~from ~upto ~init:() ~f:(fun () sp ->
         match sp.Iw_types.s_prim with
         | Iw_arch.Pointer ->
             for _ = 1 to sp.Iw_types.s_count do
               let m = Iw_wire.Reader.string r in
               if not (valid_mip m) then
                 add "WIRE05" (Printf.sprintf "pointer payload %S is not a valid MIP" m)
             done
         | Iw_arch.String cap ->
             for _ = 1 to sp.Iw_types.s_count do
               let s = Iw_wire.Reader.string r in
               if String.length s > cap - 1 then
                 add "WIRE06"
                   (Printf.sprintf
                      "inline string of %d bytes exceeds char[%d] capacity (%d usable)"
                      (String.length s) cap (cap - 1))
             done
         | p -> Iw_wire.Reader.skip r (sp.Iw_types.s_count * wire_fixed_size p));
     if Iw_wire.Reader.remaining r > 0 then
       add "WIRE06"
         (Printf.sprintf "%d trailing payload byte(s) after the covered units"
            (Iw_wire.Reader.remaining r))
   with Iw_wire.Malformed m -> add "WIRE06" (Printf.sprintf "payload truncated: %s" m));
  List.rev !issues

let check ctx (d : Iw_wire.Diff.t) =
  let issues = ref [] in
  let add ?serial code msg =
    issues := { i_code = code; i_serial = serial; i_message = msg } :: !issues
  in
  let add_all serial sub =
    List.iter (fun i -> issues := { i with i_serial = Some serial } :: !issues) sub
  in
  if
    d.Iw_wire.Diff.to_version < d.Iw_wire.Diff.from_version
    || (d.Iw_wire.Diff.to_version = d.Iw_wire.Diff.from_version
       && (d.Iw_wire.Diff.changes <> [] || d.Iw_wire.Diff.new_descs <> []))
  then
    add "WIRE07"
      (Printf.sprintf "version regression: non-empty diff goes from %d to %d"
         d.Iw_wire.Diff.from_version d.Iw_wire.Diff.to_version);
  (* new descriptors: serial conflicts and validity *)
  let seen_desc = Hashtbl.create 8 in
  List.iter
    (fun (serial, desc) ->
      if Hashtbl.mem seen_desc serial then
        add "WIRE10" (Printf.sprintf "descriptor serial %d appears twice in the diff" serial)
      else Hashtbl.replace seen_desc serial desc;
      (match ctx.cx_desc serial with
      | Some existing when not (Iw_types.equal existing desc) ->
          add "WIRE10"
            (Printf.sprintf "descriptor serial %d conflicts with an existing binding" serial)
      | _ -> ());
      match Iw_types.validate desc with
      | Ok () -> ()
      | Error e -> add "WIRE10" (Printf.sprintf "descriptor serial %d is invalid: %s" serial e))
    d.Iw_wire.Diff.new_descs;
  let find_desc serial =
    match Hashtbl.find_opt seen_desc serial with
    | Some _ as r -> r
    | None -> ctx.cx_desc serial
  in
  (* block changes *)
  let created = Hashtbl.create 8 and freed = Hashtbl.create 8 in
  List.iter
    (fun change ->
      match change with
      | Iw_wire.Diff.Free { serial } ->
          if
            Hashtbl.mem freed serial
            || ((not (Hashtbl.mem created serial)) && ctx.cx_block serial = None)
          then
            add ~serial "WIRE03"
              (Printf.sprintf "free of unknown or already-freed block serial %d" serial)
          else Hashtbl.replace freed serial ()
      | Iw_wire.Diff.Create { serial; desc_serial; payload; name = _ } ->
          if Hashtbl.mem created serial || (ctx.cx_block serial <> None && not (Hashtbl.mem freed serial))
          then
            add ~serial "WIRE08"
              (Printf.sprintf "create of block serial %d which already exists" serial)
          else Hashtbl.replace created serial ();
          (match find_desc desc_serial with
          | None ->
              add ~serial "WIRE04"
                (Printf.sprintf "create references unknown descriptor serial %d" desc_serial)
          | Some desc ->
              add_all serial (walk_payload desc ~from:0 ~upto:(Iw_types.prim_count desc) payload))
      | Iw_wire.Diff.Update { serial; runs } -> (
          if Hashtbl.mem freed serial then
            add ~serial "WIRE03" (Printf.sprintf "update of block serial %d freed by this diff" serial);
          match ctx.cx_block serial with
          | None ->
              if not (Hashtbl.mem freed serial) then
                add ~serial "WIRE03" (Printf.sprintf "update of unknown block serial %d" serial)
          | Some (desc_serial, pcount) ->
              let desc = find_desc desc_serial in
              if desc = None then
                add ~serial "WIRE04"
                  (Printf.sprintf "block %d has unknown descriptor serial %d" serial desc_serial);
              let prev_end = ref (-1) in
              List.iter
                (fun (run : Iw_wire.Diff.run) ->
                  let { Iw_wire.Diff.start_pu; len_pu; payload } = run in
                  if len_pu <= 0 || start_pu < 0 then
                    add ~serial "WIRE09"
                      (Printf.sprintf "run [%d, %d) has non-positive extent" start_pu
                         (start_pu + len_pu))
                  else begin
                    if start_pu + len_pu > pcount then
                      add ~serial "WIRE01"
                        (Printf.sprintf "run [%d, %d) exceeds the block's %d primitive units"
                           start_pu (start_pu + len_pu) pcount)
                    else begin
                      if start_pu < !prev_end then
                        add ~serial "WIRE02"
                          (Printf.sprintf
                             "run starting at unit %d overlaps or precedes the previous run \
                              ending at %d"
                             start_pu !prev_end);
                      match desc with
                      | None -> ()
                      | Some desc ->
                          add_all serial
                            (walk_payload desc ~from:start_pu ~upto:(start_pu + len_pu) payload)
                    end;
                    prev_end := max !prev_end (start_pu + len_pu)
                  end)
                runs))
    d.Iw_wire.Diff.changes;
  List.rev !issues

let pp_issue ppf i =
  match i.i_serial with
  | None -> Format.fprintf ppf "%s: %s" i.i_code i.i_message
  | Some s -> Format.fprintf ppf "%s: block %d: %s" i.i_code s i.i_message
