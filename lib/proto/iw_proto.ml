type coherence =
  | Full
  | Delta of int
  | Temporal of float
  | Diff_pct of float

let pp_coherence ppf = function
  | Full -> Format.fprintf ppf "full"
  | Delta x -> Format.fprintf ppf "delta-%d" x
  | Temporal x -> Format.fprintf ppf "temporal-%gs" x
  | Diff_pct x -> Format.fprintf ppf "diff-%g%%" x

type meta_block = {
  mb_serial : int;
  mb_name : string option;
  mb_desc_serial : int;
}

type request =
  | Hello of { arch : string }
  | Open_segment of {
      session : int;
      name : string;
      create : bool;
    }
  | Segment_meta of {
      session : int;
      name : string;
    }
  | Read_lock of {
      session : int;
      name : string;
      version : int;
      coherence : coherence;
    }
  | Read_release of {
      session : int;
      name : string;
    }
  | Write_lock of {
      session : int;
      name : string;
      version : int;
    }
  | Write_release of {
      session : int;
      name : string;
      diff : Iw_wire.Diff.t;
    }
  | Register_desc of {
      session : int;
      name : string;
      desc : Iw_types.desc;
    }
  | Get_version of {
      session : int;
      name : string;
    }
  | Checkpoint of { session : int }
  | Stat of {
      session : int;
      name : string;
    }
  | Subscribe of {
      session : int;
      name : string;
    }
  | Unsubscribe of {
      session : int;
      name : string;
    }
  | Server_stats of { session : int }
  | Segment_stats of {
      session : int;
      segment : string option;
    }
  | Flight_recorder of { session : int }
  | Resume_session of {
      session : int;
      arch : string;
    }
  | Enable_crc of { session : int }
  | Slow_log of {
      session : int;
      limit : int;
    }
  | Metrics_history of {
      session : int;
      limit : int;
    }

let request_variant = function
  | Hello _ -> "hello"
  | Open_segment _ -> "open_segment"
  | Segment_meta _ -> "segment_meta"
  | Read_lock _ -> "read_lock"
  | Read_release _ -> "read_release"
  | Write_lock _ -> "write_lock"
  | Write_release _ -> "write_release"
  | Register_desc _ -> "register_desc"
  | Get_version _ -> "get_version"
  | Checkpoint _ -> "checkpoint"
  | Stat _ -> "stat"
  | Subscribe _ -> "subscribe"
  | Unsubscribe _ -> "unsubscribe"
  | Server_stats _ -> "server_stats"
  | Segment_stats _ -> "segment_stats"
  | Flight_recorder _ -> "flight_recorder"
  | Resume_session _ -> "resume_session"
  | Enable_crc _ -> "enable_crc"
  | Slow_log _ -> "slow_log"
  | Metrics_history _ -> "metrics_history"

let request_session = function
  | Hello _ -> None
  | Enable_crc _ -> None (* link-level: negotiated before any session exists *)
  | Open_segment { session; _ }
  | Segment_meta { session; _ }
  | Read_lock { session; _ }
  | Read_release { session; _ }
  | Write_lock { session; _ }
  | Write_release { session; _ }
  | Register_desc { session; _ }
  | Get_version { session; _ }
  | Checkpoint { session }
  | Stat { session; _ }
  | Subscribe { session; _ }
  | Unsubscribe { session; _ }
  | Server_stats { session }
  | Segment_stats { session; _ }
  | Flight_recorder { session }
  | Resume_session { session; _ }
  | Slow_log { session; _ }
  | Metrics_history { session; _ } -> Some session

type stat = {
  st_version : int;
  st_blocks : int;
  st_total_units : int;
  st_diff_cache_hits : int;
  st_diff_cache_misses : int;
}

type response =
  | R_hello of { session : int }
  | R_segment of { version : int }
  | R_meta of {
      version : int;
      descs : (int * Iw_types.desc) list;
      blocks : meta_block list;
    }
  | R_up_to_date
  | R_update of Iw_wire.Diff.t
  | R_granted of Iw_wire.Diff.t option
  | R_busy
  | R_version of int
  | R_serial of int
  | R_stat of stat
  | R_ok
  | R_error of string
  | R_server_stats of Iw_metrics.snapshot
  | R_segment_stats of Iw_metrics.snapshot
  | R_flight of string
  | R_resumed of { held : string list }
  | R_slow_log of Iw_slowlog.entry list
  | R_metrics_history of Iw_ring.point list

module Buf = Iw_wire.Buf
module Reader = Iw_wire.Reader

(* Trace context: the envelope fields a client attaches so the server's
   dispatch span can join the client's timeline.  Identifiers come from
   Iw_trace.next_id and fit u64; the seq is per-link and lets R_busy/error
   replies be correlated back to the request that drew them. *)
type trace_ctx = {
  tc_trace_id : int;
  tc_span_id : int;
  tc_seq : int;
}

(* The envelope marker is far above the request tag space (0..15), so a
   first byte tells bare request (old clients) from envelope (new clients)
   and old servers reject enveloped traffic loudly as an unknown tag rather
   than misparsing it. *)
let envelope_magic = 0xe7

let proto_version = 1

let feature_trace_ctx = 0x01

let known_features = feature_trace_ctx

(* Metric snapshots travel in the same wire format as everything else so
   iw-admin can read a remote server's registry. *)
let put_snapshot buf (snap : Iw_metrics.snapshot) =
  Buf.u32 buf (List.length snap);
  List.iter
    (fun (s : Iw_metrics.sample) ->
      Buf.string buf s.s_name;
      Buf.string buf s.s_help;
      match s.s_value with
      | Iw_metrics.V_counter v ->
        Buf.u8 buf 0;
        Buf.f64 buf v
      | Iw_metrics.V_gauge v ->
        Buf.u8 buf 1;
        Buf.f64 buf v
      | Iw_metrics.V_hist hv ->
        Buf.u8 buf 2;
        Buf.string buf hv.hv_unit;
        Buf.u16 buf (Array.length hv.hv_bounds);
        Array.iter (Buf.f64 buf) hv.hv_bounds;
        Array.iter (Buf.u32 buf) hv.hv_counts;
        Buf.u32 buf hv.hv_count;
        Buf.f64 buf hv.hv_sum)
    snap

let get_snapshot r : Iw_metrics.snapshot =
  let n = Reader.u32 r in
  List.init n (fun _ ->
      let s_name = Reader.string r in
      let s_help = Reader.string r in
      let s_value =
        match Reader.u8 r with
        | 0 -> Iw_metrics.V_counter (Reader.f64 r)
        | 1 -> Iw_metrics.V_gauge (Reader.f64 r)
        | 2 ->
          let hv_unit = Reader.string r in
          let nbounds = Reader.u16 r in
          let hv_bounds = Array.init nbounds (fun _ -> Reader.f64 r) in
          let hv_counts = Array.init (nbounds + 1) (fun _ -> Reader.u32 r) in
          let hv_count = Reader.u32 r in
          let hv_sum = Reader.f64 r in
          Iw_metrics.V_hist { hv_unit; hv_bounds; hv_counts; hv_count; hv_sum }
        | t -> raise (Iw_wire.Malformed (Printf.sprintf "unknown sample tag %d" t))
      in
      { Iw_metrics.s_name; s_help; s_value })

let put_coherence buf = function
  | Full -> Buf.u8 buf 0
  | Delta x ->
    Buf.u8 buf 1;
    Buf.u32 buf x
  | Temporal x ->
    Buf.u8 buf 2;
    Buf.f64 buf x
  | Diff_pct x ->
    Buf.u8 buf 3;
    Buf.f64 buf x

let get_coherence r =
  match Reader.u8 r with
  | 0 -> Full
  | 1 -> Delta (Reader.u32 r)
  | 2 -> Temporal (Reader.f64 r)
  | 3 -> Diff_pct (Reader.f64 r)
  | t -> raise (Iw_wire.Malformed (Printf.sprintf "unknown coherence tag %d" t))

let encode_request buf = function
  | Hello { arch } ->
    Buf.u8 buf 0;
    Buf.string buf arch
  | Open_segment { session; name; create } ->
    Buf.u8 buf 1;
    Buf.u32 buf session;
    Buf.string buf name;
    Buf.u8 buf (if create then 1 else 0)
  | Segment_meta { session; name } ->
    Buf.u8 buf 2;
    Buf.u32 buf session;
    Buf.string buf name
  | Read_lock { session; name; version; coherence } ->
    Buf.u8 buf 3;
    Buf.u32 buf session;
    Buf.string buf name;
    Buf.u32 buf version;
    put_coherence buf coherence
  | Read_release { session; name } ->
    Buf.u8 buf 4;
    Buf.u32 buf session;
    Buf.string buf name
  | Write_lock { session; name; version } ->
    Buf.u8 buf 5;
    Buf.u32 buf session;
    Buf.string buf name;
    Buf.u32 buf version
  | Write_release { session; name; diff } ->
    Buf.u8 buf 6;
    Buf.u32 buf session;
    Buf.string buf name;
    Iw_wire.Diff.encode buf diff
  | Register_desc { session; name; desc } ->
    Buf.u8 buf 7;
    Buf.u32 buf session;
    Buf.string buf name;
    Iw_wire.put_desc buf desc
  | Get_version { session; name } ->
    Buf.u8 buf 8;
    Buf.u32 buf session;
    Buf.string buf name
  | Checkpoint { session } ->
    Buf.u8 buf 9;
    Buf.u32 buf session
  | Stat { session; name } ->
    Buf.u8 buf 10;
    Buf.u32 buf session;
    Buf.string buf name
  | Subscribe { session; name } ->
    Buf.u8 buf 11;
    Buf.u32 buf session;
    Buf.string buf name
  | Unsubscribe { session; name } ->
    Buf.u8 buf 12;
    Buf.u32 buf session;
    Buf.string buf name
  | Server_stats { session } ->
    Buf.u8 buf 13;
    Buf.u32 buf session
  | Segment_stats { session; segment } ->
    Buf.u8 buf 14;
    Buf.u32 buf session;
    (match segment with
    | None -> Buf.u8 buf 0
    | Some s ->
      Buf.u8 buf 1;
      Buf.string buf s)
  | Flight_recorder { session } ->
    Buf.u8 buf 15;
    Buf.u32 buf session
  | Resume_session { session; arch } ->
    Buf.u8 buf 16;
    Buf.u32 buf session;
    Buf.string buf arch
  | Enable_crc { session } ->
    Buf.u8 buf 17;
    Buf.u32 buf session
  | Slow_log { session; limit } ->
    Buf.u8 buf 18;
    Buf.u32 buf session;
    Buf.u32 buf limit
  | Metrics_history { session; limit } ->
    Buf.u8 buf 19;
    Buf.u32 buf session;
    Buf.u32 buf limit

let decode_request r =
  match Reader.u8 r with
  | 0 -> Hello { arch = Reader.string r }
  | 1 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    let create = Reader.u8 r = 1 in
    Open_segment { session; name; create }
  | 2 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Segment_meta { session; name }
  | 3 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    let version = Reader.u32 r in
    let coherence = get_coherence r in
    Read_lock { session; name; version; coherence }
  | 4 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Read_release { session; name }
  | 5 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    let version = Reader.u32 r in
    Write_lock { session; name; version }
  | 6 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    let diff = Iw_wire.Diff.decode r in
    Write_release { session; name; diff }
  | 7 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    let desc = Iw_wire.get_desc r in
    Register_desc { session; name; desc }
  | 8 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Get_version { session; name }
  | 9 -> Checkpoint { session = Reader.u32 r }
  | 10 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Stat { session; name }
  | 11 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Subscribe { session; name }
  | 12 ->
    let session = Reader.u32 r in
    let name = Reader.string r in
    Unsubscribe { session; name }
  | 13 -> Server_stats { session = Reader.u32 r }
  | 14 ->
    let session = Reader.u32 r in
    let segment = if Reader.u8 r = 1 then Some (Reader.string r) else None in
    Segment_stats { session; segment }
  | 15 -> Flight_recorder { session = Reader.u32 r }
  | 16 ->
    let session = Reader.u32 r in
    let arch = Reader.string r in
    Resume_session { session; arch }
  | 17 -> Enable_crc { session = Reader.u32 r }
  | 18 ->
    let session = Reader.u32 r in
    let limit = Reader.u32 r in
    Slow_log { session; limit }
  | 19 ->
    let session = Reader.u32 r in
    let limit = Reader.u32 r in
    Metrics_history { session; limit }
  | t -> raise (Iw_wire.Malformed (Printf.sprintf "unknown request tag %d" t))

let put_ctx buf ctx =
  Buf.u64 buf ctx.tc_trace_id;
  Buf.u64 buf ctx.tc_span_id;
  Buf.u32 buf ctx.tc_seq

let get_ctx r =
  let tc_trace_id = Reader.u64 r in
  let tc_span_id = Reader.u64 r in
  let tc_seq = Reader.u32 r in
  { tc_trace_id; tc_span_id; tc_seq }

let encode_request_env buf ?ctx req =
  (match ctx with
  | None -> ()
  | Some c ->
    Buf.u8 buf envelope_magic;
    Buf.u8 buf proto_version;
    Buf.u8 buf feature_trace_ctx;
    put_ctx buf c);
  encode_request buf req

(* Consumes an envelope header if one is present, leaving the reader at the
   request body either way.  Kept separate from {!decode_request} so a
   server that fails to decode the body can still recover the seq for its
   error reply and flight-recorder entry. *)
let decode_envelope r =
  if Reader.remaining r > 0 && Reader.peek_u8 r = envelope_magic then begin
    Reader.skip r 1;
    let v = Reader.u8 r in
    if v <> proto_version then
      raise (Iw_wire.Malformed (Printf.sprintf "unsupported proto version %d" v));
    let feats = Reader.u8 r in
    if feats land lnot known_features <> 0 then
      raise (Iw_wire.Malformed (Printf.sprintf "unknown envelope features 0x%x" feats));
    if feats land feature_trace_ctx <> 0 then Some (get_ctx r) else None
  end
  else None

let decode_request_env r =
  let ctx = decode_envelope r in
  (ctx, decode_request r)

let encode_response buf = function
  | R_hello { session } ->
    Buf.u8 buf 0;
    Buf.u32 buf session
  | R_segment { version } ->
    Buf.u8 buf 1;
    Buf.u32 buf version
  | R_meta { version; descs; blocks } ->
    Buf.u8 buf 2;
    Buf.u32 buf version;
    Buf.u16 buf (List.length descs);
    List.iter
      (fun (serial, d) ->
        Buf.u32 buf serial;
        Iw_wire.put_desc buf d)
      descs;
    Buf.u32 buf (List.length blocks);
    List.iter
      (fun mb ->
        Buf.u32 buf mb.mb_serial;
        (match mb.mb_name with
        | None -> Buf.u8 buf 0
        | Some n ->
          Buf.u8 buf 1;
          Buf.string buf n);
        Buf.u32 buf mb.mb_desc_serial)
      blocks
  | R_up_to_date -> Buf.u8 buf 3
  | R_update diff ->
    Buf.u8 buf 4;
    Iw_wire.Diff.encode buf diff
  | R_granted None -> Buf.u8 buf 5
  | R_granted (Some diff) ->
    Buf.u8 buf 6;
    Iw_wire.Diff.encode buf diff
  | R_busy -> Buf.u8 buf 7
  | R_version v ->
    Buf.u8 buf 8;
    Buf.u32 buf v
  | R_serial s ->
    Buf.u8 buf 9;
    Buf.u32 buf s
  | R_stat st ->
    Buf.u8 buf 10;
    Buf.u32 buf st.st_version;
    Buf.u32 buf st.st_blocks;
    Buf.u32 buf st.st_total_units;
    Buf.u32 buf st.st_diff_cache_hits;
    Buf.u32 buf st.st_diff_cache_misses
  | R_ok -> Buf.u8 buf 11
  | R_error msg ->
    Buf.u8 buf 12;
    Buf.string buf msg
  | R_server_stats snap ->
    Buf.u8 buf 13;
    put_snapshot buf snap
  | R_segment_stats snap ->
    Buf.u8 buf 14;
    put_snapshot buf snap
  | R_flight json ->
    Buf.u8 buf 15;
    Buf.lstring buf json
  | R_resumed { held } ->
    Buf.u8 buf 16;
    Buf.u32 buf (List.length held);
    List.iter (Buf.string buf) held
  | R_slow_log entries ->
    Buf.u8 buf 17;
    Buf.u32 buf (List.length entries);
    List.iter
      (fun (e : Iw_slowlog.entry) ->
        Buf.f64 buf e.e_t;
        Buf.string buf e.e_variant;
        Buf.string buf e.e_segment;
        Buf.u32 buf e.e_session;
        Buf.u32 buf e.e_seq;
        Buf.u64 buf e.e_trace_id;
        Buf.u64 buf e.e_span_id;
        Buf.f64 buf e.e_latency_us;
        Buf.f64 buf e.e_wait_us;
        Buf.f64 buf e.e_service_us;
        Buf.f64 buf e.e_wal_us)
      entries
  | R_metrics_history points ->
    Buf.u8 buf 18;
    Buf.u32 buf (List.length points);
    List.iter
      (fun (p : Iw_ring.point) ->
        Buf.f64 buf p.p_t;
        Buf.f64 buf p.p_dur;
        Buf.u32 buf (List.length p.p_values);
        List.iter
          (fun (k, v) ->
            Buf.string buf k;
            Buf.f64 buf v)
          p.p_values)
      points

let decode_response r =
  match Reader.u8 r with
  | 0 -> R_hello { session = Reader.u32 r }
  | 1 -> R_segment { version = Reader.u32 r }
  | 2 ->
    let version = Reader.u32 r in
    let ndescs = Reader.u16 r in
    let descs =
      List.init ndescs (fun _ ->
          let serial = Reader.u32 r in
          (serial, Iw_wire.get_desc r))
    in
    let nblocks = Reader.u32 r in
    let blocks =
      List.init nblocks (fun _ ->
          let mb_serial = Reader.u32 r in
          let mb_name = if Reader.u8 r = 1 then Some (Reader.string r) else None in
          let mb_desc_serial = Reader.u32 r in
          { mb_serial; mb_name; mb_desc_serial })
    in
    R_meta { version; descs; blocks }
  | 3 -> R_up_to_date
  | 4 -> R_update (Iw_wire.Diff.decode r)
  | 5 -> R_granted None
  | 6 -> R_granted (Some (Iw_wire.Diff.decode r))
  | 7 -> R_busy
  | 8 -> R_version (Reader.u32 r)
  | 9 -> R_serial (Reader.u32 r)
  | 10 ->
    let st_version = Reader.u32 r in
    let st_blocks = Reader.u32 r in
    let st_total_units = Reader.u32 r in
    let st_diff_cache_hits = Reader.u32 r in
    let st_diff_cache_misses = Reader.u32 r in
    R_stat { st_version; st_blocks; st_total_units; st_diff_cache_hits; st_diff_cache_misses }
  | 11 -> R_ok
  | 12 -> R_error (Reader.string r)
  | 13 -> R_server_stats (get_snapshot r)
  | 14 -> R_segment_stats (get_snapshot r)
  | 15 -> R_flight (Reader.lstring r)
  | 16 ->
    let n = Reader.u32 r in
    R_resumed { held = List.init n (fun _ -> Reader.string r) }
  | 17 ->
    let n = Reader.u32 r in
    R_slow_log
      (List.init n (fun _ ->
           let e_t = Reader.f64 r in
           let e_variant = Reader.string r in
           let e_segment = Reader.string r in
           let e_session = Reader.u32 r in
           let e_seq = Reader.u32 r in
           let e_trace_id = Reader.u64 r in
           let e_span_id = Reader.u64 r in
           let e_latency_us = Reader.f64 r in
           let e_wait_us = Reader.f64 r in
           let e_service_us = Reader.f64 r in
           let e_wal_us = Reader.f64 r in
           {
             Iw_slowlog.e_t;
             e_variant;
             e_segment;
             e_session;
             e_seq;
             e_trace_id;
             e_span_id;
             e_latency_us;
             e_wait_us;
             e_service_us;
             e_wal_us;
           }))
  | 18 ->
    let n = Reader.u32 r in
    R_metrics_history
      (List.init n (fun _ ->
           let p_t = Reader.f64 r in
           let p_dur = Reader.f64 r in
           let nv = Reader.u32 r in
           let p_values =
             List.init nv (fun _ ->
                 let k = Reader.string r in
                 let v = Reader.f64 r in
                 (k, v))
           in
           { Iw_ring.p_t; p_dur; p_values }))
  | t -> raise (Iw_wire.Malformed (Printf.sprintf "unknown response tag %d" t))

type link = {
  call : ?ctx:trace_ctx -> request -> response;
  close : unit -> unit;
  description : string;
}

let framed_link ?on_io ~send ~recv ~close ~description () =
  let call ?ctx req =
    let buf = Buf.create () in
    encode_request_env buf ?ctx req;
    let frame = Buf.contents buf in
    (match on_io with
    | None -> ()
    | Some f -> f ~dir:`Sent (String.length frame));
    send frame;
    let reply = recv () in
    (match on_io with
    | None -> ()
    | Some f -> f ~dir:`Received (String.length reply));
    decode_response (Reader.of_string reply)
  in
  { call; close; description }

type notification = {
  n_segment : string;
  n_version : int;
}

(* A tag-2 frame prefixes the response with the request's seq, echoed only
   when the request carried a trace context — old clients never see one. *)
let response_frame ?seq resp =
  let buf = Buf.create () in
  (match seq with
  | None -> Buf.u8 buf 0
  | Some s ->
    Buf.u8 buf 2;
    Buf.u32 buf s);
  encode_response buf resp;
  Buf.contents buf

let notification_frame n =
  let buf = Buf.create () in
  Buf.u8 buf 1;
  Buf.string buf n.n_segment;
  Buf.u32 buf n.n_version;
  Buf.contents buf

let demux_link ?on_io ?call_timeout conn ~on_notify =
  (* One receiver thread reads every frame: notifications are dispatched
     immediately (so a staleness flag is never left sitting in a socket
     buffer), responses are handed to the single outstanding caller. *)
  let m = Mutex.create () in
  let c = Condition.create () in
  let finished = ref false in
  let dead = ref false in
  let pending : (response, exn) result Queue.t = Queue.create () in
  let push r =
    Mutex.lock m;
    Queue.push r pending;
    Condition.signal c;
    Mutex.unlock m
  in
  let receiver () =
    let rec loop () =
      let frame = conn.Iw_transport.recv () in
      (match on_io with
      | None -> ()
      | Some f -> f ~dir:`Received (String.length frame));
      let r = Reader.of_string frame in
      (match Reader.u8 r with
      | 0 -> push (Ok (decode_response r))
      | 1 ->
        let n_segment = Reader.string r in
        let n_version = Reader.u32 r in
        on_notify { n_segment; n_version }
      | 2 ->
        let seq = Reader.u32 r in
        let resp = decode_response r in
        (* Busy/error outcomes are the ones worth correlating in a log or
           trace; normal replies would just double the event volume. *)
        (match resp with
        | R_busy | R_error _ ->
          if Iw_trace.enabled () then
            Iw_trace.instant
              ~args:
                [
                  ("seq", string_of_int seq);
                  ("reply", (match resp with R_busy -> "busy" | _ -> "error"));
                ]
              "client.reply_seq"
        | _ -> ());
        push (Ok resp)
      | t -> push (Error (Iw_wire.Malformed (Printf.sprintf "unknown frame tag %d" t))));
      loop ()
    in
    (try loop ()
     with
    | Iw_transport.Closed | Iw_wire.Malformed _ -> push (Error Iw_transport.Closed)
    | Iw_transport.Corrupt _ as e ->
      (* Surface the corruption to the caller (the client's retry path
         treats it as transient and re-dials) rather than masking it as a
         plain close. *)
      push (Error e));
    Mutex.lock m;
    finished := true;
    Condition.broadcast c;
    Mutex.unlock m;
    (* Only the receiver releases the descriptor: releasing it from another
       thread could let the OS reuse the number while this thread still
       reads from it. *)
    conn.Iw_transport.close ()
  in
  ignore (Thread.create receiver () : Thread.t);
  (* [Condition] has no timed wait, so deadlines need a ticker thread that
     periodically wakes the (single) waiting caller to re-check the clock.
     Only spawned when a deadline is armed; exits with the receiver. *)
  (match call_timeout with
  | None -> ()
  | Some _ ->
    let tick () =
      while not !finished do
        Thread.delay 0.025;
        Mutex.lock m;
        Condition.broadcast c;
        Mutex.unlock m
      done
    in
    ignore (Thread.create tick () : Thread.t));
  let call ?ctx req =
    if !dead then raise Iw_transport.Closed;
    let buf = Buf.create () in
    encode_request_env buf ?ctx req;
    let frame = Buf.contents buf in
    (match on_io with
    | None -> ()
    | Some f -> f ~dir:`Sent (String.length frame));
    conn.Iw_transport.send frame;
    let deadline =
      match call_timeout with
      | None -> None
      | Some d -> Some (Unix.gettimeofday () +. d)
    in
    Mutex.lock m;
    let rec wait () =
      if not (Queue.is_empty pending) then Queue.pop pending
      else begin
        (match deadline with
        | Some dl when Unix.gettimeofday () >= dl ->
          Mutex.unlock m;
          (* Desynchronized: a reply arriving now would pair with the next
             request.  Mark the link dead and shut the connection down; the
             receiver will push [Closed] for any still-blocked caller. *)
          dead := true;
          conn.Iw_transport.shutdown ();
          raise Iw_transport.Timeout
        | _ -> ());
        Condition.wait c m;
        wait ()
      end
    in
    let r = wait () in
    Mutex.unlock m;
    match r with Ok resp -> resp | Error e -> raise e
  in
  {
    call;
    close = conn.Iw_transport.shutdown;
    description = "demux:" ^ conn.Iw_transport.peer;
  }
