(** Client–server protocol.

    All communication between an InterWeave client library and a segment's
    server uses these messages, encoded in wire format.  The same messages
    flow over an in-process direct link, a loopback queue pair, or a TCP
    connection — the transport is invisible to both sides. *)

(** Relaxed coherence models (paper, Sections 2.2 and 3.2).  [Full] always
    fetches the current version when stale at all; [Delta x] tolerates being
    up to [x] versions out of date; [Temporal x] up to [x] seconds (enforced
    client-side with a per-segment timestamp); [Diff_pct x] tolerates up to
    [x] percent of the segment's primitive data being out of date (enforced
    by the server's conservative modification counter). *)
type coherence =
  | Full
  | Delta of int
  | Temporal of float
  | Diff_pct of float

val pp_coherence : Format.formatter -> coherence -> unit

type meta_block = {
  mb_serial : int;
  mb_name : string option;
  mb_desc_serial : int;
}

type request =
  | Hello of { arch : string }
  | Open_segment of {
      session : int;
      name : string;
      create : bool;
    }
  | Segment_meta of {
      session : int;
      name : string;
    }  (** block table without payload — backs reserve-space for MIPs *)
  | Read_lock of {
      session : int;
      name : string;
      version : int;  (** version cached at the client; 0 = nothing cached *)
      coherence : coherence;
    }
  | Read_release of {
      session : int;
      name : string;
    }
  | Write_lock of {
      session : int;
      name : string;
      version : int;
    }
  | Write_release of {
      session : int;
      name : string;
      diff : Iw_wire.Diff.t;
    }
  | Register_desc of {
      session : int;
      name : string;
      desc : Iw_types.desc;
    }
  | Get_version of {
      session : int;
      name : string;
    }
  | Checkpoint of { session : int }
  | Stat of {
      session : int;
      name : string;
    }
  | Subscribe of {
      session : int;
      name : string;
    }  (** ask for change notifications on the segment (paper, Section 2.2) *)
  | Unsubscribe of {
      session : int;
      name : string;
    }
  | Server_stats of { session : int }
      (** fetch the server's live metric snapshot — backs [iw-admin stats] *)
  | Segment_stats of {
      session : int;
      segment : string option;  (** [None] = every segment *)
    }
      (** fetch only per-segment coherence series (version lag, staleness,
          diff savings, wasted acquires, write-lock wait) — backs
          [iw-admin segstats] *)
  | Flight_recorder of { session : int }
      (** fetch the server's flight-recorder ring as rendered JSON — backs
          [iw-admin flight] *)
  | Resume_session of {
      session : int;
      arch : string;
    }
      (** re-attach a previous session after a reconnect.  A server that
          still knows the session answers {!R_resumed} listing the segments
          whose write lock the session holds (non-empty only when the
          server runs with an inactivity lease — without one, locks were
          released when the old connection died); an unknown session gets
          [R_error] and the client falls back to a fresh [Hello]. *)
  | Enable_crc of { session : int }
      (** negotiate frame-level CRC-32 (see {!Iw_transport.crc_conn}).  Sent
          first on a fresh connection with [session = 0] — it is link-level,
          not session-level.  A server that understands it answers [R_ok]
          and CRC-protects every frame it sends from then on; the client
          does the same on seeing [R_ok].  An old server rejects the
          unknown tag with [R_error], and the link stays unprotected —
          that asymmetry is the whole negotiation. *)
  | Slow_log of {
      session : int;
      limit : int;
    }
      (** fetch the server's sampled slow-request log (the K slowest
          requests of the recent windows, slowest first, at most [limit]
          entries) — backs [iw-admin slowlog].  See {!Iw_slowlog}. *)
  | Metrics_history of {
      session : int;
      limit : int;  (** newest [limit] points; [0] = everything retained *)
    }
      (** fetch the server's metric history ring (windowed snapshots of
          derived scalar series, oldest first) — backs the sparkline trend
          columns of [iw-admin top] and [iw-admin contention].  See
          {!Iw_ring}. *)

val request_variant : request -> string
(** Stable lowercase tag for a request ([read_lock], [write_release], ...),
    used as a metric label. *)

val request_session : request -> int option
(** The session a request belongs to ([None] for [Hello], which creates
    one).  Servers use it to refresh per-session inactivity leases. *)

type stat = {
  st_version : int;
  st_blocks : int;
  st_total_units : int;
  st_diff_cache_hits : int;
  st_diff_cache_misses : int;
}

type response =
  | R_hello of { session : int }
  | R_segment of { version : int }
  | R_meta of {
      version : int;
      descs : (int * Iw_types.desc) list;
      blocks : meta_block list;
    }
  | R_up_to_date
  | R_update of Iw_wire.Diff.t
  | R_granted of Iw_wire.Diff.t option
  | R_busy  (** segment write lock held by another session *)
  | R_version of int
  | R_serial of int
  | R_stat of stat
  | R_ok
  | R_error of string
  | R_server_stats of Iw_metrics.snapshot
  | R_segment_stats of Iw_metrics.snapshot
  | R_flight of string  (** flight-recorder ring, rendered as JSON *)
  | R_resumed of { held : string list }
      (** session re-attached; [held] lists segments whose write lock the
          session still holds *)
  | R_slow_log of Iw_slowlog.entry list
      (** slow-request log entries, slowest first; trace/span ids are [0]
          when the recorded request carried no trace-context envelope *)
  | R_metrics_history of Iw_ring.point list
      (** metric history ring points, oldest first *)

val encode_request : Iw_wire.Buf.t -> request -> unit

val decode_request : Iw_wire.Reader.t -> request

val encode_response : Iw_wire.Buf.t -> response -> unit

val decode_response : Iw_wire.Reader.t -> response

(** {1 Trace-context envelope}

    A request may be wrapped in an envelope carrying the caller's trace
    context, so the server's dispatch span lands in the same Perfetto
    timeline as the client span that issued the request.  On the wire the
    envelope is [0xE7] (a marker outside the request tag space), a protocol
    version byte, a feature bitmap, then the feature payloads; a bare
    request (first byte = its tag) remains valid, which is the whole
    backward-compatibility story: old clients send bare requests, old
    servers reject enveloped ones as an unknown tag. *)

type trace_ctx = {
  tc_trace_id : int;  (** u64; same for every span of one logical operation *)
  tc_span_id : int;  (** u64; the client span issuing this request *)
  tc_seq : int;  (** u32; per-link request counter, echoed on replies *)
}

val envelope_magic : int
(** First byte of an enveloped request ([0xE7]), outside the request tag
    space. *)

val proto_version : int
(** Envelope version this library speaks (1).  A decoder rejects any
    other. *)

val feature_trace_ctx : int
(** Envelope feature bit: a {!trace_ctx} follows the header.  Unknown bits
    are rejected rather than skipped — payload lengths would be unknown. *)

val encode_request_env : Iw_wire.Buf.t -> ?ctx:trace_ctx -> request -> unit
(** Like {!encode_request}, with the envelope prepended when [ctx] is
    given.  [?ctx:None] encodes a bare request, byte-identical to the old
    wire format. *)

val decode_envelope : Iw_wire.Reader.t -> trace_ctx option
(** Consume an envelope header if the input starts with one, leaving the
    reader at the request body either way.  Exposed separately from
    {!decode_request_env} so a server can keep the context (notably the
    seq) when the body fails to decode. *)

val decode_request_env : Iw_wire.Reader.t -> trace_ctx option * request
(** [decode_envelope] then [decode_request]. *)

(** A link is the client's view of one server, however reached.  [call]
    attaches [ctx] as a request envelope when given (transports that cannot
    carry it simply ignore it). *)
type link = {
  call : ?ctx:trace_ctx -> request -> response;
  close : unit -> unit;
  description : string;
}

val framed_link :
  ?on_io:(dir:[ `Sent | `Received ] -> int -> unit) ->
  send:(string -> unit) ->
  recv:(unit -> string) ->
  close:(unit -> unit) ->
  description:string ->
  unit ->
  link
(** Build a link that serializes each request and parses each response over a
    framed byte transport carrying nothing but request/response pairs.
    [on_io] observes each frame's payload size in bytes as it crosses the
    link (framing overhead such as a TCP length prefix is not included). *)

(** {1 Server-push notifications}

    The adaptive polling/notification protocol (paper, Section 2.2) lets the
    client library avoid communication when updates are not required: a
    subscribed client is told when a segment changes and can otherwise treat
    its cached copy as current.  Notifications share the connection with
    responses, so frames are tagged; {!demux_link} runs a receiver thread
    that dispatches notifications and hands responses to the caller. *)

type notification = {
  n_segment : string;
  n_version : int;
}

val response_frame : ?seq:int -> response -> string
(** Tag-0 frame carrying a response (what {!demux_link} expects).  With
    [seq], a tag-2 frame that prefixes the response with the originating
    request's seq; servers echo it only when the request carried a trace
    context, so clients that never send envelopes never see tag 2. *)

val notification_frame : notification -> string
(** Tag-1 frame carrying a notification. *)

val demux_link :
  ?on_io:(dir:[ `Sent | `Received ] -> int -> unit) ->
  ?call_timeout:float ->
  Iw_transport.conn ->
  on_notify:(notification -> unit) ->
  link
(** A link over a tagged framed connection.  [on_notify] runs on the receiver
    thread and must only perform cheap, thread-safe work (the client library
    sets a staleness flag).  At most one outstanding [call] at a time.
    [on_io] observes frame payload sizes; received bytes include
    notification frames and are reported from the receiver thread.

    With [call_timeout] (seconds), a [call] that receives no response in
    time shuts the connection down and raises {!Iw_transport.Timeout}: once
    a response has been missed the link is desynchronized, so the whole
    connection — not just the one call — is abandoned, and every later
    [call] on this link raises {!Iw_transport.Closed}.  Recovery means
    re-dialing (see [Iw_client.set_reconnect]).  Granularity is ~25 ms. *)
