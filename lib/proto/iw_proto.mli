(** Client–server protocol.

    All communication between an InterWeave client library and a segment's
    server uses these messages, encoded in wire format.  The same messages
    flow over an in-process direct link, a loopback queue pair, or a TCP
    connection — the transport is invisible to both sides. *)

(** Relaxed coherence models (paper, Sections 2.2 and 3.2).  [Full] always
    fetches the current version when stale at all; [Delta x] tolerates being
    up to [x] versions out of date; [Temporal x] up to [x] seconds (enforced
    client-side with a per-segment timestamp); [Diff_pct x] tolerates up to
    [x] percent of the segment's primitive data being out of date (enforced
    by the server's conservative modification counter). *)
type coherence =
  | Full
  | Delta of int
  | Temporal of float
  | Diff_pct of float

val pp_coherence : Format.formatter -> coherence -> unit

type meta_block = {
  mb_serial : int;
  mb_name : string option;
  mb_desc_serial : int;
}

type request =
  | Hello of { arch : string }
  | Open_segment of {
      session : int;
      name : string;
      create : bool;
    }
  | Segment_meta of {
      session : int;
      name : string;
    }  (** block table without payload — backs reserve-space for MIPs *)
  | Read_lock of {
      session : int;
      name : string;
      version : int;  (** version cached at the client; 0 = nothing cached *)
      coherence : coherence;
    }
  | Read_release of {
      session : int;
      name : string;
    }
  | Write_lock of {
      session : int;
      name : string;
      version : int;
    }
  | Write_release of {
      session : int;
      name : string;
      diff : Iw_wire.Diff.t;
    }
  | Register_desc of {
      session : int;
      name : string;
      desc : Iw_types.desc;
    }
  | Get_version of {
      session : int;
      name : string;
    }
  | Checkpoint of { session : int }
  | Stat of {
      session : int;
      name : string;
    }
  | Subscribe of {
      session : int;
      name : string;
    }  (** ask for change notifications on the segment (paper, Section 2.2) *)
  | Unsubscribe of {
      session : int;
      name : string;
    }
  | Server_stats of { session : int }
      (** fetch the server's live metric snapshot — backs [iw-admin stats] *)

val request_variant : request -> string
(** Stable lowercase tag for a request ([read_lock], [write_release], ...),
    used as a metric label. *)

type stat = {
  st_version : int;
  st_blocks : int;
  st_total_units : int;
  st_diff_cache_hits : int;
  st_diff_cache_misses : int;
}

type response =
  | R_hello of { session : int }
  | R_segment of { version : int }
  | R_meta of {
      version : int;
      descs : (int * Iw_types.desc) list;
      blocks : meta_block list;
    }
  | R_up_to_date
  | R_update of Iw_wire.Diff.t
  | R_granted of Iw_wire.Diff.t option
  | R_busy  (** segment write lock held by another session *)
  | R_version of int
  | R_serial of int
  | R_stat of stat
  | R_ok
  | R_error of string
  | R_server_stats of Iw_metrics.snapshot

val encode_request : Iw_wire.Buf.t -> request -> unit

val decode_request : Iw_wire.Reader.t -> request

val encode_response : Iw_wire.Buf.t -> response -> unit

val decode_response : Iw_wire.Reader.t -> response

(** A link is the client's view of one server, however reached. *)
type link = {
  call : request -> response;
  close : unit -> unit;
  description : string;
}

val framed_link :
  ?on_io:(dir:[ `Sent | `Received ] -> int -> unit) ->
  send:(string -> unit) ->
  recv:(unit -> string) ->
  close:(unit -> unit) ->
  description:string ->
  unit ->
  link
(** Build a link that serializes each request and parses each response over a
    framed byte transport carrying nothing but request/response pairs.
    [on_io] observes each frame's payload size in bytes as it crosses the
    link (framing overhead such as a TCP length prefix is not included). *)

(** {1 Server-push notifications}

    The adaptive polling/notification protocol (paper, Section 2.2) lets the
    client library avoid communication when updates are not required: a
    subscribed client is told when a segment changes and can otherwise treat
    its cached copy as current.  Notifications share the connection with
    responses, so frames are tagged; {!demux_link} runs a receiver thread
    that dispatches notifications and hands responses to the caller. *)

type notification = {
  n_segment : string;
  n_version : int;
}

val response_frame : response -> string
(** Tag-0 frame carrying a response (what {!demux_link} expects). *)

val notification_frame : notification -> string
(** Tag-1 frame carrying a notification. *)

val demux_link :
  ?on_io:(dir:[ `Sent | `Received ] -> int -> unit) ->
  Iw_transport.conn ->
  on_notify:(notification -> unit) ->
  link
(** A link over a tagged framed connection.  [on_notify] runs on the receiver
    thread and must only perform cheap, thread-safe work (the client library
    sets a staleness flag).  At most one outstanding [call] at a time.
    [on_io] observes frame payload sizes; received bytes include
    notification frames and are reported from the receiver thread. *)
