(** Framed byte transports.

    A connection carries length-prefixed frames in both directions.  Two
    implementations: an in-process loopback (a pair of thread-safe queues,
    used by tests and benchmarks) and TCP (used by the standalone server). *)

type conn = {
  send : string -> unit;
  recv : unit -> string;  (** blocks until a frame arrives *)
  shutdown : unit -> unit;
      (** stop the conversation: blocked [recv]s (on any thread) raise
          {!Closed}, but the descriptor stays valid until [close].  Call this
          — not [close] — from a thread other than the receiver, or the
          descriptor number could be reused while the receiver still reads
          from it. *)
  close : unit -> unit;  (** release the descriptor; implies [shutdown] *)
  peer : string;
}

exception Closed

exception Timeout
(** Raised by a deadline-armed call (see {!Iw_proto.demux_link}) when no
    response arrived in time.  The link is desynchronized at that point — a
    late reply could pair with the next request — so the raiser shuts the
    connection down first; recovery means re-dialing. *)

exception Connect_failed of string
(** {!tcp_connect} failed before a connection existed: name resolution
    failure or a connect error (refused, unreachable, ...).  Distinct from
    {!Closed}, which means an established connection died. *)

exception Corrupt of string
(** A received frame failed its CRC check (or arrived unprotected after CRC
    framing was negotiated).  The frame's content cannot be trusted, so the
    link must be abandoned; clients treat this like {!Closed} and re-dial. *)

val metrics : unit -> Iw_metrics.t
(** The process-global transport registry: frame and byte counters per
    direction, a frame-size histogram, and a blocked-receive latency
    histogram, accumulated across every connection in the process.  Enabled
    by default; [IW_METRICS=0] (or ["" ]) disables it at startup, and
    {!Iw_metrics.set_enabled} toggles it at runtime. *)

(** {1 Frame checksums}

    An end-to-end CRC-32 over every frame, layered above the byte framing so
    it works identically over TCP and the loopback.  A protected frame is
    self-describing (marker byte [0xC3] + big-endian CRC + payload), which
    lets both framings coexist on one connection: each side sends plain
    frames until the protocol-level [Enable_crc] exchange succeeds, then
    flips its sender with {!enable_send}.  Old peers that never negotiate
    keep speaking plain frames.  Once a protected frame has been received,
    an unprotected one raises {!Corrupt} — corruption cannot opt back out. *)

type crc_handle

val crc_conn : conn -> conn * crc_handle
(** Wrap a connection with CRC framing.  The returned connection receives
    both framings (verifying protected ones) and sends plain frames until
    {!enable_send}. *)

val enable_send : crc_handle -> unit
(** Start CRC-protecting sent frames.  Call once the peer has confirmed it
    verifies them. *)

val loopback : unit -> conn * conn
(** A connected pair: what one side sends, the other receives.  Both ends are
    thread-safe; [recv] blocks.  After [close], pending and future operations
    raise {!Closed}. *)

val tcp_connect : host:string -> port:int -> conn
(** Raises {!Connect_failed} when the host cannot be resolved or the
    connection is refused. *)

val tcp_server :
  port:int -> ?backlog:int -> stop:bool ref -> (conn -> unit) -> unit
(** Accept loop: spawns a thread per connection running the handler.  Checks
    [stop] once per second and returns once it is set. *)
