type conn = {
  send : string -> unit;
  recv : unit -> string;
  shutdown : unit -> unit;
  close : unit -> unit;
  peer : string;
}

exception Closed
exception Timeout
exception Connect_failed of string
exception Corrupt of string

(* Transport-wide metrics: one process-global registry shared by every
   connection in the process, enabled by default (IW_METRICS=0 disables).
   With the registry disabled each frame costs a handful of load-and-branch
   checks and no clock reads. *)
let registry =
  lazy (Iw_metrics.create ~enabled:(Iw_metrics.env_enabled ~default:true) ())

let metrics () = Lazy.force registry

type instruments = {
  i_frames_sent : Iw_metrics.counter;
  i_frames_received : Iw_metrics.counter;
  i_bytes_sent : Iw_metrics.counter;
  i_bytes_received : Iw_metrics.counter;
  i_frame_bytes : Iw_metrics.histogram;
  i_recv_block_us : Iw_metrics.histogram;
  i_crc_errors : Iw_metrics.counter;
}

let instruments =
  lazy
    (let t = metrics () in
     {
       i_frames_sent =
         Iw_metrics.counter t ~help:"Frames sent by this process"
           "iw_transport_frames_sent_total";
       i_frames_received =
         Iw_metrics.counter t ~help:"Frames received by this process"
           "iw_transport_frames_received_total";
       i_bytes_sent =
         Iw_metrics.counter t ~help:"Frame payload bytes sent"
           "iw_transport_bytes_sent_total";
       i_bytes_received =
         Iw_metrics.counter t ~help:"Frame payload bytes received"
           "iw_transport_bytes_received_total";
       i_frame_bytes =
         Iw_metrics.histogram_bytes t ~help:"Frame payload size, both directions"
           "iw_transport_frame_bytes";
       i_recv_block_us =
         Iw_metrics.histogram_us t ~help:"Time blocked waiting for a frame"
           "iw_transport_recv_block_us";
       i_crc_errors =
         Iw_metrics.counter t ~help:"Frames rejected by the CRC check"
           "iw_transport_crc_errors_total";
     })

let instrument conn =
  let i = Lazy.force instruments in
  let t = metrics () in
  let send s =
    Iw_metrics.incr i.i_frames_sent;
    Iw_metrics.incr ~by:(String.length s) i.i_bytes_sent;
    Iw_metrics.observe i.i_frame_bytes (float_of_int (String.length s));
    conn.send s
  in
  let recv () =
    let s =
      if Iw_metrics.enabled t then begin
        let t0 = Iw_metrics.now_us () in
        let s = conn.recv () in
        Iw_metrics.observe i.i_recv_block_us (Iw_metrics.now_us () -. t0);
        s
      end
      else conn.recv ()
    in
    Iw_metrics.incr i.i_frames_received;
    Iw_metrics.incr ~by:(String.length s) i.i_bytes_received;
    Iw_metrics.observe i.i_frame_bytes (float_of_int (String.length s));
    s
  in
  { conn with send; recv }

(* Frame-level CRC-32.

   A protected frame is self-describing: marker byte 0xC3, then the big-endian
   CRC-32 of the payload, then the payload.  0xC3 cannot start an unprotected
   frame — request frames begin with a tag (0..17) or the 0xE7 trace envelope,
   response frames with 0, 1, or 2 — so a receiver can accept both framings on
   one connection, which is what makes negotiation possible: each side starts
   sending plain frames and flips to protected ones only after the Enable_crc
   exchange succeeds, and old peers that never negotiate just keep exchanging
   plain frames.

   The receive side ratchets: once one protected frame arrives, every later
   frame must be protected too, so a garbled frame cannot smuggle itself past
   the check by losing its marker byte. *)

let crc_marker = '\xc3'

type crc_handle = {
  mutable send_crc : bool;
  mutable expect_crc : bool;
}

let enable_send h = h.send_crc <- true

let crc_conn conn =
  let h = { send_crc = false; expect_crc = false } in
  let i = Lazy.force instruments in
  let reject msg =
    Iw_metrics.incr i.i_crc_errors;
    raise (Corrupt msg)
  in
  let send s =
    if not h.send_crc then conn.send s
    else begin
      let n = String.length s in
      let buf = Bytes.create (5 + n) in
      Bytes.set buf 0 crc_marker;
      Bytes.set_int32_be buf 1 (Int32.of_int (Iw_wire.Crc32.string s));
      Bytes.blit_string s 0 buf 5 n;
      conn.send (Bytes.unsafe_to_string buf)
    end
  in
  let recv () =
    let s = conn.recv () in
    if String.length s > 0 && s.[0] = crc_marker then begin
      if String.length s < 5 then reject "short CRC frame";
      let want =
        Int32.to_int (Bytes.get_int32_be (Bytes.unsafe_of_string s) 1)
        land 0xffffffff
      in
      let got = Iw_wire.Crc32.update 0 s ~off:5 ~len:(String.length s - 5) in
      if want <> got then reject "frame CRC mismatch";
      h.expect_crc <- true;
      String.sub s 5 (String.length s - 5)
    end
    else if h.expect_crc then reject "unprotected frame after CRC negotiation"
    else s
  in
  ({ conn with send; recv }, h)

(* Thread-safe blocking queue of frames. *)
module Fifo = struct
  type t = {
    q : string Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create (); closed = false }

  let push t s =
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      raise Closed
    end;
    Queue.push s t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    let rec wait () =
      if not (Queue.is_empty t.q) then Queue.pop t.q
      else if t.closed then begin
        Mutex.unlock t.m;
        raise Closed
      end
      else begin
        Condition.wait t.c t.m;
        wait ()
      end
    in
    let v = wait () in
    Mutex.unlock t.m;
    v

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.c;
    Mutex.unlock t.m
end

let loopback () =
  let a_to_b = Fifo.create () and b_to_a = Fifo.create () in
  let close () =
    Fifo.close a_to_b;
    Fifo.close b_to_a
  in
  (* No descriptor to release: shutdown and close coincide. *)
  let a =
    {
      send = Fifo.push a_to_b;
      recv = (fun () -> Fifo.pop b_to_a);
      shutdown = close;
      close;
      peer = "loopback-b";
    }
  and b =
    {
      send = Fifo.push b_to_a;
      recv = (fun () -> Fifo.pop a_to_b);
      shutdown = close;
      close;
      peer = "loopback-a";
    }
  in
  (instrument a, instrument b)

(* TCP framing: 4-byte big-endian length prefix. *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.read fd buf off len with
      | 0 -> raise Closed
      | n -> go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

let conn_of_fd fd peer =
  let send_mutex = Mutex.create () in
  let state_mutex = Mutex.create () in
  let closed = ref false in
  let send s =
    Mutex.lock send_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock send_mutex)
      (fun () ->
        let hdr = Bytes.create 4 in
        Bytes.set_int32_be hdr 0 (Int32.of_int (String.length s));
        (try
           really_write fd hdr 0 4;
           really_write fd (Bytes.unsafe_of_string s) 0 (String.length s)
         with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> raise Closed))
  in
  let recv () =
    let hdr = Bytes.create 4 in
    (try really_read fd hdr 0 4
     with Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> raise Closed);
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > 1 lsl 30 then raise Closed;
    let payload = Bytes.create len in
    (try really_read fd payload 0 len
     with Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> raise Closed);
    Bytes.unsafe_to_string payload
  in
  let shutdown () =
    try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  in
  let close () =
    Mutex.lock state_mutex;
    let first = not !closed in
    closed := true;
    Mutex.unlock state_mutex;
    if first then begin
      shutdown ();
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  instrument { send; recv; shutdown; close; peer }

(* A peer that disappears mid-write must surface as [Closed] (the send
   path maps EPIPE/ECONNRESET), not kill the process: the default SIGPIPE
   disposition would terminate us before the Unix_error is ever raised.
   Ignored lazily by both TCP entry points so pure-loopback users keep
   their process signal state untouched. *)
let ignore_sigpipe =
  lazy
    (match Sys.os_type with
    | "Unix" | "Cygwin" -> (
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
    | _ -> ())

let tcp_connect ~host ~port =
  Lazy.force ignore_sigpipe;
  let addr =
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE SOCK_STREAM ] with
    | { ai_addr; _ } :: _ -> ai_addr
    | [] -> raise (Connect_failed (Printf.sprintf "cannot resolve %s" host))
    | exception Unix.Unix_error (e, _, _) ->
      raise
        (Connect_failed
           (Printf.sprintf "cannot resolve %s: %s" host (Unix.error_message e)))
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Connect_failed
          (Printf.sprintf "connect to %s:%d: %s" host port (Unix.error_message e))));
  Unix.setsockopt fd TCP_NODELAY true;
  conn_of_fd fd (Printf.sprintf "%s:%d" host port)

let tcp_server ~port ?(backlog = 128) ~stop handler =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen fd backlog;
  let rec loop () =
    if !stop then Unix.close fd
    else begin
      match Unix.select [ fd ] [] [] 1.0 with
      | [], _, _ -> loop ()
      | _ ->
        let client_fd, peer_addr = Unix.accept fd in
        Unix.setsockopt client_fd TCP_NODELAY true;
        let peer =
          match peer_addr with
          | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | Unix.ADDR_UNIX s -> s
        in
        let conn = conn_of_fd client_fd peer in
        let run () = try handler conn with Closed -> conn.close () in
        ignore (Thread.create run () : Thread.t);
        loop ()
    end
  in
  loop ()
