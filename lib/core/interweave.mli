(** InterWeave: distributed shared state for heterogeneous machines.

    This is the public facade over the subsystem libraries.  The programming
    model (paper, Section 2): servers maintain persistent master copies of
    {e segments} — URL-named heaps of strongly typed {e blocks} — and clients
    map cached copies into their address space, accessing them with ordinary
    reads and writes under reader/writer locks.  Pointers, including
    cross-segment pointers, are valid local addresses once mapped; a
    machine-independent pointer (MIP) ["segment#block#offset"] names any
    shared datum globally.

    {[
      let server = Interweave.start_server () in
      let c = Interweave.direct_client server in
      let h = Interweave.open_segment c "host/list" in
      Interweave.wl_acquire h;
      let p = Interweave.malloc h Desc.(structure [ field "key" int; field "next" (ptr "node") ]) in
      ...
      Interweave.wl_release h
    ]} *)

module Arch = Iw_arch
module Types = Iw_types
module Mem = Iw_mem
module Wire = Iw_wire
module Xdr = Iw_xdr
module Proto = Iw_proto
module Transport = Iw_transport
module Server = Iw_server
module Client = Iw_client

module Metrics = Iw_metrics
(** Counters, gauges, latency/size histograms; snapshot, Prometheus text
    exposition, JSON.  Registries: {!Client.metrics} (per client, default
    off), {!Server.metrics} (per server, default on), {!Transport.metrics}
    (process-global, default on).  [IW_METRICS] overrides the defaults. *)

module Trace = Iw_trace
(** Structured tracing to Chrome [trace_event] JSON (Perfetto-loadable).
    [IW_TRACE=<path>] enables it for a whole process with no code changes;
    [IW_TRACE_MODE=append|unique] lets several processes share a path.
    Requests issued while tracing carry a trace-context envelope
    ({!Proto.trace_ctx}), so client and server spans share one timeline. *)

module Flight = Iw_flight
(** Crash flight recorder: a lock-free ring of recent request events, on by
    default in servers ([IW_FLIGHT=0] disables), dumped as JSON on decode
    failures, uncaught exceptions, [SIGUSR1], or [iw-admin flight]. *)

module Obs_json = Iw_obs_json
(** The minimal JSON representation used by metric and benchmark output. *)

module Fault = Iw_fault
(** Deterministic fault injection for links: seedable drop/delay/garble/close
    plans, parsed from a string or the [IW_FAULT] environment variable and
    wrapped around any {!Transport.conn}.  {!loopback_client} and
    {!tcp_client} apply [IW_FAULT] automatically. *)

module Store = Iw_store
(** Durable segments: per-segment write-ahead logs of committed diffs,
    crash-consistent checkpoint primitives, and the offline validation
    behind [iw-check --store].  A server gets one by being created with a
    [checkpoint_dir] (see {!start_server}); the [IW_FSYNC] environment
    variable (or {!Iw_server.create}'s [fsync]) picks the log's fsync
    policy. *)

type server = Iw_server.t

type client = Iw_client.t

type seg = Iw_client.seg

type addr = Iw_mem.addr

(** Building type descriptors without spelling out the variant constructors. *)
module Desc : sig
  val char : Types.desc

  val short : Types.desc

  val int : Types.desc

  val long : Types.desc

  val float : Types.desc

  val double : Types.desc

  val string : int -> Types.desc
  (** Inline string with the given local capacity (bytes, including NUL). *)

  val ptr : string -> Types.desc
  (** Typed pointer to the named type. *)

  val opaque_ptr : Types.desc

  val array : Types.desc -> int -> Types.desc

  val field : string -> Types.desc -> Types.field

  val structure : Types.field list -> Types.desc
end

(** {1 Deployment} *)

val start_server :
  ?checkpoint_dir:string ->
  ?lease_secs:float ->
  ?fsync:Store.fsync ->
  unit ->
  server
(** An in-process server.  With [checkpoint_dir], the server is durable:
    committed updates are write-ahead logged before being acknowledged and
    a restart on the same directory recovers every acknowledged version
    (see {!Iw_server.create}; [fsync] picks the log's fsync policy).  With
    [lease_secs], write locks survive dropped connections for a possible
    {!Proto.Resume_session}, and sessions quiet for longer than the lease
    lose their locks to the next contender. *)

(** The three client constructors below also honour the [IW_SANITIZE]
    environment variable: any value other than empty or ["0"] attaches a
    collecting {!Iw_sanitizer} (with relaxed out-of-lock reads) to every
    client they build and prints its findings to stderr at process exit —
    a zero-code-change sweep of a whole program for lock-discipline
    violations. *)

val direct_client : ?arch:Arch.t -> server -> client
(** A client wired straight to an in-process server — no transport between
    them.  This is the configuration the paper's translation-cost experiments
    isolate. *)

val loopback_client :
  ?arch:Arch.t -> ?fault:Fault.plan -> ?call_timeout:float -> server -> client
(** A client talking to the in-process server over a framed loopback channel
    served by a dedicated thread — full protocol encode/decode on both
    sides.

    Both transported-client constructors arm reconnect-with-recovery
    ({!Iw_client.set_reconnect}): a dead connection is re-dialed and the
    session resumed transparently.  Every request carries a deadline so a
    reply lost in transit (lossy network, server-side fault plan) triggers
    recovery instead of hanging the caller: [call_timeout] when given,
    else 1 s when this client injects faults itself, else 30 s.  A fault
    plan — [fault], or the [IW_FAULT] environment variable when absent —
    wraps every dialed connection in a {!Fault} injector (for loopback,
    injections land in the server's flight recorder). *)

val tcp_client :
  ?arch:Arch.t ->
  ?fault:Fault.plan ->
  ?call_timeout:float ->
  host:string ->
  port:int ->
  unit ->
  client
(** Connect to a standalone [iw_server] process.  See {!loopback_client}
    for fault-plan and recovery behaviour.
    @raise Transport.Connect_failed when the server cannot be reached. *)

(** {1 The paper's API}

    These re-export {!Iw_client} operations under the names used in the
    paper's Figure 1 discussion. *)

val open_segment : ?create:bool -> client -> string -> seg

val malloc : ?name:string -> seg -> Types.desc -> addr

val free : client -> addr -> unit

val rl_acquire : seg -> unit

val rl_release : seg -> unit

val wl_acquire : seg -> unit

val wl_release : seg -> unit

val ptr_to_mip : client -> addr -> string

val mip_to_ptr : client -> string -> addr

val set_coherence : seg -> Proto.coherence -> unit

val wl_abort : seg -> unit

val with_read_lock : seg -> (unit -> 'a) -> 'a

val with_write_lock : seg -> (unit -> 'a) -> 'a

val atomically : seg -> (unit -> 'a) -> ('a, exn) result
(** Run [f] inside a write critical section; commit its changes if it
    returns, roll every one of them back ({!wl_abort}) if it raises. *)

(** {1 Navigating typed data}

    Byte offsets of fields and elements depend on the client's architecture;
    these helpers compute them from descriptors, so application code never
    hard-codes layout. *)

type path_elem =
  | F of string  (** struct field by name *)
  | I of int  (** array element by index *)

val offset : client -> Types.desc -> path_elem list -> int * Types.desc
(** [offset c desc path] is the byte offset of the datum reached by [path]
    from the start of a value of type [desc], together with that datum's
    descriptor.  @raise Invalid_argument on a bad path. *)

val deref : client -> Types.desc -> addr -> path_elem list -> addr
(** [deref c desc a path] is [a + fst (offset c desc path)]. *)
