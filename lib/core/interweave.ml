module Arch = Iw_arch
module Types = Iw_types
module Mem = Iw_mem
module Wire = Iw_wire
module Xdr = Iw_xdr
module Proto = Iw_proto
module Transport = Iw_transport
module Server = Iw_server
module Client = Iw_client
module Metrics = Iw_metrics
module Trace = Iw_trace
module Flight = Iw_flight
module Obs_json = Iw_obs_json
module Fault = Iw_fault
module Store = Iw_store

type server = Iw_server.t

type client = Iw_client.t

type seg = Iw_client.seg

type addr = Iw_mem.addr

module Desc = struct
  let char = Types.Prim Iw_arch.Char

  let short = Types.Prim Iw_arch.Short

  let int = Types.Prim Iw_arch.Int

  let long = Types.Prim Iw_arch.Long

  let float = Types.Prim Iw_arch.Float

  let double = Types.Prim Iw_arch.Double

  let string n = Types.Prim (Iw_arch.String n)

  let ptr name = Types.Ptr name

  let opaque_ptr = Types.Prim Iw_arch.Pointer

  let array d n = Types.Array (d, n)

  let field fname ftype = { Types.fname; ftype }

  let structure fields = Types.Struct (Array.of_list fields)
end

let start_server ?checkpoint_dir ?lease_secs ?fsync () =
  Iw_server.create ?checkpoint_dir ?lease_secs ?fsync ()

(* IW_SANITIZE=1 in the environment attaches a collecting Iw_sanitizer to
   every client these helpers build, so a whole program or test suite can be
   swept for lock-discipline violations without code changes.  Reads outside
   critical sections are tolerated (harnesses routinely verify results after
   releasing their locks); everything else reports.  Findings are dumped to
   stderr at process exit. *)
let sanitize_env =
  match Sys.getenv_opt "IW_SANITIZE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let maybe_sanitize c =
  if sanitize_env then begin
    let s = Iw_sanitizer.attach ~policy:Iw_sanitizer.Collect ~strict_reads:false c in
    at_exit (fun () ->
        match Iw_sanitizer.reports s with
        | [] -> ()
        | rs ->
          Format.eprintf "IW_SANITIZE: %d violation(s)@." (List.length rs);
          List.iter (fun r -> Format.eprintf "  %a@." Iw_sanitizer.pp_report r) rs)
  end;
  c

let direct_client ?arch server =
  let c = Iw_client.connect ?arch (Iw_server.direct_link server) in
  Iw_server.register_notifier server ~session:(Iw_client.session c)
    ~push:(Iw_client.handle_notification c);
  Iw_client.enable_notifications c;
  maybe_sanitize c

(* Clients behind a byte transport receive notifications through the tagged
   demux link; the forward reference is resolved once the client exists.
   The link's I/O callback feeds actual framed byte counts into the client's
   stats (the Hello handshake's bytes accumulate in the pre-counters until
   the client exists), replacing the payload-only approximation direct
   links are limited to.

   [dial] produces a fresh connection each time it is called: once for the
   initial link, and again on every recovery ([Iw_client.set_reconnect]).
   When a fault plan is in force — [fault], or the [IW_FAULT] environment
   variable — each dialed connection is wrapped in the injector (one armed
   injector for the client's lifetime, so frame counters and the one-shot
   close survive re-dials), and calls get a default 1 s deadline so a
   dropped frame turns into [Timeout]-and-recover instead of a hang. *)
let demux_client ?arch ?fault ?call_timeout ?flight ~busy_wait dial =
  let client = ref None in
  let pre_sent = ref 0 and pre_received = ref 0 in
  let on_notify n =
    match !client with Some c -> Iw_client.handle_notification c n | None -> ()
  in
  let on_io ~dir bytes =
    match !client with
    | Some c ->
      let s = Iw_client.stats c in
      (match dir with
      | `Sent -> s.Iw_client.bytes_sent <- s.Iw_client.bytes_sent + bytes
      | `Received -> s.Iw_client.bytes_received <- s.Iw_client.bytes_received + bytes)
    | None -> (
      match dir with
      | `Sent -> pre_sent := !pre_sent + bytes
      | `Received -> pre_received := !pre_received + bytes)
  in
  let plan = match fault with Some _ -> fault | None -> Iw_fault.env_plan () in
  let injector = Option.map Iw_fault.arm plan in
  (* Every request gets a deadline: a reply lost in transit (a faulty
     network, or a server running --fault-plan) must trigger recovery, not
     hang the caller.  Tight when this client injects faults itself, and
     generous — handlers are in-memory-fast, lock contention is R_busy
     polling, so 30 s is far beyond any honest reply — otherwise. *)
  let call_timeout =
    match (call_timeout, plan) with
    | (Some _ as t), _ -> t
    | None, Some _ -> Some 1.0
    | None, None -> Some 30.0
  in
  (* Each dialed connection negotiates frame CRCs before anything else: the
     CRC wrapper sits above the fault injector, so injected garbling lands on
     protected bytes and is detected instead of decoding into garbage.  The
     two-frame negotiation itself is the only unprotected traffic — an old
     server rejects the unknown request tag with R_error and the link simply
     stays plain, which is the whole backward-compatibility story.  A
     negotiation eaten by the fault plan (timeout, drop, close) re-dials. *)
  let rec mk_retry k =
    let conn = dial () in
    let conn =
      match injector with
      | None -> conn
      | Some inj -> Iw_fault.wrap ?flight inj conn
    in
    let conn, crc = Iw_transport.crc_conn conn in
    let link = Iw_proto.demux_link ~on_io ?call_timeout conn ~on_notify in
    let retry e =
      (try link.Iw_proto.close () with _ -> ());
      if k < 5 then mk_retry (k + 1) else raise e
    in
    match link.Iw_proto.call (Iw_proto.Enable_crc { session = 0 }) with
    | Iw_proto.R_ok ->
      Iw_transport.enable_send crc;
      link
    | Iw_proto.R_error _ -> link
    | _ -> retry Iw_transport.Closed
    | exception
        ((Iw_transport.Closed | Iw_transport.Timeout | Iw_transport.Corrupt _
         | End_of_file)
         as e) ->
      retry e
  in
  let mk () = mk_retry 0 in
  (* A fault plan can eat the very first exchange; each retry dials afresh. *)
  let rec handshake k =
    let link = mk () in
    match Iw_client.connect ?arch ~busy_wait link with
    | c -> c
    | exception
        ((Iw_transport.Closed | Iw_transport.Timeout | End_of_file | Iw_client.Error _)
         as e) ->
      (try link.Iw_proto.close () with _ -> ());
      if k < 3 then handshake (k + 1) else raise e
  in
  let c = handshake 0 in
  client := Some c;
  let s = Iw_client.stats c in
  s.Iw_client.bytes_sent <- s.Iw_client.bytes_sent + !pre_sent;
  s.Iw_client.bytes_received <- s.Iw_client.bytes_received + !pre_received;
  Iw_client.set_framed_byte_accounting c true;
  Iw_client.enable_notifications c;
  Iw_client.set_reconnect c ~dial:mk;
  maybe_sanitize c

let loopback_client ?arch ?fault ?call_timeout server =
  let dial () =
    let client_end, server_end = Iw_transport.loopback () in
    let serve () = Iw_server.serve_conn server server_end in
    ignore (Thread.create serve () : Thread.t);
    client_end
  in
  demux_client ?arch ?fault ?call_timeout
    ~flight:(Iw_server.flight server)
    ~busy_wait:(Some 0.002) dial

let tcp_client ?arch ?fault ?call_timeout ~host ~port () =
  demux_client ?arch ?fault ?call_timeout ~busy_wait:(Some 0.002) (fun () ->
      Iw_transport.tcp_connect ~host ~port)

let open_segment = Iw_client.open_segment

let malloc = Iw_client.malloc

let free = Iw_client.free

let rl_acquire = Iw_client.rl_acquire

let rl_release = Iw_client.rl_release

let wl_acquire = Iw_client.wl_acquire

let wl_release = Iw_client.wl_release

let ptr_to_mip = Iw_client.ptr_to_mip

let mip_to_ptr = Iw_client.mip_to_ptr

let set_coherence = Iw_client.set_coherence

let with_read_lock g f =
  rl_acquire g;
  Fun.protect ~finally:(fun () -> rl_release g) f

let wl_abort = Iw_client.wl_abort

let with_write_lock g f =
  wl_acquire g;
  Fun.protect ~finally:(fun () -> wl_release g) f

let atomically g f =
  wl_acquire g;
  match f () with
  | v ->
    wl_release g;
    Ok v
  | exception e ->
    wl_abort g;
    Error e

type path_elem =
  | F of string
  | I of int

(* Recompute field offsets with the same algorithm as [Iw_types.layout] so
   that paths resolve to exactly the client's local layout. *)
let offset c desc path =
  let conv = Types.local (Iw_client.arch c) in
  let rec go desc off = function
    | [] -> (off, desc)
    | F name :: rest -> begin
      match desc with
      | Types.Struct fields ->
        let found = ref None in
        let cur = ref 0 in
        Array.iter
          (fun (fld : Types.field) ->
            let lay = Types.layout conv fld.ftype in
            let f_off = Iw_arch.align_up !cur (Types.align lay) in
            if fld.fname = name && !found = None then found := Some (f_off, fld.ftype);
            cur := f_off + Types.size lay)
          fields;
        begin
          match !found with
          | Some (f_off, ftype) -> go ftype (off + f_off) rest
          | None -> invalid_arg ("Interweave.offset: no field " ^ name)
        end
      | _ -> invalid_arg "Interweave.offset: field access on non-struct"
    end
    | I i :: rest -> begin
      match desc with
      | Types.Array (elem, n) ->
        if i < 0 || i >= n then invalid_arg "Interweave.offset: index out of bounds";
        let stride = Types.size (Types.layout conv elem) in
        go elem (off + (i * stride)) rest
      | _ -> invalid_arg "Interweave.offset: index on non-array"
    end
  in
  go desc 0 path

let deref c desc a path = a + fst (offset c desc path)
