type loc = {
  l_line : int;
  l_col : int;
}

type decl = {
  d_name : string;
  d_desc : Iw_types.desc;
  d_loc : loc;
  d_fields : (string * loc) list;
}

exception Parse_error of string

let perror_at loc fmt =
  Format.kasprintf
    (fun s ->
      raise
        (Parse_error (Printf.sprintf "line %d, column %d: %s" loc.l_line loc.l_col s)))
    fmt

(* Lexer. *)

type token =
  | Ident of string
  | Num of int
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Star
  | Eof

let lex src =
  let n = String.length src in
  let line = ref 1 in
  let bol = ref 0 in  (* index of the first character of the current line *)
  let toks = ref [] in
  let i = ref 0 in
  let here () = { l_line = !line; l_col = !i - !bol + 1 } in
  let error loc fmt = perror_at loc fmt in
  let newline () =
    incr line;
    bol := !i + 1
  in
  let peek () = if !i < n then Some src.[!i] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | ' ' | '\t' | '\r' -> incr i
    | '\n' ->
      newline ();
      incr i
    | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '/' when !i + 1 < n && src.[!i + 1] = '*' ->
      let start = here () in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then newline ();
        if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then error start "unterminated comment"
    | '{' ->
      toks := (Lbrace, here ()) :: !toks;
      incr i
    | '}' ->
      toks := (Rbrace, here ()) :: !toks;
      incr i
    | '[' ->
      toks := (Lbracket, here ()) :: !toks;
      incr i
    | ']' ->
      toks := (Rbracket, here ()) :: !toks;
      incr i
    | ';' ->
      toks := (Semi, here ()) :: !toks;
      incr i
    | '*' ->
      toks := (Star, here ()) :: !toks;
      incr i
    | '0' .. '9' ->
      let loc = here () in
      let start = !i in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        incr i
      done;
      toks := (Num (int_of_string (String.sub src start (!i - start))), loc) :: !toks
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let loc = here () in
      let start = !i in
      while
        match peek () with
        | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
        | _ -> false
      do
        incr i
      done;
      toks := (Ident (String.sub src start (!i - start)), loc) :: !toks
    | c -> error (here ()) "unexpected character %C" c)
  done;
  List.rev ((Eof, here ()) :: !toks)

(* Parser: recursive descent over the token list. *)

type state = {
  mutable toks : (token * loc) list;
  mutable decls : decl list;  (* reverse order *)
}

let cur st =
  match st.toks with [] -> (Eof, { l_line = 0; l_col = 0 }) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st want desc =
  let tok, loc = cur st in
  if tok = want then advance st else perror_at loc "expected %s" desc

let expect_ident st what =
  match cur st with
  | Ident s, loc ->
    advance st;
    (s, loc)
  | _, loc -> perror_at loc "expected %s" what

let prim_of_name = function
  | "char" -> Some `Char_string
  | "byte" -> Some (`Prim Iw_arch.Char)
  | "short" -> Some (`Prim Iw_arch.Short)
  | "int" -> Some (`Prim Iw_arch.Int)
  | "long" -> Some (`Prim Iw_arch.Long)
  | "float" -> Some (`Prim Iw_arch.Float)
  | "double" -> Some (`Prim Iw_arch.Double)
  | "void" -> Some `Void
  | _ -> None

let find_decl st name =
  List.find_map (fun d -> if d.d_name = name then Some d.d_desc else None) st.decls

(* field := type ['*'] ident ['[' num ']'] ';' *)
let parse_field st =
  let tyname, tyloc = expect_ident st "a type name" in
  let base = prim_of_name tyname in
  let is_ptr =
    match cur st with
    | Star, _ ->
      advance st;
      true
    | _ -> false
  in
  let fname, floc = expect_ident st "a field name" in
  let array_len =
    match cur st with
    | Lbracket, lloc -> begin
      advance st;
      match cur st with
      | Num k, _ ->
        advance st;
        expect st Rbracket "']'";
        if k <= 0 then perror_at lloc "array length must be positive";
        Some k
      | _ -> perror_at lloc "expected an array length"
    end
    | _ -> None
  in
  expect st Semi "';'";
  let elem : Iw_types.desc =
    if is_ptr then begin
      match base with
      | Some `Void -> Prim Iw_arch.Pointer
      | Some _ -> perror_at tyloc "pointers to primitives are not supported; use void*"
      | None ->
        (* Pointers may reference any struct, including the one being
           defined or one defined later. *)
        Ptr tyname
    end
    else begin
      match base with
      | Some `Void -> perror_at tyloc "void is only valid as a pointer"
      | Some `Char_string -> Prim Iw_arch.Char (* [array_len] case handled below *)
      | Some (`Prim p) -> Prim p
      | None -> begin
        match find_decl st tyname with
        | Some d -> d
        | None ->
          perror_at tyloc "unknown type %s (by-value use requires earlier definition)"
            tyname
      end
    end
  in
  let ftype : Iw_types.desc =
    match (array_len, base, is_ptr) with
    | Some k, Some `Char_string, false ->
      if k < 2 then perror_at floc "char[%d]: string capacity must be at least 2" k;
      Prim (Iw_arch.String k)
    | Some k, _, _ -> Array (elem, k)
    | None, Some `Char_string, false -> Prim Iw_arch.Char
    | None, _, _ -> elem
  in
  ({ Iw_types.fname; ftype }, floc)

let parse_struct st =
  expect st (Ident "struct") "'struct'";
  let name, nloc = expect_ident st "a struct name" in
  if find_decl st name <> None then
    perror_at nloc "duplicate definition of struct %s" name;
  expect st Lbrace "'{'";
  let fields = ref [] in
  let rec fields_loop () =
    match cur st with
    | Rbrace, _ -> advance st
    | Eof, loc -> perror_at loc "unexpected end of input in struct %s" name
    | _ ->
      fields := parse_field st :: !fields;
      fields_loop ()
  in
  fields_loop ();
  expect st Semi "';' after struct definition";
  let fields = List.rev !fields in
  if fields = [] then perror_at nloc "struct %s has no fields" name;
  {
    d_name = name;
    d_desc = Iw_types.Struct (Array.of_list (List.map fst fields));
    d_loc = nloc;
    d_fields = List.map (fun ((f : Iw_types.field), loc) -> (f.fname, loc)) fields;
  }

(* Pointers may reference forward declarations, so targets are resolved after
   the whole file is parsed.  The error points at the offending field. *)
let check_pointers decls =
  List.iter
    (fun d ->
      match d.d_desc with
      | Iw_types.Struct fields ->
        Array.iter
          (fun (f : Iw_types.field) ->
            let floc =
              match List.assoc_opt f.fname d.d_fields with
              | Some l -> l
              | None -> d.d_loc
            in
            let rec check : Iw_types.desc -> unit = function
              | Prim _ -> ()
              | Ptr name ->
                if not (List.exists (fun d -> d.d_name = name) decls) then
                  perror_at floc "pointer to undefined struct %s" name
              | Array (t, _) -> check t
              | Struct fs -> Array.iter (fun (f : Iw_types.field) -> check f.ftype) fs
            in
            check f.ftype)
          fields
      | _ -> ())
    decls

let parse src =
  let st = { toks = lex src; decls = [] } in
  let rec loop () =
    match cur st with
    | Eof, _ -> ()
    | Ident "struct", _ ->
      st.decls <- parse_struct st :: st.decls;
      loop ()
    | _, loc -> perror_at loc "expected a struct definition"
  in
  loop ();
  let decls = List.rev st.decls in
  check_pointers decls;
  List.iter
    (fun d ->
      match Iw_types.validate d.d_desc with
      | Ok () -> ()
      | Error msg -> perror_at d.d_loc "struct %s: %s" d.d_name msg)
    decls;
  decls

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let register_all registry decls =
  List.iter (fun d -> Iw_types.Registry.define_name registry d.d_name d.d_desc) decls

let lookup decls name =
  List.find_map (fun d -> if d.d_name = name then Some d.d_desc else None) decls

let field_loc d fname =
  match List.assoc_opt fname d.d_fields with Some l -> l | None -> d.d_loc

(* OCaml code generation. *)

let capitalize = String.capitalize_ascii

let rec desc_expr : Iw_types.desc -> string = function
  | Prim Iw_arch.Char -> "Iw_types.Prim Iw_arch.Char"
  | Prim Iw_arch.Short -> "Iw_types.Prim Iw_arch.Short"
  | Prim Iw_arch.Int -> "Iw_types.Prim Iw_arch.Int"
  | Prim Iw_arch.Long -> "Iw_types.Prim Iw_arch.Long"
  | Prim Iw_arch.Float -> "Iw_types.Prim Iw_arch.Float"
  | Prim Iw_arch.Double -> "Iw_types.Prim Iw_arch.Double"
  | Prim Iw_arch.Pointer -> "Iw_types.Prim Iw_arch.Pointer"
  | Prim (Iw_arch.String n) -> Printf.sprintf "Iw_types.Prim (Iw_arch.String %d)" n
  | Ptr name -> Printf.sprintf "Iw_types.Ptr %S" name
  | Array (d, n) -> Printf.sprintf "Iw_types.Array (%s, %d)" (desc_expr d) n
  | Struct fields ->
    let fs =
      Array.to_list fields
      |> List.map (fun (f : Iw_types.field) ->
             Printf.sprintf "{ Iw_types.fname = %S; ftype = %s }" f.fname (desc_expr f.ftype))
      |> String.concat "; "
    in
    Printf.sprintf "Iw_types.Struct [| %s |]" fs

let accessor buf sname (f : Iw_types.field) =
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let path = Printf.sprintf "(a + fst (field_offset c %S))" f.fname in
  let getset ~suffix ~reader ~writer =
    b "  let get_%s c a = %s c %s\n" (f.fname ^ suffix) reader path;
    b "  let set_%s c a v = %s c %s v\n" (f.fname ^ suffix) writer path
  in
  match f.ftype with
  | Prim Iw_arch.Char -> getset ~suffix:"" ~reader:"Iw_client.read_char" ~writer:"Iw_client.write_char"
  | Prim Iw_arch.Short -> getset ~suffix:"" ~reader:"Iw_client.read_short" ~writer:"Iw_client.write_short"
  | Prim Iw_arch.Int -> getset ~suffix:"" ~reader:"Iw_client.read_int" ~writer:"Iw_client.write_int"
  | Prim Iw_arch.Long -> getset ~suffix:"" ~reader:"Iw_client.read_long" ~writer:"Iw_client.write_long"
  | Prim Iw_arch.Float -> getset ~suffix:"" ~reader:"Iw_client.read_float" ~writer:"Iw_client.write_float"
  | Prim Iw_arch.Double ->
    getset ~suffix:"" ~reader:"Iw_client.read_double" ~writer:"Iw_client.write_double"
  | Prim (Iw_arch.String n) ->
    b "  let get_%s c a = Iw_client.read_string c ~capacity:%d %s\n" f.fname n path;
    b "  let set_%s c a v = Iw_client.write_string c ~capacity:%d %s v\n" f.fname n path
  | Prim Iw_arch.Pointer | Ptr _ ->
    getset ~suffix:"" ~reader:"Iw_client.read_ptr" ~writer:"Iw_client.write_ptr"
  | Array _ | Struct _ ->
    b "  (* %s.%s is a composite; use [addr_of_%s] with layout helpers. *)\n" sname f.fname
      f.fname;
    b "  let addr_of_%s c a = a + fst (field_offset c %S)\n" f.fname f.fname

let to_ocaml ?(module_prefix = "") decls =
  let buf = Buffer.create 4096 in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  b "(* Generated by iw_idlc. Do not edit. *)\n\n";
  List.iter
    (fun d ->
      let mname = module_prefix ^ capitalize d.d_name in
      b "module %s = struct\n" mname;
      b "  let desc : Iw_types.desc = %s\n\n" (desc_expr d.d_desc);
      b "  let size c = Iw_types.size (Iw_types.layout (Iw_types.local (Iw_client.arch c)) desc)\n\n";
      b "  (* Byte offset and descriptor of a named field on this client's architecture. *)\n";
      b "  let field_offset c name =\n";
      b "    let conv = Iw_types.local (Iw_client.arch c) in\n";
      b "    match desc with\n";
      b "    | Iw_types.Struct fields ->\n";
      b "      let off = ref 0 and found = ref None in\n";
      b "      Array.iter (fun (f : Iw_types.field) ->\n";
      b "        let lay = Iw_types.layout conv f.ftype in\n";
      b "        let fo = Iw_arch.align_up !off (Iw_types.align lay) in\n";
      b "        if f.fname = name && !found = None then found := Some (fo, f.ftype);\n";
      b "        off := fo + Iw_types.size lay) fields;\n";
      b "      (match !found with Some r -> r | None -> invalid_arg (\"no field \" ^ name))\n";
      b "    | _ -> invalid_arg \"not a struct\"\n\n";
      (match d.d_desc with
      | Iw_types.Struct fields -> Array.iter (accessor buf d.d_name) fields
      | _ -> ());
      b "\n  let malloc ?name seg = Iw_client.malloc ?name seg desc\n";
      b "end\n\n")
    decls;
  Buffer.contents buf
