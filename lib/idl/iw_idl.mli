(** The InterWeave interface description language.

    As in multi-language RPC systems, the types of shared data are declared
    in an IDL; the compiler turns declarations into type descriptors and into
    language bindings (paper, Section 2.1).  The concrete syntax is a C-like
    subset:

    {v
    struct point {
      double x;
      double y;
    };

    struct node {
      int    key;
      char   name[32];     // inline string of capacity 32
      byte   raw[16];      // 16 plain characters (not a string)
      point  where;        // embedded struct, by value
      node  *next;         // typed pointer
      void  *cookie;       // untyped pointer
      double samples[8];
    };
    v}

    Primitive type names: [char], [byte], [short], [int], [long], [float],
    [double], [void] (pointers only).  [char\[N\]] is an inline string of
    capacity [N]; [byte\[N\]] is a plain character array.  [//] and
    [/* ... */] comments are allowed. *)

(** Source position of a token, 1-based. *)
type loc = {
  l_line : int;
  l_col : int;
}

type decl = {
  d_name : string;
  d_desc : Iw_types.desc;
  d_loc : loc;  (** position of the struct's name in its declaration *)
  d_fields : (string * loc) list;  (** position of each top-level field name *)
}

exception Parse_error of string
(** Carries a message of the form ["line L, column C: ..."]: every parse and
    semantic error reports both the line and the column of the offending
    token. *)

val parse : string -> decl list
(** Parse IDL source text.  Declarations may reference earlier struct names
    (by value) and any struct name in pointer position.
    @raise Parse_error on syntax or semantic errors. *)

val parse_file : string -> decl list

val register_all : Iw_types.Registry.t -> decl list -> unit
(** Bind every declaration's name in the registry, making [Ptr] references
    resolvable (e.g. for XDR deep copy). *)

val lookup : decl list -> string -> Iw_types.desc option

val field_loc : decl -> string -> loc
(** Position of a top-level field by name; the declaration's own position
    when the field is unknown.  Used by lint diagnostics. *)

val to_ocaml : ?module_prefix:string -> decl list -> string
(** Generate OCaml binding source: one module per struct with its descriptor
    and typed field accessors, mirroring the language bindings the paper's
    IDL compiler emits for C, C++, Java, and Fortran. *)
