(* Durability for segment servers: a per-segment append-only write-ahead log
   of committed wire-format diffs, plus the crash-consistency mechanics
   (atomic rename, fsync barriers, CRC trailers) that checkpoint files ride
   on.

   The contract is the classic one (cf. journaling filesystems and the
   verified-betrfs lineage): log the update durably BEFORE acknowledging it,
   make checkpoints atomic barriers that bound replay, and treat a torn or
   corrupt log tail as the expected shape of a crash — truncate it and keep
   the good prefix — rather than a fatal error.

   On-disk layout, one directory per server:

     <name>.ckpt          whole-segment checkpoint (written by Iw_server),
                          CRC-32 trailer over the whole body
     <name>.ckpt.corrupt  quarantined checkpoint that failed its CRC
     <name>.wal           the segment's write-ahead log
     <name>.wal.corrupt   quarantined log whose header was unreadable

   WAL record format (all integers big-endian, as everywhere on the wire):

     u32 body_len | u32 crc32(body) | body

   and the body is a kind byte plus a payload:

     kind 0  header   u16-prefixed segment name (files are self-describing;
                      the escaped filename is only a convenience)
     kind 1  commit   u32 session, u32 version, Iw_wire.Diff (the diff
                      carries its own from_version; session + from_version
                      let the server rebuild its release-dedup table so a
                      release retried across a restart is still recognized)
     kind 2  desc     u32 serial, u32 registration version, descriptor

   Not thread-safe: the server serializes every call under its own lock, and
   recovery runs before any connection is served. *)

type fsync =
  | Always
  | Interval of float
  | Never

let pp_fsync ppf = function
  | Always -> Format.fprintf ppf "always"
  | Interval s -> Format.fprintf ppf "interval:%gs" s
  | Never -> Format.fprintf ppf "never"

let fsync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 1.0)
  | s ->
    let prefix = "interval:" in
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix then begin
      let v = String.sub s (String.length prefix) (String.length s - String.length prefix) in
      let v = if Filename.check_suffix v "s" then Filename.chop_suffix v "s" else v in
      match float_of_string_opt v with
      | Some secs when secs >= 0.0 -> Ok (Interval secs)
      | Some _ -> Error (Printf.sprintf "%S: interval must be >= 0" s)
      | None -> Error (Printf.sprintf "%S: expected interval:<seconds>" s)
    end
    else
      Error
        (Printf.sprintf "%S: expected always, never, interval, or interval:<seconds>" s)

(* IW_FSYNC environment policy; an unparseable value is a startup error, not
   something to discover after the first commit was acked. *)
let env_fsync ~default =
  match Sys.getenv_opt "IW_FSYNC" with
  | None | Some "" -> default
  | Some s -> (
    match fsync_of_string s with
    | Ok f -> f
    | Error msg -> invalid_arg ("IW_FSYNC: " ^ msg))

type entry =
  | Commit of {
      session : int;
      version : int;
      diff : Iw_wire.Diff.t;
    }
  | Desc of {
      serial : int;
      version : int;
      desc : Iw_types.desc;
    }

(* Filenames mirror the server's checkpoint escaping so that a segment's
   .ckpt and .wal sort next to each other. *)
let escape_name name =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' ->
           String.make 1 c
         | c -> Printf.sprintf "%%%02x" (Char.code c))
       (List.init (String.length name) (String.get name)))

let log_suffix = ".wal"

let checkpoint_suffix = ".ckpt"

let checkpoint_magic = "IWCKPT03"

(* Low-level durability primitives. *)

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* Persist a directory entry (a rename or a fresh file) by fsyncing the
   directory itself; a no-op on systems that refuse O_RDONLY on directories. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* Crash-consistent file replacement: write to a temporary, fsync it, rename
   over the destination, fsync the directory.  After a crash the destination
   is either the old content or the complete new content, never a prefix. *)
let write_atomically path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      really_write fd (Bytes.unsafe_of_string data) 0 (String.length data);
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(* CRC trailer over a whole file body: [seal] appends it, [unseal] verifies
   and strips it. *)
let seal body =
  let buf = Iw_wire.Buf.create ~capacity:(String.length body + 4) () in
  Iw_wire.Buf.add_string buf body;
  Iw_wire.Buf.u32 buf (Iw_wire.Crc32.string body);
  Iw_wire.Buf.contents buf

let unseal data =
  let n = String.length data in
  if n < 4 then None
  else begin
    let body = String.sub data 0 (n - 4) in
    let r = Iw_wire.Reader.of_string (String.sub data (n - 4) 4) in
    if Iw_wire.Reader.u32 r = Iw_wire.Crc32.string body then Some body else None
  end

(* Move a file that failed validation out of the way instead of deleting it:
   the operator may want the evidence, and recovery must not trip over it
   again on the next start. *)
let quarantine path =
  let dst = path ^ ".corrupt" in
  (try Sys.rename path dst with Sys_error _ -> ());
  dst

(* Record codec. *)

let encode_entry buf = function
  | Commit { session; version; diff } ->
    Iw_wire.Buf.u8 buf 1;
    Iw_wire.Buf.u32 buf session;
    Iw_wire.Buf.u32 buf version;
    Iw_wire.Diff.encode buf diff
  | Desc { serial; version; desc } ->
    Iw_wire.Buf.u8 buf 2;
    Iw_wire.Buf.u32 buf serial;
    Iw_wire.Buf.u32 buf version;
    Iw_wire.put_desc buf desc

(* A header body: kind 0 plus the segment name. *)
let header_body name =
  let buf = Iw_wire.Buf.create () in
  Iw_wire.Buf.u8 buf 0;
  Iw_wire.Buf.string buf name;
  Iw_wire.Buf.contents buf

let frame_record body =
  let buf = Iw_wire.Buf.create ~capacity:(String.length body + 8) () in
  Iw_wire.Buf.u32 buf (String.length body);
  Iw_wire.Buf.u32 buf (Iw_wire.Crc32.string body);
  Iw_wire.Buf.add_string buf body;
  Iw_wire.Buf.contents buf

(* One parsed record, or the reason the scan stopped.  [Record] hands back
   the raw body; the caller decodes the kind. *)
type scan_stop =
  | Scan_eof
  | Scan_torn of string  (* truncated length/body: the normal crash shape *)
  | Scan_corrupt of string  (* CRC mismatch or undecodable body *)

let scan_records data ~f =
  let n = String.length data in
  let rec go off count =
    if off = n then (off, count, Scan_eof)
    else if n - off < 8 then (off, count, Scan_torn "truncated record length")
    else begin
      let r = Iw_wire.Reader.of_string (String.sub data off 8) in
      let len = Iw_wire.Reader.u32 r in
      let crc = Iw_wire.Reader.u32 r in
      if n - off - 8 < len then (off, count, Scan_torn "truncated record body")
      else if Iw_wire.Crc32.update 0 data ~off:(off + 8) ~len <> crc then
        (off, count, Scan_corrupt "record CRC mismatch")
      else begin
        match f (String.sub data (off + 8) len) with
        | () -> go (off + 8 + len) (count + 1)
        | exception Iw_wire.Malformed msg ->
          (off, count, Scan_corrupt ("undecodable record: " ^ msg))
      end
    end
  in
  go 0 0

let decode_body body k =
  let r = Iw_wire.Reader.of_string body in
  match Iw_wire.Reader.u8 r with
  | 0 -> k (`Header (Iw_wire.Reader.string r))
  | 1 ->
    let session = Iw_wire.Reader.u32 r in
    let version = Iw_wire.Reader.u32 r in
    let diff = Iw_wire.Diff.decode r in
    k (`Entry (Commit { session; version; diff }))
  | 2 ->
    let serial = Iw_wire.Reader.u32 r in
    let version = Iw_wire.Reader.u32 r in
    let desc = Iw_wire.get_desc r in
    k (`Entry (Desc { serial; version; desc }))
  | t -> raise (Iw_wire.Malformed (Printf.sprintf "unknown WAL record kind %d" t))

(* The store. *)

type log = {
  l_fd : Unix.file_descr;
  mutable l_last_sync : float;
}

type t = {
  t_dir : string;
  t_fsync : fsync;
  t_flight : Iw_flight.t option;
  t_logs : (string, log) Hashtbl.t;  (* segment -> open log *)
  m_appended : Iw_metrics.counter;
  m_append_bytes : Iw_metrics.counter;
  m_replayed : Iw_metrics.counter;
  m_truncations : Iw_metrics.counter;
  m_truncated_bytes : Iw_metrics.counter;
  m_fsync_us : Iw_metrics.histogram;
  m_recovery_us : Iw_metrics.histogram;
}

let create ?(fsync = Interval 1.0) ?metrics ?flight dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let m =
    match metrics with
    | Some m -> m
    | None -> Iw_metrics.create ~enabled:false ()
  in
  {
    t_dir = dir;
    t_fsync = fsync;
    t_flight = flight;
    t_logs = Hashtbl.create 8;
    m_appended =
      Iw_metrics.counter m ~help:"WAL records appended" "iw_store_records_appended_total";
    m_append_bytes =
      Iw_metrics.counter m ~help:"WAL bytes appended" "iw_store_append_bytes_total";
    m_replayed =
      Iw_metrics.counter m ~help:"WAL records replayed at recovery"
        "iw_store_records_replayed_total";
    m_truncations =
      Iw_metrics.counter m
        ~help:"Torn or corrupt WAL tails truncated at recovery"
        "iw_store_records_truncated_total";
    m_truncated_bytes =
      Iw_metrics.counter m ~help:"WAL tail bytes discarded at recovery"
        "iw_store_truncated_bytes_total";
    m_fsync_us =
      Iw_metrics.histogram_us m ~help:"WAL fsync latency" "iw_store_fsync_us";
    m_recovery_us =
      Iw_metrics.histogram_us m ~help:"Segment recovery time (checkpoint + replay)"
        "iw_store_recovery_us";
  }

let dir t = t.t_dir

let fsync_policy t = t.t_fsync

let note_recovery_us t us = Iw_metrics.observe t.m_recovery_us us

let log_path t segment = Filename.concat t.t_dir (escape_name segment ^ log_suffix)

let checkpoint_path t segment =
  Filename.concat t.t_dir (escape_name segment ^ checkpoint_suffix)

let do_fsync t log =
  let t0 = Iw_metrics.now_us () in
  Unix.fsync log.l_fd;
  Iw_metrics.observe t.m_fsync_us (Iw_metrics.now_us () -. t0);
  log.l_last_sync <- Unix.gettimeofday ()

let maybe_fsync t log =
  match t.t_fsync with
  | Always -> do_fsync t log
  | Never -> ()
  | Interval secs ->
    if Unix.gettimeofday () -. log.l_last_sync >= secs then do_fsync t log

let write_record t log record =
  really_write log.l_fd (Bytes.unsafe_of_string record) 0 (String.length record);
  Iw_metrics.incr t.m_appended;
  Iw_metrics.incr ~by:(String.length record) t.m_append_bytes

let open_log t segment =
  match Hashtbl.find_opt t.t_logs segment with
  | Some log -> log
  | None ->
    let path = log_path t segment in
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let log = { l_fd = fd; l_last_sync = Unix.gettimeofday () } in
    (* A fresh (empty) log starts with its header record so the file is
       self-describing even if the directory is later reassembled by hand. *)
    if (Unix.fstat fd).Unix.st_size = 0 then begin
      write_record t log (frame_record (header_body segment));
      (* The header must hit the directory too: a log whose first record is
         torn is indistinguishable from corruption. *)
      do_fsync t log;
      fsync_dir t.t_dir
    end;
    Hashtbl.replace t.t_logs segment log;
    log

(* Append one entry and make it as durable as the policy promises before the
   caller acknowledges anything.  The write itself always reaches the kernel
   (a later kill -9 cannot lose it); fsync is what guards power loss. *)
let append t ~segment entry =
  let log = open_log t segment in
  let buf = Iw_wire.Buf.create ~capacity:256 () in
  encode_entry buf entry;
  write_record t log (frame_record (Iw_wire.Buf.contents buf));
  maybe_fsync t log

(* Checkpoint barrier: the caller has just renamed a durable checkpoint into
   place, so everything the log recorded is now redundant — reset it to just
   its header.  Crash ordering: the checkpoint is durable first, so losing
   the truncation merely leaves stale records that replay will skip. *)
let truncate t ~segment =
  (match Hashtbl.find_opt t.t_logs segment with
  | Some log ->
    (try Unix.close log.l_fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.t_logs segment
  | None -> ());
  let path = log_path t segment in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let log = { l_fd = fd; l_last_sync = Unix.gettimeofday () } in
  write_record t log (frame_record (header_body segment));
  do_fsync t log;
  Hashtbl.replace t.t_logs segment log

let flight_note t ?version ~segment event =
  match t.t_flight with
  | Some f when Iw_flight.enabled f -> Iw_flight.record f ~segment ?version event
  | _ -> ()

(* Read a log file for recovery: parse its good prefix, physically truncate
   anything after it (a torn tail is the normal shape of a crash mid-append),
   and hand back the segment name and entries.  A log whose header record is
   unreadable tells us nothing trustworthy about any segment: quarantine it
   whole.  [file] is a name inside the store directory. *)
let recover_log t ~file =
  let path = Filename.concat t.t_dir file in
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let segment = ref None in
  let entries = ref [] in
  let good_off, _, stop =
    scan_records data ~f:(fun body ->
        decode_body body (function
          | `Header name -> if !segment = None then segment := Some name
          | `Entry e -> entries := e :: !entries))
  in
  (match stop with
  | Scan_eof -> ()
  | Scan_torn reason | Scan_corrupt reason ->
    (* Keep the good prefix on disk exactly as parsed; later appends must
       not land after garbage. *)
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.ftruncate fd good_off;
        Unix.fsync fd);
    Iw_metrics.incr t.m_truncations;
    Iw_metrics.incr ~by:(String.length data - good_off) t.m_truncated_bytes;
    (match !segment with
    | Some s -> flight_note t ~segment:s "store_truncate"
    | None -> ());
    Printf.eprintf "iw-store: %s: %s at byte %d; truncated %d trailing byte(s)\n%!"
      path reason good_off
      (String.length data - good_off));
  match !segment with
  | None ->
    if String.length data > 0 then begin
      let dst = quarantine path in
      Printf.eprintf "iw-store: %s: no readable header record; quarantined as %s\n%!"
        path dst
    end
    else (try Sys.remove path with Sys_error _ -> ());
    None
  | Some name ->
    let entries = List.rev !entries in
    Iw_metrics.incr ~by:(List.length entries) t.m_replayed;
    Some (name, entries)

(* Offline validation (iw-check --store): everything a reader can say about
   a durability directory without a server. *)

type tail =
  | Tail_clean
  | Tail_torn of string
  | Tail_corrupt of string

type log_report = {
  lr_file : string;
  lr_segment : string option;
  lr_records : int;
  lr_commits : int;
  lr_first_commit : int option;  (* first commit record's version *)
  lr_last_commit : int option;
  lr_gap : (int * int) option;  (* (expected, got) at the first discontinuity *)
  lr_tail : tail;
}

let scan_log path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let segment = ref None in
    let commits = ref 0 in
    let first = ref None in
    let last = ref None in
    let gap = ref None in
    let _, records, stop =
      scan_records data ~f:(fun body ->
          decode_body body (function
            | `Header name -> if !segment = None then segment := Some name
            | `Entry (Commit { version; _ }) ->
              incr commits;
              if !first = None then first := Some version;
              (match !last with
              | Some prev when version <> prev + 1 && !gap = None ->
                gap := Some (prev + 1, version)
              | _ -> ());
              last := Some version
            | `Entry (Desc _) -> ()))
    in
    Ok
      {
        lr_file = Filename.basename path;
        lr_segment = !segment;
        lr_records = records;
        lr_commits = !commits;
        lr_first_commit = !first;
        lr_last_commit = !last;
        lr_gap = !gap;
        lr_tail =
          (match stop with
          | Scan_eof -> Tail_clean
          | Scan_torn r -> Tail_torn r
          | Scan_corrupt r -> Tail_corrupt r);
      }

(* Structural checkpoint validation: magic, CRC trailer, and the leading
   name/version fields.  The full body decode needs the server's segment
   structures; this is the part an offline tool can vouch for. *)
let verify_checkpoint path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match unseal data with
    | None -> Error "CRC trailer mismatch (corrupt or truncated)"
    | Some body -> (
      let r = Iw_wire.Reader.of_string body in
      match
        let magic = Iw_wire.Reader.string r in
        if magic <> checkpoint_magic then
          raise
            (Iw_wire.Malformed
               (Printf.sprintf "bad checkpoint magic %S (want %S)" magic
                  checkpoint_magic));
        let name = Iw_wire.Reader.string r in
        let version = Iw_wire.Reader.u32 r in
        (name, version)
      with
      | pair -> Ok pair
      | exception Iw_wire.Malformed msg -> Error msg))
