(** Durable segments: a per-segment append-only write-ahead log of committed
    wire-format diffs, plus the crash-consistency primitives checkpoint files
    are built from.

    The server appends every committed update to the segment's log {e before}
    acknowledging the release, so a crash can only lose updates the client
    never saw acknowledged.  On startup the server loads the newest valid
    checkpoint and replays the log past it; a torn or corrupt log tail — the
    normal shape of a crash mid-append — is truncated, not fatal.
    Checkpoints are log barriers: once one is durably renamed into place the
    log is reset, so recovery cost is bounded by the checkpoint interval.

    On-disk layout (one directory per server): [<name>.ckpt] checkpoints with
    a whole-file CRC-32 trailer, [<name>.wal] logs of length-prefixed
    CRC-32-protected records, and [.corrupt]-suffixed quarantined files that
    failed validation.

    Not thread-safe: the server serializes all calls under its own lock, and
    recovery runs before any connection is served. *)

(** {1 Fsync policy} *)

(** How eagerly appends reach stable storage.  Every append always reaches
    the kernel (a [kill -9] cannot lose it); fsync is what guards power loss
    and kernel crashes. *)
type fsync =
  | Always  (** fsync after every append: no acked update survives only in RAM *)
  | Interval of float  (** fsync at most once per that many seconds *)
  | Never  (** leave it to the kernel's writeback *)

val fsync_of_string : string -> (fsync, string) result
(** Parses ["always"], ["never"], ["interval"] (1 s), or
    ["interval:<seconds>"]. *)

val env_fsync : default:fsync -> fsync
(** The [IW_FSYNC] environment policy; unset or empty means [default].
    @raise Invalid_argument on an unparseable value — a bad durability policy
    is a startup error, not something to discover after the first ack. *)

val pp_fsync : Format.formatter -> fsync -> unit

(** {1 The store} *)

type t

val create : ?fsync:fsync -> ?metrics:Iw_metrics.t -> ?flight:Iw_flight.t -> string -> t
(** [create dir] opens (creating if needed) a durability directory.  [fsync]
    defaults to [Interval 1.0].  [metrics] receives the [iw_store_*]
    instruments; omitted means they are recorded nowhere. *)

val dir : t -> string

val fsync_policy : t -> fsync

(** {1 Logged entries} *)

type entry =
  | Commit of {
      session : int;
          (** the releasing session — replay rebuilds the server's release
              dedup table from it, so a release retried across a restart is
              still answered with the committed version *)
      version : int;  (** the version this commit produced *)
      diff : Iw_wire.Diff.t;
    }
  | Desc of {
      serial : int;
      version : int;  (** segment version at registration time *)
      desc : Iw_types.desc;
    }

val append : t -> segment:string -> entry -> unit
(** Append one record ([u32] body length, [u32] CRC-32 of the body, body) and
    apply the fsync policy.  The first append to a fresh log writes a
    self-describing header record carrying the segment name and fsyncs file
    and directory.  Call this {e before} acknowledging the update. *)

val truncate : t -> segment:string -> unit
(** Checkpoint barrier: reset the segment's log to just its header record.
    Call {e after} the checkpoint is durably in place — crashing between the
    two merely leaves stale records that replay skips. *)

val recover_log : t -> file:string -> (string * entry list) option
(** Parse log [file] (a basename inside the store directory) for recovery:
    returns the segment name from the header record and the entries of the
    good prefix, in append order.  A torn or corrupt tail is physically
    truncated (with a logged warning, metrics, and a flight event); a
    non-empty log with no readable header is quarantined as
    [<file>.corrupt] and an empty one removed, both yielding [None]. *)

val log_path : t -> string -> string
(** The log file path for a segment name. *)

val checkpoint_path : t -> string -> string
(** The checkpoint file path for a segment name. *)

val note_recovery_us : t -> float -> unit
(** Record one segment's recovery time (checkpoint load + replay) in the
    [iw_store_recovery_us] histogram. *)

(** {1 Crash-consistency primitives}

    Used by the server's checkpoint writer and by the offline validator. *)

val checkpoint_magic : string
(** ["IWCKPT03"] — version 2 adds the CRC trailer, version 3 the
    release-dedup table (the checkpoint is a log barrier, so without it a
    release retried across checkpoint-then-crash is refused — Iw_model
    invariant MDL04).  Older files fail validation and are quarantined,
    falling back to log replay. *)

val seal : string -> string
(** Append a CRC-32 trailer over the whole body. *)

val unseal : string -> string option
(** Verify and strip the trailer; [None] on mismatch or truncation. *)

val write_atomically : string -> string -> unit
(** Write to a temporary, fsync it, rename over the destination, fsync the
    directory: after a crash the destination is either the old or the
    complete new content, never a prefix. *)

val fsync_dir : string -> unit

val quarantine : string -> string
(** Rename a file that failed validation to [<path>.corrupt] (keeping the
    evidence for the operator) and return the new path. *)

val escape_name : string -> string
(** Percent-escape a segment name into a filename; shared with the server's
    checkpoint naming so a segment's [.ckpt] and [.wal] sort together. *)

val log_suffix : string

val checkpoint_suffix : string

(** {1 Offline validation}

    Everything [iw-check --store] can say about a durability directory
    without a server. *)

type tail =
  | Tail_clean
  | Tail_torn of string
      (** truncated length or body: consistent with a crash mid-append *)
  | Tail_corrupt of string  (** CRC mismatch or undecodable record *)

type log_report = {
  lr_file : string;
  lr_segment : string option;  (** [None]: header record missing/unreadable *)
  lr_records : int;  (** valid records, header included *)
  lr_commits : int;
  lr_first_commit : int option;  (** first commit record's version *)
  lr_last_commit : int option;
  lr_gap : (int * int) option;
      (** [(expected, got)] at the first version discontinuity *)
  lr_tail : tail;
}

val scan_log : string -> (log_report, string) result
(** Read-only scan of a log file; never modifies it.  [Error] only when the
    file cannot be read at all. *)

val verify_checkpoint : string -> (string * int, string) result
(** Structural validation of a checkpoint file: CRC trailer, magic, and the
    leading name/version fields.  Returns [(segment_name, version)]. *)
