(* Standalone driver for the open-loop YCSB-style macro-benchmark
   (Ycsb_core).  `bench/ycsb.exe --clients 500 --json` runs the workload
   and writes the results as the "ycsb" figure of the standard BENCH JSON
   document.  Runs cleanly under IW_FAULT plans (workers retry and
   reconnect) and with a durable server (--store/--fsync). *)

module C = Ycsb_core

open Cmdliner

let clients =
  Arg.(
    value
    & opt int C.default.C.clients
    & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients (one thread each).")

let rate =
  Arg.(
    value
    & opt float C.default.C.rate
    & info [ "rate" ] ~docv:"OPS"
        ~doc:"Offered load in operations per second, across all clients (open loop).")

let duration =
  Arg.(
    value
    & opt float C.default.C.duration
    & info [ "duration" ] ~docv:"SECS" ~doc:"Scheduled load window, seconds.")

let read_pct =
  Arg.(
    value
    & opt float C.default.C.read_pct
    & info [ "read-pct" ] ~docv:"PCT" ~doc:"Percentage of operations that are reads.")

let segments =
  Arg.(
    value
    & opt int C.default.C.segments
    & info [ "segments" ] ~docv:"N" ~doc:"Segment count (zipfian popularity).")

let zipf =
  Arg.(
    value
    & opt float C.default.C.zipf_theta
    & info [ "zipf" ] ~docv:"THETA"
        ~doc:"Zipfian skew of segment popularity; $(b,0) is uniform.")

let mix_conv =
  let parse s =
    try
      let parts = String.split_on_char ',' s in
      Ok
        (List.map
           (fun p ->
             match String.split_on_char '=' (String.trim p) with
             | [ m; w ] ->
               if not (List.mem m C.model_names) then
                 failwith ("unknown coherence model " ^ m);
               (m, float_of_string w)
             | _ -> failwith "expected model=weight")
           (List.filter (fun p -> String.trim p <> "") parts))
    with Failure e -> Error (`Msg e)
  in
  let print ppf mix =
    Format.fprintf ppf "%s"
      (String.concat "," (List.map (fun (m, w) -> Printf.sprintf "%s=%g" m w) mix))
  in
  Arg.conv (parse, print)

let mix =
  Arg.(
    value
    & opt mix_conv C.default.C.mix
    & info [ "mix" ] ~docv:"MODEL=W,..."
        ~doc:
          "Per-client coherence-model mix, e.g. \
           $(b,full=1,delta=1,temporal=2,diff=0); clients are split \
           proportionally.")

let delta_k =
  Arg.(
    value
    & opt int C.default.C.delta_k
    & info [ "delta" ] ~docv:"K" ~doc:"Delta coherence tolerance, versions.")

let temporal_s =
  Arg.(
    value
    & opt float C.default.C.temporal_s
    & info [ "temporal" ] ~docv:"SECS" ~doc:"Temporal coherence tolerance, seconds.")

let diff_pct =
  Arg.(
    value
    & opt float C.default.C.diff_pct
    & info [ "diff-pct" ] ~docv:"PCT" ~doc:"Diff coherence tolerance, percent.")

let payload =
  Arg.(
    value
    & opt int C.default.C.payload
    & info [ "payload" ] ~docv:"DOUBLES" ~doc:"Doubles per segment block.")

let transport_conv =
  Arg.enum [ ("loopback", C.Loopback); ("tcp", C.Tcp) ]

let transport =
  Arg.(
    value
    & opt transport_conv C.default.C.transport
    & info [ "transport" ] ~docv:"KIND"
        ~doc:
          "$(b,loopback) (in-process framed channel) or $(b,tcp) (an embedded \
           server on a real socket).")

let host =
  Arg.(
    value
    & opt (some string) None
    & info [ "host" ] ~docv:"HOST"
        ~doc:"Drive an external iw-server at $(docv) (requires $(b,--port)).")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"External server port.")

let store =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Make the embedded server durable (write-ahead log + checkpoint \
           under $(docv); validatable with $(b,iw-check --store)).")

let fsync_conv =
  let parse s =
    match Iw_store.fsync_of_string s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Iw_store.pp_fsync)

let fsync =
  Arg.(
    value
    & opt (some fsync_conv) None
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"WAL fsync policy for $(b,--store): $(b,always), $(b,never), \
              or $(b,interval:SECS).")

let seed =
  Arg.(
    value
    & opt int C.default.C.seed
    & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (schedules and key picks).")

let json =
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_results.json") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write results as the $(b,ycsb) figure of a BENCH JSON document to \
           $(docv) (just $(b,--json) writes $(b,BENCH_results.json)); the file \
           is written atomically.")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the summary table.")

let run clients rate duration read_pct segments zipf mix delta_k temporal_s
    diff_pct payload transport host port store fsync seed json quiet =
  let cfg =
    {
      C.clients;
      rate;
      duration;
      read_pct;
      segments;
      zipf_theta = zipf;
      mix;
      delta_k;
      temporal_s;
      diff_pct;
      payload;
      transport;
      host;
      port;
      store;
      fsync;
      seed;
      quiet;
    }
  in
  let r = C.run cfg in
  (match json with
  | None -> ()
  | Some path ->
    C.write_doc ~quick:(duration <= 3.) path
      [ ("ycsb", r.C.rows); ("phase", r.C.phase_rows) ]);
  if r.C.ops = 0 then 1 else 0

let cmd =
  Cmd.v
    (Cmd.info "iw-ycsb"
       ~doc:
         "Open-loop YCSB-style macro-benchmark: read/write mix, zipfian \
          segment popularity, per-client coherence-model mix, \
          coordinated-omission-safe latency and observed staleness.")
    Term.(
      const run $ clients $ rate $ duration $ read_pct $ segments $ zipf $ mix
      $ delta_k $ temporal_s $ diff_pct $ payload $ transport $ host $ port
      $ store $ fsync $ seed $ json $ quiet)

let () = exit (Cmd.eval' cmd)
