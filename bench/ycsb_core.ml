(* Open-loop YCSB-style macro-benchmark.

   The paper's figures 4-7 are single-client microbenchmarks; this harness
   drives production-shaped load: hundreds of simulated clients, a
   configurable read/write mix, zipfian segment popularity, and a
   per-client coherence-model mix over the paper's relaxed read models
   (Full / Delta / Temporal / Diff).

   The generator is OPEN-LOOP: every operation has a scheduled arrival time
   drawn from a Poisson process fixed before the run reacts to anything,
   and latency is measured from that scheduled time — not from when the
   client actually got around to sending.  A stalled server therefore
   inflates the recorded tail (the queueing delay its victims experienced)
   instead of silently throttling the offered load, which is the
   coordinated-omission trap closed-loop harnesses fall into.

   Staleness is measured, not modelled: every committed write embeds its
   commit wall-time in the block, and the harness publishes that timestamp
   to a shared per-segment cell only after the release is acknowledged.  A
   reader samples the cell before acquiring, reads the embedded timestamp
   under the lock, and the difference is the staleness its coherence model
   actually let it observe. *)

module I = Interweave
module J = Iw_obs_json

type transport =
  | Loopback
  | Tcp

type config = {
  clients : int;
  rate : float;  (* target ops/s across all clients *)
  duration : float;  (* seconds of scheduled load *)
  read_pct : float;  (* 0..100 *)
  segments : int;
  zipf_theta : float;  (* 0 = uniform *)
  mix : (string * float) list;  (* coherence model name -> client weight *)
  delta_k : int;  (* Delta tolerance, versions *)
  temporal_s : float;  (* Temporal tolerance, seconds *)
  diff_pct : float;  (* Diff_pct tolerance, percent *)
  payload : int;  (* doubles per block, >= 2 *)
  transport : transport;
  host : string option;  (* with [port]: drive an external server *)
  port : int option;
  store : string option;  (* durable embedded server *)
  fsync : Iw_store.fsync option;
  seed : int;
  quiet : bool;
}

let default =
  {
    clients = 64;
    rate = 2000.;
    duration = 3.;
    read_pct = 95.;
    segments = 16;
    zipf_theta = 0.99;
    mix = [ ("full", 1.); ("delta", 1.); ("temporal", 1.); ("diff", 1.) ];
    delta_k = 3;
    temporal_s = 0.05;
    diff_pct = 25.;
    payload = 16;
    transport = Loopback;
    host = None;
    port = None;
    store = None;
    fsync = None;
    seed = 42;
    quiet = false;
  }

let model_names = [ "full"; "delta"; "temporal"; "diff" ]

let coherence_of cfg = function
  | "full" -> I.Proto.Full
  | "delta" -> I.Proto.Delta cfg.delta_k
  | "temporal" -> I.Proto.Temporal cfg.temporal_s
  | "diff" -> I.Proto.Diff_pct cfg.diff_pct
  | m -> invalid_arg ("unknown coherence model " ^ m)

let seg_name i = Printf.sprintf "ycsb/seg-%d" i

(* Deterministic proportional assignment: client [idx] gets the model whose
   cumulative mix fraction covers (idx + 0.5) / clients, so a 500-client run
   with equal weights really runs 125 of each. *)
let model_of_idx cfg idx =
  let mix = List.filter (fun (_, w) -> w > 0.) cfg.mix in
  let mix = if mix = [] then [ ("full", 1.) ] else mix in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. mix in
  let u = (float_of_int idx +. 0.5) /. float_of_int (max 1 cfg.clients) in
  let rec pick acc = function
    | [ (m, _) ] -> m
    | (m, w) :: rest -> if u < (acc +. w) /. total then m else pick (acc +. w) rest
    | [] -> assert false
  in
  pick 0. mix

(* Zipfian popularity over segment ranks: weight of rank i is 1/i^theta.
   Sampling is a binary search over the precomputed cumulative weights. *)
let zipf_cumulative n theta =
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) theta);
    cum.(i) <- !acc
  done;
  cum

let zipf_pick cum rng =
  let total = cum.(Array.length cum - 1) in
  let u = Random.State.float rng total in
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo

(* What one simulated client accumulates.  Histograms are per-worker and
   merged after the join — no lock on the recording path. *)
type worker = {
  w_idx : int;
  w_model : string;
  w_lat : Iw_hist.t;  (* every completed op, us from scheduled start *)
  w_read : Iw_hist.t;
  w_write : Iw_hist.t;
  w_stale : Iw_hist.t;  (* observed staleness at read, us *)
  mutable w_reads : int;
  mutable w_writes : int;
  mutable w_errors : int;
  mutable w_skipped : int;  (* scheduled ops abandoned at the grace cutoff *)
  mutable w_bytes_sent : int;
  mutable w_bytes_received : int;
  mutable w_calls : int;
}

type shared = {
  latest : float array;  (* per segment: newest ACKED commit timestamp *)
  seg_stale : (Mutex.t * Iw_hist.t) array;  (* per segment, cross-worker *)
}

let free_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close s;
  port

type endpoint =
  | Ep_loopback of I.server
  | Ep_tcp of string * int

(* Hundreds of workers connecting at once can outrun the server's accept
   loop (listen-backlog overflow resets the connection); back off and
   retry rather than killing the worker thread. *)
let connect_client ep =
  match ep with
  | Ep_loopback server -> I.loopback_client server
  | Ep_tcp (host, port) ->
    let rec go n =
      match I.tcp_client ~host ~port () with
      | c -> c
      | exception Iw_transport.Connect_failed _ when n > 0 ->
        Thread.delay 0.05;
        go (n - 1)
    in
    go 100

(* Embedded servers get a lease so that, under an IW_FAULT plan, a worker
   whose connection dies mid-critical-section resumes with its write lock
   intact instead of surfacing Lock_lost. *)
let make_endpoint cfg =
  match (cfg.host, cfg.port) with
  | Some h, Some p -> (Ep_tcp (h, p), None, None)
  | _ ->
    let server =
      I.start_server ~lease_secs:30.0 ?checkpoint_dir:cfg.store ?fsync:cfg.fsync ()
    in
    (match cfg.transport with
    | Loopback -> (Ep_loopback server, Some server, None)
    | Tcp ->
      let port = free_port () in
      let stop = ref false in
      let th =
        Thread.create
          (fun () ->
            Iw_transport.tcp_server ~port ~stop (fun conn ->
                Iw_server.serve_conn server conn))
          ()
      in
      (* Wait until the accept loop answers. *)
      let rec ready n =
        match Iw_transport.tcp_connect ~host:"127.0.0.1" ~port with
        | conn -> conn.Iw_transport.close ()
        | exception Iw_transport.Connect_failed _ when n > 0 ->
          Thread.delay 0.02;
          ready (n - 1)
      in
      ready 250;
      (Ep_tcp ("127.0.0.1", port), Some server, Some (stop, th)))

(* One writer-style setup pass: create every segment with a named payload
   block whose element 0 carries the commit timestamp. *)
let setup_segments cfg ep shared =
  let c = connect_client ep in
  let desc = I.Desc.array I.Desc.double (max 2 cfg.payload) in
  for i = 0 to cfg.segments - 1 do
    let h = I.open_segment c (seg_name i) in
    I.wl_acquire h;
    (if I.Client.find_named_block h "p" = None then
       ignore (I.malloc ~name:"p" h desc : I.addr));
    let a0 = I.mip_to_ptr c (seg_name i ^ "#p#0") in
    let ts = Unix.gettimeofday () in
    I.Client.write_double c a0 ts;
    I.wl_release h;
    shared.latest.(i) <- ts
  done;
  I.Client.disconnect c;
  desc

let now () = Unix.gettimeofday ()

let run_worker cfg ep shared desc w start_gate =
  let c = connect_client ep in
  let model = w.w_model in
  let segs =
    Array.init cfg.segments (fun i ->
        let h = I.open_segment ~create:false c (seg_name i) in
        I.set_coherence h (coherence_of cfg model);
        let a0 = I.mip_to_ptr c (seg_name i ^ "#p#0") in
        (i, h, a0))
  in
  let rng = Random.State.make [| cfg.seed; w.w_idx; 0x59c5b |] in
  let cum = zipf_cumulative cfg.segments cfg.zipf_theta in
  let mean_gap = float_of_int cfg.clients /. cfg.rate in
  let next_gap () =
    (* Poisson arrivals: exponential inter-arrival times. *)
    -.mean_gap *. log (1. -. Random.State.float rng 1.)
  in
  let payload = max 2 cfg.payload in
  let do_read (si, h, a0) =
    let expected = shared.latest.(si) in
    I.rl_acquire h;
    let obs = I.Client.read_double c a0 in
    I.rl_release h;
    let stale_us = Float.max 0. ((expected -. obs) *. 1e6) in
    Iw_hist.record w.w_stale stale_us;
    let m, sh = shared.seg_stale.(si) in
    Mutex.lock m;
    Iw_hist.record sh stale_us;
    Mutex.unlock m;
    w.w_reads <- w.w_reads + 1
  in
  let do_write (si, h, a0) =
    I.wl_acquire h;
    let ts = now () in
    I.Client.write_double c a0 ts;
    (* Touch one payload word too so diffs carry real data, at a position
       that varies (diff runs are not always the same single word). *)
    let k = 1 + Random.State.int rng (payload - 1) in
    let ak = I.deref c desc a0 [ I.I k ] in
    I.Client.write_double c ak ts;
    I.wl_release h;
    (* Publish only after the ack: a reader that samples [latest] now is
       guaranteed the server really has this version. *)
    if ts > shared.latest.(si) then shared.latest.(si) <- ts;
    w.w_writes <- w.w_writes + 1
  in
  (* Wait for every worker to finish connecting, then read the shared
     schedule origin — connect time must not eat into the schedule. *)
  let t0, t_end = start_gate () in
  let grace = t_end +. Float.max 10. cfg.duration in
  let rec loop sched =
    if sched < t_end then begin
      let t = now () in
      if t > grace then
        (* Hopelessly behind (server stalled for the whole grace window):
           abandoning the remaining schedule is reported, never silent. *)
        w.w_skipped <-
          w.w_skipped + int_of_float (Float.max 1. ((t_end -. sched) /. mean_gap))
      else begin
        if t < sched then Thread.delay (sched -. t);
        let target = segs.(zipf_pick cum rng) in
        let is_read = Random.State.float rng 100. < cfg.read_pct in
        (try if is_read then do_read target else do_write target
         with _ -> w.w_errors <- w.w_errors + 1);
        let lat_us = (now () -. sched) *. 1e6 in
        Iw_hist.record w.w_lat lat_us;
        if is_read then Iw_hist.record w.w_read lat_us
        else Iw_hist.record w.w_write lat_us;
        loop (sched +. next_gap ())
      end
    end
  in
  loop (t0 +. next_gap ());
  let st = I.Client.stats c in
  w.w_bytes_sent <- st.I.Client.bytes_sent;
  w.w_bytes_received <- st.I.Client.bytes_received;
  w.w_calls <- st.I.Client.calls;
  (try I.Client.disconnect c with _ -> ())

(* NaN/infinity would render as invalid JSON; empty histograms report 0. *)
let num v = if Float.is_nan v || not (Float.is_finite v) then J.Num 0. else J.Num v

let hist_fields prefix h =
  let s = Iw_hist.summary h in
  [
    (prefix ^ "p50_us", num s.Iw_hist.sm_p50);
    (prefix ^ "p90_us", num s.Iw_hist.sm_p90);
    (prefix ^ "p99_us", num s.Iw_hist.sm_p99);
    (prefix ^ "p999_us", num s.Iw_hist.sm_p999);
    (prefix ^ "max_us", num s.Iw_hist.sm_max);
  ]

(* ---- The "phase" figure: server-side request-lifecycle decomposition ----

   Where did the latency go?  The server times every request through the
   Iw_phase pipeline (decode / lock_wait / service / wal / reply); this
   section reports each phase's request count, exact summed exclusive
   microseconds, share of the end-to-end total, and p50/p99 — plus a
   "phase:total" row whose coverage_pct says how much of the measured total
   the phases explain (the one-big-lock server should sit near 100: at
   saturation the lock wait IS the queueing).

   On embedded runs the server object is in hand and Iw_phase.stats gives
   exact Iw_hist quantiles; against an external server (--host/--port) the
   same decomposition is derived from a Server_stats snapshot, whose
   iw_server_phase_us{phase=...} histograms carry exact sums but bucketed
   (conservative) quantiles. *)

type phase_cell = {
  pc_name : string;
  pc_count : int;
  pc_sum_us : float;  (* exact accumulated exclusive us *)
  pc_p50_us : float;
  pc_p99_us : float;
}

let finite v = if Float.is_nan v || not (Float.is_finite v) then 0. else v

let phase_cells_embedded server =
  let st = I.Server.phase_stats server in
  let cell_of name count sum_us (s : Iw_hist.summary) =
    {
      pc_name = name;
      pc_count = count;
      pc_sum_us = sum_us;
      pc_p50_us = finite s.Iw_hist.sm_p50;
      pc_p99_us = finite s.Iw_hist.sm_p99;
    }
  in
  let cells =
    List.map
      (fun p ->
        let s = Iw_phase.phase_summary st p in
        cell_of (Iw_phase.name p) s.Iw_hist.sm_count (Iw_phase.phase_sum_us st p) s)
      Iw_phase.phases
  in
  let t = Iw_phase.total_summary st in
  (cells, cell_of "total" t.Iw_hist.sm_count (Iw_phase.total_sum_us st) t)

let phase_cells_of_snapshot snap =
  let cell name hist =
    match hist with
    | Some hv ->
      {
        pc_name = name;
        pc_count = hv.Iw_metrics.hv_count;
        pc_sum_us = hv.Iw_metrics.hv_sum;
        pc_p50_us = finite (Iw_metrics.hist_quantile hv 0.5);
        pc_p99_us = finite (Iw_metrics.hist_quantile hv 0.99);
      }
    | None ->
      { pc_name = name; pc_count = 0; pc_sum_us = 0.; pc_p50_us = 0.; pc_p99_us = 0. }
  in
  let hist name =
    match Iw_metrics.find snap name with
    | Some (Iw_metrics.V_hist hv) -> Some hv
    | _ -> None
  in
  let cells =
    List.map
      (fun p ->
        let n = Iw_phase.name p in
        cell n (hist (Iw_metrics.with_label "iw_server_phase_us" "phase" n)))
      Iw_phase.phases
  in
  (cells, cell "total" (hist "iw_server_request_total_us"))

(* One Hello + Server_stats round trip against an external server.  An old
   server that answers R_error (or drops the connection on the unknown tag)
   yields None — the phase section then reports zeros rather than failing
   the benchmark run. *)
let fetch_server_snapshot host port =
  match
    let conn = Iw_transport.tcp_connect ~host ~port in
    let link = Iw_proto.demux_link conn ~on_notify:(fun _ -> ()) in
    Fun.protect
      ~finally:(fun () -> try link.Iw_proto.close () with _ -> ())
      (fun () ->
        match link.Iw_proto.call (Iw_proto.Hello { arch = "bench" }) with
        | Iw_proto.R_hello { session } -> (
          match link.Iw_proto.call (Iw_proto.Server_stats { session }) with
          | Iw_proto.R_server_stats snap -> Some snap
          | _ -> None)
        | _ -> None)
  with
  | snap -> snap
  | exception _ -> None

let phase_json (cells, total) =
  let share sum_us =
    if total.pc_sum_us > 0. then 100. *. sum_us /. total.pc_sum_us else 0.
  in
  let phase_sum = List.fold_left (fun a c -> a +. c.pc_sum_us) 0. cells in
  let row c extra =
    J.Obj
      ([
         ("series", J.Str ("phase:" ^ c.pc_name));
         ("count", J.num_int c.pc_count);
         ("sum_us", num c.pc_sum_us);
         ("share_pct", num (share c.pc_sum_us));
         ("p50_us", num c.pc_p50_us);
         ("p99_us", num c.pc_p99_us);
       ]
      @ extra)
  in
  J.Arr
    (List.map (fun c -> row c []) cells
    @ [
        row total
          [ ("phase_sum_us", num phase_sum); ("coverage_pct", num (share phase_sum)) ];
      ])

let print_phases (cells, total) =
  if total.pc_count > 0 && total.pc_sum_us > 0. then begin
    Printf.printf "  server phases (%d requests):" total.pc_count;
    List.iter
      (fun c ->
        Printf.printf " %s %.0f%%" c.pc_name (100. *. c.pc_sum_us /. total.pc_sum_us))
      cells;
    Printf.printf "\n%!"
  end

type result = {
  rows : J.t;  (* the "ycsb" figure section: an array of flat rows *)
  phase_rows : J.t;  (* the "phase" figure section: one row per phase + total *)
  throughput : float;
  ops : int;
  errors : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

let merge_group hs =
  let acc = Iw_hist.create () in
  List.iter (fun h -> Iw_hist.merge ~into:acc h) hs;
  acc

let run cfg =
  if cfg.clients < 1 || cfg.segments < 1 || cfg.rate <= 0. || cfg.duration <= 0.
  then invalid_arg "ycsb: clients/segments >= 1, rate/duration > 0";
  let ep, server, tcp_stop = make_endpoint cfg in
  let shared =
    {
      latest = Array.make cfg.segments 0.;
      seg_stale =
        Array.init cfg.segments (fun _ -> (Mutex.create (), Iw_hist.create ()));
    }
  in
  let desc = setup_segments cfg ep shared in
  let workers =
    Array.init cfg.clients (fun i ->
        {
          w_idx = i;
          w_model = model_of_idx cfg i;
          w_lat = Iw_hist.create ();
          w_read = Iw_hist.create ();
          w_write = Iw_hist.create ();
          w_stale = Iw_hist.create ();
          w_reads = 0;
          w_writes = 0;
          w_errors = 0;
          w_skipped = 0;
          w_bytes_sent = 0;
          w_bytes_received = 0;
          w_calls = 0;
        })
  in
  (* Start gate: workers connect, report ready, and block until the main
     thread fixes the common schedule origin. *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let ready = ref 0 in
  let window = ref None in
  let start_gate () =
    Mutex.lock gate_m;
    incr ready;
    Condition.broadcast gate_c;
    let rec wait () =
      match !window with
      | Some w -> w
      | None ->
        Condition.wait gate_c gate_m;
        wait ()
    in
    let w = wait () in
    Mutex.unlock gate_m;
    w
  in
  let threads =
    Array.map
      (fun w -> Thread.create (fun () -> run_worker cfg ep shared desc w start_gate) ())
      workers
  in
  Mutex.lock gate_m;
  while !ready < cfg.clients do
    Condition.wait gate_c gate_m
  done;
  let t0 = now () +. 0.05 in
  window := Some (t0, t0 +. cfg.duration);
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  Array.iter Thread.join threads;
  let wall = now () -. t0 in
  (match tcp_stop with
  | Some (stop, th) ->
    stop := true;
    Thread.join th
  | None -> ());
  (* Leave a durable embedded server's store validatable: a final checkpoint
     plus whatever WAL records followed it. *)
  (match server with
  | Some s when cfg.store <> None -> I.Server.checkpoint s
  | _ -> ());
  let ws = Array.to_list workers in
  let lat = merge_group (List.map (fun w -> w.w_lat) ws) in
  let read_lat = merge_group (List.map (fun w -> w.w_read) ws) in
  let write_lat = merge_group (List.map (fun w -> w.w_write) ws) in
  let sum f = List.fold_left (fun a w -> a + f w) 0 ws in
  let ops = Iw_hist.count lat in
  let errors = sum (fun w -> w.w_errors) in
  let skipped = sum (fun w -> w.w_skipped) in
  let bytes_sent = sum (fun w -> w.w_bytes_sent) in
  let bytes_received = sum (fun w -> w.w_bytes_received) in
  let elapsed = Float.max wall cfg.duration in
  let throughput = float_of_int ops /. elapsed in
  let overall_row =
    J.Obj
      ([
         ("series", J.Str "overall");
         ("clients", J.num_int cfg.clients);
         ("segments", J.num_int cfg.segments);
         ("rate_target_per_s", J.Num cfg.rate);
         ("duration_s", J.Num cfg.duration);
         ("read_pct", J.Num cfg.read_pct);
         ("zipf_theta", J.Num cfg.zipf_theta);
         ("ops", J.num_int ops);
         ("reads", J.num_int (sum (fun w -> w.w_reads)));
         ("writes", J.num_int (sum (fun w -> w.w_writes)));
         ("errors", J.num_int errors);
         ("skipped", J.num_int skipped);
         ("throughput_ops_per_s", num throughput);
         ("mean_us", num (Iw_hist.mean lat));
       ]
      @ hist_fields "" lat
      @ [
          ("bytes_sent", J.num_int bytes_sent);
          ("bytes_received", J.num_int bytes_received);
          ("calls", J.num_int (sum (fun w -> w.w_calls)));
        ])
  in
  let rw_rows =
    [
      J.Obj
        (("series", J.Str "read")
         :: ("ops", J.num_int (Iw_hist.count read_lat))
         :: hist_fields "" read_lat);
      J.Obj
        (("series", J.Str "write")
         :: ("ops", J.num_int (Iw_hist.count write_lat))
         :: hist_fields "" write_lat);
    ]
  in
  let coh_rows =
    List.filter_map
      (fun m ->
        let group = List.filter (fun w -> w.w_model = m) ws in
        if group = [] then None
        else begin
          let glat = merge_group (List.map (fun w -> w.w_read) group) in
          let gstale = merge_group (List.map (fun w -> w.w_stale) group) in
          Some
            (J.Obj
               ([
                  ("series", J.Str ("coherence:" ^ m));
                  ("clients", J.num_int (List.length group));
                  ("reads", J.num_int (Iw_hist.count gstale));
                ]
               @ hist_fields "" glat
               @ hist_fields "stale_" gstale))
        end)
      model_names
  in
  let seg_rows =
    List.init cfg.segments (fun i ->
        let _, sh = shared.seg_stale.(i) in
        J.Obj
          ([
             ("series", J.Str ("seg:" ^ seg_name i));
             ("reads", J.num_int (Iw_hist.count sh));
           ]
          @ hist_fields "stale_" sh))
  in
  let rows = J.Arr ((overall_row :: rw_rows) @ coh_rows @ seg_rows) in
  let phase_cells =
    match server with
    | Some s -> phase_cells_embedded s
    | None -> (
      match (cfg.host, cfg.port) with
      | Some h, Some p -> (
        match fetch_server_snapshot h p with
        | Some snap -> phase_cells_of_snapshot snap
        | None ->
          Printf.eprintf
            "note: external server answered no Server_stats (too old?); phase \
             section reports zeros\n%!";
          phase_cells_of_snapshot [])
      | _ -> phase_cells_of_snapshot [])
  in
  let sm = Iw_hist.summary lat in
  if not cfg.quiet then begin
    Printf.printf
      "ycsb: %d clients, %.0f ops/s offered for %.1fs (%s), %d segments, \
       zipf %.2f, %.0f%% reads\n"
      cfg.clients cfg.rate cfg.duration
      (match ep with Ep_loopback _ -> "loopback" | Ep_tcp (h, p) -> Printf.sprintf "tcp %s:%d" h p)
      cfg.segments cfg.zipf_theta cfg.read_pct;
    Printf.printf
      "  %d ops (%d errors, %d skipped), %.0f ops/s, latency us \
       p50=%.0f p90=%.0f p99=%.0f p999=%.0f max=%.0f\n"
      ops errors skipped throughput sm.Iw_hist.sm_p50 sm.Iw_hist.sm_p90
      sm.Iw_hist.sm_p99 sm.Iw_hist.sm_p999 sm.Iw_hist.sm_max;
    List.iter
      (fun m ->
        let group = List.filter (fun w -> w.w_model = m) ws in
        if group <> [] then begin
          let gstale = merge_group (List.map (fun w -> w.w_stale) group) in
          let gs = Iw_hist.summary gstale in
          Printf.printf
            "  %-9s %3d clients, staleness us p50=%.0f p99=%.0f max=%.0f (%d reads)\n"
            m (List.length group)
            (if Float.is_nan gs.Iw_hist.sm_p50 then 0. else gs.Iw_hist.sm_p50)
            (if Float.is_nan gs.Iw_hist.sm_p99 then 0. else gs.Iw_hist.sm_p99)
            (if Float.is_nan gs.Iw_hist.sm_max then 0. else gs.Iw_hist.sm_max)
            (Iw_hist.count gstale)
        end)
      model_names;
    print_phases phase_cells;
    Printf.printf "  bytes on wire: %d sent, %d received\n%!" bytes_sent
      bytes_received
  end;
  {
    rows;
    phase_rows = phase_json phase_cells;
    throughput;
    ops;
    errors;
    p50_us = sm.Iw_hist.sm_p50;
    p99_us = sm.Iw_hist.sm_p99;
    p999_us = sm.Iw_hist.sm_p999;
  }

(* The BENCH_results.json document shape, shared by `bench --json` and the
   standalone ycsb driver.  Written atomically (temp + fsync + rename): an
   interrupted run can never leave a torn baseline behind.  The document is
   re-parsed before success is declared, so an encoder regression fails the
   producer, not the downstream consumer. *)
let write_doc ?(quick = false) ?(size = 0) path figures =
  let doc =
    J.Obj
      [
        ("suite", J.Str "iw-bench");
        ("paper", J.Str "Tang et al., ICDCS 2003");
        ("quick", J.Bool quick);
        ("size_bytes", J.num_int size);
        ("figures", J.Obj figures);
      ]
  in
  Iw_store.write_atomically path (J.to_string doc ^ "\n");
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.parse contents with
  | Ok _ -> Printf.printf "wrote %s\n%!" path
  | Error e ->
    Printf.eprintf "error: %s is not valid JSON: %s\n" path e;
    exit 1
