(* Figure 7: total bandwidth requirement of the datamining application as
   the mining client relaxes its coherence model.

   A database server builds a sequence lattice from half the database, then
   applies [increments] updates of 1% each.  We measure total bytes moved to
   the mining client under: full transfer (a cacheless client fetching the
   whole summary at every version), wire-format diffs at every version
   (Diff-only), and Delta-2/3/4 coherence. *)

open Bench_util
module Gen = Iw_seqmine.Gen
module Lattice = Iw_seqmine.Lattice

type bar = {
  b_mode : string;
  b_bytes : int;
  b_calls : int;  (* protocol round trips issued by the reader *)
}

let run ?(scale = 0.05) ?(increments = 50) () =
  let params = Gen.scaled scale in
  let db = Gen.generate params in
  let min_support = max 5 (params.Gen.customers / 250) in
  Printf.printf
    "Figure 7 workload: %d customers, %d items, %.1f MB database, min support %d, %d increments of 1%%\n"
    params.Gen.customers params.Gen.items
    (float_of_int (Gen.size_bytes db) /. 1024. /. 1024.)
    min_support increments;
  let server = Interweave.start_server () in
  let dbc = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  let lattice = Lattice.create dbc ~segment:"mining/summary" ~min_support in
  let half = params.Gen.customers / 2 in
  Lattice.update lattice db ~from_customer:0 ~to_customer:half;
  Printf.printf "initial summary: %d nodes, %d primitive units\n%!"
    (Lattice.node_count lattice) (Lattice.total_units lattice);

  (* Persistent mining clients, one per coherence mode, all caching the
     initial summary before the measured run starts. *)
  let mk_reader mode coherence =
    let mc = Interweave.direct_client ~arch:Iw_arch.alpha64 server in
    let l = Lattice.attach mc ~segment:"mining/summary" in
    let seg = Lattice.segment l in
    Interweave.set_coherence seg coherence;
    Iw_client.rl_acquire seg;
    Iw_client.rl_release seg;
    Iw_client.reset_stats mc;
    (mode, mc, seg)
  in
  let readers =
    [
      mk_reader "Diff-only" Iw_proto.Full;
      mk_reader "Delta-2" (Iw_proto.Delta 2);
      mk_reader "Delta-3" (Iw_proto.Delta 3);
      mk_reader "Delta-4" (Iw_proto.Delta 4);
    ]
  in
  (* The cacheless baseline: each fetch moves the whole summary. *)
  let full_bytes = ref 0 in
  let full_calls = ref 0 in
  let one_pct = max 1 (params.Gen.customers / 100) in
  for inc = 0 to increments - 1 do
    let from = half + (inc * one_pct) in
    let upto = min params.Gen.customers (from + one_pct) in
    Lattice.update lattice db ~from_customer:from ~to_customer:upto;
    (* Every reader polls after every new version (the paper's client issues
       mining queries continuously). *)
    List.iter
      (fun (_, _, seg) ->
        Iw_client.rl_acquire seg;
        Iw_client.rl_release seg)
      readers;
    (* Full transfer: a fresh, cacheless client fetches everything. *)
    let fc = Interweave.direct_client server in
    let fl = Lattice.attach fc ~segment:"mining/summary" in
    let fseg = Lattice.segment fl in
    Iw_client.rl_acquire fseg;
    Iw_client.rl_release fseg;
    full_bytes := !full_bytes + (Iw_client.stats fc).Iw_client.bytes_received;
    full_calls := !full_calls + (Iw_client.stats fc).Iw_client.calls
  done;
  Printf.printf "final summary: %d nodes\n" (Lattice.node_count lattice);
  let bars =
    { b_mode = "Full transfer"; b_bytes = !full_bytes; b_calls = !full_calls }
    :: List.map
         (fun (mode, mc, _) ->
           let st = Iw_client.stats mc in
           { b_mode = mode; b_bytes = st.Iw_client.bytes_received; b_calls = st.Iw_client.calls })
         readers
  in
  print_header "Figure 7: total bandwidth, datamining application" [ "MB"; "vs full"; "round trips" ];
  List.iter
    (fun bar ->
      print_row bar.b_mode
        [
          mb bar.b_bytes;
          Printf.sprintf "%.1f%%" (100. *. float_of_int bar.b_bytes /. float_of_int !full_bytes);
          string_of_int bar.b_calls;
        ])
    bars;
  bars
