(* Benchmark harness entry point.

   Default (no arguments): regenerate every table and figure of the paper's
   evaluation (Figures 4-7) plus the Section 3.3 optimization ablations.
   Subcommands run one experiment, optionally at reduced size.

   With [--json [PATH]] the harness also writes the measured rows as a
   machine-readable JSON document (default BENCH_results.json), re-parsing
   its own output before declaring success so a regression in the encoder
   fails the run rather than the downstream consumer. *)

module J = Iw_obs_json

let quick_size quick = if quick then 1 lsl 18 else 1 lsl 20

let eff_size quick = function Some s -> s | None -> quick_size quick

(* JSON rendering of each figure's result rows.  Times are seconds, sizes
   bytes; field names say which. *)

let fig4_json rows =
  J.Arr
    (List.map
       (fun (r : Fig4.row) ->
         J.Obj
           [
             ("shape", J.Str r.Fig4.r_shape);
             ("xdr_s", J.Num r.Fig4.r_xdr);
             ("collect_block_s", J.Num r.Fig4.r_collect_block);
             ("collect_diff_s", J.Num r.Fig4.r_collect_diff);
             ("apply_block_s", J.Num r.Fig4.r_apply_block);
             ("apply_diff_s", J.Num r.Fig4.r_apply_diff);
             ("server_apply_s", J.Num r.Fig4.r_server_apply);
             ("server_collect_s", J.Num r.Fig4.r_server_collect);
           ])
       rows)

let fig5_json points =
  J.Arr
    (List.map
       (fun (p : Fig5.point) ->
         J.Obj
           [
             ("ratio", J.num_int p.Fig5.p_ratio);
             ("word_diff_s", J.Num p.Fig5.p_word_diff);
             ("translate_s", J.Num p.Fig5.p_translate);
             ("collect_s", J.Num p.Fig5.p_collect);
             ("apply_s", J.Num p.Fig5.p_apply);
             ("server_apply_s", J.Num p.Fig5.p_server_apply);
             ("server_collect_s", J.Num p.Fig5.p_server_collect);
             ("bytes_sent", J.num_int p.Fig5.p_bytes);
           ])
       points)

let fig6_json points =
  J.Arr
    (List.map
       (fun (p : Fig6.point) ->
         J.Obj
           [
             ("case", J.Str p.Fig6.c_case);
             ("swizzle_s", J.Num p.Fig6.c_swizzle);
             ("unswizzle_s", J.Num p.Fig6.c_unswizzle);
           ])
       points)

let fig7_json bars =
  J.Arr
    (List.map
       (fun (b : Fig7.bar) ->
         J.Obj
           [
             ("mode", J.Str b.Fig7.b_mode);
             ("bytes_received", J.num_int b.Fig7.b_bytes);
             ("round_trips", J.num_int b.Fig7.b_calls);
           ])
       bars)

(* Each runner prints its human-readable table (as before) and returns the
   ["figN" -> rows] sections that go under "figures" in the JSON document. *)

let run_fig4 ~quick:_ ~size () = [ ("fig4", fig4_json (Fig4.run ~size ())) ]

let run_fig5 ~quick:_ ~size () = [ ("fig5", fig5_json (Fig5.run ~size ())) ]

let run_fig6 ~quick:_ ~size:_ () = [ ("fig6", fig6_json (Fig6.run ())) ]

let run_fig7 ~quick ~size:_ () =
  let scale = if quick then 0.01 else 0.05 in
  let increments = if quick then 20 else 50 in
  [ ("fig7", fig7_json (Fig7.run ~scale ~increments ())) ]

let run_ablation ~quick:_ ~size:_ () =
  Ablation.run ();
  []

let run_bechamel ~quick:_ ~size:_ () =
  Bechamel_suite.run ();
  []

(* The macro-benchmark rides the suite at a reduced shape so the committed
   BENCH_results.json baseline always carries a ycsb section for
   `iw-check --bench-compare` to gate on.  bench/ycsb.exe is the standalone
   driver with every knob. *)
let run_ycsb ~quick ~size:_ () =
  let cfg =
    {
      Ycsb_core.default with
      Ycsb_core.clients = (if quick then 32 else 64);
      rate = (if quick then 2000. else 4000.);
      duration = (if quick then 2. else 4.);
    }
  in
  let r = Ycsb_core.run cfg in
  [ ("ycsb", r.Ycsb_core.rows); ("phase", r.Ycsb_core.phase_rows) ]

let run_all ~quick ~size () =
  print_endline "InterWeave benchmark suite (paper: Tang et al., ICDCS 2003)";
  let f4 = run_fig4 ~quick ~size () in
  let f5 = run_fig5 ~quick ~size () in
  let f6 = run_fig6 ~quick ~size () in
  let f7 = run_fig7 ~quick ~size () in
  let fy = run_ycsb ~quick ~size () in
  Ablation.run ();
  f4 @ f5 @ f6 @ f7 @ fy

(* Atomic (temp + fsync + rename) so an interrupted run can never leave a
   torn BENCH_results.json baseline; re-parsed before declaring success. *)
let write_json ~quick ~size path figures = Ycsb_core.write_doc ~quick ~size path figures

(* --check-prom rides along with the @check smoke run: drive a tiny
   two-client loopback workload through the per-segment coherence
   instrumentation and assert the gauges land in the server's Prometheus
   rendering — a guard against the observability surface silently
   regressing. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let coherence_gauges =
  [
    "iw_seg_version_lag";
    "iw_seg_staleness_us";
    "iw_seg_wasted_acquire_total";
    (* Request-lifecycle and contention series (Iw_phase / Iw_locked): the
       phase histograms land on every handled request, the lock-section
       histograms on every dispatch, and the two gauges are collect-time
       probes — all must survive in the Prometheus rendering. *)
    "iw_server_phase_us";
    "iw_server_request_total_us";
    "iw_server_lock_wait_us";
    "iw_server_lock_hold_us";
    "iw_server_lock_queue_depth";
    "iw_server_inflight";
  ]

let check_prom_gauges ?store () =
  let module I = Interweave in
  (* Leased so that, under an IW_FAULT plan (the @check fault smoke), a
     connection dropped mid-critical-section resumes with its lock intact
     instead of surfacing Lock_lost.  With --store, the server is durable:
     the directory it leaves behind — a checkpoint plus the write-ahead-log
     records of every later commit — is validation material for
     `iw-check --store`. *)
  let server = I.start_server ~lease_secs:30.0 ?checkpoint_dir:store () in
  let writer = I.loopback_client server in
  let reader = I.loopback_client server in
  let hw = I.open_segment writer "bench/prom-smoke" in
  I.wl_acquire hw;
  let a = I.malloc hw (I.Desc.array I.Desc.int 8) in
  I.Client.write_int writer a 1;
  I.wl_release hw;
  (* Checkpoint between the first commit and the rest, so the store ends
     with both a checkpoint and log records that must continue it. *)
  if store <> None then I.Server.checkpoint server;
  let hr = I.open_segment ~create:false reader "bench/prom-smoke" in
  (* First acquire pulls the copy; writes behind the reader's back create
     version lag and realized staleness on the refresh; a re-acquire with
     nothing new counts as a wasted acquire. *)
  I.rl_acquire hr;
  I.rl_release hr;
  for i = 2 to 4 do
    I.wl_acquire hw;
    I.Client.write_int writer a i;
    I.wl_release hw
  done;
  I.set_coherence hr (I.Proto.Temporal 0.);
  I.rl_acquire hr;
  I.rl_release hr;
  I.rl_acquire hr;
  I.rl_release hr;
  let prom = I.Metrics.render_prometheus (I.Metrics.snapshot (I.Server.metrics server)) in
  match List.filter (fun g -> not (contains prom g)) coherence_gauges with
  | [] ->
    Printf.printf "prom check: %s present\n%!" (String.concat ", " coherence_gauges)
  | missing ->
    Printf.eprintf "error: coherence gauges missing from --prom output: %s\n"
      (String.concat ", " missing);
    exit 1

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes for a fast smoke run.")

let size =
  Arg.(
    value
    & opt (some int) None
    & info [ "size" ] ~docv:"BYTES"
        ~doc:
          "Array size in bytes for figures 4 and 5 (default $(b,1048576), or $(b,262144) \
           with $(b,--quick)).")

let json =
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_results.json") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Also write results as machine-readable JSON to $(docv) (just $(b,--json) writes \
           $(b,BENCH_results.json)).")

let check_prom =
  Arg.(
    value
    & flag
    & info [ "check-prom" ]
        ~doc:
          "After the run, drive a small coherence workload and fail unless the \
           per-segment gauges appear in the server's Prometheus metric rendering.")

let store =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Make the $(b,--check-prom) smoke server durable: write-ahead log \
           and checkpoint its segment under $(docv), leaving a store that \
           $(b,iw-check --store) can validate offline.")

let term f =
  Term.(
    const (fun quick size json prom_check store ->
        let size = eff_size quick size in
        let figures = f ~quick ~size () in
        (match json with
        | None -> ()
        | Some path -> write_json ~quick ~size path figures);
        if prom_check || store <> None then check_prom_gauges ?store ();
        0)
    $ quick $ size $ json $ check_prom $ store)

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) (term f)

let cmd =
  Cmd.group ~default:(term run_all)
    (Cmd.info "iw-bench" ~doc:"Regenerate the paper's tables and figures")
    [
      cmd_of "fig4" "Basic translation costs (Figure 4)" run_fig4;
      cmd_of "fig5" "Modification granularity sweep (Figure 5)" run_fig5;
      cmd_of "fig6" "Pointer swizzling costs (Figure 6)" run_fig6;
      cmd_of "fig7" "Datamining bandwidth (Figure 7)" run_fig7;
      cmd_of "ablation" "Optimization ablations (Section 3.3)" run_ablation;
      cmd_of "bechamel" "Bechamel micro-benchmark suite" run_bechamel;
      cmd_of "ycsb" "Open-loop YCSB-style macro-benchmark (reduced shape)" run_ycsb;
    ]

let () = exit (Cmd.eval' cmd)
