(* The protocol model checker: the healthy model is exhaustively clean, every
   deliberately broken variant is caught by the invariant built for it, and
   the counterexamples are minimal, replayable schedules. *)

module M = Iw_model
module E = Iw_explore

let explore ?seed ?(max_states = 500_000) cfg = E.explore ?seed ~max_states cfg

let check_clean name cfg =
  let r = explore cfg in
  Alcotest.(check bool) (name ^ ": explored something") true (r.E.r_states > 0);
  Alcotest.(check bool) (name ^ ": exhaustive") false r.E.r_truncated;
  match r.E.r_violation with
  | None -> ()
  | Some cx ->
    Alcotest.failf "%s: unexpected %s: %s (schedule %s)" name cx.E.cx_code
      cx.E.cx_message
      (E.schedule_to_string cx.E.cx_schedule)

let test_healthy_exhaustive () =
  check_clean "default" M.default_config;
  check_clean "crash" { M.default_config with M.crash = true };
  check_clean "no lease" { M.default_config with M.lease = false; crash = true };
  check_clean "3 clients, all models"
    {
      M.default_config with
      M.n_clients = 3;
      writes_per_client = 1;
      coherences = [| M.Full; M.Delta 2; M.Temporal |];
    };
  check_clean "3 clients, crash"
    {
      M.default_config with
      M.n_clients = 3;
      writes_per_client = 1;
      reads_per_client = 0;
      coherences = [| M.Full |];
      crash = true;
    };
  check_clean "diff coherence"
    { M.default_config with M.coherences = [| M.Diff_bound 1; M.Temporal |]; crash = true }

(* Every broken variant must be caught, by the invariant designed for it,
   with a schedule that replays to the same violation. *)
let expect_violation name cfg code =
  let r = explore cfg in
  match r.E.r_violation with
  | None -> Alcotest.failf "%s: no violation found" name
  | Some cx ->
    Alcotest.(check string) (name ^ ": code") code cx.E.cx_code;
    Alcotest.(check bool) (name ^ ": non-empty schedule") true (cx.E.cx_schedule <> []);
    (* replayable: the schedule alone reproduces the violation *)
    (match E.replay cfg cx.E.cx_schedule with
    | Ok (Some viol) -> Alcotest.(check string) (name ^ ": replays") code viol.M.v_code
    | Ok None -> Alcotest.failf "%s: schedule replays clean" name
    | Error e -> Alcotest.failf "%s: schedule does not replay: %s" name e);
    (* minimal: no single action can be dropped *)
    List.iteri
      (fun i _ ->
        let cand = List.filteri (fun j _ -> j <> i) cx.E.cx_schedule in
        match E.replay cfg cand with
        | Ok (Some viol) when viol.M.v_code = code ->
          Alcotest.failf "%s: schedule not minimal, step %d removable" name i
        | _ -> ())
      cx.E.cx_schedule;
    cx

let crash_cfg broken =
  { M.default_config with M.crash = true; broken = Some broken }

let test_broken_dedup () =
  let cx = expect_violation "no-dedup-rebuild" (crash_cfg M.No_dedup_rebuild) "MDL04" in
  (* the canonical five-step witness: commit, crash before the ack, recover,
     retry the release — and get refused *)
  Alcotest.(check string)
    "canonical schedule" "lock:0 rel:0 crash recover retry:0"
    (E.schedule_to_string cx.E.cx_schedule)

let test_broken_ack_before_log () =
  ignore (expect_violation "ack-before-log" (crash_cfg M.Ack_before_log) "MDL02")

let test_broken_lock_check () =
  ignore (expect_violation "no-lock-check" (crash_cfg M.No_lock_check) "MDL01")

let test_broken_reclaim () =
  ignore (expect_violation "no-reclaim" (crash_cfg M.No_reclaim) "MDL05")

let test_broken_stale_reads () =
  ignore (expect_violation "stale-full-reads" (crash_cfg M.Stale_full_reads) "MDL03")

let test_schedule_roundtrip () =
  let sched =
    [ M.Lock 0; M.Release 1; M.Ack 0; M.Retry 1; M.Read 2; M.Expire 0;
      M.Reclaim 1; M.Client_crash 0; M.Crash; M.Recover; M.Checkpoint ]
  in
  let s = E.schedule_to_string sched in
  (match E.schedule_of_string s with
  | Ok sched' -> Alcotest.(check bool) "roundtrip" true (sched = sched')
  | Error e -> Alcotest.fail e);
  (match E.schedule_of_string "lock:0 frobnicate" with
  | Ok _ -> Alcotest.fail "accepted junk action"
  | Error _ -> ());
  match E.schedule_of_string "lock:x" with
  | Ok _ -> Alcotest.fail "accepted junk index"
  | Error _ -> ()

let test_seed_determinism () =
  (* different seeds walk the same space: identical state counts and the
     same (absence of) violations; the same seed is fully reproducible *)
  let cfg = { M.default_config with M.crash = true } in
  let r1 = explore ~seed:1 cfg and r2 = explore ~seed:42 cfg in
  Alcotest.(check int) "same state count" r1.E.r_states r2.E.r_states;
  let b = crash_cfg M.No_dedup_rebuild in
  let c1 = explore ~seed:7 b and c2 = explore ~seed:7 b in
  match (c1.E.r_violation, c2.E.r_violation) with
  | Some a, Some b ->
    Alcotest.(check string) "same seed, same schedule"
      (E.schedule_to_string a.E.cx_schedule)
      (E.schedule_to_string b.E.cx_schedule)
  | _ -> Alcotest.fail "seeded runs did not both find the violation"

let test_replay_rejects_disabled () =
  (* an action that is not enabled makes the schedule invalid, not a crash *)
  match E.replay M.default_config [ M.Ack 0 ] with
  | Error e ->
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) ("names the step: " ^ e) true (contains_sub e "not enabled")
  | Ok _ -> Alcotest.fail "disabled action accepted"

let test_independence_sanity () =
  (* same client: dependent; distinct clients' reads: independent;
     anything vs a global action: dependent *)
  Alcotest.(check bool) "same client" false (M.independent (M.Lock 0) (M.Release 0));
  Alcotest.(check bool) "reads commute" true (M.independent (M.Read 0) (M.Read 1));
  Alcotest.(check bool) "acks commute" true (M.independent (M.Ack 0) (M.Expire 1));
  Alcotest.(check bool) "crash global" false (M.independent (M.Read 0) M.Crash);
  Alcotest.(check bool) "locks conflict" false (M.independent (M.Lock 0) (M.Reclaim 1));
  Alcotest.(check bool) "release vs read" false (M.independent (M.Release 0) (M.Read 1))

let test_string_codecs () =
  (match M.coherence_of_string "delta:3" with
  | Ok (M.Delta 3) -> ()
  | _ -> Alcotest.fail "delta:3");
  (match M.coherence_of_string "diff:0" with
  | Ok (M.Diff_bound 0) -> ()
  | _ -> Alcotest.fail "diff:0");
  (match M.coherence_of_string "delta:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative bound accepted");
  (match M.broken_of_string "no-reclaim" with
  | Ok M.No_reclaim -> ()
  | _ -> Alcotest.fail "no-reclaim");
  match M.broken_of_string "bogus" with
  | Error e -> Alcotest.(check bool) "lists variants" true (String.length e > 20)
  | Ok _ -> Alcotest.fail "bogus variant accepted"

let suite =
  ( "model",
    [
      Alcotest.test_case "healthy configs are exhaustively clean" `Slow
        test_healthy_exhaustive;
      Alcotest.test_case "no-dedup-rebuild -> MDL04, canonical schedule" `Quick
        test_broken_dedup;
      Alcotest.test_case "ack-before-log -> MDL02" `Quick test_broken_ack_before_log;
      Alcotest.test_case "no-lock-check -> MDL01" `Quick test_broken_lock_check;
      Alcotest.test_case "no-reclaim -> MDL05" `Quick test_broken_reclaim;
      Alcotest.test_case "stale-full-reads -> MDL03" `Quick test_broken_stale_reads;
      Alcotest.test_case "schedule string roundtrip" `Quick test_schedule_roundtrip;
      Alcotest.test_case "seeded exploration is deterministic" `Quick
        test_seed_determinism;
      Alcotest.test_case "replay rejects disabled actions" `Quick
        test_replay_rejects_disabled;
      Alcotest.test_case "independence relation sanity" `Quick
        test_independence_sanity;
      Alcotest.test_case "coherence/broken codecs" `Quick test_string_codecs;
    ] )
