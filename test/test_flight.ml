(* Flight recorder: ring semantics, the one-branch disabled path, the live
   Flight_recorder request, and the acceptance scenario — a server-side
   decode failure dumps a JSON document holding the recent events including
   the failing request's seq. *)

module J = Iw_obs_json

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_ring_wraparound () =
  let f = Iw_flight.create ~capacity:4 () in
  for i = 1 to 6 do
    Iw_flight.record f ~seq:i ~segment:"s" ~version:i ~latency_us:(float_of_int i) "read_lock"
  done;
  let seqs = List.map (fun v -> v.Iw_flight.v_seq) (Iw_flight.events f) in
  Alcotest.(check (list int)) "last capacity events, oldest first" [ 3; 4; 5; 6 ] seqs;
  let v = List.hd (Iw_flight.events f) in
  Alcotest.(check string) "variant retained" "read_lock" v.Iw_flight.v_variant;
  Alcotest.(check string) "segment retained" "s" v.Iw_flight.v_segment;
  Alcotest.(check int) "version retained" 3 v.Iw_flight.v_version

let test_disabled_noop () =
  let f = Iw_flight.create ~capacity:4 ~enabled:false () in
  Iw_flight.record f ~seq:1 "hello";
  Alcotest.(check int) "nothing recorded while disabled" 0 (List.length (Iw_flight.events f));
  Iw_flight.set_enabled f true;
  Iw_flight.record f ~seq:2 "hello";
  Alcotest.(check int) "recording after enable" 1 (List.length (Iw_flight.events f))

let test_render_json_parses () =
  let f = Iw_flight.create ~capacity:4 () in
  Iw_flight.record f ~seq:9 ~segment:"a/b" ~version:3 ~latency_us:1.5 "write_lock";
  match J.parse (Iw_flight.dump_string f) with
  | Error e -> Alcotest.fail ("dump is not valid JSON: " ^ e)
  | Ok doc ->
    (match Option.bind (J.member "capacity" doc) J.to_float with
    | Some c -> Alcotest.(check (float 0.)) "capacity" 4. c
    | None -> Alcotest.fail "no capacity field");
    (match Option.bind (J.member "events" doc) J.to_list with
    | Some [ ev ] -> (
      match Option.bind (J.member "seq" ev) J.to_float with
      | Some s -> Alcotest.(check (float 0.)) "seq in dump" 9. s
      | None -> Alcotest.fail "event without seq")
    | _ -> Alcotest.fail "expected one event")

(* The acceptance scenario.  A well-formed trace envelope (carrying seq 77)
   followed by garbage where the request body should be: the server must
   reply R_error on the same connection — echoing the seq — and dump the
   flight recorder, whose JSON must contain the recent events including the
   failing request's seq. *)
let test_decode_failure_dumps () =
  let dump_path = Filename.temp_file "iw_flight" ".json" in
  Unix.putenv "IW_FLIGHT_DUMP" dump_path;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "IW_FLIGHT_DUMP" "";
      if Sys.file_exists dump_path then Sys.remove dump_path)
  @@ fun () ->
  let server = Iw_server.create () in
  let client_end, server_end = Iw_transport.loopback () in
  let t = Thread.create (fun () -> Iw_server.serve_conn server server_end) () in
  (* A normal request first, so the dump has context beyond the failure. *)
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_request_env buf
    ~ctx:{ Iw_proto.tc_trace_id = 1; tc_span_id = 2; tc_seq = 76 }
    (Iw_proto.Hello { arch = "x86_32" });
  client_end.Iw_transport.send (Iw_wire.Buf.contents buf);
  (match
     let r = Iw_wire.Reader.of_string (client_end.Iw_transport.recv ()) in
     ignore (Iw_wire.Reader.u8 r);
     ignore (Iw_wire.Reader.u32 r);
     Iw_proto.decode_response r
   with
  | Iw_proto.R_hello _ -> ()
  | _ -> Alcotest.fail "handshake failed");
  (* Envelope with seq 77, then a byte that is no request tag. *)
  let buf = Iw_wire.Buf.create () in
  Iw_wire.Buf.u8 buf Iw_proto.envelope_magic;
  Iw_wire.Buf.u8 buf Iw_proto.proto_version;
  Iw_wire.Buf.u8 buf Iw_proto.feature_trace_ctx;
  Iw_wire.Buf.u64 buf 1;
  Iw_wire.Buf.u64 buf 2;
  Iw_wire.Buf.u32 buf 77;
  Iw_wire.Buf.u8 buf 0xff;
  client_end.Iw_transport.send (Iw_wire.Buf.contents buf);
  let r = Iw_wire.Reader.of_string (client_end.Iw_transport.recv ()) in
  Alcotest.(check int) "seq-echoing reply frame" 2 (Iw_wire.Reader.u8 r);
  Alcotest.(check int) "failing seq echoed" 77 (Iw_wire.Reader.u32 r);
  (match Iw_proto.decode_response r with
  | Iw_proto.R_error msg ->
    Alcotest.(check bool) "reply names the decode failure" true
      (contains ~needle:"malformed" msg)
  | _ -> Alcotest.fail "expected R_error for the malformed request");
  (* The connection survived: a follow-up request still answers. *)
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_request buf (Iw_proto.Checkpoint { session = 0 });
  client_end.Iw_transport.send (Iw_wire.Buf.contents buf);
  let r = Iw_wire.Reader.of_string (client_end.Iw_transport.recv ()) in
  ignore (Iw_wire.Reader.u8 r);
  (match Iw_proto.decode_response r with
  | Iw_proto.R_ok -> ()
  | _ -> Alcotest.fail "connection did not survive the malformed request");
  client_end.Iw_transport.close ();
  Thread.join t;
  (* The dump landed in IW_FLIGHT_DUMP and holds both the preceding traffic
     and the failing request's seq. *)
  let ic = open_in_bin dump_path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.parse data with
  | Error e -> Alcotest.fail ("flight dump is not valid JSON: " ^ e)
  | Ok doc -> (
    match Option.bind (J.member "events" doc) J.to_list with
    | Some evs ->
      let seqs = List.filter_map (fun ev -> Option.bind (J.member "seq" ev) J.to_float) evs in
      let variants =
        List.filter_map
          (fun ev ->
            match J.member "variant" ev with Some (J.Str s) -> Some s | _ -> None)
          evs
      in
      Alcotest.(check bool) "dump has the failing seq" true (List.mem 77. seqs);
      Alcotest.(check bool) "dump has preceding events" true (List.mem 76. seqs);
      Alcotest.(check bool) "failure tagged as decode error" true
        (List.mem "decode_error" variants)
    | None -> Alcotest.fail "dump without events array")

let test_flight_request_live () =
  let server = Iw_server.create () in
  let link = Iw_server.direct_link server in
  let session =
    match link.Iw_proto.call (Iw_proto.Hello { arch = "x86_32" }) with
    | Iw_proto.R_hello { session } -> session
    | _ -> Alcotest.fail "handshake failed"
  in
  ignore (link.Iw_proto.call (Iw_proto.Open_segment { session; name = "fl/live"; create = true }));
  match link.Iw_proto.call (Iw_proto.Flight_recorder { session }) with
  | Iw_proto.R_flight json -> (
    match J.parse json with
    | Error e -> Alcotest.fail ("R_flight is not valid JSON: " ^ e)
    | Ok doc -> (
      match Option.bind (J.member "events" doc) J.to_list with
      | Some evs ->
        let variants =
          List.filter_map
            (fun ev ->
              match J.member "variant" ev with Some (J.Str s) -> Some s | _ -> None)
            evs
        in
        Alcotest.(check bool) "recorded the open_segment" true
          (List.mem "open_segment" variants)
      | None -> Alcotest.fail "no events array"))
  | _ -> Alcotest.fail "Flight_recorder request failed"

let suite =
  ( "flight",
    [
      Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
      Alcotest.test_case "dump json shape" `Quick test_render_json_parses;
      Alcotest.test_case "decode failure dumps with seq" `Quick test_decode_failure_dumps;
      Alcotest.test_case "live flight request" `Quick test_flight_request_live;
    ] )
