(* The durability layer: fsync-policy parsing, write-ahead-log record
   roundtrips, torn/corrupt tail handling, checkpoint sealing and
   quarantine, frame CRCs, and the acceptance scenarios — a server killed
   with SIGKILL mid-stream recovering every acknowledged version, and a
   checkpoint bounding the log it barriers. *)

module I = Interweave

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let tmpdir () =
  let d = Filename.temp_file "iwdur" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* Fsync policy *)

let test_fsync_policy () =
  let ok s p =
    match Iw_store.fsync_of_string s with
    | Ok got -> Alcotest.(check bool) (Printf.sprintf "%S parses" s) true (got = p)
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  ok "always" Iw_store.Always;
  ok "never" Iw_store.Never;
  ok "interval" (Iw_store.Interval 1.0);
  ok "interval:0.25" (Iw_store.Interval 0.25);
  ok "interval:2s" (Iw_store.Interval 2.0);
  let rejects s =
    match Iw_store.fsync_of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  rejects "sometimes";
  rejects "interval:-1";
  rejects "interval:fast";
  Unix.putenv "IW_FSYNC" "never";
  Fun.protect ~finally:(fun () -> Unix.putenv "IW_FSYNC" "")
  @@ fun () ->
  Alcotest.(check bool) "IW_FSYNC wins over default" true
    (Iw_store.env_fsync ~default:Iw_store.Always = Iw_store.Never)

(* Log records *)

let u32s vs =
  let b = Iw_wire.Buf.create () in
  List.iter (Iw_wire.Buf.u32 b) vs;
  Iw_wire.Buf.contents b

let commit ~session ~version =
  Iw_store.Commit
    {
      session;
      version;
      diff =
        {
          Iw_wire.Diff.from_version = version - 1;
          to_version = version;
          new_descs = [];
          changes =
            [
              Iw_wire.Diff.Update
                {
                  serial = 1;
                  runs =
                    [ { Iw_wire.Diff.start_pu = 0; len_pu = 1; payload = u32s [ version ] } ];
                };
            ];
        };
    }

let test_wal_roundtrip () =
  let dir = tmpdir () in
  let s = Iw_store.create ~fsync:Iw_store.Never dir in
  let entries =
    [
      Iw_store.Desc { serial = 7; version = 0; desc = Iw_types.Prim Iw_arch.Int };
      commit ~session:3 ~version:1;
      commit ~session:4 ~version:2;
    ]
  in
  List.iter (Iw_store.append s ~segment:"dur/a b") entries;
  let file = Filename.basename (Iw_store.log_path s "dur/a b") in
  (match Iw_store.recover_log s ~file with
  | None -> Alcotest.fail "log did not recover"
  | Some (name, got) ->
    Alcotest.(check string) "header carries the segment name" "dur/a b" name;
    Alcotest.(check bool) "entries roundtrip" true (got = entries));
  (* The read-only scan agrees and never modifies. *)
  match Iw_store.scan_log (Iw_store.log_path s "dur/a b") with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "tail clean" true (r.Iw_store.lr_tail = Iw_store.Tail_clean);
    Alcotest.(check int) "records (header included)" 4 r.Iw_store.lr_records;
    Alcotest.(check int) "commits" 2 r.Iw_store.lr_commits;
    Alcotest.(check (option int)) "first commit" (Some 1) r.Iw_store.lr_first_commit;
    Alcotest.(check (option int)) "last commit" (Some 2) r.Iw_store.lr_last_commit;
    Alcotest.(check bool) "no gap" true (r.Iw_store.lr_gap = None)

let file_size path = (Unix.stat path).Unix.st_size

(* A crash mid-append leaves a physically torn last record; recovery must
   keep the good prefix and truncate the tear so the log is clean again. *)
let test_torn_tail_truncated () =
  let dir = tmpdir () in
  let s = Iw_store.create ~fsync:Iw_store.Never dir in
  List.iter
    (fun v -> Iw_store.append s ~segment:"seg" (commit ~session:1 ~version:v))
    [ 1; 2; 3 ];
  let path = Iw_store.log_path s "seg" in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (file_size path - 2);
  Unix.close fd;
  (match Iw_store.scan_log path with
  | Ok r ->
    Alcotest.(check bool) "scan sees a torn tail" true
      (match r.Iw_store.lr_tail with Iw_store.Tail_torn _ -> true | _ -> false);
    Alcotest.(check int) "good commits" 2 r.Iw_store.lr_commits
  | Error e -> Alcotest.fail e);
  (* A fresh store handle, as after a restart. *)
  let s2 = Iw_store.create ~fsync:Iw_store.Never dir in
  (match Iw_store.recover_log s2 ~file:(Filename.basename path) with
  | None -> Alcotest.fail "log did not recover"
  | Some (_, entries) -> Alcotest.(check int) "good prefix recovered" 2 (List.length entries));
  match Iw_store.scan_log path with
  | Ok r ->
    Alcotest.(check bool) "tear physically truncated" true
      (r.Iw_store.lr_tail = Iw_store.Tail_clean);
    Alcotest.(check int) "records after truncation" 3 r.Iw_store.lr_records
  | Error e -> Alcotest.fail e

(* A flipped byte is not a tear: the record frames intact but its CRC fails.
   The scan reports corruption; recovery still cuts back to the good prefix. *)
let test_corrupt_record () =
  let dir = tmpdir () in
  let s = Iw_store.create ~fsync:Iw_store.Never dir in
  List.iter
    (fun v -> Iw_store.append s ~segment:"seg" (commit ~session:1 ~version:v))
    [ 1; 2; 3 ];
  let path = Iw_store.log_path s "seg" in
  let size = file_size path in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (size - 3) Unix.SEEK_SET : int);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1 : int);
  Unix.close fd;
  (match Iw_store.scan_log path with
  | Ok r ->
    Alcotest.(check bool) "scan reports corruption, not a tear" true
      (match r.Iw_store.lr_tail with Iw_store.Tail_corrupt _ -> true | _ -> false)
  | Error e -> Alcotest.fail e);
  let s2 = Iw_store.create ~fsync:Iw_store.Never dir in
  match Iw_store.recover_log s2 ~file:(Filename.basename path) with
  | None -> Alcotest.fail "log did not recover"
  | Some (_, entries) ->
    Alcotest.(check int) "recovered to the good prefix" 2 (List.length entries)

(* Checkpoint files: CRC trailer detects a flipped byte, and the offline
   validator says so. *)
let test_checkpoint_seal () =
  let dir = tmpdir () in
  let server = I.start_server ~checkpoint_dir:dir () in
  let c = I.direct_client server in
  let g = I.open_segment c "dur/seal" in
  I.with_write_lock g (fun () ->
      let a = I.malloc g (I.Desc.array I.Desc.int 4) in
      I.Client.write_int c a 5);
  I.Server.checkpoint server;
  let path =
    Filename.concat dir (Iw_store.escape_name "dur/seal" ^ Iw_store.checkpoint_suffix)
  in
  (match Iw_store.verify_checkpoint path with
  | Ok (name, version) ->
    Alcotest.(check string) "name" "dur/seal" name;
    Alcotest.(check int) "version" 1 version
  | Error e -> Alcotest.fail e);
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (file_size path / 2) Unix.SEEK_SET : int);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1 : int);
  Unix.close fd;
  match Iw_store.verify_checkpoint path with
  | Ok _ -> Alcotest.fail "flipped byte passed validation"
  | Error _ -> ()

(* Server restart on the log alone (no checkpoint ever taken): every
   committed version must come back, and recovery must leave evidence in
   the metrics registry and flight recorder. *)
let test_wal_replay_equals_direct () =
  let dir = tmpdir () in
  let n = 16 in
  let expected = Array.make n 0 in
  let server = I.start_server ~checkpoint_dir:dir () in
  let c = I.direct_client server in
  let g = I.open_segment c "dur/replay" in
  let a = I.with_write_lock g (fun () -> I.malloc g (I.Desc.array I.Desc.int n) ~name:"xs") in
  let rng = Random.State.make [| 42 |] in
  for _round = 1 to 12 do
    let idx = Random.State.int rng n in
    let v = Random.State.int rng 10_000 in
    I.with_write_lock g (fun () -> I.Client.write_int c (a + (idx * 4)) v);
    expected.(idx) <- v
  done;
  (* No checkpoint: restart recovers purely by log replay. *)
  let server2 = I.start_server ~checkpoint_dir:dir () in
  let f = I.direct_client server2 in
  let gf = I.open_segment ~create:false f "dur/replay" in
  I.with_read_lock gf (fun () ->
      Alcotest.(check int) "version recovered exactly" 13 (I.Client.segment_version gf);
      let af = (Option.get (I.Client.find_named_block gf "xs")).Iw_mem.b_addr in
      for i = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "cell %d" i)
          expected.(i)
          (I.Client.read_int f (af + (i * 4)))
      done);
  let prom = I.Metrics.render_prometheus (I.Metrics.snapshot (I.Server.metrics server2)) in
  Alcotest.(check bool) "replay counter in registry" true
    (contains ~needle:"iw_store_records_replayed_total" prom);
  Alcotest.(check bool) "replay event in flight recorder" true
    (contains ~needle:"store_replay" (Iw_flight.dump_string (I.Server.flight server2)))

(* A checkpoint is a log barrier: it resets the log, and a restart replays
   only what came after it. *)
let test_checkpoint_bounds_log () =
  let dir = tmpdir () in
  let server = I.start_server ~checkpoint_dir:dir () in
  let c = I.direct_client server in
  let g = I.open_segment c "dur/barrier" in
  let a = I.with_write_lock g (fun () -> I.malloc g (I.Desc.array I.Desc.int 4) ~name:"xs") in
  for v = 1 to 6 do
    I.with_write_lock g (fun () -> I.Client.write_int c a v)
  done;
  let log =
    Filename.concat dir (Iw_store.escape_name "dur/barrier" ^ Iw_store.log_suffix)
  in
  let before = file_size log in
  I.Server.checkpoint server;
  let after = file_size log in
  Alcotest.(check bool)
    (Printf.sprintf "checkpoint reset the log (%d -> %d bytes)" before after)
    true
    (after < before);
  I.with_write_lock g (fun () -> I.Client.write_int c a 99);
  (* Restart: checkpoint plus one replayed commit. *)
  let server2 = I.start_server ~checkpoint_dir:dir () in
  let f = I.direct_client server2 in
  let gf = I.open_segment ~create:false f "dur/barrier" in
  I.with_read_lock gf (fun () ->
      Alcotest.(check int) "version" 8 (I.Client.segment_version gf);
      let af = (Option.get (I.Client.find_named_block gf "xs")).Iw_mem.b_addr in
      Alcotest.(check int) "last write survived" 99 (I.Client.read_int f af))

(* IWCKPT03: the release-dedup table rides in the checkpoint.  This is the
   model checker's MDL04 schedule (lock, release, crash, recover, retry)
   with a checkpoint wedged between the commit and the crash: the
   checkpoint truncates the log, so if the dedup table lived only in WAL
   commit records the retried release would be refused after restart.  It
   must instead be answered with the already-committed version. *)
let test_dedup_survives_checkpoint () =
  let dir = tmpdir () in
  let name = "dur/dedup" in
  let t = Iw_server.create ~checkpoint_dir:dir () in
  let session =
    match Iw_server.handle t (Iw_proto.Hello { arch = "x86_32" }) with
    | Iw_proto.R_hello { session } -> session
    | _ -> Alcotest.fail "hello failed"
  in
  (match Iw_server.handle t (Iw_proto.Open_segment { session; name; create = true }) with
  | Iw_proto.R_segment _ -> ()
  | _ -> Alcotest.fail "open failed");
  let desc_serial =
    match
      Iw_server.handle t
        (Iw_proto.Register_desc
           { session; name; desc = Iw_types.Array (Prim Iw_arch.Int, 4) })
    with
    | Iw_proto.R_serial s -> s
    | _ -> Alcotest.fail "register failed"
  in
  let payload =
    let buf = Iw_wire.Buf.create () in
    for i = 1 to 4 do
      Iw_wire.Buf.u32 buf i
    done;
    Iw_wire.Buf.contents buf
  in
  let diff =
    {
      Iw_wire.Diff.from_version = 0;
      to_version = 1;
      new_descs = [];
      changes = [ Iw_wire.Diff.Create { serial = 1; name = Some "xs"; desc_serial; payload } ];
    }
  in
  (match Iw_server.handle t (Iw_proto.Write_lock { session; name; version = 0 }) with
  | Iw_proto.R_granted _ -> ()
  | _ -> Alcotest.fail "lock refused");
  let v =
    match Iw_server.handle t (Iw_proto.Write_release { session; name; diff }) with
    | Iw_proto.R_version v -> v
    | _ -> Alcotest.fail "release failed"
  in
  Alcotest.(check int) "committed" 1 v;
  (* The log barrier: after this the WAL holds no commit records, so only
     the checkpoint can carry the dedup entry across the restart. *)
  Iw_server.checkpoint t;
  let t2 = Iw_server.create ~checkpoint_dir:dir () in
  match Iw_server.handle t2 (Iw_proto.Write_release { session; name; diff }) with
  | Iw_proto.R_version v' ->
    Alcotest.(check int) "retry answered with the committed version" v v'
  | Iw_proto.R_error e -> Alcotest.failf "retried release refused: %s" e
  | _ -> Alcotest.fail "unexpected response to retried release"

(* A checkpoint that fails validation is quarantined — kept as evidence,
   never half-loaded — and the segment falls back to log replay. *)
let test_corrupt_checkpoint_quarantined () =
  let dir = tmpdir () in
  let server = I.start_server ~checkpoint_dir:dir () in
  let c = I.direct_client server in
  let g = I.open_segment c "dur/quar" in
  let a = I.with_write_lock g (fun () -> I.malloc g (I.Desc.array I.Desc.int 4) ~name:"xs") in
  for v = 1 to 3 do
    I.with_write_lock g (fun () -> I.Client.write_int c a v)
  done;
  (* Plant a bogus checkpoint beside the intact log. *)
  let ckpt =
    Filename.concat dir (Iw_store.escape_name "dur/quar" ^ Iw_store.checkpoint_suffix)
  in
  let oc = open_out_bin ckpt in
  output_string oc "this is not a checkpoint";
  close_out oc;
  let server2 = I.start_server ~checkpoint_dir:dir () in
  Alcotest.(check bool) "quarantined as .corrupt" true (Sys.file_exists (ckpt ^ ".corrupt"));
  Alcotest.(check bool) "original removed" false (Sys.file_exists ckpt);
  let f = I.direct_client server2 in
  let gf = I.open_segment ~create:false f "dur/quar" in
  I.with_read_lock gf (fun () ->
      Alcotest.(check int) "log replay recovered everything" 4
        (I.Client.segment_version gf);
      let af = (Option.get (I.Client.find_named_block gf "xs")).Iw_mem.b_addr in
      Alcotest.(check int) "value" 3 (I.Client.read_int f af));
  Alcotest.(check bool) "quarantine event in flight recorder" true
    (contains ~needle:"ckpt_quarantine" (Iw_flight.dump_string (I.Server.flight server2)))

(* Frame checksums: a garbled protected frame surfaces as a typed
   [Transport.Corrupt], and once a link has seen one protected frame it
   refuses to fall back to unprotected ones. *)
let test_frame_crc () =
  let a, b = Iw_transport.loopback () in
  let ac, ha = Iw_transport.crc_conn a in
  let bc, _hb = Iw_transport.crc_conn b in
  Iw_transport.enable_send ha;
  ac.Iw_transport.send "hello";
  Alcotest.(check string) "protected roundtrip" "hello" (bc.Iw_transport.recv ());
  (* A protected frame with a wrong checksum — what the fault injector's
     garbling produces. *)
  a.Iw_transport.send "\xc3\x00\x00\x00\x00payload";
  (match bc.Iw_transport.recv () with
  | _ -> Alcotest.fail "corrupt frame was accepted"
  | exception Iw_transport.Corrupt _ -> ());
  (* The ratchet: after negotiation, a plain frame is itself suspect (a
     garbled marker byte must not smuggle bytes past the check). *)
  a.Iw_transport.send "plain";
  (match bc.Iw_transport.recv () with
  | _ -> Alcotest.fail "unprotected frame accepted after negotiation"
  | exception Iw_transport.Corrupt _ -> ());
  let prom =
    I.Metrics.render_prometheus (I.Metrics.snapshot (Iw_transport.metrics ()))
  in
  Alcotest.(check bool) "crc errors counted" true
    (contains ~needle:"iw_transport_crc_errors_total" prom)

(* The Enable_crc codec. *)
let test_enable_crc_codec () =
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_request buf (Iw_proto.Enable_crc { session = 0 });
  match Iw_proto.decode_request (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf)) with
  | Iw_proto.Enable_crc { session = 0 } -> ()
  | _ -> Alcotest.fail "Enable_crc did not roundtrip"

(* The acceptance scenario: a real iw-server process, killed with SIGKILL
   between acknowledged commits, restarted on the same directory.  The
   client reconnects by itself, state resumes at exactly the last
   acknowledged version, and every cell is byte-identical. *)

let server_exe = "../bin/iw_server_main.exe"

let spawn_server ~port ~dir =
  Unix.create_process server_exe
    [|
      server_exe;
      "--port";
      string_of_int port;
      "--checkpoint-dir";
      dir;
      "--lease";
      "30";
    |]
    Unix.stdin Unix.stdout Unix.stderr

let free_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close s;
  port

let rec wait_ready ?(attempts = 100) port =
  match I.tcp_client ~host:"127.0.0.1" ~port () with
  | c -> c
  | exception Iw_transport.Connect_failed _ when attempts > 0 ->
    Unix.sleepf 0.05;
    wait_ready ~attempts:(attempts - 1) port

let test_kill9_recovery () =
  let dir = tmpdir () in
  let port = free_port () in
  let pid = ref (spawn_server ~port ~dir) in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] !pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  ignore (wait_ready port : I.client);
  let n = 8 in
  let expected = Array.make n 0 in
  let acked = ref 0 in
  let c = I.tcp_client ~host:"127.0.0.1" ~port () in
  let g = I.open_segment c "dur/kill9" in
  let a = I.with_write_lock g (fun () -> I.malloc g (I.Desc.array I.Desc.int n) ~name:"xs") in
  incr acked;
  let write round =
    let idx = round mod n in
    I.with_write_lock g (fun () -> I.Client.write_int c (a + (idx * 4)) round);
    (* with_write_lock returned: the release was acknowledged, so this
       version must survive anything short of the disk itself dying. *)
    incr acked;
    expected.(idx) <- round
  in
  for round = 1 to 4 do
    write round
  done;
  (* SIGKILL between commits: no flushing, no handlers, no goodbyes. *)
  Unix.kill !pid Sys.sigkill;
  ignore (Unix.waitpid [] !pid);
  pid := spawn_server ~port ~dir;
  ignore (wait_ready port : I.client);
  (* The same client keeps going: its next request reconnects and, the
     session being gone, falls back to a fresh one — state intact. *)
  for round = 5 to 7 do
    write round
  done;
  (* A fresh client sees exactly the acknowledged history. *)
  let f = I.tcp_client ~host:"127.0.0.1" ~port () in
  let gf = I.open_segment ~create:false f "dur/kill9" in
  I.with_read_lock gf (fun () ->
      Alcotest.(check int) "resumed at the exact acked version" !acked
        (I.Client.segment_version gf);
      let af = (Option.get (I.Client.find_named_block gf "xs")).Iw_mem.b_addr in
      for i = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "cell %d" i)
          expected.(i)
          (I.Client.read_int f (af + (i * 4)))
      done)

let suite =
  ( "durability",
    [
      Alcotest.test_case "fsync policy parsing" `Quick test_fsync_policy;
      Alcotest.test_case "WAL record roundtrip" `Quick test_wal_roundtrip;
      Alcotest.test_case "torn tail truncated" `Quick test_torn_tail_truncated;
      Alcotest.test_case "corrupt record detected" `Quick test_corrupt_record;
      Alcotest.test_case "checkpoint CRC trailer" `Quick test_checkpoint_seal;
      Alcotest.test_case "restart replays the log" `Quick test_wal_replay_equals_direct;
      Alcotest.test_case "checkpoint bounds the log" `Quick test_checkpoint_bounds_log;
      Alcotest.test_case "release dedup survives checkpoint" `Quick
        test_dedup_survives_checkpoint;
      Alcotest.test_case "corrupt checkpoint quarantined" `Quick
        test_corrupt_checkpoint_quarantined;
      Alcotest.test_case "frame CRC detects garbling" `Quick test_frame_crc;
      Alcotest.test_case "Enable_crc codec" `Quick test_enable_crc_codec;
      Alcotest.test_case "kill -9 loses nothing acknowledged" `Quick test_kill9_recovery;
    ] )
