(* iw-check CLI edge cases: exit codes and one-line errors for bad inputs,
   plus end-to-end runs of the --model / --race / --bench-compare modes.
   Each case spawns the real executable, the same way operators and
   `dune build @check` invoke it. *)

let exe = "../bin/iw_check.exe"

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (exit code, stdout, stderr) *)
let iw_check args =
  let out = Filename.temp_file "iwcheck" ".out" in
  let err = Filename.temp_file "iwcheck" ".err" in
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin fd_out fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED n -> n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n
  in
  let stdout = read_all out and stderr = read_all err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let line_count s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") |> List.length

let write_file path body =
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc

let test_no_args () =
  let code, _, err = iw_check [] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check int) "one line" 1 (line_count err);
  Alcotest.(check bool) ("names the modes: " ^ err) true (contains err "no IDL files")

let test_missing_idl () =
  let code, _, err = iw_check [ "definitely-not-here.idl" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check int) "one line" 1 (line_count err);
  Alcotest.(check bool) ("names the path: " ^ err) true
    (contains err "definitely-not-here.idl")

let test_malformed_bench_schema () =
  let path = Filename.temp_file "bench" ".json" in
  write_file path "{ \"suite\": oops";
  let code, _, err = iw_check [ "--bench-schema"; path ] in
  Sys.remove path;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check int) "one line" 1 (line_count err);
  Alcotest.(check bool) ("says invalid JSON: " ^ err) true (contains err "invalid JSON")

let test_store_not_a_dir () =
  let code, _, err = iw_check [ "--store"; "definitely/not/a/dir" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check int) "one line" 1 (line_count err);
  Alcotest.(check bool) ("says not a directory: " ^ err) true
    (contains err "not a directory")

let test_model_clean () =
  let code, out, _ = iw_check [ "--model"; "--crash"; "--clients"; "2" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "exhaustive" true (contains out "exhaustive");
  Alcotest.(check bool) "invariants hold" true (contains out "invariants hold")

let test_model_broken_counterexample () =
  let code, out, _ =
    iw_check [ "--model"; "--crash"; "--model-broken"; "no-dedup-rebuild" ]
  in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "MDL04" true (contains out "MDL04");
  Alcotest.(check bool) "minimized schedule" true
    (contains out "lock:0 rel:0 crash recover retry:0");
  (* the printed replay invocation reproduces the violation *)
  let code, out, _ =
    iw_check
      [
        "--model"; "--crash"; "--model-broken"; "no-dedup-rebuild"; "--replay";
        "lock:0 rel:0 crash recover retry:0";
      ]
  in
  Alcotest.(check int) "replay exit 1" 1 code;
  Alcotest.(check bool) "replay reports MDL04" true (contains out "MDL04")

let test_model_bad_flags () =
  let code, _, err = iw_check [ "--model"; "--coherence"; "warp:9" ] in
  Alcotest.(check int) "unknown coherence: exit 2" 2 code;
  Alcotest.(check bool) ("names it: " ^ err) true (contains err "warp");
  let code, _, _ = iw_check [ "--model"; "--model-broken"; "nonsense" ] in
  Alcotest.(check int) "unknown variant: exit 2" 2 code;
  let code, _, err = iw_check [ "--model"; "--replay"; "lock:0 bogus" ] in
  Alcotest.(check int) "bad schedule: exit 2" 2 code;
  Alcotest.(check bool) ("names the action: " ^ err) true (contains err "bogus")

let test_race_fixture () =
  let dir = Filename.temp_file "lck" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  write_file (Filename.concat dir "bad.ml")
    "let bad m =\n\
    \  Mutex.lock m;\n\
    \  if true then failwith \"boom\";\n\
    \  Mutex.unlock m\n";
  let code, out, _ = iw_check [ "--race"; dir ] in
  Alcotest.(check int) "LCK001 is an error: exit 1" 1 code;
  Alcotest.(check bool) ("reports LCK001: " ^ out) true (contains out "LCK001");
  (* a warning-only tree passes, and fails under --Werror *)
  write_file (Filename.concat dir "bad.ml")
    "let warn m oc =\n\
    \  Mutex.lock m;\n\
    \  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> flush oc)\n";
  let code, out, _ = iw_check [ "--race"; dir ] in
  Alcotest.(check int) "warning passes" 0 code;
  Alcotest.(check bool) ("reports LCK002: " ^ out) true (contains out "LCK002");
  let code, _, _ = iw_check [ "--race"; "--Werror"; dir ] in
  Alcotest.(check int) "warning fails under --Werror" 1 code;
  let code, _, err = iw_check [ "--race"; Filename.concat dir "no-such-subdir" ] in
  Alcotest.(check int) "missing path: exit 2" 2 code;
  Alcotest.(check bool) ("names it: " ^ err) true (contains err "no-such-subdir")

let bench_doc rows =
  Printf.sprintf
    "{\"suite\":\"iw\",\"paper\":\"x\",\"quick\":true,\"size_bytes\":1,\
     \"figures\":{\"fig4\":[%s]}}"
    (String.concat "," rows)

let test_bench_compare () =
  let old_path = Filename.temp_file "old" ".json" in
  let new_path = Filename.temp_file "new" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove old_path;
      Sys.remove new_path)
  @@ fun () ->
  let row shape a b = Printf.sprintf "{\"shape\":\"%s\",\"xdr_s\":%g,\"collect_s\":%g}" shape a b in
  write_file old_path (bench_doc [ row "list" 1.0 2.0; row "tree" 3.0 4.0 ]);
  (* within 20%: passes *)
  write_file new_path (bench_doc [ row "list" 1.1 2.1; row "tree" 3.1 4.1 ]);
  let code, out, _ = iw_check [ "--bench-compare"; old_path; new_path ] in
  Alcotest.(check int) "within tolerance: exit 0" 0 code;
  Alcotest.(check bool) ("reports medians: " ^ out) true (contains out "median ratio");
  (* >20% median regression: fails *)
  write_file new_path (bench_doc [ row "list" 1.5 3.0; row "tree" 4.5 6.0 ]);
  let code, _, err = iw_check [ "--bench-compare"; old_path; new_path ] in
  Alcotest.(check int) "regression: exit 1" 1 code;
  Alcotest.(check bool) ("names the figure: " ^ err) true (contains err "fig4");
  (* a vanished row fails outright *)
  write_file new_path (bench_doc [ row "list" 1.0 2.0 ]);
  let code, _, err = iw_check [ "--bench-compare"; old_path; new_path ] in
  Alcotest.(check int) "missing row: exit 1" 1 code;
  Alcotest.(check bool) ("names the row: " ^ err) true (contains err "tree");
  (* malformed NEW: usage/parse failure *)
  write_file new_path "{";
  let code, _, _ = iw_check [ "--bench-compare"; old_path; new_path ] in
  Alcotest.(check int) "bad JSON: exit 2" 2 code;
  (* wrong arity *)
  let code, _, _ = iw_check [ "--bench-compare"; old_path ] in
  Alcotest.(check int) "one file: exit 2" 2 code

let suite =
  ( "cli",
    [
      Alcotest.test_case "no args" `Quick test_no_args;
      Alcotest.test_case "missing IDL path" `Quick test_missing_idl;
      Alcotest.test_case "malformed --bench-schema JSON" `Quick
        test_malformed_bench_schema;
      Alcotest.test_case "nonexistent --store dir" `Quick test_store_not_a_dir;
      Alcotest.test_case "--model clean run" `Quick test_model_clean;
      Alcotest.test_case "--model broken variant counterexample" `Quick
        test_model_broken_counterexample;
      Alcotest.test_case "--model flag validation" `Quick test_model_bad_flags;
      Alcotest.test_case "--race fixtures and exit codes" `Quick test_race_fixture;
      Alcotest.test_case "--bench-compare gate" `Quick test_bench_compare;
    ] )
