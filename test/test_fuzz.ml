(* Randomized end-to-end properties over the full stack: random descriptors
   and random update schedules must produce identical views on every
   architecture, and survive server checkpoint/restart. *)

open Interweave

(* Every diff crossing a link — client releases checked against the server's
   pre-application state, server updates checked against the receiving
   client's pre-application state — must satisfy Iw_wire_check.  The server
   additionally re-validates incoming diffs itself (set_validate_diffs). *)
let checked_client ?arch server =
  Server.set_validate_diffs server true;
  let base = Server.direct_link server in
  let cref = ref None in
  let fail dir name issues =
    Alcotest.failf "%s diff for %s: %s" dir name
      (String.concat "; "
         (List.map (fun i -> Format.asprintf "%a" Iw_wire_check.pp_issue i) issues))
  in
  (* The receiving client's knowledge of a segment, reconstructed from its
     cached blocks (their layouts recover the descriptors). *)
  let client_ctx name =
    match !cref with
    | None -> Iw_wire_check.empty_ctx
    | Some c -> (
      match Client.find_segment c name with
      | None -> Iw_wire_check.empty_ctx
      | Some g ->
        let blocks = Client.blocks g in
        {
          Iw_wire_check.cx_desc =
            (fun serial ->
              List.find_map
                (fun b ->
                  if b.Mem.b_desc_serial = serial then Some (Types.descriptor b.Mem.b_layout)
                  else None)
                blocks);
          cx_block =
            (fun serial ->
              List.find_map
                (fun b ->
                  if b.Mem.b_serial = serial then
                    Some (b.Mem.b_desc_serial, Types.layout_prim_count b.Mem.b_layout)
                  else None)
                blocks);
        })
  in
  let checked_call ?ctx req =
    (match req with
    | Proto.Write_release { name; diff; _ } -> begin
      match Iw_wire_check.check (Server.diff_ctx server name) diff with
      | [] -> ()
      | issues -> fail "outgoing" name issues
    end
    | _ -> ());
    let resp = base.Proto.call ?ctx req in
    (match (req, resp) with
    | Proto.Read_lock { name; _ }, Proto.R_update d
    | Proto.Write_lock { name; _ }, Proto.R_granted (Some d) ->
      (* A full sync (from version 0) recreates every block; the client may
         already hold placeholder metadata for them (open_segment reserves
         addresses for swizzling), so only descriptor knowledge carries
         over. *)
      let ctx = client_ctx name in
      let ctx =
        if d.Wire.Diff.from_version = 0 then
          { ctx with Iw_wire_check.cx_block = (fun _ -> None) }
        else ctx
      in
      begin
        match Iw_wire_check.check ctx d with
        | [] -> ()
        | issues -> fail "incoming" name issues
      end
    | _ -> ());
    resp
  in
  let c = Client.connect ?arch { base with Proto.call = checked_call } in
  cref := Some c;
  Server.register_notifier server ~session:(Client.session c)
    ~push:(Client.handle_notification c);
  Client.enable_notifications c;
  c

(* Random block descriptors: modest sizes, no pointers (pointer correctness
   has dedicated tests; here the target is layout/translation coverage). *)
let desc_gen =
  let open QCheck.Gen in
  let prim =
    oneofl
      [
        Types.Prim Iw_arch.Char;
        Types.Prim Iw_arch.Short;
        Types.Prim Iw_arch.Int;
        Types.Prim Iw_arch.Long;
        Types.Prim Iw_arch.Float;
        Types.Prim Iw_arch.Double;
        Types.Prim (Iw_arch.String 8);
      ]
  in
  let rec d n =
    if n = 0 then prim
    else
      frequency
        [
          (4, prim);
          (2, map2 (fun t k -> Types.Array (t, 1 + k)) (d (n - 1)) (int_bound 6));
          ( 2,
            map
              (fun ts ->
                Types.Struct
                  (Array.of_list (List.mapi (fun i t -> { Types.fname = Printf.sprintf "f%d" i; ftype = t }) ts)))
              (list_size (int_range 1 5) (d (n - 1))) );
        ]
  in
  d 3

(* Deterministic per-index values of each primitive type. *)
let write_prim c lay base i seed =
  let loc = Types.locate_prim lay i in
  let a = base + loc.Types.l_off in
  let v = (i * 37) + seed in
  match loc.Types.l_prim with
  | Iw_arch.Char -> Client.write_char c a (Char.chr (v land 0x7f))
  | Short -> Client.write_short c a ((v land 0x7fff) - 0x4000)
  | Int -> Client.write_int c a (v * 1001)
  | Long -> Client.write_long c a (v * 100003)
  | Float -> Client.write_float c a (float_of_int v)
  | Double -> Client.write_double c a (float_of_int v /. 7.)
  | Pointer -> ()
  | String cap -> Client.write_string c ~capacity:cap a (string_of_int (v mod 10000))

let read_prim c lay base i =
  let loc = Types.locate_prim lay i in
  let a = base + loc.Types.l_off in
  match loc.Types.l_prim with
  | Iw_arch.Char -> `C (Client.read_char c a)
  | Short -> `I (Client.read_short c a)
  | Int -> `I (Client.read_int c a)
  | Long -> `I (Client.read_long c a)
  | Float -> `F (Client.read_float c a)
  | Double -> `F (Client.read_double c a)
  | Pointer -> `I (Client.read_ptr c a)
  | String cap -> `S (Client.read_string c ~capacity:cap a)

let views_equal cw lw aw cr lr ar n =
  let rec go i =
    i >= n
    ||
    (read_prim cw lw aw i = read_prim cr lr ar i && go (i + 1))
  in
  go 0

let prop_random_desc_cross_arch =
  QCheck.Test.make ~name:"random descriptors translate across all architectures" ~count:60
    (QCheck.make desc_gen) (fun desc ->
      QCheck.assume (Types.validate desc = Ok ());
      let server = start_server () in
      let w = checked_client ~arch:Arch.x86_32 server in
      let hw = open_segment w "fuzz/seg" in
      let lw = Types.layout (Types.local (Client.arch w)) desc in
      let n = Types.prim_count desc in
      let aw =
        with_write_lock hw (fun () ->
            let a = malloc hw desc ~name:"b" in
            for i = 0 to n - 1 do
              write_prim w lw a i 1
            done;
            a)
      in
      List.for_all
        (fun arch ->
          let r = checked_client ~arch server in
          let hr = open_segment ~create:false r "fuzz/seg" in
          with_read_lock hr (fun () ->
              let br = Option.get (Client.find_named_block hr "b") in
              let lr = br.Mem.b_layout in
              (* The writer's longs are 32-bit (x86_32), so no reader can
                 truncate them and plain equality is exact. *)
              Types.layout_prim_count lr = n
              && views_equal w lw aw r lr br.Mem.b_addr n))
        [ Arch.x86_32; Arch.sparc32; Arch.mips32 ])

let prop_random_updates_converge_and_survive_checkpoint =
  QCheck.Test.make ~name:"random update schedule converges and survives restart" ~count:15
    QCheck.(list_of_size Gen.(int_range 1 25) (pair (int_bound 199) (int_bound 3)))
    (fun ops ->
      let dir = Filename.temp_file "iwfuzz" "" in
      Sys.remove dir;
      let server = Server.create ~checkpoint_dir:dir () in
      let w = checked_client ~arch:Arch.x86_32 server in
      let r = checked_client ~arch:Arch.sparc32 server in
      let desc = Desc.array Desc.int 200 in
      let hw = open_segment w "fuzz/ckpt" in
      let aw = with_write_lock hw (fun () -> malloc hw desc ~name:"xs") in
      let hr = open_segment ~create:false r "fuzz/ckpt" in
      with_read_lock hr (fun () -> ());
      (* Random single-word writes, a few per critical section. *)
      List.iteri
        (fun round (idx, _) ->
          with_write_lock hw (fun () ->
              Client.write_int w (aw + (idx * 4)) (round + 1)))
        ops;
      with_read_lock hr (fun () -> ());
      let ar = (Option.get (Client.find_named_block hr "xs")).Mem.b_addr in
      let same_view () =
        let rec go i =
          i >= 200
          || (Client.read_int w (aw + (i * 4)) = Client.read_int r (ar + (i * 4)) && go (i + 1))
        in
        go 0
      in
      let converged = same_view () in
      (* Restart the server from its checkpoint; a fresh client must see the
         same contents. *)
      Server.checkpoint server;
      let server2 = Server.create ~checkpoint_dir:dir () in
      let f = checked_client server2 in
      let hf = open_segment ~create:false f "fuzz/ckpt" in
      with_read_lock hf (fun () -> ());
      let af = (Option.get (Client.find_named_block hf "xs")).Mem.b_addr in
      let survived =
        let rec go i =
          i >= 200
          || (Client.read_int w (aw + (i * 4)) = Client.read_int f (af + (i * 4)) && go (i + 1))
        in
        go 0
      in
      converged && survived)

(* One pass under a seeded fault plan: drops, delays, garbled frames, and
   one forced mid-run close must neither hang a client nor silently diverge
   server state.  Garbling is fair game now that every frame carries a
   negotiated CRC32: a flipped byte surfaces as a typed [Transport.Corrupt]
   and the client re-dials, instead of decoding into a different-but-valid
   request. *)
let test_seeded_fault_convergence () =
  let plan = Fault.parse_exn "seed:9,drop:0.03,delay:200us,garble:0.02,close@req=25" in
  let server = start_server ~lease_secs:2.0 () in
  let w = loopback_client ~fault:plan ~call_timeout:0.5 server in
  let h = open_segment w "fuzz/fault" in
  let n = 50 in
  let a = with_write_lock h (fun () -> malloc h (Desc.array Desc.int n) ~name:"xs") in
  let expected = Array.make n 0 in
  for round = 1 to 60 do
    let idx = round * 17 mod n in
    with_write_lock h (fun () -> Client.write_int w (a + (idx * 4)) round);
    expected.(idx) <- round
  done;
  (* Verify through a clean, fault-free channel. *)
  let r = direct_client server in
  let hr = open_segment ~create:false r "fuzz/fault" in
  with_read_lock hr (fun () ->
      let ar = (Option.get (Client.find_named_block hr "xs")).Mem.b_addr in
      for i = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "cell %d" i)
          expected.(i)
          (Client.read_int r (ar + (i * 4)))
      done)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_random_desc_cross_arch;
      QCheck_alcotest.to_alcotest prop_random_updates_converge_and_survive_checkpoint;
      Alcotest.test_case "seeded fault plan converges" `Quick test_seeded_fault_convergence;
    ] )
