let () =
  Alcotest.run "interweave"
    [
      Test_avl.suite;
      Test_arch.suite;
      Test_types.suite;
      Test_mem.suite;
      Test_wire.suite;
      Test_proto.suite;
      Test_transport.suite;
      Test_server.suite;
      Test_xdr.suite;
      Test_idl.suite;
      Test_system.suite;
      Test_client.suite;
      Test_notify.suite;
      Test_abort.suite;
      Test_fuzz.suite;
      Test_analysis.suite;
      Test_seqmine.suite;
      Test_sim.suite;
      Test_obs.suite;
      Test_dtrace.suite;
      Test_flight.suite;
      Test_fault.suite;
      Test_durability.suite;
    ]
