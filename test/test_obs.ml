(* Observability: histogram bucketing, exposition formats, trace files, the
   disabled-path no-op discipline, and the Server_stats protocol request. *)

open Iw_metrics

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool) (what ^ ": " ^ needle) true (contains ~needle hay)

let hist_of snap name =
  match find snap name with
  | Some (V_hist hv) -> hv
  | _ -> Alcotest.fail ("no histogram " ^ name)

(* Every case runs against a fresh registry and resets it on the way out, so
   no series can leak into a later case even if registries are ever shared. *)
let with_registry ?enabled f =
  let r = create ?enabled () in
  Fun.protect ~finally:(fun () -> reset r) (fun () -> f r)

(* Log2 bucketing: inclusive upper bounds, one overflow bucket. *)
let test_histogram_buckets () =
  with_registry @@ fun r ->
  let h = histogram_us r "iw_test_lat_us" in
  List.iter (observe h) [ 1.0; 1.5; 2.0; 3.0; 100.0; 1e12 ];
  let hv = hist_of (snapshot r) "iw_test_lat_us" in
  Alcotest.(check int) "27 us bounds" 27 (Array.length hv.hv_bounds);
  Alcotest.(check int) "counts = bounds + overflow" 28 (Array.length hv.hv_counts);
  Alcotest.(check (float 0.)) "first bound 1us" 1.0 hv.hv_bounds.(0);
  Alcotest.(check (float 0.)) "last bound ~67s" (float_of_int (1 lsl 26)) hv.hv_bounds.(26);
  Alcotest.(check int) "le=1 gets 1.0" 1 hv.hv_counts.(0);
  Alcotest.(check int) "le=2 gets 1.5 and 2.0" 2 hv.hv_counts.(1);
  Alcotest.(check int) "le=4 gets 3.0" 1 hv.hv_counts.(2);
  Alcotest.(check int) "le=128 gets 100.0" 1 hv.hv_counts.(7);
  Alcotest.(check int) "overflow gets 1e12" 1 hv.hv_counts.(27);
  Alcotest.(check int) "count" 6 hv.hv_count;
  Alcotest.(check (float 1e-6)) "sum" (1.0 +. 1.5 +. 2.0 +. 3.0 +. 100.0 +. 1e12) hv.hv_sum;
  (* Conservative quantiles: the bucket's upper bound. *)
  Alcotest.(check (float 0.)) "p50" 2.0 (hist_quantile hv 0.5);
  Alcotest.(check (float 0.)) "p99 in overflow" infinity (hist_quantile hv 0.99)

let test_quantile_empty () =
  with_registry @@ fun r ->
  let h = histogram_bytes r "iw_test_sz_bytes" in
  ignore (h : histogram);
  let hv = hist_of (snapshot r) "iw_test_sz_bytes" in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (hist_quantile hv 0.5))

let test_prometheus_exposition () =
  with_registry @@ fun r ->
  let c = counter r ~help:"Things that happened." "iw_test_things_total" in
  incr ~by:3 c;
  let g = gauge r "iw_test_depth" in
  set_gauge g 2.5;
  let h = histogram_us r ~help:"Latency." (with_label "iw_test_op_us" "op" "get") in
  observe h 1.0;
  observe h 3.0;
  let text = render_prometheus (snapshot r) in
  check_contains "prom" text "# HELP iw_test_things_total Things that happened.\n";
  check_contains "prom" text "# TYPE iw_test_things_total counter\niw_test_things_total 3\n";
  check_contains "prom" text "# TYPE iw_test_depth gauge\niw_test_depth 2.5\n";
  check_contains "prom" text "# TYPE iw_test_op_us histogram\n";
  (* Cumulative buckets with the le label spliced after existing labels. *)
  check_contains "prom" text "iw_test_op_us_bucket{op=\"get\",le=\"1\"} 1\n";
  check_contains "prom" text "iw_test_op_us_bucket{op=\"get\",le=\"4\"} 2\n";
  check_contains "prom" text "iw_test_op_us_bucket{op=\"get\",le=\"+Inf\"} 2\n";
  check_contains "prom" text "iw_test_op_us_sum{op=\"get\"} 4\n";
  check_contains "prom" text "iw_test_op_us_count{op=\"get\"} 2\n"

let test_with_label () =
  Alcotest.(check string) "fresh" "m{k=\"v\"}" (with_label "m" "k" "v");
  Alcotest.(check string) "extend" "m{a=\"b\",k=\"v\"}" (with_label "m{a=\"b\"}" "k" "v");
  Alcotest.(check string) "escape" "m{k=\"a\\\"b\"}" (with_label "m" "k" "a\"b")

let test_json_roundtrip () =
  with_registry @@ fun r ->
  incr ~by:7 (counter r "iw_test_n_total");
  observe (histogram_bytes r "iw_test_sz_bytes") 100.;
  let doc = render_json (snapshot r) in
  match Iw_obs_json.parse (Iw_obs_json.to_string doc) with
  | Error e -> Alcotest.fail ("metrics JSON does not re-parse: " ^ e)
  | Ok j ->
    (match Option.bind (Iw_obs_json.member "iw_test_n_total" j) (Iw_obs_json.member "value") with
    | Some n ->
      Alcotest.(check (option (float 0.))) "counter value" (Some 7.) (Iw_obs_json.to_float n)
    | None -> Alcotest.fail "counter missing from JSON")

let test_disabled_noop () =
  with_registry ~enabled:false @@ fun r ->
  let c = counter r "iw_test_off_total" in
  let h = histogram_us r "iw_test_off_us" in
  incr c;
  observe h 5.0;
  (match find (snapshot r) "iw_test_off_total" with
  | Some (V_counter v) -> Alcotest.(check (float 0.)) "disabled counter unchanged" 0. v
  | _ -> Alcotest.fail "counter missing");
  Alcotest.(check int) "disabled histogram unchanged" 0
    (hist_of (snapshot r) "iw_test_off_us").hv_count;
  set_enabled r true;
  incr c;
  observe h 5.0;
  (match find (snapshot r) "iw_test_off_total" with
  | Some (V_counter v) -> Alcotest.(check (float 0.)) "enabled counter counts" 1. v
  | _ -> Alcotest.fail "counter missing");
  Alcotest.(check int) "enabled histogram counts" 1
    (hist_of (snapshot r) "iw_test_off_us").hv_count

let test_register_kind_clash () =
  with_registry @@ fun r ->
  ignore (counter r "iw_test_kind" : counter);
  (* Idempotent for the same kind... *)
  ignore (counter r "iw_test_kind" : counter);
  (* ...but a different kind under the same name is a programming error. *)
  match gauge r "iw_test_kind" with
  | (_ : gauge) -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ()

let test_reset_isolation () =
  let r = create () in
  let c = counter r "iw_test_leaky_total" in
  incr ~by:4 c;
  observe (histogram_us r "iw_test_leaky_us") 2.0;
  Alcotest.(check int) "two series before reset" 2 (List.length (snapshot r));
  reset r;
  Alcotest.(check int) "no series after reset" 0 (List.length (snapshot r));
  (* A stale handle keeps accepting updates without resurrecting the series —
     a later case's snapshot stays clean even if an earlier case leaked the
     handle. *)
  incr c;
  Alcotest.(check int) "stale handle does not resurrect" 0 (List.length (snapshot r));
  (* The name is free again, even as a different kind. *)
  set_gauge (gauge r "iw_test_leaky_total") 1.0;
  match find (snapshot r) "iw_test_leaky_total" with
  | Some (V_gauge v) -> Alcotest.(check (float 0.)) "fresh after reset" 1.0 v
  | _ -> Alcotest.fail "re-registration after reset failed"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_trace_file () =
  let path = Filename.temp_file "iw_trace" ".json" in
  Iw_trace.start ~path ();
  Alcotest.(check bool) "tracing on" true (Iw_trace.enabled ());
  Iw_trace.with_span ~args:[ ("segment", "t/s") ] "outer" (fun () ->
      Iw_trace.with_span "inner" (fun () -> ());
      Iw_trace.instant "mark");
  (* B/E stay balanced even when the traced thunk raises. *)
  (try Iw_trace.with_span "boom" (fun () -> raise Exit) with Exit -> ());
  Iw_trace.stop ();
  Alcotest.(check bool) "tracing off after stop" false (Iw_trace.enabled ());
  let doc =
    match Iw_obs_json.parse (read_file path) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
  in
  Sys.remove path;
  let events =
    match Option.bind (Iw_obs_json.member "traceEvents" doc) Iw_obs_json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let str field ev =
    match Iw_obs_json.member field ev with Some (Iw_obs_json.Str s) -> Some s | _ -> None
  in
  let begins = Hashtbl.create 8 and ends = Hashtbl.create 8 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let instants = ref 0 in
  List.iter
    (fun ev ->
      (match Iw_obs_json.member "ts" ev with
      | Some (Iw_obs_json.Num ts) ->
        Alcotest.(check bool) "timestamp non-negative" true (ts >= 0.)
      | _ -> Alcotest.fail "event without numeric ts");
      match str "ph" ev, str "name" ev with
      | Some "B", Some n -> bump begins n
      | Some "E", Some n -> bump ends n
      | Some "i", Some _ ->
        Stdlib.incr instants;
        Alcotest.(check (option string)) "instant scope" (Some "t") (str "s" ev)
      | _ -> Alcotest.fail "event without ph/name")
    events;
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        ("balanced B/E for " ^ n)
        (Hashtbl.find_opt begins n) (Hashtbl.find_opt ends n))
    [ "outer"; "inner"; "boom" ];
  Alcotest.(check int) "one instant" 1 !instants;
  (* Disabled tracing is a plain call: the thunk runs, nothing is recorded. *)
  Alcotest.(check int) "with_span passthrough" 42 (Iw_trace.with_span "off" (fun () -> 42))

let test_server_stats_roundtrip () =
  (* Wire codec for snapshots, independent of any live server. *)
  let snap =
    [
      { s_name = "a_total"; s_help = "things"; s_value = V_counter 3. };
      { s_name = "g"; s_help = ""; s_value = V_gauge 1.5 };
      {
        s_name = "h_us{op=\"x\"}";
        s_help = "lat";
        s_value =
          V_hist
            {
              hv_unit = "us";
              hv_bounds = [| 1.; 2.; 4. |];
              hv_counts = [| 1; 0; 2; 1 |];
              hv_count = 4;
              hv_sum = 9.25;
            };
      };
    ]
  in
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_response buf (Iw_proto.R_server_stats snap);
  (match Iw_proto.decode_response (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf)) with
  | Iw_proto.R_server_stats snap' ->
    Alcotest.(check bool) "snapshot roundtrips" true (snap = snap')
  | _ -> Alcotest.fail "wrong response variant");
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_request buf (Iw_proto.Server_stats { session = 12 });
  match Iw_proto.decode_request (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf)) with
  | Iw_proto.Server_stats { session } -> Alcotest.(check int) "session" 12 session
  | _ -> Alcotest.fail "wrong request variant"

let test_server_stats_live () =
  (* A real server over the loopback transport: the snapshot arrives with the
     request counters and the per-variant latency histograms filled in. *)
  let server = Iw_server.create () in
  let client_end, server_end = Iw_transport.loopback () in
  let t = Thread.create (fun () -> Iw_server.serve_conn server server_end) () in
  let link = Iw_proto.demux_link client_end ~on_notify:(fun _ -> ()) in
  let session =
    match link.Iw_proto.call (Iw_proto.Hello { arch = "x86_32" }) with
    | Iw_proto.R_hello { session } -> session
    | _ -> Alcotest.fail "handshake failed"
  in
  ignore (link.Iw_proto.call (Iw_proto.Open_segment { session; name = "obs/live"; create = true }));
  ignore (link.Iw_proto.call (Iw_proto.Get_version { session; name = "obs/live" }));
  (match link.Iw_proto.call (Iw_proto.Server_stats { session }) with
  | Iw_proto.R_server_stats snap ->
    (match find snap "iw_server_requests_total" with
    | Some (V_counter v) -> Alcotest.(check bool) "requests counted" true (v >= 3.)
    | _ -> Alcotest.fail "no iw_server_requests_total");
    let hv = hist_of snap "iw_server_request_us{variant=\"hello\"}" in
    Alcotest.(check bool) "hello latency recorded" true (hv.hv_count >= 1);
    Alcotest.(check string) "latency unit" "us" hv.hv_unit;
    (* The merged snapshot also carries the process-global transport side. *)
    (match find snap "iw_transport_frames_received_total" with
    | Some (V_counter v) -> Alcotest.(check bool) "transport frames counted" true (v >= 1.)
    | _ -> Alcotest.fail "no transport metrics in snapshot")
  | _ -> Alcotest.fail "Server_stats failed");
  link.Iw_proto.close ();
  Thread.join t

let test_framed_byte_accounting () =
  (* Over a demultiplexed loopback link, client byte counters reflect actual
     framed bytes in both directions (not re-derived payload estimates). *)
  let server = Interweave.start_server () in
  let c = Interweave.loopback_client server in
  let h = Interweave.open_segment c "obs/bytes" in
  Interweave.wl_acquire h;
  let addr = Interweave.malloc h (Iw_types.Array (Iw_types.Prim Iw_arch.Int, 64)) in
  let sp = Iw_client.space c in
  for i = 0 to 63 do
    Iw_mem.store_prim sp Iw_arch.Int (addr + (i * 4)) i
  done;
  Interweave.wl_release h;
  let st = Iw_client.stats c in
  Alcotest.(check bool) "sent bytes counted" true (st.Iw_client.bytes_sent > 0);
  Alcotest.(check bool) "received bytes counted" true (st.Iw_client.bytes_received > 0);
  Alcotest.(check bool) "round trips counted" true (st.Iw_client.calls > 0);
  Iw_client.reset_stats c;
  let st = Iw_client.stats c in
  Alcotest.(check int) "reset zeroes sent" 0 st.Iw_client.bytes_sent;
  Alcotest.(check int) "reset zeroes received" 0 st.Iw_client.bytes_received;
  Iw_client.disconnect c

(* Mutates the process environment, so this must run last in the suite:
   registries created later would see the override. *)
let test_env_policy () =
  Unix.putenv "IW_METRICS" "1";
  Alcotest.(check bool) "IW_METRICS=1 on" true (env_enabled ~default:false);
  Unix.putenv "IW_METRICS" "0";
  Alcotest.(check bool) "IW_METRICS=0 off" false (env_enabled ~default:true);
  Unix.putenv "IW_METRICS" "";
  Alcotest.(check bool) "IW_METRICS= off" false (env_enabled ~default:true);
  Unix.putenv "IW_METRICS" "1"

let suite =
  ( "obs",
    [
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "empty quantile" `Quick test_quantile_empty;
      Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
      Alcotest.test_case "label splicing" `Quick test_with_label;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
      Alcotest.test_case "kind clash" `Quick test_register_kind_clash;
      Alcotest.test_case "reset isolation" `Quick test_reset_isolation;
      Alcotest.test_case "trace file" `Quick test_trace_file;
      Alcotest.test_case "server stats codec" `Quick test_server_stats_roundtrip;
      Alcotest.test_case "server stats live" `Quick test_server_stats_live;
      Alcotest.test_case "framed byte accounting" `Quick test_framed_byte_accounting;
      Alcotest.test_case "env policy" `Quick test_env_policy;
    ] )
