(* End-to-end smoke of the workload observatory: the real bench/ycsb.exe
   driver (open-loop YCSB macro-benchmark), the BENCH JSON it writes, and
   the live-inspection surface behind it — the server's sampled slow-request
   log and the iw-admin slowlog/top commands — all exercised the way
   operators run them.  Plus unit tests of the Iw_slowlog ring itself. *)

module J = Iw_obs_json
module SL = Iw_slowlog

let ycsb_exe = "../bench/ycsb.exe"

let admin_exe = "../bin/iw_admin.exe"

let server_exe = "../bin/iw_server_main.exe"

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (exit code, stdout) of a spawned executable, stderr passed through. *)
let run_exe exe args =
  let out = Filename.temp_file "iwycsb" ".out" in
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin fd_out Unix.stderr
  in
  Unix.close fd_out;
  let code =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED n -> n
    | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n
  in
  let stdout = read_all out in
  Sys.remove out;
  (code, stdout)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let obj_field row k =
  match row with J.Obj fs -> List.assoc_opt k fs | _ -> None

let num_field row k =
  match obj_field row k with
  | Some (J.Num v) -> v
  | _ -> Alcotest.failf "row missing numeric field %S" k

let find_series rows name =
  match
    List.find_opt (fun r -> obj_field r "series" = Some (J.Str name)) rows
  with
  | Some r -> r
  | None -> Alcotest.failf "no %S series row" name

(* The driver smoke: a short loopback run must exit 0, write a parseable
   BENCH document, and its ycsb section must carry the schema the
   regression gate relies on — plus genuinely nonzero staleness for the
   relaxed-coherence clients (the instrument's whole point). *)
let test_driver_smoke () =
  let json = Filename.temp_file "ycsb" ".json" in
  let code, _ =
    run_exe ycsb_exe
      [
        "--clients"; "8"; "--rate"; "600"; "--duration"; "2"; "--segments"; "2";
        "--read-pct"; "80"; "--mix"; "full=1,delta=1,temporal=2";
        "--json"; json; "--quiet";
      ]
  in
  Alcotest.(check int) "driver exit 0" 0 code;
  let doc =
    match J.parse (read_all json) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "invalid JSON: %s" e
  in
  Sys.remove json;
  let rows =
    match J.member "figures" doc with
    | Some (J.Obj figs) -> (
      match List.assoc_opt "ycsb" figs with
      | Some (J.Arr rows) -> rows
      | _ -> Alcotest.fail "figures.ycsb missing")
    | _ -> Alcotest.fail "figures missing"
  in
  let overall = find_series rows "overall" in
  Alcotest.(check bool) "ops > 0" true (num_field overall "ops" > 0.);
  Alcotest.(check bool) "throughput > 0" true
    (num_field overall "throughput_ops_per_s" > 0.);
  Alcotest.(check bool) "errors = 0" true (num_field overall "errors" = 0.);
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " > 0") true (num_field overall k > 0.))
    [ "p50_us"; "p99_us"; "p999_us"; "bytes_sent"; "bytes_received" ];
  Alcotest.(check bool) "percentile ladder monotone" true
    (num_field overall "p50_us" <= num_field overall "p99_us"
    && num_field overall "p99_us" <= num_field overall "p999_us");
  (* Per-coherence-model rows, with observed staleness where the model
     allows staleness: temporal/delta clients must have seen some. *)
  let temporal = find_series rows "coherence:temporal" in
  Alcotest.(check bool) "temporal reads > 0" true (num_field temporal "reads" > 0.);
  Alcotest.(check bool) "temporal staleness nonzero" true
    (num_field temporal "stale_max_us" > 0.);
  let full = find_series rows "coherence:full" in
  Alcotest.(check bool) "full-coherence staleness ~0" true
    (num_field full "stale_max_us" < 1e3);
  ignore (find_series rows "read");
  ignore (find_series rows "write")

(* Slow log + dashboard end to end: load a real server over TCP, then read
   it back with iw-admin the way an operator would. *)
let test_slowlog_and_top_live () =
  let port = Test_durability.free_port () in
  let pid =
    Unix.create_process server_exe
      [| server_exe; "--port"; string_of_int port |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () ->
      let probe = Test_durability.wait_ready port in
      Interweave.Client.disconnect probe;
      let code, _ =
        run_exe ycsb_exe
          [
            "--transport"; "tcp"; "--host"; "127.0.0.1"; "--port"; string_of_int port;
            "--clients"; "6"; "--rate"; "400"; "--duration"; "1";
            "--segments"; "2"; "--read-pct"; "80"; "--quiet";
          ]
      in
      Alcotest.(check int) "ycsb over tcp exit 0" 0 code;
      let host_args = [ "-p"; string_of_int port ] in
      let code, out = run_exe admin_exe ([ "slowlog"; "--json" ] @ host_args) in
      Alcotest.(check int) "slowlog exit 0" 0 code;
      (match J.parse (String.trim out) with
      | Ok (J.Arr (first :: _ as entries)) ->
        (* Slowest first, every entry fully labelled. *)
        List.iter
          (fun k ->
            if obj_field first k = None then
              Alcotest.failf "slowlog entry missing %S" k)
          [ "t"; "latency_us"; "variant"; "segment"; "session"; "trace_id"; "span_id" ];
        let lats = List.map (fun e -> num_field e "latency_us") entries in
        Alcotest.(check bool) "sorted slowest-first" true
          (List.for_all2 ( >= ) lats (List.tl lats @ [ 0. ]))
      | Ok (J.Arr []) -> Alcotest.fail "slow log empty after a loaded run"
      | Ok _ | Error _ -> Alcotest.failf "slowlog --json unparseable: %s" out);
      let code, out = run_exe admin_exe ([ "top"; "--once" ] @ host_args) in
      Alcotest.(check int) "top --once exit 0" 0 code;
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("top shows " ^ needle) true (contains out needle))
        [ "req/s"; "VARIANT"; "P99_US"; "SEGMENT"; "ycsb/seg-0" ])

(* Iw_slowlog unit behaviour: top-K selection, eviction of the fastest,
   limit handling, and the min_us pre-filter. *)
let observe_lat t ?(variant = "read_lock") lat =
  SL.observe t ~variant ~segment:"s" ~session:1 ~seq:0 ~trace_id:0 ~span_id:0 lat

let test_slowlog_topk () =
  let t = SL.create ~k:4 () in
  List.iter (observe_lat t) [ 10.; 50.; 30.; 70.; 20.; 60. ];
  let lats = List.map (fun e -> e.SL.e_latency_us) (SL.snapshot t) in
  Alcotest.(check (list (float 1e-9))) "4 slowest, descending" [ 70.; 60.; 50.; 30. ]
    lats;
  let lats2 = List.map (fun e -> e.SL.e_latency_us) (SL.snapshot ~limit:2 t) in
  Alcotest.(check (list (float 1e-9))) "limit 2" [ 70.; 60. ] lats2

let test_slowlog_min_us () =
  let t = SL.create ~k:8 ~min_us:25. () in
  List.iter (observe_lat t) [ 10.; 50.; 24.9; 25.1 ];
  let lats = List.map (fun e -> e.SL.e_latency_us) (SL.snapshot t) in
  Alcotest.(check (list (float 1e-9))) "pre-filtered" [ 50.; 25.1 ] lats

let test_slowlog_disabled () =
  let t = SL.create ~k:0 () in
  observe_lat t 99.;
  Alcotest.(check int) "k=0 keeps nothing" 0 (List.length (SL.snapshot t))

let suite =
  ( "ycsb",
    [
      Alcotest.test_case "driver smoke: schema + staleness" `Slow test_driver_smoke;
      Alcotest.test_case "slowlog + top live over tcp" `Slow test_slowlog_and_top_live;
      Alcotest.test_case "slowlog top-K and ordering" `Quick test_slowlog_topk;
      Alcotest.test_case "slowlog min_us pre-filter" `Quick test_slowlog_min_us;
      Alcotest.test_case "slowlog k=0 disabled" `Quick test_slowlog_disabled;
    ] )
