(* The IDL compiler: parsing, semantic checks, and code generation. *)

let parse_one src =
  match Iw_idl.parse src with
  | [ d ] -> d
  | ds -> Alcotest.failf "expected one declaration, got %d" (List.length ds)

let test_simple_struct () =
  let d = parse_one "struct point { double x; double y; };" in
  Alcotest.(check string) "name" "point" d.Iw_idl.d_name;
  match d.Iw_idl.d_desc with
  | Iw_types.Struct [| { fname = "x"; ftype = Prim Iw_arch.Double }; { fname = "y"; ftype = Prim Iw_arch.Double } |]
    -> ()
  | d -> Alcotest.failf "unexpected desc %a" Iw_types.pp d

let test_all_primitives () =
  let d =
    parse_one
      "struct prims { byte b; short s; int i; long l; float f; double d; char name[8]; void *p; };"
  in
  match d.Iw_idl.d_desc with
  | Iw_types.Struct fields ->
    let ft i = fields.(i).Iw_types.ftype in
    Alcotest.(check bool) "byte" true (ft 0 = Prim Iw_arch.Char);
    Alcotest.(check bool) "short" true (ft 1 = Prim Iw_arch.Short);
    Alcotest.(check bool) "int" true (ft 2 = Prim Iw_arch.Int);
    Alcotest.(check bool) "long" true (ft 3 = Prim Iw_arch.Long);
    Alcotest.(check bool) "float" true (ft 4 = Prim Iw_arch.Float);
    Alcotest.(check bool) "double" true (ft 5 = Prim Iw_arch.Double);
    Alcotest.(check bool) "char[8] is a string" true (ft 6 = Prim (Iw_arch.String 8));
    Alcotest.(check bool) "void* is opaque" true (ft 7 = Prim Iw_arch.Pointer)
  | d -> Alcotest.failf "unexpected %a" Iw_types.pp d

let test_arrays_and_byte_arrays () =
  let d = parse_one "struct a { int xs[10]; byte raw[16]; double m[4]; };" in
  match d.Iw_idl.d_desc with
  | Iw_types.Struct [| xs; raw; m |] ->
    Alcotest.(check bool) "int[10]" true (xs.Iw_types.ftype = Array (Prim Iw_arch.Int, 10));
    Alcotest.(check bool) "byte[16] stays a char array" true
      (raw.Iw_types.ftype = Array (Prim Iw_arch.Char, 16));
    Alcotest.(check bool) "double[4]" true (m.Iw_types.ftype = Array (Prim Iw_arch.Double, 4))
  | d -> Alcotest.failf "unexpected %a" Iw_types.pp d

let test_self_reference () =
  let d = parse_one "struct node { int key; node *next; };" in
  match d.Iw_idl.d_desc with
  | Iw_types.Struct [| _; next |] ->
    Alcotest.(check bool) "self pointer" true (next.Iw_types.ftype = Iw_types.Ptr "node")
  | d -> Alcotest.failf "unexpected %a" Iw_types.pp d

let test_by_value_embedding () =
  let ds =
    Iw_idl.parse
      "struct point { double x; double y; };\nstruct seg { point a; point b; point path[4]; };"
  in
  Alcotest.(check int) "two declarations" 2 (List.length ds);
  let seg = List.nth ds 1 in
  match seg.Iw_idl.d_desc with
  | Iw_types.Struct [| a; _; path |] ->
    (match a.Iw_types.ftype with
    | Iw_types.Struct _ -> ()
    | _ -> Alcotest.fail "embedded struct expected");
    (match path.Iw_types.ftype with
    | Iw_types.Array (Iw_types.Struct _, 4) -> ()
    | _ -> Alcotest.fail "array of structs expected")
  | d -> Alcotest.failf "unexpected %a" Iw_types.pp d

let test_comments_and_whitespace () =
  let d =
    parse_one
      "// leading comment\nstruct c { /* inline */ int x; // trailing\n  double y; /* multi\n line */ };"
  in
  Alcotest.(check int) "two fields survive comments" 2
    (Iw_types.prim_count d.Iw_idl.d_desc)

let expect_error src =
  try
    ignore (Iw_idl.parse src : Iw_idl.decl list);
    Alcotest.failf "expected a parse error for %S" src
  with Iw_idl.Parse_error _ -> ()

let test_errors () =
  expect_error "struct x { int; };";
  expect_error "struct x { int a };";
  expect_error "struct x { };";
  expect_error "struct x { unknown_t a; };";
  expect_error "struct x { int a; }";
  expect_error "struct x { int *p; };" (* pointer to primitive *);
  expect_error "struct x { void v; };";
  expect_error "struct x { node *p; };" (* pointer to undefined struct *);
  expect_error "struct x { int a[0]; };";
  expect_error "struct x { char s[1]; };";
  expect_error "struct x { int a; }; struct x { int b; };" (* duplicate *);
  expect_error "int x;";
  expect_error "struct x { int a; /* unterminated";
  expect_error "struct x { int a[abc]; };"

let test_error_reports_line () =
  try
    ignore (Iw_idl.parse "struct ok { int a; };\n\nstruct bad { int; };" : Iw_idl.decl list);
    Alcotest.fail "expected error"
  with Iw_idl.Parse_error msg ->
    Alcotest.(check bool) ("line number in " ^ msg) true
      (String.length msg >= 6 && String.sub msg 0 5 = "line ")

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Errors deep into a file must pinpoint both the line and the column of the
   offending token, not just the line. *)
let test_error_reports_column () =
  (try
     ignore
       (Iw_idl.parse "struct ok { int a; };\n\nstruct bad { int; };" : Iw_idl.decl list);
     Alcotest.fail "expected error"
   with Iw_idl.Parse_error msg ->
     (* the stray ';' after 'int' sits at column 17 of line 3 *)
     Alcotest.(check bool) ("position in " ^ msg) true
       (starts_with "line 3, column 17:" msg));
  try
    ignore
      (Iw_idl.parse "struct a { int x; };\nstruct b {\n  a *next;\n  zzz *bad;\n};"
        : Iw_idl.decl list);
    Alcotest.fail "expected error"
  with Iw_idl.Parse_error msg ->
    (* undefined pointer target reported at the offending field, mid-file *)
    Alcotest.(check bool) ("position in " ^ msg) true
      (starts_with "line 4, column 8:" msg)

let test_register_all () =
  let ds = Iw_idl.parse "struct a { int x; };\nstruct b { a *link; };" in
  let r = Iw_types.Registry.create () in
  Iw_idl.register_all r ds;
  Alcotest.(check bool) "a resolvable" true (Iw_types.Registry.resolve_name r "a" <> None);
  Alcotest.(check bool) "b resolvable" true (Iw_types.Registry.resolve_name r "b" <> None);
  Alcotest.(check bool) "lookup finds" true (Iw_idl.lookup ds "a" <> None);
  Alcotest.(check bool) "lookup misses" true (Iw_idl.lookup ds "zzz" = None)

let test_codegen_contains_accessors () =
  let ds = Iw_idl.parse "struct node { int key; char tag[16]; node *next; double w; };" in
  let code = Iw_idl.to_ocaml ds in
  let contains needle =
    let n = String.length needle and h = String.length code in
    let rec go i = i + n <= h && (String.sub code i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("generated code contains " ^ needle) true (go 0)
  in
  contains "module Node";
  contains "let get_key";
  contains "let set_key";
  contains "let get_tag";
  contains "~capacity:16";
  contains "let get_next";
  contains "let get_w";
  contains "let malloc";
  contains "Iw_types.Ptr \"node\"";
  let prefixed = Iw_idl.to_ocaml ~module_prefix:"Gen_" ds in
  let n = String.length "module Gen_Node" in
  let rec go i =
    (i + n <= String.length prefixed && String.sub prefixed i n = "module Gen_Node") || (i + n <= String.length prefixed && go (i + 1))
  in
  Alcotest.(check bool) "prefix honoured" true (go 0)

let test_generated_descriptor_matches () =
  (* The descriptor in generated code is the same value the parser built:
     compare layout sizes across architectures for a representative type. *)
  let ds = Iw_idl.parse "struct rec { int a; double b; char s[24]; rec *next; };" in
  let d = (List.hd ds).Iw_idl.d_desc in
  List.iter
    (fun arch ->
      let lay = Iw_types.layout (Iw_types.local arch) d in
      Alcotest.(check bool)
        (arch.Iw_arch.name ^ " layout sane")
        true
        (Iw_types.size lay > 0 && Iw_types.layout_prim_count lay = 4))
    Iw_arch.all

let suite =
  ( "idl",
    [
      Alcotest.test_case "simple struct" `Quick test_simple_struct;
      Alcotest.test_case "all primitives" `Quick test_all_primitives;
      Alcotest.test_case "arrays and byte arrays" `Quick test_arrays_and_byte_arrays;
      Alcotest.test_case "self reference" `Quick test_self_reference;
      Alcotest.test_case "by-value embedding" `Quick test_by_value_embedding;
      Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "errors carry line numbers" `Quick test_error_reports_line;
      Alcotest.test_case "errors carry line and column" `Quick test_error_reports_column;
      Alcotest.test_case "register_all" `Quick test_register_all;
      Alcotest.test_case "codegen accessors" `Quick test_codegen_contains_accessors;
      Alcotest.test_case "generated descriptor" `Quick test_generated_descriptor_matches;
    ] )
