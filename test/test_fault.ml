(* The robustness layer: fault-plan parsing, deterministic injection,
   metrics/flight evidence, call deadlines, typed connect errors, and the
   acceptance scenarios — a write-lock holder surviving a forced server-side
   close via Resume_session, and a leased server reclaiming a dead client's
   lock (the loser seeing a typed Lock_lost). *)

module F = Iw_fault

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Parsing *)

let test_parse_ok () =
  match F.parse "seed:7,drop:0.25,delay:5ms,garble:0.1,close@req=17" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "seed" 7 p.F.p_seed;
    Alcotest.(check (float 1e-9)) "drop" 0.25 p.F.p_drop;
    Alcotest.(check (float 1e-9)) "delay" 0.005 p.F.p_delay;
    Alcotest.(check (float 1e-9)) "garble" 0.1 p.F.p_garble;
    Alcotest.(check (option int)) "close" (Some 17) p.F.p_close_req;
    (* pp renders back into the input syntax. *)
    let pp = Format.asprintf "%a" F.pp p in
    (match F.parse pp with
    | Ok p' -> Alcotest.(check bool) "pp roundtrip" true (p = p')
    | Error e -> Alcotest.fail ("pp output does not re-parse: " ^ e))

let test_parse_errors () =
  let rejects s =
    match F.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  rejects "drop:2.0";
  rejects "drop:x";
  rejects "delay:5";  (* no unit *)
  rejects "delay:-1ms";
  rejects "close@req=0";
  rejects "close@req:3";  (* ':' instead of '=' *)
  rejects "frobnicate:1";
  rejects "seed:yes"

(* Deterministic injection *)

let counting_conn () =
  let n = ref 0 in
  {
    Iw_transport.send = (fun _ -> ());
    recv =
      (fun () ->
        incr n;
        Printf.sprintf "frame-%d" !n);
    shutdown = (fun () -> ());
    close = (fun () -> ());
    peer = "test";
  }

(* The injected-fault sequence for a given plan over given traffic. *)
let injection_trace plan_str frames =
  let log = ref [] in
  let t = F.arm (F.parse_exn plan_str) in
  let conn = F.wrap ~on_inject:(fun k -> log := F.kind_name k :: !log) t (counting_conn ()) in
  for i = 1 to frames do
    conn.Iw_transport.send (Printf.sprintf "out-%d" i);
    ignore (conn.Iw_transport.recv () : string)
  done;
  List.rev !log

let test_determinism () =
  let plan = "seed:5,drop:0.3,garble:0.3" in
  let a = injection_trace plan 100 and b = injection_trace plan 100 in
  Alcotest.(check (list string)) "same plan, same schedule" a b;
  let c = injection_trace "seed:6,drop:0.3,garble:0.3" 100 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_close_at_frame () =
  let t = F.arm (F.parse_exn "close@req=3") in
  let shut = ref false in
  let base = counting_conn () in
  let conn = F.wrap t { base with Iw_transport.shutdown = (fun () -> shut := true) } in
  conn.Iw_transport.send "one";
  conn.Iw_transport.send "two";
  (match conn.Iw_transport.send "three" with
  | () -> Alcotest.fail "send 3 should have closed the link"
  | exception Iw_transport.Closed -> ());
  Alcotest.(check bool) "connection was shut down" true !shut

let test_metrics_and_flight () =
  let flight = Iw_flight.create ~capacity:16 () in
  let t = F.arm (F.parse_exn "seed:1,drop:1.0") in
  let conn = F.wrap ~flight t (counting_conn ()) in
  conn.Iw_transport.send "doomed";
  let prom =
    Iw_metrics.render_prometheus (Iw_metrics.snapshot (Iw_transport.metrics ()))
  in
  Alcotest.(check bool) "counter in transport registry" true
    (contains ~needle:"iw_fault_injected_total{kind=\"drop\"}" prom);
  Alcotest.(check bool) "event in flight dump" true
    (contains ~needle:"fault!drop" (Iw_flight.dump_string flight))

(* Protocol additions *)

let test_resume_codec () =
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_request buf (Iw_proto.Resume_session { session = 42; arch = "mips32" });
  (match Iw_proto.decode_request (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf)) with
  | Iw_proto.Resume_session { session = 42; arch = "mips32" } -> ()
  | _ -> Alcotest.fail "Resume_session did not roundtrip");
  let buf = Iw_wire.Buf.create () in
  Iw_proto.encode_response buf (Iw_proto.R_resumed { held = [ "a"; "b/c" ] });
  match Iw_proto.decode_response (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf)) with
  | Iw_proto.R_resumed { held = [ "a"; "b/c" ] } -> ()
  | _ -> Alcotest.fail "R_resumed did not roundtrip"

let test_call_timeout () =
  (* A server that never answers: the call must deadline out rather than
     hang, and the desynchronized link must refuse further calls. *)
  let client_end, _server_end = Iw_transport.loopback () in
  let link = Iw_proto.demux_link ~call_timeout:0.1 client_end ~on_notify:ignore in
  (match link.Iw_proto.call (Iw_proto.Hello { arch = "x86_32" }) with
  | _ -> Alcotest.fail "call should have timed out"
  | exception Iw_transport.Timeout -> ());
  match link.Iw_proto.call (Iw_proto.Hello { arch = "x86_32" }) with
  | _ -> Alcotest.fail "dead link accepted another call"
  | exception Iw_transport.Closed -> ()

let test_connect_failed () =
  match Iw_transport.tcp_connect ~host:"127.0.0.1" ~port:1 with
  | _ -> Alcotest.fail "connect to port 1 should fail"
  | exception Iw_transport.Connect_failed msg ->
    Alcotest.(check bool) "message names the endpoint" true
      (contains ~needle:"127.0.0.1:1" msg)

(* Reconnect-with-recovery *)

(* A loopback client whose server side we can kill at will, dialing a fresh
   loopback pair (and serve thread) on every [dial] — the same wiring
   Interweave.loopback_client uses, laid bare for fault control. *)
let reconnectable_client server =
  let dials = ref 0 in
  let live_server_end = ref None in
  let cref = ref None in
  let dial () =
    incr dials;
    let client_end, server_end = Iw_transport.loopback () in
    live_server_end := Some server_end;
    ignore (Thread.create (fun () -> Iw_server.serve_conn server server_end) () : Thread.t);
    Iw_proto.demux_link client_end ~on_notify:(fun n ->
        match !cref with Some c -> Iw_client.handle_notification c n | None -> ())
  in
  let c = Iw_client.connect (dial ()) in
  cref := Some c;
  Iw_client.enable_notifications c;
  Iw_client.set_reconnect c ~dial;
  let kill () = (Option.get !live_server_end).Iw_transport.shutdown () in
  (c, kill, dials)

let int_desc = Iw_types.Prim Iw_arch.Int

let test_resume_keeps_write_lock () =
  let server = Iw_server.create ~lease_secs:60.0 () in
  let c, kill, dials = reconnectable_client server in
  let session_before = Iw_client.session c in
  let g = Iw_client.open_segment c "fault/resume" in
  Iw_client.wl_acquire g;
  let a = Iw_client.malloc g int_desc ~name:"x" in
  Iw_client.write_int c a 42;
  (* The server side drops the connection while the write lock is held. *)
  kill ();
  (* The release must reconnect, resume the session, find the lock intact,
     and commit — all transparently. *)
  Iw_client.wl_release g;
  Alcotest.(check int) "session resumed, not recreated" session_before (Iw_client.session c);
  Alcotest.(check bool) "re-dialed at least once" true (!dials >= 2);
  Alcotest.(check int) "release published a version" 1 (Iw_client.segment_version g);
  (* The committed value is visible through a clean channel. *)
  let r = Iw_client.connect (Iw_server.direct_link server) in
  let gr = Iw_client.open_segment ~create:false r "fault/resume" in
  Iw_client.rl_acquire gr;
  let ar = (Option.get (Iw_client.find_named_block gr "x")).Iw_mem.b_addr in
  Alcotest.(check int) "value survived the reconnect" 42 (Iw_client.read_int r ar);
  Iw_client.rl_release gr

let test_lease_reclaim () =
  let lease = 0.2 in
  let server = Iw_server.create ~lease_secs:lease () in
  let a_client = Iw_client.connect (Iw_server.direct_link server) in
  let b_client = Iw_client.connect ~busy_wait:(Some 0.02) (Iw_server.direct_link server) in
  let ga = Iw_client.open_segment a_client "fault/lease" in
  Iw_client.wl_acquire ga;
  let addr = Iw_client.malloc ga int_desc ~name:"n" in
  Iw_client.write_int a_client addr 1;
  (* Client A goes quiet past its lease while still holding the lock. *)
  Unix.sleepf (2.5 *. lease);
  (* Client B must obtain the lock within the retry budget — the server
     reclaims it lazily on B's Write_lock. *)
  let gb = Iw_client.open_segment ~create:false b_client "fault/lease" in
  let t0 = Unix.gettimeofday () in
  Iw_client.wl_acquire gb;
  Alcotest.(check bool) "reclaimed within 2x lease" true
    (Unix.gettimeofday () -. t0 <= 2.0 *. lease);
  let addr_b = Iw_client.malloc gb int_desc ~name:"b" in
  Iw_client.write_int b_client addr_b 7;
  Iw_client.wl_release gb;
  (* A's critical section is gone: its release must surface a typed error,
     not publish, and leave the segment unlocked. *)
  Iw_client.write_int a_client addr 99;
  (match Iw_client.wl_release ga with
  | () -> Alcotest.fail "A's release should have failed"
  | exception Iw_client.Lock_lost name ->
    Alcotest.(check string) "names the segment" "fault/lease" name);
  Alcotest.(check bool) "A left unlocked" false (Iw_client.locked ga);
  (* A can start over and sees B's committed state, not its own lost write:
     A's critical section never published, so B's commit is version 1. *)
  Iw_client.wl_acquire ga;
  Alcotest.(check int) "A sees B's commit" 1 (Iw_client.segment_version ga);
  Alcotest.(check bool) "A's lost block is gone" true
    (Iw_client.find_named_block ga "n" = None);
  Alcotest.(check bool) "B's block arrived" true
    (Iw_client.find_named_block ga "b" <> None);
  Iw_client.wl_release ga

let test_env_fault_end_to_end () =
  Unix.putenv "IW_FAULT" "seed:3,drop:0.15,delay:100us";
  Fun.protect ~finally:(fun () -> Unix.putenv "IW_FAULT" "")
  @@ fun () ->
  let server = Interweave.start_server ~lease_secs:5.0 () in
  let c = Interweave.loopback_client ~call_timeout:0.15 server in
  let g = Interweave.open_segment c "fault/env" in
  let a =
    Interweave.with_write_lock g (fun () -> Interweave.malloc g Interweave.Desc.int ~name:"n")
  in
  for i = 1 to 8 do
    Interweave.with_write_lock g (fun () -> Interweave.Client.write_int c a i)
  done;
  (* Despite the lossy link, state converged. *)
  let r = Interweave.direct_client server in
  let gr = Interweave.open_segment ~create:false r "fault/env" in
  Interweave.with_read_lock gr (fun () ->
      let ar = (Option.get (Interweave.Client.find_named_block gr "n")).Iw_mem.b_addr in
      Alcotest.(check int) "all writes landed" 8 (Interweave.Client.read_int r ar));
  (* And the injections left evidence in the transport registry. *)
  let prom =
    Iw_metrics.render_prometheus (Iw_metrics.snapshot (Iw_transport.metrics ()))
  in
  Alcotest.(check bool) "env plan injected faults" true
    (contains ~needle:"iw_fault_injected_total" prom)

let suite =
  ( "fault",
    [
      Alcotest.test_case "plan parse" `Quick test_parse_ok;
      Alcotest.test_case "plan rejects bad directives" `Quick test_parse_errors;
      Alcotest.test_case "seeded determinism" `Quick test_determinism;
      Alcotest.test_case "close at frame N" `Quick test_close_at_frame;
      Alcotest.test_case "metrics and flight evidence" `Quick test_metrics_and_flight;
      Alcotest.test_case "resume codec" `Quick test_resume_codec;
      Alcotest.test_case "call timeout" `Quick test_call_timeout;
      Alcotest.test_case "typed connect failure" `Quick test_connect_failed;
      Alcotest.test_case "reconnect keeps write lock" `Quick test_resume_keeps_write_lock;
      Alcotest.test_case "lease reclaims dead client's lock" `Quick test_lease_reclaim;
      Alcotest.test_case "IW_FAULT end to end" `Quick test_env_fault_end_to_end;
    ] )
