(* The analysis subsystem: IDL lint, lockset sanitizer, wire-diff checks. *)

open Interweave

let contains_sub s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* {1 IDL lint} *)

let lint_codes ds = List.sort_uniq compare (List.map (fun d -> d.Iw_lint.code) ds)

(* dune runtest runs from the test directory; dune exec from the root *)
let list_idl =
  if Sys.file_exists "../examples/list.idl" then "../examples/list.idl"
  else "examples/list.idl"

let test_lint_list_idl_clean () =
  let decls = Iw_idl.parse_file list_idl in
  Alcotest.(check (list string)) "no diagnostics" [] (lint_codes (Iw_lint.lint decls))

(* The acceptance fixture: pointer cycle, void*, tiny inline string, long,
   oversized block, and an unused struct. *)
let bad_src =
  "struct orphan {\n\
  \    int unused_payload;\n\
   };\n\
   \n\
   struct edge {\n\
  \    void *cookie;\n\
  \    graph *owner;\n\
  \    char tag[2];\n\
   };\n\
   \n\
   struct graph {\n\
  \    long id;\n\
  \    edge *first;\n\
  \    double weights[600];\n\
   };\n"

let test_lint_bad_fixture () =
  let ds = Iw_lint.lint (Iw_idl.parse bad_src) in
  Alcotest.(check (list string))
    "codes"
    [ "IDL001"; "IDL003"; "IDL004"; "IDL005"; "IDL007"; "IDL009" ]
    (lint_codes ds);
  Alcotest.(check bool) "at least 4 distinct codes" true (List.length (lint_codes ds) >= 4);
  (* locations pinpoint the offending field *)
  let d4 = List.find (fun d -> d.Iw_lint.code = "IDL004") ds in
  Alcotest.(check (pair int int)) "void* location" (6, 11) (d4.Iw_lint.line, d4.Iw_lint.col);
  Alcotest.(check (option string)) "void* field" (Some "cookie") d4.Iw_lint.field;
  let d1 = List.find (fun d -> d.Iw_lint.code = "IDL001") ds in
  Alcotest.(check (pair int int)) "cycle location" (7, 12) (d1.Iw_lint.line, d1.Iw_lint.col);
  Alcotest.(check string) "cycle struct" "edge" d1.Iw_lint.decl;
  (* the fixture is warning-level, so --Werror fails it and plain mode not *)
  Alcotest.(check bool) "worst is warning" true (Iw_lint.worst ds = Some Iw_lint.Warning)

let test_lint_self_pointer_not_a_cycle () =
  (* the ordinary list idiom (paper, Figure 1) must stay clean *)
  let ds = Iw_lint.lint (Iw_idl.parse "struct node { int key; node *next; };") in
  Alcotest.(check (list string)) "clean" [] (lint_codes ds);
  (* ...but a doubly-linked node is flagged *)
  let ds =
    Iw_lint.lint (Iw_idl.parse "struct dnode { int key; dnode *next; dnode *prev; };")
  in
  Alcotest.(check (list string)) "doubly-linked flagged" [ "IDL001" ] (lint_codes ds)

let test_lint_padding_and_divergence () =
  let ds =
    Iw_lint.lint
      (Iw_idl.parse "struct padded { char c1; double d1; char c2; double d2; };")
  in
  let cs = lint_codes ds in
  (* sparc32: 14 of 32 bytes are padding *)
  Alcotest.(check bool) "IDL006 present" true (List.mem "IDL006" cs);
  (* d1 sits at offset 4 on x86_32 but 8 on sparc32 *)
  Alcotest.(check bool) "IDL008 present" true (List.mem "IDL008" cs);
  let d8 = List.find (fun d -> d.Iw_lint.code = "IDL008") ds in
  Alcotest.(check (option string)) "divergent field" (Some "d1") d8.Iw_lint.field

let test_lint_unresolved_ptr () =
  (* hand-built declarations can reference structs the parser would reject *)
  let loc = { Iw_idl.l_line = 3; l_col = 9 } in
  let d =
    {
      Iw_idl.d_name = "x";
      d_desc = Types.Struct [| { Types.fname = "p"; ftype = Types.Ptr "ghost" } |];
      d_loc = { Iw_idl.l_line = 1; l_col = 8 };
      d_fields = [ ("p", loc) ];
    }
  in
  let ds = Iw_lint.lint [ d ] in
  Alcotest.(check (list string)) "IDL002" [ "IDL002" ] (lint_codes ds);
  Alcotest.(check bool) "worst is error" true (Iw_lint.worst ds = Some Iw_lint.Error);
  let d2 = List.hd ds in
  Alcotest.(check (pair int int)) "at field loc" (3, 9) (d2.Iw_lint.line, d2.Iw_lint.col)

let test_lint_json () =
  let ds = Iw_lint.lint (Iw_idl.parse bad_src) in
  let json = Iw_lint.to_json ds in
  Alcotest.(check bool) "code key" true (contains_sub json "\"code\":\"IDL004\"");
  Alcotest.(check bool) "severity key" true (contains_sub json "\"severity\":\"warning\"");
  Alcotest.(check bool) "null field for struct-level" true (contains_sub json "\"field\":null")

(* {1 Lockset sanitizer} *)

let node_desc =
  Desc.structure [ Desc.field "key" Desc.int; Desc.field "next" (Desc.ptr "node") ]

let san_codes s =
  List.sort_uniq compare (List.map (fun r -> r.Iw_sanitizer.r_code) (Iw_sanitizer.reports s))

let fresh ?policy ?strict_reads () =
  let server = start_server () in
  let c = direct_client server in
  let s = Iw_sanitizer.attach ?policy ?strict_reads c in
  (server, c, s)

(* Correct quickstart-style usage must produce zero reports. *)
let test_sanitizer_clean_run () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/clean" in
  let a, b =
    with_write_lock h (fun () ->
        let a = malloc h node_desc ~name:"head" in
        let b = malloc h node_desc in
        Client.write_int c a 1;
        Client.write_ptr c (a + 4) b;
        Client.write_int c b 2;
        Client.write_ptr c (b + 4) 0;
        (a, b))
  in
  with_read_lock h (fun () ->
      (* nested read sections are fine *)
      with_read_lock h (fun () ->
          let next = Client.read_ptr c (a + 4) in
          Alcotest.(check int) "link followed" 2 (Client.read_int c next));
      Alcotest.(check int) "head" 1 (Client.read_int c a));
  (* swizzling round trip *)
  let mip = ptr_to_mip c b in
  let b' = mip_to_ptr c mip in
  Alcotest.(check int) "mip roundtrip" b b';
  with_write_lock h (fun () ->
      Client.write_ptr c (a + 4) 0;
      free c b);
  Alcotest.(check (list string)) "no reports" [] (san_codes s)

let test_san01_load_no_lock () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s1" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  ignore (Client.read_int c a : int);
  Alcotest.(check (list string)) "SAN01" [ "SAN01" ] (san_codes s)

let test_san01_relaxed_reads () =
  let _server, c, s = fresh ~strict_reads:false () in
  let h = open_segment c "san/s1r" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  ignore (Client.read_int c a : int);
  Alcotest.(check (list string)) "tolerated" [] (san_codes s)

let test_san02_store_no_write_lock () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s2" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  with_read_lock h (fun () -> Client.write_int c a 5);
  Alcotest.(check (list string)) "SAN02 under read lock" [ "SAN02" ] (san_codes s);
  Iw_sanitizer.clear s;
  Client.write_int c a 6;
  Alcotest.(check (list string)) "SAN02 unlocked" [ "SAN02" ] (san_codes s)

let test_san03_malloc_no_lock () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s3" in
  (try ignore (malloc h Desc.int : addr) with Client.Error _ -> ());
  ignore c;
  Alcotest.(check (list string)) "SAN03" [ "SAN03" ] (san_codes s)

let test_san04_free_no_lock () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s4" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  (try free c a with Client.Error _ -> ());
  Alcotest.(check (list string)) "SAN04" [ "SAN04" ] (san_codes s)

let test_san05_use_after_free () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s5" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  with_write_lock h (fun () ->
      free c a;
      (* the page is still mapped, so without the sanitizer this reads
         silently *)
      ignore (Client.read_int c a : int));
  Alcotest.(check (list string)) "SAN05" [ "SAN05" ] (san_codes s)

let test_san06_use_after_abort () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s6" in
  wl_acquire h;
  let b = malloc h Desc.int in
  Client.write_int c b 5;
  wl_abort h;
  (try ignore (Client.read_int c b : int) with Invalid_argument _ -> ());
  Alcotest.(check (list string)) "SAN06" [ "SAN06" ] (san_codes s)

let test_san07_release_imbalance () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s7" in
  ignore c;
  (try rl_release h with _ -> ());
  Alcotest.(check (list string)) "SAN07 read" [ "SAN07" ] (san_codes s);
  Iw_sanitizer.clear s;
  (try wl_release h with _ -> ());
  Alcotest.(check (list string)) "SAN07 write" [ "SAN07" ] (san_codes s)

let test_san08_lock_order_inversion () =
  let _server, c, s = fresh () in
  let h1 = open_segment c "san/ord1" in
  let h2 = open_segment c "san/ord2" in
  ignore c;
  rl_acquire h1;
  rl_acquire h2;
  rl_release h2;
  rl_release h1;
  Alcotest.(check (list string)) "order established, clean" [] (san_codes s);
  rl_acquire h2;
  rl_acquire h1;
  rl_release h1;
  rl_release h2;
  Alcotest.(check (list string)) "SAN08" [ "SAN08" ] (san_codes s);
  (* the report must carry its witnesses: both segment names and the two
     acquisition sites (the inverting one and the earlier one it
     contradicts) *)
  let msg =
    match
      List.find_opt (fun r -> r.Iw_sanitizer.r_code = "SAN08") (Iw_sanitizer.reports s)
    with
    | Some r -> r.Iw_sanitizer.r_message
    | None -> Alcotest.fail "no SAN08 report"
  in
  Alcotest.(check bool) ("names ord1: " ^ msg) true (contains_sub msg "'san/ord1'");
  Alcotest.(check bool) ("names ord2: " ^ msg) true (contains_sub msg "'san/ord2'");
  Alcotest.(check bool)
    ("names the inverting acquisition: " ^ msg)
    true
    (contains_sub msg "acquisition #4 (read_lock 'san/ord1' while holding 'san/ord2')");
  Alcotest.(check bool)
    ("names the earlier witness: " ^ msg)
    true
    (contains_sub msg "acquisition #2 (read_lock 'san/ord2' while holding 'san/ord1')")

let test_san09_unswizzled_deref () =
  let _server, c, s = fresh () in
  let h = open_segment c "san/s9" in
  wl_acquire h;
  let a = malloc h (Desc.structure [ Desc.field "p" Desc.opaque_ptr ]) in
  Client.write_ptr c a 0x7fff0000;
  let v = Client.read_ptr c a in
  (try ignore (Client.read_int c v : int) with Invalid_argument _ -> ());
  (* abort: committing would (rightly) fail to swizzle the garbage pointer *)
  wl_abort h;
  Alcotest.(check (list string)) "SAN09" [ "SAN09" ] (san_codes s)

let test_sanitizer_raise_policy () =
  let _server, c, s = fresh ~policy:Iw_sanitizer.Raise () in
  let h = open_segment c "san/raise" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  (try
     ignore (Client.read_int c a : int);
     Alcotest.fail "expected Violation"
   with Iw_sanitizer.Violation r ->
     Alcotest.(check string) "code" "SAN01" r.Iw_sanitizer.r_code);
  Iw_sanitizer.detach s;
  (* after detach the same access is silent again *)
  ignore (Client.read_int c a : int)

(* {1 Wire-diff validation} *)

(* A client whose outgoing Write_release diffs are checked at the link
   against the server's pre-application state. *)
let validating_setup () =
  let server = start_server () in
  Server.set_validate_diffs server true;
  let base = Server.direct_link server in
  let release_issues = ref [] in
  let checked_call ?ctx req =
    (match req with
    | Proto.Write_release { name; diff; _ } ->
      release_issues :=
        !release_issues @ Iw_wire_check.check (Server.diff_ctx server name) diff
    | _ -> ());
    base.Proto.call ?ctx req
  in
  let c = Client.connect { base with Proto.call = checked_call } in
  (server, c, release_issues)

let test_wire_accepts_server_traffic () =
  let _server, c, issues = validating_setup () in
  let h = Client.open_segment c "wire/seg" in
  let a =
    with_write_lock h (fun () ->
        let a = malloc h node_desc ~name:"head" in
        let b = malloc h node_desc in
        Client.write_int c a 10;
        Client.write_ptr c (a + 4) b;
        a)
  in
  (* a second critical section produces an Update diff *)
  with_write_lock h (fun () -> Client.write_int c a 11);
  (* and a no-change section produces the empty same-version diff *)
  with_write_lock h (fun () -> ());
  Alcotest.(check int) "all diffs well-formed" 0 (List.length !issues)

let wire_codes is = List.sort_uniq compare (List.map (fun i -> i.Iw_wire_check.i_code) is)

let has_code code is = List.mem code (wire_codes is)

let test_wire_rejects_corrupted () =
  let server, c, _issues = validating_setup () in
  let h = Client.open_segment c "wire/bad" in
  let _a =
    with_write_lock h (fun () ->
        let a = malloc h node_desc ~name:"head" in
        Client.write_int c a 1;
        a)
  in
  let ctx = Server.diff_ctx server "wire/bad" in
  let serial = (Option.get (Client.find_named_block h "head")).Mem.b_serial in
  let desc_serial, pcount = Option.get (ctx.Iw_wire_check.cx_block serial) in
  let v = Client.segment_version h in
  let diff ?(to_version = v + 1) ?(new_descs = []) changes =
    { Wire.Diff.from_version = v; to_version; new_descs; changes }
  in
  let int_payload n =
    let b = Wire.Buf.create () in
    Wire.Buf.u32 b n;
    Wire.Buf.contents b
  in
  let mip_payload m =
    let b = Wire.Buf.create () in
    Wire.Buf.string b m;
    Wire.Buf.contents b
  in
  let update runs = [ Wire.Diff.Update { serial; runs } ] in
  let check d = Iw_wire_check.check ctx d in
  (* out-of-bounds run *)
  Alcotest.(check bool) "WIRE01" true
    (has_code "WIRE01"
       (check (diff (update [ { Wire.Diff.start_pu = pcount; len_pu = 4; payload = "" } ]))));
  (* overlapping runs *)
  Alcotest.(check bool) "WIRE02" true
    (has_code "WIRE02"
       (check
          (diff
             (update
                [
                  { Wire.Diff.start_pu = 0; len_pu = 1; payload = int_payload 1 };
                  { Wire.Diff.start_pu = 0; len_pu = 1; payload = int_payload 2 };
                ]))));
  (* unknown block *)
  Alcotest.(check bool) "WIRE03" true
    (has_code "WIRE03"
       (check
          (diff
             [
               Wire.Diff.Update
                 { serial = 9999; runs = [ { start_pu = 0; len_pu = 1; payload = "" } ] };
             ])));
  (* unknown descriptor *)
  Alcotest.(check bool) "WIRE04" true
    (has_code "WIRE04"
       (check
          (diff
             [ Wire.Diff.Create { serial = 777; name = None; desc_serial = 999; payload = "" } ])));
  (* syntactically invalid MIP in a pointer unit (unit 1 is 'next') *)
  Alcotest.(check bool) "WIRE05" true
    (has_code "WIRE05"
       (check
          (diff (update [ { Wire.Diff.start_pu = 1; len_pu = 1; payload = mip_payload "x##1" } ]))));
  (* truncated payload *)
  Alcotest.(check bool) "WIRE06" true
    (has_code "WIRE06"
       (check (diff (update [ { Wire.Diff.start_pu = 0; len_pu = 1; payload = "" } ]))));
  (* trailing bytes *)
  Alcotest.(check bool) "WIRE06 trailing" true
    (has_code "WIRE06"
       (check
          (diff
             (update
                [ { Wire.Diff.start_pu = 0; len_pu = 1; payload = int_payload 1 ^ "xx" } ]))));
  (* version regression on a non-empty diff *)
  Alcotest.(check bool) "WIRE07" true
    (has_code "WIRE07"
       (check
          (diff ~to_version:v
             (update [ { Wire.Diff.start_pu = 0; len_pu = 1; payload = int_payload 1 } ]))));
  (* create of an existing serial *)
  Alcotest.(check bool) "WIRE08" true
    (has_code "WIRE08"
       (check
          (diff
             [
               Wire.Diff.Create
                 {
                   serial;
                   name = None;
                   desc_serial;
                   payload = int_payload 0 ^ mip_payload "";
                 };
             ])));
  (* degenerate run *)
  Alcotest.(check bool) "WIRE09" true
    (has_code "WIRE09"
       (check (diff (update [ { Wire.Diff.start_pu = 0; len_pu = 0; payload = "" } ]))));
  (* conflicting descriptor serial binding *)
  Alcotest.(check bool) "WIRE10" true
    (has_code "WIRE10"
       (check (diff ~new_descs:[ (desc_serial, Types.Prim Iw_arch.Char) ] (update []))));
  (* the untouched baseline stays accepted *)
  Alcotest.(check (list string)) "clean baseline" []
    (wire_codes
       (check (diff (update [ { Wire.Diff.start_pu = 0; len_pu = 1; payload = int_payload 7 } ]))))

(* The server, with validation on, refuses a corrupt diff whole and does not
   wedge the segment's write lock. *)
let test_server_rejects_corrupt_diff () =
  let server = start_server () in
  Server.set_validate_diffs server true;
  let session =
    match Server.handle server (Proto.Hello { arch = "x86_32" }) with
    | Proto.R_hello { session } -> session
    | _ -> Alcotest.fail "hello"
  in
  (match Server.handle server (Proto.Open_segment { session; name = "s"; create = true }) with
  | Proto.R_segment _ -> ()
  | _ -> Alcotest.fail "open");
  (match Server.handle server (Proto.Write_lock { session; name = "s"; version = 0 }) with
  | Proto.R_granted _ -> ()
  | _ -> Alcotest.fail "lock");
  let corrupt =
    {
      Wire.Diff.from_version = 0;
      to_version = 1;
      new_descs = [];
      changes =
        [
          Wire.Diff.Update
            { serial = 5; runs = [ { start_pu = 0; len_pu = 1; payload = "" } ] };
        ];
    }
  in
  (match Server.handle server (Proto.Write_release { session; name = "s"; diff = corrupt }) with
  | Proto.R_error msg ->
    Alcotest.(check bool) ("names the issue: " ^ msg) true (contains_sub msg "invalid diff")
  | _ -> Alcotest.fail "expected R_error");
  (* the lock was released on rejection *)
  match Server.handle server (Proto.Write_lock { session; name = "s"; version = 0 }) with
  | Proto.R_granted _ -> ()
  | _ -> Alcotest.fail "segment wedged after rejected diff"

(* {1 Lock-discipline source lint} *)

let lck_codes src =
  Iw_src_lint.lint_string ~file:"fixture.ml" src
  |> List.map (fun d -> d.Iw_src_lint.l_code)

let test_lck001_raise_in_region () =
  Alcotest.(check (list string)) "failwith under plain lock" [ "LCK001" ]
    (lck_codes "let bad m =\n  Mutex.lock m;\n  failwith \"boom\";\n  Mutex.unlock m\n");
  Alcotest.(check (list string)) "never unlocked" [ "LCK001" ]
    (lck_codes "let worse m =\n  Mutex.lock m;\n  ignore m\n");
  Alcotest.(check (list string)) "straight-line region is fine" []
    (lck_codes "let ok m q x =\n  Mutex.lock m;\n  Queue.push x q;\n  Mutex.unlock m\n");
  Alcotest.(check (list string)) "Fun.protect is fine" []
    (lck_codes
       "let ok m f =\n\
       \  Mutex.lock m;\n\
       \  Fun.protect ~finally:(fun () -> Mutex.unlock m) f\n");
  (* an early unlock on the raising branch ends the region first *)
  Alcotest.(check (list string)) "unlock-then-raise is fine" []
    (lck_codes
       "let ok m =\n\
       \  Mutex.lock m;\n\
       \  if closed then begin Mutex.unlock m; raise Exit end;\n\
       \  Mutex.unlock m\n")

let test_lck002_blocking_under_lock () =
  Alcotest.(check (list string)) "fsync in protect region" [ "LCK002" ]
    (lck_codes
       "let slow m fd =\n\
       \  Mutex.lock m;\n\
       \  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> Unix.fsync fd)\n");
  Alcotest.(check (list string)) "store append in a *_locked body" [ "LCK002" ]
    (lck_codes "let commit_locked store seg =\n  Iw_store.append store seg\n");
  Alcotest.(check (list string)) "I/O after unlock is fine" []
    (lck_codes "let ok m oc =\n  Mutex.lock m;\n  Mutex.unlock m;\n  flush oc\n")

let test_lck003_lock_order () =
  Alcotest.(check (list string)) "out-of-order nesting" [ "LCK003" ]
    (lck_codes
       "let bad b_mu a_mu =\n\
       \  Mutex.lock b_mu;\n\
       \  Mutex.lock a_mu;\n\
       \  Mutex.unlock a_mu;\n\
       \  Mutex.unlock b_mu\n");
  Alcotest.(check (list string)) "canonical nesting is fine" []
    (lck_codes
       "let ok a_mu b_mu =\n\
       \  Mutex.lock a_mu;\n\
       \  Mutex.lock b_mu;\n\
       \  Mutex.unlock b_mu;\n\
       \  Mutex.unlock a_mu\n");
  Alcotest.(check (list string)) "re-acquisition" [ "LCK003" ]
    (lck_codes "let bad m =\n  Mutex.lock m;\n  Mutex.lock m;\n  Mutex.unlock m\n")

let test_lck004_unlocked_mutation () =
  Alcotest.(check (list string)) "mutation outside the region" [ "LCK004" ]
    (lck_codes
       "let bad m tbl k v =\n\
       \  Hashtbl.replace tbl k v;\n\
       \  Mutex.lock m;\n\
       \  ignore (Hashtbl.find_opt tbl k);\n\
       \  Mutex.unlock m\n");
  Alcotest.(check (list string)) "mutation under the region is fine" []
    (lck_codes
       "let ok m tbl k v =\n\
       \  Mutex.lock m;\n\
       \  Hashtbl.replace tbl k v;\n\
       \  Mutex.unlock m\n")

let test_lck_allow_comment () =
  Alcotest.(check (list string)) "lck-ok on the preceding line suppresses" []
    (lck_codes
       "let slow m fd =\n\
       \  Mutex.lock m;\n\
       \  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () ->\n\
       \    (* lck-ok: LCK002 log-before-ack needs the append in the critical section *)\n\
       \    Unix.fsync fd)\n");
  (* the wrong code does not suppress *)
  Alcotest.(check (list string)) "other codes unaffected" [ "LCK002" ]
    (lck_codes
       "let slow m fd =\n\
       \  Mutex.lock m;\n\
       \  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () ->\n\
       \    (* lck-ok: LCK001 wrong code *)\n\
       \    Unix.fsync fd)\n")

let test_lck_diagnostic_shape () =
  match Iw_src_lint.lint_string ~file:"fixture.ml"
          "let bad m =\n  Mutex.lock m;\n  failwith \"boom\";\n  Mutex.unlock m\n"
  with
  | [ d ] ->
    Alcotest.(check string) "file" "fixture.ml" d.Iw_src_lint.l_file;
    Alcotest.(check string) "def" "bad" d.Iw_src_lint.l_def;
    Alcotest.(check int) "line of the raising call" 3 d.Iw_src_lint.l_line;
    Alcotest.(check bool) "is an error" true
      (d.Iw_src_lint.l_severity = Iw_lint.Error);
    let rendered = Format.asprintf "%a" Iw_src_lint.pp_diagnostic d in
    Alcotest.(check bool) ("renders position: " ^ rendered) true
      (contains_sub rendered "fixture.ml:3:")
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "lint: list.idl is clean" `Quick test_lint_list_idl_clean;
      Alcotest.test_case "lint: bad fixture codes and locations" `Quick test_lint_bad_fixture;
      Alcotest.test_case "lint: self pointer is not a cycle" `Quick
        test_lint_self_pointer_not_a_cycle;
      Alcotest.test_case "lint: padding and layout divergence" `Quick
        test_lint_padding_and_divergence;
      Alcotest.test_case "lint: unresolved pointer target" `Quick test_lint_unresolved_ptr;
      Alcotest.test_case "lint: json output" `Quick test_lint_json;
      Alcotest.test_case "sanitizer: clean run has no reports" `Quick test_sanitizer_clean_run;
      Alcotest.test_case "sanitizer: SAN01 load outside lock" `Quick test_san01_load_no_lock;
      Alcotest.test_case "sanitizer: relaxed reads tolerated" `Quick test_san01_relaxed_reads;
      Alcotest.test_case "sanitizer: SAN02 store without write lock" `Quick
        test_san02_store_no_write_lock;
      Alcotest.test_case "sanitizer: SAN03 malloc without lock" `Quick test_san03_malloc_no_lock;
      Alcotest.test_case "sanitizer: SAN04 free without lock" `Quick test_san04_free_no_lock;
      Alcotest.test_case "sanitizer: SAN05 use after free" `Quick test_san05_use_after_free;
      Alcotest.test_case "sanitizer: SAN06 use after abort" `Quick test_san06_use_after_abort;
      Alcotest.test_case "sanitizer: SAN07 release imbalance" `Quick
        test_san07_release_imbalance;
      Alcotest.test_case "sanitizer: SAN08 lock-order inversion" `Quick
        test_san08_lock_order_inversion;
      Alcotest.test_case "sanitizer: SAN09 unswizzled deref" `Quick test_san09_unswizzled_deref;
      Alcotest.test_case "sanitizer: raise policy and detach" `Quick test_sanitizer_raise_policy;
      Alcotest.test_case "wire: server traffic accepted" `Quick test_wire_accepts_server_traffic;
      Alcotest.test_case "wire: corrupted diffs rejected" `Quick test_wire_rejects_corrupted;
      Alcotest.test_case "wire: server rejects and releases lock" `Quick
        test_server_rejects_corrupt_diff;
      Alcotest.test_case "lck: LCK001 unprotected unlock paths" `Quick
        test_lck001_raise_in_region;
      Alcotest.test_case "lck: LCK002 blocking under lock" `Quick
        test_lck002_blocking_under_lock;
      Alcotest.test_case "lck: LCK003 lock order" `Quick test_lck003_lock_order;
      Alcotest.test_case "lck: LCK004 unlocked mutation" `Quick
        test_lck004_unlocked_mutation;
      Alcotest.test_case "lck: lck-ok suppression" `Quick test_lck_allow_comment;
      Alcotest.test_case "lck: diagnostic shape" `Quick test_lck_diagnostic_shape;
    ] )
