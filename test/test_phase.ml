(* Request-lifecycle observability: phase timers (exclusive attribution,
   nesting, forgiving leave), the stats accumulator behind the bench's
   phase section, the metric history ring (rotation + duration-weighted
   merge), the instrumented server lock (gauges + contention events), the
   slow log's phase shares, the new protocol codecs, and end-to-end
   checks that the per-phase decomposition actually explains measured
   request latency over both loopback and TCP. *)

module I = Interweave

let checkf name ?(eps = 0.5) expected got =
  if Float.abs (got -. expected) > eps then
    Alcotest.failf "%s: expected %g, got %g" name expected got

(* Timer attribution: a fake clock drives the pipeline; each phase gets
   exactly its exclusive time, a nested WAL append suspends the enclosing
   service phase, and gaps between brackets stay unattributed. *)
let test_timer_attribution () =
  let t = ref 0. in
  let tm = Iw_phase.start ~clock:(fun () -> !t) () in
  Iw_phase.enter tm Iw_phase.Decode;
  t := !t +. 0.001;
  Iw_phase.leave tm Iw_phase.Decode;
  t := !t +. 0.0005 (* unattributed: between decode and dispatch *);
  Iw_phase.enter tm Iw_phase.Service;
  t := !t +. 0.0005;
  Iw_phase.enter tm Iw_phase.Wal (* suspends Service *);
  t := !t +. 0.002;
  Iw_phase.leave tm Iw_phase.Wal;
  t := !t +. 0.0005;
  Iw_phase.leave tm Iw_phase.Service;
  checkf "decode" 1000. (Iw_phase.elapsed_us tm Iw_phase.Decode);
  checkf "service (exclusive)" 1000. (Iw_phase.elapsed_us tm Iw_phase.Service);
  checkf "wal" 2000. (Iw_phase.elapsed_us tm Iw_phase.Wal);
  checkf "lock_wait untouched" 0. (Iw_phase.elapsed_us tm Iw_phase.Lock_wait);
  checkf "total" 4500. (Iw_phase.total_us tm)

(* Leaving an outer phase while an inner one is still open must close the
   inner one first — a handler raising between enter/leave cannot corrupt
   attribution. *)
let test_forgiving_leave () =
  let t = ref 0. in
  let tm = Iw_phase.start ~clock:(fun () -> !t) () in
  Iw_phase.enter tm Iw_phase.Service;
  t := !t +. 0.001;
  Iw_phase.enter tm Iw_phase.Wal;
  t := !t +. 0.001;
  Iw_phase.leave tm Iw_phase.Service (* wal still open: both must close *);
  t := !t +. 0.001 (* after the close: attributed to nobody *);
  checkf "service" 1000. (Iw_phase.elapsed_us tm Iw_phase.Service);
  checkf "wal" 1000. (Iw_phase.elapsed_us tm Iw_phase.Wal);
  checkf "total" 3000. (Iw_phase.total_us tm)

let test_stats_accumulation () =
  let t = ref 0. in
  let tm = Iw_phase.start ~clock:(fun () -> !t) () in
  Iw_phase.enter tm Iw_phase.Decode;
  t := !t +. 0.001;
  Iw_phase.leave tm Iw_phase.Decode;
  Iw_phase.enter tm Iw_phase.Service;
  t := !t +. 0.003;
  Iw_phase.leave tm Iw_phase.Service;
  let stats = Iw_phase.create_stats () in
  Iw_phase.record stats ~variant:"read_lock" ~total_us:(Iw_phase.total_us tm) tm;
  checkf "decode sum" 1000. (Iw_phase.phase_sum_us stats Iw_phase.Decode);
  checkf "service sum" 3000. (Iw_phase.phase_sum_us stats Iw_phase.Service);
  checkf "wal sum" 0. (Iw_phase.phase_sum_us stats Iw_phase.Wal);
  checkf "total sum" 4000. (Iw_phase.total_sum_us stats);
  let total = Iw_phase.total_summary stats in
  Alcotest.(check int) "total count" 1 total.Iw_hist.sm_count;
  (* Zero phases are recorded too, so per-phase counts match the total. *)
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Iw_phase.name p ^ " count")
        1
        (Iw_phase.phase_summary stats p).Iw_hist.sm_count)
    Iw_phase.phases;
  Alcotest.(check (list string)) "variants" [ "read_lock" ] (Iw_phase.variants stats);
  (match Iw_phase.variant_summary stats "read_lock" Iw_phase.Service with
  | Some s -> Alcotest.(check int) "variant service count" 1 s.Iw_hist.sm_count
  | None -> Alcotest.fail "variant summary missing");
  (match Iw_phase.variant_summary stats "nope" Iw_phase.Service with
  | None -> ()
  | Some _ -> Alcotest.fail "phantom variant")

(* Ring: newest [capacity] points survive, oldest first. *)
let test_ring_rotation () =
  let r = Iw_ring.create ~capacity:3 ~window_s:1. () in
  for i = 0 to 4 do
    Iw_ring.push r { Iw_ring.p_t = float_of_int i; p_dur = 1.; p_values = [] }
  done;
  let ts = List.map (fun p -> p.Iw_ring.p_t) (Iw_ring.points r) in
  Alcotest.(check (list (float 0.0))) "kept newest, oldest first" [ 2.; 3.; 4. ] ts;
  Iw_ring.clear r;
  Alcotest.(check int) "cleared" 0 (List.length (Iw_ring.points r))

let test_ring_merge () =
  let pt t dur vs = { Iw_ring.p_t = t; p_dur = dur; p_values = vs } in
  let merged =
    Iw_ring.merge_adjacent ~target:2
      [
        pt 1. 1. [ ("x", 1.); ("y", 10.) ];
        pt 2. 1. [ ("x", 2.) ];
        pt 3. 1. [ ("x", 4.) ];
      ]
  in
  match merged with
  | [ a; b ] ->
    checkf ~eps:1e-9 "a.t" 2. a.Iw_ring.p_t;
    checkf ~eps:1e-9 "a.dur" 2. a.Iw_ring.p_dur;
    checkf ~eps:1e-9 "a.x (duration-weighted)" 1.5 (List.assoc "x" a.Iw_ring.p_values);
    (* y exists in only one constituent: its mean is over contributors. *)
    checkf ~eps:1e-9 "a.y" 10. (List.assoc "y" a.Iw_ring.p_values);
    checkf ~eps:1e-9 "b.t" 3. b.Iw_ring.p_t;
    checkf ~eps:1e-9 "b.dur" 1. b.Iw_ring.p_dur;
    checkf ~eps:1e-9 "b.x" 4. (List.assoc "x" b.Iw_ring.p_values)
  | l -> Alcotest.failf "expected 2 merged points, got %d" (List.length l)

(* The instrumented lock: while one thread holds the mutex and another is
   blocked in with_lock, the queue-depth and inflight gauges see it; after
   release the contention callback has fired (threshold 0) and the wait
   histogram carries the labeled sample. *)
let test_locked_gauges () =
  let reg = Iw_metrics.create ~enabled:true () in
  let m = Mutex.create () in
  let t = Iw_locked.create ~metrics:reg ~prefix:"iw_test_lock" ~contention_us:0. m in
  let fired = ref None in
  Iw_locked.set_on_contention t (fun ~wait_us ~variant ~segment ->
      fired := Some (wait_us, variant, segment));
  Mutex.lock (Iw_locked.mutex t);
  let entered = ref false in
  let th =
    Thread.create
      (fun () ->
        Iw_locked.with_lock t ~variant:"v" ~segment:"s" (fun () -> entered := true))
      ()
  in
  let rec wait_queued n =
    if Iw_locked.queue_depth t < 1 then
      if n = 0 then Alcotest.fail "waiter never queued"
      else (
        Thread.delay 0.005;
        wait_queued (n - 1))
  in
  wait_queued 1000;
  Alcotest.(check int) "queue depth" 1 (Iw_locked.queue_depth t);
  Alcotest.(check int) "inflight" 1 (Iw_locked.inflight t);
  Alcotest.(check bool) "not yet entered" false !entered;
  Mutex.unlock (Iw_locked.mutex t);
  Thread.join th;
  Alcotest.(check bool) "entered after unlock" true !entered;
  Alcotest.(check int) "queue drained" 0 (Iw_locked.queue_depth t);
  Alcotest.(check int) "inflight drained" 0 (Iw_locked.inflight t);
  (match !fired with
  | Some (wait_us, variant, segment) ->
    Alcotest.(check bool) "waited" true (wait_us > 0.);
    Alcotest.(check string) "contended variant" "v" variant;
    Alcotest.(check string) "contended segment" "s" segment
  | None -> Alcotest.fail "contention callback never fired");
  let snap = Iw_metrics.snapshot reg in
  let has name =
    match Iw_metrics.find snap name with
    | Some (Iw_metrics.V_hist h) -> h.Iw_metrics.hv_count >= 1
    | _ -> false
  in
  Alcotest.(check bool) "aggregate wait hist" true (has "iw_test_lock_wait_us");
  Alcotest.(check bool) "aggregate hold hist" true (has "iw_test_lock_hold_us");
  Alcotest.(check bool) "labeled wait hist" true
    (has (Iw_metrics.with_label "iw_test_lock_wait_us" "variant" "v"));
  Alcotest.(check bool) "labeled hold hist" true
    (has (Iw_metrics.with_label "iw_test_lock_hold_us" "segment" "s"))

(* Slow-log entries carry the phase shares the admin view explains
   outliers with. *)
let test_slowlog_phases () =
  let sl = Iw_slowlog.create ~k:4 () in
  Iw_slowlog.observe sl ~variant:"write_release" ~segment:"a/b" ~session:1 ~seq:2
    ~trace_id:3 ~span_id:4 ~wait_us:900. ~service_us:80. ~wal_us:15. 1000.;
  Iw_slowlog.observe sl ~variant:"read_lock" ~segment:"" ~session:1 ~seq:3 ~trace_id:0
    ~span_id:0 10.;
  match Iw_slowlog.snapshot sl with
  | e :: rest ->
    Alcotest.(check string) "slowest first" "write_release" e.Iw_slowlog.e_variant;
    checkf ~eps:1e-9 "wait_us" 900. e.Iw_slowlog.e_wait_us;
    checkf ~eps:1e-9 "service_us" 80. e.Iw_slowlog.e_service_us;
    checkf ~eps:1e-9 "wal_us" 15. e.Iw_slowlog.e_wal_us;
    (match rest with
    | [ e2 ] -> checkf ~eps:1e-9 "defaulted wait_us" 0. e2.Iw_slowlog.e_wait_us
    | _ -> Alcotest.fail "expected exactly two entries")
  | [] -> Alcotest.fail "empty slowlog"

(* Drive a client workload and check the server's phase decomposition:
   every phase histogram has one sample per request, the exclusive sums
   never exceed the measured total, and they explain most of it.  The
   strict "within 10%" acceptance bound holds at saturation where waits
   dominate; at test scale the fixed per-request bookkeeping outside the
   brackets is proportionally larger, so the floor here is loose. *)
let check_phase_stats ?(expect_wal = false) server =
  let stats = I.Server.phase_stats server in
  let total = Iw_phase.total_summary stats in
  Alcotest.(check bool) "requests recorded" true (total.Iw_hist.sm_count > 0);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Iw_phase.name p ^ " count = total count")
        total.Iw_hist.sm_count
        (Iw_phase.phase_summary stats p).Iw_hist.sm_count)
    Iw_phase.phases;
  let phase_sum =
    List.fold_left (fun a p -> a +. Iw_phase.phase_sum_us stats p) 0. Iw_phase.phases
  in
  let total_sum = Iw_phase.total_sum_us stats in
  Alcotest.(check bool) "phases never exceed total" true
    (phase_sum <= total_sum *. 1.001 +. 1.);
  Alcotest.(check bool)
    (Printf.sprintf "phases explain most of the total (%.0f of %.0f us)" phase_sum
       total_sum)
    true
    (phase_sum >= 0.5 *. total_sum);
  if expect_wal then
    Alcotest.(check bool) "wal time observed" true
      (Iw_phase.phase_sum_us stats Iw_phase.Wal > 0.)

let drive client =
  let h = I.open_segment client "phase/seg" in
  I.wl_acquire h;
  let a = I.malloc h (I.Desc.array I.Desc.int 8) in
  I.Client.write_int client a 1;
  I.wl_release h;
  for i = 2 to 6 do
    I.wl_acquire h;
    I.Client.write_int client a i;
    I.wl_release h
  done;
  I.rl_acquire h;
  ignore (I.Client.read_int client a : int);
  I.rl_release h

let tmpdir () =
  let d = Filename.temp_file "iwphase" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let test_e2e_loopback () =
  (* Durable with synchronous fsync so the WAL phase is exercised. *)
  let server =
    I.start_server ~lease_secs:30.0 ~checkpoint_dir:(tmpdir ())
      ~fsync:Iw_store.Always ()
  in
  let client = I.loopback_client server in
  drive client;
  I.Client.disconnect client;
  check_phase_stats ~expect_wal:true server

let free_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt s Unix.SO_REUSEADDR true;
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  Unix.close s;
  port

let test_e2e_tcp () =
  let server = I.start_server ~lease_secs:30.0 () in
  let port = free_port () in
  let stop = ref false in
  let th =
    Thread.create
      (fun () ->
        Iw_transport.tcp_server ~port ~stop (fun conn -> I.Server.serve_conn server conn))
      ()
  in
  let rec connect n =
    match I.tcp_client ~host:"127.0.0.1" ~port () with
    | c -> c
    | exception _ when n > 0 ->
      Thread.delay 0.02;
      connect (n - 1)
  in
  let client = connect 250 in
  drive client;
  I.Client.disconnect client;
  stop := true;
  Thread.join th;
  check_phase_stats server

(* The server's history ring, fetched the way iw-admin does — through the
   Metrics_history request (whose handler also rolls the window). *)
let test_ring_e2e () =
  Unix.putenv "IW_RING_WINDOW_S" "0.05";
  Unix.putenv "IW_RING_N" "8";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "IW_RING_WINDOW_S" "";
      Unix.putenv "IW_RING_N" "")
    (fun () ->
      let server = I.start_server ~lease_secs:30.0 () in
      Alcotest.(check int) "ring capacity from env" 8
        (Iw_ring.capacity (I.Server.ring server));
      let client = I.loopback_client server in
      drive client;
      Thread.delay 0.06;
      drive client;
      Thread.delay 0.06;
      let points =
        match I.Server.handle server (Iw_proto.Metrics_history { session = 0; limit = 0 }) with
        | Iw_proto.R_metrics_history points -> points
        | r -> Alcotest.failf "unexpected response %s" (match r with
            | Iw_proto.R_error e -> e
            | _ -> "(not an error)")
      in
      I.Client.disconnect client;
      Alcotest.(check bool) "ring has points" true (List.length points >= 1);
      let series_present name =
        List.exists (fun p -> List.mem_assoc name p.Iw_ring.p_values) points
      in
      Alcotest.(check bool) "request rate series" true
        (series_present "iw_server_requests_total:rate");
      Alcotest.(check bool) "lock-wait p99 series" true
        (series_present
           (Iw_metrics.with_label "iw_server_phase_us" "phase" "lock_wait" ^ ":p99"));
      (* limit = newest N *)
      match
        I.Server.handle server (Iw_proto.Metrics_history { session = 0; limit = 1 })
      with
      | Iw_proto.R_metrics_history [ p ] ->
        let all_last = List.nth points (List.length points - 1) in
        Alcotest.(check bool) "limit keeps newest" true
          (p.Iw_ring.p_t >= all_last.Iw_ring.p_t)
      | Iw_proto.R_metrics_history l ->
        Alcotest.failf "limit 1 returned %d points" (List.length l)
      | _ -> Alcotest.fail "unexpected response")

let suite =
  ( "phase",
    [
      Alcotest.test_case "timer attribution" `Quick test_timer_attribution;
      Alcotest.test_case "forgiving leave" `Quick test_forgiving_leave;
      Alcotest.test_case "stats accumulation" `Quick test_stats_accumulation;
      Alcotest.test_case "ring rotation" `Quick test_ring_rotation;
      Alcotest.test_case "ring merge" `Quick test_ring_merge;
      Alcotest.test_case "locked gauges" `Quick test_locked_gauges;
      Alcotest.test_case "slowlog phases" `Quick test_slowlog_phases;
      Alcotest.test_case "e2e loopback" `Quick test_e2e_loopback;
      Alcotest.test_case "e2e tcp" `Quick test_e2e_tcp;
      Alcotest.test_case "ring e2e" `Quick test_ring_e2e;
    ] )
