(* Server behaviour at the protocol level, exercised through [handle]
   directly: lock discipline, versioning, subblock granularity, descriptor
   registration, metadata, the diff cache, and checkpoint files. *)

open Iw_proto

let int_desc = Iw_types.Prim Iw_arch.Int

let int_array n = Iw_types.Array (Prim Iw_arch.Int, n)

(* Build a wire payload of [n] consecutive ints starting at [v0]. *)
let int_payload ?(v0 = 0) n =
  let buf = Iw_wire.Buf.create () in
  for i = 0 to n - 1 do
    Iw_wire.Buf.u32 buf (v0 + i)
  done;
  Iw_wire.Buf.contents buf

let hello t =
  match Iw_server.handle t (Hello { arch = "x86_32" }) with
  | R_hello { session } -> session
  | _ -> Alcotest.fail "hello failed"

let open_seg t session name =
  match Iw_server.handle t (Open_segment { session; name; create = true }) with
  | R_segment { version } -> version
  | r -> Alcotest.failf "open failed: %s" (match r with R_error e -> e | _ -> "?")

let register t session name desc =
  match Iw_server.handle t (Register_desc { session; name; desc }) with
  | R_serial s -> s
  | _ -> Alcotest.fail "register failed"

let write_diff t session name changes =
  (match Iw_server.handle t (Write_lock { session; name; version = 0 }) with
  | R_granted _ -> ()
  | _ -> Alcotest.fail "write lock refused");
  match
    Iw_server.handle t
      (Write_release
         {
           session;
           name;
           diff = { Iw_wire.Diff.from_version = 0; to_version = 0; new_descs = []; changes };
         })
  with
  | R_version v -> v
  | _ -> Alcotest.fail "release failed"

let create_block ~serial ?(name : string option) ~desc_serial payload =
  Iw_wire.Diff.Create { serial; name; desc_serial; payload }

let test_open_and_versions () =
  let t = Iw_server.create () in
  let s = hello t in
  Alcotest.(check int) "fresh segment at version 0" 0 (open_seg t s "seg");
  Alcotest.(check int) "reopen same" 0 (open_seg t s "seg");
  (match Iw_server.handle t (Open_segment { session = s; name = "nope"; create = false }) with
  | R_error _ -> ()
  | _ -> Alcotest.fail "opening a missing segment without create must fail");
  Alcotest.(check (list string)) "names" [ "seg" ] (Iw_server.segment_names t)

let test_create_and_fetch () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 8) in
  let v = write_diff t s "seg" [ create_block ~serial:1 ?name:(Some "xs") ~desc_serial:d (int_payload 8) ] in
  Alcotest.(check int) "version bumped" 1 v;
  (* A second session fetches everything. *)
  let s2 = hello t in
  match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 0; coherence = Full }) with
  | R_update diff ->
    Alcotest.(check int) "to current" 1 diff.Iw_wire.Diff.to_version;
    Alcotest.(check int) "one desc" 1 (List.length diff.new_descs);
    (match diff.changes with
    | [ Iw_wire.Diff.Create { serial = 1; name = Some "xs"; payload; _ } ] ->
      Alcotest.(check int) "payload size" 32 (String.length payload)
    | _ -> Alcotest.fail "expected one create")
  | _ -> Alcotest.fail "expected update"

let test_write_lock_protocol () =
  let t = Iw_server.create () in
  let s1 = hello t and s2 = hello t in
  ignore (open_seg t s1 "seg" : int);
  (match Iw_server.handle t (Write_lock { session = s1; name = "seg"; version = 0 }) with
  | R_granted None -> ()
  | _ -> Alcotest.fail "expected grant");
  (match Iw_server.handle t (Write_lock { session = s2; name = "seg"; version = 0 }) with
  | R_busy -> ()
  | _ -> Alcotest.fail "expected busy");
  (* Reentrant for the same session. *)
  (match Iw_server.handle t (Write_lock { session = s1; name = "seg"; version = 0 }) with
  | R_granted None -> ()
  | _ -> Alcotest.fail "expected reentrant grant");
  (* Release without lock is an error for others. *)
  (match
     Iw_server.handle t
       (Write_release
          {
            session = s2;
            name = "seg";
            diff = { Iw_wire.Diff.from_version = 0; to_version = 0; new_descs = []; changes = [] };
          })
   with
  | R_error _ -> ()
  | _ -> Alcotest.fail "expected error");
  match
    Iw_server.handle t
      (Write_release
         {
           session = s1;
           name = "seg";
           diff = { Iw_wire.Diff.from_version = 0; to_version = 0; new_descs = []; changes = [] };
         })
  with
  | R_version 0 -> () (* empty diff does not bump *)
  | _ -> Alcotest.fail "expected version 0"

let test_update_and_subblocks () =
  let t = Iw_server.create ~diff_cache_capacity:0 () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 64) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 64) ] : int);
  (* Touch exactly one unit (unit 20, subblock 1). *)
  let one = Iw_wire.Buf.create () in
  Iw_wire.Buf.u32 one 12345;
  ignore
    (write_diff t s "seg"
       [
         Iw_wire.Diff.Update
           {
             serial = 1;
             runs = [ { Iw_wire.Diff.start_pu = 20; len_pu = 1; payload = Iw_wire.Buf.contents one } ];
           };
       ]
      : int);
  (* A client at version 1 gets the whole containing subblock (units 16-31),
     not just the unit, and not the whole block. *)
  let s2 = hello t in
  match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 1; coherence = Full }) with
  | R_update diff -> begin
    match diff.Iw_wire.Diff.changes with
    | [ Iw_wire.Diff.Update { serial = 1; runs = [ run ] } ] ->
      Alcotest.(check int) "subblock start" 16 run.Iw_wire.Diff.start_pu;
      Alcotest.(check int) "subblock length" Iw_server.subblock_units run.Iw_wire.Diff.len_pu;
      (* The updated value is inside the run payload at position 20-16. *)
      let r = Iw_wire.Reader.of_string run.Iw_wire.Diff.payload in
      Iw_wire.Reader.skip r (4 * 4);
      Alcotest.(check int) "value" 12345 (Iw_wire.Reader.u32 r)
    | _ -> Alcotest.fail "expected one update with one run"
  end
  | _ -> Alcotest.fail "expected update"

let test_free_tombstones () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 4) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 4) ] : int);
  ignore (write_diff t s "seg" [ create_block ~serial:2 ~desc_serial:d (int_payload 4) ] : int);
  ignore (write_diff t s "seg" [ Iw_wire.Diff.Free { serial = 1 } ] : int);
  (* Client at version 2 must see the free. *)
  let s2 = hello t in
  (match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 2; coherence = Full }) with
  | R_update diff ->
    Alcotest.(check bool) "free present" true
      (List.exists
         (function Iw_wire.Diff.Free { serial = 1 } -> true | _ -> false)
         diff.Iw_wire.Diff.changes)
  | _ -> Alcotest.fail "expected update");
  (* Client at version 0 simply never hears about block 1. *)
  let s3 = hello t in
  match Iw_server.handle t (Read_lock { session = s3; name = "seg"; version = 0; coherence = Full }) with
  | R_update diff ->
    let creates =
      List.filter (function Iw_wire.Diff.Create _ -> true | _ -> false) diff.Iw_wire.Diff.changes
    in
    Alcotest.(check int) "only live blocks created" 1 (List.length creates)
  | _ -> Alcotest.fail "expected update"

let test_meta () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" int_desc in
  ignore
    (write_diff t s "seg"
       [
         create_block ~serial:1 ?name:(Some "a") ~desc_serial:d (int_payload 1);
         create_block ~serial:2 ~desc_serial:d (int_payload 1);
       ]
      : int);
  match Iw_server.handle t (Segment_meta { session = s; name = "seg" }) with
  | R_meta { version; descs; blocks } ->
    Alcotest.(check int) "version" 1 version;
    Alcotest.(check int) "descs" 1 (List.length descs);
    Alcotest.(check int) "blocks" 2 (List.length blocks);
    Alcotest.(check bool) "named" true
      (List.exists (fun mb -> mb.mb_name = Some "a") blocks)
  | _ -> Alcotest.fail "expected meta"

let test_register_idempotent () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d1 = register t s "seg" (int_array 4) in
  let d2 = register t s "seg" (int_array 4) in
  Alcotest.(check int) "same desc same serial" d1 d2;
  let d3 = register t s "seg" (int_array 5) in
  Alcotest.(check bool) "different desc different serial" true (d1 <> d3)

let test_delta_decision () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 4) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 4) ] : int);
  ignore (write_diff t s "seg" [ Iw_wire.Diff.Free { serial = 1 } ] : int);
  let s2 = hello t in
  (match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 1; coherence = Delta 5 }) with
  | R_up_to_date -> ()
  | _ -> Alcotest.fail "1 version behind within delta 5");
  (match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 1; coherence = Delta 0 }) with
  | R_update _ -> ()
  | _ -> Alcotest.fail "delta 0 forces update");
  (* Version 0 always updates regardless of model. *)
  match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 0; coherence = Delta 100 }) with
  | R_update _ -> ()
  | _ -> Alcotest.fail "nothing cached forces update"

let test_diff_cache_stats () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 256) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 256) ] : int);
  let one = Iw_wire.Buf.create () in
  Iw_wire.Buf.u32 one 7;
  ignore
    (write_diff t s "seg"
       [
         Iw_wire.Diff.Update
           { serial = 1; runs = [ { Iw_wire.Diff.start_pu = 0; len_pu = 1; payload = Iw_wire.Buf.contents one } ] };
       ]
      : int);
  let readers = List.init 3 (fun _ -> hello t) in
  List.iter
    (fun r ->
      match Iw_server.handle t (Read_lock { session = r; name = "seg"; version = 1; coherence = Full }) with
      | R_update _ -> ()
      | _ -> Alcotest.fail "expected update")
    readers;
  let st = Iw_server.stats t in
  Alcotest.(check bool) "cache hits recorded" true (st.Iw_server.diff_cache_hits >= 3)

let test_unknown_segment_errors () =
  let t = Iw_server.create () in
  let s = hello t in
  List.iter
    (fun req ->
      match Iw_server.handle t req with
      | R_error _ -> ()
      | _ -> Alcotest.fail "expected error for unknown segment")
    [
      Read_lock { session = s; name = "ghost"; version = 0; coherence = Full };
      Write_lock { session = s; name = "ghost"; version = 0 };
      Get_version { session = s; name = "ghost" };
      Stat { session = s; name = "ghost" };
      Segment_meta { session = s; name = "ghost" };
    ]

let test_bad_diff_rejected () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 4) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 4) ] : int);
  (* Unknown descriptor. *)
  (match Iw_server.handle t (Write_lock { session = s; name = "seg"; version = 1 }) with
  | R_granted _ -> ()
  | _ -> Alcotest.fail "grant");
  (match
     Iw_server.handle t
       (Write_release
          {
            session = s;
            name = "seg";
            diff =
              {
                Iw_wire.Diff.from_version = 1;
                to_version = 2;
                new_descs = [];
                changes = [ create_block ~serial:9 ~desc_serial:404 (int_payload 4) ];
              };
          })
   with
  | R_error _ -> ()
  | _ -> Alcotest.fail "unregistered descriptor must be rejected");
  (* Run beyond block end. *)
  (match Iw_server.handle t (Write_lock { session = s; name = "seg"; version = 1 }) with
  | R_granted _ | R_busy -> ()
  | _ -> Alcotest.fail "grant2");
  match
    Iw_server.handle t
      (Write_release
         {
           session = s;
           name = "seg";
           diff =
             {
               Iw_wire.Diff.from_version = 1;
               to_version = 2;
               new_descs = [];
               changes =
                 [
                   Iw_wire.Diff.Update
                     {
                       serial = 1;
                       runs = [ { Iw_wire.Diff.start_pu = 3; len_pu = 5; payload = int_payload 5 } ];
                     };
                 ];
             };
         })
  with
  | R_error _ -> ()
  | _ -> Alcotest.fail "run beyond end must be rejected"

let test_stat () =
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 40) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 40) ] : int);
  match Iw_server.handle t (Stat { session = s; name = "seg" }) with
  | R_stat st ->
    Alcotest.(check int) "version" 1 st.st_version;
    Alcotest.(check int) "blocks" 1 st.st_blocks;
    Alcotest.(check int) "units" 40 st.st_total_units
  | _ -> Alcotest.fail "expected stat"

let test_checkpoint_files () =
  let dir = Filename.temp_file "iwsrv" "" in
  Sys.remove dir;
  let t = Iw_server.create ~checkpoint_dir:dir () in
  let s = hello t in
  ignore (open_seg t s "a/b c" : int);
  let d = register t s "a/b c" (int_array 4) in
  ignore (write_diff t s "a/b c" [ create_block ~serial:1 ~desc_serial:d (int_payload 4 ~v0:9) ] : int);
  (match Iw_server.handle t (Checkpoint { session = s }) with
  | R_ok -> ()
  | _ -> Alcotest.fail "checkpoint failed");
  (* The directory holds the checkpoint plus the segment's write-ahead log
     (truncated by the checkpoint); exactly one of each, names escaped. *)
  let files = Sys.readdir dir in
  let ckpts =
    List.filter
      (fun f -> Filename.check_suffix f Iw_store.checkpoint_suffix)
      (Array.to_list files)
  in
  Alcotest.(check int) "one checkpoint file" 1 (List.length ckpts);
  Alcotest.(check bool) "escaped name" true
    (List.for_all (fun f -> String.length f > 0 && not (String.contains f '/')) ckpts);
  (* Reload and verify content. *)
  let t2 = Iw_server.create ~checkpoint_dir:dir () in
  let s2 = hello t2 in
  match Iw_server.handle t2 (Read_lock { session = s2; name = "a/b c"; version = 0; coherence = Full }) with
  | R_update diff -> begin
    match diff.Iw_wire.Diff.changes with
    | [ Iw_wire.Diff.Create { payload; _ } ] ->
      let r = Iw_wire.Reader.of_string payload in
      Alcotest.(check int) "first value" 9 (Iw_wire.Reader.u32 r)
    | _ -> Alcotest.fail "expected one create after reload"
  end
  | _ -> Alcotest.fail "expected update after reload"

let test_merged_span_updates () =
  (* Three single-unit writes to different units; a client three versions
     behind must get exactly those units (diff-cache span merge), not whole
     subblocks. *)
  let t = Iw_server.create () in
  let s = hello t in
  ignore (open_seg t s "seg" : int);
  let d = register t s "seg" (int_array 256) in
  ignore (write_diff t s "seg" [ create_block ~serial:1 ~desc_serial:d (int_payload 256) ] : int);
  let write_unit u v =
    let b = Iw_wire.Buf.create () in
    Iw_wire.Buf.u32 b v;
    ignore
      (write_diff t s "seg"
         [
           Iw_wire.Diff.Update
             { serial = 1; runs = [ { Iw_wire.Diff.start_pu = u; len_pu = 1; payload = Iw_wire.Buf.contents b } ] };
         ]
        : int)
  in
  write_unit 10 100;
  write_unit 200 200;
  write_unit 10 300;
  let s2 = hello t in
  match Iw_server.handle t (Read_lock { session = s2; name = "seg"; version = 1; coherence = Full }) with
  | R_update diff -> begin
    match diff.Iw_wire.Diff.changes with
    | [ Iw_wire.Diff.Update { runs; _ } ] ->
      let total = List.fold_left (fun acc r -> acc + r.Iw_wire.Diff.len_pu) 0 runs in
      Alcotest.(check int) "exactly the 2 distinct units" 2 total;
      let payload_of u =
        List.find_map
          (fun r ->
            if r.Iw_wire.Diff.start_pu = u then
              Some (Iw_wire.Reader.u32 (Iw_wire.Reader.of_string r.Iw_wire.Diff.payload))
            else None)
          runs
      in
      Alcotest.(check (option int)) "unit 10 has the latest value" (Some 300) (payload_of 10);
      Alcotest.(check (option int)) "unit 200" (Some 200) (payload_of 200)
    | _ -> Alcotest.fail "expected one update"
  end
  | _ -> Alcotest.fail "expected update"

let suite =
  ( "server",
    [
      Alcotest.test_case "open and versions" `Quick test_open_and_versions;
      Alcotest.test_case "create and fetch" `Quick test_create_and_fetch;
      Alcotest.test_case "write lock protocol" `Quick test_write_lock_protocol;
      Alcotest.test_case "subblock granularity" `Quick test_update_and_subblocks;
      Alcotest.test_case "free tombstones" `Quick test_free_tombstones;
      Alcotest.test_case "segment meta" `Quick test_meta;
      Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
      Alcotest.test_case "delta decision" `Quick test_delta_decision;
      Alcotest.test_case "diff cache stats" `Quick test_diff_cache_stats;
      Alcotest.test_case "unknown segment errors" `Quick test_unknown_segment_errors;
      Alcotest.test_case "bad diff rejected" `Quick test_bad_diff_rejected;
      Alcotest.test_case "stat" `Quick test_stat;
      Alcotest.test_case "checkpoint files" `Quick test_checkpoint_files;
      Alcotest.test_case "merged span updates" `Quick test_merged_span_updates;
    ] )
