(* Protocol message codecs: every request/response variant roundtrips, and a
   framed link carries them over a byte transport. *)

open Iw_proto

let roundtrip_request req =
  let buf = Iw_wire.Buf.create () in
  encode_request buf req;
  decode_request (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf))

let roundtrip_response resp =
  let buf = Iw_wire.Buf.create () in
  encode_response buf resp;
  decode_response (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf))

let sample_diff =
  {
    Iw_wire.Diff.from_version = 1;
    to_version = 2;
    new_descs = [ (3, Iw_types.Prim Iw_arch.Double) ];
    changes =
      [
        Iw_wire.Diff.Update
          { serial = 4; runs = [ { Iw_wire.Diff.start_pu = 2; len_pu = 3; payload = "xyz" } ] };
        Iw_wire.Diff.Free { serial = 9 };
      ];
  }

let all_requests =
  [
    Hello { arch = "sparc32" };
    Open_segment { session = 1; name = "a/b"; create = true };
    Open_segment { session = 2; name = "a/b"; create = false };
    Segment_meta { session = 3; name = "s" };
    Read_lock { session = 4; name = "s"; version = 7; coherence = Full };
    Read_lock { session = 4; name = "s"; version = 7; coherence = Delta 3 };
    Read_lock { session = 4; name = "s"; version = 7; coherence = Temporal 2.5 };
    Read_lock { session = 4; name = "s"; version = 7; coherence = Diff_pct 12.5 };
    Read_release { session = 5; name = "s" };
    Write_lock { session = 6; name = "s"; version = 0 };
    Write_release { session = 7; name = "s"; diff = sample_diff };
    Register_desc { session = 8; name = "s"; desc = Iw_types.Ptr "node" };
    Get_version { session = 9; name = "s" };
    Checkpoint { session = 10 };
    Stat { session = 11; name = "s" };
    Segment_stats { session = 12; segment = None };
    Segment_stats { session = 12; segment = Some "host/seg" };
    Flight_recorder { session = 13 };
    Slow_log { session = 14; limit = 10 };
    Slow_log { session = 14; limit = 0 };
    Metrics_history { session = 15; limit = 0 };
    Metrics_history { session = 15; limit = 8 };
  ]

let all_responses =
  [
    R_hello { session = 42 };
    R_segment { version = 17 };
    R_meta
      {
        version = 3;
        descs = [ (1, Iw_types.Prim Iw_arch.Int) ];
        blocks =
          [
            { mb_serial = 1; mb_name = Some "head"; mb_desc_serial = 1 };
            { mb_serial = 2; mb_name = None; mb_desc_serial = 1 };
          ];
      };
    R_up_to_date;
    R_update sample_diff;
    R_granted None;
    R_granted (Some sample_diff);
    R_busy;
    R_version 12;
    R_serial 5;
    R_stat
      {
        st_version = 1;
        st_blocks = 2;
        st_total_units = 3;
        st_diff_cache_hits = 4;
        st_diff_cache_misses = 5;
      };
    R_ok;
    R_error "boom";
    R_segment_stats [];
    R_segment_stats
      [
        {
          Iw_metrics.s_name = "iw_seg_wasted_acquire_total{segment=\"s\"}";
          s_help = "wasted";
          s_value = Iw_metrics.V_counter 5.;
        };
        {
          Iw_metrics.s_name = "iw_seg_version_lag{segment=\"s\"}";
          s_help = "lag";
          s_value =
            Iw_metrics.V_hist
              {
                Iw_metrics.hv_unit = "count";
                hv_bounds = [| 1.; 2.; 4. |];
                hv_counts = [| 1; 0; 2; 0 |];
                hv_count = 3;
                hv_sum = 9.;
              };
        };
      ];
    R_flight "{\"capacity\":256,\"recorded\":0,\"events\":[]}";
    R_slow_log [];
    R_slow_log
      [
        {
          Iw_slowlog.e_t = 1700000000.5;
          e_variant = "write_release";
          e_segment = "a/b";
          e_session = 3;
          e_seq = 9;
          e_trace_id = 0x1234;
          e_span_id = 0x99;
          e_latency_us = 1234.5;
          e_wait_us = 1000.;
          e_service_us = 200.5;
          e_wal_us = 34.;
        };
      ];
    R_metrics_history [];
    R_metrics_history
      [
        { Iw_ring.p_t = 1.5; p_dur = 5.; p_values = [ ("a:rate", 2.5); ("g", 1.) ] };
        { Iw_ring.p_t = 6.5; p_dur = 5.; p_values = [] };
      ];
  ]

let test_request_roundtrips () =
  List.iteri
    (fun i req ->
      if roundtrip_request req <> req then Alcotest.failf "request %d did not roundtrip" i)
    all_requests

let test_response_roundtrips () =
  List.iteri
    (fun i resp ->
      if roundtrip_response resp <> resp then Alcotest.failf "response %d did not roundtrip" i)
    all_responses

let test_malformed_rejected () =
  (try
     ignore (decode_request (Iw_wire.Reader.of_string "\xff") : request);
     Alcotest.fail "bad request tag accepted"
   with Iw_wire.Malformed _ -> ());
  try
    ignore (decode_response (Iw_wire.Reader.of_string "\xff") : response);
    Alcotest.fail "bad response tag accepted"
  with Iw_wire.Malformed _ -> ()

let test_framed_link () =
  (* An echo "server" that decodes the request and answers with a canned
     response per request type, over the loopback transport. *)
  let client_end, server_end = Iw_transport.loopback () in
  let server () =
    let rec loop () =
      match Iw_transport.(server_end.recv ()) with
      | frame ->
        let req = decode_request (Iw_wire.Reader.of_string frame) in
        let resp =
          match req with
          | Hello _ -> R_hello { session = 99 }
          | Get_version _ -> R_version 5
          | _ -> R_ok
        in
        let buf = Iw_wire.Buf.create () in
        encode_response buf resp;
        Iw_transport.(server_end.send (Iw_wire.Buf.contents buf));
        loop ()
      | exception Iw_transport.Closed -> ()
    in
    loop ()
  in
  let t = Thread.create server () in
  let link =
    framed_link
      ~send:client_end.Iw_transport.send
      ~recv:(fun () -> client_end.Iw_transport.recv ())
      ~close:client_end.Iw_transport.close ~description:"test" ()
  in
  (match link.call (Hello { arch = "x86_32" }) with
  | R_hello { session } -> Alcotest.(check int) "hello" 99 session
  | _ -> Alcotest.fail "unexpected");
  (match link.call (Get_version { session = 99; name = "s" }) with
  | R_version v -> Alcotest.(check int) "version" 5 v
  | _ -> Alcotest.fail "unexpected");
  link.close ();
  Thread.join t

(* Trace-context envelope: optional prefix on the request stream.  Bare
   requests (old clients) must keep decoding; enveloped ones must surface
   the context; corrupt or truncated envelopes must be rejected loudly. *)

let sample_ctx = { tc_trace_id = 0x1234_5678_9abc; tc_span_id = 0x42; tc_seq = 7 }

let encode_env ?ctx req =
  let buf = Iw_wire.Buf.create () in
  encode_request_env buf ?ctx req;
  Iw_wire.Buf.contents buf

let test_envelope_roundtrips () =
  List.iteri
    (fun i req ->
      let ctx, req' =
        decode_request_env (Iw_wire.Reader.of_string (encode_env ~ctx:sample_ctx req))
      in
      if ctx <> Some sample_ctx then Alcotest.failf "request %d: context lost" i;
      if req' <> req then Alcotest.failf "request %d: body did not roundtrip" i)
    all_requests

let test_envelope_absent_is_bare () =
  List.iteri
    (fun i req ->
      (* No context -> byte-identical to the pre-envelope encoding, so old
         servers still understand tracing-off clients. *)
      let bare =
        let buf = Iw_wire.Buf.create () in
        encode_request buf req;
        Iw_wire.Buf.contents buf
      in
      if encode_env req <> bare then Alcotest.failf "request %d: envelope added without ctx" i;
      let ctx, req' = decode_request_env (Iw_wire.Reader.of_string bare) in
      if ctx <> None then Alcotest.failf "request %d: phantom context" i;
      if req' <> req then Alcotest.failf "request %d: bare body did not roundtrip" i)
    all_requests

let test_envelope_bad_version_rejected () =
  let s = Bytes.of_string (encode_env ~ctx:sample_ctx (Checkpoint { session = 1 })) in
  Bytes.set s 1 '\x02';
  try
    ignore (decode_request_env (Iw_wire.Reader.of_string (Bytes.to_string s)));
    Alcotest.fail "unknown proto version accepted"
  with Iw_wire.Malformed _ -> ()

let test_envelope_unknown_feature_rejected () =
  let s = Bytes.of_string (encode_env ~ctx:sample_ctx (Checkpoint { session = 1 })) in
  (* Unknown feature bits imply payload bytes of unknown length; the decoder
     cannot skip what it cannot measure. *)
  Bytes.set s 2 (Char.chr (Char.code (Bytes.get s 2) lor 0x80));
  try
    ignore (decode_request_env (Iw_wire.Reader.of_string (Bytes.to_string s)));
    Alcotest.fail "unknown feature bits accepted"
  with Iw_wire.Malformed _ -> ()

let test_envelope_truncated_rejected () =
  let check_prefixes what s =
    for n = 0 to String.length s - 1 do
      match decode_request_env (Iw_wire.Reader.of_string (String.sub s 0 n)) with
      | _ -> Alcotest.failf "%s: %d-byte prefix decoded" what n
      | exception Iw_wire.Malformed _ -> ()
    done
  in
  check_prefixes "enveloped write_release"
    (encode_env ~ctx:sample_ctx (Write_release { session = 7; name = "s"; diff = sample_diff }));
  check_prefixes "enveloped segment_stats"
    (encode_env ~ctx:sample_ctx (Segment_stats { session = 12; segment = Some "host/seg" }))

let test_truncated_responses_rejected () =
  let check_prefixes i s =
    for n = 1 to String.length s - 1 do
      match decode_response (Iw_wire.Reader.of_string (String.sub s 0 n)) with
      | _ -> Alcotest.failf "response %d: %d-byte prefix decoded" i n
      | exception Iw_wire.Malformed _ -> ()
    done
  in
  List.iteri
    (fun i resp ->
      match resp with
      | R_segment_stats (_ :: _) | R_flight _ ->
        let buf = Iw_wire.Buf.create () in
        encode_response buf resp;
        check_prefixes i (Iw_wire.Buf.contents buf)
      | _ -> ())
    all_responses

let test_pp_coherence () =
  let s m = Format.asprintf "%a" pp_coherence m in
  Alcotest.(check string) "full" "full" (s Full);
  Alcotest.(check string) "delta" "delta-3" (s (Delta 3));
  Alcotest.(check bool) "temporal mentions seconds" true
    (String.length (s (Temporal 1.5)) > 0);
  Alcotest.(check bool) "diff mentions pct" true (String.length (s (Diff_pct 10.)) > 0)

let suite =
  ( "proto",
    [
      Alcotest.test_case "request roundtrips" `Quick test_request_roundtrips;
      Alcotest.test_case "response roundtrips" `Quick test_response_roundtrips;
      Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
      Alcotest.test_case "framed link" `Quick test_framed_link;
      Alcotest.test_case "envelope roundtrips" `Quick test_envelope_roundtrips;
      Alcotest.test_case "envelope absent is bare" `Quick test_envelope_absent_is_bare;
      Alcotest.test_case "envelope bad version rejected" `Quick
        test_envelope_bad_version_rejected;
      Alcotest.test_case "envelope unknown feature rejected" `Quick
        test_envelope_unknown_feature_rejected;
      Alcotest.test_case "envelope truncated rejected" `Quick test_envelope_truncated_rejected;
      Alcotest.test_case "truncated responses rejected" `Quick
        test_truncated_responses_rejected;
      Alcotest.test_case "pp coherence" `Quick test_pp_coherence;
    ] )
