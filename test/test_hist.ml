(* Iw_hist: the HDR-style histogram behind the YCSB harness and the
   slow-path percentile reporting.  The load-bearing property is the error
   bound: every reported quantile must be within [Iw_hist.error t] (relative)
   of the exact quantile of the recorded multiset, at any magnitude. *)

module H = Iw_hist

(* Exact q-quantile of a sorted array, with the same rank rule the
   histogram uses: rank = clamp(ceil(q * count), 1, count). *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let check_bounded_error ~what values t =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let err = H.error t in
  List.iter
    (fun q ->
      let exact = exact_quantile sorted q in
      let approx = H.quantile t q in
      let rel =
        if exact = 0. then Float.abs approx else Float.abs (approx -. exact) /. exact
      in
      if rel > err +. 1e-12 then
        Alcotest.failf "%s: q=%.3f exact=%g approx=%g rel=%g > bound %g" what q
          exact approx rel err)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1.0 ]

(* Uniform, exponential-ish, and power-law-ish samples spanning eight
   orders of magnitude: the bound must hold everywhere, not just where the
   buckets happen to be dense. *)
let test_error_bound () =
  Random.init 7;
  let shapes =
    [
      ("uniform", fun () -> 1. +. Random.float 1e6);
      ("exp", fun () -> -.50_000. *. log (1. -. Random.float 0.999999));
      ("powerlaw", fun () -> 2. ** (Random.float 30.));
    ]
  in
  List.iter
    (fun (what, gen) ->
      let t = H.create () in
      let values = Array.init 20_000 (fun _ -> gen ()) in
      Array.iter (H.record t) values;
      Alcotest.(check int) (what ^ " count") 20_000 (H.count t);
      check_bounded_error ~what values t)
    shapes

let test_error_bound_coarse () =
  (* A coarser histogram advertises a looser bound and must still honour it. *)
  Random.init 8;
  let t = H.create ~error:0.1 () in
  Alcotest.(check bool) "bound <= requested" true (H.error t <= 0.1);
  let values = Array.init 5_000 (fun _ -> 1. +. Random.float 1e7) in
  Array.iter (H.record t) values;
  check_bounded_error ~what:"coarse" values t

let test_exact_stats () =
  let t = H.create () in
  List.iter (H.record t) [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ];
  Alcotest.(check int) "count" 8 (H.count t);
  Alcotest.(check (float 1e-9)) "sum" 31. (H.sum t);
  Alcotest.(check (float 1e-9)) "mean" 3.875 (H.mean t);
  Alcotest.(check (float 1e-9)) "min exact" 1. (H.min_value t);
  Alcotest.(check (float 1e-9)) "max exact" 9. (H.max_value t);
  Alcotest.(check (float 1e-9)) "q=1 is exact max" 9. (H.quantile t 1.)

let test_empty () =
  let t = H.create () in
  Alcotest.(check int) "count" 0 (H.count t);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (H.quantile t 0.5));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (H.mean t));
  let s = H.summary t in
  Alcotest.(check bool) "summary nan" true (Float.is_nan s.H.sm_p999)

(* Merging must be exact (bucket counts add) and associative: merging
   per-worker histograms in any grouping yields identical quantiles. *)
let test_merge_associative () =
  Random.init 9;
  let mk lo hi n =
    let t = H.create () in
    let vs = Array.init n (fun _ -> lo +. Random.float (hi -. lo)) in
    Array.iter (H.record t) vs;
    (t, vs)
  in
  let a, va = mk 1. 1e3 4_000
  and b, vb = mk 1e3 1e6 3_000
  and c, vc = mk 1e6 1e9 2_000 in
  (* (a+b)+c *)
  let left = H.copy a in
  H.merge ~into:left b;
  H.merge ~into:left c;
  (* a+(b+c) *)
  let bc = H.copy b in
  H.merge ~into:bc c;
  let right = H.copy a in
  H.merge ~into:right bc;
  Alcotest.(check int) "counts" (H.count left) (H.count right);
  Alcotest.(check (float 1e-9)) "sums" (H.sum left) (H.sum right);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.3f identical" q)
        (H.quantile left q) (H.quantile right q))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ];
  (* And the merged result still honours the error bound. *)
  let all = Array.concat [ va; vb; vc ] in
  check_bounded_error ~what:"merged" all left;
  (* Mismatched resolutions must be rejected, not silently mangled. *)
  let coarse = H.create ~error:0.1 () in
  Alcotest.check_raises "resolution mismatch"
    (Invalid_argument "Iw_hist.merge: histograms have different error bounds")
    (fun () -> H.merge ~into:coarse a)

let test_overflow_and_clamp () =
  let t = H.create () in
  (* Beyond ~2^40 values clamp into the top bucket; count/max stay exact
     and quantiles saturate at the exact max rather than inventing values. *)
  H.record t 5.;
  H.record t (Float.ldexp 1. 50);
  H.record t (Float.ldexp 1. 55);
  Alcotest.(check int) "count" 3 (H.count t);
  Alcotest.(check (float 1e-9)) "max exact" (Float.ldexp 1. 55) (H.max_value t);
  Alcotest.(check (float 1e-9)) "p100 clamped to max" (Float.ldexp 1. 55)
    (H.quantile t 1.);
  Alcotest.(check bool) "p99 <= max" true (H.quantile t 0.99 <= H.max_value t);
  (* Negative, zero, and sub-unit values land in the first bucket. *)
  let u = H.create () in
  List.iter (H.record u) [ -3.; 0.; 0.25; Float.nan ];
  Alcotest.(check int) "underflow counted" 4 (H.count u);
  Alcotest.(check bool) "p50 in first bucket" true (H.quantile u 0.5 <= 1.)

let test_record_n_and_clear () =
  let t = H.create () in
  H.record_n t 100. 5_000;
  Alcotest.(check int) "count" 5_000 (H.count t);
  let q = H.quantile t 0.5 in
  Alcotest.(check bool) "p50 within bound of 100" true
    (Float.abs (q -. 100.) /. 100. <= H.error t);
  H.clear t;
  Alcotest.(check int) "cleared" 0 (H.count t);
  Alcotest.(check bool) "cleared quantile nan" true (Float.is_nan (H.quantile t 0.5))

let test_summary () =
  Random.init 10;
  let t = H.create () in
  for _ = 1 to 10_000 do
    H.record t (1. +. Random.float 1e4)
  done;
  let s = H.summary t in
  Alcotest.(check int) "count" 10_000 s.H.sm_count;
  Alcotest.(check bool) "ladder is monotone" true
    (s.H.sm_p50 <= s.H.sm_p90 && s.H.sm_p90 <= s.H.sm_p99
    && s.H.sm_p99 <= s.H.sm_p999 && s.H.sm_p999 <= s.H.sm_max)

let suite =
  ( "hist",
    [
      Alcotest.test_case "bounded relative error" `Quick test_error_bound;
      Alcotest.test_case "bounded error, coarse resolution" `Quick test_error_bound_coarse;
      Alcotest.test_case "exact count/sum/mean/min/max" `Quick test_exact_stats;
      Alcotest.test_case "empty histogram" `Quick test_empty;
      Alcotest.test_case "merge: exact and associative" `Quick test_merge_associative;
      Alcotest.test_case "overflow clamp and underflow bucket" `Quick
        test_overflow_and_clamp;
      Alcotest.test_case "record_n and clear" `Quick test_record_n_and_clear;
      Alcotest.test_case "summary ladder" `Quick test_summary;
    ] )
