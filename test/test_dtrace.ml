(* Distributed tracing and per-segment coherence observability, end to end:
   a loopback run with tracing on both sides must produce one Perfetto-valid
   document in which the server's dispatch span is stitched (same trace_id,
   parent/child link) under the client's lock span; append mode must merge
   runs instead of clobbering; Temporal-coherence reads must land in the
   staleness histograms served over Segment_stats. *)

module J = Iw_obs_json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_trace path =
  match J.parse (read_file path) with
  | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
  | Ok doc -> (
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents array")

let str_field name ev =
  match J.member name ev with Some (J.Str s) -> Some s | _ -> None

let arg name ev = Option.bind (J.member "args" ev) (str_field name)

let begins_named name evs =
  List.filter (fun ev -> str_field "ph" ev = Some "B" && str_field "name" ev = Some name) evs

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The acceptance scenario: one loopback write transaction under IW_TRACE.
   The client's [wl_acquire] span mints a trace context, the Write_lock
   request carries it over the wire, and the server's dispatch span adopts
   it.  The parsed file must show the parent/child link. *)
let test_trace_stitching () =
  let path = Filename.temp_file "iw_dtrace" ".json" in
  Iw_trace.start ~path ();
  let server = Interweave.start_server () in
  let c = Interweave.loopback_client server in
  let h = Interweave.open_segment c "dt/seg" in
  Interweave.wl_acquire h;
  let a = Interweave.malloc h (Interweave.Desc.array Interweave.Desc.int 4) in
  Iw_client.write_int c a 7;
  Interweave.wl_release h;
  Iw_trace.stop ();
  let evs = parse_trace path in
  Sys.remove path;
  let client_spans = begins_named "client.wl_acquire" evs in
  Alcotest.(check bool) "client span present" true (client_spans <> []);
  let server_spans =
    List.filter
      (fun ev -> arg "variant" ev = Some "write_lock")
      (begins_named "server.handle" evs)
  in
  Alcotest.(check bool) "server write_lock span present" true (server_spans <> []);
  let stitched =
    List.exists
      (fun cs ->
        match (arg "trace_id" cs, arg "span_id" cs) with
        | Some tid, Some sid ->
          List.exists
            (fun ss -> arg "trace_id" ss = Some tid && arg "parent_span_id" ss = Some sid)
            server_spans
        | _ -> false)
      client_spans
  in
  Alcotest.(check bool) "server span is a child of the client span" true stitched;
  (* The server side also carries the request seq for flight correlation. *)
  List.iter
    (fun ss ->
      match arg "seq" ss with
      | Some s -> Alcotest.(check bool) "seq positive" true (int_of_string s > 0)
      | None -> Alcotest.fail "server span without seq")
    server_spans

(* Append mode: a second run (standing in for the second process of a
   client/server pair sharing IW_TRACE) merges with the first instead of
   clobbering it, and the merged file still parses as one document. *)
let test_trace_append_merges () =
  let path = Filename.temp_file "iw_dtrace_append" ".json" in
  Iw_trace.start ~mode:Iw_trace.Append ~path ();
  Iw_trace.instant "first.run";
  Iw_trace.stop ();
  Iw_trace.start ~mode:Iw_trace.Append ~path ();
  Iw_trace.instant "second.run";
  Iw_trace.stop ();
  let evs = parse_trace path in
  Sys.remove path;
  let names = List.filter_map (str_field "name") evs in
  Alcotest.(check bool) "first run survived the second" true (List.mem "first.run" names);
  Alcotest.(check bool) "second run appended" true (List.mem "second.run" names)

let test_unique_path () =
  let suffixed = Iw_trace.unique_path "trace.json" in
  Alcotest.(check bool) "pid spliced before extension" true
    (contains ~needle:(Printf.sprintf ".pid%d.json" (Unix.getpid ())) suffixed)

(* Segment_stats over the wire: Temporal-coherence reads on a stale copy and
   re-acquires of a current one must show up as nonzero staleness and
   wasted-acquire series for that segment, rendered per segment by
   [iw-admin segstats --prom]. *)
let test_segstats_e2e () =
  let server = Interweave.start_server () in
  let writer = Interweave.loopback_client server in
  let reader = Interweave.loopback_client server in
  let hw = Interweave.open_segment writer "dt/coh" in
  Interweave.wl_acquire hw;
  let a = Interweave.malloc hw (Interweave.Desc.array Interweave.Desc.int 4) in
  Iw_client.write_int writer a 1;
  Interweave.wl_release hw;
  let hr = Interweave.open_segment ~create:false reader "dt/coh" in
  Interweave.rl_acquire hr;
  Interweave.rl_release hr;
  (* Age the copy behind the reader's back... *)
  for i = 2 to 3 do
    Interweave.wl_acquire hw;
    Iw_client.write_int writer a i;
    Interweave.wl_release hw
  done;
  (* ...then refresh under a zero-tolerance Temporal bound (stale: realized
     staleness observed server-side) and re-acquire (current: wasted). *)
  Interweave.set_coherence hr (Interweave.Proto.Temporal 0.);
  Interweave.rl_acquire hr;
  Interweave.rl_release hr;
  Interweave.rl_acquire hr;
  Interweave.rl_release hr;
  let link = Iw_server.direct_link server in
  let session =
    match link.Iw_proto.call (Iw_proto.Hello { arch = "x86_32" }) with
    | Iw_proto.R_hello { session } -> session
    | _ -> Alcotest.fail "handshake failed"
  in
  let snap =
    match link.Iw_proto.call (Iw_proto.Segment_stats { session; segment = Some "dt/coh" }) with
    | Iw_proto.R_segment_stats snap -> snap
    | _ -> Alcotest.fail "Segment_stats failed"
  in
  Alcotest.(check bool) "only this segment's series" true
    (snap <> []
    && List.for_all (fun s -> contains ~needle:"segment=\"dt/coh\"" s.Iw_metrics.s_name) snap);
  let hist name =
    match Iw_metrics.find snap (Iw_metrics.with_label name "segment" "dt/coh") with
    | Some (Iw_metrics.V_hist hv) -> hv
    | _ -> Alcotest.failf "no %s series" name
  in
  let lag = hist "iw_seg_version_lag" in
  Alcotest.(check bool) "version lag observed" true (lag.Iw_metrics.hv_count > 0);
  Alcotest.(check bool) "nonzero lag recorded" true (lag.Iw_metrics.hv_sum > 0.);
  let stale = hist "iw_seg_staleness_us" in
  Alcotest.(check bool) "staleness observed" true (stale.Iw_metrics.hv_count > 0);
  Alcotest.(check bool) "staleness buckets nonzero" true
    (Array.exists (fun n -> n > 0) stale.Iw_metrics.hv_counts);
  (match Iw_metrics.find snap (Iw_metrics.with_label "iw_seg_wasted_acquire_total" "segment" "dt/coh") with
  | Some (Iw_metrics.V_counter v) -> Alcotest.(check bool) "wasted acquire counted" true (v >= 1.)
  | _ -> Alcotest.fail "no wasted-acquire series");
  (* The Prometheus rendering — what segstats --prom prints — carries the
     staleness buckets for the segment. *)
  let prom = Iw_metrics.render_prometheus snap in
  Alcotest.(check bool) "prom has staleness buckets" true
    (contains ~needle:"iw_seg_staleness_us_bucket{segment=\"dt/coh\"" prom);
  (* An unfiltered query returns per-segment series only. *)
  match link.Iw_proto.call (Iw_proto.Segment_stats { session; segment = None }) with
  | Iw_proto.R_segment_stats all ->
    Alcotest.(check bool) "unfiltered has the segment's series" true
      (List.exists (fun s -> contains ~needle:"segment=\"dt/coh\"" s.Iw_metrics.s_name) all);
    Alcotest.(check bool) "unfiltered is label-scoped" true
      (List.for_all (fun s -> contains ~needle:"segment=\"" s.Iw_metrics.s_name) all)
  | _ -> Alcotest.fail "unfiltered Segment_stats failed"

let suite =
  ( "dtrace",
    [
      Alcotest.test_case "client/server trace stitching" `Quick test_trace_stitching;
      Alcotest.test_case "append mode merges runs" `Quick test_trace_append_merges;
      Alcotest.test_case "unique path suffix" `Quick test_unique_path;
      Alcotest.test_case "segstats end to end" `Quick test_segstats_e2e;
    ] )
