(* On-line visualization and steering (paper, Section 4.5).

   The Astroflow experience: a simulator publishes frames into a segment;
   a visualization client renders them, controlling its update rate simply
   by setting a temporal coherence bound — no explicit network code in
   either program.

   Run with: dune exec examples/astroflow.exe *)

open Interweave

let render frame w h =
  let shades = " .:-=+*#%@" in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = frame.((y * w) + x) in
      let i = min 9 (int_of_float (v *. 2.)) in
      print_char shades.[max 0 i]
    done;
    print_newline ()
  done

let () =
  let server = start_server () in

  (* Simulation engine (the Fortran side in the paper). *)
  let simc = direct_client ~arch:Arch.alpha64 server in
  let sim = Iw_sim.create simc ~segment:"host/astroflow" ~width:48 ~height:16 in

  (* Visualization front end (the Java-on-a-Pentium side). *)
  let vizc = direct_client ~arch:Arch.x86_32 server in
  let viz = Iw_sim.attach vizc ~segment:"host/astroflow" in
  (* The front end controls its frequency of updates with a temporal bound;
     0 means "always fetch the newest frame". *)
  Iw_sim.set_viewer_interval viz 0.;

  for frame = 1 to 24 do
    Iw_sim.step sim;
    if frame mod 8 = 0 then begin
      Printf.printf "--- viewer frame at step %d ---\n" (Iw_sim.steps_published viz);
      render (Iw_sim.read_frame viz) (Iw_sim.width viz) (Iw_sim.height viz)
    end
  done;

  (* Steering (the paper's Sec. 4.5 "visualization and steering"): the front
     end cranks the source up through the shared control segment. *)
  Iw_sim.set_source_strength viz 40.;
  for _ = 1 to 8 do
    Iw_sim.step sim
  done;
  Printf.printf "--- after the viewer boosts the source to 40 ---\n";
  render (Iw_sim.read_frame viz) (Iw_sim.width viz) (Iw_sim.height viz);

  let sim_sum = Iw_sim.checksum sim and viz_sum = Iw_sim.checksum viz in
  Printf.printf "checksums: simulator %.3f, viewer %.3f (%s)\n" sim_sum viz_sum
    (if abs_float (sim_sum -. viz_sum) < 1e-6 then "identical across architectures"
     else "DIVERGED");

  let st = Client.stats vizc in
  Printf.printf "viewer received %d payload bytes over %d diffs\n" st.Client.bytes_received
    st.Client.diffs_received
