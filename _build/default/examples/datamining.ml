(* Incremental interactive datamining (paper, Section 4.4).

   A database server builds a lattice of frequent item sequences from a
   growing transaction database and shares it through the segment
   "host/mining-demo".  A mining client queries the lattice; because results
   are statistical, it relaxes coherence (Delta 3) and skips most updates.

   Run with: dune exec examples/datamining.exe *)

open Interweave
module Gen = Iw_seqmine.Gen
module Lattice = Iw_seqmine.Lattice

let () =
  let server = start_server () in

  (* Database-server side: an InterWeave client that owns the summary. *)
  let dbc = direct_client ~arch:Arch.x86_32 server in
  let params = Gen.scaled 0.02 in
  let db = Gen.generate params in
  Printf.printf "database: %d customers, %d items, %.1f MB\n" params.Gen.customers
    params.Gen.items
    (float_of_int (Gen.size_bytes db) /. 1024. /. 1024.);
  let lattice = Lattice.create dbc ~segment:"host/mining-demo" ~min_support:40 in

  (* Initial build from the first half of the database. *)
  let half = params.Gen.customers / 2 in
  Lattice.update lattice db ~from_customer:0 ~to_customer:half;
  Printf.printf "initial summary from %d customers: %d sequence nodes\n" half
    (Lattice.node_count lattice);

  (* Mining-client side: different architecture, relaxed coherence. *)
  let mc = direct_client ~arch:Arch.alpha64 server in
  let miner = Lattice.attach mc ~segment:"host/mining-demo" in
  set_coherence (Lattice.segment miner) (Proto.Delta 3);

  let query label =
    let seg = Lattice.segment miner in
    rl_acquire seg;
    let top = Lattice.top miner 5 in
    Printf.printf "%s: top sequences (version %d):\n" label (Client.segment_version seg);
    List.iter
      (fun (seq, support) ->
        Printf.printf "   [%s]  support %d\n"
          (String.concat " -> " (List.map string_of_int seq))
          support)
      top;
    rl_release seg
  in
  query "first mining query";

  (* The database keeps growing: 1% increments, mining queries in between. *)
  let one_pct = params.Gen.customers / 100 in
  for inc = 0 to 9 do
    let from = half + (inc * one_pct) in
    Lattice.update lattice db ~from_customer:from ~to_customer:(from + one_pct);
    if (inc + 1) mod 5 = 0 then
      query (Printf.sprintf "after %d%% more data" (inc + 1))
  done;

  let st = Client.stats mc in
  Printf.printf
    "mining client: %d diffs applied, %d updates skipped by Delta-3 coherence, %d payload bytes\n"
    st.Client.diffs_received st.Client.updates_skipped st.Client.bytes_received
