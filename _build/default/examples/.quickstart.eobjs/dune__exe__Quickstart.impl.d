examples/quickstart.ml: Arch Client Interweave List List_types Mem Node Option Printf
