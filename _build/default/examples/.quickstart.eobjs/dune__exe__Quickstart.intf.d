examples/quickstart.mli:
