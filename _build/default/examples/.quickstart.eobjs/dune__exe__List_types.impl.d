examples/list_types.ml: Array Iw_arch Iw_client Iw_types
