(* A shared calendar: the "mix"-style CSCW workload the paper's Figure 4
   motivates — records full of small strings, integers, and pointers, updated
   a few fields at a time by different users on different machines.

   Each user owns a segment of appointments; a shared directory segment
   points at every user's schedule, so browsing follows cross-segment
   pointers.  Run with: dune exec examples/calendar.exe *)

open Interweave

let appt_desc =
  Desc.structure
    [
      Desc.field "day" Desc.int;
      Desc.field "hour" Desc.int;
      Desc.field "title" (Desc.string 48);
      Desc.field "location" (Desc.string 24);
      Desc.field "next" (Desc.ptr "appt");
    ]

let dir_entry_desc =
  Desc.structure
    [
      Desc.field "user" (Desc.string 16);
      Desc.field "schedule" Desc.opaque_ptr;  (* cross-segment pointer *)
      Desc.field "next" (Desc.ptr "dir_entry");
    ]

let f c desc a name = deref c desc a [ F name ]

(* Add an appointment to a user's own segment and register the user in the
   shared directory if not yet present. *)
let add_appointment c ~user ~day ~hour ~title ~location =
  let seg = open_segment c ("calendar/" ^ user) in
  wl_acquire seg;
  let head =
    match Client.find_named_block seg "head" with
    | Some b -> b.Mem.b_addr
    | None -> malloc ~name:"head" seg appt_desc
  in
  let a = malloc seg appt_desc in
  Client.write_int c (f c appt_desc a "day") day;
  Client.write_int c (f c appt_desc a "hour") hour;
  Client.write_string c ~capacity:48 (f c appt_desc a "title") title;
  Client.write_string c ~capacity:24 (f c appt_desc a "location") location;
  Client.write_ptr c (f c appt_desc a "next") (Client.read_ptr c (f c appt_desc head "next"));
  Client.write_ptr c (f c appt_desc head "next") a;
  wl_release seg;
  let dir = open_segment c "calendar/directory" in
  wl_acquire dir;
  let dhead =
    match Client.find_named_block dir "head" with
    | Some b -> b.Mem.b_addr
    | None -> malloc ~name:"head" dir dir_entry_desc
  in
  let rec registered e =
    e <> 0
    && (Client.read_string c ~capacity:16 (f c dir_entry_desc e "user") = user
        || registered (Client.read_ptr c (f c dir_entry_desc e "next")))
  in
  if not (registered (Client.read_ptr c (f c dir_entry_desc dhead "next"))) then begin
    let e = malloc dir dir_entry_desc in
    Client.write_string c ~capacity:16 (f c dir_entry_desc e "user") user;
    Client.write_ptr c (f c dir_entry_desc e "schedule") head;
    Client.write_ptr c (f c dir_entry_desc e "next")
      (Client.read_ptr c (f c dir_entry_desc dhead "next"));
    Client.write_ptr c (f c dir_entry_desc dhead "next") e
  end;
  wl_release dir

(* Browse everyone's schedule by walking the directory's cross-segment
   pointers. *)
let browse c =
  let dir = open_segment ~create:false c "calendar/directory" in
  rl_acquire dir;
  let dhead = (Option.get (Client.find_named_block dir "head")).Mem.b_addr in
  let rec each_entry e =
    if e <> 0 then begin
      let user = Client.read_string c ~capacity:16 (f c dir_entry_desc e "user") in
      let sched = Client.read_ptr c (f c dir_entry_desc e "schedule") in
      (* The schedule lives in another segment; lock it before reading. *)
      let useg = Option.get (Client.segment_of_addr c sched) in
      rl_acquire useg;
      Printf.printf "  %s:\n" user;
      let rec each_appt a =
        if a <> 0 then begin
          Printf.printf "    day %d %02d:00  %-20s @ %s\n"
            (Client.read_int c (f c appt_desc a "day"))
            (Client.read_int c (f c appt_desc a "hour"))
            (Client.read_string c ~capacity:48 (f c appt_desc a "title"))
            (Client.read_string c ~capacity:24 (f c appt_desc a "location"));
          each_appt (Client.read_ptr c (f c appt_desc a "next"))
        end
      in
      each_appt (Client.read_ptr c (f c appt_desc sched "next"));
      rl_release useg;
      each_entry (Client.read_ptr c (f c dir_entry_desc e "next"))
    end
  in
  each_entry (Client.read_ptr c (f c dir_entry_desc dhead "next"));
  rl_release dir

let () =
  let server = start_server () in
  let alice = direct_client ~arch:Arch.x86_32 server in
  let bob = direct_client ~arch:Arch.sparc32 server in
  let carol = direct_client ~arch:Arch.alpha64 server in

  add_appointment alice ~user:"alice" ~day:1 ~hour:9 ~title:"ICDCS talk" ~location:"room 301";
  add_appointment alice ~user:"alice" ~day:1 ~hour:14 ~title:"office hours" ~location:"CSB 726";
  add_appointment bob ~user:"bob" ~day:2 ~hour:11 ~title:"reading group" ~location:"library";
  add_appointment carol ~user:"carol" ~day:3 ~hour:16 ~title:"demo: InterWeave" ~location:"lab";

  print_endline "carol (alpha64) browses everyone's calendars:";
  browse carol;

  (* Bob reschedules; alice sees the change on her next browse. *)
  add_appointment bob ~user:"bob" ~day:2 ~hour:15 ~title:"reading group (moved)" ~location:"cafe";
  print_endline "alice (x86_32) browses after bob's update:";
  browse alice
