(* Quickstart: the shared linked list from Figure 1 of the paper.

   Two clients — one little-endian 32-bit, one big-endian — share the list
   "host/list".  The writer inserts under a write lock; the reader searches
   under read locks, following pointers that InterWeave swizzled into its own
   address space.  Node accessors come from list_types.ml, generated from
   list.idl by iw-idlc at build time.

   Run with: dune exec examples/quickstart.exe *)

open Interweave
open List_types

(* IW_open_segment + IW_mip_to_ptr: the paper's list_init. *)
let list_init c =
  let h = open_segment c "host/list" in
  wl_acquire h;
  let head =
    match Client.find_named_block h "head" with
    | Some b -> b.Mem.b_addr
    | None -> Node.malloc ~name:"head" h
  in
  wl_release h;
  (h, head)

(* The paper's list_insert: allocate, link at the front. *)
let list_insert c h head key =
  wl_acquire h;
  let p = Node.malloc h in
  Node.set_key c p key;
  Node.set_next c p (Node.get_next c head);
  Node.set_next c head p;
  wl_release h

(* The paper's list_search. *)
let list_search c h head key =
  rl_acquire h;
  let rec go p =
    if p = 0 then None
    else if Node.get_key c p = key then Some p
    else go (Node.get_next c p)
  in
  let r = go (Node.get_next c head) in
  rl_release h;
  r

let () =
  let server = start_server () in
  let writer = direct_client ~arch:Arch.x86_32 server in
  let reader = direct_client ~arch:Arch.sparc32 server in

  let wh, whead = list_init writer in
  List.iter (list_insert writer wh whead) [ 10; 20; 30; 40; 50 ];
  Printf.printf "writer (x86_32) inserted keys 10..50 into %s\n"
    (ptr_to_mip writer whead);

  (* Bootstrap the reader from a MIP, as the paper's example does. *)
  let rhead = mip_to_ptr reader "host/list#head" in
  let rh = Option.get (Client.find_segment reader "host/list") in
  List.iter
    (fun key ->
      match list_search reader rh rhead key with
      | Some p ->
        Printf.printf "reader (sparc32) found key %d at local address %#x (MIP %s)\n" key p
          (ptr_to_mip reader p)
      | None -> Printf.printf "reader (sparc32) did NOT find key %d\n" key)
    [ 30; 50; 99 ];

  (* Concurrent update: the reader sees it on its next lock. *)
  list_insert writer wh whead 99;
  (match list_search reader rh rhead 99 with
  | Some _ -> print_endline "after one more insert, key 99 is visible to the reader"
  | None -> print_endline "BUG: key 99 should be visible");

  let st = Client.stats reader in
  Printf.printf "reader transferred %d payload bytes in %d diffs\n"
    st.Client.bytes_received st.Client.diffs_received
