(* The RPC/XDR baseline: encoding rules, deep-copy pointers, sizes. *)

let registry =
  let r = Iw_types.Registry.create () in
  Iw_types.Registry.define_name r "int" (Iw_types.Prim Iw_arch.Int);
  Iw_types.Registry.define_name r "pair"
    (Iw_types.Struct
       [|
         { Iw_types.fname = "x"; ftype = Prim Iw_arch.Int };
         { Iw_types.fname = "y"; ftype = Prim Iw_arch.Int };
       |]);
  r

let make_client arch =
  let sp = Iw_mem.create_space arch in
  let heap = Iw_mem.create_heap sp ~seg_id:1 in
  (sp, heap)

let alloc heap desc =
  let conv = Iw_types.local (Iw_mem.arch (Iw_mem.heap_space heap)) in
  let serial = ref 100 in
  let b =
    Iw_mem.alloc heap
      ~serial:
        (incr serial;
         !serial)
      ~desc_serial:0 (Iw_types.layout conv desc)
  in
  (b.Iw_mem.b_addr, Iw_types.layout conv desc)

let test_int_is_4_bytes () =
  let sp, heap = make_client Iw_arch.x86_32 in
  let a, lay = alloc heap (Iw_types.Prim Iw_arch.Int) in
  Iw_mem.store_prim sp Iw_arch.Int a (-5);
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  Alcotest.(check int) "int is 4 bytes" 4 (Iw_wire.Buf.length buf);
  Alcotest.(check string) "big endian two's complement" "\xff\xff\xff\xfb"
    (Iw_wire.Buf.contents buf)

let test_char_short_widen () =
  let sp, heap = make_client Iw_arch.x86_32 in
  let desc =
    Iw_types.Struct
      [|
        { Iw_types.fname = "c"; ftype = Prim Iw_arch.Char };
        { Iw_types.fname = "s"; ftype = Prim Iw_arch.Short };
      |]
  in
  let a, lay = alloc heap desc in
  ignore sp;
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  Alcotest.(check int) "char and short widen to 4 bytes each" 8 (Iw_wire.Buf.length buf)

let test_string_padding () =
  let sp, heap = make_client Iw_arch.x86_32 in
  let a, lay = alloc heap (Iw_types.Prim (Iw_arch.String 16)) in
  Iw_mem.store_string sp ~capacity:16 a "abcde";
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  (* 4 length + 5 bytes + 3 pad *)
  Alcotest.(check int) "padded to 4" 12 (Iw_wire.Buf.length buf);
  Alcotest.(check int) "size function agrees" 12
    (Iw_xdr.marshaled_size sp ~registry ~addr:a lay)

let test_null_pointer () =
  let sp, heap = make_client Iw_arch.x86_32 in
  let a, lay = alloc heap (Iw_types.Ptr "int") in
  ignore sp;
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  Alcotest.(check string) "null is a zero flag" "\x00\x00\x00\x00" (Iw_wire.Buf.contents buf)

let test_deep_copy () =
  let sp, heap = make_client Iw_arch.x86_32 in
  let target, _ = alloc heap (Iw_types.Prim Iw_arch.Int) in
  Iw_mem.store_prim sp Iw_arch.Int target 777;
  let a, lay = alloc heap (Iw_types.Ptr "int") in
  Iw_mem.store_prim sp Iw_arch.Pointer a target;
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  (* flag + pointee *)
  Alcotest.(check int) "flag + int" 8 (Iw_wire.Buf.length buf);
  let r = Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf) in
  Alcotest.(check int) "present" 1 (Iw_wire.Reader.u32 r);
  Alcotest.(check int) "pointee value" 777 (Iw_wire.Reader.u32 r)

let test_unmarshal_rebuilds_pointees () =
  (* Marshal a pointer on x86, unmarshal on alpha: a fresh pointee block must
     appear in the destination heap. *)
  let sp, heap = make_client Iw_arch.x86_32 in
  let target, _ = alloc heap (Iw_types.Prim Iw_arch.Int) in
  Iw_mem.store_prim sp Iw_arch.Int target 31415;
  let a, lay = alloc heap (Iw_types.Ptr "int") in
  Iw_mem.store_prim sp Iw_arch.Pointer a target;
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  let dsp, dheap = make_client Iw_arch.alpha64 in
  let da, dlay = alloc dheap (Iw_types.Ptr "int") in
  let serial = ref 1000 in
  let fresh_serial () =
    incr serial;
    !serial
  in
  let before = List.length (Iw_mem.heap_blocks dheap) in
  Iw_xdr.unmarshal
    (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf))
    dheap ~registry ~addr:da ~fresh_serial dlay;
  Alcotest.(check int) "one new block" (before + 1) (List.length (Iw_mem.heap_blocks dheap));
  let p = Iw_mem.load_prim dsp Iw_arch.Pointer da in
  Alcotest.(check bool) "pointer set" true (p <> 0);
  Alcotest.(check int) "pointee value" 31415 (Iw_mem.load_prim dsp Iw_arch.Int p)

let test_roundtrip_struct_cross_arch () =
  let desc =
    Iw_types.Struct
      [|
        { Iw_types.fname = "i"; ftype = Prim Iw_arch.Int };
        { Iw_types.fname = "d"; ftype = Prim Iw_arch.Double };
        { Iw_types.fname = "s"; ftype = Prim (Iw_arch.String 12) };
        { Iw_types.fname = "l"; ftype = Prim Iw_arch.Long };
        { Iw_types.fname = "xs"; ftype = Array (Prim Iw_arch.Short, 3) };
      |]
  in
  let sp, heap = make_client Iw_arch.sparc32 in
  let a, lay = alloc heap desc in
  let off i = (Iw_types.locate_prim lay i).Iw_types.l_off in
  Iw_mem.store_prim sp Iw_arch.Int (a + off 0) 42;
  Iw_mem.store_double sp (a + off 1) (-0.5);
  Iw_mem.store_string sp ~capacity:12 (a + off 2) "xdr";
  Iw_mem.store_prim sp Iw_arch.Long (a + off 3) (-9);
  List.iteri (fun i v -> Iw_mem.store_prim sp Iw_arch.Short (a + off (4 + i)) v) [ 1; -2; 3 ];
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry ~addr:a lay;
  let dsp, dheap = make_client Iw_arch.x86_32 in
  let da, dlay = alloc dheap desc in
  let doff i = (Iw_types.locate_prim dlay i).Iw_types.l_off in
  Iw_xdr.unmarshal
    (Iw_wire.Reader.of_string (Iw_wire.Buf.contents buf))
    dheap ~registry ~addr:da
    ~fresh_serial:(fun () -> 999)
    dlay;
  Alcotest.(check int) "int" 42 (Iw_mem.load_prim dsp Iw_arch.Int (da + doff 0));
  Alcotest.(check (float 0.)) "double" (-0.5) (Iw_mem.load_double dsp (da + doff 1));
  Alcotest.(check string) "string" "xdr" (Iw_mem.load_string dsp ~capacity:12 (da + doff 2));
  Alcotest.(check int) "long" (-9) (Iw_mem.load_prim dsp Iw_arch.Long (da + doff 3));
  List.iteri
    (fun i v ->
      Alcotest.(check int) "short" v (Iw_mem.load_prim dsp Iw_arch.Short (da + doff (4 + i))))
    [ 1; -2; 3 ]

let test_cycle_detected () =
  (* A self-referential node makes deep copy diverge; the library reports it
     rather than looping forever. *)
  let node =
    Iw_types.Struct
      [|
        { Iw_types.fname = "v"; ftype = Prim Iw_arch.Int };
        { Iw_types.fname = "next"; ftype = Ptr "cyc_node" };
      |]
  in
  let r = Iw_types.Registry.create () in
  Iw_types.Registry.define_name r "cyc_node" node;
  let sp, heap = make_client Iw_arch.x86_32 in
  let a, lay = alloc heap node in
  (* point next at itself *)
  let next_off = (Iw_types.locate_prim lay 1).Iw_types.l_off in
  Iw_mem.store_prim sp Iw_arch.Pointer (a + next_off) a;
  let buf = Iw_wire.Buf.create () in
  try
    Iw_xdr.marshal buf sp ~registry:r ~addr:a lay;
    Alcotest.fail "expected Cycle"
  with Iw_xdr.Cycle -> ()

let test_acyclic_list_ok () =
  let node =
    Iw_types.Struct
      [|
        { Iw_types.fname = "v"; ftype = Prim Iw_arch.Int };
        { Iw_types.fname = "next"; ftype = Ptr "list_node" };
      |]
  in
  let r = Iw_types.Registry.create () in
  Iw_types.Registry.define_name r "list_node" node;
  let sp, heap = make_client Iw_arch.x86_32 in
  let conv = Iw_types.local Iw_arch.x86_32 in
  let lay = Iw_types.layout conv node in
  let next_off = (Iw_types.locate_prim lay 1).Iw_types.l_off in
  let serial = ref 0 in
  let mk v next =
    incr serial;
    let b = Iw_mem.alloc heap ~serial:!serial ~desc_serial:0 lay in
    Iw_mem.store_prim sp Iw_arch.Int b.Iw_mem.b_addr v;
    Iw_mem.store_prim sp Iw_arch.Pointer (b.Iw_mem.b_addr + next_off) next;
    b.Iw_mem.b_addr
  in
  let l = mk 1 (mk 2 (mk 3 0)) in
  let buf = Iw_wire.Buf.create () in
  Iw_xdr.marshal buf sp ~registry:r ~addr:l lay;
  (* 3 nodes x (int 4 + flag 4) + final null flag... each node: v(4) + ptr
     flag(4), plus two pointees inline. total = 3*8 = 24 *)
  Alcotest.(check int) "whole list marshaled" 24 (Iw_wire.Buf.length buf)

let suite =
  ( "xdr",
    [
      Alcotest.test_case "int is 4 bytes" `Quick test_int_is_4_bytes;
      Alcotest.test_case "char/short widen" `Quick test_char_short_widen;
      Alcotest.test_case "string padding" `Quick test_string_padding;
      Alcotest.test_case "null pointer" `Quick test_null_pointer;
      Alcotest.test_case "deep copy" `Quick test_deep_copy;
      Alcotest.test_case "unmarshal rebuilds pointees" `Quick test_unmarshal_rebuilds_pointees;
      Alcotest.test_case "cross-arch roundtrip" `Quick test_roundtrip_struct_cross_arch;
      Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
      Alcotest.test_case "acyclic list ok" `Quick test_acyclic_list_ok;
    ] )
