(* End-to-end client/server integration: the paper's programming model. *)

open Interweave

let int_array n = Desc.array Desc.int n

let fresh_env ?(arch = Arch.x86_32) () =
  let server = start_server () in
  let c = direct_client ~arch server in
  (server, c)

let test_create_write_read_back () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/data" in
  wl_acquire h;
  let a = malloc h (int_array 100) ~name:"xs" in
  for i = 0 to 99 do
    Client.write_int c (a + (i * 4)) (i * i)
  done;
  wl_release h;
  rl_acquire h;
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "xs[%d]" i) (i * i) (Client.read_int c (a + (i * 4)))
  done;
  rl_release h

let test_two_clients_share () =
  let server, c1 = fresh_env () in
  let c2 = direct_client ~arch:Arch.sparc32 server in
  let h1 = open_segment c1 "host/shared" in
  wl_acquire h1;
  let a1 = malloc h1 (int_array 10) ~name:"xs" in
  for i = 0 to 9 do
    Client.write_int c1 (a1 + (i * 4)) (100 + i)
  done;
  wl_release h1;
  (* Second client, different architecture, sees the data. *)
  let h2 = open_segment ~create:false c2 "host/shared" in
  rl_acquire h2;
  let b =
    match Client.find_named_block h2 "xs" with
    | Some b -> b
    | None -> Alcotest.fail "block xs not visible at client 2"
  in
  let a2 = b.Mem.b_addr in
  for i = 0 to 9 do
    Alcotest.(check int) (Printf.sprintf "c2 xs[%d]" i) (100 + i) (Client.read_int c2 (a2 + (i * 4)))
  done;
  rl_release h2;
  (* Write back from client 2, read at client 1. *)
  wl_acquire h2;
  Client.write_int c2 a2 777;
  wl_release h2;
  rl_acquire h1;
  Alcotest.(check int) "c1 sees c2's write" 777 (Client.read_int c1 a1);
  rl_release h1

let test_incremental_diff_only_changes () =
  let server, c1 = fresh_env () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "host/inc" in
  wl_acquire h1;
  let a = malloc h1 (int_array 10000) in
  wl_release h1;
  let h2 = open_segment ~create:false c2 "host/inc" in
  rl_acquire h2;
  rl_release h2;
  Client.reset_stats c2;
  (* Small update: only a few words change. *)
  wl_acquire h1;
  Client.write_int c1 (a + 400) 1;
  Client.write_int c1 (a + 404) 2;
  wl_release h1;
  rl_acquire h2;
  rl_release h2;
  let st = Client.stats c2 in
  Alcotest.(check bool)
    (Printf.sprintf "small diff (%d bytes)" st.Client.bytes_received)
    true
    (st.Client.bytes_received < 1024);
  (* The changed values arrived. *)
  let b2 = List.hd (Client.blocks h2) in
  Alcotest.(check int) "value 1" 1 (Client.read_int c2 (b2.Mem.b_addr + 400));
  Alcotest.(check int) "value 2" 2 (Client.read_int c2 (b2.Mem.b_addr + 404))

let test_heterogeneous_struct_translation () =
  let server, c1 = fresh_env ~arch:Arch.x86_32 () in
  let c2 = direct_client ~arch:Arch.sparc32 server in
  let c3 = direct_client ~arch:Arch.alpha64 server in
  let node =
    Desc.structure
      [
        Desc.field "i" Desc.int;
        Desc.field "d" Desc.double;
        Desc.field "tag" (Desc.string 16);
        Desc.field "l" Desc.long;
      ]
  in
  let h1 = open_segment c1 "host/het" in
  wl_acquire h1;
  let a = malloc h1 node ~name:"n" in
  let w path = deref c1 node a path in
  Client.write_int c1 (w [ F "i" ]) (-123);
  Client.write_double c1 (w [ F "d" ]) 2.5;
  Client.write_string c1 ~capacity:16 (w [ F "tag" ]) "hello";
  Client.write_long c1 (w [ F "l" ]) (-77);
  wl_release h1;
  List.iter
    (fun (c, label) ->
      let h = open_segment ~create:false c "host/het" in
      rl_acquire h;
      let b = Option.get (Client.find_named_block h "n") in
      let r path = deref c node b.Mem.b_addr path in
      Alcotest.(check int) (label ^ " int") (-123) (Client.read_int c (r [ F "i" ]));
      Alcotest.(check (float 0.)) (label ^ " double") 2.5 (Client.read_double c (r [ F "d" ]));
      Alcotest.(check string) (label ^ " string") "hello"
        (Client.read_string c ~capacity:16 (r [ F "tag" ]));
      Alcotest.(check int) (label ^ " long") (-77) (Client.read_long c (r [ F "l" ]));
      rl_release h)
    [ (c2, "sparc32"); (c3, "alpha64") ]

let test_linked_list_pointers () =
  (* The paper's Figure 1: a shared linked list with swizzled pointers. *)
  let server, c1 = fresh_env () in
  let c2 = direct_client ~arch:Arch.alpha64 server in
  let node =
    Desc.structure [ Desc.field "key" Desc.int; Desc.field "next" (Desc.ptr "node") ]
  in
  let h1 = open_segment c1 "host/list" in
  let next_of c a = deref c node a [ F "next" ] in
  wl_acquire h1;
  let head = malloc h1 node ~name:"head" in
  (* insert 5, 10, 15 at the front *)
  List.iter
    (fun key ->
      let p = malloc h1 node in
      Client.write_int c1 p key;
      Client.write_ptr c1 (next_of c1 p) (Client.read_ptr c1 (next_of c1 head));
      Client.write_ptr c1 (next_of c1 head) p)
    [ 5; 10; 15 ];
  wl_release h1;
  (* Walk at the second (64-bit!) client. *)
  let h2 = open_segment ~create:false c2 "host/list" in
  rl_acquire h2;
  let head2 = (Option.get (Client.find_named_block h2 "head")).Mem.b_addr in
  let rec walk a acc =
    if a = 0 then List.rev acc
    else walk (Client.read_ptr c2 (next_of c2 a)) (Client.read_int c2 a :: acc)
  in
  Alcotest.(check (list int)) "list walked via swizzled pointers" [ 15; 10; 5 ]
    (walk (Client.read_ptr c2 (next_of c2 head2)) []);
  rl_release h2

let test_mip_roundtrip () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/mips" in
  wl_acquire h;
  let a = malloc h (int_array 100) ~name:"xs" in
  wl_release h;
  let mip = ptr_to_mip c a in
  Alcotest.(check string) "block mip" "host/mips#1" mip;
  Alcotest.(check int) "roundtrip" a (mip_to_ptr c mip);
  let interior = a + 40 in
  let mip2 = ptr_to_mip c interior in
  Alcotest.(check string) "interior mip counts primitive units" "host/mips#1#10" mip2;
  Alcotest.(check int) "interior roundtrip" interior (mip_to_ptr c mip2);
  (* Named lookup also works. *)
  Alcotest.(check int) "by name" a (mip_to_ptr c "host/mips#xs")

let test_cross_segment_pointers () =
  let server, c1 = fresh_env () in
  let h1 = open_segment c1 "host/a" in
  let h2 = open_segment c1 "host/b" in
  wl_acquire h2;
  let target = malloc h2 (int_array 4) ~name:"target" in
  Client.write_int c1 target 99;
  wl_release h2;
  wl_acquire h1;
  let holder = malloc h1 (Desc.structure [ Desc.field "p" Desc.opaque_ptr ]) ~name:"holder" in
  Client.write_ptr c1 holder target;
  wl_release h1;
  (* A second client opening only segment a follows the pointer into b. *)
  let c2 = direct_client server in
  let g1 = open_segment ~create:false c2 "host/a" in
  rl_acquire g1;
  let holder2 = (Option.get (Client.find_named_block g1 "holder")).Mem.b_addr in
  let p = Client.read_ptr c2 holder2 in
  Alcotest.(check bool) "pointer swizzled to a local address" true (p <> 0);
  (* Data in b arrives once b is locked. *)
  let g2 = Option.get (Client.find_segment c2 "host/b") in
  rl_acquire g2;
  Alcotest.(check int) "followed cross-segment pointer" 99 (Client.read_int c2 p);
  rl_release g2;
  rl_release g1

let test_free_propagates () =
  let server, c1 = fresh_env () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "host/frees" in
  wl_acquire h1;
  let _keep = malloc h1 (int_array 10) ~name:"keep" in
  let dead = malloc h1 (int_array 10) ~name:"dead" in
  wl_release h1;
  let h2 = open_segment ~create:false c2 "host/frees" in
  rl_acquire h2;
  Alcotest.(check int) "two blocks" 2 (List.length (Client.blocks h2));
  rl_release h2;
  wl_acquire h1;
  free c1 dead;
  wl_release h1;
  rl_acquire h2;
  Alcotest.(check int) "one block after free" 1 (List.length (Client.blocks h2));
  Alcotest.(check bool) "the right one" true (Client.find_named_block h2 "keep" <> None);
  rl_release h2

let test_delta_coherence () =
  let server, writer = fresh_env () in
  let reader = direct_client server in
  let hw = open_segment writer "host/delta" in
  wl_acquire hw;
  let a = malloc hw (int_array 10) ~name:"xs" in
  Client.write_int writer a 0;
  wl_release hw;
  let hr = open_segment ~create:false reader "host/delta" in
  set_coherence hr (Proto.Delta 2);
  rl_acquire hr;
  rl_release hr;
  let v0 = Client.segment_version hr in
  (* Two writer versions: within the delta bound, reader must not update. *)
  for i = 1 to 2 do
    wl_acquire hw;
    Client.write_int writer a i;
    wl_release hw
  done;
  rl_acquire hr;
  Alcotest.(check int) "still at old version" v0 (Client.segment_version hr);
  rl_release hr;
  (* A third version exceeds the bound. *)
  wl_acquire hw;
  Client.write_int writer a 3;
  wl_release hw;
  rl_acquire hr;
  Alcotest.(check bool) "updated past delta bound" true (Client.segment_version hr > v0);
  let b = (List.hd (Client.blocks hr)).Mem.b_addr in
  Alcotest.(check int) "sees latest value" 3 (Client.read_int reader b);
  rl_release hr

let test_temporal_coherence_skips_server () =
  let server, writer = fresh_env () in
  let reader = direct_client server in
  let hw = open_segment writer "host/temporal" in
  wl_acquire hw;
  let a = malloc hw (int_array 4) in
  Client.write_int writer a 1;
  wl_release hw;
  let hr = open_segment ~create:false reader "host/temporal" in
  set_coherence hr (Proto.Temporal 3600.);
  rl_acquire hr;
  rl_release hr;
  let calls_before = (Client.stats reader).Client.calls in
  for _ = 1 to 10 do
    rl_acquire hr;
    rl_release hr
  done;
  Alcotest.(check int) "no server calls within the temporal bound" calls_before
    (Client.stats reader).Client.calls

let test_diff_coherence () =
  let server, writer = fresh_env () in
  let reader = direct_client server in
  let hw = open_segment writer "host/diffco" in
  wl_acquire hw;
  let a = malloc hw (int_array 1000) in
  wl_release hw;
  let hr = open_segment ~create:false reader "host/diffco" in
  set_coherence hr (Proto.Diff_pct 50.);
  rl_acquire hr;
  rl_release hr;
  let v0 = Client.segment_version hr in
  (* Modify 1% -> under the 50% bound, no update. *)
  wl_acquire hw;
  for i = 0 to 9 do
    Client.write_int writer (a + (i * 4)) 1
  done;
  wl_release hw;
  rl_acquire hr;
  Alcotest.(check int) "1%% stale is recent enough" v0 (Client.segment_version hr);
  rl_release hr;
  (* Modify most of it -> must update. *)
  wl_acquire hw;
  for i = 0 to 699 do
    Client.write_int writer (a + (i * 4)) 2
  done;
  wl_release hw;
  rl_acquire hr;
  Alcotest.(check bool) "70%% stale forces update" true (Client.segment_version hr > v0);
  rl_release hr

let test_write_lock_exclusion () =
  let server, c1 = fresh_env () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "host/lock" in
  let h2 = open_segment ~create:false c2 "host/lock" in
  wl_acquire h1;
  (try
     wl_acquire h2;
     Alcotest.fail "expected Busy"
   with Client.Busy -> ());
  wl_release h1;
  wl_acquire h2;
  wl_release h2

let test_lock_misuse_rejected () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/misuse" in
  (try
     wl_release h;
     Alcotest.fail "release without acquire"
   with Client.Error _ -> ());
  (try
     ignore (malloc h (int_array 1) : addr);
     Alcotest.fail "malloc without write lock"
   with Client.Error _ -> ());
  rl_acquire h;
  (try
     ignore (malloc h (int_array 1) : addr);
     Alcotest.fail "malloc under read lock"
   with Client.Error _ -> ());
  rl_release h

let test_nested_locks () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/nest" in
  wl_acquire h;
  wl_acquire h;
  let a = malloc h (int_array 1) in
  Client.write_int c a 5;
  wl_release h;
  (* still locked *)
  Client.write_int c a 6;
  wl_release h;
  rl_acquire h;
  rl_acquire h;
  Alcotest.(check int) "value" 6 (Client.read_int c a);
  rl_release h;
  rl_release h

let test_no_diff_mode_equivalent () =
  let server, c1 = fresh_env () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "host/nodiff" in
  Client.set_no_diff h1 true;
  wl_acquire h1;
  let a = malloc h1 (int_array 100) in
  for i = 0 to 99 do
    Client.write_int c1 (a + (i * 4)) i
  done;
  wl_release h1;
  wl_acquire h1;
  Client.write_int c1 (a + 40) 999;
  wl_release h1;
  let h2 = open_segment ~create:false c2 "host/nodiff" in
  rl_acquire h2;
  let b = (List.hd (Client.blocks h2)).Mem.b_addr in
  Alcotest.(check int) "updated word" 999 (Client.read_int c2 (b + 40));
  Alcotest.(check int) "other word" 99 (Client.read_int c2 (b + 396));
  rl_release h2

let test_auto_no_diff_switches () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/autonodiff" in
  wl_acquire h;
  let a = malloc h (int_array 1000) in
  wl_release h;
  Alcotest.(check bool) "starts diffing" false (Client.no_diff_mode h);
  (* Repeatedly modify everything: after 3 full-modification releases the
     client must stop diffing. *)
  for round = 1 to 4 do
    wl_acquire h;
    for i = 0 to 999 do
      Client.write_int c (a + (i * 4)) (round + i)
    done;
    wl_release h
  done;
  Alcotest.(check bool) "switched to no-diff" true (Client.no_diff_mode h)

let test_empty_release_keeps_version () =
  let _server, c = fresh_env () in
  let h = open_segment c "host/empty" in
  wl_acquire h;
  let _a = malloc h (int_array 4) in
  wl_release h;
  let v = Client.segment_version h in
  wl_acquire h;
  wl_release h;
  Alcotest.(check int) "no-op release keeps version" v (Client.segment_version h)

let test_reserved_then_filled () =
  (* mip_to_ptr into a segment that was never locked: space is reserved,
     data arrives at first lock. *)
  let server, c1 = fresh_env () in
  let h1 = open_segment c1 "host/reserve" in
  wl_acquire h1;
  let a = malloc h1 (int_array 10) ~name:"xs" in
  Client.write_int c1 a 31337;
  wl_release h1;
  let c2 = direct_client server in
  let p = mip_to_ptr c2 "host/reserve#xs" in
  Alcotest.(check bool) "address reserved" true (p > 0);
  Alcotest.(check int) "no data yet" 0 (Client.read_int c2 p);
  let g = Option.get (Client.find_segment c2 "host/reserve") in
  rl_acquire g;
  Alcotest.(check int) "data after lock" 31337 (Client.read_int c2 p);
  rl_release g

let test_loopback_transport () =
  let server = start_server () in
  let c1 = loopback_client server in
  let c2 = loopback_client ~arch:Arch.sparc32 server in
  let h1 = open_segment c1 "host/loop" in
  wl_acquire h1;
  let a = malloc h1 (int_array 16) ~name:"xs" in
  for i = 0 to 15 do
    Client.write_int c1 (a + (i * 4)) (i * 3)
  done;
  wl_release h1;
  let h2 = open_segment ~create:false c2 "host/loop" in
  rl_acquire h2;
  let b = (Option.get (Client.find_named_block h2 "xs")).Mem.b_addr in
  for i = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "loopback xs[%d]" i) (i * 3)
      (Client.read_int c2 (b + (i * 4)))
  done;
  rl_release h2;
  Client.disconnect c1;
  Client.disconnect c2

let test_checkpoint_restart () =
  let dir = Filename.temp_file "iw" "ckpt" in
  Sys.remove dir;
  let server = start_server ~checkpoint_dir:dir () in
  let c = direct_client server in
  let h = open_segment c "host/persist" in
  wl_acquire h;
  let a = malloc h (int_array 10) ~name:"xs" in
  Client.write_int c a 4242;
  wl_release h;
  Server.checkpoint server;
  (* A brand new server process reloads the segment. *)
  let server2 = start_server ~checkpoint_dir:dir () in
  Alcotest.(check (list string)) "segment reloaded" [ "host/persist" ]
    (Server.segment_names server2);
  let c2 = direct_client server2 in
  let h2 = open_segment ~create:false c2 "host/persist" in
  rl_acquire h2;
  let b = (Option.get (Client.find_named_block h2 "xs")).Mem.b_addr in
  Alcotest.(check int) "data survived restart" 4242 (Client.read_int c2 b);
  rl_release h2

let test_strings_and_doubles_diff () =
  let server, c1 = fresh_env ~arch:Arch.x86_32 () in
  let c2 = direct_client ~arch:Arch.mips32 server in
  let rec_t =
    Desc.structure
      [
        Desc.field "label" (Desc.string 64);
        Desc.field "values" (Desc.array Desc.double 8);
      ]
  in
  let h1 = open_segment c1 "host/mixed" in
  wl_acquire h1;
  let a = malloc h1 rec_t ~name:"r" in
  Client.write_string c1 ~capacity:64 (deref c1 rec_t a [ F "label" ]) "initial";
  wl_release h1;
  let h2 = open_segment ~create:false c2 "host/mixed" in
  rl_acquire h2;
  rl_release h2;
  (* Update just the label and one double. *)
  wl_acquire h1;
  Client.write_string c1 ~capacity:64 (deref c1 rec_t a [ F "label" ]) "updated";
  Client.write_double c1 (deref c1 rec_t a [ F "values"; I 3 ]) 9.5;
  wl_release h1;
  rl_acquire h2;
  let b = (Option.get (Client.find_named_block h2 "r")).Mem.b_addr in
  Alcotest.(check string) "string updated" "updated"
    (Client.read_string c2 ~capacity:64 (deref c2 rec_t b [ F "label" ]));
  Alcotest.(check (float 0.)) "double updated" 9.5
    (Client.read_double c2 (deref c2 rec_t b [ F "values"; I 3 ]));
  rl_release h2

let suite =
  ( "system",
    [
      Alcotest.test_case "create/write/read" `Quick test_create_write_read_back;
      Alcotest.test_case "two clients share" `Quick test_two_clients_share;
      Alcotest.test_case "incremental diffs" `Quick test_incremental_diff_only_changes;
      Alcotest.test_case "heterogeneous structs" `Quick test_heterogeneous_struct_translation;
      Alcotest.test_case "linked list pointers" `Quick test_linked_list_pointers;
      Alcotest.test_case "MIP roundtrip" `Quick test_mip_roundtrip;
      Alcotest.test_case "cross-segment pointers" `Quick test_cross_segment_pointers;
      Alcotest.test_case "free propagates" `Quick test_free_propagates;
      Alcotest.test_case "delta coherence" `Quick test_delta_coherence;
      Alcotest.test_case "temporal coherence" `Quick test_temporal_coherence_skips_server;
      Alcotest.test_case "diff coherence" `Quick test_diff_coherence;
      Alcotest.test_case "write lock exclusion" `Quick test_write_lock_exclusion;
      Alcotest.test_case "lock misuse rejected" `Quick test_lock_misuse_rejected;
      Alcotest.test_case "nested locks" `Quick test_nested_locks;
      Alcotest.test_case "no-diff mode" `Quick test_no_diff_mode_equivalent;
      Alcotest.test_case "auto no-diff switch" `Quick test_auto_no_diff_switches;
      Alcotest.test_case "empty release" `Quick test_empty_release_keeps_version;
      Alcotest.test_case "reserve then fill" `Quick test_reserved_then_filled;
      Alcotest.test_case "loopback transport" `Quick test_loopback_transport;
      Alcotest.test_case "checkpoint restart" `Quick test_checkpoint_restart;
      Alcotest.test_case "strings and doubles" `Quick test_strings_and_doubles_diff;
    ] )
