(* Client-library behaviours beyond the core system tests: facade helpers,
   MIP edge cases, statistics, option toggles, and randomized convergence. *)

open Interweave

let fresh () =
  let server = start_server () in
  (server, direct_client server)

let test_desc_builders () =
  let d =
    Desc.structure
      [
        Desc.field "a" Desc.int;
        Desc.field "b" (Desc.array Desc.double 3);
        Desc.field "c" (Desc.ptr "node");
        Desc.field "d" (Desc.string 32);
        Desc.field "e" Desc.opaque_ptr;
        Desc.field "f" Desc.char;
        Desc.field "g" Desc.short;
        Desc.field "h" Desc.long;
        Desc.field "i" Desc.float;
      ]
  in
  Alcotest.(check int) "prim count" 11 (Types.prim_count d);
  Alcotest.(check bool) "valid" true (Types.validate d = Ok ())

let test_offset_paths () =
  let _server, c = fresh () in
  let d =
    Desc.structure
      [
        Desc.field "hdr" Desc.int;
        Desc.field "rows" (Desc.array (Desc.structure [ Desc.field "x" Desc.int; Desc.field "y" Desc.double ]) 10);
      ]
  in
  let off, sub = offset c d [ F "rows"; I 3; F "y" ] in
  (* x86: row = {int(4); double(8, align 4)} = 12 bytes; rows start at 4. *)
  Alcotest.(check int) "offset" (4 + (3 * 12) + 4) off;
  Alcotest.(check bool) "sub-descriptor" true (sub = Desc.double);
  (try
     ignore (offset c d [ F "nope" ]);
     Alcotest.fail "bad field accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (offset c d [ F "rows"; I 10 ]);
     Alcotest.fail "index out of bounds accepted"
   with Invalid_argument _ -> ());
  try
    ignore (offset c d [ I 0 ]);
    Alcotest.fail "index on struct accepted"
  with Invalid_argument _ -> ()

let test_with_lock_helpers () =
  let _server, c = fresh () in
  let h = open_segment c "cl/locks" in
  let a = with_write_lock h (fun () -> malloc h Desc.int) in
  with_write_lock h (fun () -> Client.write_int c a 7);
  Alcotest.(check int) "read under helper" 7 (with_read_lock h (fun () -> Client.read_int c a));
  (* The lock is released even if the body raises. *)
  (try with_write_lock h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released after exception" false (Client.locked h)

let test_mip_error_cases () =
  let _server, c = fresh () in
  let h = open_segment c "cl/mips" in
  with_write_lock h (fun () -> ignore (malloc h Desc.int ~name:"x" : addr));
  List.iter
    (fun mip ->
      try
        ignore (mip_to_ptr c mip : addr);
        Alcotest.failf "MIP %S accepted" mip
      with Client.Error _ -> ())
    [ "no-hash"; "cl/mips#999"; "cl/mips#nosuch"; "cl/mips#x#1#2"; "ghost/seg#1"; "cl/mips#x#zz" ];
  (* ptr_to_mip on free space is an error. *)
  try
    ignore (ptr_to_mip c 4 : string);
    Alcotest.fail "unmapped address accepted"
  with Client.Error _ -> ()

let test_segment_name_validation () =
  let _server, c = fresh () in
  (try
     ignore (open_segment c "bad#name" : seg);
     Alcotest.fail "segment name with # accepted"
   with Client.Error _ -> ());
  let h = open_segment c "cl/names" in
  wl_acquire h;
  (try
     ignore (malloc h Desc.int ~name:"has#hash" : addr);
     Alcotest.fail "block name with # accepted"
   with Client.Error _ -> ());
  (try
     ignore (malloc h Desc.int ~name:"123" : addr);
     Alcotest.fail "all-digit block name accepted"
   with Client.Error _ -> ());
  ignore (malloc h Desc.int ~name:"ok" : addr);
  (try
     ignore (malloc h Desc.int ~name:"ok" : addr);
     Alcotest.fail "duplicate block name accepted"
   with Client.Error _ -> ());
  wl_release h

let test_invalid_descriptor_rejected () =
  let _server, c = fresh () in
  let h = open_segment c "cl/baddesc" in
  wl_acquire h;
  (try
     ignore (malloc h (Types.Array (Types.Prim Iw_arch.Int, 0)) : addr);
     Alcotest.fail "zero-length array accepted"
   with Client.Error _ -> ());
  wl_release h

let test_stats_accounting () =
  let server, c1 = fresh () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "cl/stats" in
  with_write_lock h1 (fun () ->
      let a = malloc h1 (Desc.array Desc.int 1000) in
      for i = 0 to 999 do
        Client.write_int c1 (a + (i * 4)) i
      done);
  let s1 = Client.stats c1 in
  Alcotest.(check int) "one diff sent" 1 s1.Client.diffs_sent;
  Alcotest.(check bool) "bytes sent counted" true (s1.Client.bytes_sent >= 4000);
  Alcotest.(check bool) "calls counted" true (s1.Client.calls >= 3);
  let h2 = open_segment ~create:false c2 "cl/stats" in
  with_read_lock h2 (fun () -> ());
  let s2 = Client.stats c2 in
  Alcotest.(check int) "one diff received" 1 s2.Client.diffs_received;
  Alcotest.(check bool) "bytes received counted" true (s2.Client.bytes_received >= 4000);
  Client.reset_stats c2;
  Alcotest.(check int) "reset" 0 (Client.stats c2).Client.bytes_received

let test_twin_pages_counted () =
  let _server, c = fresh () in
  let h = open_segment c "cl/twins" in
  let a = with_write_lock h (fun () -> malloc h (Desc.array Desc.int 4096)) in
  Client.reset_stats c;
  with_write_lock h (fun () ->
      Client.write_int c a 1;
      Client.write_int c (a + 8192) 2);
  Alcotest.(check int) "two pages twinned" 2 (Client.stats c).Client.twin_pages

let test_multiple_segments_one_client () =
  let _server, c = fresh () in
  let segs = List.init 10 (fun i -> open_segment c (Printf.sprintf "cl/multi%d" i)) in
  List.iteri
    (fun i h ->
      with_write_lock h (fun () ->
          let a = malloc h Desc.int ~name:"v" in
          Client.write_int c a i))
    segs;
  List.iteri
    (fun i h ->
      with_read_lock h (fun () ->
          let a = (Option.get (Client.find_named_block h "v")).Mem.b_addr in
          Alcotest.(check int) "per-segment value" i (Client.read_int c a)))
    segs;
  (* Each address maps back to its segment. *)
  List.iteri
    (fun i h ->
      let a = (Option.get (Client.find_named_block h "v")).Mem.b_addr in
      match Client.segment_of_addr c a with
      | Some g ->
        Alcotest.(check string) "segment lookup"
          (Printf.sprintf "cl/multi%d" i) (Client.segment_name g)
      | None -> Alcotest.fail "segment_of_addr failed")
    segs

let test_long_truncation_32bit () =
  (* A 64-bit writer stores a value too wide for a 32-bit reader's long:
     the reader sees the low 32 bits, sign-extended — C semantics. *)
  let server = start_server () in
  let w = direct_client ~arch:Arch.alpha64 server in
  let r = direct_client ~arch:Arch.x86_32 server in
  let hw = open_segment w "cl/long" in
  let a =
    with_write_lock hw (fun () ->
        let a = malloc hw Desc.long ~name:"l" in
        Client.write_long w a 0x1_2345_6789;
        a)
  in
  Alcotest.(check int) "writer keeps 64-bit value" 0x1_2345_6789 (Client.read_long w a);
  let hr = open_segment ~create:false r "cl/long" in
  with_read_lock hr (fun () ->
      let b = (Option.get (Client.find_named_block hr "l")).Mem.b_addr in
      Alcotest.(check int) "reader sees low 32 bits" 0x2345_6789 (Client.read_long r b))

let test_busy_retry_with_loopback () =
  let server = start_server () in
  let c1 = loopback_client server in
  let c2 = loopback_client server in
  let h1 = open_segment c1 "cl/busy" in
  let h2 = open_segment ~create:false c2 "cl/busy" in
  wl_acquire h1;
  let acquired = ref false in
  let t =
    Thread.create
      (fun () ->
        wl_acquire h2;
        acquired := true;
        wl_release h2)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "still waiting" false !acquired;
  wl_release h1;
  Thread.join t;
  Alcotest.(check bool) "acquired after release" true !acquired;
  Client.disconnect c1;
  Client.disconnect c2

let test_forced_no_diff_off () =
  let _server, c = fresh () in
  let h = open_segment c "cl/forced" in
  let a = with_write_lock h (fun () -> malloc h (Desc.array Desc.int 1000)) in
  Client.set_no_diff h false;
  (* Even after many full modifications, forcing diff mode sticks. *)
  for round = 1 to 5 do
    with_write_lock h (fun () ->
        for i = 0 to 999 do
          Client.write_int c (a + (i * 4)) (i + round)
        done)
  done;
  Alcotest.(check bool) "still diffing" false (Client.no_diff_mode h)

let test_free_then_allocate_propagates () =
  let server, c1 = fresh () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "cl/cycle" in
  let a1 = with_write_lock h1 (fun () -> malloc h1 (Desc.array Desc.int 10) ~name:"first") in
  let h2 = open_segment ~create:false c2 "cl/cycle" in
  with_read_lock h2 (fun () -> ());
  (* Free and allocate in a single critical section. *)
  with_write_lock h1 (fun () ->
      free c1 a1;
      let b = malloc h1 (Desc.array Desc.int 10) ~name:"second" in
      Client.write_int c1 b 11);
  with_read_lock h2 (fun () ->
      Alcotest.(check bool) "first gone" true (Client.find_named_block h2 "first" = None);
      let b = Option.get (Client.find_named_block h2 "second") in
      Alcotest.(check int) "second value" 11 (Client.read_int c2 b.Mem.b_addr))

let test_malloc_free_same_cs_invisible () =
  let server, c1 = fresh () in
  let c2 = direct_client server in
  let h1 = open_segment c1 "cl/ephemeral" in
  with_write_lock h1 (fun () ->
      let a = malloc h1 Desc.int ~name:"temp" in
      Client.write_int c1 a 5;
      free c1 a);
  let h2 = open_segment ~create:false c2 "cl/ephemeral" in
  with_read_lock h2 (fun () ->
      Alcotest.(check int) "ephemeral block never transmitted" 0
        (List.length (Client.blocks h2)))

let test_coherence_getter () =
  let _server, c = fresh () in
  let h = open_segment c "cl/coherence" in
  Alcotest.(check bool) "default full" true (Client.coherence h = Proto.Full);
  set_coherence h (Proto.Delta 7);
  Alcotest.(check bool) "updated" true (Client.coherence h = Proto.Delta 7)

(* Randomized convergence: a writer performs random typed writes; after each
   critical section a reader must see an identical byte-for-byte view
   (modulo architecture layout) of every primitive. *)
let prop_random_convergence =
  QCheck.Test.make ~name:"random writes converge across architectures" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 99) small_int))
    (fun writes ->
      let server = start_server () in
      let w = direct_client ~arch:Arch.x86_32 server in
      let r = direct_client ~arch:Arch.mips32 server in
      let elem =
        Desc.structure
          [
            Desc.field "i" Desc.int;
            Desc.field "d" Desc.double;
            Desc.field "s" (Desc.string 8);
          ]
      in
      let hw = open_segment w "cl/converge" in
      let aw = with_write_lock hw (fun () -> malloc hw (Desc.array elem 100) ~name:"xs") in
      let hr = open_segment ~create:false r "cl/converge" in
      with_read_lock hr (fun () -> ());
      (* Apply the writes a few per critical section. *)
      let rec chunks = function
        | [] -> []
        | l ->
          let n = min 7 (List.length l) in
          let rec split i acc = function
            | x :: rest when i < n -> split (i + 1) (x :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let c, rest = split 0 [] l in
          c :: chunks rest
      in
      (* Strides and field offsets differ per architecture. *)
      let field c name = fst (offset c elem [ F name ]) in
      let stride c = Types.size (Types.layout (Types.local (Client.arch c)) elem) in
      let sw = stride w and sr = stride r in
      List.iter
        (fun chunk ->
          with_write_lock hw (fun () ->
              List.iter
                (fun (idx, v) ->
                  let base = aw + (idx * sw) in
                  Client.write_int w (base + field w "i") v;
                  Client.write_double w (base + field w "d") (float_of_int v /. 3.);
                  Client.write_string w ~capacity:8 (base + field w "s")
                    (string_of_int (v mod 1000)))
                chunk))
        (chunks writes);
      (* Compare every element. *)
      let ar = (Option.get (Client.find_named_block hr "xs")).Mem.b_addr in
      rl_acquire hr;
      let ok = ref true in
      for idx = 0 to 99 do
        let bw = aw + (idx * sw) and br = ar + (idx * sr) in
        if
          Client.read_int w (bw + field w "i") <> Client.read_int r (br + field r "i")
          || Client.read_double w (bw + field w "d") <> Client.read_double r (br + field r "d")
          || Client.read_string w ~capacity:8 (bw + field w "s")
             <> Client.read_string r ~capacity:8 (br + field r "s")
        then ok := false
      done;
      rl_release hr;
      !ok)

let suite =
  ( "client",
    [
      Alcotest.test_case "desc builders" `Quick test_desc_builders;
      Alcotest.test_case "offset paths" `Quick test_offset_paths;
      Alcotest.test_case "lock helpers" `Quick test_with_lock_helpers;
      Alcotest.test_case "MIP errors" `Quick test_mip_error_cases;
      Alcotest.test_case "name validation" `Quick test_segment_name_validation;
      Alcotest.test_case "invalid descriptor" `Quick test_invalid_descriptor_rejected;
      Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
      Alcotest.test_case "twin pages counted" `Quick test_twin_pages_counted;
      Alcotest.test_case "multiple segments" `Quick test_multiple_segments_one_client;
      Alcotest.test_case "long truncation" `Quick test_long_truncation_32bit;
      Alcotest.test_case "busy retry loopback" `Quick test_busy_retry_with_loopback;
      Alcotest.test_case "forced diff mode" `Quick test_forced_no_diff_off;
      Alcotest.test_case "free then allocate" `Quick test_free_then_allocate_propagates;
      Alcotest.test_case "ephemeral block" `Quick test_malloc_free_same_cs_invisible;
      Alcotest.test_case "coherence getter" `Quick test_coherence_getter;
      QCheck_alcotest.to_alcotest prop_random_convergence;
    ] )
