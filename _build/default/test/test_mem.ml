(* Emulated memory: allocation, write barrier, twins, word diffing. *)

let int_lay arch n =
  Iw_types.layout (Iw_types.local arch) (Iw_types.Array (Iw_types.Prim Iw_arch.Int, n))

let make_heap ?(arch = Iw_arch.x86_32) () =
  let sp = Iw_mem.create_space arch in
  (sp, Iw_mem.create_heap sp ~seg_id:1)

let test_alloc_basic () =
  let sp, h = make_heap () in
  let b1 = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 10) in
  let b2 = Iw_mem.alloc h ~serial:2 ~desc_serial:1 (int_lay Iw_arch.x86_32 10) in
  Alcotest.(check bool) "distinct addrs" true (b1.Iw_mem.b_addr <> b2.Iw_mem.b_addr);
  Alcotest.(check int) "sizes" 40 b1.Iw_mem.b_size;
  Alcotest.(check int) "aligned" 0 (b1.Iw_mem.b_addr mod 8);
  (match Iw_mem.find_block sp (b1.Iw_mem.b_addr + 12) with
  | Some (b, off) ->
    Alcotest.(check int) "found serial" 1 b.Iw_mem.b_serial;
    Alcotest.(check int) "offset" 12 off
  | None -> Alcotest.fail "block not found");
  Alcotest.(check bool) "unmapped below" true (Iw_mem.find_block sp 0 = None)

let test_alloc_zeroed () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 4) in
  Iw_mem.store_prim sp Iw_arch.Int b.Iw_mem.b_addr 42;
  Iw_mem.free_block b;
  let b2 = Iw_mem.alloc h ~serial:2 ~desc_serial:1 (int_lay Iw_arch.x86_32 4) in
  Alcotest.(check int) "reused memory zeroed" 0 (Iw_mem.load_prim sp Iw_arch.Int b2.Iw_mem.b_addr)

let test_free_and_reuse () =
  let _sp, h = make_heap () in
  let b1 = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 100) in
  let addr1 = b1.Iw_mem.b_addr in
  Iw_mem.free_block b1;
  (try
     Iw_mem.free_block b1;
     Alcotest.fail "double free should raise"
   with Invalid_argument _ -> ());
  let b2 = Iw_mem.alloc h ~serial:2 ~desc_serial:1 (int_lay Iw_arch.x86_32 100) in
  Alcotest.(check int) "space reused" addr1 b2.Iw_mem.b_addr

let test_free_coalescing () =
  let _sp, h = make_heap () in
  let lay = int_lay Iw_arch.x86_32 25 in
  let b1 = Iw_mem.alloc h ~serial:1 ~desc_serial:1 lay in
  let b2 = Iw_mem.alloc h ~serial:2 ~desc_serial:1 lay in
  let b3 = Iw_mem.alloc h ~serial:3 ~desc_serial:1 lay in
  ignore (b3 : Iw_mem.block);
  Iw_mem.free_block b1;
  Iw_mem.free_block b2;
  (* Coalesced b1+b2 (200 bytes) must satisfy a 200-byte request. *)
  let big = Iw_mem.alloc h ~serial:4 ~desc_serial:1 (int_lay Iw_arch.x86_32 50) in
  Alcotest.(check int) "coalesced region reused" b1.Iw_mem.b_addr big.Iw_mem.b_addr

let test_heap_growth () =
  let _sp, h = make_heap () in
  (* Allocate more than one subsegment's worth. *)
  let blocks =
    List.init 20 (fun i ->
        Iw_mem.alloc h ~serial:(i + 1) ~desc_serial:1 (int_lay Iw_arch.x86_32 1024))
  in
  Alcotest.(check int) "all live" 20 (List.length (Iw_mem.heap_blocks h));
  Alcotest.(check bool) "grew" true (Iw_mem.heap_bytes h >= 20 * 4096);
  List.iter Iw_mem.free_block blocks;
  Alcotest.(check int) "all freed" 0 (List.length (Iw_mem.heap_blocks h))

let test_big_block () =
  let sp, h = make_heap () in
  (* A block bigger than the minimum subsegment. *)
  let lay = int_lay Iw_arch.x86_32 (1 lsl 20) in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 lay in
  Alcotest.(check int) "4MB block" (4 lsl 20) b.Iw_mem.b_size;
  Iw_mem.store_prim sp Iw_arch.Int (b.Iw_mem.b_addr + (4 lsl 20) - 4) 7;
  Alcotest.(check int) "end accessible" 7
    (Iw_mem.load_prim sp Iw_arch.Int (b.Iw_mem.b_addr + (4 lsl 20) - 4))

let test_write_barrier_twins () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 4096) in
  Iw_mem.protect h;
  Alcotest.(check int) "no twins yet" 0 (Iw_mem.twinned_pages h);
  Iw_mem.store_prim sp Iw_arch.Int b.Iw_mem.b_addr 1;
  Alcotest.(check int) "one twin after first store" 1 (Iw_mem.twinned_pages h);
  Iw_mem.store_prim sp Iw_arch.Int (b.Iw_mem.b_addr + 8) 2;
  Alcotest.(check int) "same page, still one twin" 1 (Iw_mem.twinned_pages h);
  Iw_mem.store_prim sp Iw_arch.Int (b.Iw_mem.b_addr + 8192) 3;
  Alcotest.(check int) "second page twinned" 2 (Iw_mem.twinned_pages h);
  Iw_mem.unprotect h;
  Alcotest.(check int) "twins dropped" 0 (Iw_mem.twinned_pages h)

let test_modified_runs_simple () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 1024) in
  Iw_mem.protect h;
  Iw_mem.store_prim sp Iw_arch.Int (b.Iw_mem.b_addr + 100) 42;
  (match Iw_mem.modified_runs h with
  | [ (addr, len) ] ->
    Alcotest.(check int) "run addr" (b.Iw_mem.b_addr + 100) addr;
    Alcotest.(check int) "run len" 4 len
  | runs -> Alcotest.failf "expected one run, got %d" (List.length runs));
  Iw_mem.unprotect h

let test_modified_runs_splicing () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 1024) in
  let base = b.Iw_mem.b_addr in
  Iw_mem.protect h;
  (* Words 0 and 3 changed; gap of 2 unchanged words is spliced. *)
  Iw_mem.store_prim sp Iw_arch.Int base 1;
  Iw_mem.store_prim sp Iw_arch.Int (base + 12) 1;
  (match Iw_mem.modified_runs h with
  | [ (addr, len) ] ->
    Alcotest.(check int) "spliced start" base addr;
    Alcotest.(check int) "spliced len" 16 len
  | runs -> Alcotest.failf "expected one spliced run, got %d" (List.length runs));
  Iw_mem.unprotect h;
  (* Gap of 3 words is NOT spliced. *)
  Iw_mem.protect h;
  Iw_mem.store_prim sp Iw_arch.Int base 2;
  Iw_mem.store_prim sp Iw_arch.Int (base + 16) 2;
  (match Iw_mem.modified_runs h with
  | [ (a1, l1); (a2, l2) ] ->
    Alcotest.(check int) "run1" base a1;
    Alcotest.(check int) "len1" 4 l1;
    Alcotest.(check int) "run2" (base + 16) a2;
    Alcotest.(check int) "len2" 4 l2
  | runs -> Alcotest.failf "expected two runs, got %d" (List.length runs));
  Iw_mem.unprotect h

let test_splice_gap_configurable () =
  let sp, h = make_heap () in
  Iw_mem.set_splice_gap sp 0;
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 1024) in
  let base = b.Iw_mem.b_addr in
  Iw_mem.protect h;
  Iw_mem.store_prim sp Iw_arch.Int base 1;
  Iw_mem.store_prim sp Iw_arch.Int (base + 8) 1;
  (match Iw_mem.modified_runs h with
  | [ _; _ ] -> ()
  | runs -> Alcotest.failf "splicing disabled: expected 2 runs, got %d" (List.length runs));
  Iw_mem.unprotect h

let test_runs_cross_page_boundary () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 4096) in
  (* Block starts page-aligned because it is the first in a fresh heap. *)
  let base = b.Iw_mem.b_addr in
  Iw_mem.protect h;
  for i = 1020 to 1030 do
    Iw_mem.store_prim sp Iw_arch.Int (base + (i * 4)) i
  done;
  (match Iw_mem.modified_runs h with
  | [ (addr, len) ] ->
    Alcotest.(check int) "crosses page" (base + 4080) addr;
    Alcotest.(check int) "len" 44 len
  | runs -> Alcotest.failf "expected one merged run, got %d" (List.length runs));
  Iw_mem.unprotect h

let test_unprotected_stores_produce_no_runs () =
  let sp, h = make_heap () in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 64) in
  Iw_mem.store_prim sp Iw_arch.Int b.Iw_mem.b_addr 5;
  Alcotest.(check int) "no twins, no runs" 0 (List.length (Iw_mem.modified_runs h))

let test_typed_accessors () =
  let sp, _h = make_heap ~arch:Iw_arch.sparc32 () in
  let h = Iw_mem.create_heap sp ~seg_id:2 in
  let lay =
    Iw_types.layout (Iw_types.local Iw_arch.sparc32)
      (Iw_types.Struct
         [|
           { fname = "c"; ftype = Prim Iw_arch.Char };
           { fname = "s"; ftype = Prim Iw_arch.Short };
           { fname = "d"; ftype = Prim Iw_arch.Double };
           { fname = "str"; ftype = Prim (Iw_arch.String 16) };
         |])
  in
  let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 lay in
  let a = b.Iw_mem.b_addr in
  let off i = (Iw_types.locate_prim lay i).Iw_types.l_off in
  Iw_mem.store_prim sp Iw_arch.Char (a + off 0) (Char.code 'x');
  Iw_mem.store_prim sp Iw_arch.Short (a + off 1) (-7);
  Iw_mem.store_double sp (a + off 2) 2.75;
  Iw_mem.store_string sp ~capacity:16 (a + off 3) "hi there";
  Alcotest.(check int) "char" (Char.code 'x') (Iw_mem.load_prim sp Iw_arch.Char (a + off 0));
  Alcotest.(check int) "short" (-7) (Iw_mem.load_prim sp Iw_arch.Short (a + off 1));
  Alcotest.(check (float 0.)) "double" 2.75 (Iw_mem.load_double sp (a + off 2));
  Alcotest.(check string) "string" "hi there" (Iw_mem.load_string sp ~capacity:16 (a + off 3))

let test_next_block () =
  let sp, h = make_heap () in
  let lay = int_lay Iw_arch.x86_32 16 in
  let b1 = Iw_mem.alloc h ~serial:1 ~desc_serial:1 lay in
  let b2 = Iw_mem.alloc h ~serial:2 ~desc_serial:1 lay in
  Iw_mem.free_block b1;
  (match Iw_mem.next_block sp b1.Iw_mem.b_addr with
  | Some b -> Alcotest.(check int) "skips freed" 2 b.Iw_mem.b_serial
  | None -> Alcotest.fail "expected next block");
  match Iw_mem.next_block sp (b2.Iw_mem.b_addr + b2.Iw_mem.b_size) with
  | None -> ()
  | Some b -> Alcotest.failf "expected no block after the last, got %d" b.Iw_mem.b_serial

let prop_diff_finds_exact_words =
  (* Store into random word offsets; every modified word must be covered by
     some run, and runs must lie within the block. *)
  QCheck.Test.make ~name:"modified_runs covers exactly the stores (mod splicing)"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 1023))
    (fun words ->
      let sp = Iw_mem.create_space Iw_arch.x86_32 in
      let h = Iw_mem.create_heap sp ~seg_id:1 in
      let b = Iw_mem.alloc h ~serial:1 ~desc_serial:1 (int_lay Iw_arch.x86_32 1024) in
      Iw_mem.protect h;
      List.iter (fun w -> Iw_mem.store_prim sp Iw_arch.Int (b.Iw_mem.b_addr + (w * 4)) 0xdead) words
      ;
      let runs = Iw_mem.modified_runs h in
      Iw_mem.unprotect h;
      let covered (a, l) w =
        let wa = b.Iw_mem.b_addr + (w * 4) in
        wa >= a && wa + 4 <= a + l
      in
      List.for_all (fun w -> List.exists (fun r -> covered r w) runs) words
      && List.for_all
           (fun (a, l) -> a >= b.Iw_mem.b_addr && a + l <= b.Iw_mem.b_addr + b.Iw_mem.b_size)
           runs)

let suite =
  ( "mem",
    [
      Alcotest.test_case "alloc basics" `Quick test_alloc_basic;
      Alcotest.test_case "alloc zeroes" `Quick test_alloc_zeroed;
      Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
      Alcotest.test_case "free coalescing" `Quick test_free_coalescing;
      Alcotest.test_case "heap growth" `Quick test_heap_growth;
      Alcotest.test_case "big block" `Quick test_big_block;
      Alcotest.test_case "write barrier twins" `Quick test_write_barrier_twins;
      Alcotest.test_case "modified runs" `Quick test_modified_runs_simple;
      Alcotest.test_case "run splicing" `Quick test_modified_runs_splicing;
      Alcotest.test_case "splice gap configurable" `Quick test_splice_gap_configurable;
      Alcotest.test_case "runs cross pages" `Quick test_runs_cross_page_boundary;
      Alcotest.test_case "no runs without protect" `Quick test_unprotected_stores_produce_no_runs;
      Alcotest.test_case "typed accessors" `Quick test_typed_accessors;
      Alcotest.test_case "next_block" `Quick test_next_block;
      QCheck_alcotest.to_alcotest prop_diff_finds_exact_words;
    ] )
