test/test_arch.ml: Alcotest Bytes Float Iw_arch List QCheck QCheck_alcotest
