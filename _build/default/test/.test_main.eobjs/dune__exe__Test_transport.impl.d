test/test_transport.ml: Alcotest Fun Interweave Iw_arch Iw_client Iw_mem Iw_server Iw_transport Iw_types Option String Thread Unix
