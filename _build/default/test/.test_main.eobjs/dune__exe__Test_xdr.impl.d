test/test_xdr.ml: Alcotest Iw_arch Iw_mem Iw_types Iw_wire Iw_xdr List
