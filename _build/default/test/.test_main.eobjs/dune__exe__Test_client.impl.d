test/test_client.ml: Alcotest Arch Client Desc Gen Interweave Iw_arch List Mem Option Printf Proto QCheck QCheck_alcotest Thread Types
