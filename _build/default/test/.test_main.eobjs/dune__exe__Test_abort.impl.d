test/test_abort.ml: Alcotest Client Desc Interweave Mem Option Printf
