test/test_proto.ml: Alcotest Format Iw_arch Iw_proto Iw_transport Iw_types Iw_wire List String Thread
