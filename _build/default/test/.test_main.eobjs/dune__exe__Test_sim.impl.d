test/test_sim.ml: Alcotest Array Interweave Iw_arch Iw_client Iw_sim
