test/test_idl.ml: Alcotest Array Iw_arch Iw_idl Iw_types List String
