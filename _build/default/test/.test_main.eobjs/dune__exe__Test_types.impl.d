test/test_types.ml: Alcotest Array Fun Iw_arch Iw_types List Printf QCheck QCheck_alcotest Registry
