test/test_fuzz.ml: Arch Array Char Client Desc Filename Gen Interweave Iw_arch List Mem Option Printf QCheck QCheck_alcotest Server Sys Types
