test/test_system.ml: Alcotest Arch Client Desc Filename Interweave List Mem Option Printf Proto Server Sys
