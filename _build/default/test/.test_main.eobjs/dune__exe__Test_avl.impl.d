test/test_avl.ml: Alcotest Int Iw_avl List Option QCheck QCheck_alcotest
