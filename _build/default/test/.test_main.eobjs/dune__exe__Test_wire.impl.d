test/test_wire.ml: Alcotest Buf Bytes Diff Fun Gen Iw_arch Iw_types Iw_wire List Printf QCheck QCheck_alcotest Reader
