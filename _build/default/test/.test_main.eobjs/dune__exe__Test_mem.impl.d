test/test_mem.ml: Alcotest Char Gen Iw_arch Iw_mem Iw_types List QCheck QCheck_alcotest
