test/test_seqmine.ml: Alcotest Array Hashtbl Interweave Iw_arch Iw_client Iw_seqmine Iw_types List Option Printf
