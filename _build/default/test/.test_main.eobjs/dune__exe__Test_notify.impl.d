test/test_notify.ml: Alcotest Client Desc Interweave Iw_client Iw_server Mem Option Thread
