test/test_server.ml: Alcotest Array Filename Iw_arch Iw_proto Iw_server Iw_types Iw_wire List String Sys
