(* The adaptive polling/notification protocol (paper, Section 2.2). *)

open Interweave

let setup () =
  let server = start_server () in
  let writer = direct_client server in
  let reader = direct_client server in
  let hw = open_segment writer "notify/seg" in
  let a =
    with_write_lock hw (fun () ->
        let a = malloc hw (Desc.array Desc.int 16) ~name:"xs" in
        Client.write_int writer a 1;
        a)
  in
  let hr = open_segment ~create:false reader "notify/seg" in
  with_read_lock hr (fun () -> ());
  (server, writer, reader, hw, hr, a)

let test_subscribed_reads_skip_server () =
  let _server, _writer, reader, _hw, hr, _a = setup () in
  Client.subscribe hr;
  Alcotest.(check bool) "subscribed" true (Client.subscribed hr);
  let calls0 = (Client.stats reader).Client.calls in
  for _ = 1 to 20 do
    with_read_lock hr (fun () -> ())
  done;
  Alcotest.(check int) "no server communication while nothing changes" calls0
    (Client.stats reader).Client.calls

let test_notification_triggers_update () =
  let _server, writer, reader, hw, hr, a = setup () in
  Client.subscribe hr;
  with_read_lock hr (fun () -> ());
  (* Writer publishes a change: the reader must be notified and fetch it. *)
  with_write_lock hw (fun () -> Client.write_int writer a 42);
  Alcotest.(check bool) "notification received" true
    ((Client.stats reader).Client.notifications >= 1);
  with_read_lock hr (fun () ->
      let b = (Option.get (Client.find_named_block hr "xs")).Mem.b_addr in
      Alcotest.(check int) "fresh value" 42 (Client.read_int reader b));
  (* And after that fetch, reads skip again. *)
  let calls0 = (Client.stats reader).Client.calls in
  with_read_lock hr (fun () -> ());
  Alcotest.(check int) "skipping again" calls0 (Client.stats reader).Client.calls

let test_writer_not_notified_of_own_writes () =
  let _server, writer, _reader, hw, _hr, a = setup () in
  Client.subscribe hw;
  Client.reset_stats writer;
  with_write_lock hw (fun () -> Client.write_int writer a 9);
  Alcotest.(check int) "no self-notification" 0 (Client.stats writer).Client.notifications

let test_adaptive_auto_subscribe () =
  let _server, _writer, _reader, _hw, hr, _a = setup () in
  Alcotest.(check bool) "not subscribed initially" false (Client.subscribed hr);
  (* Wasted polls: the library switches from polling to notification. *)
  for _ = 1 to 6 do
    with_read_lock hr (fun () -> ())
  done;
  Alcotest.(check bool) "auto-subscribed after wasted polls" true (Client.subscribed hr)

let test_auto_subscribe_disabled () =
  let _server, _writer, reader, _hw, hr, _a = setup () in
  (Client.options reader).Client.auto_subscribe <- false;
  for _ = 1 to 10 do
    with_read_lock hr (fun () -> ())
  done;
  Alcotest.(check bool) "stays polling" false (Client.subscribed hr)

let test_unsubscribe_returns_to_polling () =
  let _server, _writer, reader, _hw, hr, _a = setup () in
  (Client.options reader).Client.auto_subscribe <- false;
  Client.subscribe hr;
  with_read_lock hr (fun () -> ());
  Client.unsubscribe hr;
  Alcotest.(check bool) "unsubscribed" false (Client.subscribed hr);
  let calls0 = (Client.stats reader).Client.calls in
  with_read_lock hr (fun () -> ());
  Alcotest.(check bool) "polling resumed" true ((Client.stats reader).Client.calls > calls0)

let test_no_channel_rejected () =
  let server = start_server () in
  (* A bare client on a raw link has no notification channel. *)
  let c = Iw_client.connect (Iw_server.direct_link server) in
  let h = Iw_client.open_segment c "notify/raw" in
  try
    Client.subscribe h;
    Alcotest.fail "subscribe without a channel must fail"
  with Client.Error _ -> ()

let test_notifications_over_loopback () =
  let server = start_server () in
  let writer = loopback_client server in
  let reader = loopback_client server in
  let hw = open_segment writer "notify/loop" in
  let a =
    with_write_lock hw (fun () ->
        let a = malloc hw Desc.int ~name:"v" in
        Client.write_int writer a 1;
        a)
  in
  let hr = open_segment ~create:false reader "notify/loop" in
  with_read_lock hr (fun () -> ());
  Client.subscribe hr;
  with_write_lock hw (fun () -> Client.write_int writer a 2);
  (* The push crosses a thread boundary; allow it a moment. *)
  let rec wait_notified n =
    if n > 0 && (Client.stats reader).Client.notifications = 0 then begin
      Thread.delay 0.01;
      wait_notified (n - 1)
    end
  in
  wait_notified 100;
  Alcotest.(check bool) "notification over loopback" true
    ((Client.stats reader).Client.notifications >= 1);
  with_read_lock hr (fun () ->
      let b = (Option.get (Client.find_named_block hr "v")).Mem.b_addr in
      Alcotest.(check int) "value" 2 (Client.read_int reader b));
  Client.disconnect writer;
  Client.disconnect reader

let test_stale_flag_not_lost_across_race () =
  (* Clearing the flag happens before the server call, so a change committed
     after the response arrives is never missed. *)
  let _server, writer, reader, hw, hr, a = setup () in
  Client.subscribe hr;
  with_read_lock hr (fun () -> ());
  with_write_lock hw (fun () -> Client.write_int writer a 5);
  with_read_lock hr (fun () -> ());
  with_write_lock hw (fun () -> Client.write_int writer a 6);
  with_read_lock hr (fun () ->
      let b = (Option.get (Client.find_named_block hr "xs")).Mem.b_addr in
      Alcotest.(check int) "second change seen" 6 (Client.read_int reader b))

let suite =
  ( "notify",
    [
      Alcotest.test_case "subscribed reads skip server" `Quick test_subscribed_reads_skip_server;
      Alcotest.test_case "notification triggers update" `Quick test_notification_triggers_update;
      Alcotest.test_case "no self-notification" `Quick test_writer_not_notified_of_own_writes;
      Alcotest.test_case "adaptive auto-subscribe" `Quick test_adaptive_auto_subscribe;
      Alcotest.test_case "auto-subscribe disabled" `Quick test_auto_subscribe_disabled;
      Alcotest.test_case "unsubscribe" `Quick test_unsubscribe_returns_to_polling;
      Alcotest.test_case "no channel rejected" `Quick test_no_channel_rejected;
      Alcotest.test_case "loopback notifications" `Quick test_notifications_over_loopback;
      Alcotest.test_case "no lost changes" `Quick test_stale_flag_not_lost_across_race;
    ] )
