(* The Astroflow-style simulation substrate. *)

let make () =
  let server = Interweave.start_server () in
  let simc = Interweave.direct_client ~arch:Iw_arch.alpha64 server in
  let sim = Iw_sim.create simc ~segment:"sim/test" ~width:16 ~height:8 in
  (server, sim)

let test_create_dimensions () =
  let _server, sim = make () in
  Alcotest.(check int) "width" 16 (Iw_sim.width sim);
  Alcotest.(check int) "height" 8 (Iw_sim.height sim);
  Alcotest.(check int) "no steps yet" 0 (Iw_sim.steps_published sim)

let test_step_publishes () =
  let _server, sim = make () in
  Iw_sim.step sim;
  Iw_sim.step sim;
  Alcotest.(check int) "two steps" 2 (Iw_sim.steps_published sim);
  let frame = Iw_sim.read_frame sim in
  Alcotest.(check int) "frame size" (16 * 8) (Array.length frame);
  Alcotest.(check bool) "source injected some density" true
    (Array.exists (fun v -> v > 0.) frame)

let test_viewer_sees_identical_frame () =
  let server, sim = make () in
  for _ = 1 to 5 do
    Iw_sim.step sim
  done;
  let vizc = Interweave.direct_client ~arch:Iw_arch.sparc32 server in
  let viz = Iw_sim.attach vizc ~segment:"sim/test" in
  Alcotest.(check int) "viewer dims" 16 (Iw_sim.width viz);
  let sum_sim = Iw_sim.checksum sim and sum_viz = Iw_sim.checksum viz in
  Alcotest.(check (float 1e-9)) "checksums identical across archs" sum_sim sum_viz;
  Alcotest.(check int) "viewer sees the step counter" 5 (Iw_sim.steps_published viz)

let test_determinism () =
  let _s1, sim1 = make () in
  let server2 = Interweave.start_server () in
  let c2 = Interweave.direct_client ~arch:Iw_arch.x86_32 server2 in
  let sim2 = Iw_sim.create c2 ~segment:"sim/test" ~width:16 ~height:8 in
  for _ = 1 to 8 do
    Iw_sim.step sim1;
    Iw_sim.step sim2
  done;
  Alcotest.(check (float 1e-9)) "same physics on different archs"
    (Iw_sim.checksum sim1) (Iw_sim.checksum sim2)

let test_temporal_bound_lets_viewer_lag () =
  let server, sim = make () in
  Iw_sim.step sim;
  let vizc = Interweave.direct_client server in
  let viz = Iw_sim.attach vizc ~segment:"sim/test" in
  Iw_sim.set_viewer_interval viz 3600.;
  Alcotest.(check int) "initial frame" 1 (Iw_sim.steps_published viz);
  Iw_sim.step sim;
  Iw_sim.step sim;
  (* Within the temporal bound: the viewer's copy may (must, here) lag. *)
  Alcotest.(check int) "viewer still sees step 1" 1 (Iw_sim.steps_published viz);
  (* Dropping the bound to zero forces a fetch. *)
  Iw_sim.set_viewer_interval viz 0.;
  Alcotest.(check int) "viewer catches up" 3 (Iw_sim.steps_published viz)

let test_viewer_cannot_step () =
  let server, sim = make () in
  Iw_sim.step sim;
  let vizc = Interweave.direct_client server in
  let viz = Iw_sim.attach vizc ~segment:"sim/test" in
  try
    Iw_sim.step viz;
    Alcotest.fail "viewers must not step"
  with Invalid_argument _ -> ()

let test_density_bounds () =
  let _server, sim = make () in
  Iw_sim.step sim;
  ignore (Iw_sim.density_at sim ~x:0 ~y:0 : float);
  ignore (Iw_sim.density_at sim ~x:15 ~y:7 : float);
  try
    ignore (Iw_sim.density_at sim ~x:16 ~y:0 : float);
    Alcotest.fail "out of bounds accepted"
  with Invalid_argument _ -> ()

let test_steering_strength () =
  let server, sim = make () in
  Iw_sim.step sim;
  let vizc = Interweave.direct_client server in
  let viz = Iw_sim.attach vizc ~segment:"sim/test" in
  Alcotest.(check (float 1e-9)) "default strength" 10. (Iw_sim.source_strength viz);
  (* The viewer turns the source off; the field must now decay. *)
  Iw_sim.set_source_strength viz 0.;
  Alcotest.(check (float 1e-9)) "simulator sees the knob" 0. (Iw_sim.source_strength sim);
  let before = Iw_sim.checksum sim in
  for _ = 1 to 10 do
    Iw_sim.step sim
  done;
  Alcotest.(check bool) "field decays with source off" true (Iw_sim.checksum sim < before);
  (* Turn it up: the field grows again. *)
  Iw_sim.set_source_strength viz 50.;
  let low = Iw_sim.checksum sim in
  for _ = 1 to 5 do
    Iw_sim.step sim
  done;
  Alcotest.(check bool) "field grows with a strong source" true (Iw_sim.checksum sim > low)

let test_steering_pause () =
  let server, sim = make () in
  Iw_sim.step sim;
  let vizc = Interweave.direct_client server in
  let viz = Iw_sim.attach vizc ~segment:"sim/test" in
  Iw_sim.set_paused viz true;
  Alcotest.(check bool) "paused visible" true (Iw_sim.paused sim);
  let frozen = Iw_sim.checksum sim in
  for _ = 1 to 5 do
    Iw_sim.step sim
  done;
  Alcotest.(check (float 1e-9)) "physics frozen while paused" frozen (Iw_sim.checksum sim);
  Alcotest.(check int) "step counter still advances" 6 (Iw_sim.steps_published sim);
  Iw_sim.set_paused viz false;
  Iw_sim.step sim;
  Alcotest.(check bool) "physics resumes" true (Iw_sim.checksum sim <> frozen)

let test_attach_requires_initialized () =
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  let _seg = Interweave.open_segment c "sim/empty" in
  try
    ignore (Iw_sim.attach c ~segment:"sim/empty" : Iw_sim.t);
    Alcotest.fail "attach to uninitialized segment should fail"
  with Invalid_argument _ | Iw_client.Error _ -> ()

let suite =
  ( "sim",
    [
      Alcotest.test_case "create dimensions" `Quick test_create_dimensions;
      Alcotest.test_case "step publishes" `Quick test_step_publishes;
      Alcotest.test_case "viewer identical frame" `Quick test_viewer_sees_identical_frame;
      Alcotest.test_case "deterministic physics" `Quick test_determinism;
      Alcotest.test_case "temporal bound lag" `Quick test_temporal_bound_lets_viewer_lag;
      Alcotest.test_case "viewer cannot step" `Quick test_viewer_cannot_step;
      Alcotest.test_case "density bounds" `Quick test_density_bounds;
      Alcotest.test_case "steering strength" `Quick test_steering_strength;
      Alcotest.test_case "steering pause" `Quick test_steering_pause;
      Alcotest.test_case "attach requires init" `Quick test_attach_requires_initialized;
    ] )
