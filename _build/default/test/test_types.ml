(* Type descriptors: layout under different conventions, primitive offsets,
   isomorphic optimization, registries. *)

open Iw_types

let int_ = Prim Iw_arch.Int

let double_ = Prim Iw_arch.Double

let char_ = Prim Iw_arch.Char

let fld n t = { fname = n; ftype = t }

(* The structure from the paper's Figure 3: three ints, two doubles, and a
   pointer, with d0 and i1 interleaved so padding appears on x86. *)
let fig3 =
  Struct
    [|
      fld "i0" int_; fld "d0" double_; fld "i1" int_; fld "i2" int_;
      fld "d1" double_; fld "ptr" (Ptr "int");
    |]

let test_prim_count () =
  Alcotest.(check int) "prim" 1 (prim_count int_);
  Alcotest.(check int) "array" 12 (prim_count (Array (int_, 12)));
  Alcotest.(check int) "fig3" 6 (prim_count fig3);
  Alcotest.(check int) "nested" 20 (prim_count (Array (Struct [| fld "a" int_; fld "b" double_ |], 10)));
  Alcotest.(check int) "string counts as one" 1 (prim_count (Prim (Iw_arch.String 256)))

let test_validate () =
  Alcotest.(check bool) "ok" true (validate fig3 = Ok ());
  Alcotest.(check bool) "empty struct" true (validate (Struct [||]) <> Ok ());
  Alcotest.(check bool) "zero array" true (validate (Array (int_, 0)) <> Ok ());
  Alcotest.(check bool) "tiny string" true (validate (Prim (Iw_arch.String 1)) <> Ok ())

let test_x86_layout () =
  let lay = layout (local Iw_arch.x86_32) fig3 in
  (* x86: doubles align to 4, so no padding anywhere; ptr is 4 bytes. *)
  Alcotest.(check int) "size" 32 (size lay);
  Alcotest.(check int) "align" 4 (align lay);
  let offs = List.init 6 (fun i -> (locate_prim lay i).l_off) in
  Alcotest.(check (list int)) "offsets" [ 0; 4; 12; 16; 20; 28 ] offs

let test_sparc_layout () =
  let lay = layout (local Iw_arch.sparc32) fig3 in
  (* sparc: doubles align to 8 -> padding after i0 and after i2. *)
  Alcotest.(check int) "size" 40 (size lay);
  Alcotest.(check int) "align" 8 (align lay);
  let offs = List.init 6 (fun i -> (locate_prim lay i).l_off) in
  Alcotest.(check (list int)) "offsets" [ 0; 8; 16; 20; 24; 32 ] offs

let test_alpha_layout () =
  let lay = layout (local Iw_arch.alpha64) fig3 in
  (* alpha: 8-byte pointers and doubles. *)
  let offs = List.init 6 (fun i -> (locate_prim lay i).l_off) in
  Alcotest.(check (list int)) "offsets" [ 0; 8; 16; 20; 24; 32 ] offs;
  Alcotest.(check int) "size" 40 (size lay)

let test_wire_layout () =
  let lay = layout wire fig3 in
  (* wire: packed, int 4, double 8, pointer slot 4. *)
  Alcotest.(check int) "size" 32 (size lay);
  let offs = List.init 6 (fun i -> (locate_prim lay i).l_off) in
  Alcotest.(check (list int)) "offsets" [ 0; 4; 12; 16; 20; 28 ] offs

let test_locate_byte () =
  let lay = layout (local Iw_arch.sparc32) fig3 in
  let check_at off expected_index =
    match locate_byte lay off with
    | Some loc -> Alcotest.(check int) (Printf.sprintf "byte %d" off) expected_index loc.l_index
    | None -> Alcotest.failf "byte %d unexpectedly padding" off
  in
  check_at 0 0;
  check_at 3 0;
  check_at 8 1;
  check_at 15 1;
  check_at 20 3;
  (match locate_byte lay 5 with
  | None -> ()
  | Some _ -> Alcotest.fail "byte 5 should be padding on sparc");
  (match locate_byte lay 4096 with
  | None -> ()
  | Some _ -> Alcotest.fail "out of range should be None")

let test_locate_array () =
  let lay = layout (local Iw_arch.x86_32) (Array (fig3, 100)) in
  Alcotest.(check int) "pcount" 600 (layout_prim_count lay);
  let loc = locate_prim lay 594 in
  Alcotest.(check int) "element 99 first prim offset" (99 * 32) loc.l_off;
  match locate_byte lay ((50 * 32) + 12) with
  | Some loc -> Alcotest.(check int) "i1 of element 50" ((50 * 6) + 2) loc.l_index
  | None -> Alcotest.fail "expected a primitive"

let test_fold_prims_partial () =
  let lay = layout (local Iw_arch.x86_32) (Array (int_, 1000)) in
  let visited =
    fold_prims lay ~from:10 ~upto:15 ~init:[] ~f:(fun acc loc -> loc.l_index :: acc)
  in
  Alcotest.(check (list int)) "range" [ 14; 13; 12; 11; 10 ] visited;
  let offs =
    fold_prims lay ~from:997 ~upto:1000 ~init:[] ~f:(fun acc loc -> loc.l_off :: acc)
  in
  Alcotest.(check (list int)) "tail offsets" [ 3996; 3992; 3988 ] offs

let test_fold_prims_full_struct () =
  let lay = layout (local Iw_arch.sparc32) fig3 in
  let prims =
    fold_prims lay ~from:0 ~upto:6 ~init:[] ~f:(fun acc loc -> (loc.l_index, loc.l_off) :: acc)
    |> List.rev
  in
  Alcotest.(check int) "count" 6 (List.length prims);
  Alcotest.(check (list int)) "indices in order" [ 0; 1; 2; 3; 4; 5 ] (List.map fst prims)

let test_optimize_collapses_runs () =
  let s = Struct (Array.init 10 (fun i -> fld (Printf.sprintf "f%d" i) int_)) in
  (match optimize s with
  | Array (Prim Iw_arch.Int, 10) -> ()
  | d -> Alcotest.failf "expected int[10], got %a" pp d);
  let mixed =
    Struct [| fld "a" int_; fld "b" int_; fld "c" double_; fld "d" double_; fld "e" char_ |]
  in
  match optimize mixed with
  | Struct [| a; c; e |] ->
    Alcotest.(check bool) "a collapsed" true (a.ftype = Array (int_, 2));
    Alcotest.(check bool) "c collapsed" true (c.ftype = Array (double_, 2));
    Alcotest.(check bool) "e kept" true (e.ftype = char_)
  | d -> Alcotest.failf "unexpected shape %a" pp d

let test_optimize_flattens_arrays () =
  match optimize (Array (Array (int_, 4), 5)) with
  | Array (Prim Iw_arch.Int, 20) -> ()
  | d -> Alcotest.failf "expected int[20], got %a" pp d

let test_optimize_preserves_layout () =
  let descs = [ fig3; Array (fig3, 3); Struct (Array.init 32 (fun i -> fld (string_of_int i) int_)) ] in
  List.iter
    (fun d ->
      let d' = optimize d in
      Alcotest.(check int) "prim count" (prim_count d) (prim_count d');
      List.iter
        (fun arch ->
          let conv = local arch in
          let l = layout conv d and l' = layout conv d' in
          Alcotest.(check int) (arch.Iw_arch.name ^ " size") (size l) (size l');
          for i = 0 to prim_count d - 1 do
            let a = locate_prim l i and b = locate_prim l' i in
            if a.l_off <> b.l_off then
              Alcotest.failf "%s: prim %d moved %d -> %d" arch.Iw_arch.name i a.l_off b.l_off
          done)
        Iw_arch.all)
    descs

let test_registry () =
  let r = Registry.create () in
  let s1 = Registry.register r int_ in
  let s2 = Registry.register r fig3 in
  Alcotest.(check int) "same desc same serial" s1 (Registry.register r int_);
  Alcotest.(check bool) "distinct" true (s1 <> s2);
  Alcotest.(check bool) "find" true (Registry.find r s2 = Some fig3);
  Alcotest.(check bool) "serial_of" true (Registry.serial_of r fig3 = Some s2);
  Alcotest.(check int) "count" 2 (Registry.count r);
  let since = Registry.registered_since r s1 in
  Alcotest.(check int) "registered_since" 1 (List.length since)

let test_registry_adopt () =
  let r = Registry.create () in
  Registry.adopt r 7 fig3;
  Alcotest.(check bool) "adopted" true (Registry.find r 7 = Some fig3);
  Registry.adopt r 7 fig3;
  (* conflicting adoption must fail *)
  (try
     Registry.adopt r 7 int_;
     Alcotest.fail "expected conflict"
   with Invalid_argument _ -> ());
  (* serials continue after adopted ones *)
  let s = Registry.register r int_ in
  Alcotest.(check bool) "fresh serial after adopt" true (s > 7)

let test_registry_names () =
  let r = Registry.create () in
  Registry.define_name r "node" fig3;
  Alcotest.(check bool) "resolve" true (Registry.resolve_name r "node" = Some fig3);
  Registry.define_name r "node" fig3;
  (try
     Registry.define_name r "node" int_;
     Alcotest.fail "expected conflict"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "missing" true (Registry.resolve_name r "nope" = None)

(* Property: locate_prim and locate_byte are inverse on non-padding bytes. *)
let desc_gen =
  let open QCheck.Gen in
  let prim =
    oneofl
      [ int_; double_; char_; Prim Iw_arch.Short; Prim Iw_arch.Long; Prim Iw_arch.Float; Ptr "t" ]
  in
  let rec d n =
    if n = 0 then prim
    else
      frequency
        [
          (3, prim);
          (2, map2 (fun t k -> Array (t, 1 + k)) (d (n - 1)) (int_bound 5));
          ( 2,
            map
              (fun ts ->
                Struct (Array.of_list (List.mapi (fun i t -> fld (Printf.sprintf "f%d" i) t) ts)))
              (list_size (int_range 1 4) (d (n - 1))) );
        ]
  in
  d 3

let prop_locate_inverse =
  QCheck.Test.make ~name:"locate_prim/locate_byte inverse" ~count:300
    (QCheck.make desc_gen) (fun d ->
      List.for_all
        (fun arch ->
          let lay = layout (local arch) d in
          let n = prim_count d in
          List.for_all
            (fun i ->
              let loc = locate_prim lay i in
              match locate_byte lay loc.l_off with
              | Some loc' -> loc'.l_index = i && loc'.l_off = loc.l_off
              | None -> false)
            (List.init n Fun.id))
        Iw_arch.all)

let prop_fold_agrees_with_locate =
  QCheck.Test.make ~name:"fold_prims visits locate_prim positions" ~count:200
    (QCheck.make desc_gen) (fun d ->
      let lay = layout wire d in
      let n = prim_count d in
      let via_fold =
        fold_prims lay ~from:0 ~upto:n ~init:[] ~f:(fun acc loc -> (loc.l_index, loc.l_off) :: acc)
        |> List.rev
      in
      let via_locate = List.init n (fun i -> let l = locate_prim lay i in (l.l_index, l.l_off)) in
      via_fold = via_locate)

let suite =
  ( "types",
    [
      Alcotest.test_case "prim_count" `Quick test_prim_count;
      Alcotest.test_case "validate" `Quick test_validate;
      Alcotest.test_case "x86 layout" `Quick test_x86_layout;
      Alcotest.test_case "sparc layout" `Quick test_sparc_layout;
      Alcotest.test_case "alpha layout" `Quick test_alpha_layout;
      Alcotest.test_case "wire layout" `Quick test_wire_layout;
      Alcotest.test_case "locate_byte" `Quick test_locate_byte;
      Alcotest.test_case "locate in arrays" `Quick test_locate_array;
      Alcotest.test_case "fold_prims partial" `Quick test_fold_prims_partial;
      Alcotest.test_case "fold_prims struct" `Quick test_fold_prims_full_struct;
      Alcotest.test_case "optimize collapses" `Quick test_optimize_collapses_runs;
      Alcotest.test_case "optimize flattens" `Quick test_optimize_flattens_arrays;
      Alcotest.test_case "optimize preserves layout" `Quick test_optimize_preserves_layout;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "registry adopt" `Quick test_registry_adopt;
      Alcotest.test_case "registry names" `Quick test_registry_names;
      QCheck_alcotest.to_alcotest prop_locate_inverse;
      QCheck_alcotest.to_alcotest prop_fold_agrees_with_locate;
    ] )
