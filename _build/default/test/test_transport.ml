(* Transports: loopback queue pair and TCP framing. *)

let test_loopback_roundtrip () =
  let a, b = Iw_transport.loopback () in
  a.Iw_transport.send "hello";
  Alcotest.(check string) "b receives" "hello" (b.Iw_transport.recv ());
  b.Iw_transport.send "world";
  Alcotest.(check string) "a receives" "world" (a.Iw_transport.recv ());
  a.Iw_transport.send "";
  Alcotest.(check string) "empty frame" "" (b.Iw_transport.recv ())

let test_loopback_ordering () =
  let a, b = Iw_transport.loopback () in
  for i = 1 to 100 do
    a.Iw_transport.send (string_of_int i)
  done;
  for i = 1 to 100 do
    Alcotest.(check string) "fifo order" (string_of_int i) (b.Iw_transport.recv ())
  done

let test_loopback_blocking_recv () =
  let a, b = Iw_transport.loopback () in
  let got = ref "" in
  let t = Thread.create (fun () -> got := b.Iw_transport.recv ()) () in
  Thread.delay 0.02;
  a.Iw_transport.send "late";
  Thread.join t;
  Alcotest.(check string) "blocked recv woke" "late" !got

let test_loopback_close () =
  let a, b = Iw_transport.loopback () in
  a.Iw_transport.close ();
  (try
     ignore (b.Iw_transport.recv () : string);
     Alcotest.fail "recv after close should raise"
   with Iw_transport.Closed -> ());
  try
    a.Iw_transport.send "x";
    Alcotest.fail "send after close should raise"
  with Iw_transport.Closed -> ()

let with_tcp_server handler f =
  let port = 17000 + (Unix.getpid () mod 1000) in
  let stop = ref false in
  let t = Thread.create (fun () -> Iw_transport.tcp_server ~port ~stop handler) () in
  Thread.delay 0.05;
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join t)
    (fun () -> f port)

let test_tcp_roundtrip () =
  with_tcp_server
    (fun conn ->
      let rec loop () =
        let frame = conn.Iw_transport.recv () in
        conn.Iw_transport.send ("echo:" ^ frame);
        loop ()
      in
      try loop () with Iw_transport.Closed -> ())
    (fun port ->
      let c = Iw_transport.tcp_connect ~host:"127.0.0.1" ~port in
      c.Iw_transport.send "ping";
      Alcotest.(check string) "echo" "echo:ping" (c.Iw_transport.recv ());
      (* Large frame crosses the length-prefix path. *)
      let big = String.make 300_000 'z' in
      c.Iw_transport.send big;
      Alcotest.(check string) "big echo" ("echo:" ^ big) (c.Iw_transport.recv ());
      c.Iw_transport.close ())

let test_tcp_full_stack () =
  (* A real InterWeave server behind TCP, exercised end to end. *)
  let server = Interweave.start_server () in
  with_tcp_server
    (fun conn -> Iw_server.serve_conn server conn)
    (fun port ->
      let c1 = Interweave.tcp_client ~host:"127.0.0.1" ~port () in
      let c2 = Interweave.tcp_client ~arch:Iw_arch.sparc32 ~host:"127.0.0.1" ~port () in
      let h1 = Interweave.open_segment c1 "tcp/seg" in
      Iw_client.wl_acquire h1;
      let a = Interweave.malloc h1 (Iw_types.Array (Prim Iw_arch.Int, 8)) ~name:"xs" in
      for i = 0 to 7 do
        Iw_client.write_int c1 (a + (i * 4)) (i * 5)
      done;
      Iw_client.wl_release h1;
      let h2 = Interweave.open_segment ~create:false c2 "tcp/seg" in
      Iw_client.rl_acquire h2;
      let b = (Option.get (Iw_client.find_named_block h2 "xs")).Iw_mem.b_addr in
      for i = 0 to 7 do
        Alcotest.(check int) "value over tcp" (i * 5) (Iw_client.read_int c2 (b + (i * 4)))
      done;
      Iw_client.rl_release h2;
      Iw_client.disconnect c1;
      Iw_client.disconnect c2)

let test_tcp_lock_released_on_disconnect () =
  let server = Interweave.start_server () in
  with_tcp_server
    (fun conn -> Iw_server.serve_conn server conn)
    (fun port ->
      let c1 = Interweave.tcp_client ~host:"127.0.0.1" ~port () in
      let h1 = Interweave.open_segment c1 "tcp/locked" in
      Iw_client.wl_acquire h1;
      (* Client 1 dies holding the write lock; the server must release it. *)
      Iw_client.disconnect c1;
      Thread.delay 0.1;
      let c2 = Interweave.tcp_client ~host:"127.0.0.1" ~port () in
      let h2 = Interweave.open_segment ~create:false c2 "tcp/locked" in
      Iw_client.wl_acquire h2;
      Iw_client.wl_release h2;
      Iw_client.disconnect c2)

let suite =
  ( "transport",
    [
      Alcotest.test_case "loopback roundtrip" `Quick test_loopback_roundtrip;
      Alcotest.test_case "loopback ordering" `Quick test_loopback_ordering;
      Alcotest.test_case "loopback blocking recv" `Quick test_loopback_blocking_recv;
      Alcotest.test_case "loopback close" `Quick test_loopback_close;
      Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
      Alcotest.test_case "tcp full stack" `Quick test_tcp_full_stack;
      Alcotest.test_case "tcp lock release on disconnect" `Quick
        test_tcp_lock_released_on_disconnect;
    ] )
