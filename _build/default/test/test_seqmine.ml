(* The datamining substrate: deterministic generation and correct shared
   lattice mining. *)

module Prng = Iw_seqmine.Prng
module Gen = Iw_seqmine.Gen
module Lattice = Iw_seqmine.Lattice

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Prng.int a 1_000_000) (Prng.int b 1_000_000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1_000_000 <> Prng.int c 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let r = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v;
    let f = Prng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of bounds: %f" f
  done

let small_params = { (Gen.scaled 0.005) with Gen.avg_items_per_customer = 20 }

let test_generator_shape () =
  let db = Gen.generate small_params in
  Alcotest.(check int) "customer count" small_params.Gen.customers
    (Array.length db.Gen.sequences);
  Array.iter
    (fun seq ->
      Alcotest.(check bool) "non-empty" true (Array.length seq > 0);
      Array.iter
        (fun item ->
          if item < 1 || item > small_params.Gen.items then
            Alcotest.failf "item %d out of range" item)
        seq)
    db.Gen.sequences;
  Alcotest.(check bool) "sized roughly as requested" true
    (Gen.size_bytes db > small_params.Gen.customers * 4 * 10)

let test_generator_deterministic () =
  let a = Gen.generate small_params and b = Gen.generate small_params in
  Alcotest.(check bool) "same seed same database" true (a.Gen.sequences = b.Gen.sequences)

let test_generator_skew () =
  (* Popular (low-numbered) items must dominate. *)
  let db = Gen.generate small_params in
  let low = ref 0 and high = ref 0 in
  Array.iter
    (Array.iter (fun item ->
         if item <= small_params.Gen.items / 4 then incr low else incr high))
    db.Gen.sequences;
  (* The bottom quarter of item ids must receive far more than its
     proportional (25%) share of draws. *)
  Alcotest.(check bool)
    (Printf.sprintf "low-id items over-represented (%d low vs %d high)" !low !high)
    true
    (float_of_int !low >= 0.4 *. float_of_int (!low + !high))

(* Brute-force n-gram counts for comparison with the shared lattice. *)
let brute_counts db ~upto_customer =
  let counts = Hashtbl.create 1024 in
  let bump g = Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g)) in
  for c = 0 to upto_customer - 1 do
    let s = db.Gen.sequences.(c) in
    let n = Array.length s in
    for i = 0 to n - 1 do
      bump [ s.(i) ];
      if i + 1 < n then bump [ s.(i); s.(i + 1) ];
      if i + 2 < n then bump [ s.(i); s.(i + 1); s.(i + 2) ]
    done
  done;
  counts

let test_lattice_counts_match_brute_force () =
  let db = Gen.generate small_params in
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  let min_support = 30 in
  let lattice = Lattice.create c ~segment:"mine/t1" ~min_support in
  let upto = small_params.Gen.customers in
  Lattice.update lattice db ~from_customer:0 ~to_customer:upto;
  let brute = brute_counts db ~upto_customer:upto in
  (* Every sequence above threshold must be in the lattice with the exact
     count. *)
  let missing = ref 0 and wrong = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun gram count ->
      if count >= min_support then begin
        incr checked;
        match Lattice.support_of lattice gram with
        | None -> incr missing
        | Some s -> if s <> count then incr wrong
      end)
    brute;
  Alcotest.(check bool) "some sequences checked" true (!checked > 10);
  Alcotest.(check int) "no frequent sequence missing" 0 !missing;
  Alcotest.(check int) "all supports exact" 0 !wrong

let test_incremental_equals_batch () =
  let db = Gen.generate small_params in
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  let batch = Lattice.create c ~segment:"mine/batch" ~min_support:25 in
  Lattice.update batch db ~from_customer:0 ~to_customer:small_params.Gen.customers;
  let inc = Lattice.create c ~segment:"mine/inc" ~min_support:25 in
  let step = small_params.Gen.customers / 7 in
  let pos = ref 0 in
  while !pos < small_params.Gen.customers do
    let upto = min small_params.Gen.customers (!pos + step) in
    Lattice.update inc db ~from_customer:!pos ~to_customer:upto;
    pos := upto
  done;
  let top_batch = Lattice.top batch 20 and top_inc = Lattice.top inc 20 in
  Alcotest.(check bool) "same top-20"
    true
    (List.map snd top_batch = List.map snd top_inc
    && List.sort compare (List.map fst top_batch) = List.sort compare (List.map fst top_inc))

let test_shared_across_clients () =
  let db = Gen.generate small_params in
  let server = Interweave.start_server () in
  let writer = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  let lattice = Lattice.create writer ~segment:"mine/shared" ~min_support:30 in
  Lattice.update lattice db ~from_customer:0 ~to_customer:small_params.Gen.customers;
  let reader = Interweave.direct_client ~arch:Iw_arch.sparc32 server in
  let miner = Lattice.attach reader ~segment:"mine/shared" in
  let seg = Lattice.segment miner in
  Iw_client.rl_acquire seg;
  Alcotest.(check int) "same node count" (Lattice.node_count lattice)
    (Lattice.node_count miner);
  let top_w = Lattice.top lattice 10 and top_r = Lattice.top miner 10 in
  Alcotest.(check bool) "same top sequences" true (top_w = top_r);
  Iw_client.rl_release seg

let test_node_desc_pointer_fraction () =
  (* The paper notes ~1/3 of the summary structure is pointers. *)
  let lay = Iw_types.layout (Iw_types.local Iw_arch.x86_32) Lattice.node_desc in
  let ptr_bytes = 4 * (1 + Lattice.max_children) in
  let fraction = float_of_int ptr_bytes /. float_of_int (Iw_types.size lay) in
  Alcotest.(check bool)
    (Printf.sprintf "pointer fraction %.2f in [0.25, 0.45]" fraction)
    true
    (fraction >= 0.25 && fraction <= 0.45)

let suite =
  ( "seqmine",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "generator shape" `Quick test_generator_shape;
      Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
      Alcotest.test_case "generator skew" `Quick test_generator_skew;
      Alcotest.test_case "lattice matches brute force" `Quick test_lattice_counts_match_brute_force;
      Alcotest.test_case "incremental equals batch" `Quick test_incremental_equals_batch;
      Alcotest.test_case "shared across clients" `Quick test_shared_across_clients;
      Alcotest.test_case "node pointer fraction" `Quick test_node_desc_pointer_fraction;
    ] )
