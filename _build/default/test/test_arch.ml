(* Architecture descriptors: endianness, sizes, raw loads/stores. *)

let archs = Iw_arch.all

let test_catalog () =
  Alcotest.(check int) "four architectures" 4 (List.length archs);
  Alcotest.(check bool) "find x86_32" true (Iw_arch.find "x86_32" = Some Iw_arch.x86_32);
  Alcotest.(check bool) "find nonsense" true (Iw_arch.find "vax" = None)

let test_prim_sizes () =
  let open Iw_arch in
  Alcotest.(check int) "x86 long" 4 (prim_size x86_32 Long);
  Alcotest.(check int) "alpha long" 8 (prim_size alpha64 Long);
  Alcotest.(check int) "x86 ptr" 4 (prim_size x86_32 Pointer);
  Alcotest.(check int) "alpha ptr" 8 (prim_size alpha64 Pointer);
  Alcotest.(check int) "string" 256 (prim_size x86_32 (String 256));
  Alcotest.(check int) "x86 double align" 4 (prim_align x86_32 Double);
  Alcotest.(check int) "sparc double align" 8 (prim_align sparc32 Double)

let test_align_up () =
  Alcotest.(check int) "0/4" 0 (Iw_arch.align_up 0 4);
  Alcotest.(check int) "1/4" 4 (Iw_arch.align_up 1 4);
  Alcotest.(check int) "4/4" 4 (Iw_arch.align_up 4 4);
  Alcotest.(check int) "5/8" 8 (Iw_arch.align_up 5 8)

let test_endianness () =
  let b = Bytes.make 8 '\000' in
  Iw_arch.store_uint Iw_arch.x86_32 b ~off:0 ~size:4 0x11223344;
  Alcotest.(check char) "little byte 0" '\x44' (Bytes.get b 0);
  Alcotest.(check char) "little byte 3" '\x11' (Bytes.get b 3);
  Iw_arch.store_uint Iw_arch.sparc32 b ~off:4 ~size:4 0x11223344;
  Alcotest.(check char) "big byte 0" '\x11' (Bytes.get b 4);
  Alcotest.(check char) "big byte 3" '\x44' (Bytes.get b 7)

let test_sign_extension () =
  List.iter
    (fun arch ->
      let b = Bytes.make 8 '\000' in
      Iw_arch.store_uint arch b ~off:0 ~size:2 (-2);
      Alcotest.(check int) (arch.Iw_arch.name ^ " sint16") (-2)
        (Iw_arch.load_sint arch b ~off:0 ~size:2);
      Alcotest.(check int) (arch.Iw_arch.name ^ " uint16") 0xfffe
        (Iw_arch.load_uint arch b ~off:0 ~size:2);
      Iw_arch.store_uint arch b ~off:0 ~size:4 (-123456);
      Alcotest.(check int) (arch.Iw_arch.name ^ " sint32") (-123456)
        (Iw_arch.load_sint arch b ~off:0 ~size:4))
    archs

let test_doubles_floats () =
  List.iter
    (fun arch ->
      let b = Bytes.make 16 '\000' in
      List.iter
        (fun v ->
          Iw_arch.store_double arch b ~off:0 v;
          Alcotest.(check (float 0.)) (arch.Iw_arch.name ^ " double") v
            (Iw_arch.load_double arch b ~off:0))
        [ 0.; 1.5; -3.25; 6.02e23; Float.min_float; Float.max_float ];
      Iw_arch.store_float arch b ~off:8 1.5;
      Alcotest.(check (float 0.)) "float roundtrip" 1.5 (Iw_arch.load_float arch b ~off:8))
    archs

let test_double_bytes_differ_by_endianness () =
  let little = Bytes.make 8 '\000' and big = Bytes.make 8 '\000' in
  Iw_arch.store_double Iw_arch.x86_32 little ~off:0 1.0;
  Iw_arch.store_double Iw_arch.sparc32 big ~off:0 1.0;
  Alcotest.(check bool) "byte orders differ" false (Bytes.equal little big);
  Alcotest.(check char) "big-endian leading byte" '\x3f' (Bytes.get big 0)

let test_cstrings () =
  let b = Bytes.make 16 '\xff' in
  Iw_arch.store_cstring b ~off:0 ~capacity:8 "hello";
  Alcotest.(check string) "roundtrip" "hello" (Iw_arch.load_cstring b ~off:0 ~capacity:8);
  Alcotest.(check char) "tail zeroed" '\000' (Bytes.get b 7);
  Iw_arch.store_cstring b ~off:0 ~capacity:4 "overlong";
  Alcotest.(check string) "truncated to capacity-1" "ove"
    (Iw_arch.load_cstring b ~off:0 ~capacity:4)

let prop_uint_roundtrip =
  QCheck.Test.make ~name:"uint store/load roundtrip on all archs" ~count:500
    QCheck.(pair (int_bound 3) (int_bound 0xffff))
    (fun (arch_idx, v) ->
      let arch = List.nth archs arch_idx in
      let b = Bytes.make 8 '\000' in
      List.for_all
        (fun size ->
          Iw_arch.store_uint arch b ~off:0 ~size v;
          let mask = if size >= 8 then max_int else (1 lsl (8 * size)) - 1 in
          Iw_arch.load_uint arch b ~off:0 ~size = v land mask)
        [ 2; 4; 8 ])

let prop_double_roundtrip =
  QCheck.Test.make ~name:"double roundtrip on all archs" ~count:300
    QCheck.(pair (int_bound 3) float)
    (fun (arch_idx, v) ->
      let arch = List.nth archs arch_idx in
      let b = Bytes.make 8 '\000' in
      Iw_arch.store_double arch b ~off:0 v;
      let v' = Iw_arch.load_double arch b ~off:0 in
      v = v' || (Float.is_nan v && Float.is_nan v'))

let suite =
  ( "arch",
    [
      Alcotest.test_case "catalog" `Quick test_catalog;
      Alcotest.test_case "prim sizes" `Quick test_prim_sizes;
      Alcotest.test_case "align_up" `Quick test_align_up;
      Alcotest.test_case "endianness" `Quick test_endianness;
      Alcotest.test_case "sign extension" `Quick test_sign_extension;
      Alcotest.test_case "doubles and floats" `Quick test_doubles_floats;
      Alcotest.test_case "double endianness" `Quick test_double_bytes_differ_by_endianness;
      Alcotest.test_case "cstrings" `Quick test_cstrings;
      QCheck_alcotest.to_alcotest prop_uint_roundtrip;
      QCheck_alcotest.to_alcotest prop_double_roundtrip;
    ] )
