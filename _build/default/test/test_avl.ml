(* AVL tree substrate: the metadata trees of both client and server. *)

module T = Iw_avl.Make (Int)

let check = Alcotest.(check (option int))

let kv_list = Alcotest.(check (list (pair int int)))

let of_pairs l = T.of_list l

let test_empty () =
  Alcotest.(check bool) "is_empty" true (T.is_empty T.empty);
  Alcotest.(check int) "cardinal" 0 (T.cardinal T.empty);
  check "find" None (T.find_opt 3 T.empty);
  check "floor" None (Option.map snd (T.floor 3 T.empty));
  check "ceiling" None (Option.map snd (T.ceiling 3 T.empty))

let test_add_find () =
  let t = of_pairs [ (1, 10); (5, 50); (3, 30) ] in
  Alcotest.(check int) "cardinal" 3 (T.cardinal t);
  check "find 1" (Some 10) (T.find_opt 1 t);
  check "find 3" (Some 30) (T.find_opt 3 t);
  check "find 5" (Some 50) (T.find_opt 5 t);
  check "find 2" None (T.find_opt 2 t)

let test_replace () =
  let t = of_pairs [ (1, 10); (1, 11) ] in
  Alcotest.(check int) "cardinal" 1 (T.cardinal t);
  check "replaced" (Some 11) (T.find_opt 1 t)

let test_remove () =
  let t = of_pairs [ (1, 10); (2, 20); (3, 30); (4, 40) ] in
  let t = T.remove 2 t in
  Alcotest.(check int) "cardinal" 3 (T.cardinal t);
  check "gone" None (T.find_opt 2 t);
  check "still 3" (Some 30) (T.find_opt 3 t);
  let t = T.remove 99 t in
  Alcotest.(check int) "remove absent is noop" 3 (T.cardinal t)

let test_floor_ceiling () =
  let t = of_pairs [ (10, 1); (20, 2); (30, 3) ] in
  let fl k = Option.map fst (T.floor k t) in
  let ce k = Option.map fst (T.ceiling k t) in
  check "floor 5" None (fl 5);
  check "floor 10" (Some 10) (fl 10);
  check "floor 15" (Some 10) (fl 15);
  check "floor 99" (Some 30) (fl 99);
  check "ceiling 5" (Some 10) (ce 5);
  check "ceiling 20" (Some 20) (ce 20);
  check "ceiling 25" (Some 30) (ce 25);
  check "ceiling 31" None (ce 31)

let test_succ_pred () =
  let t = of_pairs [ (10, 1); (20, 2); (30, 3) ] in
  check "succ 10" (Some 20) (Option.map fst (T.succ 10 t));
  check "succ 30" None (Option.map fst (T.succ 30 t));
  check "succ 9" (Some 10) (Option.map fst (T.succ 9 t));
  check "pred 20" (Some 10) (Option.map fst (T.pred 20 t));
  check "pred 10" None (Option.map fst (T.pred 10 t));
  check "pred 31" (Some 30) (Option.map fst (T.pred 31 t))

let test_min_max_iteration () =
  let t = of_pairs [ (3, 30); (1, 10); (2, 20) ] in
  check "min" (Some 10) (Option.map snd (T.min_binding t));
  check "max" (Some 30) (Option.map snd (T.max_binding t));
  kv_list "sorted" [ (1, 10); (2, 20); (3, 30) ] (T.to_list t);
  let sum = T.fold (fun k v acc -> acc + k + v) t 0 in
  Alcotest.(check int) "fold" 66 sum

let test_large_sequential () =
  let n = 10_000 in
  let t = ref T.empty in
  for i = 1 to n do
    t := T.add i i !t
  done;
  Alcotest.(check bool) "invariant" true (T.invariant !t);
  Alcotest.(check int) "cardinal" n (T.cardinal !t);
  Alcotest.(check bool) "height is logarithmic" true (T.height !t <= 2 * 14);
  for i = 1 to n do
    if T.find_opt i !t <> Some i then Alcotest.failf "missing %d" i
  done

(* Property tests: behave like a sorted association list. *)

let ops_gen =
  QCheck.(list (pair (int_bound 2) (int_bound 200)))

let model_of_ops ops =
  List.fold_left
    (fun (t, m) (op, k) ->
      match op with
      | 0 | 1 -> (T.add k (k * 7) t, (k, k * 7) :: List.remove_assoc k m)
      | _ -> (T.remove k t, List.remove_assoc k m))
    (T.empty, []) ops

let prop_matches_model =
  QCheck.Test.make ~name:"avl matches assoc-list model" ~count:500 ops_gen (fun ops ->
      let t, m = model_of_ops ops in
      let sorted = List.sort compare m in
      T.invariant t && T.to_list t = sorted)

let prop_floor_ceiling =
  QCheck.Test.make ~name:"floor/ceiling agree with filtering" ~count:500
    QCheck.(pair (list (int_bound 1000)) (int_bound 1000))
    (fun (keys, probe) ->
      let t = List.fold_left (fun t k -> T.add k k t) T.empty keys in
      let le = List.filter (fun k -> k <= probe) (List.sort_uniq compare keys) in
      let ge = List.filter (fun k -> k >= probe) (List.sort_uniq compare keys) in
      Option.map fst (T.floor probe t) = (match List.rev le with [] -> None | x :: _ -> Some x)
      && Option.map fst (T.ceiling probe t) = (match ge with [] -> None | x :: _ -> Some x))

let prop_remove_keeps_invariant =
  QCheck.Test.make ~name:"removal keeps AVL invariant" ~count:200
    QCheck.(list (int_bound 100))
    (fun keys ->
      let t = List.fold_left (fun t k -> T.add k k t) T.empty keys in
      let t =
        List.fold_left
          (fun t k -> if k mod 2 = 0 then T.remove k t else t)
          t keys
      in
      T.invariant t)

let suite =
  ( "avl",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add/find" `Quick test_add_find;
      Alcotest.test_case "replace" `Quick test_replace;
      Alcotest.test_case "remove" `Quick test_remove;
      Alcotest.test_case "floor/ceiling" `Quick test_floor_ceiling;
      Alcotest.test_case "succ/pred" `Quick test_succ_pred;
      Alcotest.test_case "min/max/iteration" `Quick test_min_max_iteration;
      Alcotest.test_case "large sequential" `Quick test_large_sequential;
      QCheck_alcotest.to_alcotest prop_matches_model;
      QCheck_alcotest.to_alcotest prop_floor_ceiling;
      QCheck_alcotest.to_alcotest prop_remove_keeps_invariant;
    ] )
