(* Wire format: buffers, descriptor codec, diff codec, primitive translation. *)

open Iw_wire

let test_buf_reader_roundtrip () =
  let b = Buf.create () in
  Buf.u8 b 0xab;
  Buf.u16 b 0x1234;
  Buf.u32 b 0xdeadbeef;
  Buf.u64 b 0x1122334455667788;
  Buf.f32 b 1.5;
  Buf.f64 b (-2.25);
  Buf.string b "hi";
  Buf.lstring b "longer";
  let r = Reader.of_string (Buf.contents b) in
  Alcotest.(check int) "u8" 0xab (Reader.u8 r);
  Alcotest.(check int) "u16" 0x1234 (Reader.u16 r);
  Alcotest.(check int) "u32" 0xdeadbeef (Reader.u32 r);
  Alcotest.(check int) "u64" 0x1122334455667788 (Reader.u64 r);
  Alcotest.(check (float 0.)) "f32" 1.5 (Reader.f32 r);
  Alcotest.(check (float 0.)) "f64" (-2.25) (Reader.f64 r);
  Alcotest.(check string) "string" "hi" (Reader.string r);
  Alcotest.(check string) "lstring" "longer" (Reader.lstring r);
  Alcotest.(check bool) "eof" true (Reader.eof r)

let test_buf_growth () =
  let b = Buf.create ~capacity:4 () in
  for i = 0 to 9999 do
    Buf.u32 b i
  done;
  Alcotest.(check int) "length" 40000 (Buf.length b);
  let r = Reader.of_string (Buf.contents b) in
  for i = 0 to 9999 do
    if Reader.u32 r <> i then Alcotest.failf "corrupt at %d" i
  done

let test_reader_truncation () =
  let r = Reader.of_string "ab" in
  (try
     ignore (Reader.u32 r : int);
     Alcotest.fail "expected Malformed"
   with Malformed _ -> ());
  let r2 = Reader.of_string "\x00\x05ab" in
  try
    ignore (Reader.string r2 : string);
    Alcotest.fail "expected Malformed on short string"
  with Malformed _ -> ()

let fig3 : Iw_types.desc =
  Struct
    [|
      { fname = "i0"; ftype = Prim Iw_arch.Int };
      { fname = "d0"; ftype = Prim Iw_arch.Double };
      { fname = "name"; ftype = Prim (Iw_arch.String 32) };
      { fname = "next"; ftype = Ptr "node" };
      { fname = "raw"; ftype = Prim Iw_arch.Pointer };
      { fname = "xs"; ftype = Array (Prim Iw_arch.Short, 5) };
    |]

let test_desc_codec () =
  List.iter
    (fun d ->
      let b = Buf.create () in
      put_desc b d;
      let d' = get_desc (Reader.of_string (Buf.contents b)) in
      if not (Iw_types.equal d d') then
        Alcotest.failf "descriptor roundtrip failed for %a" Iw_types.pp d)
    [
      Iw_types.Prim Iw_arch.Int;
      Prim (Iw_arch.String 256);
      Ptr "node";
      Array (Prim Iw_arch.Double, 42);
      fig3;
      Array (fig3, 3);
    ]

let test_diff_codec () =
  let diff =
    {
      Diff.from_version = 3;
      to_version = 5;
      new_descs = [ (1, Iw_types.Prim Iw_arch.Int); (2, fig3) ];
      changes =
        [
          Diff.Create { serial = 7; name = Some "head"; desc_serial = 2; payload = "abc" };
          Diff.Update
            {
              serial = 3;
              runs =
                [
                  { Diff.start_pu = 0; len_pu = 4; payload = "0123456789abcdef" };
                  { Diff.start_pu = 100; len_pu = 1; payload = "zzzz" };
                ];
            };
          Diff.Free { serial = 9 };
        ];
    }
  in
  let b = Buf.create () in
  Diff.encode b diff;
  let diff' = Diff.decode (Reader.of_string (Buf.contents b)) in
  Alcotest.(check bool) "roundtrip" true (diff = diff');
  Alcotest.(check int) "payload bytes" 23 (Diff.payload_bytes diff);
  Alcotest.(check int) "touched units" 5 (Diff.touched_units diff)

(* Translation: local -> wire -> local across architectures must preserve
   values, with pointers passing through the swizzle callbacks. *)
let test_translate_cross_arch () =
  let src_arch = Iw_arch.x86_32 and dst_arch = Iw_arch.sparc32 in
  let desc = fig3 in
  let src_lay = Iw_types.layout (Iw_types.local src_arch) desc in
  let dst_lay = Iw_types.layout (Iw_types.local dst_arch) desc in
  let src = Bytes.make (Iw_types.size src_lay) '\000' in
  let dst = Bytes.make (Iw_types.size dst_lay) '\000' in
  let off lay i = (Iw_types.locate_prim lay i).Iw_types.l_off in
  Iw_arch.store_uint src_arch src ~off:(off src_lay 0) ~size:4 123456;
  Iw_arch.store_double src_arch src ~off:(off src_lay 1) 3.14159;
  Iw_arch.store_cstring src ~off:(off src_lay 2) ~capacity:32 "wire-format";
  Iw_arch.store_uint src_arch src ~off:(off src_lay 3) ~size:4 0xbeef (* a live pointer *);
  Iw_arch.store_uint src_arch src ~off:(off src_lay 4) ~size:4 0 (* null *);
  List.iteri
    (fun i v -> Iw_arch.store_uint src_arch src ~off:(off src_lay (5 + i)) ~size:2 v)
    [ 1; 2; 3; 4; 5 ];
  let swizzled = ref [] in
  let buf = Buf.create () in
  collect_prims buf src_arch src_lay src ~base:0 ~from:0 ~upto:10 ~swizzle:(fun a ->
      swizzled := a :: !swizzled;
      Printf.sprintf "seg#%d" a);
  Alcotest.(check (list int)) "swizzle called for live pointer only" [ 0xbeef ] !swizzled;
  let unswizzled = ref [] in
  let r = Reader.of_string (Buf.contents buf) in
  apply_prims r dst_arch dst_lay dst ~base:0 ~from:0 ~upto:10 ~unswizzle:(fun mip ->
      unswizzled := mip :: !unswizzled;
      0x1000);
  Alcotest.(check (list string)) "unswizzle got the MIP" [ "seg#48879" ] !unswizzled;
  Alcotest.(check int) "int survives" 123456
    (Iw_arch.load_sint dst_arch dst ~off:(off dst_lay 0) ~size:4);
  Alcotest.(check (float 0.)) "double survives" 3.14159
    (Iw_arch.load_double dst_arch dst ~off:(off dst_lay 1));
  Alcotest.(check string) "string survives" "wire-format"
    (Iw_arch.load_cstring dst ~off:(off dst_lay 2) ~capacity:32);
  Alcotest.(check int) "pointer rewritten" 0x1000
    (Iw_arch.load_uint dst_arch dst ~off:(off dst_lay 3) ~size:4);
  Alcotest.(check int) "null stays null" 0
    (Iw_arch.load_uint dst_arch dst ~off:(off dst_lay 4) ~size:4);
  List.iteri
    (fun i v ->
      Alcotest.(check int) (Printf.sprintf "short %d" i) v
        (Iw_arch.load_sint dst_arch dst ~off:(off dst_lay (5 + i)) ~size:2))
    [ 1; 2; 3; 4; 5 ]

let test_translate_partial_range () =
  let arch = Iw_arch.x86_32 in
  let lay = Iw_types.layout (Iw_types.local arch) (Array (Prim Iw_arch.Int, 100)) in
  let src = Bytes.make (Iw_types.size lay) '\000' in
  for i = 0 to 99 do
    Iw_arch.store_uint arch src ~off:(i * 4) ~size:4 (i * 11)
  done;
  let buf = Buf.create () in
  collect_prims buf arch lay src ~base:0 ~from:40 ~upto:60 ~swizzle:(fun _ -> assert false);
  Alcotest.(check int) "20 ints = 80 bytes" 80 (Buf.length buf);
  let dst = Bytes.make (Iw_types.size lay) '\000' in
  apply_prims (Reader.of_string (Buf.contents buf)) arch lay dst ~base:0 ~from:40 ~upto:60
    ~unswizzle:(fun _ -> assert false);
  for i = 40 to 59 do
    Alcotest.(check int) (Printf.sprintf "elt %d" i) (i * 11)
      (Iw_arch.load_sint arch dst ~off:(i * 4) ~size:4)
  done;
  Alcotest.(check int) "outside range untouched" 0 (Iw_arch.load_sint arch dst ~off:0 ~size:4)

let test_long_widening () =
  (* 4-byte longs on x86 travel as 8-byte wire longs and land correctly in
     8-byte alpha longs, and vice versa (with truncation). *)
  let desc = Iw_types.Prim Iw_arch.Long in
  let x86_lay = Iw_types.layout (Iw_types.local Iw_arch.x86_32) desc in
  let alpha_lay = Iw_types.layout (Iw_types.local Iw_arch.alpha64) desc in
  let src = Bytes.make 4 '\000' and dst = Bytes.make 8 '\000' in
  Iw_arch.store_uint Iw_arch.x86_32 src ~off:0 ~size:4 (-42);
  let buf = Buf.create () in
  collect_prims buf Iw_arch.x86_32 x86_lay src ~base:0 ~from:0 ~upto:1 ~swizzle:(fun _ ->
      assert false);
  Alcotest.(check int) "wire long is 8 bytes" 8 (Buf.length buf);
  apply_prims (Reader.of_string (Buf.contents buf)) Iw_arch.alpha64 alpha_lay dst ~base:0
    ~from:0 ~upto:1 ~unswizzle:(fun _ -> assert false);
  Alcotest.(check int) "sign-extended on alpha" (-42)
    (Iw_arch.load_sint Iw_arch.alpha64 dst ~off:0 ~size:8)

let test_wire_size_of_prims () =
  let lay = Iw_types.layout Iw_types.wire fig3 in
  (* int 4 + double 8 + string/ptr/ptr as given + 5 shorts *)
  Alcotest.(check int) "all, strings as 4" (4 + 8 + 4 + 4 + 4 + 10)
    (wire_size_of_prims lay ~from:0 ~upto:10 ~strings_as:4);
  Alcotest.(check int) "partial" (8 + 4) (wire_size_of_prims lay ~from:1 ~upto:3 ~strings_as:4)

let prop_value_roundtrip =
  (* Random int arrays survive x86 -> wire -> alpha -> wire -> x86. *)
  QCheck.Test.make ~name:"translation roundtrip across architectures" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 64) int)
    (fun xs ->
      let n = List.length xs in
      let desc = Iw_types.Array (Prim Iw_arch.Long, n) in
      let a1 = Iw_arch.alpha64 and a2 = Iw_arch.sparc32 in
      let l1 = Iw_types.layout (Iw_types.local a1) desc in
      let l2 = Iw_types.layout (Iw_types.local a2) desc in
      let b1 = Bytes.make (Iw_types.size l1) '\000' in
      let b2 = Bytes.make (Iw_types.size l2) '\000' in
      let b3 = Bytes.make (Iw_types.size l1) '\000' in
      List.iteri (fun i v -> Iw_arch.store_uint a1 b1 ~off:(i * 8) ~size:8 v) xs;
      let buf = Buf.create () in
      collect_prims buf a1 l1 b1 ~base:0 ~from:0 ~upto:n ~swizzle:(fun _ -> "");
      apply_prims (Reader.of_string (Buf.contents buf)) a2 l2 b2 ~base:0 ~from:0 ~upto:n
        ~unswizzle:(fun _ -> 0);
      let buf2 = Buf.create () in
      collect_prims buf2 a2 l2 b2 ~base:0 ~from:0 ~upto:n ~swizzle:(fun _ -> "");
      apply_prims (Reader.of_string (Buf.contents buf2)) a1 l1 b3 ~base:0 ~from:0 ~upto:n
        ~unswizzle:(fun _ -> 0);
      (* sparc 32-bit longs truncate; so compare modulo 32-bit wraparound. *)
      List.for_all2
        (fun v i ->
          let got = Iw_arch.load_sint a1 b3 ~off:(i * 8) ~size:8 in
          let truncated =
            let m = v land 0xffffffff in
            if m land 0x80000000 <> 0 then m - (1 lsl 32) else m
          in
          got = truncated)
        xs
        (List.init n Fun.id))

let suite =
  ( "wire",
    [
      Alcotest.test_case "buf/reader roundtrip" `Quick test_buf_reader_roundtrip;
      Alcotest.test_case "buf growth" `Quick test_buf_growth;
      Alcotest.test_case "reader truncation" `Quick test_reader_truncation;
      Alcotest.test_case "descriptor codec" `Quick test_desc_codec;
      Alcotest.test_case "diff codec" `Quick test_diff_codec;
      Alcotest.test_case "cross-arch translation" `Quick test_translate_cross_arch;
      Alcotest.test_case "partial range translation" `Quick test_translate_partial_range;
      Alcotest.test_case "long widening" `Quick test_long_widening;
      Alcotest.test_case "wire_size_of_prims" `Quick test_wire_size_of_prims;
      QCheck_alcotest.to_alcotest prop_value_roundtrip;
    ] )
