(* Transactional write critical sections: wl_abort and atomically. *)

open Interweave

let setup () =
  let server = start_server () in
  let c = direct_client server in
  let h = open_segment c "abort/seg" in
  let a =
    with_write_lock h (fun () ->
        let a = malloc h (Desc.array Desc.int 100) ~name:"xs" in
        for i = 0 to 99 do
          Client.write_int c (a + (i * 4)) i
        done;
        a)
  in
  (server, c, h, a)

let test_abort_rolls_back_stores () =
  let _server, c, h, a = setup () in
  let v0 = Client.segment_version h in
  wl_acquire h;
  for i = 0 to 99 do
    Client.write_int c (a + (i * 4)) 9999
  done;
  wl_abort h;
  Alcotest.(check bool) "unlocked" false (Client.locked h);
  Alcotest.(check int) "version unchanged" v0 (Client.segment_version h);
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "xs[%d] restored" i) i (Client.read_int c (a + (i * 4)))
  done

let test_abort_removes_created_blocks () =
  let _server, c, h, _a = setup () in
  wl_acquire h;
  let b = malloc h Desc.int ~name:"doomed" in
  Client.write_int c b 5;
  wl_abort h;
  Alcotest.(check bool) "block gone" true (Client.find_named_block h "doomed" = None);
  Alcotest.(check bool) "address unmapped" true (Client.block_of_addr c b = None)

let test_abort_resurrects_freed_blocks () =
  let _server, c, h, a = setup () in
  wl_acquire h;
  free c a;
  Alcotest.(check bool) "gone inside cs" true (Client.find_named_block h "xs" = None);
  wl_abort h;
  (match Client.find_named_block h "xs" with
  | Some b ->
    Alcotest.(check int) "same address" a b.Mem.b_addr;
    Alcotest.(check int) "data intact" 42 (Client.read_int c (a + (42 * 4)))
  | None -> Alcotest.fail "freed block not resurrected");
  (* The block is fully usable in later critical sections. *)
  with_write_lock h (fun () -> Client.write_int c a 7);
  Alcotest.(check int) "writable after resurrect" 7 (Client.read_int c a)

let test_abort_invisible_to_others () =
  let server, c, h, a = setup () in
  let c2 = direct_client server in
  let h2 = open_segment ~create:false c2 "abort/seg" in
  with_read_lock h2 (fun () -> ());
  wl_acquire h;
  Client.write_int c a 31337;
  ignore (malloc h Desc.int ~name:"phantom" : addr);
  wl_abort h;
  with_read_lock h2 (fun () ->
      let b = (Option.get (Client.find_named_block h2 "xs")).Mem.b_addr in
      Alcotest.(check int) "other client sees original" 0 (Client.read_int c2 b);
      Alcotest.(check bool) "no phantom block" true (Client.find_named_block h2 "phantom" = None))

let test_abort_releases_server_lock () =
  let server, c, h, a = setup () in
  wl_acquire h;
  Client.write_int c a 1;
  wl_abort h;
  (* Another client can take the write lock immediately. *)
  let c2 = direct_client server in
  let h2 = open_segment ~create:false c2 "abort/seg" in
  wl_acquire h2;
  wl_release h2

let test_commit_after_abort () =
  let _server, c, h, a = setup () in
  wl_acquire h;
  Client.write_int c a 111;
  wl_abort h;
  with_write_lock h (fun () -> Client.write_int c a 222);
  Alcotest.(check int) "commit works after abort" 222 (Client.read_int c a)

let test_abort_requires_lock () =
  let _server, _c, h, _a = setup () in
  try
    wl_abort h;
    Alcotest.fail "abort without lock accepted"
  with Client.Error _ -> ()

let test_abort_rejected_in_no_diff_mode () =
  let _server, c, h, a = setup () in
  Client.set_no_diff h true;
  wl_acquire h;
  Client.write_int c a 5;
  (try
     wl_abort h;
     Alcotest.fail "abort in no-diff mode accepted"
   with Client.Error _ -> ());
  wl_release h

let test_atomically () =
  let _server, c, h, a = setup () in
  (match atomically h (fun () -> Client.write_int c a 77) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "commit path failed");
  Alcotest.(check int) "committed" 77 (Client.read_int c a);
  (match
     atomically h (fun () ->
         Client.write_int c a 88;
         failwith "business rule violated")
   with
  | Ok () -> Alcotest.fail "should have aborted"
  | Error (Failure msg) -> Alcotest.(check string) "exception propagated" "business rule violated" msg
  | Error _ -> Alcotest.fail "wrong exception");
  Alcotest.(check int) "rolled back" 77 (Client.read_int c a);
  Alcotest.(check bool) "unlocked" false (Client.locked h)

let test_nested_abort_aborts_everything () =
  let _server, c, h, a = setup () in
  wl_acquire h;
  Client.write_int c a 1;
  wl_acquire h;
  Client.write_int c (a + 4) 2;
  wl_abort h;
  Alcotest.(check bool) "fully unlocked" false (Client.locked h);
  Alcotest.(check int) "outer write rolled back" 0 (Client.read_int c a);
  Alcotest.(check int) "inner write rolled back" 1 (Client.read_int c (a + 4))

let suite =
  ( "abort",
    [
      Alcotest.test_case "rolls back stores" `Quick test_abort_rolls_back_stores;
      Alcotest.test_case "removes created blocks" `Quick test_abort_removes_created_blocks;
      Alcotest.test_case "resurrects freed blocks" `Quick test_abort_resurrects_freed_blocks;
      Alcotest.test_case "invisible to others" `Quick test_abort_invisible_to_others;
      Alcotest.test_case "releases server lock" `Quick test_abort_releases_server_lock;
      Alcotest.test_case "commit after abort" `Quick test_commit_after_abort;
      Alcotest.test_case "requires lock" `Quick test_abort_requires_lock;
      Alcotest.test_case "rejected in no-diff mode" `Quick test_abort_rejected_in_no_diff_mode;
      Alcotest.test_case "atomically" `Quick test_atomically;
      Alcotest.test_case "nested abort" `Quick test_nested_abort_aborts_everything;
    ] )
