bench/bench_util.ml: Iw_client List Printf String Unix
