bench/bechamel_suite.ml: Analyze Array Bechamel Benchmark Hashtbl Instance Interweave Iw_arch Iw_client Iw_mem Iw_seqmine Iw_types List Measure Printf Staged Test Time Toolkit
