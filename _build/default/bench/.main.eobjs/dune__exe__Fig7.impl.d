bench/fig7.ml: Bench_util Interweave Iw_arch Iw_client Iw_proto Iw_seqmine List Printf
