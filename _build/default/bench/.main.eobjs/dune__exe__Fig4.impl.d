bench/fig4.ml: Array Bench_util Interweave Iw_arch Iw_client Iw_server Iw_types Iw_wire Iw_xdr List Printf Shapes
