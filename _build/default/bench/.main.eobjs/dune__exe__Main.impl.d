bench/main.ml: Ablation Arg Bechamel_suite Cmd Cmdliner Fig4 Fig5 Fig6 Fig7 Term
