bench/ablation.ml: Array Bench_util Interweave Iw_arch Iw_client Iw_mem Iw_server Iw_types List Printf Shapes
