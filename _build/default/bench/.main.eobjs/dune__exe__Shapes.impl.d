bench/shapes.ml: Array Char Hashtbl Iw_arch Iw_client Iw_mem Iw_types List Printf String
