bench/fig6.ml: Array Bench_util Interweave Iw_arch Iw_client Iw_types List Printf Shapes
