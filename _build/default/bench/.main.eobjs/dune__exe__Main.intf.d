bench/main.mli:
