(* Figure 4: client cost to translate 1 MB of data, per data shape, for
   RPC/XDR marshaling and for InterWeave's collect/apply in both block
   (no-diff) and diff modes.  Also reports the server-side costs the TR
   version tabulates (wall time of the direct server call minus the
   client-side share). *)

open Bench_util

type row = {
  r_shape : string;
  r_xdr : float;
  r_collect_block : float;
  r_collect_diff : float;
  r_apply_block : float;
  r_apply_diff : float;
  r_server_apply : float;
  r_server_collect : float;
}

let bench_shape ~size (shape : Shapes.t) =
  (* Diff cache off: we want the server's real collect/apply costs, not a
     cache forward; the diff-caching ablation measures the cache itself. *)
  let server = Iw_server.create ~diff_cache_capacity:0 () in
  let a = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  let b = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  (Iw_client.options a).Iw_client.auto_no_diff <- false;
  (Iw_client.options b).Iw_client.auto_no_diff <- false;
  let seg_name = "bench/fig4/" ^ shape.Shapes.name in
  let seg = Interweave.open_segment a seg_name in
  Iw_client.wl_acquire seg;
  let targets =
    if shape.Shapes.needs_target then
      Array.init 64 (fun i ->
          Interweave.malloc seg (Iw_types.Prim Iw_arch.Int)
            ~name:(Printf.sprintf "target%d" i))
    else [| 0 |]
  in
  let addr = Interweave.malloc seg (shape.Shapes.desc size) ~name:"data" in
  let prep = Shapes.prepare a addr in
  Shapes.fill a prep ~targets ~iter:0;
  Iw_client.wl_release seg;
  (* Reader caches the segment. *)
  let seg_b = Interweave.open_segment ~create:false b seg_name in
  Iw_client.rl_acquire seg_b;
  Iw_client.rl_release seg_b;

  (* XDR baseline: marshal the same local-format value. *)
  let registry = Iw_types.Registry.create () in
  Iw_types.Registry.define_name registry "int" (Iw_types.Prim Iw_arch.Int);
  let lay =
    Iw_types.layout (Iw_types.local (Iw_client.arch a)) (shape.Shapes.desc size)
  in
  let xdr_buf = Iw_wire.Buf.create ~capacity:(2 * size) () in
  let r_xdr =
    median_time (fun () ->
        Iw_wire.Buf.clear xdr_buf;
        Iw_xdr.marshal xdr_buf (Iw_client.space a) ~registry ~addr lay)
  in

  (* One measured round: A rewrites everything and releases; B read-locks.
     Client-side costs come from the library's internal timers, so the fill
     itself is excluded; server costs are the remaining wall time of the
     direct call. *)
  let iter = ref 0 in
  let measure_mode () =
    let collects = ref [] and applies = ref [] and svr_applies = ref [] and svr_collects = ref [] in
    for _ = 1 to 5 do
      incr iter;
      Iw_client.wl_acquire seg;
      Shapes.fill a prep ~targets ~iter:!iter;
      let t0 = now () in
      let d = client_delta a (fun () -> Iw_client.wl_release seg) in
      let wall_release = now () -. t0 in
      let collect = d.d_word_diff +. d.d_translate in
      collects := collect :: !collects;
      svr_applies := (wall_release -. collect) :: !svr_applies;
      let t1 = now () in
      let db =
        client_delta b (fun () ->
            Iw_client.rl_acquire seg_b;
            Iw_client.rl_release seg_b)
      in
      let wall_read = now () -. t1 in
      applies := db.d_apply :: !applies;
      svr_collects := (wall_read -. db.d_apply) :: !svr_collects
    done;
    let med l = List.nth (List.sort compare !l) (List.length !l / 2) in
    (med collects, med applies, med svr_applies, med svr_collects)
  in
  (* Diff mode. *)
  let c_diff, a_diff, sa_diff, sc_diff = measure_mode () in
  ignore sa_diff;
  ignore sc_diff;
  (* Block (no-diff) mode. *)
  Iw_client.set_no_diff seg true;
  let c_block, a_block, sa_block, sc_block = measure_mode () in
  Iw_client.disconnect a;
  Iw_client.disconnect b;
  {
    r_shape = shape.Shapes.name;
    r_xdr;
    r_collect_block = c_block;
    r_collect_diff = c_diff;
    r_apply_block = a_block;
    r_apply_diff = a_diff;
    r_server_apply = sa_block;
    r_server_collect = sc_block;
  }

let run ?(size = 1 lsl 20) () =
  print_header
    (Printf.sprintf "Figure 4: basic translation costs (ms per %d KB operation)"
       (size / 1024))
    [ "RPC XDR"; "collect blk"; "collect diff"; "apply blk"; "apply diff"; "svr apply"; "svr collect" ];
  let rows = List.map (bench_shape ~size) Shapes.all in
  List.iter
    (fun r ->
      print_row r.r_shape
        [
          ms r.r_xdr;
          ms r.r_collect_block;
          ms r.r_collect_diff;
          ms r.r_apply_block;
          ms r.r_apply_diff;
          ms r.r_server_apply;
          ms r.r_server_collect;
        ])
    rows;
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0. rows /. float_of_int (List.length rows) in
  Printf.printf "\nAverages: XDR %.2f ms, collect block %.2f ms (%.0f%% of XDR), collect diff %.2f ms\n"
    (1000. *. avg (fun r -> r.r_xdr))
    (1000. *. avg (fun r -> r.r_collect_block))
    (100. *. avg (fun r -> r.r_collect_block) /. avg (fun r -> r.r_xdr))
    (1000. *. avg (fun r -> r.r_collect_diff));
  rows
