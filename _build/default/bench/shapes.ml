(* The nine data shapes of the paper's Figure 4, each sized to [size] bytes
   of local x86 data, plus generic fill machinery that rewrites every
   primitive with iteration-dependent values (so diffing always sees the
   whole structure as changed, as in the paper's "all data modified"
   setup). *)

type t = {
  name : string;
  desc : int -> Iw_types.desc;  (* total byte budget -> descriptor *)
  needs_target : bool;  (* pointer fields need int blocks to point at *)
}

let struct_of n prim =
  Iw_types.Struct
    (Array.init n (fun i -> { Iw_types.fname = Printf.sprintf "f%d" i; ftype = Prim prim }))

let int_double =
  Iw_types.Struct
    [|
      { Iw_types.fname = "i"; ftype = Prim Iw_arch.Int };
      { Iw_types.fname = "d"; ftype = Prim Iw_arch.Double };
    |]

let mix_struct =
  Iw_types.Struct
    [|
      { Iw_types.fname = "i"; ftype = Prim Iw_arch.Int };
      { Iw_types.fname = "d"; ftype = Prim Iw_arch.Double };
      { Iw_types.fname = "s"; ftype = Prim (Iw_arch.String 32) };
      { Iw_types.fname = "ss"; ftype = Prim (Iw_arch.String 4) };
      { Iw_types.fname = "p"; ftype = Ptr "int" };
    |]

(* Element sizes below are for the x86_32 layout the benchmark clients use. *)
let all : t list =
  [
    { name = "int_array"; desc = (fun b -> Array (Prim Iw_arch.Int, b / 4)); needs_target = false };
    {
      name = "double_array";
      desc = (fun b -> Array (Prim Iw_arch.Double, b / 8));
      needs_target = false;
    };
    {
      name = "int_struct";
      desc = (fun b -> Array (struct_of 32 Iw_arch.Int, b / 128));
      needs_target = false;
    };
    {
      name = "double_struct";
      desc = (fun b -> Array (struct_of 32 Iw_arch.Double, b / 256));
      needs_target = false;
    };
    {
      name = "string";
      desc = (fun b -> Array (Prim (Iw_arch.String 256), b / 256));
      needs_target = false;
    };
    {
      name = "small_string";
      desc = (fun b -> Array (Prim (Iw_arch.String 4), b / 4));
      needs_target = false;
    };
    { name = "pointer"; desc = (fun b -> Array (Ptr "int", b / 4)); needs_target = true };
    {
      name = "int_double";
      desc = (fun b -> Array (int_double, b / 12));
      needs_target = false;
    };
    { name = "mix"; desc = (fun b -> Array (mix_struct, b / 52)); needs_target = true };
  ]

let find name = List.find_opt (fun s -> s.name = name) all

(* Pools of string values so fills need no allocation-heavy formatting. *)
let string_pools : (int, string array) Hashtbl.t = Hashtbl.create 8

let string_pool capacity =
  match Hashtbl.find_opt string_pools capacity with
  | Some pool -> pool
  | None ->
    let pool =
      Array.init 8 (fun v ->
          String.init (capacity - 1) (fun i -> Char.chr (97 + ((i + v) mod 26))))
    in
    Hashtbl.add string_pools capacity pool;
    pool

(* A prepared block: the per-primitive write plan, precomputed once. *)
type prepared = {
  base : Iw_mem.addr;
  prims : (Iw_arch.prim * int) array;  (* prim, byte offset *)
}

let prepare c addr =
  let b, _ =
    match Iw_client.block_of_addr c addr with
    | Some r -> r
    | None -> invalid_arg "Shapes.prepare: not a block"
  in
  let lay = b.Iw_mem.b_layout in
  let n = Iw_types.layout_prim_count lay in
  let prims =
    Iw_types.fold_prims lay ~from:0 ~upto:n ~init:[] ~f:(fun acc loc ->
        (loc.Iw_types.l_prim, loc.Iw_types.l_off) :: acc)
    |> List.rev |> Array.of_list
  in
  { base = addr; prims }

(* Rewrite every primitive with values that depend on [iter], so consecutive
   fills always change every word. *)
let fill c prep ~targets ~iter =
  let sp = Iw_client.space c in
  Array.iteri
    (fun i (prim, off) ->
      let a = prep.base + off in
      match prim with
      | Iw_arch.Char -> Iw_mem.store_prim sp Iw_arch.Char a ((i + iter) land 0x7f)
      | Short -> Iw_mem.store_prim sp Iw_arch.Short a ((i * 13) + iter)
      | Int -> Iw_mem.store_prim sp Iw_arch.Int a ((i * 31) + iter)
      | Long -> Iw_mem.store_prim sp Iw_arch.Long a ((i * 31) + iter)
      | Float -> Iw_mem.store_float sp a (float_of_int ((i * 3) + iter))
      | Double -> Iw_mem.store_double sp a (float_of_int ((i * 7) + iter))
      | Pointer ->
        Iw_mem.store_prim sp Iw_arch.Pointer a
          targets.((i + iter) mod Array.length targets)
      | String capacity ->
        let pool = string_pool capacity in
        Iw_mem.store_string sp ~capacity a pool.((i + iter) mod Array.length pool))
    prep.prims
