(* Figure 5: diff management cost as a function of modification granularity.
   A 1 MB array of integers; every k-th word is modified for k = 1 .. 16384.
   Curves: client collect diff (split into word diffing and translation),
   client apply diff, server collect diff, server apply diff, plus the
   bandwidth actually used. *)

open Bench_util

type point = {
  p_ratio : int;
  p_word_diff : float;
  p_translate : float;
  p_collect : float;
  p_apply : float;
  p_server_apply : float;
  p_server_collect : float;
  p_bytes : int;
}

let ratios = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let bench_ratio ~words a b seg seg_b addr iter ratio =
  let sp = Iw_client.space a in
  let samples = ref [] in
  for _ = 1 to 4 do
    incr iter;
    Iw_client.wl_acquire seg;
    let i = ref 0 in
    while !i < words do
      Iw_mem.store_prim sp Iw_arch.Int (addr + (!i * 4)) (!i + !iter);
      i := !i + ratio
    done;
    let t0 = now () in
    let d = client_delta a (fun () -> Iw_client.wl_release seg) in
    let wall_release = now () -. t0 in
    let t1 = now () in
    let db =
      client_delta b (fun () ->
          Iw_client.rl_acquire seg_b;
          Iw_client.rl_release seg_b)
    in
    let wall_read = now () -. t1 in
    samples :=
      {
        p_ratio = ratio;
        p_word_diff = d.d_word_diff;
        p_translate = d.d_translate;
        p_collect = d.d_word_diff +. d.d_translate;
        p_apply = db.d_apply;
        p_server_apply = wall_release -. d.d_word_diff -. d.d_translate;
        p_server_collect = wall_read -. db.d_apply;
        p_bytes = d.d_bytes_sent;
      }
      :: !samples
  done;
  let med f =
    let sorted = List.sort compare (List.map f !samples) in
    List.nth sorted (List.length sorted / 2)
  in
  {
    p_ratio = ratio;
    p_word_diff = med (fun p -> p.p_word_diff);
    p_translate = med (fun p -> p.p_translate);
    p_collect = med (fun p -> p.p_collect);
    p_apply = med (fun p -> p.p_apply);
    p_server_apply = med (fun p -> p.p_server_apply);
    p_server_collect = med (fun p -> p.p_server_collect);
    p_bytes = med (fun p -> p.p_bytes);
  }

let run ?(size = 1 lsl 20) () =
  let words = size / 4 in
  (* Diff cache off, as in Fig. 4: measure real server-side collection, which
     is where the paper's subblock-granularity plateau (ratios 1..16) comes
     from. *)
  let server = Iw_server.create ~diff_cache_capacity:0 () in
  let a = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  let b = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  (Iw_client.options a).Iw_client.auto_no_diff <- false;
  let seg = Interweave.open_segment a "bench/fig5" in
  Iw_client.wl_acquire seg;
  let addr =
    Interweave.malloc seg (Iw_types.Array (Prim Iw_arch.Int, words)) ~name:"data"
  in
  let sp = Iw_client.space a in
  for i = 0 to words - 1 do
    Iw_mem.store_prim sp Iw_arch.Int (addr + (i * 4)) i
  done;
  Iw_client.wl_release seg;
  let seg_b = Interweave.open_segment ~create:false b "bench/fig5" in
  Iw_client.rl_acquire seg_b;
  Iw_client.rl_release seg_b;
  print_header
    (Printf.sprintf "Figure 5: diff cost vs modification granularity (%d KB int array, ms)"
       (size / 1024))
    [ "word diff"; "translate"; "collect"; "apply"; "svr collect"; "svr apply"; "KB sent" ];
  let iter = ref 0 in
  List.map
    (fun ratio ->
      let p = bench_ratio ~words a b seg seg_b addr iter ratio in
      print_row
        (Printf.sprintf "ratio %d" ratio)
        [
          ms p.p_word_diff;
          ms p.p_translate;
          ms p.p_collect;
          ms p.p_apply;
          ms p.p_server_collect;
          ms p.p_server_apply;
          Printf.sprintf "%d" (p.p_bytes / 1024);
        ];
      p)
    ratios
