(* Benchmark harness entry point.

   Default (no arguments): regenerate every table and figure of the paper's
   evaluation (Figures 4-7) plus the Section 3.3 optimization ablations.
   Subcommands run one experiment, optionally at reduced size. *)

let quick_size quick = if quick then 1 lsl 18 else 1 lsl 20

let run_fig4 quick = ignore (Fig4.run ~size:(quick_size quick) () : Fig4.row list)

let run_fig5 quick = ignore (Fig5.run ~size:(quick_size quick) () : Fig5.point list)

let run_fig6 () = ignore (Fig6.run () : Fig6.point list)

let run_fig7 quick =
  let scale = if quick then 0.01 else 0.05 in
  let increments = if quick then 20 else 50 in
  ignore (Fig7.run ~scale ~increments () : Fig7.bar list)

let run_all quick =
  print_endline "InterWeave benchmark suite (paper: Tang et al., ICDCS 2003)";
  run_fig4 quick;
  run_fig5 quick;
  run_fig6 ();
  run_fig7 quick;
  Ablation.run ()

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes for a fast smoke run.")

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ quick)

let default = Term.(const run_all $ quick)

let cmd =
  Cmd.group ~default
    (Cmd.info "iw-bench" ~doc:"Regenerate the paper's tables and figures")
    [
      cmd_of "fig4" "Basic translation costs (Figure 4)" run_fig4;
      cmd_of "fig5" "Modification granularity sweep (Figure 5)" run_fig5;
      cmd_of "fig6" "Pointer swizzling costs (Figure 6)" (fun _ -> run_fig6 ());
      cmd_of "fig7" "Datamining bandwidth (Figure 7)" run_fig7;
      cmd_of "ablation" "Optimization ablations (Section 3.3)" (fun _ -> Ablation.run ());
      cmd_of "bechamel" "Bechamel micro-benchmark suite" (fun _ -> Bechamel_suite.run ());
    ]

let () = exit (Cmd.eval cmd)
