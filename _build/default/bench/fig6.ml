(* Figure 6: pointer swizzling cost per pointer, as a function of the
   pointed-to object: an int block, the middle of a 32-field struct, and
   cross-segment targets in segments of 1 .. 65536 blocks (the rise with
   block count is the metadata-tree search). *)

open Bench_util

type point = {
  c_case : string;
  c_swizzle : float;  (* seconds per pointer *)
  c_unswizzle : float;
}

let reps = 50_000

let per_op c addr =
  let mip = Iw_client.ptr_to_mip c addr in
  let swizzle =
    median_time ~min_total:0.3 (fun () ->
        for _ = 1 to reps do
          ignore (Iw_client.ptr_to_mip c addr : string)
        done)
    /. float_of_int reps
  in
  let unswizzle =
    median_time ~min_total:0.3 (fun () ->
        for _ = 1 to reps do
          ignore (Iw_client.mip_to_ptr c mip : int)
        done)
    /. float_of_int reps
  in
  (swizzle, unswizzle)

let run () =
  let server = Interweave.start_server () in
  let c = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  print_header "Figure 6: pointer swizzling cost (microseconds per pointer)"
    [ "swizzle"; "unswizzle" ];
  let results = ref [] in
  let emit name (s, u) =
    print_row name [ usec s; usec u ];
    results := { c_case = name; c_swizzle = s; c_unswizzle = u } :: !results
  in
  (* int1: intra-segment pointer to the start of an integer block. *)
  let seg = Interweave.open_segment c "bench/fig6-int" in
  Iw_client.wl_acquire seg;
  let int_addr = Interweave.malloc seg (Iw_types.Prim Iw_arch.Int) in
  Iw_client.wl_release seg;
  emit "int1" (per_op c int_addr);
  (* struct1: pointer into the middle of a structure with 32 fields. *)
  let seg2 = Interweave.open_segment c "bench/fig6-struct" in
  Iw_client.wl_acquire seg2;
  let struct_addr = Interweave.malloc seg2 (Shapes.struct_of 32 Iw_arch.Int) in
  Iw_client.wl_release seg2;
  emit "struct1" (per_op c (struct_addr + (16 * 4)));
  (* cross#n: pointers into a segment with n total blocks. *)
  List.iter
    (fun n ->
      let seg_name = Printf.sprintf "bench/fig6-cross%d" n in
      let segn = Interweave.open_segment c seg_name in
      Iw_client.wl_acquire segn;
      let addrs = Array.init n (fun _ -> Interweave.malloc segn (Iw_types.Prim Iw_arch.Int)) in
      Iw_client.wl_release segn;
      emit (Printf.sprintf "cross%d" n) (per_op c addrs.(n / 2)))
    [ 1; 16; 64; 256; 1024; 4096; 16384; 65536 ];
  List.rev !results
