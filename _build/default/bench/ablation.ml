(* Ablations for the Section 3.3 optimizations DESIGN.md calls out: no-diff
   mode, diff run splicing, isomorphic type descriptors, last-block
   prediction, and server diff caching.  Each is measured with the
   optimization on and off on the workload it targets. *)

open Bench_util

let fresh_pair () =
  let server = Interweave.start_server () in
  let a = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  let b = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
  (Iw_client.options a).Iw_client.auto_no_diff <- false;
  (server, a, b)

let int_array_segment c name words =
  let seg = Interweave.open_segment c name in
  Iw_client.wl_acquire seg;
  let addr = Interweave.malloc seg (Iw_types.Array (Prim Iw_arch.Int, words)) ~name:"data" in
  let sp = Iw_client.space c in
  for i = 0 to words - 1 do
    Iw_mem.store_prim sp Iw_arch.Int (addr + (i * 4)) i
  done;
  Iw_client.wl_release seg;
  (seg, addr)

(* Modify every [ratio]-th word, release, return client-side collect stats. *)
let one_release c seg addr ~words ~ratio ~iter =
  let sp = Iw_client.space c in
  Iw_client.wl_acquire seg;
  let i = ref 0 in
  while !i < words do
    Iw_mem.store_prim sp Iw_arch.Int (addr + (!i * 4)) (!i + iter);
    i := !i + ratio
  done;
  client_delta c (fun () -> Iw_client.wl_release seg)

let splicing () =
  (* Ratio 2 is where splicing matters most: with it, the whole array is one
     run; without it, every other word is its own run. *)
  let words = (1 lsl 20) / 4 in
  let measure gap =
    let _server, a, _b = fresh_pair () in
    Iw_mem.set_splice_gap (Iw_client.space a) gap;
    let seg, addr = int_array_segment a "bench/splice" words in
    let samples =
      List.init 4 (fun iter -> one_release a seg addr ~words ~ratio:2 ~iter:(iter + 1))
    in
    let med f = List.nth (List.sort compare (List.map f samples)) 2 in
    (med (fun d -> d.d_translate), med (fun d -> d.d_bytes_sent))
  in
  let t_on, bytes_on = measure 2 in
  let t_off, bytes_off = measure 0 in
  print_header "Ablation: diff run splicing (1MB int array, every 2nd word modified)"
    [ "translate ms"; "KB sent" ];
  print_row "splicing on" [ ms t_on; string_of_int (bytes_on / 1024) ];
  print_row "splicing off" [ ms t_off; string_of_int (bytes_off / 1024) ]

let isomorphic () =
  (* A 32-int-field struct collapses to int[32] under the optimization,
     making block translation a tight array loop. *)
  let count = (1 lsl 20) / 128 in
  let measure enabled =
    let _server, a, _b = fresh_pair () in
    (Iw_client.options a).Iw_client.isomorphic <- enabled;
    let seg = Interweave.open_segment a "bench/iso" in
    Iw_client.wl_acquire seg;
    let addr =
      Interweave.malloc seg (Iw_types.Array (Shapes.struct_of 32 Iw_arch.Int, count))
        ~name:"data"
    in
    Iw_client.wl_release seg;
    Iw_client.set_no_diff seg true;
    let prep = Shapes.prepare a addr in
    let samples =
      List.init 4 (fun iter ->
          Iw_client.wl_acquire seg;
          Shapes.fill a prep ~targets:[| 0 |] ~iter;
          client_delta a (fun () -> Iw_client.wl_release seg))
    in
    List.nth (List.sort compare (List.map (fun d -> d.d_translate) samples)) 2
  in
  let t_on = measure true in
  let t_off = measure false in
  print_header "Ablation: isomorphic type descriptors (1MB of 32-int structs, no-diff mode)"
    [ "translate ms" ];
  print_row "isomorphic on" [ ms t_on ];
  print_row "isomorphic off" [ ms t_off ]

let prediction () =
  (* Many small blocks updated in order: exactly the access pattern block
     prediction serves.  Compare apply-side prediction hit rates and time. *)
  let nblocks = 4096 in
  let measure enabled =
    let server, a, b = fresh_pair () in
    Iw_server.set_prediction server enabled;
    (Iw_client.options b).Iw_client.prediction <- enabled;
    let seg = Interweave.open_segment a "bench/pred" in
    Iw_client.wl_acquire seg;
    let addrs =
      Array.init nblocks (fun _ ->
          Interweave.malloc seg (Iw_types.Array (Prim Iw_arch.Int, 4)))
    in
    Iw_client.wl_release seg;
    let seg_b = Interweave.open_segment ~create:false b "bench/pred" in
    Iw_client.rl_acquire seg_b;
    Iw_client.rl_release seg_b;
    Iw_client.reset_stats b;
    let sp = Iw_client.space a in
    let samples =
      List.init 4 (fun iter ->
          Iw_client.wl_acquire seg;
          Array.iter (fun a_ -> Iw_mem.store_prim sp Iw_arch.Int a_ (iter + 1)) addrs;
          Iw_client.wl_release seg;
          client_delta b (fun () ->
              Iw_client.rl_acquire seg_b;
              Iw_client.rl_release seg_b))
    in
    let apply = List.nth (List.sort compare (List.map (fun d -> d.d_apply) samples)) 2 in
    let st = Iw_client.stats b in
    let hits = st.Iw_client.pred_hits and misses = st.Iw_client.pred_misses in
    (apply, hits, misses)
  in
  let on_apply, on_hits, on_misses = measure true in
  let off_apply, off_hits, off_misses = measure false in
  print_header
    (Printf.sprintf "Ablation: last-block prediction (%d small blocks updated in order)" nblocks)
    [ "apply ms"; "pred hits"; "pred misses" ];
  print_row "prediction on" [ ms on_apply; string_of_int on_hits; string_of_int on_misses ];
  print_row "prediction off" [ ms off_apply; string_of_int off_hits; string_of_int off_misses ]

let diff_caching () =
  (* Several readers requesting the same update: the first miss builds the
     diff, the rest are served from the server's cache. *)
  let words = (1 lsl 20) / 4 in
  let measure capacity =
    let server = Iw_server.create ~diff_cache_capacity:capacity () in
    let a = Interweave.direct_client ~arch:Iw_arch.x86_32 server in
    (Iw_client.options a).Iw_client.auto_no_diff <- false;
    let seg, addr = int_array_segment a "bench/cache" words in
    let readers =
      List.init 4 (fun _ ->
          let c = Interweave.direct_client server in
          let s = Interweave.open_segment ~create:false c "bench/cache" in
          Iw_client.rl_acquire s;
          Iw_client.rl_release s;
          (c, s))
    in
    ignore (one_release a seg addr ~words ~ratio:64 ~iter:7 : client_delta);
    let t0 = now () in
    List.iter
      (fun (_, s) ->
        Iw_client.rl_acquire s;
        Iw_client.rl_release s)
      readers;
    let elapsed = now () -. t0 in
    let st = Iw_server.stats server in
    (elapsed, st.Iw_server.diff_cache_hits, st.Iw_server.diff_cache_misses)
  in
  let t_on, hits_on, misses_on = measure 64 in
  let t_off, hits_off, misses_off = measure 0 in
  print_header "Ablation: server diff caching (4 readers fetch the same update)"
    [ "total ms"; "cache hits"; "cache misses" ];
  print_row "cache on"
    [ ms t_on; string_of_int hits_on; string_of_int misses_on ];
  print_row "cache off"
    [ ms t_off; string_of_int hits_off; string_of_int misses_off ]

let no_diff_mode () =
  (* The headline Fig. 4 comparison, isolated: whole-segment modification
     with and without diffing machinery. *)
  let words = (1 lsl 20) / 4 in
  let _server, a, _b = fresh_pair () in
  let seg, addr = int_array_segment a "bench/nodiff" words in
  let diff_samples =
    List.init 4 (fun iter -> one_release a seg addr ~words ~ratio:1 ~iter:(iter + 1))
  in
  Iw_client.set_no_diff seg true;
  let block_samples =
    List.init 4 (fun iter -> one_release a seg addr ~words ~ratio:1 ~iter:(iter + 100))
  in
  let med l f = List.nth (List.sort compare (List.map f l)) 2 in
  print_header "Ablation: no-diff mode (1MB int array, fully modified)"
    [ "word diff ms"; "translate ms"; "total ms" ];
  print_row "diffing"
    [
      ms (med diff_samples (fun d -> d.d_word_diff));
      ms (med diff_samples (fun d -> d.d_translate));
      ms (med diff_samples (fun d -> d.d_word_diff +. d.d_translate));
    ];
  print_row "no-diff mode"
    [
      ms (med block_samples (fun d -> d.d_word_diff));
      ms (med block_samples (fun d -> d.d_translate));
      ms (med block_samples (fun d -> d.d_word_diff +. d.d_translate));
    ]

let run () =
  no_diff_mode ();
  splicing ();
  isomorphic ();
  prediction ();
  diff_caching ()
