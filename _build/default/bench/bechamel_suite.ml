(* Bechamel micro-benchmarks: one Test.make per paper table/figure, all in
   one grouped suite.  These measure the steady-state core operation of each
   experiment on reduced sizes; the paper-style tables (default subcommands)
   use the library's internal timers on full sizes. *)

open Bechamel
open Toolkit

(* Figure 4 core op: translate a fully modified 64 KB int array to wire
   format (no-diff mode: collect block). *)
let fig4_case () =
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  (Iw_client.options c).Iw_client.auto_no_diff <- false;
  let seg = Interweave.open_segment c "bechamel/fig4" in
  Iw_client.wl_acquire seg;
  let addr = Interweave.malloc seg (Iw_types.Array (Prim Iw_arch.Int, 16384)) in
  Iw_client.wl_release seg;
  Iw_client.set_no_diff seg true;
  let sp = Iw_client.space c in
  let iter = ref 0 in
  Staged.stage (fun () ->
      incr iter;
      Iw_client.wl_acquire seg;
      for i = 0 to 16383 do
        Iw_mem.store_prim sp Iw_arch.Int (addr + (i * 4)) (i + !iter)
      done;
      Iw_client.wl_release seg)

(* Figure 5 core op: sparse modification (every 64th word) with twin-based
   diff collection. *)
let fig5_case () =
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  (Iw_client.options c).Iw_client.auto_no_diff <- false;
  let seg = Interweave.open_segment c "bechamel/fig5" in
  Iw_client.wl_acquire seg;
  let addr = Interweave.malloc seg (Iw_types.Array (Prim Iw_arch.Int, 16384)) in
  Iw_client.wl_release seg;
  let sp = Iw_client.space c in
  let iter = ref 0 in
  Staged.stage (fun () ->
      incr iter;
      Iw_client.wl_acquire seg;
      let i = ref 0 in
      while !i < 16384 do
        Iw_mem.store_prim sp Iw_arch.Int (addr + (!i * 4)) (!i + !iter);
        i := !i + 64
      done;
      Iw_client.wl_release seg)

(* Figure 6 core ops: swizzle and unswizzle one pointer into a segment of
   1024 blocks. *)
let fig6_env () =
  let server = Interweave.start_server () in
  let c = Interweave.direct_client server in
  let seg = Interweave.open_segment c "bechamel/fig6" in
  Iw_client.wl_acquire seg;
  let addrs = Array.init 1024 (fun _ -> Interweave.malloc seg (Iw_types.Prim Iw_arch.Int)) in
  Iw_client.wl_release seg;
  (c, addrs.(512))

let fig6_swizzle () =
  let c, addr = fig6_env () in
  Staged.stage (fun () -> ignore (Iw_client.ptr_to_mip c addr : string))

let fig6_unswizzle () =
  let c, addr = fig6_env () in
  let mip = Iw_client.ptr_to_mip c addr in
  Staged.stage (fun () -> ignore (Iw_client.mip_to_ptr c mip : int))

(* Figure 7 core op: one 1% database increment through the lattice plus a
   coherent read. *)
let fig7_case () =
  let params = Iw_seqmine.Gen.scaled 0.01 in
  let db = Iw_seqmine.Gen.generate params in
  let server = Interweave.start_server () in
  let dbc = Interweave.direct_client server in
  let lattice = Iw_seqmine.Lattice.create dbc ~segment:"bechamel/fig7" ~min_support:8 in
  Iw_seqmine.Lattice.update lattice db ~from_customer:0 ~to_customer:(params.customers / 2);
  let mc = Interweave.direct_client server in
  let miner = Iw_seqmine.Lattice.attach mc ~segment:"bechamel/fig7" in
  let seg = Iw_seqmine.Lattice.segment miner in
  let one_pct = max 1 (params.customers / 100) in
  let pos = ref (params.customers / 2) in
  Staged.stage (fun () ->
      let from = !pos in
      pos := from + one_pct;
      if !pos > params.customers then pos := params.customers / 2;
      Iw_seqmine.Lattice.update lattice db ~from_customer:from
        ~to_customer:(min params.customers (from + one_pct));
      Iw_client.rl_acquire seg;
      Iw_client.rl_release seg)

let tests () =
  Test.make_grouped ~name:"interweave"
    [
      Test.make ~name:"fig4: collect block 64KB" (fig4_case ());
      Test.make ~name:"fig5: collect diff ratio-64 64KB" (fig5_case ());
      Test.make ~name:"fig6: swizzle (1024 blocks)" (fig6_swizzle ());
      Test.make ~name:"fig6: unswizzle (1024 blocks)" (fig6_unswizzle ());
      Test.make ~name:"fig7: 1% mining increment" (fig7_case ());
    ]

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~stabilize:false ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let run () =
  let results = benchmark () in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "no results"
  | Some tbl ->
    Printf.printf "\nBechamel estimates (monotonic clock):\n";
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
    List.iter
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] ->
          if ns > 1e6 then Printf.printf "  %-40s %10.3f ms/run\n" name (ns /. 1e6)
          else Printf.printf "  %-40s %10.1f ns/run\n" name ns
        | _ -> Printf.printf "  %-40s (no estimate)\n" name)
      (List.sort compare rows)
