(* Shared benchmark plumbing: timing, medians, table rendering. *)

let now () = Unix.gettimeofday ()

(* Run [f] repeatedly (at least [min_runs], at most [max_runs], stopping
   early once [min_total] seconds have been spent) and return the median of
   per-run results extracted by [measure]. *)
let median_of ?(min_runs = 3) ?(max_runs = 15) ?(min_total = 0.5) ~measure f =
  let samples = ref [] in
  let started = now () in
  let runs = ref 0 in
  while
    !runs < min_runs || (!runs < max_runs && now () -. started < min_total)
  do
    samples := measure f :: !samples;
    incr runs
  done;
  let sorted = List.sort compare !samples in
  List.nth sorted (List.length sorted / 2)

let median_time ?min_runs ?max_runs ?min_total f =
  median_of ?min_runs ?max_runs ?min_total f ~measure:(fun f ->
      let t0 = now () in
      f ();
      now () -. t0)

(* Client-stat deltas around one run of [f]. *)
type client_delta = {
  d_word_diff : float;
  d_translate : float;
  d_apply : float;
  d_bytes_sent : int;
  d_bytes_received : int;
}

let client_delta c f =
  let s = Iw_client.stats c in
  let w0 = s.Iw_client.word_diff_seconds
  and t0 = s.Iw_client.translate_seconds
  and a0 = s.Iw_client.apply_seconds
  and bs0 = s.Iw_client.bytes_sent
  and br0 = s.Iw_client.bytes_received in
  f ();
  {
    d_word_diff = s.Iw_client.word_diff_seconds -. w0;
    d_translate = s.Iw_client.translate_seconds -. t0;
    d_apply = s.Iw_client.apply_seconds -. a0;
    d_bytes_sent = s.Iw_client.bytes_sent - bs0;
    d_bytes_received = s.Iw_client.bytes_received - br0;
  }

(* Table rendering in the style of the paper's figures. *)

let print_header title columns =
  Printf.printf "\n%s\n" title;
  Printf.printf "%s\n" (String.make (String.length title) '=');
  Printf.printf "%-16s" "";
  List.iter (fun c -> Printf.printf "%14s" c) columns;
  print_newline ()

let print_row label cells =
  Printf.printf "%-16s" label;
  List.iter (fun c -> Printf.printf "%14s" c) cells;
  print_newline ()

let ms v = Printf.sprintf "%.2f" (v *. 1000.)

let usec v = Printf.sprintf "%.3f" (v *. 1e6)

let mb bytes = Printf.sprintf "%.2f" (float_of_int bytes /. 1024. /. 1024.)
