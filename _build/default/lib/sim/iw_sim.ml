let control_desc : Iw_types.desc =
  Struct
    [|
      { fname = "strength"; ftype = Prim Iw_arch.Double };
      { fname = "paused"; ftype = Prim Iw_arch.Int };
    |]

let header_desc : Iw_types.desc =
  Struct
    [|
      { fname = "step"; ftype = Prim Iw_arch.Int };
      { fname = "width"; ftype = Prim Iw_arch.Int };
      { fname = "height"; ftype = Prim Iw_arch.Int };
      { fname = "time"; ftype = Prim Iw_arch.Double };
      { fname = "grid"; ftype = Prim Iw_arch.Pointer };
    |]

type role =
  | Simulator of {
      mutable field : float array;  (* local working copy *)
      mutable t : float;
    }
  | Viewer

type t = {
  client : Iw_client.t;
  seg : Iw_client.seg;
  ctl_seg : Iw_client.seg;
  w : int;
  h : int;
  header : Iw_mem.addr;
  grid : Iw_mem.addr;
  ctl : Iw_mem.addr;
  (* field offsets for this client's architecture *)
  o_step : int;
  o_time : int;
  o_strength : int;
  o_paused : int;
  role : role;
}

let offsets arch =
  let lay = Iw_types.layout (Iw_types.local arch) header_desc in
  let off i = (Iw_types.locate_prim lay i).Iw_types.l_off in
  (* prim order: step, width, height, time, grid *)
  (off 0, off 1, off 2, off 3, off 4)

let ctl_offsets arch =
  let lay = Iw_types.layout (Iw_types.local arch) control_desc in
  let off i = (Iw_types.locate_prim lay i).Iw_types.l_off in
  (off 0, off 1)

(* The steering segment: "<segment>.ctl", one control block. *)
let open_control c ~segment ~create =
  let ctl_seg = Iw_client.open_segment ~create c (segment ^ ".ctl") in
  let ctl =
    match Iw_client.find_named_block ctl_seg "control" with
    | Some b -> b.Iw_mem.b_addr
    | None ->
      if not create then invalid_arg "Iw_sim: control segment not initialized"
      else begin
        Iw_client.wl_acquire ctl_seg;
        let a =
          match Iw_client.find_named_block ctl_seg "control" with
          | Some b -> b.Iw_mem.b_addr
          | None ->
            let a = Iw_client.malloc ~name:"control" ctl_seg control_desc in
            let o_strength, _ = ctl_offsets (Iw_client.arch c) in
            Iw_client.write_double c (a + o_strength) 10.;
            a
        in
        Iw_client.wl_release ctl_seg;
        a
      end
  in
  (ctl_seg, ctl)

let create c ~segment ~width ~height =
  let seg = Iw_client.open_segment c segment in
  let o_step, o_width, o_height, o_time, o_grid = offsets (Iw_client.arch c) in
  Iw_client.wl_acquire seg;
  let header = Iw_client.malloc ~name:"header" seg header_desc in
  let grid =
    Iw_client.malloc ~name:"grid" seg (Iw_types.Array (Prim Iw_arch.Double, width * height))
  in
  Iw_client.write_int c (header + o_width) width;
  Iw_client.write_int c (header + o_height) height;
  Iw_client.write_int c (header + o_step) 0;
  Iw_client.write_double c (header + o_time) 0.;
  Iw_client.write_ptr c (header + o_grid) grid;
  Iw_client.wl_release seg;
  let ctl_seg, ctl = open_control c ~segment ~create:true in
  let o_strength, o_paused = ctl_offsets (Iw_client.arch c) in
  {
    client = c;
    seg;
    ctl_seg;
    w = width;
    h = height;
    header;
    grid;
    ctl;
    o_step;
    o_time;
    o_strength;
    o_paused;
    role = Simulator { field = Array.make (width * height) 0.; t = 0. };
  }

let attach c ~segment =
  let seg = Iw_client.open_segment ~create:false c segment in
  let o_step, o_width, o_height, o_time, o_grid = offsets (Iw_client.arch c) in
  Iw_client.rl_acquire seg;
  let header =
    match Iw_client.find_named_block seg "header" with
    | Some b -> b.Iw_mem.b_addr
    | None -> invalid_arg "Iw_sim.attach: segment has no header block"
  in
  let w = Iw_client.read_int c (header + o_width) in
  let h = Iw_client.read_int c (header + o_height) in
  let grid = Iw_client.read_ptr c (header + o_grid) in
  Iw_client.rl_release seg;
  if w <= 0 || h <= 0 || grid = 0 then
    invalid_arg "Iw_sim.attach: segment not initialized (lock it once from the simulator)";
  let ctl_seg, ctl = open_control c ~segment ~create:false in
  let o_strength, o_paused = ctl_offsets (Iw_client.arch c) in
  {
    client = c;
    seg;
    ctl_seg;
    w;
    h;
    header;
    grid;
    ctl;
    o_step;
    o_time;
    o_strength;
    o_paused;
    role = Viewer;
  }

let width t = t.w

let height t = t.h

let set_source_strength t v =
  Iw_client.wl_acquire t.ctl_seg;
  Iw_client.write_double t.client (t.ctl + t.o_strength) v;
  Iw_client.wl_release t.ctl_seg

let source_strength t =
  Iw_client.rl_acquire t.ctl_seg;
  let v = Iw_client.read_double t.client (t.ctl + t.o_strength) in
  Iw_client.rl_release t.ctl_seg;
  v

let set_paused t p =
  Iw_client.wl_acquire t.ctl_seg;
  Iw_client.write_int t.client (t.ctl + t.o_paused) (if p then 1 else 0);
  Iw_client.wl_release t.ctl_seg

let paused t =
  Iw_client.rl_acquire t.ctl_seg;
  let v = Iw_client.read_int t.client (t.ctl + t.o_paused) <> 0 in
  Iw_client.rl_release t.ctl_seg;
  v

(* One advection–diffusion step with an orbiting hot source: the classic
   smoke-in-a-box toy.  Deterministic, so simulator and tests agree. *)
let evolve field w h time strength =
  let out = Array.make (w * h) 0. in
  let at x y =
    if x < 0 || x >= w || y < 0 || y >= h then 0. else field.((y * w) + x)
  in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let diffused =
        0.6 *. at x y
        +. 0.1 *. (at (x - 1) y +. at (x + 1) y +. at x (y - 1) +. at x (y + 1))
      in
      out.((y * w) + x) <- diffused *. 0.995
    done
  done;
  (* Orbiting source. *)
  let cx = float_of_int w /. 2. and cy = float_of_int h /. 2. in
  let r = 0.35 *. float_of_int (min w h) in
  let sx = int_of_float (cx +. (r *. cos time)) in
  let sy = int_of_float (cy +. (r *. sin time)) in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      let x = sx + dx and y = sy + dy in
      if x >= 0 && x < w && y >= 0 && y < h then
        out.((y * w) + x) <- out.((y * w) + x) +. strength
    done
  done;
  out

let step t =
  match t.role with
  | Viewer -> invalid_arg "Iw_sim.step: viewers cannot step the simulation"
  | Simulator s ->
    let c = t.client in
    (* Read the steering parameters published by viewers. *)
    let strength = source_strength t in
    let is_paused = paused t in
    if not is_paused then begin
      s.t <- s.t +. 0.15;
      s.field <- evolve s.field t.w t.h s.t strength
    end;
    Iw_client.wl_acquire t.seg;
    Array.iteri (fun i v -> Iw_client.write_double c (t.grid + (i * 8)) v) s.field;
    Iw_client.write_int c (t.header + t.o_step)
      (Iw_client.read_int c (t.header + t.o_step) + 1);
    Iw_client.write_double c (t.header + t.o_time) s.t;
    Iw_client.wl_release t.seg

let steps_published t =
  Iw_client.rl_acquire t.seg;
  let v = Iw_client.read_int t.client (t.header + t.o_step) in
  Iw_client.rl_release t.seg;
  v

let read_frame t =
  Iw_client.rl_acquire t.seg;
  let frame =
    Array.init (t.w * t.h) (fun i -> Iw_client.read_double t.client (t.grid + (i * 8)))
  in
  Iw_client.rl_release t.seg;
  frame

let density_at t ~x ~y =
  if x < 0 || x >= t.w || y < 0 || y >= t.h then invalid_arg "Iw_sim.density_at";
  Iw_client.read_double t.client (t.grid + (((y * t.w) + x) * 8))

let checksum t = Array.fold_left ( +. ) 0. (read_frame t)

let set_viewer_interval t secs = Iw_client.set_coherence t.seg (Iw_proto.Temporal secs)
