(** An Astroflow-style simulation sharing frames through InterWeave.

    The paper's Section 4.5 connects a Fortran stellar-dynamics simulator to
    a Java visualization front end by replacing file dumps with a shared
    segment; the visualizer controls its update rate with a temporal
    coherence bound.  This module reproduces that pattern with a small
    computational-fluid toy: a 2D advection–diffusion field driven by an
    orbiting source.  The simulator writes each step's grid into a segment
    under a write lock; any number of visualization clients attach and read
    under whatever coherence bound suits their frame rate. *)

type t

val create :
  Iw_client.t -> segment:string -> width:int -> height:int -> t
(** Set up the shared segment (header block plus grid block) and the
    simulator state. *)

val attach : Iw_client.t -> segment:string -> t
(** Attach to an existing simulation segment as a viewer.  Reads segment
    metadata to learn the grid dimensions. *)

val width : t -> int

val height : t -> int

val step : t -> unit
(** Advance the simulation one time step and publish the new frame (write
    critical section).  Only valid on the creating side. *)

val steps_published : t -> int
(** The step counter in the local cached copy. *)

val read_frame : t -> float array
(** Snapshot the grid from the local cached copy under a read lock
    (row-major, [width * height] values).  Respects the segment's coherence
    model, so a viewer with a temporal bound may see an older frame. *)

val density_at : t -> x:int -> y:int -> float

val checksum : t -> float
(** Sum of the local frame — used by tests to compare viewer copies against
    the simulator. *)

val set_viewer_interval : t -> float -> unit
(** Convenience: set a temporal coherence bound of that many seconds on the
    segment, the knob the paper's visualization front end exposes. *)

(** {1 Steering}

    The other half of the paper's Section 4.5: the visualization front end
    steers the running simulation.  Control parameters live in a companion
    segment ([<segment>.ctl]); any client may adjust them under a write lock,
    and the simulator reads them at every step. *)

val set_source_strength : t -> float -> unit
(** Steer the hot source's intensity (default 10.0).  Usable from viewers and
    the simulator alike. *)

val source_strength : t -> float

val set_paused : t -> bool -> unit
(** Pause the simulation: {!step} still publishes the step counter's frame
    but does not advance the physics while paused. *)

val paused : t -> bool
