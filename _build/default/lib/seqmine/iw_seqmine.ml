module Prng = struct
  (* SplitMix64, truncated to OCaml's 63-bit int.  Deterministic across runs
     and platforms. *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    float_of_int (Int64.to_int (Int64.shift_right_logical (next t) 11))
    /. float_of_int (1 lsl 53)
end

module Gen = struct
  type params = {
    customers : int;
    items : int;
    patterns : int;
    avg_pattern_len : int;
    avg_items_per_customer : int;
    seed : int;
  }

  let default =
    {
      customers = 100_000;
      items = 1_000;
      patterns = 5_000;
      avg_pattern_len = 4;
      avg_items_per_customer = 50;  (* 100k x 50 x 4B = 20 MB *)
      seed = 20030519;  (* ICDCS '03 *)
    }

  let scaled f =
    {
      default with
      customers = max 100 (int_of_float (float_of_int default.customers *. f));
      patterns = max 50 (int_of_float (float_of_int default.patterns *. f));
    }

  type db = {
    sequences : int array array;
    params : params;
  }

  (* Skewed item popularity: squaring a uniform variate concentrates mass on
     low item ids, approximating the Zipf-like draws of the Quest tool. *)
  let skewed_item rng items = 1 + int_of_float (Prng.float rng ** 2.0 *. float_of_int items)

  let generate p =
    let rng = Prng.create p.seed in
    (* Plant pool: frequent sequential patterns customers tend to follow. *)
    let patterns =
      Array.init p.patterns (fun _ ->
          let len = max 2 (p.avg_pattern_len - 1 + Prng.int rng 3) in
          Array.init len (fun _ -> min p.items (skewed_item rng p.items)))
    in
    let sequences =
      Array.init p.customers (fun _ ->
          let target = max 4 (p.avg_items_per_customer / 2 + Prng.int rng p.avg_items_per_customer) in
          let buf = Buffer.create (target * 2) in
          ignore buf;
          let out = ref [] and len = ref 0 in
          while !len < target do
            if Prng.float rng < 0.75 then begin
              (* Follow a planted pattern, with 10% per-item corruption. *)
              let pat = patterns.(Prng.int rng p.patterns) in
              Array.iter
                (fun item ->
                  let item =
                    if Prng.float rng < 0.1 then min p.items (skewed_item rng p.items)
                    else item
                  in
                  out := item :: !out;
                  incr len)
                pat
            end
            else begin
              out := min p.items (skewed_item rng p.items) :: !out;
              incr len
            end
          done;
          Array.of_list (List.rev !out))
    in
    { sequences; params = p }

  let size_bytes db = 4 * Array.fold_left (fun acc s -> acc + Array.length s) 0 db.sequences
end

module Lattice = struct
  let max_len = 3

  let max_children = 4

  let node_desc : Iw_types.desc =
    Struct
      [|
        { fname = "items"; ftype = Array (Prim Iw_arch.Int, max_len) };
        { fname = "length"; ftype = Prim Iw_arch.Int };
        { fname = "support"; ftype = Prim Iw_arch.Int };
        { fname = "first_version"; ftype = Prim Iw_arch.Int };
        { fname = "last_version"; ftype = Prim Iw_arch.Int };
        { fname = "nchild"; ftype = Prim Iw_arch.Int };
        { fname = "next"; ftype = Ptr "seq_node" };
        { fname = "child"; ftype = Array (Ptr "seq_node", max_children) };
      |]

  let root_desc : Iw_types.desc =
    Struct
      [|
        { fname = "nnodes"; ftype = Prim Iw_arch.Int };
        { fname = "updates"; ftype = Prim Iw_arch.Int };
        { fname = "head"; ftype = Ptr "seq_node" };
      |]

  (* Precomputed local byte offsets of node fields for one architecture. *)
  type offsets = {
    o_items : int;
    o_length : int;
    o_support : int;
    o_first_version : int;
    o_last_version : int;
    o_nchild : int;
    o_next : int;
    o_child : int;
    child_stride : int;
    r_nnodes : int;
    r_updates : int;
    r_head : int;
  }

  let offsets_for arch =
    let conv = Iw_types.local arch in
    let node_lay = Iw_types.layout conv node_desc in
    let root_lay = Iw_types.layout conv root_desc in
    let node_off i = (Iw_types.locate_prim node_lay i).Iw_types.l_off in
    let root_off i = (Iw_types.locate_prim root_lay i).Iw_types.l_off in
    (* prim order: items[0..2], length, support, first_version, last_version,
       nchild, next, child[0..3] *)
    {
      o_items = node_off 0;
      o_length = node_off 3;
      o_support = node_off 4;
      o_first_version = node_off 5;
      o_last_version = node_off 6;
      o_nchild = node_off 7;
      o_next = node_off 8;
      o_child = node_off 9;
      child_stride = arch.Iw_arch.pointer_size;
      r_nnodes = root_off 0;
      r_updates = root_off 1;
      r_head = root_off 2;
    }

  type t = {
    l_client : Iw_client.t;
    l_seg : Iw_client.seg;
    l_min_support : int;
    l_off : offsets;
    l_index : (int list, Iw_mem.addr) Hashtbl.t;
    l_counts : (int list, int) Hashtbl.t;
    l_root : Iw_mem.addr;
  }

  let segment t = t.l_seg

  let node_items c off a =
    let len = Iw_client.read_int c (a + off.o_length) in
    List.init len (fun i -> Iw_client.read_int c (a + off.o_items + (i * 4)))

  let rebuild_index t =
    let c = t.l_client in
    let off = t.l_off in
    Hashtbl.reset t.l_index;
    Hashtbl.reset t.l_counts;
    let rec walk a =
      if a <> 0 then begin
        let seq = node_items c off a in
        Hashtbl.replace t.l_index seq a;
        Hashtbl.replace t.l_counts seq (Iw_client.read_int c (a + off.o_support));
        walk (Iw_client.read_ptr c (a + off.o_next))
      end
    in
    walk (Iw_client.read_ptr c (t.l_root + off.r_head))

  let create c ~segment ~min_support =
    let seg = Iw_client.open_segment c segment in
    let off = offsets_for (Iw_client.arch c) in
    Iw_client.wl_acquire seg;
    let root =
      match Iw_client.find_named_block seg "root" with
      | Some b -> b.Iw_mem.b_addr
      | None -> Iw_client.malloc ~name:"root" seg root_desc
    in
    Iw_client.wl_release seg;
    let t =
      {
        l_client = c;
        l_seg = seg;
        l_min_support = min_support;
        l_off = off;
        l_index = Hashtbl.create 4096;
        l_counts = Hashtbl.create 4096;
        l_root = root;
      }
    in
    rebuild_index t;
    t

  let attach c ~segment =
    let seg = Iw_client.open_segment ~create:false c segment in
    Iw_client.rl_acquire seg;
    let root =
      match Iw_client.find_named_block seg "root" with
      | Some b -> b.Iw_mem.b_addr
      | None -> invalid_arg "Iw_seqmine.Lattice.attach: no root block"
    in
    Iw_client.rl_release seg;
    {
      l_client = c;
      l_seg = seg;
      l_min_support = max_int;
      l_off = offsets_for (Iw_client.arch c);
      l_index = Hashtbl.create 16;
      l_counts = Hashtbl.create 16;
      l_root = root;
    }

  (* Create the node for [seq], creating its prefix chain first; caller holds
     the write lock. *)
  let rec materialize t seq count =
    let c = t.l_client in
    let off = t.l_off in
    match Hashtbl.find_opt t.l_index seq with
    | Some a -> a
    | None ->
      let parent =
        match seq with
        | [] -> invalid_arg "materialize: empty sequence"
        | [ _ ] -> None
        | _ ->
          let prefix = List.filteri (fun i _ -> i < List.length seq - 1) seq in
          let pcount = Option.value ~default:0 (Hashtbl.find_opt t.l_counts prefix) in
          Some (materialize t prefix (max pcount count))
      in
      let a = Iw_client.malloc t.l_seg node_desc in
      List.iteri (fun i item -> Iw_client.write_int c (a + off.o_items + (i * 4)) item) seq;
      Iw_client.write_int c (a + off.o_length) (List.length seq);
      Iw_client.write_int c (a + off.o_support) count;
      let version = Iw_client.segment_version t.l_seg + 1 in
      Iw_client.write_int c (a + off.o_first_version) version;
      Iw_client.write_int c (a + off.o_last_version) version;
      (* Thread onto the all-nodes list. *)
      Iw_client.write_ptr c (a + off.o_next) (Iw_client.read_ptr c (t.l_root + off.r_head));
      Iw_client.write_ptr c (t.l_root + off.r_head) a;
      Iw_client.write_int c (t.l_root + off.r_nnodes)
        (Iw_client.read_int c (t.l_root + off.r_nnodes) + 1);
      (* Link from the parent when a slot is free. *)
      (match parent with
      | None -> ()
      | Some pa ->
        let n = Iw_client.read_int c (pa + off.o_nchild) in
        if n < max_children then begin
          Iw_client.write_ptr c (pa + off.o_child + (n * off.child_stride)) a;
          Iw_client.write_int c (pa + off.o_nchild) (n + 1)
        end);
      Hashtbl.replace t.l_index seq a;
      a

  let update t db ~from_customer ~to_customer =
    let c = t.l_client in
    let off = t.l_off in
    (* Count contiguous subsequences of length 1..max_len. *)
    let delta : (int list, int) Hashtbl.t = Hashtbl.create 4096 in
    let bump gram =
      Hashtbl.replace delta gram (1 + Option.value ~default:0 (Hashtbl.find_opt delta gram))
    in
    for cust = from_customer to to_customer - 1 do
      let seq = db.Gen.sequences.(cust) in
      let n = Array.length seq in
      for i = 0 to n - 1 do
        bump [ seq.(i) ];
        if i + 1 < n then bump [ seq.(i); seq.(i + 1) ];
        if i + 2 < n then bump [ seq.(i); seq.(i + 1); seq.(i + 2) ]
      done
    done;
    Iw_client.wl_acquire t.l_seg;
    let version = Iw_client.segment_version t.l_seg + 1 in
    Hashtbl.iter
      (fun gram d ->
        let total = d + Option.value ~default:0 (Hashtbl.find_opt t.l_counts gram) in
        Hashtbl.replace t.l_counts gram total;
        match Hashtbl.find_opt t.l_index gram with
        | Some a ->
          Iw_client.write_int c (a + off.o_support) total;
          Iw_client.write_int c (a + off.o_last_version) version
        | None ->
          if total >= t.l_min_support then
            ignore (materialize t gram total : Iw_mem.addr))
      delta;
    Iw_client.write_int c (t.l_root + off.r_updates)
      (Iw_client.read_int c (t.l_root + off.r_updates) + 1);
    Iw_client.wl_release t.l_seg

  let fold_nodes t ~init ~f =
    let c = t.l_client in
    let off = t.l_off in
    let rec walk a acc = if a = 0 then acc else walk (Iw_client.read_ptr c (a + off.o_next)) (f acc a) in
    walk (Iw_client.read_ptr c (t.l_root + off.r_head)) init

  let node_count t = fold_nodes t ~init:0 ~f:(fun acc _ -> acc + 1)

  let top t k =
    let c = t.l_client in
    let off = t.l_off in
    let all =
      fold_nodes t ~init:[] ~f:(fun acc a ->
          (node_items c off a, Iw_client.read_int c (a + off.o_support)) :: acc)
    in
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
    List.filteri (fun i _ -> i < k) sorted

  let support_of t seq =
    let c = t.l_client in
    let off = t.l_off in
    fold_nodes t ~init:None ~f:(fun acc a ->
        match acc with
        | Some _ -> acc
        | None ->
          if node_items c t.l_off a = seq then Some (Iw_client.read_int c (a + off.o_support))
          else None)

  let total_units t =
    List.fold_left
      (fun acc b -> acc + Iw_types.layout_prim_count b.Iw_mem.b_layout)
      0
      (Iw_client.blocks t.l_seg)
end
