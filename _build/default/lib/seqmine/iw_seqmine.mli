(** Incremental sequence mining over InterWeave shared state.

    Reproduces the paper's datamining application (Section 4.4): a database
    server reads from an active, growing database of customer transactions
    and maintains a summary structure — a lattice of item sequences, each
    node holding pointers to the sequences it prefixes — in an InterWeave
    segment.  Mining clients share that segment and, thanks to relaxed
    coherence, need not fetch every version.

    The database is synthetic, in the style of the IBM Quest generator the
    paper uses [12]: sequence patterns are planted into customer transaction
    histories.  Default parameters match the paper: 100,000 customers, 1,000
    items, 5,000 patterns of average length 4, about 20 MB total. *)

(** Deterministic pseudo-random numbers (SplitMix64), so benchmarks and tests
    are reproducible. *)
module Prng : sig
  type t

  val create : int -> t

  val int : t -> int -> int
  (** [int t bound] in [\[0, bound)]. *)

  val float : t -> float
  (** In [\[0, 1)]. *)
end

module Gen : sig
  type params = {
    customers : int;
    items : int;  (** distinct item ids, drawn with a skewed distribution *)
    patterns : int;
    avg_pattern_len : int;
    avg_items_per_customer : int;
    seed : int;
  }

  val default : params
  (** The paper's workload: 100,000 customers, 1,000 items, 5,000 patterns of
      average length 4, ~20 MB. *)

  val scaled : float -> params
  (** [scaled f] shrinks [customers] (and hence total size) by [f] while
      keeping the statistical structure; used by tests and quick runs. *)

  type db = {
    sequences : int array array;  (** per-customer item sequence, items >= 1 *)
    params : params;
  }

  val generate : params -> db

  val size_bytes : db -> int
  (** Size of the raw database (4 bytes per item occurrence). *)
end

(** The shared summary structure. *)
module Lattice : sig
  val max_len : int
  (** Maximum mined sequence length (3). *)

  val max_children : int

  val node_desc : Iw_types.desc
  (** The IDL-style node type: items, length, support, a next pointer
      threading all nodes, and child pointers — roughly one third pointers,
      as in the paper's summary structure. *)

  type t
  (** A client's handle on the lattice segment. *)

  val create : Iw_client.t -> segment:string -> min_support:int -> t
  (** Create (or open) the lattice segment and its root block. *)

  val attach : Iw_client.t -> segment:string -> t
  (** Open an existing lattice read-only (mining client side). *)

  val segment : t -> Iw_client.seg

  val update : t -> Gen.db -> from_customer:int -> to_customer:int -> unit
  (** Feed customers [from_customer, to_customer) through the miner: under a
      single write critical section, bump supports of existing sequence nodes
      and materialize newly frequent sequences. *)

  val node_count : t -> int
  (** Number of lattice nodes in the local cached copy (walks the shared
      structure; callers should hold a read lock). *)

  val top : t -> int -> (int list * int) list
  (** [top t k] returns the [k] most frequent sequences with their supports,
      read from the local cached copy. *)

  val support_of : t -> int list -> int option
  (** Support of an exact sequence, if currently in the lattice. *)

  val total_units : t -> int
  (** Primitive data units in the lattice segment (local bookkeeping). *)
end
