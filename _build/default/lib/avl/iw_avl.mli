(** Balanced (AVL) search trees with order queries.

    InterWeave keeps all of its metadata — blocks by serial number, blocks by
    name, blocks by address, subsegments by address, version markers — in
    balanced search trees (paper, Sections 3.1 and 3.2).  The address-keyed
    trees additionally need "which entry spans this address" lookups, provided
    here as {!Make.floor} and {!Make.ceiling}. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type key = Ord.t

  type 'a t
  (** Persistent AVL tree mapping keys to values. *)

  val empty : 'a t

  val is_empty : 'a t -> bool

  val cardinal : 'a t -> int

  val height : 'a t -> int

  val add : key -> 'a -> 'a t -> 'a t
  (** [add k v t] binds [k] to [v], replacing any previous binding. *)

  val remove : key -> 'a t -> 'a t
  (** [remove k t] is [t] without the binding for [k]; [t] itself if absent. *)

  val find_opt : key -> 'a t -> 'a option

  val mem : key -> 'a t -> bool

  val floor : key -> 'a t -> (key * 'a) option
  (** [floor k t] is the binding with the greatest key [<= k]. *)

  val ceiling : key -> 'a t -> (key * 'a) option
  (** [ceiling k t] is the binding with the least key [>= k]. *)

  val succ : key -> 'a t -> (key * 'a) option
  (** [succ k t] is the binding with the least key [> k]. *)

  val pred : key -> 'a t -> (key * 'a) option
  (** [pred k t] is the binding with the greatest key [< k]. *)

  val min_binding : 'a t -> (key * 'a) option

  val max_binding : 'a t -> (key * 'a) option

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  (** In-order (ascending key) iteration. *)

  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  (** In-order fold. *)

  val to_list : 'a t -> (key * 'a) list
  (** Bindings in ascending key order. *)

  val of_list : (key * 'a) list -> 'a t

  val invariant : 'a t -> bool
  (** Structural check: AVL balance and key ordering both hold.  Used by the
      test suite. *)
end
