module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type key = Ord.t

  type 'a t =
    | Leaf
    | Node of { l : 'a t; k : key; v : 'a; r : 'a t; h : int; n : int }

  let empty = Leaf

  let is_empty = function Leaf -> true | Node _ -> false

  let height = function Leaf -> 0 | Node { h; _ } -> h

  let cardinal = function Leaf -> 0 | Node { n; _ } -> n

  let mk l k v r =
    let hl = height l and hr = height r in
    let h = 1 + if hl > hr then hl else hr in
    Node { l; k; v; r; h; n = 1 + cardinal l + cardinal r }

  (* Rebalance assuming [l] and [r] differ in height by at most 2. *)
  let balance l k v r =
    let hl = height l and hr = height r in
    if hl > hr + 1 then
      match l with
      | Leaf -> assert false
      | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then mk ll lk lv (mk lr k v r)
        else begin
          match lr with
          | Leaf -> assert false
          | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
            mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r)
        end
    else if hr > hl + 1 then
      match r with
      | Leaf -> assert false
      | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then mk (mk l k v rl) rk rv rr
        else begin
          match rl with
          | Leaf -> assert false
          | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
            mk (mk l k v rll) rlk rlv (mk rlr rk rv rr)
        end
    else mk l k v r

  let rec add key value = function
    | Leaf -> mk Leaf key value Leaf
    | Node { l; k; v; r; _ } ->
      let c = Ord.compare key k in
      if c = 0 then mk l key value r
      else if c < 0 then balance (add key value l) k v r
      else balance l k v (add key value r)

  let rec min_binding = function
    | Leaf -> None
    | Node { l = Leaf; k; v; _ } -> Some (k, v)
    | Node { l; _ } -> min_binding l

  let rec max_binding = function
    | Leaf -> None
    | Node { r = Leaf; k; v; _ } -> Some (k, v)
    | Node { r; _ } -> max_binding r

  let rec remove_min = function
    | Leaf -> assert false
    | Node { l = Leaf; k; v; r; _ } -> (k, v, r)
    | Node { l; k; v; r; _ } ->
      let mk_, mv_, l' = remove_min l in
      (mk_, mv_, balance l' k v r)

  let rec remove key = function
    | Leaf -> Leaf
    | Node { l; k; v; r; _ } ->
      let c = Ord.compare key k in
      if c < 0 then balance (remove key l) k v r
      else if c > 0 then balance l k v (remove key r)
      else begin
        match r with
        | Leaf -> l
        | _ ->
          let sk, sv, r' = remove_min r in
          balance l sk sv r'
      end

  let rec find_opt key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      let c = Ord.compare key k in
      if c = 0 then Some v else if c < 0 then find_opt key l else find_opt key r

  let mem key t = find_opt key t <> None

  let rec floor key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      let c = Ord.compare key k in
      if c = 0 then Some (k, v)
      else if c < 0 then floor key l
      else begin
        match floor key r with Some _ as b -> b | None -> Some (k, v)
      end

  let rec ceiling key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      let c = Ord.compare key k in
      if c = 0 then Some (k, v)
      else if c > 0 then ceiling key r
      else begin
        match ceiling key l with Some _ as b -> b | None -> Some (k, v)
      end

  let rec succ key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      if Ord.compare key k < 0 then begin
        match succ key l with Some _ as b -> b | None -> Some (k, v)
      end
      else succ key r

  let rec pred key = function
    | Leaf -> None
    | Node { l; k; v; r; _ } ->
      if Ord.compare key k > 0 then begin
        match pred key r with Some _ as b -> b | None -> Some (k, v)
      end
      else pred key l

  let rec iter f = function
    | Leaf -> ()
    | Node { l; k; v; r; _ } ->
      iter f l;
      f k v;
      iter f r

  let rec fold f t acc =
    match t with
    | Leaf -> acc
    | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

  let to_list t = fold (fun k v acc -> (k, v) :: acc) t [] |> List.rev

  let of_list l = List.fold_left (fun t (k, v) -> add k v t) empty l

  let invariant t =
    let rec check = function
      | Leaf -> Some (0, None, None)
      | Node { l; k; v = _; r; h; n } -> begin
        match (check l, check r) with
        | Some (hl, lmin, lmax), Some (hr, rmin, rmax) ->
          let ordered_left =
            match lmax with None -> true | Some m -> Ord.compare m k < 0
          and ordered_right =
            match rmin with None -> true | Some m -> Ord.compare k m < 0
          in
          if
            ordered_left && ordered_right
            && abs (hl - hr) <= 1
            && h = 1 + max hl hr
            && n = 1 + cardinal l + cardinal r
          then
            let mn = match lmin with None -> Some k | m -> m
            and mx = match rmax with None -> Some k | m -> m in
            Some (h, mn, mx)
          else None
        | _ -> None
      end
    in
    check t <> None
end
