exception Cycle

let max_depth = 4096

let xdr_pad n = (4 - (n land 3)) land 3

(* The walkers traverse the descriptor and recompute field offsets with the
   same algorithm as [Iw_types.layout], so local layout is honoured without
   needing access to the layout's internals. *)

let fold_fields conv fields ~init ~f =
  let off = ref 0 and acc = ref init in
  Array.iter
    (fun (fld : Iw_types.field) ->
      let lay = Iw_types.layout conv fld.ftype in
      let f_off = Iw_arch.align_up !off (Iw_types.align lay) in
      acc := f !acc f_off fld.ftype lay;
      off := f_off + Iw_types.size lay)
    fields;
  !acc

let null_flag = 0

let present_flag = 1

let marshal buf sp ~registry ~addr lay0 =
  let arch = Iw_mem.arch sp in
  let conv = Iw_types.local arch in
  let load_ptr bytes off =
    Iw_arch.load_uint arch bytes ~off ~size:arch.Iw_arch.pointer_size
  in
  let rec value depth addr desc =
    if depth > max_depth then raise Cycle;
    Iw_mem.with_raw sp addr (fun bytes base ->
        match desc with
        | Iw_types.Prim Iw_arch.Char ->
          Iw_wire.Buf.u32 buf (Iw_arch.load_uint arch bytes ~off:base ~size:1)
        | Prim Short ->
          Iw_wire.Buf.u32 buf
            (Iw_arch.load_sint arch bytes ~off:base ~size:2 land 0xffffffff)
        | Prim Int ->
          Iw_wire.Buf.u32 buf (Iw_arch.load_uint arch bytes ~off:base ~size:4)
        | Prim Long ->
          Iw_wire.Buf.u64 buf
            (Iw_arch.load_sint arch bytes ~off:base ~size:arch.Iw_arch.long_size)
        | Prim Float -> Iw_wire.Buf.f32 buf (Iw_arch.load_float arch bytes ~off:base)
        | Prim Double ->
          Iw_wire.Buf.f64 buf (Iw_arch.load_double arch bytes ~off:base)
        | Prim (String capacity) ->
          let s = Iw_arch.load_cstring bytes ~off:base ~capacity in
          Iw_wire.Buf.u32 buf (String.length s);
          Iw_wire.Buf.raw buf (Bytes.unsafe_of_string s) ~off:0
            ~len:(String.length s);
          Iw_wire.Buf.pad buf (xdr_pad (String.length s))
        | Prim Pointer ->
          let a = load_ptr bytes base in
          Iw_wire.Buf.u32 buf (if a = 0 then null_flag else present_flag)
        | Ptr name ->
          let a = load_ptr bytes base in
          if a = 0 then Iw_wire.Buf.u32 buf null_flag
          else begin
            Iw_wire.Buf.u32 buf present_flag;
            match Iw_types.Registry.resolve_name registry name with
            | None -> invalid_arg ("Iw_xdr.marshal: unknown pointee type " ^ name)
            | Some pointee -> value (depth + 1) a pointee
          end
        | Array (d, n) ->
          let stride = Iw_types.size (Iw_types.layout conv d) in
          for i = 0 to n - 1 do
            value (depth + 1) (addr + (i * stride)) d
          done
        | Struct fields ->
          fold_fields conv fields ~init:() ~f:(fun () f_off ftype _lay ->
              value (depth + 1) (addr + f_off) ftype))
  in
  value 0 addr (Iw_types.descriptor lay0)

let unmarshal r heap ~registry ~addr ~fresh_serial lay0 =
  let sp = Iw_mem.heap_space heap in
  let arch = Iw_mem.arch sp in
  let conv = Iw_types.local arch in
  let rec value depth addr desc =
    if depth > max_depth then raise Cycle;
    match desc with
    | Iw_types.Prim Iw_arch.Char ->
      let v = Iw_wire.Reader.u32 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:1 v)
    | Prim Short ->
      let v = Iw_wire.Reader.u32 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:2 v)
    | Prim Int ->
      let v = Iw_wire.Reader.u32 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:4 v)
    | Prim Long ->
      let v = Iw_wire.Reader.u64 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:arch.Iw_arch.long_size v)
    | Prim Float ->
      let v = Iw_wire.Reader.f32 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_float arch bytes ~off:base v)
    | Prim Double ->
      let v = Iw_wire.Reader.f64 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_double arch bytes ~off:base v)
    | Prim (String capacity) ->
      let n = Iw_wire.Reader.u32 r in
      let s = Iw_wire.Reader.take r n in
      Iw_wire.Reader.skip r (xdr_pad n);
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_cstring bytes ~off:base ~capacity s)
    | Prim Pointer ->
      let flag = Iw_wire.Reader.u32 r in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:arch.Iw_arch.pointer_size flag)
    | Ptr name ->
      let flag = Iw_wire.Reader.u32 r in
      let target =
        if flag = null_flag then 0
        else begin
          match Iw_types.Registry.resolve_name registry name with
          | None -> invalid_arg ("Iw_xdr.unmarshal: unknown pointee type " ^ name)
          | Some pointee ->
            let lay = Iw_types.layout conv pointee in
            let b =
              Iw_mem.alloc heap ~serial:(fresh_serial ()) ~desc_serial:0 lay
            in
            value (depth + 1) b.Iw_mem.b_addr pointee;
            b.Iw_mem.b_addr
        end
      in
      Iw_mem.with_raw sp addr (fun bytes base ->
          Iw_arch.store_uint arch bytes ~off:base ~size:arch.Iw_arch.pointer_size
            target)
    | Array (d, n) ->
      let stride = Iw_types.size (Iw_types.layout conv d) in
      for i = 0 to n - 1 do
        value (depth + 1) (addr + (i * stride)) d
      done
    | Struct fields ->
      fold_fields conv fields ~init:() ~f:(fun () f_off ftype _lay ->
          value (depth + 1) (addr + f_off) ftype)
  in
  value 0 addr (Iw_types.descriptor lay0)

let marshaled_size sp ~registry ~addr lay0 =
  let arch = Iw_mem.arch sp in
  let conv = Iw_types.local arch in
  let rec value depth addr desc acc =
    if depth > max_depth then raise Cycle;
    match desc with
    | Iw_types.Prim (Iw_arch.Char | Short | Int | Float) -> acc + 4
    | Prim (Long | Double) -> acc + 8
    | Prim (String capacity) ->
      let n =
        Iw_mem.with_raw sp addr (fun bytes base ->
            String.length (Iw_arch.load_cstring bytes ~off:base ~capacity))
      in
      acc + 4 + n + xdr_pad n
    | Prim Pointer -> acc + 4
    | Ptr name ->
      let a =
        Iw_mem.with_raw sp addr (fun bytes base ->
            Iw_arch.load_uint arch bytes ~off:base ~size:arch.Iw_arch.pointer_size)
      in
      if a = 0 then acc + 4
      else begin
        match Iw_types.Registry.resolve_name registry name with
        | None -> invalid_arg ("Iw_xdr.marshaled_size: unknown pointee type " ^ name)
        | Some pointee -> value (depth + 1) a pointee (acc + 4)
      end
    | Array (d, n) ->
      let stride = Iw_types.size (Iw_types.layout conv d) in
      let acc = ref acc in
      for i = 0 to n - 1 do
        acc := value (depth + 1) (addr + (i * stride)) d !acc
      done;
      !acc
    | Struct fields ->
      fold_fields conv fields ~init:acc ~f:(fun acc f_off ftype _lay ->
          value (depth + 1) (addr + f_off) ftype acc)
  in
  value 0 addr (Iw_types.descriptor lay0) 0
