(** Runtime type descriptors.

    Every InterWeave block has a well-defined type described by a descriptor
    (paper, Section 2.1).  Descriptors drive translation between a machine's
    local format and the machine-independent wire format: they record, for
    every field, both its byte offset in local format and its
    machine-independent {e primitive offset} — its index in the flattened
    sequence of primitive data units (paper, Section 3.1, Figure 3). *)

type prim = Iw_arch.prim

type desc =
  | Prim of prim
  | Ptr of string
      (** A typed pointer: the name of the pointed-at type, resolved through a
          {!Registry}.  Naming (rather than inlining) the pointee keeps
          recursive types — a list node pointing to itself — acyclic.  Lays
          out exactly like [Prim Pointer]. *)
  | Array of desc * int
  | Struct of field array

and field = {
  fname : string;
  ftype : desc;
}

val equal : desc -> desc -> bool

val pp : Format.formatter -> desc -> unit

val prim_count : desc -> int
(** Number of primitive data units in a value of this type.  [Pointer] and
    [String _] each count as one unit. *)

val validate : desc -> (unit, string) result
(** Reject descriptors that cannot describe a block: empty structs or arrays,
    non-positive string capacities. *)

(** {1 Layout}

    A {!conv} is a set of size/alignment conventions: one per machine
    architecture ({!local}), plus the packed machine-independent convention
    used by the server to store master copies ({!wire}), in which pointers and
    strings occupy fixed 4-byte handle slots because their variable-length
    payloads are stored separately (paper, Section 3.2). *)

type conv

val local : Iw_arch.t -> conv
(** Layout conventions of the given architecture.  Calls with the same
    architecture share one memo table. *)

val wire : conv
(** Packed machine-independent layout: no padding, chars 1 byte, shorts 2,
    ints and floats 4, longs and doubles 8, pointer/string slots 4. *)

type layout
(** Memoized layout of one descriptor under one convention. *)

val layout : conv -> desc -> layout

val size : layout -> int
(** Total size in bytes, including trailing padding to the type's alignment. *)

val align : layout -> int

val layout_prim_count : layout -> int

val descriptor : layout -> desc

(** Location of one primitive data unit inside a value. *)
type located = {
  l_prim : prim;
  l_index : int;  (** primitive offset: index in the flattened unit sequence *)
  l_off : int;  (** byte offset of the unit's first byte *)
}

val locate_byte : layout -> int -> located option
(** [locate_byte lay off] finds the primitive unit whose bytes span local byte
    offset [off].  [None] if [off] falls on alignment padding. *)

val locate_prim : layout -> int -> located
(** [locate_prim lay i] finds primitive unit number [i].
    @raise Invalid_argument if [i] is out of range. *)

val fold_prims :
  layout -> from:int -> upto:int -> init:'a -> f:('a -> located -> 'a) -> 'a
(** Fold [f] over primitive units [from] (inclusive) to [upto] (exclusive), in
    primitive-offset order.  Whole arrays are traversed arithmetically, so a
    partial fold over a huge array costs only the units visited. *)

(** A maximal run of consecutive identical primitives at constant stride —
    what an array (or an isomorphic-optimized struct) flattens to. *)
type span = {
  s_prim : prim;
  s_index : int;  (** primitive offset of the first unit *)
  s_off : int;  (** byte offset of the first unit *)
  s_stride : int;  (** bytes between consecutive units *)
  s_count : int;
}

val fold_spans :
  layout -> from:int -> upto:int -> init:'a -> f:('a -> span -> 'a) -> 'a
(** Like {!fold_prims} but delivers arrays of primitives as single spans, so
    translation can run a tight per-type loop over bulk data. *)

(** {1 Isomorphic descriptors} *)

val optimize : desc -> desc
(** Collapse runs of two or more consecutive struct fields with identical
    primitive type into a single array field, and flatten nested arrays of
    primitives — the paper's isomorphic type descriptor optimization
    (Section 3.3).  The result has the same layout and primitive sequence
    under every convention; only traversal gets cheaper. *)

(** {1 Registry}

    Type descriptors carry segment-specific serial numbers used in
    wire-format messages (paper, Section 3.1).  A registry holds one
    segment's serial assignment plus the name table that resolves {!Ptr}
    references. *)

module Registry : sig
  type t

  val create : unit -> t

  val register : t -> desc -> int
  (** Assign (or return the existing) serial for a descriptor. *)

  val adopt : t -> int -> desc -> unit
  (** Record a serial assignment received over the wire.
      @raise Invalid_argument on a conflicting existing assignment. *)

  val find : t -> int -> desc option

  val serial_of : t -> desc -> int option

  val registered_since : t -> int -> (int * desc) list
  (** Descriptors with serial strictly greater than the argument, ascending —
      what a diff to a client holding that many descriptors must carry. *)

  val count : t -> int

  val define_name : t -> string -> desc -> unit
  (** Bind a type name for {!Ptr} resolution.  Rebinding to a different
      descriptor raises [Invalid_argument]. *)

  val resolve_name : t -> string -> desc option

  val names : t -> (string * desc) list
end
