type prim = Iw_arch.prim

type desc =
  | Prim of prim
  | Ptr of string
  | Array of desc * int
  | Struct of field array

and field = {
  fname : string;
  ftype : desc;
}

let equal = ( = )

let rec pp ppf = function
  | Prim Iw_arch.Char -> Format.fprintf ppf "char"
  | Prim Short -> Format.fprintf ppf "short"
  | Prim Int -> Format.fprintf ppf "int"
  | Prim Long -> Format.fprintf ppf "long"
  | Prim Float -> Format.fprintf ppf "float"
  | Prim Double -> Format.fprintf ppf "double"
  | Prim Pointer -> Format.fprintf ppf "ptr"
  | Prim (String n) -> Format.fprintf ppf "string<%d>" n
  | Ptr name -> Format.fprintf ppf "%s*" name
  | Array (d, n) -> Format.fprintf ppf "%a[%d]" pp d n
  | Struct fields ->
    Format.fprintf ppf "struct {@[";
    Array.iter (fun f -> Format.fprintf ppf " %s:%a;" f.fname pp f.ftype) fields;
    Format.fprintf ppf "@] }"

let rec prim_count = function
  | Prim _ | Ptr _ -> 1
  | Array (d, n) -> n * prim_count d
  | Struct fields -> Array.fold_left (fun acc f -> acc + prim_count f.ftype) 0 fields

let rec validate = function
  | Prim (Iw_arch.String n) ->
    if n >= 2 then Ok () else Error "string capacity must be at least 2"
  | Prim _ | Ptr _ -> Ok ()
  | Array (_, n) when n <= 0 -> Error "array count must be positive"
  | Array (d, _) -> validate d
  | Struct [||] -> Error "struct must have at least one field"
  | Struct fields ->
    Array.fold_left
      (fun acc f -> match acc with Error _ -> acc | Ok () -> validate f.ftype)
      (Ok ()) fields

type conv = {
  cname : string;
  size_of : prim -> int;
  align_of : prim -> int;
  memo : (desc, layout) Hashtbl.t;
}

and layout = {
  conv : conv;
  ldesc : desc;
  lsize : int;  (* stride: size aligned up to [lalign] *)
  lalign : int;
  lpcount : int;
  shape : shape;
}

and shape =
  | L_prim of prim
  | L_array of { elem : layout; count : int }
  | L_struct of { fields : fld array }

and fld = {
  f_name : string;
  f_off : int;
  f_pstart : int;
  f_lay : layout;
}

let local_convs : (string, conv) Hashtbl.t = Hashtbl.create 8

let local arch =
  match Hashtbl.find_opt local_convs arch.Iw_arch.name with
  | Some c -> c
  | None ->
    let c =
      {
        cname = arch.Iw_arch.name;
        size_of = Iw_arch.prim_size arch;
        align_of = Iw_arch.prim_align arch;
        memo = Hashtbl.create 64;
      }
    in
    Hashtbl.add local_convs arch.Iw_arch.name c;
    c

(* Packed machine-independent layout used for server master copies: no
   padding; variable-length prims (pointers, strings) occupy 4-byte handle
   slots because their payloads live in a separate area (paper, Sec. 3.2). *)
let wire =
  let size_of = function
    | Iw_arch.Char -> 1
    | Short -> 2
    | Int -> 4
    | Long -> 8
    | Float -> 4
    | Double -> 8
    | Pointer -> 4
    | String _ -> 4
  in
  { cname = "wire"; size_of; align_of = (fun _ -> 1); memo = Hashtbl.create 64 }

let rec layout conv desc =
  match Hashtbl.find_opt conv.memo desc with
  | Some l -> l
  | None ->
    let l =
      match desc with
      | Ptr _ ->
        let p = Iw_arch.Pointer in
        let align = conv.align_of p in
        {
          conv;
          ldesc = desc;
          lsize = Iw_arch.align_up (conv.size_of p) align;
          lalign = align;
          lpcount = 1;
          shape = L_prim p;
        }
      | Prim p ->
        let align = conv.align_of p in
        {
          conv;
          ldesc = desc;
          lsize = Iw_arch.align_up (conv.size_of p) align;
          lalign = align;
          lpcount = 1;
          shape = L_prim p;
        }
      | Array (d, n) ->
        let elem = layout conv d in
        {
          conv;
          ldesc = desc;
          lsize = n * elem.lsize;
          lalign = elem.lalign;
          lpcount = n * elem.lpcount;
          shape = L_array { elem; count = n };
        }
      | Struct fields ->
        let n = Array.length fields in
        let flds = Array.make n { f_name = ""; f_off = 0; f_pstart = 0; f_lay = layout conv (Prim Char) } in
        let off = ref 0 and pstart = ref 0 and align = ref 1 in
        for i = 0 to n - 1 do
          let f = fields.(i) in
          let f_lay = layout conv f.ftype in
          let f_off = Iw_arch.align_up !off f_lay.lalign in
          flds.(i) <- { f_name = f.fname; f_off; f_pstart = !pstart; f_lay };
          off := f_off + f_lay.lsize;
          pstart := !pstart + f_lay.lpcount;
          if f_lay.lalign > !align then align := f_lay.lalign
        done;
        {
          conv;
          ldesc = desc;
          lsize = Iw_arch.align_up !off !align;
          lalign = !align;
          lpcount = !pstart;
          shape = L_struct { fields = flds };
        }
    in
    Hashtbl.add conv.memo desc l;
    l

let size l = l.lsize

let align l = l.lalign

let layout_prim_count l = l.lpcount

let descriptor l = l.ldesc

type located = {
  l_prim : prim;
  l_index : int;
  l_off : int;
}

let locate_byte lay off0 =
  let rec go lay ~off ~base_off ~base_idx =
    if off < 0 || off >= lay.lsize then None
    else
      match lay.shape with
      | L_prim p ->
        if off < lay.conv.size_of p then
          Some { l_prim = p; l_index = base_idx; l_off = base_off }
        else None (* padding inside an aligned prim slot *)
      | L_array { elem; count = _ } ->
        let i = off / elem.lsize in
        go elem ~off:(off - (i * elem.lsize))
          ~base_off:(base_off + (i * elem.lsize))
          ~base_idx:(base_idx + (i * elem.lpcount))
      | L_struct { fields } ->
        (* Greatest field whose offset is <= off. *)
        let n = Array.length fields in
        let rec search lo hi =
          if lo >= hi then lo - 1
          else
            let mid = (lo + hi) / 2 in
            if fields.(mid).f_off <= off then search (mid + 1) hi else search lo mid
        in
        let i = search 0 n in
        if i < 0 then None
        else
          let f = fields.(i) in
          go f.f_lay ~off:(off - f.f_off) ~base_off:(base_off + f.f_off)
            ~base_idx:(base_idx + f.f_pstart)
  in
  go lay ~off:off0 ~base_off:0 ~base_idx:0

let locate_prim lay idx0 =
  if idx0 < 0 || idx0 >= lay.lpcount then
    invalid_arg "Iw_types.locate_prim: index out of range";
  let rec go lay ~idx ~base_off ~base_idx =
    match lay.shape with
    | L_prim p -> { l_prim = p; l_index = base_idx; l_off = base_off }
    | L_array { elem; count = _ } ->
      let i = idx / elem.lpcount in
      go elem ~idx:(idx - (i * elem.lpcount))
        ~base_off:(base_off + (i * elem.lsize))
        ~base_idx:(base_idx + (i * elem.lpcount))
    | L_struct { fields } ->
      let n = Array.length fields in
      let rec search lo hi =
        if lo >= hi then lo - 1
        else
          let mid = (lo + hi) / 2 in
          if fields.(mid).f_pstart <= idx then search (mid + 1) hi else search lo mid
      in
      let f = fields.(search 0 n) in
      go f.f_lay ~idx:(idx - f.f_pstart) ~base_off:(base_off + f.f_off)
        ~base_idx:(base_idx + f.f_pstart)
  in
  go lay ~idx:idx0 ~base_off:0 ~base_idx:0

let fold_prims lay ~from ~upto ~init ~f =
  let rec go lay ~base_off ~base_idx acc =
    let lo = base_idx and hi = base_idx + lay.lpcount in
    if upto <= lo || from >= hi then acc
    else
      match lay.shape with
      | L_prim p -> f acc { l_prim = p; l_index = base_idx; l_off = base_off }
      | L_array { elem; count } ->
        let first =
          if from <= lo then 0 else (from - base_idx) / elem.lpcount
        and last =
          if upto >= hi then count - 1 else (upto - 1 - base_idx) / elem.lpcount
        in
        let acc = ref acc in
        for i = first to last do
          acc :=
            go elem
              ~base_off:(base_off + (i * elem.lsize))
              ~base_idx:(base_idx + (i * elem.lpcount))
              !acc
        done;
        !acc
      | L_struct { fields } ->
        Array.fold_left
          (fun acc fl ->
            go fl.f_lay ~base_off:(base_off + fl.f_off)
              ~base_idx:(base_idx + fl.f_pstart) acc)
          acc fields
  in
  go lay ~base_off:0 ~base_idx:0 init

type span = {
  s_prim : prim;
  s_index : int;
  s_off : int;
  s_stride : int;
  s_count : int;
}

let fold_spans lay ~from ~upto ~init ~f =
  let rec go lay ~base_off ~base_idx acc =
    let lo = base_idx and hi = base_idx + lay.lpcount in
    if upto <= lo || from >= hi then acc
    else
      match lay.shape with
      | L_prim p ->
        f acc { s_prim = p; s_index = base_idx; s_off = base_off; s_stride = lay.lsize; s_count = 1 }
      | L_array { elem = { shape = L_prim p; lsize = stride; _ }; count } ->
        let first = if from <= lo then 0 else from - base_idx
        and last = if upto >= hi then count - 1 else upto - 1 - base_idx in
        f acc
          {
            s_prim = p;
            s_index = base_idx + first;
            s_off = base_off + (first * stride);
            s_stride = stride;
            s_count = last - first + 1;
          }
      | L_array { elem; count } ->
        let first = if from <= lo then 0 else (from - base_idx) / elem.lpcount
        and last =
          if upto >= hi then count - 1 else (upto - 1 - base_idx) / elem.lpcount
        in
        let acc = ref acc in
        for i = first to last do
          acc :=
            go elem
              ~base_off:(base_off + (i * elem.lsize))
              ~base_idx:(base_idx + (i * elem.lpcount))
              !acc
        done;
        !acc
      | L_struct { fields } ->
        Array.fold_left
          (fun acc fl ->
            go fl.f_lay ~base_off:(base_off + fl.f_off)
              ~base_idx:(base_idx + fl.f_pstart) acc)
          acc fields
  in
  go lay ~base_off:0 ~base_idx:0 init

(* Isomorphic descriptors (paper, Sec. 3.3): runs of consecutive struct
   fields of identical primitive type become one array field, and arrays of
   arrays of primitives are flattened.  Layout is preserved because a
   primitive's size is always a multiple of its alignment, so consecutive
   same-prim fields are contiguous under every convention. *)
let rec optimize desc =
  match desc with
  | Prim _ | Ptr _ -> desc
  | Array (d, n) -> begin
    match optimize d with
    | Array (d', m) -> Array (d', n * m)
    | d' -> Array (d', n)
  end
  | Struct fields ->
    let collapsed = ref [] in
    let flush_run p run_len first_name =
      if run_len = 1 then collapsed := { fname = first_name; ftype = Prim p } :: !collapsed
      else collapsed := { fname = first_name; ftype = Array (Prim p, run_len) } :: !collapsed
    in
    let run : (prim * int * string) option ref = ref None in
    let emit f =
      (match !run with Some (p, n, name) -> flush_run p n name | None -> ());
      run := None;
      collapsed := f :: !collapsed
    in
    Array.iter
      (fun f ->
        match (optimize f.ftype, !run) with
        | Prim p, Some (p', n, name) when p = p' -> run := Some (p', n + 1, name)
        | Prim p, Some (p', n, name) ->
          flush_run p' n name;
          run := Some (p, 1, f.fname)
        | Prim p, None -> run := Some (p, 1, f.fname)
        | t, _ -> emit { fname = f.fname; ftype = t })
      fields;
    (match !run with Some (p, n, name) -> flush_run p n name | None -> ());
    let fields' = Array.of_list (List.rev !collapsed) in
    begin
      match fields' with
      | [| { ftype = (Array _ | Prim _ | Ptr _) as t; _ } |] -> t
      | _ -> Struct fields'
    end

module Registry = struct
  type t = {
    mutable by_serial : (int * desc) list;  (* descending serial *)
    serials : (desc, int) Hashtbl.t;
    names : (string, desc) Hashtbl.t;
    mutable next : int;
  }

  let create () =
    { by_serial = []; serials = Hashtbl.create 16; names = Hashtbl.create 16; next = 1 }

  let register t desc =
    match Hashtbl.find_opt t.serials desc with
    | Some s -> s
    | None ->
      let s = t.next in
      t.next <- s + 1;
      Hashtbl.add t.serials desc s;
      t.by_serial <- (s, desc) :: t.by_serial;
      s

  let find t serial =
    List.find_map (fun (s, d) -> if s = serial then Some d else None) t.by_serial

  let adopt t serial desc =
    (match find t serial with
    | Some d when not (equal d desc) ->
      invalid_arg "Iw_types.Registry.adopt: conflicting serial assignment"
    | Some _ | None -> ());
    if find t serial = None then begin
      Hashtbl.replace t.serials desc serial;
      t.by_serial <- (serial, desc) :: t.by_serial;
      if serial >= t.next then t.next <- serial + 1
    end

  let serial_of t desc = Hashtbl.find_opt t.serials desc

  let registered_since t serial =
    List.filter (fun (s, _) -> s > serial) t.by_serial
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let count t = List.length t.by_serial

  let define_name t name desc =
    match Hashtbl.find_opt t.names name with
    | Some d when not (equal d desc) ->
      invalid_arg ("Iw_types.Registry.define_name: conflicting definition of " ^ name)
    | Some _ -> ()
    | None -> Hashtbl.add t.names name desc

  let resolve_name t name = Hashtbl.find_opt t.names name

  let names t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.names []
end
