type endianness =
  | Little
  | Big

type prim =
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Pointer
  | String of int

type t = {
  name : string;
  endianness : endianness;
  short_size : int;
  int_size : int;
  long_size : int;
  pointer_size : int;
  float_align : int;
  double_align : int;
  long_align : int;
  pointer_align : int;
}

let x86_32 =
  {
    name = "x86_32";
    endianness = Little;
    short_size = 2;
    int_size = 4;
    long_size = 4;
    pointer_size = 4;
    float_align = 4;
    double_align = 4;
    long_align = 4;
    pointer_align = 4;
  }

let sparc32 =
  {
    name = "sparc32";
    endianness = Big;
    short_size = 2;
    int_size = 4;
    long_size = 4;
    pointer_size = 4;
    float_align = 4;
    double_align = 8;
    long_align = 4;
    pointer_align = 4;
  }

let mips32 = { sparc32 with name = "mips32" }

let alpha64 =
  {
    name = "alpha64";
    endianness = Little;
    short_size = 2;
    int_size = 4;
    long_size = 8;
    pointer_size = 8;
    float_align = 4;
    double_align = 8;
    long_align = 8;
    pointer_align = 8;
  }

let all = [ x86_32; sparc32; mips32; alpha64 ]

let find name = List.find_opt (fun a -> a.name = name) all

let prim_size arch = function
  | Char -> 1
  | Short -> arch.short_size
  | Int -> arch.int_size
  | Long -> arch.long_size
  | Float -> 4
  | Double -> 8
  | Pointer -> arch.pointer_size
  | String capacity -> capacity

let prim_align arch = function
  | Char -> 1
  | Short -> arch.short_size
  | Int -> arch.int_size
  | Long -> arch.long_align
  | Float -> arch.float_align
  | Double -> arch.double_align
  | Pointer -> arch.pointer_align
  | String _ -> 1

let align_up off a = (off + a - 1) / a * a

let word_size = 4

(* These run once per primitive datum during translation — the hottest loop
   in the system — so the common sizes avoid per-byte loops and boxing. *)
let load_uint arch b ~off ~size =
  match (size, arch.endianness) with
  | 1, _ -> Char.code (Bytes.get b off)
  | 2, Little -> Bytes.get_uint16_le b off
  | 2, Big -> Bytes.get_uint16_be b off
  | 4, Little -> Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
  | 4, Big -> Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
  | 8, Little -> Int64.to_int (Bytes.get_int64_le b off)
  | 8, Big -> Int64.to_int (Bytes.get_int64_be b off)
  | _ -> invalid_arg "Iw_arch.load_uint: size must be 1, 2, 4, or 8"

let load_sint arch b ~off ~size =
  match (size, arch.endianness) with
  | 1, _ -> (Char.code (Bytes.get b off) lxor 0x80) - 0x80
  | 2, Little -> Bytes.get_int16_le b off
  | 2, Big -> Bytes.get_int16_be b off
  | 4, Little -> Int32.to_int (Bytes.get_int32_le b off)
  | 4, Big -> Int32.to_int (Bytes.get_int32_be b off)
  | 8, Little -> Int64.to_int (Bytes.get_int64_le b off)
  | 8, Big -> Int64.to_int (Bytes.get_int64_be b off)
  | _ -> invalid_arg "Iw_arch.load_sint: size must be 1, 2, 4, or 8"

let store_uint arch b ~off ~size v =
  match (size, arch.endianness) with
  | 1, _ -> Bytes.set b off (Char.chr (v land 0xff))
  | 2, Little -> Bytes.set_uint16_le b off (v land 0xffff)
  | 2, Big -> Bytes.set_uint16_be b off (v land 0xffff)
  | 4, Little -> Bytes.set_int32_le b off (Int32.of_int v)
  | 4, Big -> Bytes.set_int32_be b off (Int32.of_int v)
  | 8, Little -> Bytes.set_int64_le b off (Int64.of_int v)
  | 8, Big -> Bytes.set_int64_be b off (Int64.of_int v)
  | _ -> invalid_arg "Iw_arch.store_uint: size must be 1, 2, 4, or 8"

let load_float arch b ~off =
  Int32.float_of_bits (Int32.of_int (load_sint arch b ~off ~size:4))

let store_float arch b ~off v =
  store_uint arch b ~off ~size:4 (Int32.to_int (Int32.bits_of_float v) land 0xffffffff)

(* Doubles need full 64-bit patterns, which [int] cannot hold; go through
   Int64 explicitly. *)
let load_double arch b ~off =
  Int64.float_of_bits
    (match arch.endianness with
    | Little -> Bytes.get_int64_le b off
    | Big -> Bytes.get_int64_be b off)

let store_double arch b ~off v =
  let bits = Int64.bits_of_float v in
  match arch.endianness with
  | Little -> Bytes.set_int64_le b off bits
  | Big -> Bytes.set_int64_be b off bits

let load_cstring b ~off ~capacity =
  let rec len i = if i >= capacity || Bytes.get b (off + i) = '\000' then i else len (i + 1) in
  Bytes.sub_string b off (len 0)

let store_cstring b ~off ~capacity s =
  let n = min (String.length s) (capacity - 1) in
  Bytes.blit_string s 0 b off n;
  Bytes.fill b (off + n) (capacity - n) '\000'
