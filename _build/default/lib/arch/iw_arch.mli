(** Machine architecture descriptors.

    InterWeave clients run on heterogeneous machines that disagree about byte
    order, primitive sizes, and alignment (paper, Section 1).  OCaml's managed
    heap cannot exhibit those differences directly, so each client owns an
    emulated address space of raw bytes whose layout is dictated by one of the
    descriptors below.  All loads and stores of shared data go through this
    module and therefore honour the emulated machine's conventions, exactly as
    compiled C code would on the real machine. *)

type endianness =
  | Little
  | Big

(** Primitive data unit.  Offsets inside MIPs and wire-format diffs are
    measured in these units (paper, Section 2.1).  [String capacity] is an
    inline NUL-terminated character buffer of fixed local capacity; its wire
    form is the actual string, length-prefixed.  [Pointer] is stored locally
    as a machine-word address and travels as a MIP string. *)
type prim =
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Pointer
  | String of int

type t = {
  name : string;
  endianness : endianness;
  short_size : int;
  int_size : int;
  long_size : int;
  pointer_size : int;
  float_align : int;
  double_align : int;
  long_align : int;
  pointer_align : int;
}

val x86_32 : t
(** 32-bit little-endian, i386 ABI: 4-byte longs and pointers, doubles aligned
    to 4 bytes. *)

val sparc32 : t
(** 32-bit big-endian, doubles aligned to 8 bytes. *)

val mips32 : t
(** 32-bit big-endian, MIPS o32-like. *)

val alpha64 : t
(** 64-bit little-endian: 8-byte longs and pointers. *)

val all : t list

val find : string -> t option
(** Look an architecture up by [name]. *)

val prim_size : t -> prim -> int
(** Local (in-memory) size of a primitive on this architecture, in bytes. *)

val prim_align : t -> prim -> int
(** Local alignment requirement of a primitive, in bytes. *)

val align_up : int -> int -> int
(** [align_up off a] is the least multiple of [a] that is [>= off]. *)

val word_size : int
(** Granularity of twin/page comparison during diffing: 4 bytes, matching the
    paper's word-by-word comparison. *)

(** {1 Raw accessors}

    These read and write primitive values at a byte offset in a raw buffer,
    honouring the architecture's byte order and sizes.  Integer values wider
    than 63 bits are not representable in shared data (the IDL has no
    [unsigned long long]), so OCaml's [int] suffices on a 64-bit host. *)

val load_uint : t -> Bytes.t -> off:int -> size:int -> int
(** Zero-extended load of [size] bytes (1, 2, 4, or 8). *)

val load_sint : t -> Bytes.t -> off:int -> size:int -> int
(** Sign-extended load of [size] bytes. *)

val store_uint : t -> Bytes.t -> off:int -> size:int -> int -> unit
(** Truncating store of [size] bytes. *)

val load_float : t -> Bytes.t -> off:int -> float
(** IEEE 754 single-precision load (widened to [float]). *)

val store_float : t -> Bytes.t -> off:int -> float -> unit

val load_double : t -> Bytes.t -> off:int -> float

val store_double : t -> Bytes.t -> off:int -> float -> unit

val load_cstring : Bytes.t -> off:int -> capacity:int -> string
(** Read a NUL-terminated string from a fixed-capacity inline buffer. *)

val store_cstring : Bytes.t -> off:int -> capacity:int -> string -> unit
(** Write a string into a fixed-capacity inline buffer, truncating to
    [capacity - 1] bytes and NUL-terminating.  Unused tail bytes are zeroed so
    that word-level diffs of strings are deterministic. *)
