(* Standalone driver for the analysis tooling: lints IDL files against every
   (or a chosen set of) machine architecture descriptors, model-checks the
   coherence protocol (--model), lints the OCaml tree's lock discipline
   (--race), and compares benchmark result documents (--bench-compare).
   Exit status: 0 when clean (notes never fail a run), 1 when errors — or,
   under --Werror, warnings — were reported, 2 on usage or parse failures. *)

let resolve_arches = function
  | [] -> Ok Iw_arch.all
  | names ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Iw_arch.find n with
        | Some a -> go (a :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown architecture %S (known: %s)" n
               (String.concat ", " (List.map (fun a -> a.Iw_arch.name) Iw_arch.all))))
    in
    go [] names

(* --bench-schema: structural validation of the benchmark harness's JSON
   results document (BENCH_results.json), run as part of `dune build @check`
   so an encoder regression fails the build, not a downstream consumer.
   Expected shape: { suite: str, paper: str, quick: bool, size_bytes: num,
   figures: { figN: [ { field: str|num|bool, ... }, ... ], ... } }. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_schema_errors doc =
  let module J = Iw_obs_json in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let field name check =
    match J.member name doc with
    | None -> err "missing top-level field %S" name
    | Some v -> check v
  in
  let expect_str name = function J.Str _ -> () | _ -> err "%S must be a string" name in
  field "suite" (expect_str "suite");
  field "paper" (expect_str "paper");
  field "quick" (function J.Bool _ -> () | _ -> err "\"quick\" must be a bool");
  field "size_bytes" (function J.Num _ -> () | _ -> err "\"size_bytes\" must be a number");
  field "figures" (function
    | J.Obj figs ->
      List.iter
        (fun (fig, rows) ->
          match rows with
          | J.Arr rows ->
            List.iteri
              (fun i row ->
                match row with
                | J.Obj fields ->
                  List.iter
                    (fun (k, v) ->
                      match v with
                      | J.Str _ | J.Num _ | J.Bool _ -> ()
                      | _ -> err "%s[%d].%s: expected scalar" fig i k)
                    fields;
                  if fields = [] then err "%s[%d]: empty row object" fig i
                | _ -> err "%s[%d]: expected an object" fig i)
              rows
          | _ -> err "figure %S must be an array of rows" fig)
        figs;
      (* The ycsb macro-benchmark section, when present, must carry the
         fields the regression gate and the README's worked example rely
         on: an "overall" row with throughput and tail percentiles. *)
      let series row =
        match row with
        | J.Obj fs -> List.assoc_opt "series" fs
        | _ -> None
      in
      (match List.assoc_opt "ycsb" figs with
      | None | Some (J.Arr []) -> ()
      | Some (J.Arr rows) -> (
        match List.find_opt (fun r -> series r = Some (J.Str "overall")) rows with
        | None -> err "ycsb: missing the \"overall\" series row"
        | Some (J.Obj fs) ->
          List.iter
            (fun k ->
              match List.assoc_opt k fs with
              | Some (J.Num _) -> ()
              | _ -> err "ycsb overall row: missing numeric field %S" k)
            [ "throughput_ops_per_s"; "p50_us"; "p99_us"; "p999_us" ]
        | Some _ -> ())
      | Some _ -> ());
      (* The phase figure rides with ycsb: the server-side decomposition of
         the latency the run measured.  A document carrying a ycsb section
         must also say where that time went — one row per pipeline phase
         with its share of the total, plus a "phase:total" row whose
         coverage_pct says how much of the measured total the phases
         explain. *)
      (match (List.assoc_opt "ycsb" figs, List.assoc_opt "phase" figs) with
      | (None | Some (J.Arr [])), _ -> ()
      | Some _, None -> err "phase: figure missing (required alongside ycsb)"
      | Some _, Some (J.Arr rows) ->
        let require name keys =
          match List.find_opt (fun r -> series r = Some (J.Str name)) rows with
          | None -> err "phase: missing the %S series row" name
          | Some (J.Obj fs) ->
            List.iter
              (fun k ->
                match List.assoc_opt k fs with
                | Some (J.Num _) -> ()
                | _ -> err "phase %s row: missing numeric field %S" name k)
              keys
          | Some _ -> ()
        in
        List.iter
          (fun ph ->
            require ("phase:" ^ ph)
              [ "count"; "sum_us"; "share_pct"; "p50_us"; "p99_us" ])
          [ "decode"; "lock_wait"; "service"; "wal"; "reply" ];
        require "phase:total" [ "count"; "sum_us"; "phase_sum_us"; "coverage_pct" ]
      | Some _, Some _ -> err "figure \"phase\" must be an array of rows")
    | _ -> err "\"figures\" must be an object");
  List.rev !errs

let run_bench_schema path =
  match Iw_obs_json.parse (read_file path) with
  | exception Sys_error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Error e ->
    Printf.eprintf "iw-check: %s: invalid JSON: %s\n" path e;
    1
  | Ok doc -> (
    match bench_schema_errors doc with
    | [] ->
      Printf.printf "%s: bench schema OK\n" path;
      0
    | errs ->
      List.iter (fun m -> Printf.eprintf "iw-check: %s: %s\n" path m) errs;
      1)

(* --fault-plan: validate an IW_FAULT / --fault-plan string without running
   anything, so CI and operators can vet a plan before pointing it at a
   server. *)
let run_fault_plan s =
  match Iw_fault.parse s with
  | Ok p ->
    Format.printf "fault plan OK: %a@." Iw_fault.pp p;
    0
  | Error msg ->
    Printf.eprintf "iw-check: invalid fault plan: %s\n" msg;
    1

(* --store: offline validation of a server's durability directory — every
   checkpoint's magic and CRC trailer, every write-ahead-log record's CRC,
   and version continuity from each checkpoint into its segment's log.  A
   torn log tail is reported but does not fail the run (it is the normal
   shape of a crash and recovery truncates it); corrupt records, bad
   checkpoints, version gaps, and checkpoint→log discontinuities do. *)
let run_store dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "iw-check: %s: not a directory\n" dir;
    2
  end
  else begin
    let files = Sys.readdir dir in
    Array.sort compare files;
    let errors = ref 0 in
    let err fmt =
      incr errors;
      Printf.ksprintf (fun m -> Printf.eprintf "iw-check: %s\n" m) fmt
    in
    (* Checkpoint versions by segment name, for continuity against the log. *)
    let ckpt_versions = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        let path = Filename.concat dir f in
        if Filename.check_suffix f Iw_store.checkpoint_suffix then begin
          match Iw_store.verify_checkpoint path with
          | Ok (name, version) ->
            Hashtbl.replace ckpt_versions name version;
            Printf.printf "%s: checkpoint OK (%s at version %d)\n" f name version
          | Error msg -> err "%s: %s" f msg
        end
        else if Filename.check_suffix f Iw_store.log_suffix then begin
          match Iw_store.scan_log path with
          | Error msg -> err "%s: %s" f msg
          | Ok r ->
            (match r.Iw_store.lr_tail with
            | Iw_store.Tail_clean -> ()
            | Iw_store.Tail_torn reason ->
              Printf.printf
                "%s: torn tail (%s) — consistent with a crash; recovery will \
                 truncate it\n"
                f reason
            | Iw_store.Tail_corrupt reason -> err "%s: %s" f reason);
            (match r.Iw_store.lr_gap with
            | Some (expected, got) ->
              err "%s: version gap in log: expected %d, found %d" f expected got
            | None -> ());
            (match r.Iw_store.lr_segment with
            | None ->
              if r.Iw_store.lr_records > 0 then err "%s: no header record" f
            | Some name ->
              (* Continuity: the log's first commit must continue its
                 segment's checkpoint (or start from scratch without one).
                 First commits at or below the checkpoint version are stale
                 records the checkpoint already covers — replay skips them. *)
              let ckpt =
                match Hashtbl.find_opt ckpt_versions name with
                | Some v -> v
                | None -> 0
              in
              (match r.Iw_store.lr_first_commit with
              | Some first when first > ckpt + 1 ->
                err
                  "%s: log for %s starts at version %d but its checkpoint \
                   ends at %d (missing %d version(s))"
                  f name first ckpt
                  (first - ckpt - 1)
              | _ -> ());
              Printf.printf
                "%s: log OK (%s, %d record(s), %d commit(s)%s)\n" f name
                r.Iw_store.lr_records r.Iw_store.lr_commits
                (match (r.Iw_store.lr_first_commit, r.Iw_store.lr_last_commit) with
                | Some a, Some b -> Printf.sprintf ", versions %d..%d" a b
                | _ -> ""))
        end
        else if Filename.check_suffix f ".corrupt" then
          Printf.printf "%s: quarantined file (left by a previous recovery)\n" f)
      files;
    if !errors = 0 then begin
      Printf.printf "%s: store OK\n" dir;
      0
    end
    else 1
  end

(* --model: exhaustively explore the bounded protocol model.  Exit 0 when
   every reachable state satisfies the invariants, 1 with a minimized,
   replayable schedule when one fails, 2 on bad flags. *)
let run_model ~clients ~depth ~crash ~seed ~broken ~coherence ~replay_sched =
  let ( let* ) r k =
    match r with
    | Ok v -> k v
    | Error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
  in
  let* coherences =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | s :: rest -> (
        match Iw_model.coherence_of_string s with
        | Ok c -> go (c :: acc) rest
        | Error e -> Error e)
    in
    match String.split_on_char ',' coherence |> List.filter (fun s -> s <> "") with
    | [] -> Error "empty --coherence list"
    | parts -> go [] parts
  in
  let* broken =
    match broken with
    | None -> Ok None
    | Some s -> Result.map Option.some (Iw_model.broken_of_string s)
  in
  let* () = if clients < 1 then Error "--clients must be at least 1" else Ok () in
  let cfg =
    {
      Iw_model.default_config with
      Iw_model.n_clients = clients;
      coherences;
      crash;
      broken;
    }
  in
  let pp_coh = function
    | Iw_model.Full -> "full"
    | Iw_model.Delta n -> Printf.sprintf "delta:%d" n
    | Iw_model.Temporal -> "temporal"
    | Iw_model.Diff_bound n -> Printf.sprintf "diff:%d" n
  in
  Printf.printf "model: %d client(s), coherence [%s], lease on, crash %s%s\n" clients
    (String.concat ", "
       (List.init clients (fun i -> pp_coh cfg.Iw_model.coherences.(i mod Array.length cfg.Iw_model.coherences))))
    (if crash then "on" else "off")
    (match cfg.Iw_model.broken with
    | None -> ""
    | Some _ -> Printf.sprintf ", broken variant injected");
  match replay_sched with
  | Some sched_s -> (
    let* sched = Iw_explore.schedule_of_string sched_s in
    match Iw_explore.replay cfg sched with
    | Error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
    | Ok None ->
      Printf.printf "replay: %d step(s), no violation\n" (List.length sched);
      0
    | Ok (Some viol) ->
      Printf.printf "replay: violation %s: %s\n" viol.Iw_model.v_code
        viol.Iw_model.v_message;
      1)
  | None -> (
    let r = Iw_explore.explore ?seed ~max_states:depth cfg in
    Printf.printf "explored %d state(s), %d transition(s), max depth %d%s\n"
      r.Iw_explore.r_states r.Iw_explore.r_transitions r.Iw_explore.r_depth
      (if r.Iw_explore.r_truncated then
         Printf.sprintf " — TRUNCATED at the %d-state bound (not exhaustive)" depth
       else if r.Iw_explore.r_violation <> None then " — stopped at first violation"
       else " — exhaustive");
    match r.Iw_explore.r_violation with
    | None ->
      Printf.printf "invariants hold on every explored state\n";
      0
    | Some cx ->
      Printf.printf "VIOLATION %s: %s\n" cx.Iw_explore.cx_code cx.Iw_explore.cx_message;
      Printf.printf "minimized schedule (%d step(s), shrunk from %d):\n  %s\n"
        (List.length cx.Iw_explore.cx_schedule)
        cx.Iw_explore.cx_shrunk_from
        (Iw_explore.schedule_to_string cx.Iw_explore.cx_schedule);
      Printf.printf "replay with: iw-check --model%s --clients %d --coherence %s%s --replay '%s'\n"
        (if crash then " --crash" else "")
        clients coherence
        (match broken with
        | Some b ->
          Printf.sprintf " --model-broken %s"
            (match b with
            | Iw_model.No_dedup_rebuild -> "no-dedup-rebuild"
            | Iw_model.Ack_before_log -> "ack-before-log"
            | Iw_model.No_lock_check -> "no-lock-check"
            | Iw_model.No_reclaim -> "no-reclaim"
            | Iw_model.Stale_full_reads -> "stale-full-reads")
        | None -> "")
        (Iw_explore.schedule_to_string cx.Iw_explore.cx_schedule);
      1)

(* --race: the source-level lock-discipline lint over .ml trees. *)
let run_race paths werror =
  let paths = if paths = [] then [ "lib"; "bin" ] else paths in
  match Iw_src_lint.lint_files paths with
  | Error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Ok ds -> (
    List.iter (fun d -> Format.printf "%a@." Iw_src_lint.pp_diagnostic d) ds;
    if ds = [] then Printf.printf "race: %s: clean\n" (String.concat " " paths);
    match Iw_src_lint.worst ds with
    | Some Iw_lint.Error -> 1
    | Some Iw_lint.Warning when werror -> 1
    | _ -> 0)

(* --bench-compare: regression gate between two benchmark result documents.
   Per figure, every row of OLD is matched in NEW (by its string/bool
   fields, or its first numeric field when it has none) and each shared
   numeric field contributes the ratio new/old; a figure regresses when the
   median ratio exceeds 1.20 (all benchmark metrics are lower-is-better).
   Rows or figures missing from NEW fail the comparison outright.

   The ycsb macro-benchmark section is noisier than the micro-benchmarks
   (it measures an open-loop distributed workload, not a kernel), so only
   its load-bearing cells are compared at all — throughput and the latency
   percentiles — and of those, the "overall" row's throughput/p50/p90/p99
   are additionally gated individually: a regression there must fail even
   when the figure's median stays flat.  The p999 and per-coherence-model
   cells come from too few tail samples in a quick run to gate one by one;
   they feed only the median.  Throughput is higher-is-better; its ratio
   is inverted (old/new) so the same >1.20 threshold still means
   "regression". *)

let ycsb_compared_fields =
  [ "throughput_ops_per_s"; "p50_us"; "p90_us"; "p99_us"; "p999_us" ]

let ycsb_gated_fields = [ "throughput_ops_per_s"; "p50_us"; "p90_us"; "p99_us" ]

(* The phase figure's absolute cells (sums, percentiles, counts) scale with
   the run length and offered load, so comparing them across documents is
   noise; only each phase's share of the total is shape-stable, and even
   that feeds the figure median only (a share shifting between phases is a
   diagnosis, not automatically a regression). *)
let phase_compared_fields = [ "share_pct" ]
let run_bench_compare old_path new_path =
  let module J = Iw_obs_json in
  let parse path =
    match J.parse (read_file path) with
    | exception Sys_error msg -> Error msg
    | Ok doc -> Ok (path, doc)
    | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
  in
  match (parse old_path, parse new_path) with
  | Error e, _ | _, Error e ->
    Printf.eprintf "iw-check: %s\n" e;
    2
  | Ok (_, old_doc), Ok (_, new_doc) -> (
    let figures doc =
      match J.member "figures" doc with
      | Some (J.Obj figs) -> Ok figs
      | _ -> Error "missing \"figures\" object"
    in
    match (figures old_doc, figures new_doc) with
    | Error e, _ ->
      Printf.eprintf "iw-check: %s: %s\n" old_path e;
      2
    | _, Error e ->
      Printf.eprintf "iw-check: %s: %s\n" new_path e;
      2
    | Ok old_figs, Ok new_figs ->
      let failures = ref 0 in
      let fail fmt =
        incr failures;
        Printf.ksprintf (fun m -> Printf.eprintf "iw-check: %s\n" m) fmt
      in
      let rows = function J.Arr rows -> rows | _ -> [] in
      let fields = function J.Obj fs -> fs | _ -> [] in
      (* A row's identity: its scalar non-numeric fields, or its first
         numeric field (e.g. fig5's leading "ratio") when it has none. *)
      let row_key row =
        let fs = fields row in
        match
          List.filter (fun (_, v) -> match v with J.Str _ | J.Bool _ -> true | _ -> false) fs
        with
        | [] -> (
          match List.find_opt (fun (_, v) -> match v with J.Num _ -> true | _ -> false) fs with
          | Some (k, v) -> [ (k, v) ]
          | None -> [])
        | keys -> keys
      in
      let key_to_string key =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=%s" k
                 (match v with
                 | J.Str s -> s
                 | J.Bool b -> string_of_bool b
                 | J.Num n -> Printf.sprintf "%g" n
                 | _ -> "?"))
             key)
      in
      List.iter
        (fun (fig, old_rows) ->
          match List.assoc_opt fig new_figs with
          | None -> fail "figure %s missing from %s" fig new_path
          | Some new_rows ->
            let new_rows = rows new_rows in
            let ratios = ref [] in
            List.iter
              (fun old_row ->
                let key = row_key old_row in
                match
                  List.find_opt (fun r -> row_key r = key) new_rows
                with
                | None ->
                  fail "%s: row [%s] missing from %s" fig (key_to_string key) new_path
                | Some new_row ->
                  List.iter
                    (fun (k, ov) ->
                      match (ov, List.assoc_opt k (fields new_row)) with
                      | J.Num ov, Some (J.Num nv) when not (List.mem_assoc k key) ->
                        if
                          (fig <> "ycsb" || List.mem k ycsb_compared_fields)
                          && (fig <> "phase" || List.mem k phase_compared_fields)
                        then begin
                          let eps = 1e-9 in
                          let r = (nv +. eps) /. (ov +. eps) in
                          let r = if k = "throughput_ops_per_s" then 1. /. r else r in
                          if
                            fig = "ycsb"
                            && List.assoc_opt "series" key = Some (J.Str "overall")
                            && List.mem k ycsb_gated_fields
                            && r > 1.20
                          then
                            fail "ycsb: [%s] %s ratio %.3f exceeds 1.20 — regression"
                              (key_to_string key) k r;
                          ratios := r :: !ratios
                        end
                      | _ -> ())
                    (fields old_row))
              (rows old_rows);
            (match List.sort compare !ratios with
            | [] -> ()
            | sorted ->
              let n = List.length sorted in
              let median =
                if n mod 2 = 1 then List.nth sorted (n / 2)
                else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.
              in
              if median > 1.20 then
                fail "%s: median ratio %.3f over %d cell(s) exceeds 1.20 — regression"
                  fig median n
              else
                Printf.printf "%s: median ratio %.3f over %d cell(s) — OK\n" fig median
                  n))
        old_figs;
      if !failures = 0 then begin
        Printf.printf "bench-compare: %s -> %s: OK\n" old_path new_path;
        0
      end
      else 1)

let run files json werror arch_names =
  match resolve_arches arch_names with
  | Error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Ok arches -> (
    try
      let per_file =
        List.map
          (fun file ->
            let decls = Iw_idl.parse_file file in
            (file, Iw_lint.lint ~arches decls))
          files
      in
      if json then begin
        let entry (file, ds) =
          Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}" file (Iw_lint.to_json ds)
        in
        print_endline ("[" ^ String.concat "," (List.map entry per_file) ^ "]")
      end
      else
        List.iter
          (fun (file, ds) ->
            List.iter
              (fun d -> Format.printf "%a@." (Iw_lint.pp_diagnostic ~file) d)
              ds)
          per_file;
      let worst = Iw_lint.worst (List.concat_map snd per_file) in
      match worst with
      | Some Iw_lint.Error -> 1
      | Some Iw_lint.Warning when werror -> 1
      | _ -> 0
    with
    | Iw_idl.Parse_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
    | Sys_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2)

open Cmdliner

(* plain strings, not Arg.file: each mode reports a missing path itself with
   the documented exit code 2 instead of cmdliner's generic CLI error *)
let files =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "IDL files to lint; .ml trees for --race; OLD.json NEW.json for \
           --bench-compare.")

let bench_schema =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench-schema" ] ~docv:"RESULTS.json"
        ~doc:
          "Validate the structure of a benchmark results document \
           (BENCH_results.json) instead of linting IDL files.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Validate a fault-injection plan (the IW_FAULT / iw-server \
           --fault-plan syntax, e.g. \
           $(b,seed:7,drop:0.01,delay:5ms,close\\@req=17)) and print its \
           normalized form, instead of linting IDL files.")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Validate a server durability directory (a --checkpoint-dir): \
           checkpoint magic and CRC trailers, write-ahead-log record CRCs, \
           and version continuity from each checkpoint into its log.  Run \
           it against a stopped (or crashed) server's directory; a torn log \
           tail is reported but passes, since recovery truncates it.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")

let werror =
  Arg.(value & flag & info [ "Werror" ] ~doc:"Treat warnings as errors (exit 1).")

let arch_names =
  Arg.(
    value
    & opt_all string []
    & info [ "arch" ] ~docv:"NAME"
        ~doc:"Architecture(s) to check layouts against (repeatable; default: all).")

(* --lint is the default mode; the flag exists so invocations read naturally
   alongside --model / --race / --bench-compare. *)
let lint_flag =
  Arg.(value & flag & info [ "lint" ] ~doc:"Run the IDL lint pass (the default).")

let model_flag =
  Arg.(
    value & flag
    & info [ "model" ]
        ~doc:
          "Exhaustively explore the bounded protocol model (write locks, \
           leases, release dedup, WAL/checkpoint) and check its invariants \
           (MDL01-MDL06) on every reachable state.  A violation prints a \
           minimized, replayable schedule and exits 1.")

let model_depth =
  Arg.(
    value
    & opt int 200_000
    & info [ "depth" ] ~docv:"N"
        ~doc:"State bound for --model: stop (and report truncation) after exploring $(docv) states.")

let model_crash =
  Arg.(
    value & flag
    & info [ "crash" ]
        ~doc:
          "Enable crash actions in --model: server crash/recover, \
           checkpoint barriers, and client death (lease reclamation fodder).")

let model_clients =
  Arg.(
    value & opt int 2
    & info [ "clients" ] ~docv:"N" ~doc:"Number of model clients for --model.")

let model_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Shuffle the per-state action order of --model deterministically; \
           different seeds walk the same state space in a different order.")

let model_broken =
  Arg.(
    value
    & opt (some string) None
    & info [ "model-broken" ] ~docv:"VARIANT"
        ~doc:
          "Re-introduce a protocol bug on purpose (no-dedup-rebuild, \
           ack-before-log, no-lock-check, no-reclaim, stale-full-reads) to \
           demonstrate the invariant that catches it.")

let model_coherence =
  Arg.(
    value
    & opt string "full,delta:1"
    & info [ "coherence" ] ~docv:"LIST"
        ~doc:
          "Comma-separated per-client coherence models for --model (full, \
           delta:N, temporal, diff:N), cycled over the clients.")

let model_replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCHEDULE"
        ~doc:
          "Replay a space-separated action schedule (as printed by a \
           --model violation) under the same configuration instead of \
           exploring.")

let race_flag =
  Arg.(
    value & flag
    & info [ "race" ]
        ~doc:
          "Run the source-level lock-discipline lint (LCK001-LCK004) over \
           the .ml trees given as positional arguments (default: lib bin).")

let bench_compare_flag =
  Arg.(
    value & flag
    & info [ "bench-compare" ]
        ~doc:
          "Compare two benchmark result documents (positional: OLD.json \
           NEW.json); exit 1 when any figure's median new/old ratio exceeds \
           1.20 or a row disappeared.")

let cmd =
  let doc = "static checks for InterWeave: IDL lint, protocol model checker, lock-discipline lint, benchmark gates" in
  Cmd.v
    (Cmd.info "iw-check" ~doc)
    Term.(
      const
        (fun files json werror arches _lint bench_schema fault_plan store model depth
             crash clients seed broken coherence replay race bench_compare ->
          if race then run_race files werror
          else if model || replay <> None then
            run_model ~clients ~depth ~crash ~seed ~broken ~coherence
              ~replay_sched:replay
          else if bench_compare then
            match files with
            | [ old_path; new_path ] -> run_bench_compare old_path new_path
            | _ ->
              Printf.eprintf "iw-check: --bench-compare needs exactly OLD.json NEW.json\n";
              2
          else
            match (fault_plan, bench_schema, store) with
            | Some plan, _, _ -> run_fault_plan plan
            | None, Some path, _ -> run_bench_schema path
            | None, None, Some dir -> run_store dir
            | None, None, None ->
              if files = [] then begin
                Printf.eprintf
                  "iw-check: no IDL files given (and no --model, --race, \
                   --bench-compare, --bench-schema, --fault-plan, or --store)\n";
                2
              end
              else run files json werror arches)
      $ files $ json $ werror $ arch_names $ lint_flag $ bench_schema $ fault_plan
      $ store_dir $ model_flag $ model_depth $ model_crash $ model_clients
      $ model_seed $ model_broken $ model_coherence $ model_replay $ race_flag
      $ bench_compare_flag)

let () = exit (Cmd.eval' cmd)
