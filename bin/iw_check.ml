(* Standalone driver for the analysis tooling: lints IDL files against every
   (or a chosen set of) machine architecture descriptors.  Exit status: 0
   when clean (notes never fail a run), 1 when errors — or, under --Werror,
   warnings — were reported, 2 on usage or parse failures. *)

let resolve_arches = function
  | [] -> Ok Iw_arch.all
  | names ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Iw_arch.find n with
        | Some a -> go (a :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown architecture %S (known: %s)" n
               (String.concat ", " (List.map (fun a -> a.Iw_arch.name) Iw_arch.all))))
    in
    go [] names

let run files json werror arch_names =
  match resolve_arches arch_names with
  | Error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Ok arches -> (
    try
      let per_file =
        List.map
          (fun file ->
            let decls = Iw_idl.parse_file file in
            (file, Iw_lint.lint ~arches decls))
          files
      in
      if json then begin
        let entry (file, ds) =
          Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}" file (Iw_lint.to_json ds)
        in
        print_endline ("[" ^ String.concat "," (List.map entry per_file) ^ "]")
      end
      else
        List.iter
          (fun (file, ds) ->
            List.iter
              (fun d -> Format.printf "%a@." (Iw_lint.pp_diagnostic ~file) d)
              ds)
          per_file;
      let worst = Iw_lint.worst (List.concat_map snd per_file) in
      match worst with
      | Some Iw_lint.Error -> 1
      | Some Iw_lint.Warning when werror -> 1
      | _ -> 0
    with
    | Iw_idl.Parse_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
    | Sys_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2)

open Cmdliner

let files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.idl" ~doc:"IDL files to lint.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")

let werror =
  Arg.(value & flag & info [ "Werror" ] ~doc:"Treat warnings as errors (exit 1).")

let arch_names =
  Arg.(
    value
    & opt_all string []
    & info [ "arch" ] ~docv:"NAME"
        ~doc:"Architecture(s) to check layouts against (repeatable; default: all).")

(* --lint is the default and only mode today; the flag exists so invocations
   read naturally and stay stable when further modes are added. *)
let lint_flag =
  Arg.(value & flag & info [ "lint" ] ~doc:"Run the IDL lint pass (the default).")

let cmd =
  let doc = "static checks for InterWeave IDL files" in
  Cmd.v
    (Cmd.info "iw-check" ~doc)
    Term.(const (fun files json werror arches _lint -> run files json werror arches)
          $ files $ json $ werror $ arch_names $ lint_flag)

let () = exit (Cmd.eval' cmd)
