(* Standalone driver for the analysis tooling: lints IDL files against every
   (or a chosen set of) machine architecture descriptors.  Exit status: 0
   when clean (notes never fail a run), 1 when errors — or, under --Werror,
   warnings — were reported, 2 on usage or parse failures. *)

let resolve_arches = function
  | [] -> Ok Iw_arch.all
  | names ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Iw_arch.find n with
        | Some a -> go (a :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown architecture %S (known: %s)" n
               (String.concat ", " (List.map (fun a -> a.Iw_arch.name) Iw_arch.all))))
    in
    go [] names

(* --bench-schema: structural validation of the benchmark harness's JSON
   results document (BENCH_results.json), run as part of `dune build @check`
   so an encoder regression fails the build, not a downstream consumer.
   Expected shape: { suite: str, paper: str, quick: bool, size_bytes: num,
   figures: { figN: [ { field: str|num|bool, ... }, ... ], ... } }. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_schema_errors doc =
  let module J = Iw_obs_json in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let field name check =
    match J.member name doc with
    | None -> err "missing top-level field %S" name
    | Some v -> check v
  in
  let expect_str name = function J.Str _ -> () | _ -> err "%S must be a string" name in
  field "suite" (expect_str "suite");
  field "paper" (expect_str "paper");
  field "quick" (function J.Bool _ -> () | _ -> err "\"quick\" must be a bool");
  field "size_bytes" (function J.Num _ -> () | _ -> err "\"size_bytes\" must be a number");
  field "figures" (function
    | J.Obj figs ->
      List.iter
        (fun (fig, rows) ->
          match rows with
          | J.Arr rows ->
            List.iteri
              (fun i row ->
                match row with
                | J.Obj fields ->
                  List.iter
                    (fun (k, v) ->
                      match v with
                      | J.Str _ | J.Num _ | J.Bool _ -> ()
                      | _ -> err "%s[%d].%s: expected scalar" fig i k)
                    fields;
                  if fields = [] then err "%s[%d]: empty row object" fig i
                | _ -> err "%s[%d]: expected an object" fig i)
              rows
          | _ -> err "figure %S must be an array of rows" fig)
        figs
    | _ -> err "\"figures\" must be an object");
  List.rev !errs

let run_bench_schema path =
  match Iw_obs_json.parse (read_file path) with
  | exception Sys_error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Error e ->
    Printf.eprintf "iw-check: %s: invalid JSON: %s\n" path e;
    1
  | Ok doc -> (
    match bench_schema_errors doc with
    | [] ->
      Printf.printf "%s: bench schema OK\n" path;
      0
    | errs ->
      List.iter (fun m -> Printf.eprintf "iw-check: %s: %s\n" path m) errs;
      1)

(* --fault-plan: validate an IW_FAULT / --fault-plan string without running
   anything, so CI and operators can vet a plan before pointing it at a
   server. *)
let run_fault_plan s =
  match Iw_fault.parse s with
  | Ok p ->
    Format.printf "fault plan OK: %a@." Iw_fault.pp p;
    0
  | Error msg ->
    Printf.eprintf "iw-check: invalid fault plan: %s\n" msg;
    1

(* --store: offline validation of a server's durability directory — every
   checkpoint's magic and CRC trailer, every write-ahead-log record's CRC,
   and version continuity from each checkpoint into its segment's log.  A
   torn log tail is reported but does not fail the run (it is the normal
   shape of a crash and recovery truncates it); corrupt records, bad
   checkpoints, version gaps, and checkpoint→log discontinuities do. *)
let run_store dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "iw-check: %s: not a directory\n" dir;
    2
  end
  else begin
    let files = Sys.readdir dir in
    Array.sort compare files;
    let errors = ref 0 in
    let err fmt =
      incr errors;
      Printf.ksprintf (fun m -> Printf.eprintf "iw-check: %s\n" m) fmt
    in
    (* Checkpoint versions by segment name, for continuity against the log. *)
    let ckpt_versions = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        let path = Filename.concat dir f in
        if Filename.check_suffix f Iw_store.checkpoint_suffix then begin
          match Iw_store.verify_checkpoint path with
          | Ok (name, version) ->
            Hashtbl.replace ckpt_versions name version;
            Printf.printf "%s: checkpoint OK (%s at version %d)\n" f name version
          | Error msg -> err "%s: %s" f msg
        end
        else if Filename.check_suffix f Iw_store.log_suffix then begin
          match Iw_store.scan_log path with
          | Error msg -> err "%s: %s" f msg
          | Ok r ->
            (match r.Iw_store.lr_tail with
            | Iw_store.Tail_clean -> ()
            | Iw_store.Tail_torn reason ->
              Printf.printf
                "%s: torn tail (%s) — consistent with a crash; recovery will \
                 truncate it\n"
                f reason
            | Iw_store.Tail_corrupt reason -> err "%s: %s" f reason);
            (match r.Iw_store.lr_gap with
            | Some (expected, got) ->
              err "%s: version gap in log: expected %d, found %d" f expected got
            | None -> ());
            (match r.Iw_store.lr_segment with
            | None ->
              if r.Iw_store.lr_records > 0 then err "%s: no header record" f
            | Some name ->
              (* Continuity: the log's first commit must continue its
                 segment's checkpoint (or start from scratch without one).
                 First commits at or below the checkpoint version are stale
                 records the checkpoint already covers — replay skips them. *)
              let ckpt =
                match Hashtbl.find_opt ckpt_versions name with
                | Some v -> v
                | None -> 0
              in
              (match r.Iw_store.lr_first_commit with
              | Some first when first > ckpt + 1 ->
                err
                  "%s: log for %s starts at version %d but its checkpoint \
                   ends at %d (missing %d version(s))"
                  f name first ckpt
                  (first - ckpt - 1)
              | _ -> ());
              Printf.printf
                "%s: log OK (%s, %d record(s), %d commit(s)%s)\n" f name
                r.Iw_store.lr_records r.Iw_store.lr_commits
                (match (r.Iw_store.lr_first_commit, r.Iw_store.lr_last_commit) with
                | Some a, Some b -> Printf.sprintf ", versions %d..%d" a b
                | _ -> ""))
        end
        else if Filename.check_suffix f ".corrupt" then
          Printf.printf "%s: quarantined file (left by a previous recovery)\n" f)
      files;
    if !errors = 0 then begin
      Printf.printf "%s: store OK\n" dir;
      0
    end
    else 1
  end

let run files json werror arch_names =
  match resolve_arches arch_names with
  | Error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Ok arches -> (
    try
      let per_file =
        List.map
          (fun file ->
            let decls = Iw_idl.parse_file file in
            (file, Iw_lint.lint ~arches decls))
          files
      in
      if json then begin
        let entry (file, ds) =
          Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}" file (Iw_lint.to_json ds)
        in
        print_endline ("[" ^ String.concat "," (List.map entry per_file) ^ "]")
      end
      else
        List.iter
          (fun (file, ds) ->
            List.iter
              (fun d -> Format.printf "%a@." (Iw_lint.pp_diagnostic ~file) d)
              ds)
          per_file;
      let worst = Iw_lint.worst (List.concat_map snd per_file) in
      match worst with
      | Some Iw_lint.Error -> 1
      | Some Iw_lint.Warning when werror -> 1
      | _ -> 0
    with
    | Iw_idl.Parse_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
    | Sys_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2)

open Cmdliner

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.idl" ~doc:"IDL files to lint.")

let bench_schema =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench-schema" ] ~docv:"RESULTS.json"
        ~doc:
          "Validate the structure of a benchmark results document \
           (BENCH_results.json) instead of linting IDL files.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Validate a fault-injection plan (the IW_FAULT / iw-server \
           --fault-plan syntax, e.g. \
           $(b,seed:7,drop:0.01,delay:5ms,close\\@req=17)) and print its \
           normalized form, instead of linting IDL files.")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Validate a server durability directory (a --checkpoint-dir): \
           checkpoint magic and CRC trailers, write-ahead-log record CRCs, \
           and version continuity from each checkpoint into its log.  Run \
           it against a stopped (or crashed) server's directory; a torn log \
           tail is reported but passes, since recovery truncates it.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")

let werror =
  Arg.(value & flag & info [ "Werror" ] ~doc:"Treat warnings as errors (exit 1).")

let arch_names =
  Arg.(
    value
    & opt_all string []
    & info [ "arch" ] ~docv:"NAME"
        ~doc:"Architecture(s) to check layouts against (repeatable; default: all).")

(* --lint is the default and only mode today; the flag exists so invocations
   read naturally and stay stable when further modes are added. *)
let lint_flag =
  Arg.(value & flag & info [ "lint" ] ~doc:"Run the IDL lint pass (the default).")

let cmd =
  let doc = "static checks for InterWeave IDL files and benchmark output" in
  Cmd.v
    (Cmd.info "iw-check" ~doc)
    Term.(
      const (fun files json werror arches _lint bench_schema fault_plan store ->
          match (fault_plan, bench_schema, store) with
          | Some plan, _, _ -> run_fault_plan plan
          | None, Some path, _ -> run_bench_schema path
          | None, None, Some dir -> run_store dir
          | None, None, None ->
            if files = [] then begin
              Printf.eprintf
                "iw-check: no IDL files given (and no --bench-schema, \
                 --fault-plan, or --store)\n";
              2
            end
            else run files json werror arches)
      $ files $ json $ werror $ arch_names $ lint_flag $ bench_schema $ fault_plan
      $ store_dir)

let () = exit (Cmd.eval' cmd)
