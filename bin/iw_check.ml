(* Standalone driver for the analysis tooling: lints IDL files against every
   (or a chosen set of) machine architecture descriptors.  Exit status: 0
   when clean (notes never fail a run), 1 when errors — or, under --Werror,
   warnings — were reported, 2 on usage or parse failures. *)

let resolve_arches = function
  | [] -> Ok Iw_arch.all
  | names ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Iw_arch.find n with
        | Some a -> go (a :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown architecture %S (known: %s)" n
               (String.concat ", " (List.map (fun a -> a.Iw_arch.name) Iw_arch.all))))
    in
    go [] names

(* --bench-schema: structural validation of the benchmark harness's JSON
   results document (BENCH_results.json), run as part of `dune build @check`
   so an encoder regression fails the build, not a downstream consumer.
   Expected shape: { suite: str, paper: str, quick: bool, size_bytes: num,
   figures: { figN: [ { field: str|num|bool, ... }, ... ], ... } }. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_schema_errors doc =
  let module J = Iw_obs_json in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let field name check =
    match J.member name doc with
    | None -> err "missing top-level field %S" name
    | Some v -> check v
  in
  let expect_str name = function J.Str _ -> () | _ -> err "%S must be a string" name in
  field "suite" (expect_str "suite");
  field "paper" (expect_str "paper");
  field "quick" (function J.Bool _ -> () | _ -> err "\"quick\" must be a bool");
  field "size_bytes" (function J.Num _ -> () | _ -> err "\"size_bytes\" must be a number");
  field "figures" (function
    | J.Obj figs ->
      List.iter
        (fun (fig, rows) ->
          match rows with
          | J.Arr rows ->
            List.iteri
              (fun i row ->
                match row with
                | J.Obj fields ->
                  List.iter
                    (fun (k, v) ->
                      match v with
                      | J.Str _ | J.Num _ | J.Bool _ -> ()
                      | _ -> err "%s[%d].%s: expected scalar" fig i k)
                    fields;
                  if fields = [] then err "%s[%d]: empty row object" fig i
                | _ -> err "%s[%d]: expected an object" fig i)
              rows
          | _ -> err "figure %S must be an array of rows" fig)
        figs
    | _ -> err "\"figures\" must be an object");
  List.rev !errs

let run_bench_schema path =
  match Iw_obs_json.parse (read_file path) with
  | exception Sys_error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Error e ->
    Printf.eprintf "iw-check: %s: invalid JSON: %s\n" path e;
    1
  | Ok doc -> (
    match bench_schema_errors doc with
    | [] ->
      Printf.printf "%s: bench schema OK\n" path;
      0
    | errs ->
      List.iter (fun m -> Printf.eprintf "iw-check: %s: %s\n" path m) errs;
      1)

(* --fault-plan: validate an IW_FAULT / --fault-plan string without running
   anything, so CI and operators can vet a plan before pointing it at a
   server. *)
let run_fault_plan s =
  match Iw_fault.parse s with
  | Ok p ->
    Format.printf "fault plan OK: %a@." Iw_fault.pp p;
    0
  | Error msg ->
    Printf.eprintf "iw-check: invalid fault plan: %s\n" msg;
    1

let run files json werror arch_names =
  match resolve_arches arch_names with
  | Error msg ->
    Printf.eprintf "iw-check: %s\n" msg;
    2
  | Ok arches -> (
    try
      let per_file =
        List.map
          (fun file ->
            let decls = Iw_idl.parse_file file in
            (file, Iw_lint.lint ~arches decls))
          files
      in
      if json then begin
        let entry (file, ds) =
          Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}" file (Iw_lint.to_json ds)
        in
        print_endline ("[" ^ String.concat "," (List.map entry per_file) ^ "]")
      end
      else
        List.iter
          (fun (file, ds) ->
            List.iter
              (fun d -> Format.printf "%a@." (Iw_lint.pp_diagnostic ~file) d)
              ds)
          per_file;
      let worst = Iw_lint.worst (List.concat_map snd per_file) in
      match worst with
      | Some Iw_lint.Error -> 1
      | Some Iw_lint.Warning when werror -> 1
      | _ -> 0
    with
    | Iw_idl.Parse_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2
    | Sys_error msg ->
      Printf.eprintf "iw-check: %s\n" msg;
      2)

open Cmdliner

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE.idl" ~doc:"IDL files to lint.")

let bench_schema =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench-schema" ] ~docv:"RESULTS.json"
        ~doc:
          "Validate the structure of a benchmark results document \
           (BENCH_results.json) instead of linting IDL files.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Validate a fault-injection plan (the IW_FAULT / iw-server \
           --fault-plan syntax, e.g. \
           $(b,seed:7,drop:0.01,delay:5ms,close\\@req=17)) and print its \
           normalized form, instead of linting IDL files.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")

let werror =
  Arg.(value & flag & info [ "Werror" ] ~doc:"Treat warnings as errors (exit 1).")

let arch_names =
  Arg.(
    value
    & opt_all string []
    & info [ "arch" ] ~docv:"NAME"
        ~doc:"Architecture(s) to check layouts against (repeatable; default: all).")

(* --lint is the default and only mode today; the flag exists so invocations
   read naturally and stay stable when further modes are added. *)
let lint_flag =
  Arg.(value & flag & info [ "lint" ] ~doc:"Run the IDL lint pass (the default).")

let cmd =
  let doc = "static checks for InterWeave IDL files and benchmark output" in
  Cmd.v
    (Cmd.info "iw-check" ~doc)
    Term.(
      const (fun files json werror arches _lint bench_schema fault_plan ->
          match (fault_plan, bench_schema) with
          | Some plan, _ -> run_fault_plan plan
          | None, Some path -> run_bench_schema path
          | None, None ->
            if files = [] then begin
              Printf.eprintf
                "iw-check: no IDL files given (and no --bench-schema or --fault-plan)\n";
              2
            end
            else run files json werror arches)
      $ files $ json $ werror $ arch_names $ lint_flag $ bench_schema $ fault_plan)

let () = exit (Cmd.eval' cmd)
