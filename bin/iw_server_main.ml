(* Standalone InterWeave server: serves segments over TCP and optionally
   checkpoints them to disk on a timer, as the paper's server periodically
   does (Sec. 2.2). *)

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

let run port checkpoint_dir checkpoint_secs trace verbose =
  setup_logging verbose;
  (match trace with
  | Some path ->
    Iw_trace.start ~path ();
    Logs.info (fun m -> m "tracing to %s (written at exit)" path)
  | None -> ());
  let server = Iw_server.create ?checkpoint_dir () in
  Logs.info (fun m ->
      m "metrics %s (IW_METRICS overrides; dump with iw-admin stats)"
        (if Iw_metrics.enabled (Iw_server.metrics server) then "enabled" else "disabled"));
  (match checkpoint_dir with
  | Some dir ->
    Logs.info (fun m -> m "checkpointing to %s every %.0fs" dir checkpoint_secs);
    let rec ticker () =
      Thread.delay checkpoint_secs;
      Iw_server.checkpoint server;
      Logs.debug (fun m -> m "checkpoint complete");
      ticker ()
    in
    ignore (Thread.create ticker () : Thread.t)
  | None -> ());
  (* SIGUSR1 dumps the flight recorder (recent requests) without stopping the
     server — the poor operator's core dump.  IW_FLIGHT_DUMP redirects the
     JSON from stderr to a file. *)
  (try
     ignore
       (Sys.signal Sys.sigusr1
          (Sys.Signal_handle
             (fun _ -> Iw_flight.dump ~reason:"SIGUSR1" (Iw_server.flight server)))
         : Sys.signal_behavior)
   with Invalid_argument _ -> ());
  let stop = ref false in
  Logs.app (fun m -> m "InterWeave server listening on port %d" port);
  Iw_transport.tcp_server ~port ~stop (fun conn ->
      Logs.info (fun m -> m "client connected: %s" conn.Iw_transport.peer);
      Iw_server.serve_conn server conn;
      Logs.info (fun m -> m "client disconnected: %s" conn.Iw_transport.peer))

open Cmdliner

let port =
  Arg.(value & opt int 7077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let checkpoint_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc:"Persist segments to $(docv) and reload on start.")

let checkpoint_secs =
  Arg.(
    value
    & opt float 30.
    & info [ "checkpoint-interval" ] ~docv:"SECS" ~doc:"Seconds between checkpoints.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event JSON trace of request handling to $(docv), \
           written at exit (equivalent to setting IW_TRACE=$(docv)).")

let cmd =
  let doc = "InterWeave segment server" in
  Cmd.v
    (Cmd.info "iw-server" ~doc)
    Term.(const run $ port $ checkpoint_dir $ checkpoint_secs $ trace $ verbose)

let () = exit (Cmd.eval cmd)
